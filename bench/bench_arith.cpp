//===- bench/bench_arith.cpp - Exact-arithmetic fast-path gate -----------===//
//
// Measures the BigInt small-value optimization (DESIGN.md §10): every
// section runs the same deterministic operand stream twice, once with
// canonical inline-int64 operands ("small") and once with operands
// force-spilled to the limb representation ("spilled" — the code shape the
// pre-PR always-limb BigInt executed for every operation), and records
// ns/op for both plus the speedup.
//
// Three properties are enforced, not just reported (any violation exits 1):
//
//   * differential: each section's small and spilled checksums agree;
//   * golden: checksums match the values hardcoded below, so a future
//     arithmetic regression cannot hide behind self-consistency;
//   * allocation-free: a global operator new/delete interposer counts heap
//     allocations during the small runs — the total must be zero, and the
//     arithmetic spill counter must also read zero.
//
//   bench_arith [--quick] [--reps N] [--ops N] [--out FILE]
//
// One JSON object is printed to stdout (and written to FILE with --out);
// ci.sh runs `--quick` as a smoke gate and the full form refreshes
// BENCH_arith.json at the repo root.
//
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"
#include "support/Rational.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

using namespace omega;

//===----------------------------------------------------------------------===//
// Allocation-counting harness
//===----------------------------------------------------------------------===//

namespace {
std::atomic<bool> CountAllocs{false};
std::atomic<uint64_t> AllocCount{0};
} // namespace

// This *is* the global allocator (the zero-allocation gate counts every
// heap call through it), so malloc/free here are the implementation, not
// a leak hazard.  omegatidy: allow(naked-new)
void *operator new(std::size_t N) {
  if (CountAllocs.load(std::memory_order_relaxed))
    AllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(N ? N : 1)) // omegatidy: allow(naked-new)
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t N) { return ::operator new(N); }
// The operator delete overloads forward straight to free.
void operator delete(void *P) noexcept { std::free(P); } // omegatidy: allow(naked-new)
void operator delete(void *P, std::size_t) noexcept { std::free(P); } // omegatidy: allow(naked-new)
void operator delete[](void *P) noexcept { std::free(P); } // omegatidy: allow(naked-new)
void operator delete[](void *P, std::size_t) noexcept { std::free(P); } // omegatidy: allow(naked-new)

namespace {

/// RAII window during which global allocations are tallied.
struct AllocWindow {
  uint64_t Before;
  AllocWindow() : Before(AllocCount.load()) {
    CountAllocs.store(true, std::memory_order_relaxed);
  }
  uint64_t close() {
    CountAllocs.store(false, std::memory_order_relaxed);
    return AllocCount.load() - Before;
  }
};

//===----------------------------------------------------------------------===//
// Deterministic operand streams
//===----------------------------------------------------------------------===//

/// Fixed-seed LCG so every run (and every platform) times the identical
/// operand stream.
struct Lcg {
  uint64_t X = 0x243f6a8885a308d3ull;
  uint64_t next() {
    X = X * 6364136223846793005ull + 1442695040888963407ull;
    return X;
  }
  /// Uniform-ish in [Lo, Hi].
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(next() %
                                     static_cast<uint64_t>(Hi - Lo + 1));
  }
};

struct Operands {
  std::vector<BigInt> A, B;         ///< Canonical small representations.
  std::vector<BigInt> SpA, SpB;     ///< The same values, force-spilled.
};

/// Typical Omega-test magnitudes: coefficients a few digits wide,
/// denominators/divisors nonzero.
Operands makeOperands(size_t N) {
  Operands O;
  Lcg R;
  O.A.reserve(N);
  O.B.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    int64_t A = R.range(-9999, 9999);
    int64_t B = R.range(1, 9999) * (R.next() & 1 ? 1 : -1);
    O.A.emplace_back(A);
    O.B.emplace_back(B);
  }
  O.SpA = O.A;
  O.SpB = O.B;
  for (BigInt &V : O.SpA)
    V.forceSpillForTesting();
  for (BigInt &V : O.SpB)
    V.forceSpillForTesting();
  return O;
}

using Clock = std::chrono::steady_clock;

struct SectionResult {
  std::string Name;
  double SmallNsPerOp = 0, SpilledNsPerOp = 0;
  uint64_t OpsTimed = 0;
  uint64_t SmallAllocs = 0;
  uint64_t SmallChecksum = 0, SpilledChecksum = 0;
  uint64_t GoldenChecksum = 0; ///< 0 = no golden known for this --ops size.
  double speedup() const { return SpilledNsPerOp / SmallNsPerOp; }
  bool ok() const {
    return SmallChecksum == SpilledChecksum &&
           (GoldenChecksum == 0 || SmallChecksum == GoldenChecksum);
  }
};

/// Runs \p Body over both operand sets, timing each and counting
/// allocations during the small run.  \p OpsPerPair is the number of
/// BigInt operations Body performs per index (for ns/op).
template <typename BodyFn>
SectionResult runSection(const std::string &Name, const Operands &O, int Reps,
                         unsigned OpsPerPair, uint64_t Golden, BodyFn Body) {
  SectionResult R;
  R.Name = Name;
  R.OpsTimed = O.A.size() * OpsPerPair;
  R.GoldenChecksum = Golden;

  auto Time = [&](const std::vector<BigInt> &A, const std::vector<BigInt> &B,
                  uint64_t &Checksum, uint64_t *Allocs) {
    double BestNs = -1;
    for (int Rep = 0; Rep < Reps; ++Rep) {
      AllocWindow W; // Counting is cheap; open it for both variants.
      auto T0 = Clock::now();
      uint64_t C = Body(A, B);
      auto T1 = Clock::now();
      uint64_t Delta = W.close();
      double Ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
              .count());
      if (BestNs < 0 || Ns < BestNs)
        BestNs = Ns;
      Checksum = C;
      if (Allocs)
        *Allocs = Delta;
    }
    return BestNs / static_cast<double>(R.OpsTimed);
  };

  R.SmallNsPerOp = Time(O.A, O.B, R.SmallChecksum, &R.SmallAllocs);
  R.SpilledNsPerOp = Time(O.SpA, O.SpB, R.SpilledChecksum, nullptr);
  return R;
}

/// Folds a BigInt into a checksum without allocating (small values only).
uint64_t fold(uint64_t H, const BigInt &V) {
  return H * 1000003ull + static_cast<uint64_t>(V.toInt64());
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  size_t Ops = 200000;
  int Reps = 3;
  std::string OutPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (++I >= Argc) {
        std::cerr << "bench_arith: missing value after " << Arg << "\n";
        std::exit(1);
      }
      return Argv[I];
    };
    if (Arg == "--quick") {
      Ops = 20000;
      Reps = 1;
    } else if (Arg == "--ops")
      Ops = static_cast<size_t>(std::atoll(Next()));
    else if (Arg == "--reps")
      Reps = std::atoi(Next());
    else if (Arg == "--out")
      OutPath = Next();
    else {
      std::cerr
          << "usage: bench_arith [--quick] [--ops N] [--reps N] [--out F]\n";
      return 1;
    }
  }

  Operands O = makeOperands(Ops);
  arithCounters().Spills.store(0);

  // Golden checksums for the two standard workload sizes (0 = unknown size,
  // golden check skipped; the small-vs-spilled differential still applies).
  struct Goldens {
    uint64_t AddSub, MulGcdDiv, FloorCeilMod, RationalNorm;
  };
  Goldens G{};
  if (Ops == 20000)
    G = {0xfffffffffffd6cc7ull, 0x963965bdad501d81ull, 0xa8dc8d15abd6e36bull,
         0x853889e9b4436c3dull};
  else if (Ops == 200000)
    G = {0x3144c2ull, 0x716336d25c2586cull, 0x2c42b15c60f55e99ull,
         0x1ee99598a6a2be82ull};

  std::vector<SectionResult> Sections;

  // Chained accumulate: the Fourier-Motzkin / summation inner loop shape.
  Sections.push_back(runSection(
      "add_sub", O, Reps, 2, G.AddSub,
      [](const std::vector<BigInt> &A, const std::vector<BigInt> &B) {
        BigInt Acc(0);
        for (size_t I = 0; I < A.size(); ++I) {
          Acc += A[I];
          Acc -= B[I];
        }
        return fold(0, Acc);
      }));

  // Multiply / gcd / exact divide: the coefficient-normalization shape.
  Sections.push_back(runSection(
      "mul_gcd_divexact", O, Reps, 3, G.MulGcdDiv,
      [](const std::vector<BigInt> &A, const std::vector<BigInt> &B) {
        uint64_t H = 0;
        for (size_t I = 0; I < A.size(); ++I) {
          BigInt P = A[I] * B[I];
          BigInt G = BigInt::gcd(P, B[I]);
          H = fold(H, BigInt::divExact(P, B[I]));
          H = fold(H, G);
        }
        return H;
      }));

  // Floor/ceil division and mathematical modulus: the bound-splitting and
  // stride-normalization shape.
  Sections.push_back(runSection(
      "floor_ceil_mod", O, Reps, 3, G.FloorCeilMod,
      [](const std::vector<BigInt> &A, const std::vector<BigInt> &B) {
        uint64_t H = 0;
        for (size_t I = 0; I < A.size(); ++I) {
          H = fold(H, BigInt::floorDiv(A[I], B[I]));
          H = fold(H, BigInt::ceilDiv(A[I], B[I]));
          H = fold(H, BigInt::floorMod(A[I], B[I]));
        }
        return H;
      }));

  // Rational construction + normalization: the quasi-polynomial
  // coefficient shape (counts as ~3 BigInt ops: gcd + two exact divides).
  Sections.push_back(runSection(
      "rational_normalize", O, Reps, 3, G.RationalNorm,
      [](const std::vector<BigInt> &A, const std::vector<BigInt> &B) {
        uint64_t H = 0;
        for (size_t I = 0; I < A.size(); ++I) {
          Rational R(A[I], B[I]);
          H = fold(H, R.numerator());
          H = fold(H, R.denominator());
        }
        return H;
      }));

  uint64_t SpillsAfterSmall = arithCounters().Spills.load();
  bool Failed = false;
  uint64_t TotalSmallAllocs = 0;
  double MinSpeedup = -1, GeoProduct = 1;
  for (const SectionResult &S : Sections) {
    TotalSmallAllocs += S.SmallAllocs;
    if (MinSpeedup < 0 || S.speedup() < MinSpeedup)
      MinSpeedup = S.speedup();
    GeoProduct *= S.speedup();
    if (S.SmallChecksum != S.SpilledChecksum) {
      std::cerr << "bench_arith: DIFFERENTIAL MISMATCH in " << S.Name
                << ": small=" << S.SmallChecksum
                << " spilled=" << S.SpilledChecksum << "\n";
      Failed = true;
    }
    if (S.GoldenChecksum != 0 && S.SmallChecksum != S.GoldenChecksum) {
      std::cerr << "bench_arith: GOLDEN MISMATCH in " << S.Name
                << ": got=" << S.SmallChecksum
                << " want=" << S.GoldenChecksum << "\n";
      Failed = true;
    }
    if (S.SmallAllocs != 0) {
      std::cerr << "bench_arith: ALLOCATION on the small path in " << S.Name
                << ": " << S.SmallAllocs << " allocations\n";
      Failed = true;
    }
  }
  if (SpillsAfterSmall != 0) {
    std::cerr << "bench_arith: SPILLS on the small path: " << SpillsAfterSmall
              << "\n";
    Failed = true;
  }
  double GeoMean =
      Sections.empty()
          ? 0
          : std::pow(GeoProduct, 1.0 / static_cast<double>(Sections.size()));

  std::ostringstream JS;
  JS << "{\"bench\":\"arith\",\"ops\":" << Ops << ",\"reps\":" << Reps
     << ",\"sections\":[";
  for (size_t I = 0; I < Sections.size(); ++I) {
    const SectionResult &S = Sections[I];
    if (I)
      JS << ",";
    JS << "{\"name\":\"" << jsonEscape(S.Name) << "\",\"small_ns_per_op\":"
       << S.SmallNsPerOp << ",\"spilled_ns_per_op\":" << S.SpilledNsPerOp
       << ",\"speedup\":" << S.speedup() << ",\"small_allocations\":"
       << S.SmallAllocs << ",\"checksum\":\"" << std::hex << S.SmallChecksum
       << std::dec << "\",\"checksum_ok\":" << (S.ok() ? "true" : "false")
       << "}";
  }
  JS << "],\"speedup_min\":" << MinSpeedup << ",\"speedup_geomean\":"
     << GeoMean << ",\"small_allocations_total\":" << TotalSmallAllocs
     << ",\"small_spills_total\":" << SpillsAfterSmall
     << ",\"checks_passed\":" << (Failed ? "false" : "true") << "}";
  std::cout << JS.str() << "\n";
  if (!OutPath.empty()) {
    std::ofstream Out(OutPath);
    if (!Out) {
      std::cerr << "bench_arith: cannot write " << OutPath << "\n";
      return 1;
    }
    Out << JS.str() << "\n";
  }

  std::cerr << "bench_arith: small path x" << MinSpeedup << ".."
            << "geomean x" << GeoMean << " vs spilled, "
            << TotalSmallAllocs << " allocations, " << SpillsAfterSmall
            << " spills on the small path\n";
  if (Failed)
    return 1;
  std::cout << "bench_arith: ok\n";
  return 0;
}
