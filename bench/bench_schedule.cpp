//===- bench/bench_schedule.cpp - X16: balanced chunk scheduling ---------===//
//
// §1.1's [HP93a] application: partition a triangular loop across
// processors so each gets the same flops, using symbolic prefix sums.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "apps/Scheduling.h"

using namespace omega;

namespace {

AffineExpr var(const char *N) { return AffineExpr::variable(N); }

LoopNest triangular() {
  LoopNest Nest;
  Nest.add("i", AffineExpr(1), var("n"));
  Nest.add("j", AffineExpr(1), var("i"));
  return Nest;
}

void report() {
  reportHeader("X16", "balanced chunk scheduling of a triangular loop");
  LoopNest Nest = triangular();
  const int64_t N = 1000;
  const unsigned P = 8;
  std::vector<Chunk> Chunks =
      balancedChunks(Nest, "i", QuasiPolynomial(Rational(1)),
                     {{"n", BigInt(N)}}, BigInt(1), BigInt(N), P);
  BigInt Max(0), Min;
  bool First = true;
  BigInt Total(0);
  for (const Chunk &C : Chunks) {
    Total += C.Flops;
    Max = std::max(Max, C.Flops);
    Min = First ? C.Flops : std::min(Min, C.Flops);
    First = false;
  }
  reportRow("total work (n=1000)", "500500", Total.toString());
  int64_t Ideal = 500500 / P;
  reportRow("ideal per-processor", "-", std::to_string(Ideal));
  reportRow("balanced max chunk", "-", Max.toString());
  reportRow("balanced min chunk", "-", Min.toString());
  // Naive equal-iteration split: the last processor gets the heavy tail.
  int64_t NaiveMax = 0;
  for (unsigned K = 0; K < P; ++K) {
    int64_t B = 1 + int64_t(K) * N / P, E = int64_t(K + 1) * N / P;
    NaiveMax = std::max(NaiveMax, (E * (E + 1) - (B - 1) * B) / 2);
  }
  reportRow("naive equal-iteration max chunk", "117250",
            std::to_string(NaiveMax));
  reportRow("imbalance reduced",
            "max/ideal 1.87 -> ~1.00",
            std::to_string(double(NaiveMax) / Ideal) + " -> " +
                std::to_string(Max.toDouble() / Ideal));
  for (const Chunk &C : Chunks)
    std::cout << "    chunk [" << C.Begin << ", " << C.End << "] work "
              << C.Flops << "\n";
}

void BM_BalancedChunks(benchmark::State &State) {
  LoopNest Nest = triangular();
  int64_t N = State.range(0);
  for (auto _ : State) {
    std::vector<Chunk> Chunks =
        balancedChunks(Nest, "i", QuasiPolynomial(Rational(1)),
                       {{"n", BigInt(N)}}, BigInt(1), BigInt(N), 8);
    benchmark::DoNotOptimize(Chunks);
  }
}
BENCHMARK(BM_BalancedChunks)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_PerIterationWork(benchmark::State &State) {
  LoopNest Nest = triangular();
  for (auto _ : State) {
    PiecewiseValue W =
        perIterationWork(Nest, "i", QuasiPolynomial(Rational(1)));
    benchmark::DoNotOptimize(W);
  }
}
BENCHMARK(BM_PerIterationWork)->Unit(benchmark::kMillisecond);

} // namespace

OMEGA_BENCH_MAIN(report)
