//===- bench/bench_server.cpp - omegad sustained throughput --------------===//
//
// Measures the counting service end to end: an in-process Server on a
// temp AF_UNIX socket, driven by 1/4/8 concurrent client connections
// submitting crossConjoin-heavy count queries over the real wire
// protocol.  Each connection count is measured twice — cold (fresh
// conjunct cache) and warm (identical query set resubmitted against the
// cache the cold pass populated) — because the persistent cross-query
// cache is the reason omegad exists: a process-per-query pipeline pays
// the cold column on every single query.
//
//   bench_server [--quick] [--queries N] [--scale N] [--reps N]
//                [--out FILE]
//
// Every warm answer is compared against its cold twin (the determinism
// contract over the wire), one JSON object is printed to stdout, and the
// run hard-fails on any mismatch or transport error.  --quick shrinks
// the workload so the binary doubles as a ctest smoke test; ci.sh gates
// warm_speedup_min >= 1.5 on the full run and commits the JSON as
// BENCH_server.json.
//
//===----------------------------------------------------------------------===//

#include "omega/Omega.h"
#include "presburger/Var.h"
#include "server/Protocol.h"
#include "server/Server.h"

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace omega;
using namespace omega::server;

namespace {

void fail(const std::string &Msg) {
  std::cerr << "bench_server: error: " << Msg << "\n";
  std::exit(1);
}

int connectTo(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// Query \p Idx of the set: a conjunction of two interval unions with a
/// coupling constraint and a stride, offset by the index so every query
/// in the set is distinct (no cross-query cache reuse inside one cold
/// pass — the warm pass alone gets the hits).
CountRequestMsg makeQuery(int Idx, int Scale) {
  auto Union = [&](const std::string &V, int Offset) {
    std::ostringstream OS;
    OS << "(";
    for (int I = 0; I < Scale; ++I) {
      if (I)
        OS << " || ";
      int Lo = 1 + Offset + 12 * I;
      int Hi = Lo + 9;
      OS << Lo << " <= " << V << " <= " << Hi;
    }
    OS << ")";
    return OS.str();
  };
  std::ostringstream OS;
  OS << Union("i", Idx) << " && " << Union("j", 2 * Idx) << " && i + j <= "
     << 12 * Scale + 3 * Idx << " && 2 | i + j";
  CountRequestMsg M;
  M.Formula = OS.str();
  M.Vars = {"i", "j"};
  return M;
}

struct PassResult {
  double WallMs = 0;
  double Qps = 0;
  std::vector<std::string> Answers; ///< Index-aligned with the query set.
  bool Ok = true;
};

/// Submits the whole query set once, sliced round-robin over
/// \p Connections concurrent connections, and times the full pass.
PassResult runPass(const std::string &Socket,
                   const std::vector<CountRequestMsg> &Queries,
                   unsigned Connections) {
  PassResult Out;
  Out.Answers.assign(Queries.size(), "");
  std::vector<std::thread> Threads;
  std::vector<char> ThreadOk(Connections, 1);
  auto T0 = std::chrono::steady_clock::now();
  for (unsigned C = 0; C < Connections; ++C)
    Threads.emplace_back([&, C] {
      int Fd = connectTo(Socket);
      if (Fd < 0) {
        ThreadOk[C] = 0;
        return;
      }
      std::vector<uint8_t> Payload;
      for (size_t I = C; I < Queries.size(); I += Connections) {
        if (writeFrame(Fd, encodeCountRequest(Queries[I])) !=
                IoStatus::Ok ||
            readFrame(Fd, Payload, 120000) != IoStatus::Ok) {
          ThreadOk[C] = 0;
          break;
        }
        CountResponseMsg R;
        if (!decodeCountResponse(Payload, R) ||
            !queryOutcomeIsAnswer(R.Outcome)) {
          ThreadOk[C] = 0;
          break;
        }
        Out.Answers[I] = R.Value; // Slices are disjoint: no two threads
                                  // ever write the same index.
      }
      ::close(Fd);
    });
  for (std::thread &T : Threads)
    T.join();
  auto T1 = std::chrono::steady_clock::now();
  Out.WallMs =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          T1 - T0)
          .count();
  Out.Qps = Out.WallMs > 0
                ? 1000.0 * static_cast<double>(Queries.size()) / Out.WallMs
                : 0;
  for (char OkFlag : ThreadOk)
    Out.Ok = Out.Ok && OkFlag;
  return Out;
}

struct ConfigResult {
  unsigned Connections;
  PassResult Cold, Warm;
  double WarmSpeedup = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  int Queries = 24, Scale = 6, Reps = 3;
  bool Quick = false;
  std::string OutPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto NextInt = [&](int Fallback) {
      return ++I < Argc ? std::atoi(Argv[I]) : Fallback;
    };
    if (Arg == "--quick") {
      Quick = true;
      Queries = 6;
      Scale = 4;
      Reps = 1;
    } else if (Arg == "--queries")
      Queries = NextInt(Queries);
    else if (Arg == "--scale")
      Scale = NextInt(Scale);
    else if (Arg == "--reps")
      Reps = NextInt(Reps);
    else if (Arg == "--out")
      OutPath = ++I < Argc ? Argv[I] : "";
    else {
      std::cerr << "usage: bench_server [--quick] [--queries N] "
                   "[--scale N] [--reps N] [--out FILE]\n";
      return 1;
    }
  }

  std::vector<CountRequestMsg> QuerySet;
  QuerySet.reserve(Queries);
  for (int I = 0; I < Queries; ++I)
    QuerySet.push_back(makeQuery(I, Scale));

  const std::vector<unsigned> ConnectionCounts =
      Quick ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 4, 8};
  std::vector<ConfigResult> Results;

  for (unsigned Connections : ConnectionCounts) {
    // Fresh server and fresh cache per configuration, so each cold column
    // really is cold and configurations do not contaminate each other.
    clearConjunctCache();
    resetWildcardState();
    ServerOptions Opts;
    Opts.SocketPath = "/tmp/bench-omegad-" + std::to_string(::getpid()) +
                      "-" + std::to_string(Connections) + ".sock";
    Opts.SoftInFlight = 16; // Measure execution, not admission control.
    Opts.HardInFlight = 64;
    // Size the shared cache for the whole query set: the full-scale set
    // overflows the 1<<14 default and LRU thrash erases the warm column.
    Opts.CacheCapacity = 1 << 17;
    Server S(Opts);
    std::string Err;
    if (!S.start(Err))
      fail(Err);

    ConfigResult R;
    R.Connections = Connections;
    // Best-of-Reps per column, like bench_pipeline: a cold rep starts from
    // an emptied cache every time, a warm rep keeps what cold populated.
    for (int Rep = 0; Rep < Reps; ++Rep) {
      clearConjunctCache();
      resetWildcardState();
      PassResult P = runPass(Opts.SocketPath, QuerySet, Connections);
      if (Rep == 0 || (P.Ok && P.WallMs < R.Cold.WallMs))
        R.Cold = std::move(P);
    }
    // Re-prime from the surviving cold answers' state: the last cold rep
    // left the cache populated with exactly this query set.
    for (int Rep = 0; Rep < Reps; ++Rep) {
      PassResult P = runPass(Opts.SocketPath, QuerySet, Connections);
      if (Rep == 0 || (P.Ok && P.WallMs < R.Warm.WallMs))
        R.Warm = std::move(P);
    }
    S.stop();
    if (!R.Cold.Ok || !R.Warm.Ok)
      fail("transport failure at " + std::to_string(Connections) +
           " connections");
    // Wire-level determinism: the warm pass (and thus every connection
    // layout) must reproduce the cold answers bit for bit.
    for (size_t I = 0; I < QuerySet.size(); ++I)
      if (R.Warm.Answers[I] != R.Cold.Answers[I] ||
          (Results.empty() ? false
                           : R.Cold.Answers[I] !=
                                 Results[0].Cold.Answers[I])) {
        std::cerr << "bench_server: DETERMINISM VIOLATION on query " << I
                  << " at " << Connections << " connections\n";
        return 1;
      }
    R.WarmSpeedup = R.Warm.Qps > 0 ? R.Warm.Qps / R.Cold.Qps : 0;
    Results.push_back(std::move(R));
  }

  double WarmSpeedupMin = -1;
  std::ostringstream JS;
  JS << "{\"schema\":1,\"bench\":\"server\",\"queries\":" << Queries
     << ",\"scale\":" << Scale << ",\"reps\":" << Reps
     << ",\"hardware_concurrency\":"
     << std::thread::hardware_concurrency() << ",\"configs\":[";
  for (size_t I = 0; I < Results.size(); ++I) {
    const ConfigResult &R = Results[I];
    if (I)
      JS << ",";
    JS << "{\"connections\":" << R.Connections
       << ",\"cold_ms\":" << R.Cold.WallMs << ",\"cold_qps\":" << R.Cold.Qps
       << ",\"warm_ms\":" << R.Warm.WallMs << ",\"warm_qps\":" << R.Warm.Qps
       << ",\"warm_speedup\":" << R.WarmSpeedup << "}";
    if (WarmSpeedupMin < 0 || R.WarmSpeedup < WarmSpeedupMin)
      WarmSpeedupMin = R.WarmSpeedup;
  }
  JS << "],\"warm_speedup_min\":" << WarmSpeedupMin
     << ",\"answers_identical\":true}";

  std::cout << JS.str() << "\n";
  if (!OutPath.empty()) {
    std::ofstream Out(OutPath);
    Out << JS.str() << "\n";
  }
  std::cout << "bench_server: ok\n";
  return 0;
}
