//===- bench/bench_sor.cpp - X11: §6 Example 5 / Figure 2 (SOR) ----------===//
//
// The SOR loop's distinct memory locations (N² - 4; 249996 at N = 500)
// and distinct 16-element cache lines (16000 at N = 500), computed
// symbolically via the uniformly-generated-set summarization of §5.1.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "apps/MemoryModel.h"

#include <set>

using namespace omega;

namespace {

AffineExpr var(const char *N) { return AffineExpr::variable(N); }

LoopNest sorNest() {
  LoopNest Nest;
  Nest.add("i", AffineExpr(2), var("N") - AffineExpr(1));
  Nest.add("j", AffineExpr(2), var("N") - AffineExpr(1));
  return Nest;
}

std::vector<ArrayRef> sorRefs() {
  return {{"a", {var("i"), var("j")}},
          {"a", {var("i") - AffineExpr(1), var("j")}},
          {"a", {var("i") + AffineExpr(1), var("j")}},
          {"a", {var("i"), var("j") - AffineExpr(1)}},
          {"a", {var("i"), var("j") + AffineExpr(1)}}};
}

void report() {
  reportHeader("X11", "Figure 2: SOR distinct locations & cache lines");
  PiecewiseValue Cells = countDistinctLocations(sorNest(), sorRefs(), "a");
  reportRow("distinct locations, symbolic", "(N^2 - 4 if N >= 3)",
            Cells.toString());
  reportRow("at N=500", "249996",
            Cells.evaluateInt({{"N", BigInt(500)}}).toString());

  CacheMapping Map; // [(i-1) div 16, j].
  PiecewiseValue Lines =
      countDistinctCacheLines(sorNest(), sorRefs(), "a", Map);
  reportRow("distinct 16-element cache lines at N=500", "16000",
            Lines.evaluateInt({{"N", BigInt(500)}}).toString());
  reportRow("symbolic shape",
            "N(1 + (N-1) div 16) plus boundary corrections (the paper's "
            "printed formula is OCR-garbled; see EXPERIMENTS.md)",
            "piecewise with 16 residue classes");
  // Validate against brute-force line enumeration at a few N.
  for (int64_t N : {100, 137, 500}) {
    std::set<std::pair<int64_t, int64_t>> Truth;
    for (int64_t I = 2; I <= N - 1; ++I)
      for (int64_t J = 2; J <= N - 1; ++J)
        for (auto [DI, DJ] : {std::pair<int64_t, int64_t>{0, 0},
                              {-1, 0},
                              {1, 0},
                              {0, -1},
                              {0, 1}}) {
          int64_t X = I + DI - 1;
          Truth.insert({X >= 0 ? X / 16 : (X - 15) / 16, J + DJ});
        }
    reportRow("brute-force lines at N=" + std::to_string(N),
              std::to_string(Truth.size()),
              Lines.evaluateInt({{"N", BigInt(N)}}).toString());
  }
}

void BM_SORLocations(benchmark::State &State) {
  LoopNest Nest = sorNest();
  std::vector<ArrayRef> Refs = sorRefs();
  for (auto _ : State) {
    PiecewiseValue V = countDistinctLocations(Nest, Refs, "a");
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_SORLocations)->Unit(benchmark::kMillisecond);

void BM_SORCacheLines(benchmark::State &State) {
  LoopNest Nest = sorNest();
  std::vector<ArrayRef> Refs = sorRefs();
  CacheMapping Map;
  for (auto _ : State) {
    PiecewiseValue V = countDistinctCacheLines(Nest, Refs, "a", Map);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_SORCacheLines)->Unit(benchmark::kMillisecond);

void BM_SORCacheLinesVsLineSize(benchmark::State &State) {
  LoopNest Nest = sorNest();
  std::vector<ArrayRef> Refs = sorRefs();
  CacheMapping Map;
  Map.LineSize = BigInt(State.range(0));
  for (auto _ : State) {
    PiecewiseValue V = countDistinctCacheLines(Nest, Refs, "a", Map);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_SORCacheLinesVsLineSize)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

} // namespace

OMEGA_BENCH_MAIN(report)
