//===- bench/BenchReport.h - Shared reproduction-report helpers -*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
// Every bench binary prints a "reproduction report" — the rows the paper
// reports for the corresponding table/figure/example, paper value next to
// measured value — and then runs its google-benchmark timings.
//
//===----------------------------------------------------------------------===//

#ifndef OMEGA_BENCH_BENCHREPORT_H
#define OMEGA_BENCH_BENCHREPORT_H

#include <benchmark/benchmark.h>

#include <cctype>
#include <iostream>
#include <string>

namespace omega {

inline void reportHeader(const std::string &Id, const std::string &Title) {
  std::cout << "\n=== " << Id << ": " << Title << " ===\n";
}

inline void reportRow(const std::string &What, const std::string &Paper,
                      const std::string &Measured) {
  // Flag a mismatch only when both sides are plain integers; symbolic
  // answers print in our notation and are verified by the test suite.
  auto IsInt = [](const std::string &S) {
    if (S.empty())
      return false;
    size_t I = S[0] == '-' ? 1 : 0;
    if (I == S.size())
      return false;
    for (; I < S.size(); ++I)
      if (!std::isdigit(static_cast<unsigned char>(S[I])))
        return false;
    return true;
  };
  bool Differs = IsInt(Paper) && IsInt(Measured) && Paper != Measured;
  std::cout << "  " << What << ": paper=" << Paper
            << " measured=" << Measured << (Differs ? "  [DIFFERS]" : "")
            << "\n";
}

inline int runBenchmarks(int Argc, char **Argv) {
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

} // namespace omega

#define OMEGA_BENCH_MAIN(ReportFn)                                            \
  int main(int argc, char **argv) {                                          \
    ReportFn();                                                               \
    return omega::runBenchmarks(argc, argv);                                  \
  }

#endif // OMEGA_BENCH_BENCHREPORT_H
