//===- bench/bench_dependence.cpp - X17: dependence counting -------------===//
//
// Counting dependence pairs and pipeline communication volumes — the
// paper's §1.1 communication application on top of the Omega test's
// original dependence machinery.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "apps/Dependence.h"

using namespace omega;

namespace {

AffineExpr var(const char *N) { return AffineExpr::variable(N); }

LoopNest wavefront() {
  LoopNest Nest;
  Nest.add("i", AffineExpr(1), var("n"));
  Nest.add("j", AffineExpr(1), var("n"));
  return Nest;
}

void report() {
  reportHeader("X17", "dependence counting & pipeline communication");
  LoopNest Nest = wavefront();
  ArrayRef Write{"a", {var("i"), var("j")}};
  ArrayRef ReadUp{"a", {var("i") - AffineExpr(1), var("j")}};

  reportRow("wavefront has flow dependence", "yes",
            hasDependence(Nest, Write, ReadUp) ? "yes" : "no");
  PiecewiseValue Pairs = countDependencePairs(Nest, Write, ReadUp);
  reportRow("dependence pairs, symbolic", "n(n-1)", Pairs.toString());
  reportRow("pairs at n=100", "9900",
            Pairs.evaluateInt({{"n", BigInt(100)}}).toString());

  PiecewiseValue Comm =
      splitCommunicationCells(Nest, Write, ReadUp, "i", "s");
  reportRow("cells crossing a split of i at s", "n per interior split",
            Comm.toString());
  reportRow("at n=100, s=50", "100",
            Comm.evaluateInt({{"n", BigInt(100)}, {"s", BigInt(50)}})
                .toString());
}

void BM_HasDependence(benchmark::State &State) {
  LoopNest Nest = wavefront();
  ArrayRef Write{"a", {var("i"), var("j")}};
  ArrayRef ReadUp{"a", {var("i") - AffineExpr(1), var("j")}};
  for (auto _ : State)
    benchmark::DoNotOptimize(hasDependence(Nest, Write, ReadUp));
}
BENCHMARK(BM_HasDependence)->Unit(benchmark::kMillisecond);

void BM_CountDependences(benchmark::State &State) {
  LoopNest Nest = wavefront();
  ArrayRef Write{"a", {var("i"), var("j")}};
  ArrayRef ReadUp{"a", {var("i") - AffineExpr(1), var("j")}};
  for (auto _ : State) {
    PiecewiseValue V = countDependencePairs(Nest, Write, ReadUp);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_CountDependences)->Unit(benchmark::kMillisecond);

void BM_SplitCommunication(benchmark::State &State) {
  LoopNest Nest = wavefront();
  ArrayRef Write{"a", {var("i"), var("j")}};
  ArrayRef ReadUp{"a", {var("i") - AffineExpr(1), var("j")}};
  for (auto _ : State) {
    PiecewiseValue V =
        splitCommunicationCells(Nest, Write, ReadUp, "i", "s");
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_SplitCommunication)->Unit(benchmark::kMillisecond);

} // namespace

OMEGA_BENCH_MAIN(report)
