//===- bench/bench_backend.cpp - Pugh vs automaton on dense sets ---------===//
//
// Times the two exact counting algorithms against each other on the
// dense-finite corpus: concrete bounded sets whose strides and skewed
// facets make the §4 splinter summation fan out, while the per-constraint
// binary DFAs (counting/Automaton.h) stay small.  This is the workload
// class the BackendKind::Auto heuristic routes to the automaton, and this
// benchmark is the evidence: it hard-fails unless both backends return
// bit-identical exact counts on every case, and emits one JSON object
// with per-case and aggregate timings.
//
//   bench_backend [--quick] [--reps N] [--out FILE]
//
// --quick drops to one rep so the binary doubles as a ctest smoke test;
// the CI bench leg additionally gates the aggregate speedup (>= 2x on the
// unsanitized default configuration).
//
//===----------------------------------------------------------------------===//

#include "omega/Omega.h"
#include "presburger/Parser.h"
#include "presburger/Var.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace omega;

namespace {

struct Case {
  const char *Name;
  std::vector<std::string> Vars;
  const char *Text;
};

/// The dense-finite corpus.  "dense" is examples/formulas/dense.presburger
/// (kept in sync by the cross-backend golden tests, which pin its count on
/// every backend); the rest stress the same shape from different angles.
const Case kCorpus[] = {
    {"dense",
     {"i", "j"},
     "0 <= i <= 50 && 0 <= j <= 50 && 2*i + 3*j <= 120 && 3 | i + j && "
     "(4 | i - j || 2*j - i >= 40)"},
    {"skewed-strides",
     {"i", "j"},
     "0 <= i <= 60 && 0 <= j <= 60 && 3*i + 2*j <= 150 && 5 | i + 2*j"},
    {"striped-union",
     {"i", "j"},
     "((0 <= i <= 40 && 2 | i) || (10 <= i <= 70 && 3 | i + 1)) && "
     "0 <= j <= 30 && 4 | i + j"},
    {"diamond",
     {"i", "j"},
     "0 - 30 <= i + j <= 30 && 0 - 30 <= i - j <= 30 && 6 | i && 4 | j"},
    {"triple",
     {"i", "j", "k"},
     "0 <= i <= 20 && 0 <= j <= 20 && 0 <= k <= 20 && i + j + k <= 30 && "
     "2 | i + j && 3 | j + k"},
};

struct CaseResult {
  std::string Name;
  std::string Count;
  double PughMs = 0;
  double AutomatonMs = 0;
};

[[noreturn]] void fail(const std::string &Msg) {
  std::cerr << "bench_backend: error: " << Msg << "\n";
  std::exit(1);
}

/// Best-of-\p Reps wall time for one backend on one case; the exact count
/// is returned through \p Count and must be identical across backends.
double timeBackend(BackendKind K, const Formula &F, const VarSet &Vars,
                   int Reps, const std::string &Name, std::string &Count) {
  CountOptions Opts;
  Opts.Backend = K;
  double BestMs = -1;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    auto T0 = std::chrono::steady_clock::now();
    CountResult R = countSolutions(F, Vars, Opts);
    auto T1 = std::chrono::steady_clock::now();
    if (R.Status != CountStatus::Exact)
      fail(Name + ": " + backendKindName(K) + " did not answer exactly: " +
           (R.Status == CountStatus::Error ? R.Err.toString()
                                           : "degraded/unbounded"));
    Count = R.Value.evaluateInt(Assignment{}).toString();
    double Ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            T1 - T0)
            .count();
    if (BestMs < 0 || Ms < BestMs)
      BestMs = Ms;
  }
  return BestMs;
}

} // namespace

int main(int Argc, char **Argv) {
  int Reps = 5;
  std::string OutPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--quick")
      Reps = 1;
    else if (Arg == "--reps")
      Reps = ++I < Argc ? std::atoi(Argv[I]) : Reps;
    else if (Arg == "--out")
      OutPath = ++I < Argc ? Argv[I] : "";
    else {
      std::cerr << "usage: bench_backend [--quick] [--reps N] [--out FILE]\n";
      return 1;
    }
  }

  std::vector<CaseResult> Results;
  double PughTotal = 0, AutomatonTotal = 0;
  for (const Case &C : kCorpus) {
    ParseResult R = parseFormula(C.Text);
    if (!R)
      fail(std::string(C.Name) + ": internal parse error: " + R.Error);
    VarSet Vars(C.Vars.begin(), C.Vars.end());

    CaseResult CR;
    CR.Name = C.Name;
    std::string PughCount, DfaCount;
    CR.PughMs =
        timeBackend(BackendKind::Pugh, *R.Value, Vars, Reps, C.Name,
                    PughCount);
    CR.AutomatonMs =
        timeBackend(BackendKind::Automaton, *R.Value, Vars, Reps, C.Name,
                    DfaCount);
    if (PughCount != DfaCount)
      fail(std::string(C.Name) + ": DISAGREEMENT: pugh counted " +
           PughCount + " but automaton counted " + DfaCount);
    CR.Count = PughCount;
    PughTotal += CR.PughMs;
    AutomatonTotal += CR.AutomatonMs;
    Results.push_back(CR);
  }

  double Speedup = AutomatonTotal > 0 ? PughTotal / AutomatonTotal : 0;
  std::ostringstream JS;
  JS << "{\"schema\":3,\"bench\":\"backend\",\"reps\":" << Reps
     << ",\"cases\":[";
  for (size_t I = 0; I < Results.size(); ++I) {
    const CaseResult &R = Results[I];
    if (I)
      JS << ",";
    JS << "{\"name\":\"" << R.Name << "\",\"count\":" << R.Count
       << ",\"pugh_ms\":" << R.PughMs
       << ",\"automaton_ms\":" << R.AutomatonMs << ",\"speedup\":"
       << (R.AutomatonMs > 0 ? R.PughMs / R.AutomatonMs : 0) << "}";
  }
  JS << "],\"pugh_total_ms\":" << PughTotal
     << ",\"automaton_total_ms\":" << AutomatonTotal
     << ",\"speedup\":" << Speedup << ",\"answers_identical\":true}";
  std::cout << JS.str() << "\n";
  if (!OutPath.empty()) {
    std::ofstream Out(OutPath);
    if (!Out)
      fail("cannot write " + OutPath);
    Out << JS.str() << "\n";
  }
  std::cerr << "bench_backend: ok; counts identical on all "
            << Results.size() << " cases, automaton x" << Speedup
            << " vs pugh\n";
  return 0;
}
