//===- bench/bench_ir.cpp - Flat-term AffineExpr IR gate -----------------===//
//
// Measures the interned-variable, flat-term AffineExpr (DESIGN.md §16)
// against the representation it replaced: a BigInt constant plus a
// std::map<std::string, BigInt> keyed on variable names.  The reference
// model lives in this file so the comparison survives the old code's
// deletion, and both implementations run the identical deterministic
// workload streams over a four-variable roster (every intermediate stays
// within InlineCapacity, which is the shape the Omega test produces).
//
// Sections cover the clause hot paths: copy + gcd-normalize, the
// Fourier-combine accumulate (+=/-=), equality-elimination substitution,
// and the canonical-key three-way comparison that feeds
// canonicalConjunct's sort.
//
// Three properties are enforced, not just reported (any violation exits 1):
//
//   * differential: each section's flat and map checksums agree;
//   * golden: checksums match the values hardcoded below for the standard
//     workload sizes, so an IR regression cannot hide behind
//     self-consistency;
//   * allocation-free: a global operator new/delete interposer counts heap
//     allocations during the flat runs — the total must be zero, and the
//     AffineExpr spill counter must also read zero (everything stays in
//     the inline term buffer).
//
//   bench_ir [--quick] [--reps N] [--ops N] [--out FILE]
//
// One JSON object is printed to stdout (and written to FILE with --out);
// ci.sh runs `--quick` as a smoke gate (aggregate speedup >= 3x) and the
// full form refreshes BENCH_ir.json at the repo root.
//
//===----------------------------------------------------------------------===//

#include "presburger/AffineExpr.h"
#include "presburger/Var.h"
#include "presburger/VarTable.h"
#include "support/BigInt.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <vector>

using namespace omega;

//===----------------------------------------------------------------------===//
// Allocation-counting harness (same shape as bench_arith)
//===----------------------------------------------------------------------===//

namespace {
std::atomic<bool> CountAllocs{false};
std::atomic<uint64_t> AllocCount{0};
} // namespace

// This *is* the global allocator (the zero-allocation gate counts every
// heap call through it), so malloc/free here are the implementation, not
// a leak hazard.  omegatidy: allow(naked-new)
void *operator new(std::size_t N) {
  if (CountAllocs.load(std::memory_order_relaxed))
    AllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(N ? N : 1)) // omegatidy: allow(naked-new)
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t N) { return ::operator new(N); }
// The operator delete overloads forward straight to free.
void operator delete(void *P) noexcept { std::free(P); } // omegatidy: allow(naked-new)
void operator delete(void *P, std::size_t) noexcept { std::free(P); } // omegatidy: allow(naked-new)
void operator delete[](void *P) noexcept { std::free(P); } // omegatidy: allow(naked-new)
void operator delete[](void *P, std::size_t) noexcept { std::free(P); } // omegatidy: allow(naked-new)

namespace {

/// RAII window during which global allocations are tallied.
struct AllocWindow {
  uint64_t Before;
  AllocWindow() : Before(AllocCount.load()) {
    CountAllocs.store(true, std::memory_order_relaxed);
  }
  uint64_t close() {
    CountAllocs.store(false, std::memory_order_relaxed);
    return AllocCount.load() - Before;
  }
};

//===----------------------------------------------------------------------===//
// The reference model: the pre-interning expression representation
//===----------------------------------------------------------------------===//

/// `c0 + Σ ci * vi` with coefficients keyed on variable *names* — the
/// per-term node allocations, string copies, and string compares the flat
/// representation eliminated.  Only the operations the sections time are
/// modeled, with the same zero-elision invariant.
struct MapExpr {
  BigInt Const;
  std::map<std::string, BigInt> Terms;

  void setCoeff(const std::string &Name, BigInt C) {
    if (C.isZero())
      Terms.erase(Name);
    else
      Terms[Name] = std::move(C);
  }

  /// this += Scale * RHS (the Fourier-combine / substitution inner loop).
  void addScaled(const MapExpr &RHS, const BigInt *Scale, bool Negate) {
    for (const auto &[Name, Coef] : RHS.Terms) {
      BigInt C = Scale ? Coef * *Scale : Coef;
      if (Negate)
        C = -C;
      auto It = Terms.find(Name);
      if (It == Terms.end()) {
        Terms.emplace(Name, std::move(C));
        continue;
      }
      It->second += C;
      if (It->second.isZero())
        Terms.erase(It);
    }
  }

  MapExpr &operator+=(const MapExpr &RHS) {
    Const += RHS.Const;
    addScaled(RHS, nullptr, false);
    return *this;
  }
  MapExpr &operator-=(const MapExpr &RHS) {
    Const -= RHS.Const;
    addScaled(RHS, nullptr, true);
    return *this;
  }
  MapExpr &operator*=(const BigInt &Factor) {
    Const *= Factor;
    for (auto &KV : Terms)
      KV.second *= Factor;
    return *this;
  }

  BigInt coeffGcd() const {
    BigInt G(0);
    for (const auto &KV : Terms) {
      G = BigInt::gcd(G, KV.second);
      if (G.isOne())
        break;
    }
    return G;
  }

  void divCoeffsExact(const BigInt &G) {
    if (G.isOne())
      return;
    for (auto &KV : Terms)
      KV.second = BigInt::divExact(KV.second, G);
  }

  void substitute(const std::string &Name, const MapExpr &Replacement) {
    auto It = Terms.find(Name);
    if (It == Terms.end())
      return;
    BigInt C = std::move(It->second);
    Terms.erase(It);
    Const += C * Replacement.Const;
    addScaled(Replacement, &C, false);
  }

  /// The container-order compare the flat operator< replicates.
  friend bool operator<(const MapExpr &L, const MapExpr &R) {
    if (L.Const != R.Const)
      return L.Const < R.Const;
    return L.Terms < R.Terms;
  }
};

//===----------------------------------------------------------------------===//
// Deterministic workloads over a four-variable roster
//===----------------------------------------------------------------------===//

/// Forces the serialized key bytes to materialize (the buffers are never
/// read back, and a dead-store elimination would time nothing).
volatile uint64_t BenchSink = 0;

/// Fixed-seed LCG so every run (and every platform) times the identical
/// workload stream.
struct Lcg {
  uint64_t X = 0x9e3779b97f4a7c15ull;
  uint64_t next() {
    X = X * 6364136223846793005ull + 1442695040888963407ull;
    return X;
  }
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(next() %
                                     static_cast<uint64_t>(Hi - Lo + 1));
  }
};

/// Exactly InlineCapacity variables: every merge result stays inline, so
/// the flat runs must be allocation- and spill-free end to end.
const char *RosterNames[] = {"i", "j", "k", "n"};
constexpr size_t RosterSize = 4;
static_assert(RosterSize == AffineExpr::InlineCapacity,
              "roster sized to pin the inline-path gate");

struct ExprPair {
  AffineExpr Flat;
  MapExpr Map;
};

/// One expression over a random subset of the roster, mirrored into both
/// representations.  MentionAll forces every roster variable in (for the
/// substitution targets).
ExprPair makeExpr(Lcg &R, const std::vector<VarId> &Ids, unsigned MaxTerms,
                  bool MentionAll) {
  ExprPair P;
  int64_t K = R.range(-9999, 9999);
  P.Flat.setConstant(BigInt(K));
  P.Map.Const = BigInt(K);
  unsigned NTerms = MentionAll
                        ? static_cast<unsigned>(RosterSize)
                        : static_cast<unsigned>(R.range(1, MaxTerms));
  // Distinct variables: walk the roster, keeping each with probability
  // proportional to the quota left.
  unsigned Kept = 0;
  for (size_t V = 0; V < RosterSize && Kept < NTerms; ++V) {
    if (!MentionAll &&
        static_cast<uint64_t>(R.range(0, RosterSize - V - 1)) >=
            static_cast<uint64_t>(NTerms - Kept))
      continue;
    int64_t C = R.range(1, 9999) * (R.next() & 1 ? 1 : -1);
    P.Flat.setCoeff(Ids[V], BigInt(C));
    P.Map.setCoeff(RosterNames[V], BigInt(C));
    ++Kept;
  }
  return P;
}

using Clock = std::chrono::steady_clock;

/// Order-insensitive checksum fold: Const plus Σ Coef * weight(var).  Both
/// representations iterate in their own storage order, so the fold must
/// not depend on it.
uint64_t foldFlat(uint64_t H, const AffineExpr &E,
                  const std::vector<int64_t> &WeightById) {
  int64_t Sum = E.constant().toInt64();
  for (const auto &[V, Coef] : E.terms())
    Sum += Coef.toInt64() * WeightById[V.index()];
  return H * 1000003ull + static_cast<uint64_t>(Sum);
}

uint64_t foldMap(uint64_t H, const MapExpr &E,
                 const std::map<std::string, int64_t> &WeightByName) {
  int64_t Sum = E.Const.toInt64();
  for (const auto &[Name, Coef] : E.Terms)
    Sum += Coef.toInt64() * WeightByName.at(Name);
  return H * 1000003ull + static_cast<uint64_t>(Sum);
}

struct SectionResult {
  std::string Name;
  double FlatNsPerOp = 0, MapNsPerOp = 0;
  double FlatBestNs = 0, MapBestNs = 0;
  uint64_t OpsTimed = 0;
  uint64_t FlatAllocs = 0;
  uint64_t FlatChecksum = 0, MapChecksum = 0;
  uint64_t GoldenChecksum = 0; ///< 0 = no golden known for this --ops size.
  double speedup() const { return MapNsPerOp / FlatNsPerOp; }
  bool ok() const {
    return FlatChecksum == MapChecksum &&
           (GoldenChecksum == 0 || FlatChecksum == GoldenChecksum);
  }
};

/// Times FlatBody and MapBody (each a callable returning the checksum),
/// best-of-reps, counting allocations during the flat run.
template <typename FlatFn, typename MapFn>
SectionResult runSection(const std::string &Name, uint64_t Ops, int Reps,
                         uint64_t Golden, FlatFn FlatBody, MapFn MapBody) {
  SectionResult R;
  R.Name = Name;
  R.OpsTimed = Ops;
  R.GoldenChecksum = Golden;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    AllocWindow W;
    auto T0 = Clock::now();
    R.FlatChecksum = FlatBody();
    auto T1 = Clock::now();
    R.FlatAllocs = W.close();
    double Ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
            .count());
    if (Rep == 0 || Ns < R.FlatBestNs)
      R.FlatBestNs = Ns;
  }
  for (int Rep = 0; Rep < Reps; ++Rep) {
    auto T0 = Clock::now();
    R.MapChecksum = MapBody();
    auto T1 = Clock::now();
    double Ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
            .count());
    if (Rep == 0 || Ns < R.MapBestNs)
      R.MapBestNs = Ns;
  }
  R.FlatNsPerOp = R.FlatBestNs / static_cast<double>(Ops);
  R.MapNsPerOp = R.MapBestNs / static_cast<double>(Ops);
  return R;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  size_t Ops = 200000;
  int Reps = 3;
  std::string OutPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (++I >= Argc) {
        std::cerr << "bench_ir: missing value after " << Arg << "\n";
        std::exit(1);
      }
      return Argv[I];
    };
    if (Arg == "--quick") {
      // Best-of-3 even in quick mode: the aggregate gates CI at 3x, and a
      // single rep on a busy single-core host swings far wider than that.
      Ops = 20000;
      Reps = 3;
    } else if (Arg == "--ops")
      Ops = static_cast<size_t>(std::atoll(Next()));
    else if (Arg == "--reps")
      Reps = std::atoi(Next());
    else if (Arg == "--out")
      OutPath = Next();
    else {
      std::cerr
          << "usage: bench_ir [--quick] [--ops N] [--reps N] [--out F]\n";
      return 1;
    }
  }

  // Intern the roster before any timed window; ids never mint strings on
  // the hot paths after this point.
  std::vector<VarId> Ids;
  for (const char *Name : RosterNames)
    Ids.push_back(internVar(Name));
  std::vector<int64_t> WeightById(varTableSize(), 0);
  std::map<std::string, int64_t> WeightByName;
  for (size_t V = 0; V < RosterSize; ++V) {
    WeightById[Ids[V].index()] = static_cast<int64_t>(V) + 3;
    WeightByName[RosterNames[V]] = static_cast<int64_t>(V) + 3;
  }

  // Workload pools (outside every timed window).
  Lcg R;
  std::vector<ExprPair> Pool, Addends, SubTargets, SubReplacements;
  const size_t PoolSize = 512;
  for (size_t I = 0; I < PoolSize; ++I) {
    Pool.push_back(makeExpr(R, Ids, 4, false));
    Addends.push_back(makeExpr(R, Ids, 2, false));
    SubTargets.push_back(makeExpr(R, Ids, 4, true));
    SubReplacements.push_back(makeExpr(R, Ids, 2, false));
  }
  // Substitution replaces roster variable (I % RosterSize); the
  // replacement must not mention it.
  for (size_t I = 0; I < PoolSize; ++I) {
    size_t V = I % RosterSize;
    SubReplacements[I].Flat.setCoeff(Ids[V], BigInt(0));
    SubReplacements[I].Map.setCoeff(RosterNames[V], BigInt(0));
  }
  std::vector<int64_t> Scales;
  for (size_t I = 0; I < PoolSize; ++I)
    Scales.push_back(R.range(2, 9));

  exprCounters().Spills.store(0);
  uint64_t ArithSpillsBefore = arithCounters().Spills.load();

  // Golden checksums for the two standard workload sizes (0 = unknown
  // size, golden check skipped; the flat-vs-map differential still
  // applies).
  struct Goldens {
    uint64_t CopyNormalize, Accumulate, Substitute, CoeffProbe, ClauseKey,
        CanonicalKey;
  };
  Goldens G{};
  if (Ops == 20000)
    G = {0x6d20db8a7b90c6daULL, 0x24a0bb27b8ca2724ULL, 0x73ff8b8ea61d622bULL,
         0x88393bb806a88ea2ULL, 0x8efb652fd2823549ULL, 0x9478bb249f284528ULL};
  else if (Ops == 200000)
    G = {0xa509d4e6a9e37f4aULL, 0x0ee81073fe9cc5c7ULL, 0x277428d42a56a52dULL,
         0x0c842a9399c3e457ULL, 0x36632dd8c99254a3ULL, 0x91d73c8d11c6a1b2ULL};

  std::vector<SectionResult> Sections;

  // Clause copy + gcd-normalize: the canonicalization shape — every
  // constraint entering a Conjunct is copied, scaled, and gcd-reduced.
  Sections.push_back(runSection(
      "copy_normalize", Ops, Reps, G.CopyNormalize,
      [&] {
        uint64_t H = 0;
        for (size_t I = 0; I < Ops; ++I) {
          const ExprPair &P = Pool[I % PoolSize];
          AffineExpr E = P.Flat;
          E *= BigInt(Scales[I % PoolSize]);
          BigInt Gcd = E.coeffGcd();
          if (!Gcd.isZero())
            E.divCoeffsExact(Gcd);
          H = foldFlat(H, E, WeightById);
        }
        return H;
      },
      [&] {
        uint64_t H = 0;
        for (size_t I = 0; I < Ops; ++I) {
          const ExprPair &P = Pool[I % PoolSize];
          MapExpr E = P.Map;
          E *= BigInt(Scales[I % PoolSize]);
          BigInt Gcd = E.coeffGcd();
          if (!Gcd.isZero())
            E.divCoeffsExact(Gcd);
          H = foldMap(H, E, WeightByName);
        }
        return H;
      }));

  // Accumulate: the Fourier-combine inner loop — copy a bound, add one
  // scaled row, subtract another.
  Sections.push_back(runSection(
      "accumulate", Ops, Reps, G.Accumulate,
      [&] {
        uint64_t H = 0;
        for (size_t I = 0; I < Ops; ++I) {
          AffineExpr E = Pool[I % PoolSize].Flat;
          E += Addends[I % PoolSize].Flat;
          E -= Addends[(I + 7) % PoolSize].Flat;
          H = foldFlat(H, E, WeightById);
        }
        return H;
      },
      [&] {
        uint64_t H = 0;
        for (size_t I = 0; I < Ops; ++I) {
          MapExpr E = Pool[I % PoolSize].Map;
          E += Addends[I % PoolSize].Map;
          E -= Addends[(I + 7) % PoolSize].Map;
          H = foldMap(H, E, WeightByName);
        }
        return H;
      }));

  // Substitution: the equality-elimination shape — replace one variable
  // with an affine combination of the others.
  Sections.push_back(runSection(
      "substitute", Ops, Reps, G.Substitute,
      [&] {
        uint64_t H = 0;
        for (size_t I = 0; I < Ops; ++I) {
          size_t P = I % PoolSize;
          AffineExpr E = SubTargets[P].Flat;
          E.substitute(Ids[P % RosterSize], SubReplacements[P].Flat);
          H = foldFlat(H, E, WeightById);
        }
        return H;
      },
      [&] {
        uint64_t H = 0;
        for (size_t I = 0; I < Ops; ++I) {
          size_t P = I % PoolSize;
          MapExpr E = SubTargets[P].Map;
          E.substitute(RosterNames[P % RosterSize], SubReplacements[P].Map);
          H = foldMap(H, E, WeightByName);
        }
        return H;
      }));

  // Coefficient probe: the bound-collection / support-test shape — every
  // constraint is asked for the coefficient of every candidate variable
  // (Project's collectBounds, Simplify's violatesAt).  A contiguous scan
  // of at most four ids against a string-keyed tree find.
  Sections.push_back(runSection(
      "coeff_probe", Ops, Reps, G.CoeffProbe,
      [&] {
        uint64_t H = 0;
        for (size_t I = 0; I < Ops; ++I) {
          const AffineExpr &E = Pool[I % PoolSize].Flat;
          int64_t Sum = 0;
          for (size_t V = 0; V < RosterSize; ++V)
            Sum += E.coeff(Ids[V]).toInt64() * WeightById[Ids[V].index()];
          H = H * 1000003ull + static_cast<uint64_t>(Sum);
        }
        return H;
      },
      [&] {
        uint64_t H = 0;
        for (size_t I = 0; I < Ops; ++I) {
          const MapExpr &E = Pool[I % PoolSize].Map;
          int64_t Sum = 0;
          for (size_t V = 0; V < RosterSize; ++V) {
            auto It = E.Terms.find(RosterNames[V]);
            if (It != E.Terms.end())
              Sum += It->second.toInt64() * WeightByName.at(RosterNames[V]);
          }
          H = H * 1000003ull + static_cast<uint64_t>(Sum);
        }
        return H;
      }));

  // Clause key: the cache / coalesce-index key-building shape — serialize
  // each constraint into a flat byte key.  Ids and int64 coefficients
  // write straight into a stack buffer; names force digit formatting and
  // string growth.  The checksum folds the order-insensitive coefficient
  // digest plus the entry count, which both serializations share.
  Sections.push_back(runSection(
      "clause_key", Ops, Reps, G.ClauseKey,
      [&] {
        uint64_t H = 0;
        unsigned char Buf[RosterSize * 12 + 8];
        for (size_t I = 0; I < Ops; ++I) {
          const AffineExpr &E = Pool[I % PoolSize].Flat;
          size_t N = 0;
          auto put64 = [&](uint64_t V) {
            for (int B = 0; B < 8; ++B)
              Buf[N++] = static_cast<unsigned char>(V >> (8 * B));
          };
          put64(static_cast<uint64_t>(E.constant().toInt64()));
          for (const auto &[V, Coef] : E.terms()) {
            uint32_t Raw = V.index();
            for (int B = 0; B < 4; ++B)
              Buf[N++] = static_cast<unsigned char>(Raw >> (8 * B));
            put64(static_cast<uint64_t>(Coef.toInt64()));
          }
          BenchSink = BenchSink + Buf[N - 1];
          H = foldFlat(H * 31 + N, E, WeightById);
        }
        return H;
      },
      [&] {
        uint64_t H = 0;
        std::string Key;
        for (size_t I = 0; I < Ops; ++I) {
          const MapExpr &E = Pool[I % PoolSize].Map;
          Key.clear();
          Key += E.Const.toString();
          for (const auto &[Name, Coef] : E.Terms) {
            Key += ';';
            Key += Name;
            Key += '*';
            Key += Coef.toString();
          }
          BenchSink = BenchSink + Key.size();
          size_t N = 8 + E.Terms.size() * 12;
          H = foldMap(H * 31 + N, E, WeightByName);
        }
        return H;
      }));

  // Canonical key: the three-way compare canonicalConjunct's constraint
  // sort runs — name order on the flat side, container order on the map.
  Sections.push_back(runSection(
      "canonical_key", Ops, Reps, G.CanonicalKey,
      [&] {
        uint64_t H = 0;
        for (size_t I = 0; I < Ops; ++I) {
          const AffineExpr &L = Pool[I % PoolSize].Flat;
          const AffineExpr &Rr = Pool[(I + 13) % PoolSize].Flat;
          H = H * 1000003ull + (L < Rr ? 1 : 2);
        }
        return H;
      },
      [&] {
        uint64_t H = 0;
        for (size_t I = 0; I < Ops; ++I) {
          const MapExpr &L = Pool[I % PoolSize].Map;
          const MapExpr &Rr = Pool[(I + 13) % PoolSize].Map;
          H = H * 1000003ull + (L < Rr ? 1 : 2);
        }
        return H;
      }));

  uint64_t ExprSpills = exprCounters().Spills.load();
  uint64_t ArithSpills = arithCounters().Spills.load() - ArithSpillsBefore;
  bool Failed = false;
  uint64_t TotalFlatAllocs = 0;
  double FlatTotalNs = 0, MapTotalNs = 0;
  for (const SectionResult &S : Sections) {
    TotalFlatAllocs += S.FlatAllocs;
    FlatTotalNs += S.FlatBestNs;
    MapTotalNs += S.MapBestNs;
    if (S.FlatChecksum != S.MapChecksum) {
      std::cerr << "bench_ir: DIFFERENTIAL MISMATCH in " << S.Name
                << ": flat=" << std::hex << S.FlatChecksum
                << " map=" << S.MapChecksum << std::dec << "\n";
      Failed = true;
    }
    if (S.GoldenChecksum != 0 && S.FlatChecksum != S.GoldenChecksum) {
      std::cerr << "bench_ir: GOLDEN MISMATCH in " << S.Name << ": got="
                << std::hex << S.FlatChecksum << " want=" << S.GoldenChecksum
                << std::dec << "\n";
      Failed = true;
    }
    if (S.FlatAllocs != 0) {
      std::cerr << "bench_ir: ALLOCATION on the inline-term path in "
                << S.Name << ": " << S.FlatAllocs << " allocations\n";
      Failed = true;
    }
  }
  if (ExprSpills != 0) {
    std::cerr << "bench_ir: TERM SPILLS on the inline path: " << ExprSpills
              << "\n";
    Failed = true;
  }
  if (ArithSpills != 0) {
    std::cerr << "bench_ir: BIGINT SPILLS on the inline path: " << ArithSpills
              << "\n";
    Failed = true;
  }
  // The headline gate: total time over the four clause-shaped sections,
  // flat vs the map reference (ci.sh asserts >= 3x).
  double Aggregate = MapTotalNs / FlatTotalNs;

  std::ostringstream JS;
  JS << "{\"bench\":\"ir\",\"schema\":1,\"ops\":" << Ops
     << ",\"reps\":" << Reps << ",\"inline_capacity\":"
     << AffineExpr::InlineCapacity << ",\"sections\":[";
  for (size_t I = 0; I < Sections.size(); ++I) {
    const SectionResult &S = Sections[I];
    if (I)
      JS << ",";
    JS << "{\"name\":\"" << jsonEscape(S.Name) << "\",\"flat_ns_per_op\":"
       << S.FlatNsPerOp << ",\"map_ns_per_op\":" << S.MapNsPerOp
       << ",\"speedup\":" << S.speedup() << ",\"flat_allocations\":"
       << S.FlatAllocs << ",\"checksum\":\"" << std::hex << S.FlatChecksum
       << std::dec << "\",\"checksum_ok\":" << (S.ok() ? "true" : "false")
       << "}";
  }
  JS << "],\"aggregate_speedup\":" << Aggregate
     << ",\"flat_allocations_total\":" << TotalFlatAllocs
     << ",\"flat_term_spills\":" << ExprSpills
     << ",\"flat_bigint_spills\":" << ArithSpills
     << ",\"checks_passed\":" << (Failed ? "false" : "true") << "}";
  std::cout << JS.str() << "\n";
  if (!OutPath.empty()) {
    std::ofstream Out(OutPath);
    if (!Out) {
      std::cerr << "bench_ir: cannot write " << OutPath << "\n";
      return 1;
    }
    Out << JS.str() << "\n";
  }

  std::cerr << "bench_ir: flat terms x" << Aggregate
            << " vs string-keyed map aggregate, " << TotalFlatAllocs
            << " allocations, " << ExprSpills
            << " term spills on the inline path\n";
  if (Failed)
    return 1;
  std::cout << "bench_ir: ok\n";
  return 0;
}
