//===- bench/bench_memory.cpp - X10: §6 Example 4 (FST locations) --------===//
//
// a(6i + 9j - 7) over 1<=i<=8, 1<=j<=5 touches 25 distinct locations;
// also contrasts FST inclusion-exclusion against the disjoint-DNF route
// on a multi-reference union (§4.5.1's 2^k blowup).
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "apps/MemoryModel.h"
#include "baselines/InclusionExclusion.h"

using namespace omega;

namespace {

AffineExpr var(const char *N) { return AffineExpr::variable(N); }

LoopNest fstNest() {
  LoopNest Nest;
  Nest.add("i", AffineExpr(1), AffineExpr(8));
  Nest.add("j", AffineExpr(1), AffineExpr(5));
  return Nest;
}

/// Clauses for the union of k shifted windows over x (stress for
/// inclusion-exclusion).
std::vector<Conjunct> shiftedWindows(unsigned K) {
  std::vector<Conjunct> Out;
  for (unsigned I = 0; I < K; ++I) {
    Conjunct C;
    C.add(Constraint::ge(var("x") - AffineExpr(int(3 * I))));
    C.add(Constraint::ge(AffineExpr(int(3 * I + 10)) - var("x")));
    Out.push_back(std::move(C));
  }
  return Out;
}

void report() {
  reportHeader("X10", "Example 4: distinct locations of a(6i+9j-7)");
  ArrayRef R{"a", {BigInt(6) * var("i") + BigInt(9) * var("j") -
                   AffineExpr(7)}};
  PiecewiseValue V = countDistinctLocations(fstNest(), {R}, "a");
  reportRow("distinct memory locations", "25",
            V.evaluateInt({}).toString());
  reportRow("as computed (clauses x=8, 5<=a<=27 via x=3a-1, x=86)",
            "1 + 23 + 1", V.toString());

  reportHeader("X10b", "union counting: FST inclusion-exclusion vs §5");
  for (unsigned K : {3u, 5u, 7u}) {
    std::vector<Conjunct> Clauses = shiftedWindows(K);
    InclusionExclusionResult IE =
        countUnionInclusionExclusion(Clauses, {"x"});
    std::vector<Formula> Parts;
    for (const Conjunct &C : Clauses)
      Parts.push_back(Formula::fromConjunct(C));
    PiecewiseValue Ours = countSolutions(Formula::disj(Parts), {"x"});
    reportRow("k=" + std::to_string(K) + " inclusion-exclusion summations",
              "up to 2^k-1 = " + std::to_string((1u << K) - 1) +
                  (K == 3 ? " (paper: 7 for 3 clauses)" : ""),
              std::to_string(IE.NumSummations) +
                  " (empty intersections skipped)");
    reportRow("  counts agree",
              IE.Value.evaluate({}).toString(),
              Ours.evaluate({}).toString());
  }
}

void BM_FSTLocations(benchmark::State &State) {
  ArrayRef R{"a", {BigInt(6) * var("i") + BigInt(9) * var("j") -
                   AffineExpr(7)}};
  LoopNest Nest = fstNest();
  for (auto _ : State) {
    PiecewiseValue V = countDistinctLocations(Nest, {R}, "a");
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_FSTLocations)->Unit(benchmark::kMillisecond);

void BM_UnionInclusionExclusion(benchmark::State &State) {
  std::vector<Conjunct> Clauses =
      shiftedWindows(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    InclusionExclusionResult R =
        countUnionInclusionExclusion(Clauses, {"x"});
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_UnionInclusionExclusion)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_UnionDisjointDNF(benchmark::State &State) {
  std::vector<Conjunct> Clauses =
      shiftedWindows(static_cast<unsigned>(State.range(0)));
  std::vector<Formula> Parts;
  for (const Conjunct &C : Clauses)
    Parts.push_back(Formula::fromConjunct(C));
  Formula F = Formula::disj(Parts);
  for (auto _ : State) {
    PiecewiseValue V = countSolutions(F, {"x"});
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_UnionDisjointDNF)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

} // namespace

OMEGA_BENCH_MAIN(report)
