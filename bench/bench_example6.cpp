//===- bench/bench_example6.cpp - X13: §6 Example 6 ----------------------===//
//
// (Σ i,j : 1 <= i ∧ j <= n ∧ 2i <= 3j : 1) = (3n² + 2n - n mod 2)/4,
// computed through splintering (2|3j even/odd), projected clauses, and
// the mod-atom symbolic form — the paper's capstone example.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "counting/Summation.h"
#include "presburger/Parser.h"

using namespace omega;

namespace {

void report() {
  reportHeader("X13", "Example 6: (Σ i,j : 1<=i, j<=n, 2i<=3j : 1)");
  Formula F =
      parseFormulaOrDie("1 <= i && 1 <= j && j <= n && 2*i <= 3*j");
  PiecewiseValue V = countSolutions(F, {"i", "j"});
  reportRow("symbolic", "(3n^2 + 2n - n mod 2)/4 for n >= 1",
            V.toString());
  bool Match = true;
  for (int64_t N = 0; N <= 50; ++N) {
    int64_t Paper = N >= 1 ? (3 * N * N + 2 * N - (N % 2)) / 4 : 0;
    Match = Match && V.evaluate({{"n", BigInt(N)}}) ==
                         Rational(BigInt(Paper));
  }
  reportRow("matches the paper's closed form on 0..50", "yes",
            Match ? "yes" : "no");
  reportRow("value at n=100", "7550",
            V.evaluateInt({{"n", BigInt(100)}}).toString());

  // The SymbolicMod strategy reproduces the compact mod-atom form.
  SumOptions Sym;
  Sym.Strategy = BoundStrategy::SymbolicMod;
  PiecewiseValue VS = countSolutions(F, {"i", "j"}, Sym);
  reportRow("mod-atom form", "-", VS.toString());
  bool Match2 = true;
  for (int64_t N = 0; N <= 50; ++N)
    Match2 = Match2 && VS.evaluate({{"n", BigInt(N)}}) ==
                           V.evaluate({{"n", BigInt(N)}});
  reportRow("strategies agree", "yes", Match2 ? "yes" : "no");
}

void BM_Example6Splinter(benchmark::State &State) {
  Formula F =
      parseFormulaOrDie("1 <= i && 1 <= j && j <= n && 2*i <= 3*j");
  for (auto _ : State) {
    PiecewiseValue V = countSolutions(F, {"i", "j"});
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_Example6Splinter)->Unit(benchmark::kMillisecond);

void BM_Example6SymbolicMod(benchmark::State &State) {
  Formula F =
      parseFormulaOrDie("1 <= i && 1 <= j && j <= n && 2*i <= 3*j");
  SumOptions Opts;
  Opts.Strategy = BoundStrategy::SymbolicMod;
  for (auto _ : State) {
    PiecewiseValue V = countSolutions(F, {"i", "j"}, Opts);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_Example6SymbolicMod)->Unit(benchmark::kMillisecond);

} // namespace

OMEGA_BENCH_MAIN(report)
