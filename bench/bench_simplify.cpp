//===- bench/bench_simplify.cpp - X3/X4: projection formats & §2.6 timing -===//
//
// X3: the §2.1 projection example in stride and projected formats.
// X4: the paper's timing claim — "our current implementation requires 12
// milliseconds on a Sun Sparc IPX" to simplify the §2.6 formula.  We time
// the same simplification here (shape: milliseconds, not seconds).
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "omega/Omega.h"
#include "presburger/Parser.h"

#include <sstream>

using namespace omega;

namespace {

const char *Section26Formula =
    "1 <= i <= 2*n && 1 <= ip <= 2*n && i = ip && "
    "!exists(i2, j2: 1 <= i2 <= 2*n && 1 <= j2 <= n - 1 && i2 < i && "
    "i2 = ip && 2*j2 = i2) && "
    "!exists(i2, j2: 1 <= i2 <= 2*n && 1 <= j2 <= n - 1 && i2 < i && "
    "i2 = ip && 2*j2 + 1 = i2)";

void report() {
  reportHeader("X3", "projection formats (§2.1)");
  // x = 6i + 9j - 7, 1 <= i <= 8, 1 <= j <= 5.
  Conjunct C;
  AffineExpr X = AffineExpr::variable("x"), I = AffineExpr::variable("i"),
             J = AffineExpr::variable("j");
  C.add(Constraint::eq(X - BigInt(6) * I - BigInt(9) * J + AffineExpr(7)));
  C.add(Constraint::ge(I - AffineExpr(1)));
  C.add(Constraint::ge(AffineExpr(8) - I));
  C.add(Constraint::ge(J - AffineExpr(1)));
  C.add(Constraint::ge(AffineExpr(5) - J));
  std::vector<Conjunct> R = projectVars(C, {"i", "j"});
  std::ostringstream Stride;
  for (size_t K = 0; K < R.size(); ++K)
    Stride << (K ? "  v  " : "") << R[K];
  reportRow("solutions of x=6i+9j-7 (stride format)",
            "x=8 v 14<=x<=80 ^ 3|(x+1) v x=86", Stride.str());
  std::ostringstream Proj;
  for (size_t K = 0; K < R.size(); ++K) {
    Conjunct P = R[K];
    P.stridesToWildcards();
    Proj << (K ? "  v  " : "") << P;
  }
  reportRow("projected format (§2.1's 3a: x = 3a - 1 form)",
            "x=8 v (exists a: 5<=a<=27 ^ x=3a-1) v x=86", Proj.str());
  // Verify the membership set against the paper's description.
  int Count = 0;
  bool Correct = true;
  for (int64_t V = 0; V <= 95; ++V) {
    bool In = false;
    for (const Conjunct &Cl : R)
      In = In || containsPoint(Cl, {{"x", BigInt(V)}});
    bool Expected = V >= 8 && V <= 86 && V % 3 == 2 && V != 11 && V != 83;
    Correct = Correct && In == Expected;
    Count += In;
  }
  reportRow("membership matches '8..86, rem 2 mod 3, except 11 and 83'",
            "yes", Correct ? "yes" : "no");
  reportRow("number of solutions", "25", std::to_string(Count));

  reportHeader("X4", "§2.6 simplification timing");
  Formula F = parseFormulaOrDie(Section26Formula);
  std::vector<Conjunct> D = simplify(F);
  std::ostringstream OS;
  for (size_t K = 0; K < D.size(); ++K)
    OS << (K ? "  v  " : "") << D[K];
  reportRow("simplified §2.6 formula (clauses)", "-", OS.str());
  reportRow("paper timing", "12 ms on a 1992 Sun Sparc IPX",
            "see BM_SimplifySection26 below (expect well under 12ms)");
}

void BM_SimplifySection26(benchmark::State &State) {
  Formula F = parseFormulaOrDie(Section26Formula);
  for (auto _ : State) {
    std::vector<Conjunct> D = simplify(F);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_SimplifySection26)->Unit(benchmark::kMillisecond);

void BM_ProjectStrideExample(benchmark::State &State) {
  Conjunct C;
  AffineExpr X = AffineExpr::variable("x"), I = AffineExpr::variable("i"),
             J = AffineExpr::variable("j");
  C.add(Constraint::eq(X - BigInt(6) * I - BigInt(9) * J + AffineExpr(7)));
  C.add(Constraint::ge(I - AffineExpr(1)));
  C.add(Constraint::ge(AffineExpr(8) - I));
  C.add(Constraint::ge(J - AffineExpr(1)));
  C.add(Constraint::ge(AffineExpr(5) - J));
  for (auto _ : State) {
    std::vector<Conjunct> R = projectVars(C, {"i", "j"});
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_ProjectStrideExample);

void BM_FeasibilitySection26(benchmark::State &State) {
  Formula F = parseFormulaOrDie(Section26Formula);
  std::vector<Conjunct> D = simplify(F);
  for (auto _ : State)
    for (const Conjunct &C : D)
      benchmark::DoNotOptimize(feasible(C));
}
BENCHMARK(BM_FeasibilitySection26);

} // namespace

OMEGA_BENCH_MAIN(report)
