//===- bench/bench_pipeline.cpp - Cache and fan-out speedups -------------===//
//
// Measures the two pipeline accelerators this library layers over the
// paper's algorithms — the conjunct memoization cache and the parallel
// disjunct fan-out — on a crossConjoin-heavy counting problem (a
// conjunction of interval unions, the worst case for DNF blow-up).
//
// Four configurations are timed (cache off/on x workers 0/4) plus a warm
// re-run against a populated cache, every configuration is checked to
// produce the identical piecewise answer, and one JSON object with the
// timings, speedups, and pipeline counters is printed to stdout.
//
//   bench_pipeline [--quick] [--scale N] [--reps N] [--out FILE]
//                  [shared flags: --workers/--cache/--budget/--stats/
//                   --trace/--trace-summary]
//
// --quick shrinks the workload so the binary doubles as a smoke test
// (wired into ctest); the JSON line is emitted either way.  Queries go
// through the CountOptions entry point (omega/Omega.h), so this benchmark
// is also the dogfood test for the unified query API.
//
//===----------------------------------------------------------------------===//

#include "counting/Summation.h"
#include "presburger/Parser.h"
#include "presburger/Var.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include "Options.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace omega;

namespace {

/// A conjunction of interval unions with a coupling constraint and a
/// stride: S clauses per dimension, so crossConjoin explores S*S pairs and
/// the disjoint/summation phases see dozens of independent clauses.
Formula workload(int Scale) {
  auto Union = [&](const std::string &V) {
    std::ostringstream OS;
    OS << "(";
    for (int I = 0; I < Scale; ++I) {
      if (I)
        OS << " || ";
      int Lo = 1 + 12 * I;
      int Hi = Lo + 9;
      OS << Lo << " <= " << V << " <= " << Hi;
    }
    OS << ")";
    return OS.str();
  };
  std::ostringstream OS;
  OS << Union("i") << " && " << Union("j") << " && i + j <= " << 12 * Scale
     << " && 2 | i + j";
  ParseResult R = parseFormula(OS.str());
  if (!R) {
    std::cerr << "bench_pipeline: internal parse error: " << R.Error << "\n";
    std::exit(1);
  }
  return *R.Value;
}

struct ConfigResult {
  std::string Name;
  unsigned Workers = 0;
  size_t CacheCapacity = 0;
  double WallMs = 0;
  std::string Answer;
  PipelineStatsSnapshot Stats{};
};

/// Runs the workload once under the given knobs from a fully reset state
/// (unless \p Warm, which keeps the cache from the previous run).  Each
/// query goes through the options-taking entry point, which installs a
/// per-query context (support/QueryContext.h) rather than process state.
ConfigResult runConfig(const std::string &Name, int Scale, int Reps,
                       unsigned Workers, size_t CacheCapacity, bool Warm,
                       const EffortBudget &Budget, bool CountArithOps) {
  ConfigResult R;
  R.Name = Name;
  R.Workers = Workers;
  R.CacheCapacity = CacheCapacity;

  CountOptions CO;
  CO.Workers = Workers;
  CO.CacheEnabled = CacheCapacity > 0;
  CO.CacheCapacity = CacheCapacity;
  CO.Budget = Budget;
  CO.CollectStats = true;
  CO.CountArithOps = CountArithOps;

  double BestMs = -1;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    if (!Warm) {
      clearConjunctCache();
      resetWildcardState();
    }
    Formula F = workload(Scale);
    auto T0 = std::chrono::steady_clock::now();
    CountResult CR = countSolutions(F, VarSet{"i", "j"}, CO);
    auto T1 = std::chrono::steady_clock::now();
    double Ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            T1 - T0)
            .count();
    if (BestMs < 0 || Ms < BestMs)
      BestMs = Ms;
    R.Answer = CR.Status == CountStatus::Bounded
                   ? "UNKNOWN[" + CR.Lower.toString() + ", " +
                         CR.Upper.toString() + "]"
                   : CR.Value.toString();
    R.Stats = CR.Stats;
  }
  R.WallMs = BestMs;
  return R;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  int Scale = 8, Reps = 3;
  std::string OutPath;
  ToolOptions TO;
  // The bench's parallel configurations default to 4 workers; a --workers
  // flag overrides that (0 still benchmarks the parallel configs, just
  // with a serial pool — useful for overhead measurements).
  TO.Count.Workers = 4;
  auto Fail = [](const std::string &Msg) {
    std::cerr << "bench_pipeline: error: " << Msg << "\n";
    std::exit(1);
  };
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (parseSharedOption(Argc, Argv, I, TO, Fail))
      continue;
    auto NextInt = [&](int Fallback) {
      return ++I < Argc ? std::atoi(Argv[I]) : Fallback;
    };
    if (Arg == "--quick") {
      Scale = 4;
      Reps = 1;
    } else if (Arg == "--scale")
      Scale = NextInt(Scale);
    else if (Arg == "--reps")
      Reps = NextInt(Reps);
    else if (Arg == "--out")
      OutPath = ++I < Argc ? Argv[I] : "";
    else {
      std::cerr << "usage: bench_pipeline [--quick] [--scale N] [--reps N] "
                   "[--out FILE] [shared options]\n"
                << sharedOptionsHelp();
      return 1;
    }
  }

  const unsigned Workers = TO.Count.Workers;
  const size_t Cap = TO.Count.CacheEnabled ? TO.Count.CacheCapacity : 0;
  const EffortBudget &Budget = TO.Count.Budget;
  const bool Arith = TO.Count.CountArithOps;
  startToolTrace(TO);
  std::vector<ConfigResult> Results;
  Results.push_back(runConfig("serial-nocache", Scale, Reps, 0, 0,
                              /*Warm=*/false, Budget, Arith));
  Results.push_back(runConfig("serial-cache", Scale, Reps, 0, Cap,
                              /*Warm=*/false, Budget, Arith));
  Results.push_back(runConfig("parallel-nocache", Scale, Reps, Workers, 0,
                              /*Warm=*/false, Budget, Arith));
  Results.push_back(runConfig("parallel-cache", Scale, Reps, Workers, Cap,
                              /*Warm=*/false, Budget, Arith));
  // Warm: same problem against the already-populated cache (the compiler
  // re-querying a dataflow fact it has seen before).
  Results.push_back(runConfig("parallel-cache-warm", Scale, Reps, Workers,
                              Cap, /*Warm=*/true, Budget, Arith));

  // Every configuration must produce the identical answer — the
  // determinism contract, enforced here so a perf run can never silently
  // trade correctness for speed.
  for (const ConfigResult &R : Results)
    if (R.Answer != Results[0].Answer) {
      std::cerr << "bench_pipeline: DETERMINISM VIOLATION: config " << R.Name
                << " answered\n  " << R.Answer << "\nbut "
                << Results[0].Name << " answered\n  " << Results[0].Answer
                << "\n";
      return 1;
    }

  auto WallOf = [&](const std::string &Name) {
    for (const ConfigResult &R : Results)
      if (R.Name == Name)
        return R.WallMs;
    return -1.0;
  };
  double SpeedupCache = WallOf("serial-nocache") / WallOf("serial-cache");
  double SpeedupWorkers =
      WallOf("serial-nocache") / WallOf("parallel-nocache");
  double SpeedupBoth = WallOf("serial-nocache") / WallOf("parallel-cache");
  double SpeedupWarm =
      WallOf("serial-nocache") / WallOf("parallel-cache-warm");

  // Worker speedup is bounded by the physical core count.  On a host with
  // fewer than 4 cores a 4-worker figure is scheduling noise, not signal
  // (the PR 7 baseline recorded 0.87x from a single-core container as if
  // it meant something), so the figure is emitted as null with an explicit
  // skip reason instead.
  unsigned Cores = std::thread::hardware_concurrency();
  bool EmitWorkerSpeedup = Cores >= 4;

  // Schema 5 (was 4): per-config stats gained the expr_terms_inline /
  // expr_terms_spilled counters of the flat-term AffineExpr.  (Schema 4
  // added the coalesce counters, nullable speedup_workers with a skip
  // reason, and the fixed "baseline" block CI gates ratios against.)
  std::ostringstream JS;
  JS << "{\"schema\":5,\"bench\":\"pipeline\",\"scale\":" << Scale
     << ",\"reps\":" << Reps << ",\"workers\":" << Workers
     << ",\"hardware_concurrency\":" << Cores << ",\"configs\":[";
  for (size_t I = 0; I < Results.size(); ++I) {
    const ConfigResult &R = Results[I];
    if (I)
      JS << ",";
    JS << "{\"name\":\"" << jsonEscape(R.Name) << "\",\"workers\":"
       << R.Workers << ",\"cache_capacity\":" << R.CacheCapacity
       << ",\"wall_ms\":" << R.WallMs << ",\"stats\":" << R.Stats.toJson()
       << "}";
  }
  JS << "],\"speedup_cache\":" << SpeedupCache << ",\"speedup_workers\":";
  if (EmitWorkerSpeedup)
    JS << SpeedupWorkers;
  else
    JS << "null,\"speedup_workers_skip_reason\":\"hardware_concurrency "
       << Cores << " < 4: a " << Workers
       << "-worker run on this host measures time-slicing overhead, not "
          "scaling\"";
  JS << ",\"speedup_combined\":" << SpeedupBoth
     << ",\"speedup_warm_cache\":" << SpeedupWarm
     // The seed-algorithm reference for the coalesce rework: BENCH_pipeline
     // serial-nocache at scale 8 as committed by PR 7 (single-core host, so
     // wall times compare like for like on such hosts; the counter is
     // host-independent).  tools/ci.sh gates coalesce_ms >= 3x and
     // feasibility_tests >= 5x against this block.
     << ",\"baseline\":{\"source\":\"PR 7 BENCH_pipeline.json serial-nocache"
        ", scale 8\",\"coalesce_ms\":299.841,\"feasibility_tests\":28966}"
     << ",\"answers_identical\":true}";
  std::cout << JS.str() << "\n";
  if (!OutPath.empty()) {
    std::ofstream Out(OutPath);
    if (!Out) {
      std::cerr << "bench_pipeline: cannot write " << OutPath << "\n";
      return 1;
    }
    Out << JS.str() << "\n";
  }

  std::cerr << "bench_pipeline: answers identical across all configs; "
            << "cache x" << SpeedupCache << ", workers x" << SpeedupWorkers
            << ", combined x" << SpeedupBoth << ", warm x" << SpeedupWarm
            << " (on " << Cores << " hardware core" << (Cores == 1 ? "" : "s")
            << ")\n";
  if (!finishToolTrace(TO, "bench_pipeline"))
    return 1;
  if (TO.Stats)
    std::cerr << snapshotPipelineStats().toPretty();
  std::cout << "bench_pipeline: ok\n";
  return 0;
}
