//===- bench/bench_ablation.cpp - X18: design-choice ablations -----------===//
//
// The paper's concluding observations, measured:
//   1. "Summations over several variables should not presume an order in
//      which to perform the summation."
//   2. "Eliminating redundant constraints is useful."
// Each toggle is ablated on the paper's own Example 1 and on a wider
// coupled nest; we report terms produced and timing.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "counting/Summation.h"
#include "presburger/Parser.h"

using namespace omega;

namespace {

Formula example1() {
  return parseFormulaOrDie("1 <= i <= n && 1 <= j <= i && j <= k <= m");
}

Formula coupled() {
  return parseFormulaOrDie(
      "1 <= a <= n && a <= b <= n && b <= c <= n && a + c <= n + 2");
}

size_t termsWith(const Formula &F, const VarSet &Vars, SumOptions Opts) {
  PiecewiseValue V = countSolutions(F, Vars, Opts);
  return V.pieces().size();
}

void report() {
  reportHeader("X18", "ablations of the paper's two concluding advices");
  SumOptions Full;
  SumOptions NoRedund;
  NoRedund.EliminateRedundant = false;
  SumOptions FixedOrder;
  FixedOrder.FreeVariableOrder = false;
  SumOptions Neither;
  Neither.EliminateRedundant = false;
  Neither.FreeVariableOrder = false;

  {
    VarSet Vars{"i", "j", "k"};
    reportRow("Example 1 terms, full engine", "2",
              std::to_string(termsWith(example1(), Vars, Full)));
    reportRow("  without redundant-constraint elimination", "-",
              std::to_string(termsWith(example1(), Vars, NoRedund)));
    reportRow("  with a fixed variable order", "-",
              std::to_string(termsWith(example1(), Vars, FixedOrder)));
    reportRow("  with neither", "-",
              std::to_string(termsWith(example1(), Vars, Neither)));
  }
  {
    VarSet Vars{"a", "b", "c"};
    reportRow("coupled nest terms, full engine", "-",
              std::to_string(termsWith(coupled(), Vars, Full)));
    reportRow("  without redundancy elimination", "-",
              std::to_string(termsWith(coupled(), Vars, NoRedund)));
    reportRow("  with a fixed variable order", "-",
              std::to_string(termsWith(coupled(), Vars, FixedOrder)));
    reportRow("  with neither", "-",
              std::to_string(termsWith(coupled(), Vars, Neither)));
  }
  // Correctness is invariant under the ablations; only cost changes.
  bool Agree = true;
  for (int64_t N = 0; N <= 6 && Agree; ++N)
    for (int64_t M = 0; M <= 6 && Agree; ++M) {
      Assignment A{{"n", BigInt(N)}, {"m", BigInt(M)}};
      Rational R = countSolutions(example1(), {"i", "j", "k"}, Full)
                       .evaluate(A);
      Agree = R == countSolutions(example1(), {"i", "j", "k"}, Neither)
                       .evaluate(A);
    }
  reportRow("ablated engines still produce correct values", "yes",
            Agree ? "yes" : "no");
}

void BM_Ablation(benchmark::State &State) {
  SumOptions Opts;
  Opts.EliminateRedundant = State.range(0) & 1;
  Opts.FreeVariableOrder = State.range(0) & 2;
  Formula F = coupled();
  for (auto _ : State) {
    PiecewiseValue V = countSolutions(F, {"a", "b", "c"}, Opts);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_Ablation)
    ->Arg(3)  // Full engine.
    ->Arg(2)  // No redundancy elimination.
    ->Arg(1)  // Fixed order.
    ->Arg(0)  // Neither.
    ->Unit(benchmark::kMillisecond);

} // namespace

OMEGA_BENCH_MAIN(report)
