//===- bench/bench_scaling.cpp - X15: symbolic vs enumeration scaling ----===//
//
// The payoff of symbolic counting: the symbolic answer is computed once,
// independent of n; enumeration is O(n²) for Example 6's set.  The paper's
// implicit claim ("we are able to efficiently analyze many Presburger
// formulas that arise in practice") shown as a crossover.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "baselines/Enumerator.h"
#include "counting/Summation.h"
#include "presburger/Parser.h"

using namespace omega;

namespace {

void report() {
  reportHeader("X15", "symbolic counting vs enumeration");
  Formula F =
      parseFormulaOrDie("1 <= i && 1 <= j && j <= n && 2*i <= 3*j");
  PiecewiseValue V = countSolutions(F, {"i", "j"});
  for (int64_t N : {10, 100, 1000}) {
    BigInt Sym = V.evaluateInt({{"n", BigInt(N)}});
    BigInt Enum = enumerateCount(F, {"i", "j"}, {{"n", BigInt(N)}}, 0,
                                 2 * N, 0, 0);
    reportRow("n=" + std::to_string(N) + " counts agree",
              Enum.toString(), Sym.toString());
  }
  reportRow("cost model", "symbolic: one-time analysis + O(1) evaluation;"
                          " enumeration: O(n^2) per query",
            "see timings below");
}

void BM_SymbolicOnce(benchmark::State &State) {
  Formula F =
      parseFormulaOrDie("1 <= i && 1 <= j && j <= n && 2*i <= 3*j");
  for (auto _ : State) {
    PiecewiseValue V = countSolutions(F, {"i", "j"});
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_SymbolicOnce)->Unit(benchmark::kMillisecond);

void BM_SymbolicEvaluate(benchmark::State &State) {
  Formula F =
      parseFormulaOrDie("1 <= i && 1 <= j && j <= n && 2*i <= 3*j");
  PiecewiseValue V = countSolutions(F, {"i", "j"});
  Assignment A{{"n", BigInt(State.range(0))}};
  for (auto _ : State) {
    BigInt R = V.evaluateInt(A);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_SymbolicEvaluate)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000);

void BM_Enumerate(benchmark::State &State) {
  Formula F =
      parseFormulaOrDie("1 <= i && 1 <= j && j <= n && 2*i <= 3*j");
  int64_t N = State.range(0);
  Assignment Sym{{"n", BigInt(N)}};
  for (auto _ : State) {
    BigInt R = enumerateCount(F, {"i", "j"}, Sym, 0, 2 * N, 0, 0);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_Enumerate)->Arg(10)->Arg(100)->Arg(1000);

} // namespace

OMEGA_BENCH_MAIN(report)
