//===- bench/bench_related_work.cpp - X7/X8/X9: §6 Examples 1-3 ----------===//
//
// The paper's head-to-head examples against Tawbi [TF92/Taw94] and
// Haghighat-Polychronopoulos [HP93a]:
//   Example 1: our free-order engine needs 2 terms; Tawbi's fixed order
//              with polyhedral splitting needs 3.
//   Example 2: Σ = 6n - 16 for n >= 5, plus a small-n piece (H-P take 9
//              steps; our engine: eliminate redundant constraint, then 3
//              single-bound sums, one split).
//   Example 3: Σ = n² (H-P take 15 steps).
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "baselines/FixedOrderSum.h"
#include "counting/Summation.h"
#include "presburger/Parser.h"

using namespace omega;

namespace {

Conjunct example1Clause() {
  Conjunct C;
  AffineExpr I = AffineExpr::variable("i"), J = AffineExpr::variable("j"),
             K = AffineExpr::variable("k"), N = AffineExpr::variable("n"),
             M = AffineExpr::variable("m");
  C.add(Constraint::ge(I - AffineExpr(1)));
  C.add(Constraint::ge(N - I));
  C.add(Constraint::ge(J - AffineExpr(1)));
  C.add(Constraint::ge(I - J));
  C.add(Constraint::ge(K - J));
  C.add(Constraint::ge(M - K));
  return C;
}

void report() {
  reportHeader("X7", "Example 1: vs Tawbi's fixed-order algorithm");
  Formula F1 =
      parseFormulaOrDie("1 <= i <= n && 1 <= j <= i && j <= k <= m");
  PiecewiseValue Ours = countSolutions(F1, {"i", "j", "k"});
  BaselineSumResult Tawbi = fixedOrderSum(example1Clause(), {"k", "j", "i"},
                                          QuasiPolynomial(Rational(1)));
  reportRow("our terms", "2", std::to_string(Ours.pieces().size()));
  // Tawbi's upfront polyhedral split yields 3 terms; our lazy per-level
  // reimplementation of her splitting over-splits slightly (see
  // EXPERIMENTS.md) — the comparison point is fixed-order > free-order.
  reportRow("fixed-order (Tawbi) terms", "3 (her exact algorithm)",
            std::to_string(Tawbi.NumTerms));
  reportRow("our symbolic answer", "-", Ours.toString());
  bool Agree = true;
  for (int64_t N = 0; N <= 6 && Agree; ++N)
    for (int64_t M = 0; M <= 6 && Agree; ++M) {
      Assignment A{{"n", BigInt(N)}, {"m", BigInt(M)}};
      Agree = Ours.evaluate(A) == Tawbi.Value.evaluate(A);
    }
  reportRow("values agree with baseline on grid", "yes",
            Agree ? "yes" : "no");

  reportHeader("X8", "Example 2: vs Haghighat-Polychronopoulos");
  Formula F2 =
      parseFormulaOrDie("1 <= i <= n && 3 <= j <= i && j <= k <= 5");
  PiecewiseValue V2 = countSolutions(F2, {"i", "j", "k"});
  reportRow("symbolic answer", "(6n - 16 if n>=5) + small-n piece",
            V2.toString());
  reportRow("value at n=10", "44",
            V2.evaluateInt({{"n", BigInt(10)}}).toString());
  reportRow("value at n=4", "(5n-12 at n=4) = 8",
            V2.evaluateInt({{"n", BigInt(4)}}).toString());
  reportRow("H-P steps for this example (their algorithm)", "9",
            "ours: single pass, " + std::to_string(V2.pieces().size()) +
                " terms");

  reportHeader("X9", "Example 3: the min(i, 2n - j) loop");
  Formula F3 = parseFormulaOrDie(
      "1 <= i <= 2*n && 1 <= j <= i && i + j <= 2*n");
  PiecewiseValue V3 = countSolutions(F3, {"i", "j"});
  reportRow("symbolic answer", "(n^2 if n>=1)", V3.toString());
  bool IsSquare = true;
  for (int64_t N = 0; N <= 12; ++N)
    IsSquare = IsSquare &&
               V3.evaluate({{"n", BigInt(N)}}) == Rational(BigInt(N * N));
  reportRow("equals n² on 0..12", "yes", IsSquare ? "yes" : "no");
  reportRow("H-P steps for this example (their algorithm)", "15",
            "ours: single pass, " + std::to_string(V3.pieces().size()) +
                " terms");
}

void BM_Example1Ours(benchmark::State &State) {
  Formula F =
      parseFormulaOrDie("1 <= i <= n && 1 <= j <= i && j <= k <= m");
  for (auto _ : State) {
    PiecewiseValue V = countSolutions(F, {"i", "j", "k"});
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_Example1Ours)->Unit(benchmark::kMillisecond);

void BM_Example1FixedOrder(benchmark::State &State) {
  Conjunct C = example1Clause();
  for (auto _ : State) {
    BaselineSumResult R =
        fixedOrderSum(C, {"k", "j", "i"}, QuasiPolynomial(Rational(1)));
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_Example1FixedOrder)->Unit(benchmark::kMillisecond);

void BM_Example2(benchmark::State &State) {
  Formula F =
      parseFormulaOrDie("1 <= i <= n && 3 <= j <= i && j <= k <= 5");
  for (auto _ : State) {
    PiecewiseValue V = countSolutions(F, {"i", "j", "k"});
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_Example2)->Unit(benchmark::kMillisecond);

void BM_Example3(benchmark::State &State) {
  Formula F = parseFormulaOrDie(
      "1 <= i <= 2*n && 1 <= j <= i && i + j <= 2*n");
  for (auto _ : State) {
    PiecewiseValue V = countSolutions(F, {"i", "j"});
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_Example3)->Unit(benchmark::kMillisecond);

} // namespace

OMEGA_BENCH_MAIN(report)
