//===- bench/bench_hpf.cpp - X5: §3.3 block-cyclic distribution ----------===//

#include "BenchReport.h"

#include "apps/HpfDistribution.h"

using namespace omega;

namespace {

void report() {
  reportHeader("X5", "HPF block-cyclic mapping (§3.3)");
  BlockCyclic Dist{BigInt(4), BigInt(8), BigInt(1024)};
  PiecewiseValue Owned = cellsPerProcessor(Dist);
  reportRow("T(0:1023), block-cyclic(4) over 8 procs, per-proc cells",
            "128 each", Owned.toString());
  bool All128 = true;
  for (int64_t P = 0; P < 8; ++P)
    All128 = All128 && Owned.evaluateInt({{"p", BigInt(P)}}) == BigInt(128);
  reportRow("all processors own 128", "yes", All128 ? "yes" : "no");

  PiecewiseValue Recv = shiftCommVolume(Dist, BigInt(1));
  BigInt Total(0);
  for (int64_t P = 0; P < 8; ++P)
    Total += Recv.evaluateInt({{"p", BigInt(P)}});
  reportRow("shift-by-1 total message traffic (elements)", "-",
            Total.toString());
  reportRow("shift-by-1 buffer on proc 0", "-",
            Recv.evaluateInt({{"p", BigInt(0)}}).toString());
}

void BM_CellsPerProcessor(benchmark::State &State) {
  BlockCyclic Dist{BigInt(4), BigInt(8), BigInt(1024)};
  for (auto _ : State) {
    PiecewiseValue V = cellsPerProcessor(Dist);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_CellsPerProcessor)->Unit(benchmark::kMillisecond);

void BM_ShiftCommVolume(benchmark::State &State) {
  BlockCyclic Dist{BigInt(4), BigInt(8), BigInt(1024)};
  for (auto _ : State) {
    PiecewiseValue V = shiftCommVolume(Dist, BigInt(1));
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_ShiftCommVolume)->Unit(benchmark::kMillisecond);

// The symbolic answer's payoff: evaluating ownership for another extent
// is free once computed; scaling the extent does not scale the cost.
void BM_CellsPerProcessorExtent(benchmark::State &State) {
  BlockCyclic Dist{BigInt(4), BigInt(8), BigInt(State.range(0))};
  for (auto _ : State) {
    PiecewiseValue V = cellsPerProcessor(Dist);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_CellsPerProcessorExtent)
    ->Arg(1024)
    ->Arg(1 << 16)
    ->Arg(1 << 24)
    ->Unit(benchmark::kMillisecond);

} // namespace

OMEGA_BENCH_MAIN(report)
