//===- bench/bench_splinter.cpp - X12: Figure 1 elimination variants -----===//
//
// The Figure 1 example  ∃β: 0 <= 3β - α <= 7  ∧  1 <= α - 2β <= 5:
// exact solution set {3} ∪ [5, 27] ∪ {29} (verified by enumeration);
// dark shadow, real shadow, overlapping splinters, and the paper's
// disjoint splintering compared on clause counts and disjointness.
//
// Note: the paper's text lists dark shadow 5 <= α <= 25 and simplified
// splinters α = 3, α = 27 only; exhaustive enumeration shows the true set
// includes α = 26 and α = 29 as well (see EXPERIMENTS.md — we treat the
// published lists as OCR/typesetting errata and verify exactness
// mechanically instead).
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "omega/Omega.h"

#include <sstream>

using namespace omega;

namespace {

Conjunct figure1Clause() {
  Conjunct C;
  AffineExpr A = AffineExpr::variable("alpha"),
             B = AffineExpr::variable("beta");
  AffineExpr T1 = BigInt(3) * B - A;
  AffineExpr T2 = A - BigInt(2) * B;
  C.add(Constraint::ge(T1));
  C.add(Constraint::ge(AffineExpr(7) - T1));
  C.add(Constraint::ge(T2 - AffineExpr(1)));
  C.add(Constraint::ge(AffineExpr(5) - T2));
  return C;
}

std::string describe(const std::vector<Conjunct> &Clauses) {
  std::ostringstream OS;
  OS << Clauses.size() << " clauses: ";
  for (size_t I = 0; I < Clauses.size(); ++I)
    OS << (I ? "  v  " : "") << Clauses[I];
  return OS.str();
}

std::string membership(const std::vector<Conjunct> &Clauses) {
  std::ostringstream OS;
  bool First = true;
  for (int64_t A = -5; A <= 40; ++A) {
    bool In = false;
    for (const Conjunct &C : Clauses)
      In = In || containsPoint(C, {{"alpha", BigInt(A)}});
    if (In) {
      OS << (First ? "" : ",") << A;
      First = false;
    }
  }
  return OS.str();
}

void report() {
  reportHeader("X12", "Figure 1: eliminating β with splinters");
  Conjunct C = figure1Clause();
  // Ground truth by enumeration.
  std::ostringstream Truth;
  bool First = true;
  for (int64_t A = -5; A <= 40; ++A) {
    bool In = false;
    for (int64_t B = -20; B <= 40 && !In; ++B) {
      int64_t T1 = 3 * B - A, T2 = A - 2 * B;
      In = T1 >= 0 && T1 <= 7 && T2 >= 1 && T2 <= 5;
    }
    if (In) {
      Truth << (First ? "" : ",") << A;
      First = false;
    }
  }
  reportRow("true α set (enumerated)",
            "3,5..27,29 (paper text: 3, 5<=a<=27, 29)", Truth.str());

  std::vector<Conjunct> Real = projectVars(C, {"beta"}, ShadowMode::Real);
  std::vector<Conjunct> Dark = projectVars(C, {"beta"}, ShadowMode::Dark);
  std::vector<Conjunct> Exact = projectVars(C, {"beta"}, ShadowMode::Exact);
  std::vector<Conjunct> Disj =
      projectVars(C, {"beta"}, ShadowMode::Disjoint);

  reportRow("real shadow (over-approx)", "3 <= alpha <= 27",
            describe(Real));
  reportRow("dark shadow (under-approx)",
            "paper text: 5 <= alpha <= 25", describe(Dark));
  reportRow("exact (dark + overlapping splinters) membership", Truth.str(),
            membership(Exact));
  reportRow("  clause count (overlapping)", "-",
            std::to_string(Exact.size()));
  reportRow("disjoint (Figure 1) membership", Truth.str(),
            membership(Disj));
  reportRow("  clause count (disjoint; paper: may be larger)", "-",
            std::to_string(Disj.size()));
  reportRow("  pairwise disjoint", "yes",
            pairwiseDisjoint(Disj) ? "yes" : "no");
}

void BM_EliminateMode(benchmark::State &State) {
  Conjunct C = figure1Clause();
  ShadowMode Mode = static_cast<ShadowMode>(State.range(0));
  for (auto _ : State) {
    std::vector<Conjunct> R = projectVars(C, {"beta"}, Mode);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_EliminateMode)
    ->Arg(int(ShadowMode::Exact))
    ->Arg(int(ShadowMode::Disjoint))
    ->Arg(int(ShadowMode::Real))
    ->Arg(int(ShadowMode::Dark));

// Splinter count scales with coefficients: vary the bound coefficients.
void BM_EliminateCoefficient(benchmark::State &State) {
  int64_t A = State.range(0);
  Conjunct C;
  AffineExpr Al = AffineExpr::variable("alpha"),
             Be = AffineExpr::variable("beta");
  AffineExpr T1 = BigInt(A) * Be - Al;
  AffineExpr T2 = Al - BigInt(A - 1) * Be;
  C.add(Constraint::ge(T1));
  C.add(Constraint::ge(AffineExpr(7) - T1));
  C.add(Constraint::ge(T2 - AffineExpr(1)));
  C.add(Constraint::ge(AffineExpr(5) - T2));
  for (auto _ : State) {
    std::vector<Conjunct> R = projectVars(C, {"beta"});
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_EliminateCoefficient)->DenseRange(3, 9, 2);

} // namespace

OMEGA_BENCH_MAIN(report)
