//===- bench/bench_intro_table.cpp - X1/X2: the §1 summation table -------===//
//
// Reproduces the paper's introductory table of simple symbolic summations
// and the Mathematica-pitfall comparison, then times the engine on them.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "baselines/FixedOrderSum.h"
#include "counting/Summation.h"
#include "presburger/Parser.h"

using namespace omega;

namespace {

void report() {
  reportHeader("X1", "intro table of simple summations (§1)");
  {
    PiecewiseValue V = countSolutions(parseFormulaOrDie("1 <= i <= 10"),
                                      {"i"});
    reportRow("(Σ i : 1<=i<=10 : 1)", "10", V.evaluateInt({}).toString());
  }
  {
    PiecewiseValue V = countSolutions(parseFormulaOrDie("1 <= i <= n"),
                                      {"i"});
    reportRow("(Σ i : 1<=i<=n : 1), symbolic", "(n if n>=1)", V.toString());
  }
  {
    PiecewiseValue V = sumOverFormula(parseFormulaOrDie("1 <= i <= n"),
                                      {"i"}, QuasiPolynomial::variable("i"));
    reportRow("(Σ i : 1<=i<=n : i) at n=10", "55",
              V.evaluateInt({{"n", BigInt(10)}}).toString());
    reportRow("  symbolic", "(n(n+1)/2 if n>=1)", V.toString());
  }
  {
    PiecewiseValue V = countSolutions(parseFormulaOrDie("1 <= i,j <= n"),
                                      {"i", "j"});
    reportRow("(Σ i,j : 1<=i,j<=n : 1), symbolic", "(n^2 if n>=1)",
              V.toString());
  }
  {
    PiecewiseValue V = countSolutions(
        parseFormulaOrDie("1 <= i && i < j && j <= n"), {"i", "j"});
    reportRow("(Σ i,j : 1<=i<j<=n : 1) at n=7", "21",
              V.evaluateInt({{"n", BigInt(7)}}).toString());
    reportRow("  symbolic", "(n(n-1)/2 if n>=2)", V.toString());
  }

  reportHeader("X2", "the Mathematica pitfall (§1)");
  Formula F = parseFormulaOrDie("1 <= i <= n && i <= j <= m");
  PiecewiseValue Ours = countSolutions(F, {"i", "j"});
  Conjunct C;
  C.add(Constraint::ge(AffineExpr::variable("i") - AffineExpr(1)));
  C.add(Constraint::ge(AffineExpr::variable("n") -
                       AffineExpr::variable("i")));
  C.add(Constraint::ge(AffineExpr::variable("j") -
                       AffineExpr::variable("i")));
  C.add(Constraint::ge(AffineExpr::variable("m") -
                       AffineExpr::variable("j")));
  QuasiPolynomial Naive =
      naiveClosedFormSum(C, {"j", "i"}, QuasiPolynomial(Rational(1)));
  reportRow("naive closed form (matches Mathematica)", "n(2m-n+1)/2",
            Naive.toString());
  Assignment Good{{"n", BigInt(3)}, {"m", BigInt(5)}};
  Assignment Bad{{"n", BigInt(5)}, {"m", BigInt(3)}};
  reportRow("1<=n<=m region (n=3,m=5): truth 12; naive", "12",
            Naive.evaluate(Good).toString());
  reportRow("  ours", "12", Ours.evaluate(Good).toString());
  reportRow("1<=m<n region (n=5,m=3): truth is 6; naive formula gives",
            "5 (wrong)", Naive.evaluate(Bad).toString());
  reportRow("  ours", "6", Ours.evaluate(Bad).toString());
  reportRow("our piecewise answer", "-", Ours.toString());
}

void BM_CountTriangle(benchmark::State &State) {
  Formula F = parseFormulaOrDie("1 <= i && i < j && j <= n");
  for (auto _ : State) {
    PiecewiseValue V = countSolutions(F, {"i", "j"});
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_CountTriangle);

void BM_CountPitfall(benchmark::State &State) {
  Formula F = parseFormulaOrDie("1 <= i <= n && i <= j <= m");
  for (auto _ : State) {
    PiecewiseValue V = countSolutions(F, {"i", "j"});
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_CountPitfall);

void BM_EvaluateSymbolicAnswer(benchmark::State &State) {
  Formula F = parseFormulaOrDie("1 <= i <= n && i <= j <= m");
  PiecewiseValue V = countSolutions(F, {"i", "j"});
  Assignment A{{"n", BigInt(1000)}, {"m", BigInt(777)}};
  for (auto _ : State) {
    Rational R = V.evaluate(A);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_EvaluateSymbolicAnswer);

} // namespace

OMEGA_BENCH_MAIN(report)
