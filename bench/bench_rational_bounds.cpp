//===- bench/bench_rational_bounds.cpp - X6: §4.2.1 bound strategies -----===//
//
// The paper's running example Σ_{i=1}^{⌊n/3⌋} i computed with every
// strategy of §4.2.1: symbolic (mod-atoms), splintered exact, upper bound
// n(n+3)/18, lower bound (n-2)(n+1)/18, approximation (n-1)(n+2)/18.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "counting/Summation.h"
#include "presburger/Parser.h"

using namespace omega;

namespace {

PiecewiseValue solveWith(BoundStrategy S) {
  Formula F = parseFormulaOrDie("1 <= i && 3*i <= n");
  SumOptions Opts;
  Opts.Strategy = S;
  return sumOverFormula(F, {"i"}, QuasiPolynomial::variable("i"), Opts);
}

void report() {
  reportHeader("X6", "rational bounds: Σ_{i=1}^{⌊n/3⌋} i (§4.2.1)");
  PiecewiseValue Sym = solveWith(BoundStrategy::SymbolicMod);
  PiecewiseValue Spl = solveWith(BoundStrategy::Splinter);
  PiecewiseValue Up = solveWith(BoundStrategy::UpperBound);
  PiecewiseValue Lo = solveWith(BoundStrategy::LowerBound);
  PiecewiseValue Ap = solveWith(BoundStrategy::Approximate);
  reportRow("symbolic (mod atoms)",
            "(n - n mod 3)(n + 3 - n mod 3)/18", Sym.toString());
  reportRow("splintered exact", "3 residue cases", Spl.toString());
  reportRow("upper bound", "n(n+3)/18", Up.toString());
  reportRow("lower bound", "(n-2)(n+1)/18", Lo.toString());
  reportRow("approximation", "(n-1)(n+2)/18 (or bound average)",
            Ap.toString());
  // Numeric sanity at a few points (truth: U(U+1)/2 with U = floor(n/3)).
  for (int64_t N : {7, 9, 100}) {
    int64_t U = N / 3;
    Assignment A{{"n", BigInt(N)}};
    reportRow("exact value at n=" + std::to_string(N),
              std::to_string(U * (U + 1) / 2),
              Spl.evaluate(A).toString());
    std::cout << "    bounds at n=" << N << ": lower "
              << Lo.evaluate(A).toString() << " <= exact "
              << Sym.evaluate(A).toString() << " <= upper "
              << Up.evaluate(A).toString() << ", best-guess "
              << Ap.evaluate(A).toString() << "\n";
  }
}

void BM_Strategy(benchmark::State &State) {
  BoundStrategy S = static_cast<BoundStrategy>(State.range(0));
  Formula F = parseFormulaOrDie("1 <= i && 3*i <= n");
  SumOptions Opts;
  Opts.Strategy = S;
  for (auto _ : State) {
    PiecewiseValue V =
        sumOverFormula(F, {"i"}, QuasiPolynomial::variable("i"), Opts);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_Strategy)
    ->Arg(int(BoundStrategy::Splinter))
    ->Arg(int(BoundStrategy::SymbolicMod))
    ->Arg(int(BoundStrategy::UpperBound))
    ->Arg(int(BoundStrategy::LowerBound))
    ->Arg(int(BoundStrategy::Approximate));

// Splintering cost grows with the divisor; the symbolic form stays flat.
void BM_SplinterVsDivisor(benchmark::State &State) {
  std::string Text = "1 <= i && " + std::to_string(State.range(0)) +
                     "*i <= n";
  Formula F = parseFormulaOrDie(Text);
  for (auto _ : State) {
    PiecewiseValue V =
        sumOverFormula(F, {"i"}, QuasiPolynomial::variable("i"));
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_SplinterVsDivisor)->DenseRange(2, 10, 2);

void BM_SymbolicVsDivisor(benchmark::State &State) {
  std::string Text = "1 <= i && " + std::to_string(State.range(0)) +
                     "*i <= n";
  Formula F = parseFormulaOrDie(Text);
  SumOptions Opts;
  Opts.Strategy = BoundStrategy::SymbolicMod;
  for (auto _ : State) {
    PiecewiseValue V =
        sumOverFormula(F, {"i"}, QuasiPolynomial::variable("i"), Opts);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_SymbolicVsDivisor)->DenseRange(2, 10, 2);

} // namespace

OMEGA_BENCH_MAIN(report)
