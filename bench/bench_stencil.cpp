//===- bench/bench_stencil.cpp - X14: §5.1 stencil summarization ---------===//
//
// Summarizing uniformly generated sets: the 0-1 programming method vs the
// convex hull + strides method on 4-, 5- and 9-point stencils.  The paper
// found the Omega test could summarize 4- and 5-point stencils from the
// 0-1 form but not the 9-point one; the hull method handles all three.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "apps/UniformlyGenerated.h"

using namespace omega;

namespace {

std::vector<Offset> stencil(unsigned Points) {
  std::vector<Offset> S;
  switch (Points) {
  case 4:
    S = {{BigInt(-1), BigInt(0)},
         {BigInt(1), BigInt(0)},
         {BigInt(0), BigInt(-1)},
         {BigInt(0), BigInt(1)}};
    break;
  case 5:
    S = {{BigInt(0), BigInt(0)},
         {BigInt(-1), BigInt(0)},
         {BigInt(1), BigInt(0)},
         {BigInt(0), BigInt(-1)},
         {BigInt(0), BigInt(1)}};
    break;
  case 9:
    for (int64_t X = -1; X <= 1; ++X)
      for (int64_t Y = -1; Y <= 1; ++Y)
        S.push_back({BigInt(X), BigInt(Y)});
    break;
  default:
    assert(false && "unknown stencil");
  }
  return S;
}

void report() {
  reportHeader("X14", "stencil summarization (§5.1)");
  std::vector<std::string> Vars{"dx", "dy"};
  for (unsigned P : {4u, 5u, 9u}) {
    std::vector<Offset> S = stencil(P);
    auto Hull = summarizeOffsetsHull(S, Vars);
    reportRow("hull method, " + std::to_string(P) + "-point: exact",
              "yes", Hull && Hull->Exact ? "yes" : "no");
    if (Hull)
      reportRow("  summary", "-", Hull->Constraints.toString());
    Formula ZeroOne = offsetsZeroOneFormula(S, Vars);
    BigInt Count = countConcrete(ZeroOne, {"dx", "dy"});
    std::vector<Conjunct> Simplified = simplify(ZeroOne);
    reportRow("0-1 method, " + std::to_string(P) + "-point count",
              std::to_string(P), Count.toString());
    reportRow("  clauses after Omega simplification ("
              "paper: 9-point resisted a convex summary)",
              "-", std::to_string(Simplified.size()));
  }
}

void BM_HullSummary(benchmark::State &State) {
  std::vector<Offset> S = stencil(static_cast<unsigned>(State.range(0)));
  std::vector<std::string> Vars{"dx", "dy"};
  for (auto _ : State) {
    auto R = summarizeOffsetsHull(S, Vars);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_HullSummary)->Arg(4)->Arg(5)->Arg(9)->Unit(
    benchmark::kMillisecond);

void BM_ZeroOneSummary(benchmark::State &State) {
  std::vector<Offset> S = stencil(static_cast<unsigned>(State.range(0)));
  std::vector<std::string> Vars{"dx", "dy"};
  Formula F = offsetsZeroOneFormula(S, Vars);
  for (auto _ : State) {
    std::vector<Conjunct> D = simplify(F);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_ZeroOneSummary)->Arg(4)->Arg(5)->Arg(9)->Unit(
    benchmark::kMillisecond);

} // namespace

OMEGA_BENCH_MAIN(report)
