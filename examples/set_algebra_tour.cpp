//===- examples/set_algebra_tour.cpp - Sets, relations, codegen ----------===//
//
// A tour of the higher-level APIs layered on the counting engine:
// PresburgerSet algebra, tuple Relations with quantitative queries, and
// loop generation that scans a set's points ([AI91]).
//
// Run:  ./set_algebra_tour
//
//===----------------------------------------------------------------------===//

#include "apps/CodeGen.h"
#include "counting/Relation.h"
#include "counting/Set.h"
#include "presburger/Parser.h"

#include <iostream>

using namespace omega;

int main() {
  // --- Sets -------------------------------------------------------------
  PresburgerSet Evens({"x"}, parseFormulaOrDie("0 <= x <= n && 2 | x"));
  PresburgerSet Triples({"x"}, parseFormulaOrDie("0 <= x <= n && 3 | x"));
  PresburgerSet Both = Evens.intersect(Triples);
  PresburgerSet Either = Evens.unionWith(Triples);
  PresburgerSet OnlyEven = Evens.subtract(Triples);

  std::cout << "sets over [0, n]:\n";
  std::cout << "  |evens ∩ triples| = " << Both.count() << "\n";
  std::cout << "  |evens ∪ triples| = " << Either.count() << "\n";
  std::cout << "  |evens \\ triples| = " << OnlyEven.count() << "\n";
  Assignment At{{"n", BigInt(30)}};
  std::cout << "  at n=30: " << Both.count().evaluateInt(At) << " / "
            << Either.count().evaluateInt(At) << " / "
            << OnlyEven.count().evaluateInt(At) << "\n";
  if (auto P = Both.sample(At))
    std::cout << "  a common member: x = " << P->at("x") << "\n";

  // --- Relations ----------------------------------------------------------
  // The "next multiple of 3" relation restricted to [0, n].
  Relation Next({"x"}, {"y"},
                parseFormulaOrDie(
                    "y = x + 3 && 0 <= x <= n && 0 <= y <= n && 3 | x"));
  Relation TwoSteps = Next.compose(Next);
  std::cout << "\nrelation y = x + 3 on multiples of 3:\n";
  std::cout << "  pairs: " << Next.countPairs() << "\n";
  std::cout << "  two-step pairs: " << TwoSteps.countPairs() << "\n";
  std::cout << "  at n=30: " << Next.countPairs().evaluateInt(At) << " and "
            << TwoSteps.countPairs().evaluateInt(At) << "\n";

  // --- Code generation ----------------------------------------------------
  Conjunct Triangle;
  Triangle.add(Constraint::ge(AffineExpr::variable("i") - AffineExpr(1)));
  Triangle.add(Constraint::ge(AffineExpr::variable("j") -
                              AffineExpr::variable("i")));
  Triangle.add(Constraint::ge(AffineExpr::variable("n") -
                              AffineExpr::variable("j")));
  GeneratedScan Scan = generateScan(Triangle, {"i", "j"});
  std::cout << "\ngenerated loops scanning {1 <= i <= j <= n}:\n"
            << Scan.emit();
  std::cout << "visited at n=4: " << runScan(Scan, {{"n", BigInt(4)}}).size()
            << " points (expect 10)\n";
  return 0;
}
