//===- examples/loop_analysis.cpp - Execution-time estimation ------------===//
//
// §1.1 of the paper: estimate the execution time of a loop nest, compare
// flops against memory traffic, and check load balance — the [TF92]
// motivation.
//
// Run:  ./loop_analysis
//
//===----------------------------------------------------------------------===//

#include "apps/LoopNest.h"
#include "apps/MemoryModel.h"
#include "apps/Scheduling.h"

#include <iostream>

using namespace omega;

static AffineExpr var(const char *N) { return AffineExpr::variable(N); }

int main() {
  // A blocked triangular update:
  //   for i = 1 to n
  //     for j = 1 to i
  //       a(i) += b(j) * c(i - j + 1)     // 2 flops
  LoopNest Nest;
  Nest.add("i", AffineExpr(1), var("n"));
  Nest.add("j", AffineExpr(1), var("i"));

  PiecewiseValue Iters = Nest.iterationCount();
  PiecewiseValue Flops = Nest.flopCount(QuasiPolynomial(Rational(2)));
  std::cout << "Triangular nest {1<=j<=i<=n}\n";
  std::cout << "  iterations: " << Iters << "\n";
  std::cout << "  flops (2/iter): " << Flops << "\n";

  // Distinct memory cells touched — the denominator of the paper's
  // computation/memory balance.
  std::vector<ArrayRef> Refs{
      {"b", {var("j")}},
  };
  PiecewiseValue Cells = countDistinctLocations(Nest, Refs, "b");
  std::cout << "  distinct b() cells: " << Cells << "\n";

  for (int64_t N : {16, 64, 256}) {
    Assignment At{{"n", BigInt(N)}};
    Rational F = Flops.evaluate(At), C = Cells.evaluate(At);
    std::cout << "  n=" << N << ": flops=" << F.toString()
              << " cells=" << C.toString()
              << " flops/cell=" << (F / C).toDouble() << "\n";
  }

  // Load balance (the paper's [TF92] application): is the work of outer
  // iteration i independent of i?
  PiecewiseValue PerIter =
      perIterationWork(Nest, "i", QuasiPolynomial(Rational(2)));
  std::cout << "\n  per-outer-iteration work: " << PerIter << "\n";
  bool Balanced = isLoadBalanced(Nest, "i", QuasiPolynomial(Rational(2)),
                                 {{"n", BigInt(32)}}, BigInt(1), BigInt(32));
  std::cout << "  load balanced across i? " << (Balanced ? "yes" : "no")
            << " (work grows with i, as the symbolic form shows)\n";
  return 0;
}
