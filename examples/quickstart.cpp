//===- examples/quickstart.cpp - Five-minute tour of OmegaCount ----------===//
//
// Builds a Presburger formula from text, counts its solutions symbolically,
// and evaluates the answer — the core workflow of Pugh, PLDI 1994.
//
// Run:  ./quickstart
//
//===----------------------------------------------------------------------===//

#include "counting/Summation.h"
#include "presburger/Parser.h"

#include <iostream>

using namespace omega;

int main() {
  // The iteration space of:
  //   for i = 1 to n
  //     for j = i to m
  //       body
  Formula Space = parseFormulaOrDie("1 <= i <= n && i <= j <= m");

  // (Σ i,j : Space : 1) — how many times does the body run?
  PiecewiseValue Count = countSolutions(Space, {"i", "j"});

  std::cout << "Iteration count of {1<=i<=n, i<=j<=m}:\n  " << Count << "\n\n";

  // The answer is symbolic in n and m; evaluate it anywhere.
  for (int64_t N : {4, 10})
    for (int64_t M : {3, 10}) {
      Assignment At{{"n", BigInt(N)}, {"m", BigInt(M)}};
      std::cout << "  n=" << N << " m=" << M << "  ->  "
                << Count.evaluateInt(At) << " iterations\n";
    }

  // Summing a polynomial over the space: total work if iteration (i, j)
  // costs j flops.
  PiecewiseValue Work =
      sumOverFormula(Space, {"i", "j"}, QuasiPolynomial::variable("j"));
  std::cout << "\nTotal flops when iteration (i,j) costs j:\n  " << Work
            << "\n";
  std::cout << "  at n=10, m=10: "
            << Work.evaluateInt({{"n", BigInt(10)}, {"m", BigInt(10)}})
            << "\n\n";

  // Strides and quantifiers work too: how many even numbers have an odd
  // square-ish partner... count x in [1, n] with x ≡ 2 (mod 3).
  Formula Strided = parseFormulaOrDie("1 <= x <= n && 3 | x - 2");
  PiecewiseValue C2 = countSolutions(Strided, {"x"});
  std::cout << "Count of x in [1,n] with x = 2 (mod 3):\n  " << C2 << "\n";
  std::cout << "  at n=10: " << C2.evaluateInt({{"n", BigInt(10)}}) << "\n";
  return 0;
}
