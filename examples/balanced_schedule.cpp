//===- examples/balanced_schedule.cpp - Balanced chunk scheduling --------===//
//
// §1.1 / [HP93a]: "given an unbalanced loop, assign different number of
// iterations to each processor so that each processor gets the same total
// number of flops (balanced chunk-scheduling)".
//
// The symbolic prefix-sum of the work polynomial lets us find chunk
// boundaries by binary search — no loop simulation.
//
// Run:  ./balanced_schedule
//
//===----------------------------------------------------------------------===//

#include "apps/Scheduling.h"

#include <iostream>

using namespace omega;

static AffineExpr var(const char *N) { return AffineExpr::variable(N); }

int main() {
  // Triangular loop: iteration i of the outer loop performs i inner
  // iterations — classic imbalance.
  LoopNest Nest;
  Nest.add("i", AffineExpr(1), var("n"));
  Nest.add("j", AffineExpr(1), var("i"));

  const int64_t N = 1000;
  const unsigned Procs = 8;
  Assignment Sym{{"n", BigInt(N)}};

  std::cout << "Triangular loop, n=" << N << ", " << Procs
            << " processors\n\n";

  // Naive equal-iteration chunking for contrast.
  std::cout << "naive equal-iteration chunks:\n";
  int64_t MaxNaive = 0;
  for (unsigned P = 0; P < Procs; ++P) {
    int64_t B = 1 + int64_t(P) * N / Procs;
    int64_t E = int64_t(P + 1) * N / Procs;
    int64_t W = (E * (E + 1) - (B - 1) * B) / 2;
    MaxNaive = std::max(MaxNaive, W);
    std::cout << "  p" << P << ": i in [" << B << "," << E << "]  work "
              << W << "\n";
  }

  std::cout << "\nbalanced chunks (symbolic prefix sums):\n";
  std::vector<Chunk> Chunks = balancedChunks(
      Nest, "i", QuasiPolynomial(Rational(1)), Sym, BigInt(1), BigInt(N),
      Procs);
  BigInt MaxBal(0);
  for (unsigned P = 0; P < Chunks.size(); ++P) {
    MaxBal = std::max(MaxBal, Chunks[P].Flops);
    std::cout << "  p" << P << ": i in [" << Chunks[P].Begin << ","
              << Chunks[P].End << "]  work " << Chunks[P].Flops << "\n";
  }
  int64_t Total = N * (N + 1) / 2;
  std::cout << "\ntotal work " << Total << "; ideal per-processor "
            << Total / Procs << "\n";
  std::cout << "max chunk work: naive " << MaxNaive << " vs balanced "
            << MaxBal << "  (speedup bound " << std::fixed
            << double(Total) / double(MaxNaive) << " -> "
            << double(Total) / MaxBal.toDouble() << " of " << Procs
            << ")\n";
  return 0;
}
