//===- examples/cache_model.cpp - SOR cache behaviour (Example 5) --------===//
//
// §6 Example 5 / Figure 2: the Successive Over-Relaxation loop
//
//   for i = 2 to N-1
//     for j = 2 to N-1
//       a(i,j) = (2*a(i,j) + a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1))/6
//
// How many distinct memory cells does it touch?  How many 16-element
// cache lines?  Will it flush a cache of a given size?
//
// Run:  ./cache_model
//
//===----------------------------------------------------------------------===//

#include "apps/MemoryModel.h"

#include <iostream>

using namespace omega;

static AffineExpr var(const char *N) { return AffineExpr::variable(N); }

int main() {
  LoopNest Nest;
  Nest.add("i", AffineExpr(2), var("N") - AffineExpr(1));
  Nest.add("j", AffineExpr(2), var("N") - AffineExpr(1));

  std::vector<ArrayRef> Refs{
      {"a", {var("i"), var("j")}},
      {"a", {var("i") - AffineExpr(1), var("j")}},
      {"a", {var("i") + AffineExpr(1), var("j")}},
      {"a", {var("i"), var("j") - AffineExpr(1)}},
      {"a", {var("i"), var("j") + AffineExpr(1)}}};

  PiecewiseValue Cells = countDistinctLocations(Nest, Refs, "a");
  std::cout << "SOR distinct memory cells (symbolic in N):\n  " << Cells
            << "\n";
  std::cout << "  at N=500: " << Cells.evaluateInt({{"N", BigInt(500)}})
            << "   (paper: 249996)\n\n";

  CacheMapping Map; // 16-element lines along i, base subscript 1.
  PiecewiseValue Lines = countDistinctCacheLines(Nest, Refs, "a", Map);
  std::cout << "SOR distinct 16-element cache lines:\n  " << Lines << "\n";
  std::cout << "  at N=500: " << Lines.evaluateInt({{"N", BigInt(500)}})
            << "   (paper: 16000)\n\n";

  // The paper's cache question: does the loop flush the cache?
  for (int64_t CacheLines : {4096, 16384, 65536}) {
    BigInt Touched = Lines.evaluateInt({{"N", BigInt(500)}});
    std::cout << "  cache of " << CacheLines << " lines at N=500: "
              << (Touched > BigInt(CacheLines) ? "flushed" : "fits")
              << "\n";
  }
  return 0;
}
