//===- examples/hpf_comm.cpp - HPF message buffers (§3.3) ----------------===//
//
// §3.3 of the paper: a template T(0:1023) distributed block-cyclically
// (block 4) over 8 processors.  Count the cells each processor owns and
// size the message buffers for the shift communication  A(i) = B(i+1).
//
// Run:  ./hpf_comm
//
//===----------------------------------------------------------------------===//

#include "apps/HpfDistribution.h"

#include <iostream>

using namespace omega;

int main() {
  BlockCyclic Dist{BigInt(4), BigInt(8), BigInt(1024)};

  PiecewiseValue Owned = cellsPerProcessor(Dist);
  std::cout << "Block-cyclic(4) over 8 processors, template T(0:1023)\n";
  std::cout << "cells owned, symbolic in p:\n  " << Owned << "\n";
  for (int64_t P = 0; P < 8; ++P)
    std::cout << "  processor " << P << " owns "
              << Owned.evaluateInt({{"p", BigInt(P)}}) << " cells\n";

  std::cout << "\nShift communication A(i) = B(i+1):\n";
  PiecewiseValue Recv = shiftCommVolume(Dist, BigInt(1));
  std::cout << "elements each processor must receive (message buffer "
               "size), symbolic in p:\n  "
            << Recv << "\n";
  BigInt Total(0);
  for (int64_t P = 0; P < 8; ++P) {
    BigInt V = Recv.evaluateInt({{"p", BigInt(P)}});
    Total += V;
    std::cout << "  processor " << P << ": buffer for " << V
              << " elements\n";
  }
  std::cout << "  total message traffic: " << Total << " elements\n";

  std::cout << "\nLarger shifts move whole blocks:\n";
  for (int64_t Shift : {1, 2, 4, 8, 32}) {
    PiecewiseValue R = shiftCommVolume(Dist, BigInt(Shift));
    std::cout << "  shift " << Shift << ": processor 0 receives "
              << R.evaluateInt({{"p", BigInt(0)}}) << " elements\n";
  }
  return 0;
}
