//===- examples/dependence_analysis.cpp - Counting dependences -----------===//
//
// The Omega test's original job was *deciding* array dependences; this
// paper upgrades it to *counting* them.  We analyze a wavefront loop,
// count its dependence pairs symbolically, and size the communication of
// a pipeline split — §1.1's "array elements that need to be transmitted
// from one processor to another".
//
// Run:  ./dependence_analysis
//
//===----------------------------------------------------------------------===//

#include "apps/Dependence.h"

#include <iostream>

using namespace omega;

static AffineExpr var(const char *N) { return AffineExpr::variable(N); }

int main() {
  // for i = 1 to n
  //   for j = 1 to n
  //     a(i, j) = a(i-1, j) + a(i, j-1)    // wavefront
  LoopNest Nest;
  Nest.add("i", AffineExpr(1), var("n"));
  Nest.add("j", AffineExpr(1), var("n"));
  ArrayRef Write{"a", {var("i"), var("j")}};
  ArrayRef ReadUp{"a", {var("i") - AffineExpr(1), var("j")}};
  ArrayRef ReadLeft{"a", {var("i"), var("j") - AffineExpr(1)}};

  std::cout << "wavefront a(i,j) = a(i-1,j) + a(i,j-1), 1 <= i,j <= n\n\n";
  std::cout << "flow dependence via a(i-1,j)? "
            << (hasDependence(Nest, Write, ReadUp) ? "yes" : "no") << "\n";
  std::cout << "flow dependence via a(i,j-1)? "
            << (hasDependence(Nest, Write, ReadLeft) ? "yes" : "no")
            << "\n";
  // A non-dependence for contrast: a(2i, j) vs a(2i+1, j).
  ArrayRef Even{"a", {BigInt(2) * var("i"), var("j")}};
  ArrayRef Odd{"a", {BigInt(2) * var("i") + AffineExpr(1), var("j")}};
  std::cout << "false dependence a(2i,j) vs a(2i+1,j)? "
            << (hasDependence(Nest, Even, Odd) ? "yes" : "no") << "\n\n";

  PiecewiseValue Up = countDependencePairs(Nest, Write, ReadUp);
  PiecewiseValue Left = countDependencePairs(Nest, Write, ReadLeft);
  std::cout << "dependence pairs via a(i-1,j): " << Up << "\n";
  std::cout << "dependence pairs via a(i,j-1): " << Left << "\n";
  for (int64_t N : {10, 100}) {
    Assignment A{{"n", BigInt(N)}};
    std::cout << "  n=" << N << ": " << Up.evaluateInt(A) << " + "
              << Left.evaluateInt(A) << " pairs\n";
  }

  // Pipeline the outer loop at a split point s: how many cells cross?
  PiecewiseValue Comm =
      splitCommunicationCells(Nest, Write, ReadUp, "i", "s");
  std::cout << "\ncells sent across a split of i at s (symbolic):\n  "
            << Comm << "\n";
  for (int64_t S : {1, 50, 99})
    std::cout << "  n=100, s=" << S << ": "
              << Comm.evaluateInt({{"n", BigInt(100)}, {"s", BigInt(S)}})
              << " cells\n";
  std::cout << "\n(each split boundary transmits one row of n cells, as "
               "the symbolic form shows)\n";
  return 0;
}
