//===- apps/LoopNest.h - Affine loop-nest model -----------------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §1.1: "Within programs with affine loop bounds, guards and subscripts,
/// we can define formulas whose solutions correspond to ... the flops
/// executed by a loop".  A LoopNest models
///
///   for v1 = max(L...) to min(U...) step s1
///     for v2 = ...
///       if (guards) body
///
/// and exposes its iteration space as a Presburger formula, from which
/// iteration counts (execution-time estimates) and flop counts follow.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_APPS_LOOPNEST_H
#define OMEGA_APPS_LOOPNEST_H

#include "counting/Summation.h"

namespace omega {

/// One loop level.
struct Loop {
  std::string Var;
  std::vector<AffineExpr> Lowers; ///< v >= max of these.
  std::vector<AffineExpr> Uppers; ///< v <= min of these.
  BigInt Step = BigInt(1);        ///< Positive step; anchored at Lowers[0].
};

/// An affine loop nest with optional affine guards.
class LoopNest {
public:
  /// Adds a loop with single bounds (the common case).
  LoopNest &add(const std::string &Var, AffineExpr Lower, AffineExpr Upper,
                BigInt Step = BigInt(1));
  /// Adds a loop with max/min bounds.
  LoopNest &add(Loop L);
  /// Conjoins an affine guard over the loop variables and symbols.
  LoopNest &guard(Constraint C);

  const std::vector<Loop> &loops() const { return Loops; }
  const std::vector<Constraint> &guards() const { return Guards; }

  /// Loop variables, outermost first.
  std::vector<std::string> varOrder() const;
  VarSet vars() const;

  /// The iteration space as a conjunction of bounds, steps (as stride
  /// constraints anchored at the first lower bound) and guards.
  Formula iterationSpace() const;

  /// (Σ vars : space : 1): symbolic iteration count — the paper's
  /// execution-time estimate.
  PiecewiseValue iterationCount(SumOptions Opts = {}) const;

  /// (Σ vars : space : FlopsPerIter): symbolic flop count; FlopsPerIter
  /// may depend on the loop variables (e.g. inner trip counts).
  PiecewiseValue flopCount(const QuasiPolynomial &FlopsPerIter,
                           SumOptions Opts = {}) const;

private:
  std::vector<Loop> Loops;
  std::vector<Constraint> Guards;
};

} // namespace omega

#endif // OMEGA_APPS_LOOPNEST_H
