//===- apps/Scheduling.h - Load balance & balanced chunks -------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §1.1 applications: "determine whether a parallel loop is load balanced
/// (does each iteration perform the same number of flops)" [TF92], and
/// "given an unbalanced loop, assign different numbers of iterations to
/// each processor so that each processor gets the same total number of
/// flops (balanced chunk-scheduling, as described in [HP93a])".
///
/// Both are built on one symbolic object: the per-outer-iteration work
/// polynomial W(k) = (Σ inner vars : space ∧ outer = k : flops) and its
/// prefix sum P(k) = (Σ all vars : space ∧ outer <= k : flops).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_APPS_SCHEDULING_H
#define OMEGA_APPS_SCHEDULING_H

#include "apps/LoopNest.h"

namespace omega {

/// Work of a single outer iteration, symbolically in the outer variable
/// (and the symbolic constants).
PiecewiseValue perIterationWork(const LoopNest &Nest,
                                const std::string &OuterVar,
                                const QuasiPolynomial &FlopsPerIter,
                                SumOptions Opts = {});

/// True iff every outer iteration in [\p Lo, \p Hi] performs the same
/// number of flops at the given symbol values (the [TF92] load-balance
/// check, decided by evaluating the symbolic per-iteration work).
bool isLoadBalanced(const LoopNest &Nest, const std::string &OuterVar,
                    const QuasiPolynomial &FlopsPerIter,
                    const Assignment &Symbols, const BigInt &Lo,
                    const BigInt &Hi);

/// One processor's contiguous range of outer iterations.
struct Chunk {
  BigInt Begin;
  BigInt End; ///< Inclusive; Begin > End encodes an empty chunk.
  BigInt Flops;
};

/// Balanced chunk scheduling [HP93a]: partitions outer iterations
/// [\p Lo, \p Hi] into \p NumProcs contiguous chunks with (nearly) equal
/// flops, using the symbolic prefix sum so each boundary is found by
/// binary search rather than by simulating the loop.
std::vector<Chunk> balancedChunks(const LoopNest &Nest,
                                  const std::string &OuterVar,
                                  const QuasiPolynomial &FlopsPerIter,
                                  const Assignment &Symbols, const BigInt &Lo,
                                  const BigInt &Hi, unsigned NumProcs);

} // namespace omega

#endif // OMEGA_APPS_SCHEDULING_H
