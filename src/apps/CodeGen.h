//===- apps/CodeGen.h - Scanning polyhedra with DO loops --------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inverse of loop analysis: given a clause and a variable order,
/// produce loop bounds that scan exactly its integer points — Ancourt &
/// Irigoin, "Scanning polyhedra with DO loops" [AI91], the citation the
/// paper leans on for its §3.3/§5.1 machinery.  Bounds at each level come
/// from projecting away the deeper variables (real shadow, a superset);
/// a residual guard re-establishes exactness inside the innermost loop
/// when projection was inexact (integer holes, strides).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_APPS_CODEGEN_H
#define OMEGA_APPS_CODEGEN_H

#include "omega/Omega.h"

#include <string>
#include <vector>

namespace omega {

/// One generated loop level: Var runs from max of the lower bounds to min
/// of the upper bounds (rational bounds rounded ceil/floor).
struct GeneratedLoop {
  std::string Var;
  /// Var >= ceil(Expr / Coef), Coef >= 1.
  std::vector<std::pair<BigInt, AffineExpr>> Lowers;
  /// Var <= floor(Expr / Coef), Coef >= 1.
  std::vector<std::pair<BigInt, AffineExpr>> Uppers;
};

/// Loops plus a residual guard; the scan visits exactly the clause's
/// points: iterate the loops, skip points failing the guard.
struct GeneratedScan {
  std::vector<GeneratedLoop> Loops;
  /// Constraints to re-check per point (empty when the bounds are exact).
  std::vector<Constraint> Guard;
  /// True when the generated bounds are provably exact (no guard needed).
  bool Exact = false;

  /// Pseudo-C rendering, e.g.
  ///   for (i = max(1, ceild(n,2)); i <= min(n, 100); i++)
  std::string emit() const;
};

/// Generates scanning loops for \p C over \p Order (outermost first).
/// Variables of C outside Order are symbolic parameters.  The clause must
/// bound every ordered variable both ways (asserts otherwise).
GeneratedScan generateScan(const Conjunct &C,
                           const std::vector<std::string> &Order);

/// Interprets a scan at concrete parameter values, returning the visited
/// points in loop order.  The reference semantics for tests and a handy
/// way to materialize small sets.
std::vector<Assignment> runScan(const GeneratedScan &Scan,
                                const Assignment &Params);

} // namespace omega

#endif // OMEGA_APPS_CODEGEN_H
