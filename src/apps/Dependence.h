//===- apps/Dependence.h - Array dependence analysis ------------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Omega test's original application (Pugh, CACM 1992): array data
/// dependence testing — combined with this paper's contribution, counting.
/// A (flow) dependence from reference Src in iteration i to reference Dst
/// in iteration i' exists when both iterations are in the space, the
/// subscripts address the same cell, and i lexicographically precedes i'.
///
/// Counting dependences (not just deciding them) serves §1.1's
/// communication application: "the array elements that need to be
/// transmitted from one processor to another during the execution of a
/// loop" — below, the cells that cross a pipeline split of the outer loop.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_APPS_DEPENDENCE_H
#define OMEGA_APPS_DEPENDENCE_H

#include "apps/MemoryModel.h"

namespace omega {

/// The dependence-pair set {(i, i')} from \p Src to \p Dst within
/// \p Nest, with the target iteration's variables renamed by appending
/// \p PrimeSuffix.  Same-iteration pairs are excluded (strict
/// lexicographic order).
Formula dependencePairs(const LoopNest &Nest, const ArrayRef &Src,
                        const ArrayRef &Dst,
                        const std::string &PrimeSuffix = "_p");

/// True iff any cross-iteration dependence exists (the classic Omega-test
/// dependence question), for any symbol values.
bool hasDependence(const LoopNest &Nest, const ArrayRef &Src,
                   const ArrayRef &Dst);

/// (Σ i,i' : dependence : 1) — the number of dependence pairs, symbolic in
/// the nest's symbolic constants.
PiecewiseValue countDependencePairs(const LoopNest &Nest,
                                    const ArrayRef &Src, const ArrayRef &Dst,
                                    SumOptions Opts = {});

/// Communication volume across a pipeline split of \p OuterVar at the
/// (symbolic) boundary \p SplitVar: counts the distinct cells of the
/// written array touched by \p Write in iterations with OuterVar <= split
/// and by \p Read in iterations with OuterVar > split — the elements one
/// processor must send to its successor.
PiecewiseValue splitCommunicationCells(const LoopNest &Nest,
                                       const ArrayRef &Write,
                                       const ArrayRef &Read,
                                       const std::string &OuterVar,
                                       const std::string &SplitVar,
                                       SumOptions Opts = {});

} // namespace omega

#endif // OMEGA_APPS_DEPENDENCE_H
