//===- apps/CodeGen.cpp - Scanning polyhedra with DO loops ---------------===//

#include "apps/CodeGen.h"

#include "support/Error.h"

#include <algorithm>
#include <sstream>

using namespace omega;

namespace {

/// Splits the Ge constraints of \p C on \p V into lower/upper bound forms.
void boundsOf(const Conjunct &C, const std::string &V,
              std::vector<std::pair<BigInt, AffineExpr>> &Lowers,
              std::vector<std::pair<BigInt, AffineExpr>> &Uppers) {
  for (const Constraint &K : C.constraints()) {
    if (K.isStride())
      continue;
    BigInt A = K.expr().coeff(V);
    if (A.isZero())
      continue;
    AffineExpr Rest = K.expr();
    Rest.setCoeff(V, BigInt(0));
    if (K.isEq()) {
      // a*v = -rest pins the value: both a lower and an upper bound.
      if (A.isNegative()) {
        A = -A;
        Rest = -Rest;
      }
      Lowers.push_back({A, -Rest});
      Uppers.push_back({A, -Rest});
      continue;
    }
    if (A.isPositive())
      Lowers.push_back({A, -Rest}); // a*v >= -rest.
    else
      Uppers.push_back({-A, std::move(Rest)}); // a*v <= rest.
  }
}

std::string renderBound(const std::pair<BigInt, AffineExpr> &B, bool Lower) {
  std::ostringstream OS;
  if (B.first.isOne()) {
    OS << "(" << B.second << ")";
    return OS.str();
  }
  OS << (Lower ? "ceild(" : "floord(") << B.second << ", " << B.first << ")";
  return OS.str();
}

} // namespace

GeneratedScan omega::generateScan(const Conjunct &C,
                                  const std::vector<std::string> &Order) {
  GeneratedScan Scan;
  Scan.Exact = true;

  for (size_t Level = 0; Level < Order.size(); ++Level) {
    // Project away the deeper variables; the real shadow gives valid (if
    // possibly loose) bounds for this level.
    VarSet Deeper(Order.begin() + Level + 1, Order.end());
    std::vector<Conjunct> Shadow = projectVars(C, Deeper, ShadowMode::Real);
    // Real-shadow projection never splinters: at most one clause.
    check(Shadow.size() <= 1, "real shadow must be a single clause");
    GeneratedLoop L;
    L.Var = Order[Level];
    if (!Shadow.empty()) {
      boundsOf(Shadow[0], L.Var, L.Lowers, L.Uppers);
      // Strides surviving projection make the bounds inexact.
      for (const Constraint &K : Shadow[0].constraints())
        if (K.isStride() && K.mentions(L.Var))
          Scan.Exact = false;
      for (const auto &[Coef, Expr] : L.Lowers) {
        (void)Expr;
        if (!Coef.isOne())
          Scan.Exact = false; // Rational bound: integer holes possible.
      }
      for (const auto &[Coef, Expr] : L.Uppers) {
        (void)Expr;
        if (!Coef.isOne())
          Scan.Exact = false;
      }
    }
    check(!L.Lowers.empty() && !L.Uppers.empty(),
          "scanned variable must be bounded both ways");
    Scan.Loops.push_back(std::move(L));
  }

  // The real shadow over-approximates whenever any elimination was
  // inexact; detect via strides/equalities in the original clause too.
  for (const Constraint &K : C.constraints())
    if (!K.isGe())
      Scan.Exact = false;

  if (!Scan.Exact)
    Scan.Guard = C.constraints();
  return Scan;
}

std::string GeneratedScan::emit() const {
  std::ostringstream OS;
  std::string Indent;
  for (const GeneratedLoop &L : Loops) {
    OS << Indent << "for (" << L.Var << " = ";
    if (L.Lowers.size() > 1)
      OS << "max(";
    for (size_t I = 0; I < L.Lowers.size(); ++I)
      OS << (I ? ", " : "") << renderBound(L.Lowers[I], /*Lower=*/true);
    if (L.Lowers.size() > 1)
      OS << ")";
    OS << "; " << L.Var << " <= ";
    if (L.Uppers.size() > 1)
      OS << "min(";
    for (size_t I = 0; I < L.Uppers.size(); ++I)
      OS << (I ? ", " : "") << renderBound(L.Uppers[I], /*Lower=*/false);
    if (L.Uppers.size() > 1)
      OS << ")";
    OS << "; " << L.Var << "++)\n";
    Indent += "  ";
  }
  if (!Guard.empty()) {
    OS << Indent << "if (";
    for (size_t I = 0; I < Guard.size(); ++I)
      OS << (I ? " && " : "") << Guard[I];
    OS << ")\n";
    Indent += "  ";
  }
  OS << Indent << "visit(";
  for (size_t I = 0; I < Loops.size(); ++I)
    OS << (I ? ", " : "") << Loops[I].Var;
  OS << ");\n";
  return OS.str();
}

namespace {

void runLevel(const GeneratedScan &Scan, size_t Level, Assignment &Point,
              std::vector<Assignment> &Out) {
  if (Level == Scan.Loops.size()) {
    for (const Constraint &K : Scan.Guard)
      if (!K.holds(Point))
        return;
    Out.push_back(Point);
    return;
  }
  const GeneratedLoop &L = Scan.Loops[Level];
  bool HaveLo = false, HaveHi = false;
  BigInt Lo, Hi;
  for (const auto &[Coef, Expr] : L.Lowers) {
    BigInt B = BigInt::ceilDiv(Expr.evaluate(Point), Coef);
    if (!HaveLo || B > Lo)
      Lo = B;
    HaveLo = true;
  }
  for (const auto &[Coef, Expr] : L.Uppers) {
    BigInt B = BigInt::floorDiv(Expr.evaluate(Point), Coef);
    if (!HaveHi || B < Hi)
      Hi = B;
    HaveHi = true;
  }
  check(HaveLo && HaveHi, "generated loop must have bounds");
  for (BigInt V = Lo; V <= Hi; ++V) {
    Point[L.Var] = V;
    runLevel(Scan, Level + 1, Point, Out);
  }
  Point.erase(L.Var);
}

} // namespace

std::vector<Assignment> omega::runScan(const GeneratedScan &Scan,
                                       const Assignment &Params) {
  std::vector<Assignment> Out;
  Assignment Point = Params;
  runLevel(Scan, 0, Point, Out);
  return Out;
}
