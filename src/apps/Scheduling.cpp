//===- apps/Scheduling.cpp - Load balance & balanced chunks --------------===//

#include "apps/Scheduling.h"

#include "support/Error.h"

using namespace omega;

namespace {

/// Prefix work P(k) = Σ flops over iterations with OuterVar <= k, as a
/// symbolic value in k (named \p KVar) and the symbolic constants.
PiecewiseValue prefixWork(const LoopNest &Nest, const std::string &OuterVar,
                          const std::string &KVar,
                          const QuasiPolynomial &FlopsPerIter,
                          SumOptions Opts) {
  Formula Space = Nest.iterationSpace();
  Formula Bounded =
      Space && Formula::atom(Constraint::le(AffineExpr::variable(OuterVar),
                                            AffineExpr::variable(KVar)));
  return sumOverFormula(Bounded, Nest.vars(), FlopsPerIter, Opts);
}

} // namespace

PiecewiseValue omega::perIterationWork(const LoopNest &Nest,
                                       const std::string &OuterVar,
                                       const QuasiPolynomial &FlopsPerIter,
                                       SumOptions Opts) {
  // Sum over the inner variables only; the outer variable stays symbolic.
  VarSet Inner = Nest.vars();
  Inner.erase(OuterVar);
  return sumOverFormula(Nest.iterationSpace(), Inner, FlopsPerIter, Opts);
}

bool omega::isLoadBalanced(const LoopNest &Nest, const std::string &OuterVar,
                           const QuasiPolynomial &FlopsPerIter,
                           const Assignment &Symbols, const BigInt &Lo,
                           const BigInt &Hi) {
  PiecewiseValue W = perIterationWork(Nest, OuterVar, FlopsPerIter);
  check(!W.isUnbounded(), "per-iteration work diverges");
  bool First = true;
  Rational Ref(0);
  for (BigInt K = Lo; K <= Hi; ++K) {
    Assignment A = Symbols;
    A[OuterVar] = K;
    Rational V = W.evaluate(A);
    if (First) {
      Ref = V;
      First = false;
    } else if (V != Ref) {
      return false;
    }
  }
  return true;
}

std::vector<Chunk> omega::balancedChunks(const LoopNest &Nest,
                                         const std::string &OuterVar,
                                         const QuasiPolynomial &FlopsPerIter,
                                         const Assignment &Symbols,
                                         const BigInt &Lo, const BigInt &Hi,
                                         unsigned NumProcs) {
  check(NumProcs > 0, "need at least one processor");
  std::string KVar = "chunkK" + freshWildcard().substr(1);
  PiecewiseValue Prefix =
      prefixWork(Nest, OuterVar, KVar, FlopsPerIter, SumOptions());
  check(!Prefix.isUnbounded(), "prefix work diverges");

  auto PrefixAt = [&](const BigInt &K) {
    Assignment A = Symbols;
    A[KVar] = K;
    return Prefix.evaluate(A);
  };

  Rational Total = PrefixAt(Hi);
  Rational Before = PrefixAt(Lo - BigInt(1));
  std::vector<Chunk> Chunks;
  BigInt Begin = Lo;
  Rational Used = Before;
  for (unsigned P = 1; P <= NumProcs; ++P) {
    // Target cumulative work after this processor: Before + Total*p/procs.
    Rational Target =
        Before + (Total - Before) * Rational(BigInt(P), BigInt(NumProcs));
    // Smallest k in [Begin-1, Hi] with Prefix(k) >= Target.
    BigInt L = Begin - BigInt(1), H = Hi;
    while (L < H) {
      BigInt Mid = BigInt::floorDiv(L + H, BigInt(2));
      if (PrefixAt(Mid) >= Target)
        H = Mid;
      else
        L = Mid + BigInt(1);
    }
    BigInt End = P == NumProcs ? Hi : L;
    Rational Cum = PrefixAt(End);
    Chunk Ch;
    Ch.Begin = Begin;
    Ch.End = End;
    Rational Work = Cum - Used;
    check(Work.isInteger(), "flop counts must be integral");
    Ch.Flops = Work.asInteger();
    Chunks.push_back(Ch);
    Used = Cum;
    Begin = End + BigInt(1);
  }
  return Chunks;
}
