//===- apps/Dependence.cpp - Array dependence analysis -------------------===//

#include "apps/Dependence.h"

#include "omega/Verify.h"
#include "support/Error.h"

using namespace omega;

namespace {

/// Renames every loop variable of \p Nest in \p E by appending Suffix.
AffineExpr primeExpr(const AffineExpr &E, const std::vector<std::string> &Vars,
                     const std::string &Suffix) {
  AffineExpr Out = E;
  for (const std::string &V : Vars)
    if (Out.mentions(V))
      Out.renameVar(V, V + Suffix);
  return Out;
}

/// The iteration space with all loop variables primed.
Formula primedSpace(const LoopNest &Nest, const std::string &Suffix) {
  // Rebuild from the loop structure with renamed variables.
  LoopNest Primed;
  std::vector<std::string> Vars = Nest.varOrder();
  for (const Loop &L : Nest.loops()) {
    Loop NL;
    NL.Var = L.Var + Suffix;
    for (const AffineExpr &Lo : L.Lowers)
      NL.Lowers.push_back(primeExpr(Lo, Vars, Suffix));
    for (const AffineExpr &Up : L.Uppers)
      NL.Uppers.push_back(primeExpr(Up, Vars, Suffix));
    NL.Step = L.Step;
    Primed.add(std::move(NL));
  }
  for (const Constraint &G : Nest.guards()) {
    Constraint GP = G;
    for (const std::string &V : Vars)
      if (GP.mentions(V))
        GP.renameVar(V, V + Suffix);
    Primed.guard(std::move(GP));
  }
  return Primed.iterationSpace();
}

/// Strict lexicographic order i < i' over the nest's variables.
Formula lexPrecedes(const std::vector<std::string> &Vars,
                    const std::string &Suffix) {
  std::vector<Formula> Levels;
  for (size_t L = 0; L < Vars.size(); ++L) {
    std::vector<Formula> Conj;
    for (size_t K = 0; K < L; ++K)
      Conj.push_back(Formula::atom(
          Constraint::eq(AffineExpr::variable(Vars[K]),
                         AffineExpr::variable(Vars[K] + Suffix))));
    Conj.push_back(Formula::atom(
        Constraint::lt(AffineExpr::variable(Vars[L]),
                       AffineExpr::variable(Vars[L] + Suffix))));
    Levels.push_back(Formula::conj(std::move(Conj)));
  }
  return Formula::disj(std::move(Levels));
}

} // namespace

Formula omega::dependencePairs(const LoopNest &Nest, const ArrayRef &Src,
                               const ArrayRef &Dst,
                               const std::string &Suffix) {
  check(Src.Array == Dst.Array, "dependence needs a common array");
  check(Src.Subscripts.size() == Dst.Subscripts.size(),
        "inconsistent array rank");
  std::vector<std::string> Vars = Nest.varOrder();
  std::vector<Formula> Parts;
  Parts.push_back(Nest.iterationSpace());
  Parts.push_back(primedSpace(Nest, Suffix));
  for (size_t D = 0; D < Src.Subscripts.size(); ++D)
    Parts.push_back(Formula::atom(Constraint::eq(
        Src.Subscripts[D], primeExpr(Dst.Subscripts[D], Vars, Suffix))));
  Parts.push_back(lexPrecedes(Vars, Suffix));
  return Formula::conj(std::move(Parts));
}

bool omega::hasDependence(const LoopNest &Nest, const ArrayRef &Src,
                          const ArrayRef &Dst) {
  return isSatisfiable(dependencePairs(Nest, Src, Dst));
}

PiecewiseValue omega::countDependencePairs(const LoopNest &Nest,
                                           const ArrayRef &Src,
                                           const ArrayRef &Dst,
                                           SumOptions Opts) {
  const std::string Suffix = "_p";
  Formula F = dependencePairs(Nest, Src, Dst, Suffix);
  VarSet Vars = Nest.vars();
  for (const std::string &V : Nest.varOrder())
    Vars.insert(V + Suffix);
  return sumOverFormula(F, Vars, QuasiPolynomial(Rational(1)), Opts);
}

PiecewiseValue omega::splitCommunicationCells(
    const LoopNest &Nest, const ArrayRef &Write, const ArrayRef &Read,
    const std::string &OuterVar, const std::string &SplitVar,
    SumOptions Opts) {
  check(Write.Array == Read.Array, "communication needs a common array");
  std::vector<std::string> Vars = Nest.varOrder();
  const std::string Suffix = "_r";

  // Written on or before the split.
  std::vector<Formula> W{Nest.iterationSpace()};
  W.push_back(Formula::atom(Constraint::le(
      AffineExpr::variable(OuterVar), AffineExpr::variable(SplitVar))));
  std::vector<std::string> Elems;
  for (size_t D = 0; D < Write.Subscripts.size(); ++D) {
    Elems.push_back("cell" + std::to_string(D));
    W.push_back(Formula::atom(Constraint::eq(
        AffineExpr::variable(Elems[D]) - Write.Subscripts[D])));
  }
  Formula Written = Formula::exists(Nest.vars(), Formula::conj(W));

  // Read after the split (primed copy of the space).
  std::vector<Formula> R{primedSpace(Nest, Suffix)};
  R.push_back(Formula::atom(Constraint::gt(
      AffineExpr::variable(OuterVar + Suffix),
      AffineExpr::variable(SplitVar))));
  VarSet PrimedVars;
  for (const std::string &V : Vars)
    PrimedVars.insert(V + Suffix);
  for (size_t D = 0; D < Read.Subscripts.size(); ++D)
    R.push_back(Formula::atom(Constraint::eq(
        AffineExpr::variable(Elems[D]) -
        primeExpr(Read.Subscripts[D], Vars, Suffix))));
  Formula ReadAfter = Formula::exists(PrimedVars, Formula::conj(R));

  return sumOverFormula(Written && ReadAfter,
                        VarSet(Elems.begin(), Elems.end()),
                        QuasiPolynomial(Rational(1)), Opts);
}
