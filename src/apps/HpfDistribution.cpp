//===- apps/HpfDistribution.cpp - Block-cyclic distributions -------------===//

#include "apps/HpfDistribution.h"

using namespace omega;

Formula omega::ownedBy(const BlockCyclic &Dist, const std::string &TVar,
                       const std::string &PVar) {
  // ∃ l, c: t = l + B*p + B*P*c ∧ 0 <= l < B ∧ 0 <= c ∧ 0 <= p < P
  //         ∧ 0 <= t < Extent.
  std::string L = "l" + freshWildcard().substr(1);
  std::string C = "c" + freshWildcard().substr(1);
  AffineExpr T = AffineExpr::variable(TVar);
  AffineExpr P = AffineExpr::variable(PVar);
  AffineExpr LV = AffineExpr::variable(L);
  AffineExpr CV = AffineExpr::variable(C);
  std::vector<Formula> Parts;
  Parts.push_back(Formula::atom(Constraint::eq(
      T - LV - Dist.Block * P - Dist.Block * Dist.Procs * CV)));
  Parts.push_back(Formula::atom(Constraint::ge(LV)));
  Parts.push_back(Formula::atom(
      Constraint::ge(AffineExpr(Dist.Block - BigInt(1)) - LV)));
  Parts.push_back(Formula::atom(Constraint::ge(CV)));
  Parts.push_back(Formula::atom(Constraint::ge(P)));
  Parts.push_back(Formula::atom(
      Constraint::ge(AffineExpr(Dist.Procs - BigInt(1)) - P)));
  Parts.push_back(Formula::atom(Constraint::ge(T)));
  Parts.push_back(Formula::atom(
      Constraint::ge(AffineExpr(Dist.Extent - BigInt(1)) - T)));
  return Formula::exists({L, C}, Formula::conj(std::move(Parts)));
}

PiecewiseValue omega::cellsPerProcessor(const BlockCyclic &Dist,
                                        SumOptions Opts) {
  return countSolutions(ownedBy(Dist, "t", "p"), {"t"}, Opts);
}

PiecewiseValue omega::shiftCommVolume(const BlockCyclic &Dist,
                                      const BigInt &Shift, SumOptions Opts) {
  // Cells i owned by p whose shifted partner i + Shift exists but is NOT
  // owned by p.
  Formula OwnI = ownedBy(Dist, "i", "p");
  Formula PartnerOwnedByP = ownedBy(Dist, "ishift", "p");
  Formula PartnerExists = Formula::atom(Constraint::ge(
                              AffineExpr::variable("ishift"))) &&
                          Formula::atom(Constraint::ge(
                              AffineExpr(Dist.Extent - BigInt(1)) -
                              AffineExpr::variable("ishift")));
  Formula Link = Formula::atom(Constraint::eq(
      AffineExpr::variable("ishift") - AffineExpr::variable("i") -
      AffineExpr(Shift)));
  Formula NonLocal = Formula::exists(
      {"ishift"}, Link && PartnerExists && OwnI && !PartnerOwnedByP);
  return countSolutions(NonLocal, {"i"}, Opts);
}
