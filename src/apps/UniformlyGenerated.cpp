//===- apps/UniformlyGenerated.cpp - Stencil summarization ---------------===//

#include "apps/UniformlyGenerated.h"

#include "support/Error.h"

#include <algorithm>
#include <set>

using namespace omega;

Formula
omega::offsetsZeroOneFormula(const std::vector<Offset> &Offsets,
                             const std::vector<std::string> &DeltaVars) {
  check(!Offsets.empty(), "empty offset set");
  size_t Dims = DeltaVars.size();
  VarSet Zs;
  std::vector<AffineExpr> ZVars;
  for (size_t K = 0; K < Offsets.size(); ++K) {
    std::string Z = "z" + std::to_string(K) + "_" + freshWildcard().substr(1);
    Zs.insert(Z);
    ZVars.push_back(AffineExpr::variable(Z));
  }
  std::vector<Formula> Parts;
  AffineExpr SumZ;
  for (size_t K = 0; K < Offsets.size(); ++K) {
    Parts.push_back(Formula::atom(Constraint::ge(ZVars[K])));
    Parts.push_back(
        Formula::atom(Constraint::ge(AffineExpr(1) - ZVars[K])));
    SumZ += ZVars[K];
  }
  Parts.push_back(Formula::atom(Constraint::eq(SumZ - AffineExpr(1))));
  for (size_t D = 0; D < Dims; ++D) {
    AffineExpr E = AffineExpr::variable(DeltaVars[D]);
    for (size_t K = 0; K < Offsets.size(); ++K) {
      check(Offsets[K].size() == Dims, "ragged offsets");
      E -= Offsets[K][D] * ZVars[K];
    }
    Parts.push_back(Formula::atom(Constraint::eq(std::move(E))));
  }
  return Formula::exists(std::move(Zs), Formula::conj(std::move(Parts)));
}

BigInt omega::countConcrete(const Formula &F, const VarSet &Vars) {
  PiecewiseValue V = countSolutions(F, Vars);
  check(!V.isUnbounded(), "countConcrete on an unbounded set");
  return V.evaluateInt({});
}

namespace {

struct Point {
  BigInt X, Y;
  friend bool operator<(const Point &A, const Point &B) {
    if (A.X != B.X)
      return A.X < B.X;
    return A.Y < B.Y;
  }
  friend bool operator==(const Point &A, const Point &B) {
    return A.X == B.X && A.Y == B.Y;
  }
};

BigInt cross(const Point &O, const Point &A, const Point &B) {
  return (A.X - O.X) * (B.Y - O.Y) - (A.Y - O.Y) * (B.X - O.X);
}

/// Andrew's monotone chain; returns the hull counter-clockwise without
/// repeating the first point.  Collinear inputs yield the two extremes.
std::vector<Point> convexHull(std::vector<Point> Pts) {
  std::sort(Pts.begin(), Pts.end());
  Pts.erase(std::unique(Pts.begin(), Pts.end()), Pts.end());
  if (Pts.size() <= 2)
    return Pts;
  std::vector<Point> H(2 * Pts.size());
  size_t K = 0;
  for (const Point &P : Pts) {
    while (K >= 2 && cross(H[K - 2], H[K - 1], P).sign() <= 0)
      --K;
    H[K++] = P;
  }
  size_t Lower = K + 1;
  for (size_t I = Pts.size() - 1; I-- > 0;) {
    const Point &P = Pts[I];
    while (K >= Lower && cross(H[K - 2], H[K - 1], P).sign() <= 0)
      --K;
    H[K++] = P;
  }
  H.resize(K - 1);
  return H;
}

/// Adds stride constraints for simple linear forms whose value is constant
/// modulo g > 1 across the offsets (the paper's "check for non-unit
/// strides among the points").
void addDetectedStrides(const std::vector<Offset> &Offsets,
                        const std::vector<std::string> &DeltaVars,
                        Conjunct &Out) {
  size_t Dims = DeltaVars.size();
  std::vector<std::vector<BigInt>> Forms;
  for (size_t D = 0; D < Dims; ++D) {
    std::vector<BigInt> F(Dims);
    F[D] = BigInt(1);
    Forms.push_back(F);
  }
  if (Dims == 2) {
    Forms.push_back({BigInt(1), BigInt(1)});
    Forms.push_back({BigInt(1), BigInt(-1)});
  }
  for (const std::vector<BigInt> &F : Forms) {
    auto Apply = [&](const Offset &P) {
      BigInt V(0);
      for (size_t D = 0; D < Dims; ++D)
        V += F[D] * P[D];
      return V;
    };
    BigInt Base = Apply(Offsets[0]);
    BigInt G(0);
    for (const Offset &P : Offsets)
      G = BigInt::gcd(G, Apply(P) - Base);
    if (G > BigInt(1)) {
      AffineExpr E;
      for (size_t D = 0; D < Dims; ++D)
        E += F[D] * AffineExpr::variable(DeltaVars[D]);
      E -= AffineExpr(Base);
      Out.add(Constraint::stride(G, std::move(E)));
    }
  }
}

} // namespace

std::optional<HullSummary>
omega::summarizeOffsetsHull(const std::vector<Offset> &Offsets,
                            const std::vector<std::string> &DeltaVars) {
  check(!Offsets.empty(), "empty offset set");
  size_t Dims = DeltaVars.size();
  if (Dims == 0 || Dims > 2)
    return std::nullopt;

  HullSummary S;
  if (Dims == 1) {
    BigInt Min = Offsets[0][0], Max = Offsets[0][0];
    for (const Offset &P : Offsets) {
      Min = std::min(Min, P[0]);
      Max = std::max(Max, P[0]);
    }
    AffineExpr D = AffineExpr::variable(DeltaVars[0]);
    S.Constraints.add(Constraint::ge(D - AffineExpr(Min)));
    S.Constraints.add(Constraint::ge(AffineExpr(Max) - D));
  } else {
    std::vector<Point> Pts;
    for (const Offset &P : Offsets) {
      check(P.size() == 2, "ragged offsets");
      Pts.push_back({P[0], P[1]});
    }
    std::vector<Point> Hull = convexHull(std::move(Pts));
    AffineExpr X = AffineExpr::variable(DeltaVars[0]);
    AffineExpr Y = AffineExpr::variable(DeltaVars[1]);
    if (Hull.size() == 1) {
      S.Constraints.add(Constraint::eq(X - AffineExpr(Hull[0].X)));
      S.Constraints.add(Constraint::eq(Y - AffineExpr(Hull[0].Y)));
    } else if (Hull.size() == 2) {
      // Segment: on the line, between the endpoints (bounding box).
      const Point &A = Hull[0], &B = Hull[1];
      BigInt Ex = B.X - A.X, Ey = B.Y - A.Y;
      // ex*(y - Ay) - ey*(x - Ax) = 0.
      S.Constraints.add(Constraint::eq(Ex * Y - Ey * X -
                                       AffineExpr(Ex * A.Y - Ey * A.X)));
      S.Constraints.add(
          Constraint::ge(X - AffineExpr(std::min(A.X, B.X))));
      S.Constraints.add(
          Constraint::ge(AffineExpr(std::max(A.X, B.X)) - X));
      S.Constraints.add(
          Constraint::ge(Y - AffineExpr(std::min(A.Y, B.Y))));
      S.Constraints.add(
          Constraint::ge(AffineExpr(std::max(A.Y, B.Y)) - Y));
    } else {
      // CCW polygon: each edge contributes cross(e, p - A) >= 0.
      for (size_t I = 0; I < Hull.size(); ++I) {
        const Point &A = Hull[I];
        const Point &B = Hull[(I + 1) % Hull.size()];
        BigInt Ex = B.X - A.X, Ey = B.Y - A.Y;
        S.Constraints.add(Constraint::ge(
            Ex * Y - Ey * X - AffineExpr(Ex * A.Y - Ey * A.X)));
      }
    }
  }

  addDetectedStrides(Offsets, DeltaVars, S.Constraints);

  // Exactness check by counting (the paper's suggestion).
  std::set<Offset> Distinct(Offsets.begin(), Offsets.end());
  S.PointCount = countConcrete(Formula::fromConjunct(S.Constraints),
                               VarSet(DeltaVars.begin(), DeltaVars.end()));
  S.Exact = S.PointCount == BigInt(Distinct.size());
  return S;
}
