//===- apps/MemoryModel.cpp - Distinct locations and cache lines ---------===//

#include "apps/MemoryModel.h"

#include "presburger/NonLinear.h"
#include "support/Error.h"

using namespace omega;

Formula omega::touchedCells(const LoopNest &Nest,
                            const std::vector<ArrayRef> &Refs,
                            const std::string &Array,
                            std::vector<std::string> &ElemVars) {
  Formula Space = Nest.iterationSpace();
  VarSet LoopVars = Nest.vars();

  size_t Dims = 0;
  for (const ArrayRef &R : Refs)
    if (R.Array == Array)
      Dims = std::max(Dims, R.Subscripts.size());
  ElemVars.clear();
  for (size_t D = 0; D < Dims; ++D)
    ElemVars.push_back("elem" + std::to_string(D));

  std::vector<Formula> PerRef;
  for (const ArrayRef &R : Refs) {
    if (R.Array != Array)
      continue;
    check(R.Subscripts.size() == Dims, "inconsistent array rank");
    std::vector<Formula> Eqs{Space};
    for (size_t D = 0; D < Dims; ++D)
      Eqs.push_back(Formula::atom(Constraint::eq(
          AffineExpr::variable(ElemVars[D]) - R.Subscripts[D])));
    PerRef.push_back(
        Formula::exists(LoopVars, Formula::conj(std::move(Eqs))));
  }
  return Formula::disj(std::move(PerRef));
}

PiecewiseValue omega::countDistinctLocations(const LoopNest &Nest,
                                             const std::vector<ArrayRef> &Refs,
                                             const std::string &Array,
                                             SumOptions Opts) {
  std::vector<std::string> ElemVars;
  Formula Touched = touchedCells(Nest, Refs, Array, ElemVars);
  return countSolutions(Touched,
                        VarSet(ElemVars.begin(), ElemVars.end()), Opts);
}

PiecewiseValue omega::countDistinctCacheLines(
    const LoopNest &Nest, const std::vector<ArrayRef> &Refs,
    const std::string &Array, const CacheMapping &Map, SumOptions Opts) {
  std::vector<std::string> ElemVars;
  Formula Touched = touchedCells(Nest, Refs, Array, ElemVars);
  check(Map.LineDim < ElemVars.size(), "line dimension out of range");

  // Line coordinates: lineD = floor((elem_LineDim - Base) / LineSize),
  // other coordinates equal the element coordinates.
  std::vector<std::string> LineVars;
  std::vector<Formula> Parts{Touched};
  VarSet Quantified;
  for (size_t D = 0; D < ElemVars.size(); ++D) {
    std::string LV = "line" + std::to_string(D);
    LineVars.push_back(LV);
    Quantified.insert(ElemVars[D]);
    if (D != Map.LineDim) {
      Parts.push_back(Formula::atom(Constraint::eq(
          AffineExpr::variable(LV) - AffineExpr::variable(ElemVars[D]))));
      continue;
    }
    // line * size <= elem - base <= line * size + size - 1.
    AffineExpr Elem = AffineExpr::variable(ElemVars[D]) -
                      AffineExpr(Map.Base);
    AffineExpr Line = Map.LineSize * AffineExpr::variable(LV);
    Parts.push_back(Formula::atom(Constraint::ge(Elem - Line)));
    Parts.push_back(Formula::atom(Constraint::ge(
        Line + AffineExpr(Map.LineSize - BigInt(1)) - Elem)));
  }
  Formula Lines =
      Formula::exists(std::move(Quantified), Formula::conj(std::move(Parts)));
  return countSolutions(Lines, VarSet(LineVars.begin(), LineVars.end()),
                        Opts);
}
