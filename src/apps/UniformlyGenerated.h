//===- apps/UniformlyGenerated.h - Stencil summarization --------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §5.1: summarizing uniformly generated references [GJ88].  A stencil of
/// references a[i + p1], ..., a[i + pm] touches { i + Δ : Δ ∈ offsets };
/// describing the offset set with linear constraints keeps the touched-set
/// formula free of overlapping clauses.  Two methods, per the paper:
///
///   1. The 0-1 encoding of Ancourt: Δ = Σ z_k p_k with z_k ∈ {0,1},
///      Σ z_k = 1 — always exact, but leans on the solver to simplify a
///      0-1 program ("an iffy proposition at best").
///   2. The convex hull of the offsets plus detected stride constraints —
///      conservative, so an exactness check counts the summary and
///      compares against the number of offsets.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_APPS_UNIFORMLYGENERATED_H
#define OMEGA_APPS_UNIFORMLYGENERATED_H

#include "counting/Summation.h"

#include <optional>

namespace omega {

/// A constant offset vector.
using Offset = std::vector<BigInt>;

/// Method 1: the 0-1 programming encoding.  Returns a formula over
/// \p DeltaVars (one per dimension) whose solutions are exactly the
/// offsets.
Formula offsetsZeroOneFormula(const std::vector<Offset> &Offsets,
                              const std::vector<std::string> &DeltaVars);

/// Method 2 summary: convex hull constraints plus stride constraints.
struct HullSummary {
  /// Hull half-planes and strides over the delta variables.
  Conjunct Constraints;
  /// True iff the summary contains exactly the offsets (checked by
  /// counting, as the paper suggests).
  bool Exact = false;
  /// Number of integer points in the summary.
  BigInt PointCount;
};

/// Computes the hull + strides summary.  Supports 1-D and 2-D offset sets
/// (every stencil in the paper is 2-D); returns std::nullopt for higher
/// dimensions.
std::optional<HullSummary>
summarizeOffsetsHull(const std::vector<Offset> &Offsets,
                     const std::vector<std::string> &DeltaVars);

/// Counts the integer solutions of \p F over \p Vars where the result is a
/// plain number (no symbolic constants); convenience for exactness checks.
BigInt countConcrete(const Formula &F, const VarSet &Vars);

} // namespace omega

#endif // OMEGA_APPS_UNIFORMLYGENERATED_H
