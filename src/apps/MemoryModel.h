//===- apps/MemoryModel.h - Distinct locations and cache lines --*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §1.1 / §6 Examples 4-5 (and [FST91]): counting the distinct memory
/// locations and cache lines touched by the affine array references of a
/// loop nest.  The touched set of reference A[e(i)] is
///
///   { x | ∃ i ∈ space : x = e(i) }
///
/// and the union over references is simplified to disjoint DNF before
/// counting, so overlapping references are counted once.
///
/// Cache lines follow the paper's mapping: element a(i, j) lives on line
/// [(i - base) div lineSize, j] — a column-major array whose first
/// subscript is the contiguous one, 16 elements per line in Example 5.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_APPS_MEMORYMODEL_H
#define OMEGA_APPS_MEMORYMODEL_H

#include "apps/LoopNest.h"

namespace omega {

/// An affine reference to array \p Array with one affine subscript per
/// dimension, e.g. a(6i + 9j - 7) or a(i+1, j).
struct ArrayRef {
  std::string Array;
  std::vector<AffineExpr> Subscripts;
};

/// The set of array cells of \p Array touched by \p Refs inside \p Nest,
/// as a formula over fresh element coordinates; \p ElemVars receives the
/// coordinate variable names (one per dimension).
Formula touchedCells(const LoopNest &Nest, const std::vector<ArrayRef> &Refs,
                     const std::string &Array,
                     std::vector<std::string> &ElemVars);

/// (Σ x : touched(x) : 1): distinct memory locations touched (symbolic).
PiecewiseValue countDistinctLocations(const LoopNest &Nest,
                                      const std::vector<ArrayRef> &Refs,
                                      const std::string &Array,
                                      SumOptions Opts = {});

/// Element-to-cache-line mapping: line coordinate 0 is
/// floor((x_LineDim - Base) / LineSize); other coordinates pass through.
struct CacheMapping {
  unsigned LineDim = 0;
  BigInt LineSize = BigInt(16);
  BigInt Base = BigInt(1); ///< Subscript value of the array's first cell.
};

/// (Σ lines : some touched cell maps to the line : 1): distinct cache
/// lines touched (symbolic).
PiecewiseValue countDistinctCacheLines(const LoopNest &Nest,
                                       const std::vector<ArrayRef> &Refs,
                                       const std::string &Array,
                                       const CacheMapping &Map,
                                       SumOptions Opts = {});

} // namespace omega

#endif // OMEGA_APPS_MEMORYMODEL_H
