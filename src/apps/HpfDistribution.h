//===- apps/HpfDistribution.h - Block-cyclic distributions ------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §3.3: HPF block-cyclic distributions.  A template T(0:Extent-1)
/// distributed block-cyclically over P processors with block size B maps
/// template cell t to processor p and local coordinates (c, l) via
///
///   t = l + B*p + B*P*c,   0 <= l < B,   0 <= p < P,  0 <= c
///
/// From this we count elements owned per processor (§3.3) and the array
/// elements that must be communicated for a shifted reference — the
/// paper's "quantify message traffic and allocate space for message
/// buffers" application (§1.1).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_APPS_HPFDISTRIBUTION_H
#define OMEGA_APPS_HPFDISTRIBUTION_H

#include "counting/Summation.h"

namespace omega {

/// A one-dimensional block-cyclic distribution.
struct BlockCyclic {
  BigInt Block;     ///< Elements per block (B).
  BigInt Procs;     ///< Number of processors (P).
  BigInt Extent;    ///< Template size; cells are 0 .. Extent-1.
};

/// Formula: template cell \p TVar is owned by processor \p PVar (both free
/// variables; bind either by conjoining an equality).
Formula ownedBy(const BlockCyclic &Dist, const std::string &TVar,
                const std::string &PVar);

/// (Σ t : owned(t, p) : 1): cells owned by each processor, symbolic in the
/// processor number "p".
PiecewiseValue cellsPerProcessor(const BlockCyclic &Dist,
                                 SumOptions Opts = {});

/// Message buffer sizing for the shift communication  A(i) = B(i + Shift)
/// (both arrays aligned to the template): counts template cells i such
/// that i is owned by processor "p" but i + Shift is owned elsewhere —
/// the number of elements p must receive.  Symbolic in "p".
PiecewiseValue shiftCommVolume(const BlockCyclic &Dist, const BigInt &Shift,
                               SumOptions Opts = {});

} // namespace omega

#endif // OMEGA_APPS_HPFDISTRIBUTION_H
