//===- apps/LoopNest.cpp - Affine loop-nest model -------------------------===//

#include "apps/LoopNest.h"

#include "support/Error.h"

using namespace omega;

LoopNest &LoopNest::add(const std::string &Var, AffineExpr Lower,
                        AffineExpr Upper, BigInt Step) {
  Loop L;
  L.Var = Var;
  L.Lowers.push_back(std::move(Lower));
  L.Uppers.push_back(std::move(Upper));
  L.Step = std::move(Step);
  return add(std::move(L));
}

LoopNest &LoopNest::add(Loop L) {
  check(!L.Lowers.empty() && !L.Uppers.empty(), "loop needs bounds");
  check(L.Step.isPositive(), "loop step must be positive");
  Loops.push_back(std::move(L));
  return *this;
}

LoopNest &LoopNest::guard(Constraint C) {
  Guards.push_back(std::move(C));
  return *this;
}

std::vector<std::string> LoopNest::varOrder() const {
  std::vector<std::string> Out;
  Out.reserve(Loops.size());
  for (const Loop &L : Loops)
    Out.push_back(L.Var);
  return Out;
}

VarSet LoopNest::vars() const {
  VarSet Out;
  for (const Loop &L : Loops)
    Out.insert(L.Var);
  return Out;
}

Formula LoopNest::iterationSpace() const {
  std::vector<Formula> Parts;
  for (const Loop &L : Loops) {
    AffineExpr V = AffineExpr::variable(L.Var);
    for (const AffineExpr &Lo : L.Lowers)
      Parts.push_back(Formula::atom(Constraint::ge(V - Lo)));
    for (const AffineExpr &Up : L.Uppers)
      Parts.push_back(Formula::atom(Constraint::ge(Up - V)));
    if (!L.Step.isOne())
      // v = lower + step * k: stride anchored at the first lower bound.
      Parts.push_back(
          Formula::atom(Constraint::stride(L.Step, V - L.Lowers[0])));
  }
  for (const Constraint &G : Guards)
    Parts.push_back(Formula::atom(G));
  return Formula::conj(std::move(Parts));
}

PiecewiseValue LoopNest::iterationCount(SumOptions Opts) const {
  return countSolutions(iterationSpace(), vars(), Opts);
}

PiecewiseValue LoopNest::flopCount(const QuasiPolynomial &FlopsPerIter,
                                   SumOptions Opts) const {
  return sumOverFormula(iterationSpace(), vars(), FlopsPerIter, Opts);
}
