//===- presburger/VarTable.h - Interned variable identities ----*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide variable symbol table (DESIGN.md §16).  Every variable
/// name is interned exactly once into a `VarId` — a 32-bit handle whose
/// high bit records the wildcard role, so the hot paths (term merges,
/// feasibility pre-checks, cache keys) compare and hash machine integers
/// instead of strings, and `isWildcardName` becomes a bit test.
///
/// Invariant: equal names have equal ids and vice versa, process-wide, for
/// the lifetime of the process.  The table is append-only; `varName()` is
/// lock-free (ids are only handed out after their entry is published), and
/// `internVar()` takes a mutex but only runs at the boundary — the parser,
/// the string-taking API shims, and wildcard minting.
///
/// Determinism note: id *numeric order* is interning order, which under the
/// parallel pipeline depends on thread scheduling.  Ids therefore never
/// leak into observable orderings — anything printed or canonically sorted
/// orders by name (see AffineExpr::compareTerms / VarSet) — but they are
/// safe for process-local uses: term storage order, cache keys, hashes.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_PRESBURGER_VARTABLE_H
#define OMEGA_PRESBURGER_VARTABLE_H

#include <cstdint>
#include <string>
#include <string_view>

namespace omega {

/// Interned variable handle.  Cheap to copy, compare, and hash; the name is
/// one lock-free table lookup away.  The default-constructed id is invalid.
class VarId {
public:
  /// Role flag: set for wildcard variables (names minted by freshWildcard,
  /// all starting with '$').  Carried in the id so role tests never touch
  /// the name.
  static constexpr uint32_t WildcardBit = 1u << 31;
  static constexpr uint32_t InvalidRaw = ~0u;

  constexpr VarId() = default;
  constexpr explicit VarId(uint32_t Raw) : Raw(Raw) {}

  constexpr uint32_t raw() const { return Raw; }
  /// Index of this id's entry in the symbol table.
  constexpr uint32_t index() const { return Raw & ~WildcardBit; }
  constexpr bool isWildcard() const { return (Raw & WildcardBit) != 0; }
  constexpr bool valid() const { return Raw != InvalidRaw; }

  friend constexpr bool operator==(VarId L, VarId R) { return L.Raw == R.Raw; }
  friend constexpr bool operator!=(VarId L, VarId R) { return L.Raw != R.Raw; }
  /// Id (interning) order — process-local only, NOT name order.
  friend constexpr bool operator<(VarId L, VarId R) { return L.Raw < R.Raw; }

private:
  uint32_t Raw = InvalidRaw;
};

/// Interns \p Name, returning its process-unique id (creating an entry on
/// first sight).  Thread-safe; takes the intern mutex.
VarId internVar(std::string_view Name);

/// Returns the id of \p Name if it has ever been interned, otherwise an
/// invalid id.  Never creates an entry.  Thread-safe.
VarId lookupVar(std::string_view Name);

/// Returns the name of a valid id.  Lock-free and wait-free: entries are
/// immutable once published.
const std::string &varName(VarId Id);

/// Compares two variables by name (the observable order).  Equivalent to
/// varName(L).compare(varName(R)) but short-circuits equal ids.
int compareVarNames(VarId L, VarId R);

/// Mints a fresh wildcard id: "$<n>" process-globally, or the scope-local
/// "$<prefix>x<n>" while a WildcardScope is active on this thread (see
/// Var.h).  The name is built and interned exactly once, here.
VarId freshWildcardId();

/// Number of interned entries (test/introspection hook).
uint32_t varTableSize();

} // namespace omega

template <> struct std::hash<omega::VarId> {
  size_t operator()(omega::VarId Id) const {
    // splitmix64 finalizer on the raw id.
    uint64_t X = Id.raw() + 0x9e3779b97f4a7c15ull;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(X ^ (X >> 31));
  }
};

#endif // OMEGA_PRESBURGER_VARTABLE_H
