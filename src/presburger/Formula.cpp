//===- presburger/Formula.cpp - Presburger formula AST -------------------===//

#include "presburger/Formula.h"

#include "support/Error.h"

#include <ostream>
#include <sstream>

using namespace omega;

struct Formula::Node {
  FormulaKind Kind;
  Constraint Atom = Constraint::ge(AffineExpr(0)); // Valid only for Atom.
  std::vector<Formula> Children;                   // And/Or/Not.
  VarSet Quantified;                               // Exists/Forall.

  explicit Node(FormulaKind K) : Kind(K) {}
};

Formula Formula::trueFormula() {
  static const std::shared_ptr<const Node> N =
      std::make_shared<Node>(FormulaKind::True);
  return Formula(N);
}

Formula Formula::falseFormula() {
  static const std::shared_ptr<const Node> N =
      std::make_shared<Node>(FormulaKind::False);
  return Formula(N);
}

Formula Formula::atom(Constraint C) {
  if (C.isTriviallyTrue())
    return trueFormula();
  if (C.isTriviallyFalse())
    return falseFormula();
  auto N = std::make_shared<Node>(FormulaKind::Atom);
  N->Atom = std::move(C);
  return Formula(std::move(N));
}

Formula Formula::conj(std::vector<Formula> Children) {
  std::vector<Formula> Flat;
  for (Formula &F : Children) {
    if (F.isTrue())
      continue;
    if (F.isFalse())
      return falseFormula();
    if (F.kind() == FormulaKind::And) {
      for (const Formula &Sub : F.children())
        Flat.push_back(Sub);
      continue;
    }
    Flat.push_back(std::move(F));
  }
  if (Flat.empty())
    return trueFormula();
  if (Flat.size() == 1)
    return Flat[0];
  auto N = std::make_shared<Node>(FormulaKind::And);
  N->Children = std::move(Flat);
  return Formula(std::move(N));
}

Formula Formula::disj(std::vector<Formula> Children) {
  std::vector<Formula> Flat;
  for (Formula &F : Children) {
    if (F.isFalse())
      continue;
    if (F.isTrue())
      return trueFormula();
    if (F.kind() == FormulaKind::Or) {
      for (const Formula &Sub : F.children())
        Flat.push_back(Sub);
      continue;
    }
    Flat.push_back(std::move(F));
  }
  if (Flat.empty())
    return falseFormula();
  if (Flat.size() == 1)
    return Flat[0];
  auto N = std::make_shared<Node>(FormulaKind::Or);
  N->Children = std::move(Flat);
  return Formula(std::move(N));
}

Formula Formula::negation(Formula F) {
  if (F.isTrue())
    return falseFormula();
  if (F.isFalse())
    return trueFormula();
  if (F.kind() == FormulaKind::Not)
    return F.children()[0];
  auto N = std::make_shared<Node>(FormulaKind::Not);
  N->Children.push_back(std::move(F));
  return Formula(std::move(N));
}

Formula Formula::exists(VarSet Vars, Formula Body) {
  if (Vars.empty() || Body.isTrue() || Body.isFalse())
    return Body;
  if (Body.kind() == FormulaKind::Exists) {
    VarSet Merged = Body.quantified();
    Merged.insert(Vars.begin(), Vars.end());
    return exists(std::move(Merged), Body.body());
  }
  auto N = std::make_shared<Node>(FormulaKind::Exists);
  N->Quantified = std::move(Vars);
  N->Children.push_back(std::move(Body));
  return Formula(std::move(N));
}

Formula Formula::forall(VarSet Vars, Formula Body) {
  if (Vars.empty() || Body.isTrue() || Body.isFalse())
    return Body;
  auto N = std::make_shared<Node>(FormulaKind::Forall);
  N->Quantified = std::move(Vars);
  N->Children.push_back(std::move(Body));
  return Formula(std::move(N));
}

Formula Formula::fromConjunct(const Conjunct &C) {
  std::vector<Formula> Atoms;
  Atoms.reserve(C.constraints().size());
  for (const Constraint &Cons : C.constraints())
    Atoms.push_back(atom(Cons));
  return exists(C.wildcards(), conj(std::move(Atoms)));
}

FormulaKind Formula::kind() const { return Impl->Kind; }

const Constraint &Formula::constraint() const {
  check(kind() == FormulaKind::Atom, "not an atom");
  return Impl->Atom;
}

const std::vector<Formula> &Formula::children() const {
  return Impl->Children;
}

const VarSet &Formula::quantified() const {
  check((kind() == FormulaKind::Exists || kind() == FormulaKind::Forall),
        "not a quantifier");
  return Impl->Quantified;
}

const Formula &Formula::body() const {
  check((kind() == FormulaKind::Exists || kind() == FormulaKind::Forall),
        "not a quantifier");
  return Impl->Children[0];
}

static void collectFreeVars(const Formula &F, VarSet &Bound, VarSet &Out) {
  switch (F.kind()) {
  case FormulaKind::True:
  case FormulaKind::False:
    return;
  case FormulaKind::Atom: {
    VarSet Vars;
    F.constraint().collectVars(Vars);
    for (const std::string &V : Vars)
      if (!Bound.count(V))
        Out.insert(V);
    return;
  }
  case FormulaKind::And:
  case FormulaKind::Or:
  case FormulaKind::Not:
    for (const Formula &C : F.children())
      collectFreeVars(C, Bound, Out);
    return;
  case FormulaKind::Exists:
  case FormulaKind::Forall: {
    VarSet Added;
    for (const std::string &V : F.quantified())
      if (Bound.insert(V).second)
        Added.insert(V);
    collectFreeVars(F.body(), Bound, Out);
    for (const std::string &V : Added)
      Bound.erase(V);
    return;
  }
  }
}

VarSet Formula::freeVars() const {
  VarSet Bound, Out;
  collectFreeVars(*this, Bound, Out);
  return Out;
}

bool Formula::evaluate(const Assignment &Values) const {
  Result<bool> R = tryEvaluate(Values);
  if (!R)
    fatalError(R.error().toString());
  return *R;
}

Result<bool> Formula::tryEvaluate(const Assignment &Values) const {
  switch (kind()) {
  case FormulaKind::True:
    return true;
  case FormulaKind::False:
    return false;
  case FormulaKind::Atom:
    return constraint().holds(Values);
  case FormulaKind::And:
    for (const Formula &C : children()) {
      Result<bool> R = C.tryEvaluate(Values);
      if (!R || !*R)
        return R;
    }
    return true;
  case FormulaKind::Or:
    for (const Formula &C : children()) {
      Result<bool> R = C.tryEvaluate(Values);
      if (!R || *R)
        return R;
    }
    return false;
  case FormulaKind::Not: {
    Result<bool> R = children()[0].tryEvaluate(Values);
    if (!R)
      return R;
    return !*R;
  }
  case FormulaKind::Exists:
  case FormulaKind::Forall:
    return Error{ErrorKind::Unsupported, "formula",
                 "evaluate does not support quantifiers; use omega::simplify "
                 "to obtain a quantifier-free formula first",
                 ""};
  }
  fatalError("Formula::tryEvaluate: unknown formula kind");
}

static void printFormula(std::ostream &OS, const Formula &F) {
  switch (F.kind()) {
  case FormulaKind::True:
    OS << "TRUE";
    return;
  case FormulaKind::False:
    OS << "FALSE";
    return;
  case FormulaKind::Atom:
    OS << F.constraint();
    return;
  case FormulaKind::And:
  case FormulaKind::Or: {
    const char *Op = F.kind() == FormulaKind::And ? " && " : " || ";
    OS << "(";
    for (size_t I = 0; I < F.children().size(); ++I) {
      if (I)
        OS << Op;
      printFormula(OS, F.children()[I]);
    }
    OS << ")";
    return;
  }
  case FormulaKind::Not:
    OS << "!(";
    printFormula(OS, F.children()[0]);
    OS << ")";
    return;
  case FormulaKind::Exists:
  case FormulaKind::Forall: {
    OS << (F.kind() == FormulaKind::Exists ? "exists(" : "forall(");
    bool First = true;
    for (const std::string &V : F.quantified()) {
      if (!First)
        OS << ", ";
      OS << V;
      First = false;
    }
    OS << ": ";
    printFormula(OS, F.body());
    OS << ")";
    return;
  }
  }
}

std::string Formula::toString() const {
  std::ostringstream OS;
  printFormula(OS, *this);
  return OS.str();
}

std::ostream &omega::operator<<(std::ostream &OS, const Formula &F) {
  return OS << F.toString();
}
