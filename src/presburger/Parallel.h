//===- presburger/Parallel.h - Deterministic disjunct fan-out --*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fan-out primitive of the parallel pipeline: run N independent
/// disjunct work items — DNF clauses to simplify, splinter groups to make
/// disjoint, clauses to sum — either inline or on the worker pool, with
/// *bit-identical results for every worker count* (DESIGN.md §8).
///
/// Determinism contract: every item runs under a WildcardScope whose
/// prefix encodes only the item's position in the fan-out tree, so the
/// wildcard names an item mints (the one global side channel in the
/// pipeline) do not depend on scheduling.  Items must write their output
/// to per-index slots; callers assemble the slots in index order.  Nested
/// fan-outs (an item that fans out again) always run inline, which keeps
/// the pool non-reentrant and the nesting deterministic.
///
/// Locking: this layer owns no locks.  All cross-thread state it touches
/// is either per-index output slots (disjoint by construction), the
/// capability-annotated ThreadPool/LruCache internals, or atomics
/// (PipelineCounters, BudgetState::Cancelled) — see DESIGN.md §13.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_PRESBURGER_PARALLEL_H
#define OMEGA_PRESBURGER_PARALLEL_H

#include "presburger/Var.h"

#include <cstddef>
#include <functional>
#include <vector>

namespace omega {

/// Runs Fn(0..N-1), each index under its own deterministic WildcardScope.
/// Uses the worker pool when the active QueryContext asks for >= 2 workers
/// and this is a top-level fan-out (no scope active on the calling
/// thread); otherwise runs the items inline in index order.  Fn must only touch shared state through
/// per-index slots or thread-safe structures (the conjunct cache, the
/// pipeline stats).
void forEachDisjunct(size_t N, const std::function<void(size_t)> &Fn);

/// Convenience: maps Fn over 0..N-1 into a vector, preserving index order.
/// T must be default-constructible.
template <typename T>
std::vector<T> mapDisjuncts(size_t N, const std::function<T(size_t)> &Fn) {
  std::vector<T> Out(N);
  forEachDisjunct(N, [&](size_t I) { Out[I] = Fn(I); });
  return Out;
}

} // namespace omega

#endif // OMEGA_PRESBURGER_PARALLEL_H
