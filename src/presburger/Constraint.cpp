//===- presburger/Constraint.cpp - Linear and stride constraints ---------===//

#include "presburger/Constraint.h"

#include "support/Error.h"

#include <ostream>
#include <sstream>

using namespace omega;

bool Constraint::holds(const Assignment &Values) const {
  BigInt V = Expr.evaluate(Values);
  switch (Kind) {
  case ConstraintKind::Eq:
    return V.isZero();
  case ConstraintKind::Ge:
    return V.sign() >= 0;
  case ConstraintKind::Stride:
    return Mod.divides(V);
  }
  fatalError("Constraint::holds: unknown constraint kind");
}

bool Constraint::isTriviallyTrue() const {
  if (!Expr.isConstant())
    return false;
  switch (Kind) {
  case ConstraintKind::Eq:
    return Expr.constant().isZero();
  case ConstraintKind::Ge:
    return Expr.constant().sign() >= 0;
  case ConstraintKind::Stride:
    return Mod.divides(Expr.constant());
  }
  return false;
}

bool Constraint::isTriviallyFalse() const {
  return Expr.isConstant() && !isTriviallyTrue();
}

bool Constraint::normalize() {
  switch (Kind) {
  case ConstraintKind::Eq: {
    BigInt G = Expr.coeffGcd();
    if (G.isZero())
      return Expr.constant().isZero();
    if (!G.divides(Expr.constant()))
      return false; // e.g. 2x + 1 = 0 has no integer solution.
    if (!G.isOne()) {
      Expr.setConstant(BigInt::divExact(Expr.constant(), G));
      Expr.divCoeffsExact(G);
    }
    return true;
  }
  case ConstraintKind::Ge: {
    BigInt G = Expr.coeffGcd();
    if (G.isZero())
      return Expr.constant().sign() >= 0;
    if (!G.isOne()) {
      // Tightening: g*e + c >= 0 over integers iff e + floor(c/g) >= 0.
      Expr.setConstant(BigInt::floorDiv(Expr.constant(), G));
      Expr.divCoeffsExact(G);
    }
    return true;
  }
  case ConstraintKind::Stride: {
    if (Mod.isOne()) {
      // 1 | e is trivially true; canonicalize to 0 = 0.
      Kind = ConstraintKind::Eq;
      Expr = AffineExpr(0);
      Mod = BigInt(0);
      return true;
    }
    // Reduce coefficients and constant into [0, Mod).
    AffineExpr E;
    E.setConstant(BigInt::floorMod(Expr.constant(), Mod));
    for (const auto &[V, C] : Expr.terms())
      E.setCoeff(V, BigInt::floorMod(C, Mod));
    Expr = std::move(E);
    if (Expr.isConstant())
      return Mod.divides(Expr.constant());
    // Canonicalize by a unit: when the leading coefficient is invertible
    // mod Mod, scale so it becomes 1 (m | 2x+2 with m=3 becomes m | x+1).
    // "Leading" is the name-minimal term, as in the map representation.
    const BigInt &Lead = Expr.leadTermByName().Coef;
    BigInt X, Y;
    if (BigInt::extendedGcd(Lead, Mod, X, Y).isOne()) {
      BigInt Inv = BigInt::floorMod(X, Mod);
      AffineExpr Scaled;
      Scaled.setConstant(BigInt::floorMod(Expr.constant() * Inv, Mod));
      for (const auto &[V, C] : Expr.terms())
        Scaled.setCoeff(V, BigInt::floorMod(C * Inv, Mod));
      Expr = std::move(Scaled);
    }
    return true;
  }
  }
  fatalError("Constraint::normalize: unknown constraint kind");
}

std::string Constraint::toString() const {
  std::ostringstream OS;
  switch (Kind) {
  case ConstraintKind::Eq:
    OS << Expr << " = 0";
    break;
  case ConstraintKind::Ge:
    OS << Expr << " >= 0";
    break;
  case ConstraintKind::Stride:
    OS << Mod << " | " << Expr;
    break;
  }
  return OS.str();
}

std::ostream &omega::operator<<(std::ostream &OS, const Constraint &C) {
  return OS << C.toString();
}
