//===- presburger/Var.h - Variable names and assignments -------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Variables are interned by name into VarIds (presburger/VarTable.h).  A
/// variable plays one of three roles per query, following the paper's
/// terminology:
///   * counted variables (the set V of a summation (Σ V : P : x)),
///   * symbolic constants (remaining free variables; answers are given in
///     terms of these),
///   * wildcards (existentially quantified clause-local auxiliaries, named
///     "$<n>" so they can never collide with user variables; the role is
///     also carried in the id's high bit).
///
/// VarSet and Assignment are flat id vectors: a VarSet is sorted by *name*
/// (so iteration order — the observable order everywhere clauses print or
/// canonically sort — is identical to the std::set<std::string> it
/// replaces), while an Assignment is sorted by *id* (so evaluation is a
/// merge-join with AffineExpr's id-sorted terms).  String-taking methods
/// remain as thin interning shims for the parser, tools, and tests.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_PRESBURGER_VAR_H
#define OMEGA_PRESBURGER_VAR_H

#include "presburger/VarTable.h"
#include "support/BigInt.h"

#include <initializer_list>
#include <iterator>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace omega {

/// Deterministically ordered set of variables: a flat vector of VarIds
/// sorted by variable *name*.  Iterators dereference to the name, so code
/// written against std::set<std::string> (range-for over names, count/
/// insert/erase by name, std::includes) keeps working; id-based accessors
/// provide the allocation-free fast paths.
class VarSet {
public:
  using value_type = std::string;

  class iterator {
  public:
    using iterator_category = std::bidirectional_iterator_tag;
    using value_type = std::string;
    using difference_type = std::ptrdiff_t;
    using pointer = const std::string *;
    using reference = const std::string &;

    iterator() = default;
    const std::string &operator*() const { return varName(*P); }
    const std::string *operator->() const { return &varName(*P); }
    iterator &operator++() {
      ++P;
      return *this;
    }
    iterator operator++(int) {
      iterator T = *this;
      ++P;
      return T;
    }
    iterator &operator--() {
      --P;
      return *this;
    }
    iterator operator--(int) {
      iterator T = *this;
      --P;
      return T;
    }
    /// The interned id at this position (fast-path accessor).
    VarId id() const { return *P; }
    friend bool operator==(iterator L, iterator R) { return L.P == R.P; }
    friend bool operator!=(iterator L, iterator R) { return L.P != R.P; }

  private:
    explicit iterator(const VarId *P) : P(P) {}
    const VarId *P = nullptr;
    friend class VarSet;
  };
  using const_iterator = iterator;
  using reverse_iterator = std::reverse_iterator<iterator>;
  using const_reverse_iterator = reverse_iterator;

  VarSet() = default;
  VarSet(std::initializer_list<std::string> Names) {
    for (const std::string &N : Names)
      insert(N);
  }
  template <typename It> VarSet(It First, It Last) {
    for (; First != Last; ++First)
      insert(*First);
  }

  iterator begin() const { return iterator(Ids.data()); }
  iterator end() const { return iterator(Ids.data() + Ids.size()); }
  reverse_iterator rbegin() const { return reverse_iterator(end()); }
  reverse_iterator rend() const { return reverse_iterator(begin()); }

  bool empty() const { return Ids.empty(); }
  size_t size() const { return Ids.size(); }
  void clear() { Ids.clear(); }
  void swap(VarSet &Other) { Ids.swap(Other.Ids); }

  std::pair<iterator, bool> insert(VarId V) {
    size_t Pos = lowerBoundPos(V);
    if (Pos < Ids.size() && Ids[Pos] == V)
      return {iterator(Ids.data() + Pos), false};
    Ids.insert(Ids.begin() + static_cast<std::ptrdiff_t>(Pos), V);
    return {iterator(Ids.data() + Pos), true};
  }
  std::pair<iterator, bool> insert(const std::string &Name) {
    return insert(internVar(Name));
  }
  template <typename It> void insert(It First, It Last) {
    for (; First != Last; ++First)
      insert(*First);
  }

  size_t erase(VarId V) {
    size_t Pos = lowerBoundPos(V);
    if (Pos >= Ids.size() || Ids[Pos] != V)
      return 0;
    Ids.erase(Ids.begin() + static_cast<std::ptrdiff_t>(Pos));
    return 1;
  }
  size_t erase(const std::string &Name) {
    VarId V = lookupVar(Name);
    return V.valid() ? erase(V) : 0;
  }
  iterator erase(iterator It) {
    size_t Pos = static_cast<size_t>(It.P - Ids.data());
    Ids.erase(Ids.begin() + static_cast<std::ptrdiff_t>(Pos));
    return iterator(Ids.data() + Pos);
  }

  bool contains(VarId V) const {
    size_t Pos = lowerBoundPos(V);
    return Pos < Ids.size() && Ids[Pos] == V;
  }
  bool contains(const std::string &Name) const {
    VarId V = lookupVar(Name);
    return V.valid() && contains(V);
  }
  size_t count(VarId V) const { return contains(V) ? 1 : 0; }
  size_t count(const std::string &Name) const { return contains(Name) ? 1 : 0; }

  iterator find(const std::string &Name) const {
    VarId V = lookupVar(Name);
    if (!V.valid())
      return end();
    size_t Pos = lowerBoundPos(V);
    if (Pos >= Ids.size() || Ids[Pos] != V)
      return end();
    return iterator(Ids.data() + Pos);
  }

  /// The underlying name-sorted id vector (fast-path iteration).
  const std::vector<VarId> &ids() const { return Ids; }

  /// Superset test: true iff every member of \p Sub is in this set.
  /// Two-pointer walk over the shared name order; compares names only to
  /// advance past non-members.
  bool includes(const VarSet &Sub) const {
    size_t I = 0;
    for (VarId V : Sub.Ids) {
      while (I < Ids.size() && Ids[I] != V &&
             compareVarNames(Ids[I], V) < 0)
        ++I;
      if (I >= Ids.size() || Ids[I] != V)
        return false;
      ++I;
    }
    return true;
  }

  friend bool operator==(const VarSet &L, const VarSet &R) {
    return L.Ids == R.Ids;
  }
  friend bool operator!=(const VarSet &L, const VarSet &R) {
    return !(L == R);
  }

private:
  /// First position whose name is not less than V's name.
  size_t lowerBoundPos(VarId V) const {
    size_t Lo = 0, Hi = Ids.size();
    while (Lo < Hi) {
      size_t Mid = Lo + (Hi - Lo) / 2;
      if (Ids[Mid] == V ? false : compareVarNames(Ids[Mid], V) < 0)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    return Lo;
  }

  std::vector<VarId> Ids; ///< Sorted by name (the observable order).
};

/// A concrete integer valuation of variables: a flat vector of
/// (VarId, value) entries sorted by id, so AffineExpr::evaluate is a
/// linear merge-join.  Iteration yields std::pair<VarId, BigInt> in id
/// order — deterministic within a process, but NOT name order; callers
/// that print assignments sort by name themselves.
class Assignment {
public:
  using Entry = std::pair<VarId, BigInt>;
  using value_type = Entry;
  using iterator = std::vector<Entry>::iterator;
  using const_iterator = std::vector<Entry>::const_iterator;

  Assignment() = default;
  Assignment(std::initializer_list<std::pair<std::string, BigInt>> Init) {
    for (const auto &[Name, Value] : Init)
      (*this)[Name] = Value;
  }

  iterator begin() { return Entries.begin(); }
  iterator end() { return Entries.end(); }
  const_iterator begin() const { return Entries.begin(); }
  const_iterator end() const { return Entries.end(); }

  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }
  void clear() { Entries.clear(); }

  BigInt &operator[](VarId V) {
    size_t Pos = lowerBoundPos(V);
    if (Pos < Entries.size() && Entries[Pos].first == V)
      return Entries[Pos].second;
    return Entries
        .emplace(Entries.begin() + static_cast<std::ptrdiff_t>(Pos), V,
                 BigInt(0))
        ->second;
  }
  BigInt &operator[](const std::string &Name) {
    return (*this)[internVar(Name)];
  }

  /// Fast lookup: the stored value, or nullptr when unbound.
  const BigInt *lookup(VarId V) const {
    size_t Pos = lowerBoundPos(V);
    if (Pos < Entries.size() && Entries[Pos].first == V)
      return &Entries[Pos].second;
    return nullptr;
  }

  /// Checked access (std::map::at compatible): throws std::out_of_range
  /// when \p V is unbound.
  const BigInt &at(VarId V) const {
    if (const BigInt *P = lookup(V))
      return *P;
    throw std::out_of_range("Assignment::at: unbound variable");
  }
  const BigInt &at(const std::string &Name) const {
    VarId V = lookupVar(Name);
    if (V.valid())
      if (const BigInt *P = lookup(V))
        return *P;
    throw std::out_of_range("Assignment::at: unbound variable " + Name);
  }

  const_iterator find(VarId V) const {
    size_t Pos = lowerBoundPos(V);
    if (Pos < Entries.size() && Entries[Pos].first == V)
      return Entries.begin() + static_cast<std::ptrdiff_t>(Pos);
    return Entries.end();
  }
  const_iterator find(const std::string &Name) const {
    VarId V = lookupVar(Name);
    return V.valid() ? find(V) : Entries.end();
  }
  iterator find(VarId V) {
    size_t Pos = lowerBoundPos(V);
    if (Pos < Entries.size() && Entries[Pos].first == V)
      return Entries.begin() + static_cast<std::ptrdiff_t>(Pos);
    return Entries.end();
  }
  iterator find(const std::string &Name) {
    VarId V = lookupVar(Name);
    return V.valid() ? find(V) : Entries.end();
  }

  size_t count(VarId V) const { return lookup(V) ? 1 : 0; }
  size_t count(const std::string &Name) const {
    VarId V = lookupVar(Name);
    return V.valid() && lookup(V) ? 1 : 0;
  }

  /// Inserts (V, Value) if V is unbound; returns (position, inserted).
  std::pair<iterator, bool> emplace(VarId V, BigInt Value) {
    size_t Pos = lowerBoundPos(V);
    if (Pos < Entries.size() && Entries[Pos].first == V)
      return {Entries.begin() + static_cast<std::ptrdiff_t>(Pos), false};
    return {Entries.emplace(Entries.begin() +
                                static_cast<std::ptrdiff_t>(Pos),
                            V, std::move(Value)),
            true};
  }
  std::pair<iterator, bool> emplace(const std::string &Name, BigInt Value) {
    return emplace(internVar(Name), std::move(Value));
  }
  /// Range insert (std::map compatible): keeps existing bindings.
  template <typename It> void insert(It First, It Last) {
    for (; First != Last; ++First)
      emplace(First->first, First->second);
  }

  size_t erase(VarId V) {
    size_t Pos = lowerBoundPos(V);
    if (Pos >= Entries.size() || Entries[Pos].first != V)
      return 0;
    Entries.erase(Entries.begin() + static_cast<std::ptrdiff_t>(Pos));
    return 1;
  }
  size_t erase(const std::string &Name) {
    VarId V = lookupVar(Name);
    return V.valid() ? erase(V) : 0;
  }

  friend bool operator==(const Assignment &L, const Assignment &R) {
    return L.Entries == R.Entries;
  }
  friend bool operator!=(const Assignment &L, const Assignment &R) {
    return !(L == R);
  }

private:
  size_t lowerBoundPos(VarId V) const {
    size_t Lo = 0, Hi = Entries.size();
    while (Lo < Hi) {
      size_t Mid = Lo + (Hi - Lo) / 2;
      if (Entries[Mid].first < V)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    return Lo;
  }

  std::vector<Entry> Entries; ///< Sorted by id (merge-join order).
};

/// Returns a process-unique wildcard name "$<n>", or a scope-local name
/// "$<prefix>x<n>" while a WildcardScope is active on the calling thread.
/// Shim over freshWildcardId() (VarTable.h) for name-level callers.
std::string freshWildcard();

/// Returns true for names produced by freshWildcard().  Prefer
/// VarId::isWildcard() — a bit test — when an id is at hand.
inline bool isWildcardName(const std::string &Name) {
  return !Name.empty() && Name[0] == '$';
}

/// RAII: routes freshWildcard() on the calling thread into a private
/// namespace "$<Prefix>x0, $<Prefix>x1, ...".
///
/// This is the determinism backbone of the parallel pipeline (DESIGN.md
/// §8): a fan-out gives every independent work item its own scope whose
/// prefix depends only on the item's position in the fan-out tree, never
/// on which thread runs it or in what order — so the names an item mints
/// are identical whether the batch runs serially or on the worker pool.
/// Scopes nest (the previous scope is restored on destruction) and are
/// cheap enough to enter per work item.
class WildcardScope {
public:
  explicit WildcardScope(const std::string &Prefix);
  ~WildcardScope();
  WildcardScope(const WildcardScope &) = delete;
  WildcardScope &operator=(const WildcardScope &) = delete;

private:
  void *State; ///< Opaque ScopeState, chained to the previous scope.
};

/// True iff a WildcardScope is active on the calling thread (i.e. we are
/// inside a fan-out work item or a memoized computation).
bool wildcardScopeActive();

/// Allocates the next deterministic fan-out batch prefix: scope-local when
/// a scope is active ("<scope>b<k>"), otherwise process-global ("g<k>").
std::string nextWildcardBatchPrefix();

/// Resets the process-global wildcard and batch counters to zero so a
/// repeated run mints identical names.  Test/bench hook only: existing
/// clauses keep their names, so mixing objects from before and after a
/// reset can capture wildcards.  Must be called with no scope active.
void resetWildcardState();

} // namespace omega

#endif // OMEGA_PRESBURGER_VAR_H
