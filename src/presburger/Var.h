//===- presburger/Var.h - Variable names and assignments -------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Variables are interned by name.  A variable plays one of three roles per
/// query, following the paper's terminology:
///   * counted variables (the set V of a summation (Σ V : P : x)),
///   * symbolic constants (remaining free variables; answers are given in
///     terms of these),
///   * wildcards (existentially quantified clause-local auxiliaries, named
///     "$<n>" so they can never collide with user variables).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_PRESBURGER_VAR_H
#define OMEGA_PRESBURGER_VAR_H

#include "support/BigInt.h"

#include <map>
#include <set>
#include <string>

namespace omega {

/// Deterministically ordered set of variable names.
using VarSet = std::set<std::string>;

/// A concrete integer valuation of variables.
using Assignment = std::map<std::string, BigInt>;

/// Returns a process-unique wildcard name "$<n>".
std::string freshWildcard();

/// Returns true for names produced by freshWildcard().
inline bool isWildcardName(const std::string &Name) {
  return !Name.empty() && Name[0] == '$';
}

} // namespace omega

#endif // OMEGA_PRESBURGER_VAR_H
