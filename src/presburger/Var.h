//===- presburger/Var.h - Variable names and assignments -------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Variables are interned by name.  A variable plays one of three roles per
/// query, following the paper's terminology:
///   * counted variables (the set V of a summation (Σ V : P : x)),
///   * symbolic constants (remaining free variables; answers are given in
///     terms of these),
///   * wildcards (existentially quantified clause-local auxiliaries, named
///     "$<n>" so they can never collide with user variables).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_PRESBURGER_VAR_H
#define OMEGA_PRESBURGER_VAR_H

#include "support/BigInt.h"

#include <map>
#include <set>
#include <string>

namespace omega {

/// Deterministically ordered set of variable names.
using VarSet = std::set<std::string>;

/// A concrete integer valuation of variables.
using Assignment = std::map<std::string, BigInt>;

/// Returns a process-unique wildcard name "$<n>", or a scope-local name
/// "$<prefix>x<n>" while a WildcardScope is active on the calling thread.
std::string freshWildcard();

/// Returns true for names produced by freshWildcard().
inline bool isWildcardName(const std::string &Name) {
  return !Name.empty() && Name[0] == '$';
}

/// RAII: routes freshWildcard() on the calling thread into a private
/// namespace "$<Prefix>x0, $<Prefix>x1, ...".
///
/// This is the determinism backbone of the parallel pipeline (DESIGN.md
/// §8): a fan-out gives every independent work item its own scope whose
/// prefix depends only on the item's position in the fan-out tree, never
/// on which thread runs it or in what order — so the names an item mints
/// are identical whether the batch runs serially or on the worker pool.
/// Scopes nest (the previous scope is restored on destruction) and are
/// cheap enough to enter per work item.
class WildcardScope {
public:
  explicit WildcardScope(const std::string &Prefix);
  ~WildcardScope();
  WildcardScope(const WildcardScope &) = delete;
  WildcardScope &operator=(const WildcardScope &) = delete;

private:
  void *State; ///< Opaque ScopeState, chained to the previous scope.
};

/// True iff a WildcardScope is active on the calling thread (i.e. we are
/// inside a fan-out work item or a memoized computation).
bool wildcardScopeActive();

/// Allocates the next deterministic fan-out batch prefix: scope-local when
/// a scope is active ("<scope>b<k>"), otherwise process-global ("g<k>").
std::string nextWildcardBatchPrefix();

/// Resets the process-global wildcard and batch counters to zero so a
/// repeated run mints identical names.  Test/bench hook only: existing
/// clauses keep their names, so mixing objects from before and after a
/// reset can capture wildcards.  Must be called with no scope active.
void resetWildcardState();

} // namespace omega

#endif // OMEGA_PRESBURGER_VAR_H
