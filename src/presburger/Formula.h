//===- presburger/Formula.h - Presburger formula AST -----------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable AST for full Presburger formulas: atomic constraints combined
/// with ∧, ∨, ¬, ∃, ∀ (§2.6).  The Omega simplifier (src/omega) lowers a
/// Formula to (disjoint) disjunctive normal form over Conjuncts.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_PRESBURGER_FORMULA_H
#define OMEGA_PRESBURGER_FORMULA_H

#include "presburger/Conjunct.h"
#include "support/Status.h"

#include <iosfwd>
#include <memory>
#include <vector>

namespace omega {

enum class FormulaKind { True, False, Atom, And, Or, Not, Exists, Forall };

/// Immutable, cheaply copyable Presburger formula.
class Formula {
public:
  /// Default-constructs True.
  Formula() : Formula(trueFormula()) {}

  static Formula trueFormula();
  static Formula falseFormula();
  static Formula atom(Constraint C);
  /// N-ary conjunction; flattens nested Ands, folds constants.
  static Formula conj(std::vector<Formula> Children);
  /// N-ary disjunction; flattens nested Ors, folds constants.
  static Formula disj(std::vector<Formula> Children);
  static Formula negation(Formula F);
  static Formula exists(VarSet Vars, Formula Body);
  static Formula forall(VarSet Vars, Formula Body);
  /// Convenience: conjunction of all constraints of \p C (wildcards become
  /// an Exists wrapper).
  static Formula fromConjunct(const Conjunct &C);

  FormulaKind kind() const;
  /// Atom payload; asserts kind() == Atom.
  const Constraint &constraint() const;
  /// Children of And/Or/Not (Not has exactly one).
  const std::vector<Formula> &children() const;
  /// Bound variables of Exists/Forall.
  const VarSet &quantified() const;
  /// Body of Exists/Forall.
  const Formula &body() const;

  bool isTrue() const { return kind() == FormulaKind::True; }
  bool isFalse() const { return kind() == FormulaKind::False; }

  /// Free variables of the formula.
  VarSet freeVars() const;

  /// Evaluates the formula at a full assignment of its free variables.
  /// Quantified variables are decided by the Omega test-independent bounded
  /// check only when they are eliminable by substitution; general formulas
  /// should be evaluated through omega::simplify + containsPoint.  Provided
  /// here for wildcard-free and quantifier-free formulas (tests, guards).
  /// Aborts on quantifiers; callers that cannot rule them out statically
  /// must use tryEvaluate.
  bool evaluate(const Assignment &Values) const;

  /// Like evaluate, but returns a typed Unsupported error instead of
  /// aborting when the formula contains a quantifier.  Simplify the
  /// formula first (omega::simplify yields quantifier-free DNF) to decide
  /// quantified formulas.
  Result<bool> tryEvaluate(const Assignment &Values) const;

  std::string toString() const;

  friend Formula operator&&(const Formula &L, const Formula &R) {
    return conj({L, R});
  }
  friend Formula operator||(const Formula &L, const Formula &R) {
    return disj({L, R});
  }
  friend Formula operator!(const Formula &F) { return negation(F); }

private:
  struct Node;
  explicit Formula(std::shared_ptr<const Node> N) : Impl(std::move(N)) {}
  std::shared_ptr<const Node> Impl;
};

std::ostream &operator<<(std::ostream &OS, const Formula &F);

} // namespace omega

#endif // OMEGA_PRESBURGER_FORMULA_H
