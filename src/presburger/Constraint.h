//===- presburger/Constraint.h - Linear and stride constraints -*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Atomic Presburger constraints: equalities `e = 0`, inequalities `e >= 0`,
/// and stride constraints `c | e` ("c evenly divides e", §2.1 / §3.2 of the
/// paper).  A stride is equivalent to `∃α: e = cα`; Conjunct provides the
/// conversion between the paper's "stride format" and "projected format".
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_PRESBURGER_CONSTRAINT_H
#define OMEGA_PRESBURGER_CONSTRAINT_H

#include "presburger/AffineExpr.h"
#include "support/Error.h"

#include <iosfwd>
#include <string>

namespace omega {

enum class ConstraintKind {
  Eq,    ///< Expr == 0
  Ge,    ///< Expr >= 0
  Stride ///< Mod divides Expr (Mod >= 1)
};

/// One atomic constraint.
class Constraint {
public:
  static Constraint eq(AffineExpr E) {
    return Constraint(ConstraintKind::Eq, std::move(E), BigInt(0));
  }
  static Constraint ge(AffineExpr E) {
    return Constraint(ConstraintKind::Ge, std::move(E), BigInt(0));
  }
  /// `A >= B` as `A - B >= 0`.
  static Constraint ge(const AffineExpr &A, const AffineExpr &B) {
    return ge(A - B);
  }
  /// `A <= B` as `B - A >= 0`.
  static Constraint le(const AffineExpr &A, const AffineExpr &B) {
    return ge(B - A);
  }
  /// `A = B` as `A - B = 0`.
  static Constraint eq(const AffineExpr &A, const AffineExpr &B) {
    return eq(A - B);
  }
  /// `A < B` over integers as `B - A - 1 >= 0`.
  static Constraint lt(const AffineExpr &A, const AffineExpr &B) {
    return ge(B - A - AffineExpr(1));
  }
  static Constraint gt(const AffineExpr &A, const AffineExpr &B) {
    return lt(B, A);
  }
  /// `Mod | E`; asserts Mod >= 1.
  static Constraint stride(BigInt Mod, AffineExpr E) {
    check(Mod.isPositive(), "stride modulus must be positive");
    return Constraint(ConstraintKind::Stride, std::move(E), std::move(Mod));
  }

  ConstraintKind kind() const { return Kind; }
  bool isEq() const { return Kind == ConstraintKind::Eq; }
  bool isGe() const { return Kind == ConstraintKind::Ge; }
  bool isStride() const { return Kind == ConstraintKind::Stride; }

  const AffineExpr &expr() const { return Expr; }
  AffineExpr &expr() { return Expr; }
  const BigInt &modulus() const {
    check(isStride(), "modulus of non-stride constraint");
    return Mod;
  }

  /// True iff the constraint holds under \p Values (all variables bound).
  bool holds(const Assignment &Values) const;

  /// True iff the constraint mentions no variables and holds trivially.
  bool isTriviallyTrue() const;
  /// True iff the constraint mentions no variables and fails trivially.
  bool isTriviallyFalse() const;

  void substitute(VarId V, const AffineExpr &Replacement) {
    Expr.substitute(V, Replacement);
  }
  void substitute(const std::string &Name, const AffineExpr &Replacement) {
    Expr.substitute(Name, Replacement);
  }
  void renameVar(VarId From, VarId To) { Expr.renameVar(From, To); }
  void renameVar(const std::string &From, const std::string &To) {
    Expr.renameVar(From, To);
  }
  void collectVars(VarSet &Out) const { Expr.collectVars(Out); }
  bool mentions(VarId V) const { return Expr.mentions(V); }
  bool mentions(const std::string &Name) const { return Expr.mentions(Name); }

  /// Canonicalizes: divides an Eq by the gcd of all its coefficients,
  /// tightens a Ge by flooring the constant (the Omega test's
  /// "normalization"), and reduces a Stride expression mod the modulus.
  /// Returns false iff normalization proves the constraint unsatisfiable
  /// (e.g. `2x + 1 = 0` or `2 | 2x + 1`).
  bool normalize();

  friend bool operator==(const Constraint &L, const Constraint &R) {
    return L.Kind == R.Kind && L.Mod == R.Mod && L.Expr == R.Expr;
  }
  friend bool operator!=(const Constraint &L, const Constraint &R) {
    return !(L == R);
  }
  friend bool operator<(const Constraint &L, const Constraint &R) {
    if (L.Kind != R.Kind)
      return L.Kind < R.Kind;
    if (L.Mod != R.Mod)
      return L.Mod < R.Mod;
    return L.Expr < R.Expr;
  }

  /// Renders e.g. "i + 2j - 3 >= 0" or "3 | n - 1".
  std::string toString() const;

private:
  Constraint(ConstraintKind K, AffineExpr E, BigInt M)
      : Kind(K), Expr(std::move(E)), Mod(std::move(M)) {}

  ConstraintKind Kind;
  AffineExpr Expr;
  BigInt Mod;
};

std::ostream &operator<<(std::ostream &OS, const Constraint &C);

} // namespace omega

#endif // OMEGA_PRESBURGER_CONSTRAINT_H
