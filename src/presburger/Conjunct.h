//===- presburger/Conjunct.h - Conjunctive clauses -------------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Conjunct is one clause of a disjunctive normal form: a conjunction of
/// affine equalities, inequalities and stride constraints, over free
/// variables plus clause-local existentially quantified *wildcards* (the
/// paper's "auxiliary variables" of the projected format, §2.1).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_PRESBURGER_CONJUNCT_H
#define OMEGA_PRESBURGER_CONJUNCT_H

#include "presburger/Constraint.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace omega {

/// One DNF clause: /\ constraints, with some variables bound by ∃.
class Conjunct {
public:
  Conjunct() = default;

  /// The always-true clause.
  static Conjunct trueConjunct() { return Conjunct(); }

  void add(Constraint C) { Items.push_back(std::move(C)); }
  void addAll(const Conjunct &Other);

  const std::vector<Constraint> &constraints() const { return Items; }
  std::vector<Constraint> &constraints() { return Items; }
  bool empty() const { return Items.empty(); }

  const VarSet &wildcards() const { return Wildcards; }
  void addWildcard(VarId V) { Wildcards.insert(V); }
  void addWildcard(const std::string &Name) { Wildcards.insert(Name); }
  /// Clause-wildcard membership.  Note this is a set test, not a VarId
  /// role-bit test: projection declares user variables as clause wildcards
  /// without renaming them.
  bool isWildcard(VarId V) const { return Wildcards.contains(V); }
  bool isWildcard(const std::string &Name) const {
    return Wildcards.count(Name) != 0;
  }
  /// Drops wildcard declarations that no constraint mentions.
  void pruneUnusedWildcards();

  /// Removes and returns the wildcard set (used by projection, which takes
  /// ownership of the existential structure).
  VarSet takeWildcards() {
    VarSet Out;
    std::swap(Out, Wildcards);
    return Out;
  }

  /// All variables mentioned by constraints (including wildcards).
  VarSet mentionedVars() const;
  /// Mentioned variables that are not wildcards.
  VarSet freeVars() const;

  bool mentions(VarId V) const;
  bool mentions(const std::string &Name) const;

  /// Substitutes V := Replacement in every constraint.  If V was a
  /// wildcard it stops being one.  Any *new* variables introduced by
  /// Replacement are not quantified.
  void substitute(VarId V, const AffineExpr &Replacement);
  void substitute(const std::string &Name, const AffineExpr &Replacement);

  /// Renames a variable (From must not be To; To must be fresh).
  void renameVar(VarId From, VarId To);
  void renameVar(const std::string &From, const std::string &To);

  /// Gives every wildcard a globally fresh name (capture-free merging).
  void refreshWildcards();

  /// True iff all constraints hold at \p Values.  All free variables must be
  /// bound and the clause must have no wildcards (use
  /// omega::containsPoint for clauses with wildcards); stride constraints
  /// are checked directly.
  bool contains(const Assignment &Values) const;

  /// Conjunction of two clauses (wildcards are refreshed to avoid capture).
  static Conjunct merge(const Conjunct &A, const Conjunct &B);

  /// Converts stride constraints `c | e` into projected format
  /// `∃α: e = cα` (§3.2).  After this, no Stride constraints remain.
  void stridesToWildcards();

  /// Renders e.g. "exists $1: { i - 2*$1 = 0; i <= n }".
  std::string toString() const;

private:
  std::vector<Constraint> Items;
  VarSet Wildcards;
};

std::ostream &operator<<(std::ostream &OS, const Conjunct &C);

/// A memoization-ready form of a clause plus its cache key.
///
/// The canonical form has every constraint normalized (GCD-reduced,
/// inequality-tightened, stride-reduced — Constraint::normalize),
/// trivially-true constraints and duplicates dropped, the rest sorted, and
/// unused wildcard declarations pruned; a clause normalization proves
/// infeasible collapses to the canonical false clause `{ -1 >= 0 }` with
/// key "UNSAT".  All of these are semantics-preserving rewrites, so equal
/// keys imply semantically equal clauses — the soundness condition for
/// reusing a memoized result (DESIGN.md §8).  Clauses that differ only in
/// constraint order or in un-normalized coefficient scaling share a key;
/// alpha-variants (same clause, different wildcard names) do not, which
/// costs cache capacity but never correctness.  The key encodes interned
/// VarIds (bijective with names within a process), so building it sweeps
/// the flat term rows without rendering names; keys are process-local,
/// exactly like the cache they index.
struct CanonicalConjunct {
  Conjunct C;      ///< The canonical form; semantically equal to the input.
  std::string Key; ///< Equal keys imply semantically equal clauses.
};

CanonicalConjunct canonicalConjunct(const Conjunct &In);

} // namespace omega

#endif // OMEGA_PRESBURGER_CONJUNCT_H
