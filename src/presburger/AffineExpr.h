//===- presburger/AffineExpr.h - Integer affine expressions ----*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An affine expression `c0 + Σ ci * vi` with BigInt coefficients over
/// interned integer variables — the atoms of Presburger constraints.
///
/// Terms live in a flat array sorted by VarId, inline for up to
/// InlineCapacity terms (the overwhelming majority of Omega-test
/// constraints), spilling to a single heap array beyond that.  Add/sub/
/// substitute are sorted merges, gcd and divExact sweeps iterate the
/// contiguous row, and copies are flat element copies — no per-term heap
/// nodes and no string comparisons anywhere (DESIGN.md §16).
///
/// Two orders coexist deliberately:
///   * storage (and `terms()` / `forEachTerm`) is id order — fast machine
///     compares; deterministic per process but NOT across worker
///     schedules, so it must never leak into output;
///   * every observable order — `toString()`, `operator<` (which feeds
///     canonicalConjunct's sort), `leadTermByName` — is name order,
///     bit-identical to the std::map<std::string, BigInt> this replaces.
///
//======---------------------------------------------------------------===//

#ifndef OMEGA_PRESBURGER_AFFINEEXPR_H
#define OMEGA_PRESBURGER_AFFINEEXPR_H

#include "presburger/Var.h"
#include "support/BigInt.h"
#include "support/Stats.h"

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace omega {

// The IR-layer observability counters (ExprCounters, exprCounters()) live
// in support/Stats.h so per-query stats blocks can hold a set; the flat
// term storage below is their only producer.

/// Sparse affine expression over interned integer variables.  Zero
/// coefficients are never stored, so equal expressions have equal
/// representations.
class AffineExpr {
public:
  /// One stored term.  Structured bindings give (VarId, const BigInt &).
  struct Term {
    VarId Var;
    BigInt Coef;
  };

  /// Terms held without heap allocation.  Four covers nearly every
  /// constraint the Omega test builds (bounds mention 1-3 variables plus a
  /// wildcard); the bench_ir inline-path allocation gate pins this.
  static constexpr uint32_t InlineCapacity = 4;

  /// Contiguous id-ordered view of the terms.
  class TermRange {
  public:
    const Term *begin() const { return B; }
    const Term *end() const { return E; }
    size_t size() const { return static_cast<size_t>(E - B); }
    bool empty() const { return B == E; }

  private:
    TermRange(const Term *B, const Term *E) : B(B), E(E) {}
    const Term *B;
    const Term *E;
    friend class AffineExpr;
  };

  AffineExpr() : Terms(inlineData()) {}
  /// Implicit conversion from constants for expression-building ergonomics.
  AffineExpr(BigInt Constant) : Terms(inlineData()), Const(std::move(Constant)) {}
  AffineExpr(long long Constant) : Terms(inlineData()), Const(Constant) {}
  AffineExpr(long Constant) : Terms(inlineData()), Const(Constant) {}
  AffineExpr(int Constant) : Terms(inlineData()), Const(Constant) {}

  AffineExpr(const AffineExpr &RHS);
  AffineExpr(AffineExpr &&RHS) noexcept;
  AffineExpr &operator=(const AffineExpr &RHS);
  AffineExpr &operator=(AffineExpr &&RHS) noexcept;
  ~AffineExpr();

  static AffineExpr variable(VarId V) {
    AffineExpr E;
    E.insertAt(0, V, BigInt(1));
    return E;
  }
  static AffineExpr variable(const std::string &Name) {
    return variable(internVar(Name));
  }

  const BigInt &constant() const { return Const; }
  void setConstant(BigInt C) { Const = std::move(C); }

  /// Returns the coefficient of \p V: a reference to the stored value, or
  /// to a shared zero when absent — no BigInt copy per lookup.
  const BigInt &coeff(VarId V) const {
    uint32_t Pos = findPos(V);
    return Pos == Size ? zero() : Terms[Pos].Coef;
  }
  const BigInt &coeff(const std::string &Name) const {
    VarId V = lookupVar(Name);
    return V.valid() ? coeff(V) : zero();
  }
  void setCoeff(VarId V, BigInt C);
  void setCoeff(const std::string &Name, BigInt C) {
    setCoeff(internVar(Name), std::move(C));
  }

  /// Terms in id order (see the file comment: never an observable order).
  TermRange terms() const { return TermRange(Terms, Terms + Size); }

  /// Applies Fn(VarId, const BigInt &) to each term in id order.
  template <typename F> void forEachTerm(F &&Fn) const {
    for (uint32_t I = 0; I < Size; ++I)
      Fn(Terms[I].Var, Terms[I].Coef);
  }

  /// Applies Fn(VarId, const BigInt &) to each term in *name* order — the
  /// observable order, for printing and order-sensitive tie-breaks.
  template <typename F> void forEachTermByName(F &&Fn) const {
    uint32_t Stack[16];
    std::vector<uint32_t> Heap;
    uint32_t *Idx = Stack;
    if (Size > 16) {
      Heap.resize(Size);
      Idx = Heap.data();
    }
    sortedNameOrder(Idx);
    for (uint32_t I = 0; I < Size; ++I)
      Fn(Terms[Idx[I]].Var, Terms[Idx[I]].Coef);
  }

  /// The term whose variable name sorts first (the map's begin()); the
  /// expression must mention at least one variable.
  const Term &leadTermByName() const;

  bool isConstant() const { return Size == 0; }
  bool isZero() const { return Size == 0 && Const.isZero(); }
  /// Number of variables with nonzero coefficients.
  unsigned numVars() const { return Size; }
  /// True while the terms sit in the inline buffer (no heap allocation).
  bool isInlineRep() const { return Terms == inlineData(); }

  AffineExpr operator-() const;
  AffineExpr &operator+=(const AffineExpr &RHS);
  AffineExpr &operator-=(const AffineExpr &RHS);
  AffineExpr &operator*=(const BigInt &Factor);

  /// Divides every coefficient (not the constant) in place by \p G, which
  /// must divide each exactly — the gcd-normalization hot path sweeping
  /// the contiguous row.
  void divCoeffsExact(const BigInt &G);

  friend AffineExpr operator+(AffineExpr L, const AffineExpr &R) {
    return L += R;
  }
  friend AffineExpr operator-(AffineExpr L, const AffineExpr &R) {
    return L -= R;
  }
  friend AffineExpr operator*(AffineExpr L, const BigInt &R) {
    return L *= R;
  }
  friend AffineExpr operator*(const BigInt &L, AffineExpr R) {
    return R *= L;
  }

  friend bool operator==(const AffineExpr &L, const AffineExpr &R) {
    if (L.Const != R.Const || L.Size != R.Size)
      return false;
    for (uint32_t I = 0; I < L.Size; ++I)
      if (L.Terms[I].Var != R.Terms[I].Var ||
          L.Terms[I].Coef != R.Terms[I].Coef)
        return false;
    return true;
  }
  friend bool operator!=(const AffineExpr &L, const AffineExpr &R) {
    return !(L == R);
  }
  /// Total order for use in ordered containers, identical to the order of
  /// the former map representation: constant first, then lexicographic
  /// over (name, coefficient) pairs in name order.  This order reaches
  /// canonicalConjunct's constraint sort and hence the goldens.
  friend bool operator<(const AffineExpr &L, const AffineExpr &R) {
    if (L.Const != R.Const)
      return L.Const < R.Const;
    return L.compareTermsByName(R) < 0;
  }

  /// Replaces \p V with \p Replacement (which may itself mention other
  /// variables, but not \p V).
  void substitute(VarId V, const AffineExpr &Replacement);
  void substitute(const std::string &Name, const AffineExpr &Replacement) {
    VarId V = lookupVar(Name);
    if (V.valid())
      substitute(V, Replacement);
  }

  /// Renames a variable; the new name must not already appear.
  void renameVar(VarId From, VarId To);
  void renameVar(const std::string &From, const std::string &To) {
    VarId F = lookupVar(From);
    if (F.valid() && mentions(F))
      renameVar(F, internVar(To));
  }

  /// Evaluates with every variable bound by \p Values; asserts all
  /// present.  A linear merge-join: both sides are id-sorted.
  BigInt evaluate(const Assignment &Values) const;

  /// GCD of the variable coefficients only (0 when constant).
  BigInt coeffGcd() const;

  void collectVars(VarSet &Out) const {
    for (uint32_t I = 0; I < Size; ++I)
      Out.insert(Terms[I].Var);
  }
  bool mentions(VarId V) const { return findPos(V) != Size; }
  bool mentions(const std::string &Name) const {
    VarId V = lookupVar(Name);
    return V.valid() && mentions(V);
  }

  /// Renders e.g. "2*i - 3*j + 7" (terms in name order).
  std::string toString() const;

  size_t hash() const;

  /// The shared zero coefficient coeff() returns for absent variables.
  static const BigInt &zero();

private:
  Term *inlineData() { return reinterpret_cast<Term *>(InlineBuf); }
  const Term *inlineData() const {
    return reinterpret_cast<const Term *>(InlineBuf);
  }

  /// Position of V's term, or Size when absent.
  uint32_t findPos(VarId V) const {
    for (uint32_t I = 0; I < Size; ++I) {
      if (Terms[I].Var == V)
        return I;
      if (V < Terms[I].Var)
        return Size;
    }
    return Size;
  }
  /// First position whose id is >= V.
  uint32_t lowerPos(VarId V) const {
    uint32_t I = 0;
    while (I < Size && Terms[I].Var < V)
      ++I;
    return I;
  }

  void growTo(uint32_t NeedCap);
  void insertAt(uint32_t Pos, VarId V, BigInt C);
  void eraseAt(uint32_t Pos);
  /// Replaces the stored terms with Src[0..N), moving out of Src.
  void adoptTerms(Term *Src, uint32_t N);
  void destroyTerms();
  /// this += (Negate ? -1 : +1) * (Scale ? *Scale : 1) * Σ RTerms.
  void mergeAddScaled(const Term *RTerms, uint32_t RN, const BigInt *Scale,
                      bool Negate);
  /// Fills Idx[0..Size) with term positions sorted by variable name.
  void sortedNameOrder(uint32_t *Idx) const;
  /// Three-way name-lexicographic term comparison (see operator<).
  int compareTermsByName(const AffineExpr &RHS) const;

  static void noteInlineOp() {
    if (arithCounters().CountOps.load(std::memory_order_relaxed))
      exprCounters().InlineOps.fetch_add(1, std::memory_order_relaxed);
  }

  Term *Terms;       ///< Inline buffer or heap array, id-sorted.
  uint32_t Size = 0; ///< Live terms.
  uint32_t Cap = InlineCapacity;
  BigInt Const;
  alignas(Term) unsigned char InlineBuf[sizeof(Term) * InlineCapacity];
};

std::ostream &operator<<(std::ostream &OS, const AffineExpr &E);

} // namespace omega

#endif // OMEGA_PRESBURGER_AFFINEEXPR_H
