//===- presburger/AffineExpr.h - Integer affine expressions ----*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An affine expression `c0 + Σ ci * vi` with BigInt coefficients over named
/// integer variables — the atoms of Presburger constraints.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_PRESBURGER_AFFINEEXPR_H
#define OMEGA_PRESBURGER_AFFINEEXPR_H

#include "presburger/Var.h"
#include "support/BigInt.h"

#include <iosfwd>
#include <map>
#include <string>

namespace omega {

/// Sparse affine expression over named integer variables.  Zero coefficients
/// are never stored, so equal expressions have equal representations.
class AffineExpr {
public:
  AffineExpr() = default;
  /// Implicit conversion from constants for expression-building ergonomics.
  AffineExpr(BigInt Constant) : Const(std::move(Constant)) {}
  AffineExpr(long long Constant) : Const(Constant) {}
  AffineExpr(long Constant) : Const(Constant) {}
  AffineExpr(int Constant) : Const(Constant) {}

  static AffineExpr variable(const std::string &Name) {
    AffineExpr E;
    E.Coeffs[Name] = BigInt(1);
    return E;
  }

  const BigInt &constant() const { return Const; }
  void setConstant(BigInt C) { Const = std::move(C); }

  /// Returns the coefficient of \p Name (zero if absent).
  BigInt coeff(const std::string &Name) const {
    auto It = Coeffs.find(Name);
    return It == Coeffs.end() ? BigInt(0) : It->second;
  }
  void setCoeff(const std::string &Name, BigInt C);

  /// Variables with nonzero coefficients, in deterministic order.
  const std::map<std::string, BigInt> &terms() const { return Coeffs; }

  bool isConstant() const { return Coeffs.empty(); }
  bool isZero() const { return Coeffs.empty() && Const.isZero(); }
  /// Number of variables with nonzero coefficients.
  unsigned numVars() const { return static_cast<unsigned>(Coeffs.size()); }

  AffineExpr operator-() const;
  AffineExpr &operator+=(const AffineExpr &RHS);
  AffineExpr &operator-=(const AffineExpr &RHS);
  AffineExpr &operator*=(const BigInt &Factor);

  /// Divides every coefficient (not the constant) in place by \p G, which
  /// must divide each exactly — the gcd-normalization hot path, where
  /// rebuilding the coefficient map would allocate a node per term.
  void divCoeffsExact(const BigInt &G);

  friend AffineExpr operator+(AffineExpr L, const AffineExpr &R) {
    return L += R;
  }
  friend AffineExpr operator-(AffineExpr L, const AffineExpr &R) {
    return L -= R;
  }
  friend AffineExpr operator*(AffineExpr L, const BigInt &R) {
    return L *= R;
  }
  friend AffineExpr operator*(const BigInt &L, AffineExpr R) {
    return R *= L;
  }

  friend bool operator==(const AffineExpr &L, const AffineExpr &R) {
    return L.Const == R.Const && L.Coeffs == R.Coeffs;
  }
  friend bool operator!=(const AffineExpr &L, const AffineExpr &R) {
    return !(L == R);
  }
  /// Arbitrary total order for use in ordered containers.
  friend bool operator<(const AffineExpr &L, const AffineExpr &R) {
    if (L.Const != R.Const)
      return L.Const < R.Const;
    return L.Coeffs < R.Coeffs;
  }

  /// Replaces \p Name with \p Replacement (which may itself mention other
  /// variables, but not \p Name).
  void substitute(const std::string &Name, const AffineExpr &Replacement);

  /// Renames a variable; the new name must not already appear.
  void renameVar(const std::string &From, const std::string &To);

  /// Evaluates with every variable bound by \p Values; asserts all present.
  BigInt evaluate(const Assignment &Values) const;

  /// GCD of the variable coefficients only (0 when constant).
  BigInt coeffGcd() const;

  void collectVars(VarSet &Out) const;
  bool mentions(const std::string &Name) const {
    return Coeffs.count(Name) != 0;
  }

  /// Renders e.g. "2i - 3j + 7".
  std::string toString() const;

  size_t hash() const;

private:
  std::map<std::string, BigInt> Coeffs;
  BigInt Const;
};

std::ostream &operator<<(std::ostream &OS, const AffineExpr &E);

} // namespace omega

#endif // OMEGA_PRESBURGER_AFFINEEXPR_H
