//===- presburger/NonLinear.h - Floors, ceilings, mods ---------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §3 of the paper: floor, ceiling and mod terms stay within Presburger
/// arithmetic by introducing an existentially quantified auxiliary:
///
///   floor(e/c): ∃α: cα <= e <= cα + (c-1),        term value α
///   ceil(e/c) : ∃β: cβ - (c-1) <= e <= cβ,        term value β
///   e mod c   : ∃γ: cγ <= e <= cγ + (c-1),        term value e - cγ
///
/// Each helper returns the replacement affine expression plus a side
/// Conjunct carrying the wildcard and its bounding constraints.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_PRESBURGER_NONLINEAR_H
#define OMEGA_PRESBURGER_NONLINEAR_H

#include "presburger/Conjunct.h"

namespace omega {

/// An affine expression together with the constraints defining its
/// auxiliary wildcards.
struct LoweredExpr {
  AffineExpr Expr;
  Conjunct Side;
};

/// Lowers floor(E / C); asserts C >= 1.
LoweredExpr lowerFloor(const AffineExpr &E, const BigInt &C);

/// Lowers ceil(E / C); asserts C >= 1.
LoweredExpr lowerCeil(const AffineExpr &E, const BigInt &C);

/// Lowers E mod C (mathematical: result in [0, C)); asserts C >= 1.
LoweredExpr lowerMod(const AffineExpr &E, const BigInt &C);

} // namespace omega

#endif // OMEGA_PRESBURGER_NONLINEAR_H
