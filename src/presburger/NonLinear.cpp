//===- presburger/NonLinear.cpp - Floors, ceilings, mods -----------------===//

#include "presburger/NonLinear.h"

#include "support/Error.h"

using namespace omega;

LoweredExpr omega::lowerFloor(const AffineExpr &E, const BigInt &C) {
  check(C.isPositive(), "floor divisor must be positive");
  LoweredExpr R;
  std::string Alpha = freshWildcard();
  R.Expr = AffineExpr::variable(Alpha);
  R.Side.addWildcard(Alpha);
  AffineExpr CA = C * R.Expr;
  // cα <= e <= cα + (c - 1).
  R.Side.add(Constraint::le(CA, E));
  R.Side.add(Constraint::le(E, CA + AffineExpr(C - BigInt(1))));
  return R;
}

LoweredExpr omega::lowerCeil(const AffineExpr &E, const BigInt &C) {
  check(C.isPositive(), "ceil divisor must be positive");
  LoweredExpr R;
  std::string Beta = freshWildcard();
  R.Expr = AffineExpr::variable(Beta);
  R.Side.addWildcard(Beta);
  AffineExpr CB = C * R.Expr;
  // cβ - (c - 1) <= e <= cβ.
  R.Side.add(Constraint::le(CB - AffineExpr(C - BigInt(1)), E));
  R.Side.add(Constraint::le(E, CB));
  return R;
}

LoweredExpr omega::lowerMod(const AffineExpr &E, const BigInt &C) {
  check(C.isPositive(), "mod divisor must be positive");
  LoweredExpr R = lowerFloor(E, C);
  // e mod c = e - c * floor(e/c).
  R.Expr = E - C * R.Expr;
  return R;
}
