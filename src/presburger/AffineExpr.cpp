//===- presburger/AffineExpr.cpp - Integer affine expressions ------------===//

#include "presburger/AffineExpr.h"

#include "support/Error.h"

#include <algorithm>
#include <new>
#include <ostream>
#include <sstream>
#include <vector>

using namespace omega;

namespace {
/// Merge scratch that fits the stack: covers any merge of two inline
/// expressions, which is the allocation-free fast path bench_ir gates.
constexpr uint32_t ScratchCap = 2 * AffineExpr::InlineCapacity;
} // namespace

const BigInt &AffineExpr::zero() {
  static const BigInt Z(0);
  return Z;
}

void AffineExpr::destroyTerms() {
  for (uint32_t I = Size; I > 0; --I)
    Terms[I - 1].~Term();
  if (Terms != inlineData())
    ::operator delete(Terms);
  Terms = inlineData();
  Cap = InlineCapacity;
  Size = 0;
}

void AffineExpr::growTo(uint32_t NeedCap) {
  if (NeedCap <= Cap)
    return;
  uint32_t NewCap = std::max(Cap * 2, NeedCap);
  Term *NewTerms = static_cast<Term *>(::operator new(sizeof(Term) * NewCap));
  for (uint32_t I = 0; I < Size; ++I) {
    new (NewTerms + I) Term{Terms[I].Var, std::move(Terms[I].Coef)};
    Terms[I].~Term();
  }
  if (Terms != inlineData())
    ::operator delete(Terms);
  Terms = NewTerms;
  Cap = NewCap;
  exprCounters().Spills.fetch_add(1, std::memory_order_relaxed);
}

AffineExpr::AffineExpr(const AffineExpr &RHS)
    : Terms(inlineData()), Const(RHS.Const) {
  growTo(RHS.Size);
  for (uint32_t I = 0; I < RHS.Size; ++I)
    new (Terms + I) Term{RHS.Terms[I].Var, RHS.Terms[I].Coef};
  Size = RHS.Size;
}

AffineExpr::AffineExpr(AffineExpr &&RHS) noexcept
    : Terms(inlineData()), Const(std::move(RHS.Const)) {
  if (RHS.Terms != RHS.inlineData()) {
    Terms = RHS.Terms;
    Cap = RHS.Cap;
    Size = RHS.Size;
    RHS.Terms = RHS.inlineData();
    RHS.Cap = InlineCapacity;
    RHS.Size = 0;
    return;
  }
  for (uint32_t I = 0; I < RHS.Size; ++I) {
    new (Terms + I) Term{RHS.Terms[I].Var, std::move(RHS.Terms[I].Coef)};
    RHS.Terms[I].~Term();
  }
  Size = RHS.Size;
  RHS.Size = 0;
}

AffineExpr &AffineExpr::operator=(const AffineExpr &RHS) {
  if (this == &RHS)
    return *this;
  Const = RHS.Const;
  if (RHS.Size > Cap) {
    destroyTerms();
    growTo(RHS.Size);
  }
  uint32_t Common = std::min(Size, RHS.Size);
  for (uint32_t I = 0; I < Common; ++I) {
    Terms[I].Var = RHS.Terms[I].Var;
    Terms[I].Coef = RHS.Terms[I].Coef;
  }
  for (uint32_t I = Common; I < RHS.Size; ++I)
    new (Terms + I) Term{RHS.Terms[I].Var, RHS.Terms[I].Coef};
  for (uint32_t I = Size; I > RHS.Size; --I)
    Terms[I - 1].~Term();
  Size = RHS.Size;
  return *this;
}

AffineExpr &AffineExpr::operator=(AffineExpr &&RHS) noexcept {
  if (this == &RHS)
    return *this;
  Const = std::move(RHS.Const);
  if (RHS.Terms != RHS.inlineData()) {
    destroyTerms();
    Terms = RHS.Terms;
    Cap = RHS.Cap;
    Size = RHS.Size;
    RHS.Terms = RHS.inlineData();
    RHS.Cap = InlineCapacity;
    RHS.Size = 0;
    return *this;
  }
  uint32_t Common = std::min(Size, RHS.Size);
  for (uint32_t I = 0; I < Common; ++I) {
    Terms[I].Var = RHS.Terms[I].Var;
    Terms[I].Coef = std::move(RHS.Terms[I].Coef);
  }
  for (uint32_t I = Common; I < RHS.Size; ++I)
    new (Terms + I) Term{RHS.Terms[I].Var, std::move(RHS.Terms[I].Coef)};
  for (uint32_t I = Size; I > RHS.Size; --I)
    Terms[I - 1].~Term();
  Size = RHS.Size;
  for (uint32_t I = RHS.Size; I > 0; --I)
    RHS.Terms[I - 1].~Term();
  RHS.Size = 0;
  return *this;
}

AffineExpr::~AffineExpr() { destroyTerms(); }

void AffineExpr::insertAt(uint32_t Pos, VarId V, BigInt C) {
  growTo(Size + 1);
  if (Pos == Size) {
    new (Terms + Size) Term{V, std::move(C)};
  } else {
    new (Terms + Size)
        Term{Terms[Size - 1].Var, std::move(Terms[Size - 1].Coef)};
    for (uint32_t I = Size - 1; I > Pos; --I) {
      Terms[I].Var = Terms[I - 1].Var;
      Terms[I].Coef = std::move(Terms[I - 1].Coef);
    }
    Terms[Pos].Var = V;
    Terms[Pos].Coef = std::move(C);
  }
  ++Size;
}

void AffineExpr::eraseAt(uint32_t Pos) {
  for (uint32_t I = Pos; I + 1 < Size; ++I) {
    Terms[I].Var = Terms[I + 1].Var;
    Terms[I].Coef = std::move(Terms[I + 1].Coef);
  }
  Terms[Size - 1].~Term();
  --Size;
}

void AffineExpr::adoptTerms(Term *Src, uint32_t N) {
  if (N > Cap) {
    destroyTerms();
    growTo(N);
  }
  uint32_t Common = std::min(Size, N);
  for (uint32_t I = 0; I < Common; ++I) {
    Terms[I].Var = Src[I].Var;
    Terms[I].Coef = std::move(Src[I].Coef);
  }
  for (uint32_t I = Common; I < N; ++I)
    new (Terms + I) Term{Src[I].Var, std::move(Src[I].Coef)};
  for (uint32_t I = Size; I > N; --I)
    Terms[I - 1].~Term();
  Size = N;
}

void AffineExpr::setCoeff(VarId V, BigInt C) {
  uint32_t Pos = lowerPos(V);
  bool Present = Pos < Size && Terms[Pos].Var == V;
  if (C.isZero()) {
    if (Present)
      eraseAt(Pos);
    return;
  }
  if (Present) {
    Terms[Pos].Coef = std::move(C);
    return;
  }
  insertAt(Pos, V, std::move(C));
}

void AffineExpr::mergeAddScaled(const Term *RTerms, uint32_t RN,
                                const BigInt *Scale, bool Negate) {
  if (RN == 0 || (Scale && Scale->isZero()))
    return;
  if (RTerms == Terms) {
    // Self-merge would read terms the adopt step moves out of; detach.
    AffineExpr Copy(*this);
    mergeAddScaled(Copy.Terms, Copy.Size, Scale, Negate);
    return;
  }
  auto scaled = [&](const BigInt &C) {
    BigInt R = Scale ? C * *Scale : C;
    return Negate ? -R : std::move(R);
  };
  // One counting pass decides which merge strategy applies: whether every
  // RHS variable already appears on the left, and how many terms the
  // merged union holds.
  uint32_t Union = 0;
  bool RhsSubset = true;
  {
    uint32_t I = 0, J = 0;
    while (I < Size && J < RN) {
      if (Terms[I].Var == RTerms[J].Var) {
        ++I;
        ++J;
      } else if (Terms[I].Var < RTerms[J].Var) {
        ++I;
      } else {
        ++J;
        RhsSubset = false;
      }
      ++Union;
    }
    if (J < RN)
      RhsSubset = false;
    Union += (Size - I) + (RN - J);
  }
  // Slots past the compaction watermark may hold zero coefficients the
  // in-place paths park there before squeezing them out.
  auto compactZeros = [&](uint32_t N) {
    uint32_t W = 0;
    for (uint32_t I = 0; I < N; ++I) {
      if (Terms[I].Coef.isZero())
        continue;
      if (W != I) {
        Terms[W].Var = Terms[I].Var;
        Terms[W].Coef = std::move(Terms[I].Coef);
      }
      ++W;
    }
    for (uint32_t I = N; I > W; --I)
      Terms[I - 1].~Term();
    Size = W;
  };
  // Fast path: every RHS variable already appears on the left (the common
  // Fourier-combine and substitution shape) — add into the stored
  // coefficients directly and compact any zeros, no moves at all.
  if (RhsSubset) {
    uint32_t I = 0;
    for (uint32_t J = 0; J < RN; ++J) {
      while (Terms[I].Var < RTerms[J].Var)
        ++I;
      Terms[I].Coef += scaled(RTerms[J].Coef);
    }
    compactZeros(Size);
    if (isInlineRep())
      noteInlineOp();
    return;
  }
  // The union fits the storage already owned: merge backward from the top
  // slot so every term is touched once, then squeeze out any zeros.  Slots
  // at or above the old Size are raw storage and need placement-new.
  if (Union <= Cap) {
    uint32_t I = Size, J = RN, W = Union;
    auto place = [&](VarId V, BigInt C) {
      --W;
      if (W < Size) {
        Terms[W].Var = V;
        Terms[W].Coef = std::move(C);
      } else {
        new (Terms + W) Term{V, std::move(C)};
      }
    };
    while (J > 0) {
      if (W == I) {
        // Remaining union size equals remaining left size: every pending
        // RHS variable coincides with a left term that is already in its
        // final slot.  Add the coefficients forward and stop moving.
        uint32_t K = 0;
        for (uint32_t L = 0; L < J; ++L) {
          while (Terms[K].Var < RTerms[L].Var)
            ++K;
          Terms[K].Coef += scaled(RTerms[L].Coef);
        }
        break;
      }
      if (I > 0 && RTerms[J - 1].Var < Terms[I - 1].Var) {
        place(Terms[I - 1].Var, std::move(Terms[I - 1].Coef));
        --I;
      } else if (I > 0 && Terms[I - 1].Var == RTerms[J - 1].Var) {
        --J;
        BigInt C = std::move(Terms[I - 1].Coef);
        C += scaled(RTerms[J].Coef);
        place(Terms[I - 1].Var, std::move(C));
        --I;
      } else {
        --J;
        place(RTerms[J].Var, scaled(RTerms[J].Coef));
      }
    }
    // Any left terms not yet visited sit below W in their final slots.
    Size = Union;
    compactZeros(Size);
    if (isInlineRep())
      noteInlineOp();
    return;
  }
  Term Scratch[ScratchCap];
  std::vector<Term> HeapScratch;
  Term *Out = Scratch;
  if (Size + RN > ScratchCap) {
    HeapScratch.resize(Size + RN);
    Out = HeapScratch.data();
  }
  uint32_t W = 0, I = 0, J = 0;
  while (I < Size && J < RN) {
    if (Terms[I].Var == RTerms[J].Var) {
      BigInt C = std::move(Terms[I].Coef);
      C += scaled(RTerms[J].Coef);
      if (!C.isZero()) {
        Out[W].Var = Terms[I].Var;
        Out[W].Coef = std::move(C);
        ++W;
      }
      ++I;
      ++J;
    } else if (Terms[I].Var < RTerms[J].Var) {
      Out[W].Var = Terms[I].Var;
      Out[W].Coef = std::move(Terms[I].Coef);
      ++W;
      ++I;
    } else {
      Out[W].Var = RTerms[J].Var;
      Out[W].Coef = scaled(RTerms[J].Coef);
      ++W;
      ++J;
    }
  }
  for (; I < Size; ++I, ++W) {
    Out[W].Var = Terms[I].Var;
    Out[W].Coef = std::move(Terms[I].Coef);
  }
  for (; J < RN; ++J, ++W) {
    Out[W].Var = RTerms[J].Var;
    Out[W].Coef = scaled(RTerms[J].Coef);
  }
  adoptTerms(Out, W);
  if (isInlineRep())
    noteInlineOp();
}

AffineExpr AffineExpr::operator-() const {
  AffineExpr R;
  R.Const = -Const;
  R.growTo(Size);
  for (uint32_t I = 0; I < Size; ++I)
    new (R.Terms + I) Term{Terms[I].Var, -Terms[I].Coef};
  R.Size = Size;
  return R;
}

AffineExpr &AffineExpr::operator+=(const AffineExpr &RHS) {
  Const += RHS.Const;
  mergeAddScaled(RHS.Terms, RHS.Size, nullptr, false);
  return *this;
}

AffineExpr &AffineExpr::operator-=(const AffineExpr &RHS) {
  Const -= RHS.Const;
  mergeAddScaled(RHS.Terms, RHS.Size, nullptr, true);
  return *this;
}

AffineExpr &AffineExpr::operator*=(const BigInt &Factor) {
  if (Factor.isZero()) {
    destroyTerms();
    Const = BigInt(0);
    return *this;
  }
  Const *= Factor;
  for (uint32_t I = 0; I < Size; ++I)
    Terms[I].Coef *= Factor;
  return *this;
}

void AffineExpr::divCoeffsExact(const BigInt &G) {
  check(!G.isZero(), "division by zero");
  if (G.isOne())
    return;
  for (uint32_t I = 0; I < Size; ++I)
    Terms[I].Coef = BigInt::divExact(Terms[I].Coef, G);
}

void AffineExpr::substitute(VarId V, const AffineExpr &Replacement) {
  uint32_t Pos = findPos(V);
  if (Pos == Size)
    return;
  check(!Replacement.mentions(V),
        "substitution replacement mentions the substituted variable");
  BigInt C = std::move(Terms[Pos].Coef);
  eraseAt(Pos);
  Const += C * Replacement.Const;
  mergeAddScaled(Replacement.Terms, Replacement.Size, &C, false);
}

void AffineExpr::renameVar(VarId From, VarId To) {
  uint32_t Pos = findPos(From);
  if (Pos == Size)
    return;
  check(findPos(To) == Size, "rename target already present");
  BigInt C = std::move(Terms[Pos].Coef);
  eraseAt(Pos);
  insertAt(lowerPos(To), To, std::move(C));
}

BigInt AffineExpr::evaluate(const Assignment &Values) const {
  BigInt R = Const;
  auto It = Values.begin(), End = Values.end();
  for (uint32_t I = 0; I < Size; ++I) {
    while (It != End && It->first < Terms[I].Var)
      ++It;
    check(It != End && It->first == Terms[I].Var,
          "unbound variable in evaluate");
    R += Terms[I].Coef * It->second;
  }
  return R;
}

BigInt AffineExpr::coeffGcd() const {
  BigInt G(0);
  for (uint32_t I = 0; I < Size; ++I) {
    G = BigInt::gcd(G, Terms[I].Coef);
    if (G.isOne())
      break;
  }
  return G;
}

void AffineExpr::sortedNameOrder(uint32_t *Idx) const {
  for (uint32_t I = 0; I < Size; ++I)
    Idx[I] = I;
  for (uint32_t I = 1; I < Size; ++I) {
    uint32_t K = Idx[I];
    const std::string &Name = varName(Terms[K].Var);
    uint32_t J = I;
    while (J > 0 && Name.compare(varName(Terms[Idx[J - 1]].Var)) < 0) {
      Idx[J] = Idx[J - 1];
      --J;
    }
    Idx[J] = K;
  }
}

int AffineExpr::compareTermsByName(const AffineExpr &RHS) const {
  // Replicates std::map<std::string, BigInt>'s operator<: lexicographic
  // over (name, coefficient) pairs in name order, shorter-is-less on a
  // common prefix.  Distinct ids always mean distinct names, so the
  // string compare runs only on genuine mismatches.
  uint32_t LStack[16], RStack[16];
  std::vector<uint32_t> LHeap, RHeap;
  uint32_t *LIdx = LStack, *RIdx = RStack;
  if (Size > 16) {
    LHeap.resize(Size);
    LIdx = LHeap.data();
  }
  if (RHS.Size > 16) {
    RHeap.resize(RHS.Size);
    RIdx = RHeap.data();
  }
  sortedNameOrder(LIdx);
  RHS.sortedNameOrder(RIdx);
  uint32_t N = std::min(Size, RHS.Size);
  for (uint32_t K = 0; K < N; ++K) {
    const Term &L = Terms[LIdx[K]];
    const Term &R = RHS.Terms[RIdx[K]];
    if (L.Var != R.Var)
      return varName(L.Var).compare(varName(R.Var));
    if (L.Coef != R.Coef)
      return L.Coef < R.Coef ? -1 : 1;
  }
  return Size < RHS.Size ? -1 : Size > RHS.Size ? 1 : 0;
}

const AffineExpr::Term &AffineExpr::leadTermByName() const {
  check(Size > 0, "leadTermByName of constant expression");
  uint32_t Best = 0;
  for (uint32_t I = 1; I < Size; ++I)
    if (compareVarNames(Terms[I].Var, Terms[Best].Var) < 0)
      Best = I;
  return Terms[Best];
}

std::string AffineExpr::toString() const {
  if (Size == 0)
    return Const.toString();
  std::ostringstream OS;
  bool First = true;
  forEachTermByName([&](VarId V, const BigInt &C) {
    if (First) {
      if (C.isMinusOne())
        OS << "-";
      else if (!C.isOne())
        OS << C << "*";
    } else if (C.isPositive()) {
      OS << " + ";
      if (!C.isOne())
        OS << C << "*";
    } else {
      OS << " - ";
      if (!C.isMinusOne())
        OS << -C << "*";
    }
    OS << varName(V);
    First = false;
  });
  if (Const.isPositive())
    OS << " + " << Const;
  else if (Const.isNegative())
    OS << " - " << -Const;
  return OS.str();
}

size_t AffineExpr::hash() const {
  size_t H = Const.hash();
  for (uint32_t I = 0; I < Size; ++I) {
    H = H * 131 + std::hash<VarId>()(Terms[I].Var);
    H = H * 131 + Terms[I].Coef.hash();
  }
  return H;
}

std::ostream &omega::operator<<(std::ostream &OS, const AffineExpr &E) {
  return OS << E.toString();
}
