//===- presburger/AffineExpr.cpp - Integer affine expressions ------------===//

#include "presburger/AffineExpr.h"

#include "support/Error.h"

#include <atomic>
#include <ostream>
#include <sstream>

using namespace omega;

namespace {

/// Per-thread scope for deterministic wildcard naming (see WildcardScope).
struct ScopeState {
  std::string Prefix;
  unsigned Counter = 0; ///< Next "$<Prefix>x<n>" suffix.
  unsigned Batches = 0; ///< Next nested fan-out batch id.
  ScopeState *Prev = nullptr;
};

thread_local ScopeState *CurScope = nullptr;
std::atomic<unsigned> GlobalCounter{0};
std::atomic<unsigned> GlobalBatches{0};

} // namespace

std::string omega::freshWildcard() {
  if (ScopeState *S = CurScope)
    return "$" + S->Prefix + "x" + std::to_string(S->Counter++);
  return "$" + std::to_string(GlobalCounter.fetch_add(1));
}

WildcardScope::WildcardScope(const std::string &Prefix) {
  // ScopeState is an incomplete type at the header's State pointer, and
  // the scope stack must pop in strict LIFO order even through exceptions
  // (the destructor owns it).  omegatidy: allow(naked-new)
  auto *S = new ScopeState;
  S->Prefix = Prefix;
  S->Prev = CurScope;
  CurScope = S;
  State = S;
}

WildcardScope::~WildcardScope() {
  auto *S = static_cast<ScopeState *>(State);
  check(CurScope == S, "wildcard scopes must nest strictly");
  CurScope = S->Prev;
  delete S;
}

bool omega::wildcardScopeActive() { return CurScope != nullptr; }

std::string omega::nextWildcardBatchPrefix() {
  if (ScopeState *S = CurScope)
    return S->Prefix + "b" + std::to_string(S->Batches++);
  return "g" + std::to_string(GlobalBatches.fetch_add(1));
}

void omega::resetWildcardState() {
  check(!CurScope, "cannot reset wildcard state inside a scope");
  GlobalCounter.store(0);
  GlobalBatches.store(0);
}

void AffineExpr::setCoeff(const std::string &Name, BigInt C) {
  if (C.isZero())
    Coeffs.erase(Name);
  else
    Coeffs[Name] = std::move(C);
}

AffineExpr AffineExpr::operator-() const {
  AffineExpr R;
  R.Const = -Const;
  for (const auto &[Name, C] : Coeffs)
    R.Coeffs.emplace(Name, -C);
  return R;
}

AffineExpr &AffineExpr::operator+=(const AffineExpr &RHS) {
  Const += RHS.Const;
  for (const auto &[Name, C] : RHS.Coeffs) {
    auto It = Coeffs.find(Name);
    if (It == Coeffs.end()) {
      Coeffs.emplace(Name, C);
      continue;
    }
    It->second += C;
    if (It->second.isZero())
      Coeffs.erase(It);
  }
  return *this;
}

AffineExpr &AffineExpr::operator-=(const AffineExpr &RHS) {
  return *this += -RHS;
}

AffineExpr &AffineExpr::operator*=(const BigInt &Factor) {
  if (Factor.isZero()) {
    Coeffs.clear();
    Const = BigInt(0);
    return *this;
  }
  Const *= Factor;
  for (auto &[Name, C] : Coeffs)
    C *= Factor;
  return *this;
}

void AffineExpr::divCoeffsExact(const BigInt &G) {
  check(!G.isZero(), "division by zero");
  if (G.isOne())
    return;
  for (auto &[Name, C] : Coeffs) {
    (void)Name;
    C = BigInt::divExact(C, G);
  }
}

void AffineExpr::substitute(const std::string &Name,
                            const AffineExpr &Replacement) {
  auto It = Coeffs.find(Name);
  if (It == Coeffs.end())
    return;
  check(!Replacement.mentions(Name),
        "substitution replacement mentions the substituted variable");
  BigInt C = It->second;
  Coeffs.erase(It);
  *this += C * Replacement;
}

void AffineExpr::renameVar(const std::string &From, const std::string &To) {
  auto It = Coeffs.find(From);
  if (It == Coeffs.end())
    return;
  check(!Coeffs.count(To), "rename target already present");
  BigInt C = std::move(It->second);
  Coeffs.erase(It);
  Coeffs.emplace(To, std::move(C));
}

BigInt AffineExpr::evaluate(const Assignment &Values) const {
  BigInt R = Const;
  for (const auto &[Name, C] : Coeffs) {
    auto It = Values.find(Name);
    check(It != Values.end(), "unbound variable in evaluate");
    R += C * It->second;
  }
  return R;
}

BigInt AffineExpr::coeffGcd() const {
  BigInt G(0);
  for (const auto &[Name, C] : Coeffs) {
    (void)Name;
    G = BigInt::gcd(G, C);
    if (G.isOne())
      break;
  }
  return G;
}

void AffineExpr::collectVars(VarSet &Out) const {
  for (const auto &[Name, C] : Coeffs) {
    (void)C;
    Out.insert(Name);
  }
}

std::string AffineExpr::toString() const {
  if (Coeffs.empty())
    return Const.toString();
  std::ostringstream OS;
  bool First = true;
  for (const auto &[Name, C] : Coeffs) {
    if (First) {
      if (C.isMinusOne())
        OS << "-";
      else if (!C.isOne())
        OS << C << "*";
    } else if (C.isPositive()) {
      OS << " + ";
      if (!C.isOne())
        OS << C << "*";
    } else {
      OS << " - ";
      if (!C.isMinusOne())
        OS << -C << "*";
    }
    OS << Name;
    First = false;
  }
  if (Const.isPositive())
    OS << " + " << Const;
  else if (Const.isNegative())
    OS << " - " << -Const;
  return OS.str();
}

size_t AffineExpr::hash() const {
  size_t H = Const.hash();
  for (const auto &[Name, C] : Coeffs) {
    H = H * 131 + std::hash<std::string>()(Name);
    H = H * 131 + C.hash();
  }
  return H;
}

std::ostream &omega::operator<<(std::ostream &OS, const AffineExpr &E) {
  return OS << E.toString();
}
