//===- presburger/Parser.h - Text syntax for formulas ----------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small concrete syntax for Presburger formulas, used throughout the
/// tests, examples and benchmarks.  Grammar (informal):
///
///   formula := and-expr ( "||" and-expr )*
///   and     := not-expr ( "&&" not-expr )*
///   not     := "!" not | quant | "(" formula ")" | atom | TRUE | FALSE
///   quant   := ("exists" | "forall") "(" name ("," name)* ":" formula ")"
///   atom    := expr-list ( cmp expr-list )+      chains: 1 <= i,j <= n
///            | INT "|" expr                      stride: 3 | n - 1
///   cmp     := "<=" | "<" | "=" | "==" | ">=" | ">" | "!="
///   expr    := term ( ("+"|"-") term )*
///   term    := factor ( "*" factor | "mod" INT )*
///   factor  := INT | NAME | "-" factor | "(" expr ")"
///            | "floor" "(" expr "/" INT ")" | "ceil" "(" expr "/" INT ")"
///
/// Multiplication must have a constant operand (the language is linear);
/// floor/ceil/mod lower per §3 of the paper via NonLinear.h.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_PRESBURGER_PARSER_H
#define OMEGA_PRESBURGER_PARSER_H

#include "presburger/Formula.h"

#include <optional>
#include <string>
#include <string_view>

namespace omega {

/// Outcome of a parse: a formula, or a diagnostic.
struct ParseResult {
  std::optional<Formula> Value;
  std::string Error; ///< Non-empty iff !Value; includes character offset.

  explicit operator bool() const { return Value.has_value(); }
};

/// Parses \p Text into a Formula.
ParseResult parseFormula(std::string_view Text);

/// Convenience wrapper that asserts success; for tests and examples whose
/// formulas are literals.
Formula parseFormulaOrDie(std::string_view Text);

} // namespace omega

#endif // OMEGA_PRESBURGER_PARSER_H
