//===- presburger/Parser.cpp - Text syntax for formulas ------------------===//

#include "presburger/Parser.h"

#include "presburger/NonLinear.h"
#include "support/Budget.h"
#include "support/Error.h"

#include <cctype>
#include <sstream>
#include <vector>

using namespace omega;

namespace {

enum class TokKind {
  End,
  Int,
  Name,
  LParen,
  RParen,
  Comma,
  Colon,
  Plus,
  Minus,
  Star,
  Slash,
  Bar,    // stride divides
  AndAnd,
  OrOr,
  Bang,
  Le,
  Lt,
  Ge,
  Gt,
  Eq,
  Ne,
  KwExists,
  KwForall,
  KwMod,
  KwFloor,
  KwCeil,
  KwTrue,
  KwFalse,
  Error
};

struct Token {
  TokKind Kind;
  std::string Text;
  size_t Pos;
};

std::vector<Token> lex(std::string_view S, std::string &Error) {
  std::vector<Token> Toks;
  size_t I = 0;
  auto Push = [&](TokKind K, size_t Start, size_t Len) {
    Toks.push_back({K, std::string(S.substr(Start, Len)), Start});
  };
  while (I < S.size()) {
    char C = S[I];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = I;
      while (I < S.size() && std::isdigit(static_cast<unsigned char>(S[I])))
        ++I;
      Push(TokKind::Int, Start, I - Start);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < S.size() &&
             (std::isalnum(static_cast<unsigned char>(S[I])) || S[I] == '_'))
        ++I;
      std::string Word(S.substr(Start, I - Start));
      TokKind K = TokKind::Name;
      if (Word == "exists")
        K = TokKind::KwExists;
      else if (Word == "forall")
        K = TokKind::KwForall;
      else if (Word == "mod")
        K = TokKind::KwMod;
      else if (Word == "floor")
        K = TokKind::KwFloor;
      else if (Word == "ceil")
        K = TokKind::KwCeil;
      else if (Word == "TRUE" || Word == "true")
        K = TokKind::KwTrue;
      else if (Word == "FALSE" || Word == "false")
        K = TokKind::KwFalse;
      else if (Word == "and")
        K = TokKind::AndAnd;
      else if (Word == "or")
        K = TokKind::OrOr;
      else if (Word == "not")
        K = TokKind::Bang;
      Toks.push_back({K, std::move(Word), Start});
      continue;
    }
    auto Two = [&](char A, char B) {
      return C == A && I + 1 < S.size() && S[I + 1] == B;
    };
    if (Two('&', '&')) {
      Push(TokKind::AndAnd, I, 2);
      I += 2;
      continue;
    }
    if (Two('|', '|')) {
      Push(TokKind::OrOr, I, 2);
      I += 2;
      continue;
    }
    if (Two('<', '=')) {
      Push(TokKind::Le, I, 2);
      I += 2;
      continue;
    }
    if (Two('>', '=')) {
      Push(TokKind::Ge, I, 2);
      I += 2;
      continue;
    }
    if (Two('=', '=')) {
      Push(TokKind::Eq, I, 2);
      I += 2;
      continue;
    }
    if (Two('!', '=')) {
      Push(TokKind::Ne, I, 2);
      I += 2;
      continue;
    }
    switch (C) {
    case '(':
      Push(TokKind::LParen, I, 1);
      break;
    case ')':
      Push(TokKind::RParen, I, 1);
      break;
    case ',':
      Push(TokKind::Comma, I, 1);
      break;
    case ':':
      Push(TokKind::Colon, I, 1);
      break;
    case '+':
      Push(TokKind::Plus, I, 1);
      break;
    case '-':
      Push(TokKind::Minus, I, 1);
      break;
    case '*':
      Push(TokKind::Star, I, 1);
      break;
    case '/':
      Push(TokKind::Slash, I, 1);
      break;
    case '|':
      Push(TokKind::Bar, I, 1);
      break;
    case '!':
      Push(TokKind::Bang, I, 1);
      break;
    case '<':
      Push(TokKind::Lt, I, 1);
      break;
    case '>':
      Push(TokKind::Gt, I, 1);
      break;
    case '=':
      Push(TokKind::Eq, I, 1);
      break;
    default: {
      std::ostringstream OS;
      OS << "unexpected character '" << C << "' at offset " << I;
      Error = OS.str();
      return Toks;
    }
    }
    ++I;
  }
  Toks.push_back({TokKind::End, "", S.size()});
  return Toks;
}

/// Recursive-descent parser with token-index backtracking for the
/// atom-vs-parenthesized-formula ambiguity.
class Parser {
public:
  explicit Parser(std::vector<Token> Toks) : Toks(std::move(Toks)) {}

  std::optional<Formula> run(std::string &Error) {
    std::optional<Formula> F = parseOr();
    if (F && peek().Kind != TokKind::End)
      F = fail("trailing input");
    if (!F) {
      Error = Diag;
      return std::nullopt;
    }
    return F;
  }

private:
  const Token &peek(unsigned Ahead = 0) const {
    size_t I = std::min(Idx + Ahead, Toks.size() - 1);
    return Toks[I];
  }
  const Token &advance() { return Toks[Idx++]; }
  bool accept(TokKind K) {
    if (peek().Kind != K)
      return false;
    ++Idx;
    return true;
  }
  std::nullopt_t fail(const std::string &Msg) {
    // Keep the diagnostic from the furthest point reached.
    if (Diag.empty() || peek().Pos >= DiagPos) {
      std::ostringstream OS;
      OS << Msg << " at offset " << peek().Pos;
      Diag = OS.str();
      DiagPos = peek().Pos;
    }
    return std::nullopt;
  }
  bool expect(TokKind K, const char *What) {
    if (accept(K))
      return true;
    fail(std::string("expected ") + What);
    return false;
  }

  /// Parses an Int token's text through the fallible channel: the lexer
  /// only emits digit runs, but tool-facing input must never be able to
  /// reach BigInt's fatal-on-malformed string constructor.
  std::optional<BigInt> intValue(const Token &T) {
    BigInt V;
    if (!BigInt::fromString(T.Text, V)) {
      fail("malformed integer literal");
      return std::nullopt;
    }
    return V;
  }

  std::optional<Formula> parseOr() {
    std::optional<Formula> L = parseAnd();
    if (!L)
      return std::nullopt;
    std::vector<Formula> Parts{*L};
    while (accept(TokKind::OrOr)) {
      std::optional<Formula> R = parseAnd();
      if (!R)
        return std::nullopt;
      Parts.push_back(*R);
    }
    return Formula::disj(std::move(Parts));
  }

  std::optional<Formula> parseAnd() {
    std::optional<Formula> L = parseNot();
    if (!L)
      return std::nullopt;
    std::vector<Formula> Parts{*L};
    while (accept(TokKind::AndAnd)) {
      std::optional<Formula> R = parseNot();
      if (!R)
        return std::nullopt;
      Parts.push_back(*R);
    }
    return Formula::conj(std::move(Parts));
  }

  std::optional<Formula> parseNot() {
    if (accept(TokKind::Bang)) {
      std::optional<Formula> F = parseNot();
      if (!F)
        return std::nullopt;
      return Formula::negation(*F);
    }
    if (peek().Kind == TokKind::KwExists || peek().Kind == TokKind::KwForall) {
      bool IsExists = advance().Kind == TokKind::KwExists;
      if (!expect(TokKind::LParen, "'(' after quantifier"))
        return std::nullopt;
      VarSet Vars;
      do {
        if (peek().Kind != TokKind::Name) {
          fail("expected variable name");
          return std::nullopt;
        }
        Vars.insert(advance().Text);
      } while (accept(TokKind::Comma));
      if (!expect(TokKind::Colon, "':' after quantified variables"))
        return std::nullopt;
      std::optional<Formula> Body = parseOr();
      if (!Body)
        return std::nullopt;
      if (!expect(TokKind::RParen, "')' closing quantifier"))
        return std::nullopt;
      return IsExists ? Formula::exists(std::move(Vars), *Body)
                      : Formula::forall(std::move(Vars), *Body);
    }
    if (accept(TokKind::KwTrue))
      return Formula::trueFormula();
    if (accept(TokKind::KwFalse))
      return Formula::falseFormula();

    // Try an atom; on failure fall back to a parenthesized formula.
    size_t Save = Idx;
    if (std::optional<Formula> A = parseAtom())
      return A;
    Idx = Save;
    if (accept(TokKind::LParen)) {
      std::optional<Formula> F = parseOr();
      if (!F)
        return std::nullopt;
      if (!expect(TokKind::RParen, "')'"))
        return std::nullopt;
      return F;
    }
    fail("expected formula");
    return std::nullopt;
  }

  static bool isCmp(TokKind K) {
    return K == TokKind::Le || K == TokKind::Lt || K == TokKind::Ge ||
           K == TokKind::Gt || K == TokKind::Eq || K == TokKind::Ne;
  }

  /// One comparison; Ne expands to a disjunction.  Returns nullopt when
  /// \p Op is not a comparison token (the callers' isCmp guard makes that
  /// unreachable today, but a parse-layer helper must stay abort-free).
  static std::optional<Formula> buildCmp(const AffineExpr &A, TokKind Op,
                                         const AffineExpr &B) {
    switch (Op) {
    case TokKind::Le:
      return Formula::atom(Constraint::le(A, B));
    case TokKind::Lt:
      return Formula::atom(Constraint::lt(A, B));
    case TokKind::Ge:
      return Formula::atom(Constraint::ge(A, B));
    case TokKind::Gt:
      return Formula::atom(Constraint::gt(A, B));
    case TokKind::Eq:
      return Formula::atom(Constraint::eq(A, B));
    case TokKind::Ne:
      return Formula::disj({Formula::atom(Constraint::lt(A, B)),
                            Formula::atom(Constraint::gt(A, B))});
    default:
      return std::nullopt;
    }
  }

  std::optional<Formula> parseAtom() {
    // Stride atom: INT '|' expr.
    if (peek().Kind == TokKind::Int && peek(1).Kind == TokKind::Bar) {
      std::optional<BigInt> ModV = intValue(peek());
      if (!ModV)
        return std::nullopt;
      BigInt Mod = std::move(*ModV);
      Idx += 2;
      if (!Mod.isPositive()) {
        fail("stride modulus must be positive");
        return std::nullopt;
      }
      std::optional<LoweredExpr> E = parseExpr();
      if (!E)
        return std::nullopt;
      Formula Atom = Formula::atom(Constraint::stride(Mod, E->Expr));
      return wrapSide(std::move(Atom), E->Side);
    }

    std::optional<std::vector<LoweredExpr>> Prev = parseExprList();
    if (!Prev)
      return std::nullopt;
    if (!isCmp(peek().Kind)) {
      fail("expected comparison operator");
      return std::nullopt;
    }
    Conjunct Side;
    std::vector<Formula> Cmps;
    while (isCmp(peek().Kind)) {
      TokKind Op = advance().Kind;
      std::optional<std::vector<LoweredExpr>> Next = parseExprList();
      if (!Next)
        return std::nullopt;
      for (const LoweredExpr &A : *Prev)
        for (const LoweredExpr &B : *Next) {
          std::optional<Formula> Cmp = buildCmp(A.Expr, Op, B.Expr);
          if (!Cmp) {
            fail("expected comparison operator");
            return std::nullopt;
          }
          Cmps.push_back(std::move(*Cmp));
        }
      for (const LoweredExpr &A : *Prev)
        Side.addAll(A.Side);
      Prev = std::move(Next);
    }
    for (const LoweredExpr &A : *Prev)
      Side.addAll(A.Side);
    return wrapSide(Formula::conj(std::move(Cmps)), Side);
  }

  /// Conjoins floor/ceil/mod side conditions and binds their wildcards.
  static Formula wrapSide(Formula F, const Conjunct &Side) {
    if (Side.wildcards().empty() && Side.constraints().empty())
      return F;
    std::vector<Formula> Parts;
    for (const Constraint &C : Side.constraints())
      Parts.push_back(Formula::atom(C));
    Parts.push_back(std::move(F));
    return Formula::exists(Side.wildcards(), Formula::conj(std::move(Parts)));
  }

  std::optional<std::vector<LoweredExpr>> parseExprList() {
    std::vector<LoweredExpr> List;
    do {
      std::optional<LoweredExpr> E = parseExpr();
      if (!E)
        return std::nullopt;
      List.push_back(std::move(*E));
    } while (accept(TokKind::Comma));
    return List;
  }

  std::optional<LoweredExpr> parseExpr() {
    std::optional<LoweredExpr> L = parseTerm();
    if (!L)
      return std::nullopt;
    while (peek().Kind == TokKind::Plus || peek().Kind == TokKind::Minus) {
      bool Neg = advance().Kind == TokKind::Minus;
      std::optional<LoweredExpr> R = parseTerm();
      if (!R)
        return std::nullopt;
      L->Expr += Neg ? -R->Expr : R->Expr;
      L->Side.addAll(R->Side);
    }
    return L;
  }

  std::optional<LoweredExpr> parseTerm() {
    std::optional<LoweredExpr> L = parseFactor();
    if (!L)
      return std::nullopt;
    while (true) {
      if (accept(TokKind::Star)) {
        std::optional<LoweredExpr> R = parseFactor();
        if (!R)
          return std::nullopt;
        if (!L->Expr.isConstant() && !R->Expr.isConstant()) {
          fail("nonlinear product (one operand of '*' must be constant)");
          return std::nullopt;
        }
        if (L->Expr.isConstant()) {
          BigInt C = L->Expr.constant();
          L->Expr = R->Expr * C;
        } else {
          L->Expr *= R->Expr.constant();
        }
        L->Side.addAll(R->Side);
        continue;
      }
      if (peek().Kind == TokKind::KwMod) {
        advance();
        if (peek().Kind != TokKind::Int) {
          fail("expected integer modulus after 'mod'");
          return std::nullopt;
        }
        std::optional<BigInt> Mod = intValue(advance());
        if (!Mod)
          return std::nullopt;
        if (!Mod->isPositive()) {
          fail("modulus must be positive");
          return std::nullopt;
        }
        LoweredExpr M = lowerMod(L->Expr, *Mod);
        M.Side.addAll(L->Side);
        std::swap(M.Side, L->Side);
        L->Expr = std::move(M.Expr);
        continue;
      }
      break;
    }
    return L;
  }

  std::optional<LoweredExpr> parseFactor() {
    if (peek().Kind == TokKind::Int) {
      std::optional<BigInt> C = intValue(advance());
      if (!C)
        return std::nullopt;
      LoweredExpr E;
      E.Expr = AffineExpr(std::move(*C));
      return E;
    }
    if (peek().Kind == TokKind::Name) {
      LoweredExpr E;
      E.Expr = AffineExpr::variable(advance().Text);
      return E;
    }
    if (accept(TokKind::Minus)) {
      std::optional<LoweredExpr> E = parseFactor();
      if (!E)
        return std::nullopt;
      E->Expr = -E->Expr;
      return E;
    }
    if (accept(TokKind::LParen)) {
      std::optional<LoweredExpr> E = parseExpr();
      if (!E)
        return std::nullopt;
      if (!expect(TokKind::RParen, "')'"))
        return std::nullopt;
      return E;
    }
    if (peek().Kind == TokKind::KwFloor || peek().Kind == TokKind::KwCeil) {
      bool IsFloor = advance().Kind == TokKind::KwFloor;
      if (!expect(TokKind::LParen, "'(' after floor/ceil"))
        return std::nullopt;
      std::optional<LoweredExpr> E = parseExpr();
      if (!E)
        return std::nullopt;
      if (!expect(TokKind::Slash, "'/' in floor/ceil"))
        return std::nullopt;
      if (peek().Kind != TokKind::Int) {
        fail("expected integer divisor");
        return std::nullopt;
      }
      std::optional<BigInt> DivV = intValue(advance());
      if (!DivV)
        return std::nullopt;
      BigInt Div = std::move(*DivV);
      if (!Div.isPositive()) {
        fail("divisor must be positive");
        return std::nullopt;
      }
      if (!expect(TokKind::RParen, "')' closing floor/ceil"))
        return std::nullopt;
      LoweredExpr R =
          IsFloor ? lowerFloor(E->Expr, Div) : lowerCeil(E->Expr, Div);
      R.Side.addAll(E->Side);
      return R;
    }
    fail("expected expression");
    return std::nullopt;
  }

  std::vector<Token> Toks;
  size_t Idx = 0;
  std::string Diag;
  size_t DiagPos = 0;
};

} // namespace

ParseResult omega::parseFormula(std::string_view Text) {
  ParseResult R;
  std::string LexError;
  std::vector<Token> Toks = lex(Text, LexError);
  if (!LexError.empty()) {
    R.Error = LexError;
    return R;
  }
  // Under an active EffortBudget, oversized literals are rejected here as
  // ordinary parse diagnostics (not BudgetExceeded throws) so malformed
  // input never reaches the solver at all.
  if (const std::shared_ptr<BudgetState> &B = activeBudget()) {
    if (uint64_t MaxBits = B->Limits.MaxCoefficientBits) {
      for (const Token &T : Toks) {
        BigInt V;
        if (T.Kind == TokKind::Int &&
            (!BigInt::fromString(T.Text, V) || V.bitWidth() > MaxBits)) {
          R.Error = "integer literal exceeds budget bits=" +
                    std::to_string(MaxBits) + " at offset " +
                    std::to_string(T.Pos);
          return R;
        }
      }
    }
  }
  Parser P(std::move(Toks));
  std::string ParseError;
  R.Value = P.run(ParseError);
  if (!R.Value)
    R.Error = ParseError.empty() ? "parse error" : ParseError;
  return R;
}

Formula omega::parseFormulaOrDie(std::string_view Text) {
  ParseResult R = parseFormula(Text);
  check(bool(R), "formula literal failed to parse");
  return *R.Value;
}
