//===- presburger/VarTable.cpp - Interned variable identities ------------===//

#include "presburger/VarTable.h"

#include "presburger/Var.h"
#include "support/Error.h"
#include "support/ThreadAnnotations.h"

#include <atomic>
#include <unordered_map>

using namespace omega;

namespace {

/// Chunked stable string storage: names never move once published, so
/// varName() can read without a lock and the intern map can key on
/// string_views into the chunks.
constexpr uint32_t ChunkShift = 10; // 1024 names per chunk.
constexpr uint32_t ChunkSize = 1u << ChunkShift;
constexpr uint32_t MaxChunks = 1u << (31 - ChunkShift);

struct Chunk {
  std::string Names[ChunkSize];
};

struct Table {
  std::atomic<Chunk *> Chunks[MaxChunks] = {};
  std::atomic<uint32_t> Count{0};
  Mutex InternMu;
  /// Keys are views into chunk storage (stable for the process lifetime).
  std::unordered_map<std::string_view, uint32_t> Index
      OMEGA_GUARDED_BY(InternMu);

  ~Table() {
    for (auto &C : Chunks)
      delete C.load(std::memory_order_relaxed);
  }
};

Table &table() {
  static Table T;
  return T;
}

uint32_t rawFor(uint32_t Idx, std::string_view Name) {
  bool Wildcard = !Name.empty() && Name[0] == '$';
  return Idx | (Wildcard ? VarId::WildcardBit : 0);
}

/// Per-thread scope for deterministic wildcard naming (see WildcardScope).
struct ScopeState {
  std::string Prefix;
  unsigned Counter = 0; ///< Next "$<Prefix>x<n>" suffix.
  unsigned Batches = 0; ///< Next nested fan-out batch id.
  ScopeState *Prev = nullptr;
};

thread_local ScopeState *CurScope = nullptr;
std::atomic<unsigned> GlobalCounter{0};
std::atomic<unsigned> GlobalBatches{0};

} // namespace

VarId omega::internVar(std::string_view Name) {
  Table &T = table();
  MutexLock Lock(T.InternMu);
  auto It = T.Index.find(Name);
  if (It != T.Index.end())
    return VarId(It->second);
  uint32_t Idx = T.Count.load(std::memory_order_relaxed);
  check(Idx < MaxChunks * ChunkSize, "variable table full");
  Chunk *C = T.Chunks[Idx >> ChunkShift].load(std::memory_order_relaxed);
  if (!C) {
    // Chunks are freed only by the table destructor. omegatidy: allow(naked-new)
    C = new Chunk;
    T.Chunks[Idx >> ChunkShift].store(C, std::memory_order_release);
  }
  std::string &Slot = C->Names[Idx & (ChunkSize - 1)];
  Slot.assign(Name.data(), Name.size());
  uint32_t Raw = rawFor(Idx, Slot);
  T.Index.emplace(std::string_view(Slot), Raw);
  // Publish: ids handed out below are only dereferenced after this store.
  T.Count.store(Idx + 1, std::memory_order_release);
  return VarId(Raw);
}

VarId omega::lookupVar(std::string_view Name) {
  Table &T = table();
  MutexLock Lock(T.InternMu);
  auto It = T.Index.find(Name);
  return It == T.Index.end() ? VarId() : VarId(It->second);
}

const std::string &omega::varName(VarId Id) {
  check(Id.valid(), "varName of invalid VarId");
  Table &T = table();
  uint32_t Idx = Id.index();
  check(Idx < T.Count.load(std::memory_order_acquire),
        "varName of unpublished VarId");
  Chunk *C = T.Chunks[Idx >> ChunkShift].load(std::memory_order_acquire);
  return C->Names[Idx & (ChunkSize - 1)];
}

int omega::compareVarNames(VarId L, VarId R) {
  if (L == R)
    return 0;
  return varName(L).compare(varName(R));
}

VarId omega::freshWildcardId() {
  if (ScopeState *S = CurScope) {
    std::string Name;
    Name.reserve(S->Prefix.size() + 8);
    Name += '$';
    Name += S->Prefix;
    Name += 'x';
    Name += std::to_string(S->Counter++);
    return internVar(Name);
  }
  return internVar("$" + std::to_string(GlobalCounter.fetch_add(1)));
}

uint32_t omega::varTableSize() {
  return table().Count.load(std::memory_order_acquire);
}

std::string omega::freshWildcard() { return varName(freshWildcardId()); }

WildcardScope::WildcardScope(const std::string &Prefix) {
  // ScopeState is an incomplete type at the header's State pointer, and
  // the scope stack must pop in strict LIFO order even through exceptions
  // (the destructor owns it).  omegatidy: allow(naked-new)
  auto *S = new ScopeState;
  S->Prefix = Prefix;
  S->Prev = CurScope;
  CurScope = S;
  State = S;
}

WildcardScope::~WildcardScope() {
  auto *S = static_cast<ScopeState *>(State);
  check(CurScope == S, "wildcard scopes must nest strictly");
  CurScope = S->Prev;
  delete S;
}

bool omega::wildcardScopeActive() { return CurScope != nullptr; }

std::string omega::nextWildcardBatchPrefix() {
  if (ScopeState *S = CurScope)
    return S->Prefix + "b" + std::to_string(S->Batches++);
  return "g" + std::to_string(GlobalBatches.fetch_add(1));
}

void omega::resetWildcardState() {
  check(!CurScope, "cannot reset wildcard state inside a scope");
  GlobalCounter.store(0);
  GlobalBatches.store(0);
}
