//===- presburger/Parallel.cpp - Deterministic disjunct fan-out ----------===//

#include "presburger/Parallel.h"

#include "support/Budget.h"
#include "support/QueryContext.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

using namespace omega;

void omega::forEachDisjunct(size_t N, const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  // The batch prefix is allocated on the calling thread, so its sequence —
  // and therefore every scope prefix below — is independent of the worker
  // count.
  const std::string Base = nextWildcardBatchPrefix();
  // Workers observe the caller's budget: the shared BudgetState (with its
  // cancellation token) is re-installed inside every task, so a limit
  // tripped by any thread cancels the whole batch — ThreadPool::run
  // rethrows the first BudgetExceeded on the calling thread after the
  // batch drains, and the batch's partial results are discarded with it.
  const std::shared_ptr<BudgetState> Budget = activeBudget();
  // Workers also observe the caller's query context and counter redirects:
  // pool threads carry none of their own, and the pool interleaves batches
  // from concurrent queries, so each task re-installs the enqueuing
  // thread's environment first — worker-side work attributes to (and reads
  // the knobs of) the query that spawned it, not whichever query last ran
  // on that thread.
  const QueryEnvironment Env = captureQueryEnvironment();
  // Spans opened inside a task parent to the span that was open here on
  // the enqueuing thread, so the exported tree has the same shape at every
  // worker count (DESIGN.md §12).  Inline execution matches: the open span
  // is then the parent directly.
  const uint64_t TraceParent = currentTraceSpan();
  auto RunOne = [&](size_t I) {
    QueryEnvironmentScope ES(Env);
    BudgetScope BS(Budget);
    TraceTaskScope TS(TraceParent);
    WildcardScope Scope(Base + "t" + std::to_string(I));
    Fn(I);
  };
  // Fan out only at top level: nested batches (scope already active) and
  // batches issued from a worker run inline, keeping per-batch nesting
  // deterministic.  The N > 1 cutoff is data-dependent, never
  // schedule-dependent, so it cannot break determinism.
  const unsigned Width = Env.Ctx ? Env.Ctx->Workers : 0;
  bool Parallel = N > 1 && Width >= 2 && !wildcardScopeActive() &&
                  !ThreadPool::onWorkerThread();
  if (!Parallel) {
    for (size_t I = 0; I < N; ++I)
      RunOne(I);
    return;
  }
  pipelineStats().ParallelBatches += 1;
  pipelineStats().ParallelTasks += N;
  ThreadPool::instance().run(N, Width, RunOne);
}
