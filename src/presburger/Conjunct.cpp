//===- presburger/Conjunct.cpp - Conjunctive clauses ---------------------===//

#include "presburger/Conjunct.h"

#include "support/Error.h"

#include <ostream>
#include <sstream>

using namespace omega;

void Conjunct::addAll(const Conjunct &Other) {
  for (const Constraint &C : Other.Items)
    Items.push_back(C);
  for (const std::string &W : Other.Wildcards)
    Wildcards.insert(W);
}

void Conjunct::pruneUnusedWildcards() {
  VarSet Used = mentionedVars();
  for (auto It = Wildcards.begin(); It != Wildcards.end();) {
    if (!Used.count(*It))
      It = Wildcards.erase(It);
    else
      ++It;
  }
}

VarSet Conjunct::mentionedVars() const {
  VarSet Out;
  for (const Constraint &C : Items)
    C.collectVars(Out);
  return Out;
}

VarSet Conjunct::freeVars() const {
  VarSet Out = mentionedVars();
  for (const std::string &W : Wildcards)
    Out.erase(W);
  return Out;
}

bool Conjunct::mentions(const std::string &Name) const {
  for (const Constraint &C : Items)
    if (C.mentions(Name))
      return true;
  return false;
}

void Conjunct::substitute(const std::string &Name,
                          const AffineExpr &Replacement) {
  for (Constraint &C : Items)
    C.substitute(Name, Replacement);
  Wildcards.erase(Name);
}

void Conjunct::renameVar(const std::string &From, const std::string &To) {
  check(From != To, "rename to same name");
  for (Constraint &C : Items)
    C.renameVar(From, To);
  if (Wildcards.erase(From))
    Wildcards.insert(To);
}

void Conjunct::refreshWildcards() {
  VarSet Old = Wildcards;
  for (const std::string &W : Old)
    renameVar(W, freshWildcard());
}

bool Conjunct::contains(const Assignment &Values) const {
  check(Wildcards.empty(),
        "Conjunct::contains requires a wildcard-free clause");
  for (const Constraint &C : Items)
    if (!C.holds(Values))
      return false;
  return true;
}

Conjunct Conjunct::merge(const Conjunct &A, const Conjunct &B) {
  Conjunct RA = A, RB = B;
  RA.refreshWildcards();
  RB.refreshWildcards();
  RA.addAll(RB);
  return RA;
}

void Conjunct::stridesToWildcards() {
  std::vector<Constraint> NewItems;
  NewItems.reserve(Items.size());
  for (Constraint &C : Items) {
    if (!C.isStride()) {
      NewItems.push_back(std::move(C));
      continue;
    }
    // c | e  ==>  ∃α: e - cα = 0.
    std::string Alpha = freshWildcard();
    AffineExpr E = C.expr();
    E.setCoeff(Alpha, -C.modulus());
    NewItems.push_back(Constraint::eq(std::move(E)));
    Wildcards.insert(Alpha);
  }
  Items = std::move(NewItems);
}

std::string Conjunct::toString() const {
  std::ostringstream OS;
  if (!Wildcards.empty()) {
    OS << "exists ";
    bool First = true;
    for (const std::string &W : Wildcards) {
      if (!First)
        OS << ", ";
      OS << W;
      First = false;
    }
    OS << ": ";
  }
  OS << "{";
  for (size_t I = 0; I < Items.size(); ++I) {
    if (I)
      OS << "; ";
    OS << " " << Items[I];
  }
  OS << (Items.empty() ? "}" : " }");
  return OS.str();
}

std::ostream &omega::operator<<(std::ostream &OS, const Conjunct &C) {
  return OS << C.toString();
}

CanonicalConjunct omega::canonicalConjunct(const Conjunct &In) {
  CanonicalConjunct Out;
  std::vector<Constraint> Ks;
  Ks.reserve(In.constraints().size());
  for (const Constraint &K : In.constraints()) {
    Constraint N = K;
    if (!N.normalize() || N.isTriviallyFalse()) {
      Out.C = Conjunct();
      Out.C.add(Constraint::ge(AffineExpr(-1)));
      Out.Key = "UNSAT";
      return Out;
    }
    if (N.isTriviallyTrue())
      continue;
    Ks.push_back(std::move(N));
  }
  std::sort(Ks.begin(), Ks.end());
  Ks.erase(std::unique(Ks.begin(), Ks.end()), Ks.end());

  std::ostringstream Key;
  for (Constraint &K : Ks) {
    Key << static_cast<int>(K.kind()) << '|';
    if (K.isStride())
      Key << K.modulus() << '|';
    Key << K.expr().toString() << '&';
    Out.C.add(std::move(K));
  }
  // Only wildcards the canonical constraints still mention are part of the
  // clause's meaning (and of the key).
  VarSet Used = Out.C.mentionedVars();
  Key << "W:";
  for (const std::string &W : In.wildcards())
    if (Used.count(W)) {
      Out.C.addWildcard(W);
      Key << W << ',';
    }
  Out.Key = Key.str();
  return Out;
}
