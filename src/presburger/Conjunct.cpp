//===- presburger/Conjunct.cpp - Conjunctive clauses ---------------------===//

#include "presburger/Conjunct.h"

#include "support/Error.h"

#include <algorithm>
#include <ostream>
#include <sstream>

using namespace omega;

void Conjunct::addAll(const Conjunct &Other) {
  for (const Constraint &C : Other.Items)
    Items.push_back(C);
  for (VarId W : Other.Wildcards.ids())
    Wildcards.insert(W);
}

void Conjunct::pruneUnusedWildcards() {
  VarSet Used = mentionedVars();
  const std::vector<VarId> Ids = Wildcards.ids();
  for (VarId W : Ids)
    if (!Used.contains(W))
      Wildcards.erase(W);
}

VarSet Conjunct::mentionedVars() const {
  VarSet Out;
  for (const Constraint &C : Items)
    C.collectVars(Out);
  return Out;
}

VarSet Conjunct::freeVars() const {
  VarSet Out = mentionedVars();
  for (VarId W : Wildcards.ids())
    Out.erase(W);
  return Out;
}

bool Conjunct::mentions(VarId V) const {
  for (const Constraint &C : Items)
    if (C.mentions(V))
      return true;
  return false;
}

bool Conjunct::mentions(const std::string &Name) const {
  VarId V = lookupVar(Name);
  return V.valid() && mentions(V);
}

void Conjunct::substitute(VarId V, const AffineExpr &Replacement) {
  for (Constraint &C : Items)
    C.substitute(V, Replacement);
  Wildcards.erase(V);
}

void Conjunct::substitute(const std::string &Name,
                          const AffineExpr &Replacement) {
  VarId V = lookupVar(Name);
  if (V.valid())
    substitute(V, Replacement);
}

void Conjunct::renameVar(VarId From, VarId To) {
  check(From != To, "rename to same name");
  for (Constraint &C : Items)
    C.renameVar(From, To);
  if (Wildcards.erase(From))
    Wildcards.insert(To);
}

void Conjunct::renameVar(const std::string &From, const std::string &To) {
  VarId F = lookupVar(From);
  if (!F.valid()) {
    check(From != To, "rename to same name");
    return;
  }
  renameVar(F, internVar(To));
}

void Conjunct::refreshWildcards() {
  const std::vector<VarId> Old = Wildcards.ids();
  for (VarId W : Old)
    renameVar(W, freshWildcardId());
}

bool Conjunct::contains(const Assignment &Values) const {
  check(Wildcards.empty(),
        "Conjunct::contains requires a wildcard-free clause");
  for (const Constraint &C : Items)
    if (!C.holds(Values))
      return false;
  return true;
}

Conjunct Conjunct::merge(const Conjunct &A, const Conjunct &B) {
  Conjunct RA = A, RB = B;
  RA.refreshWildcards();
  RB.refreshWildcards();
  RA.addAll(RB);
  return RA;
}

void Conjunct::stridesToWildcards() {
  std::vector<Constraint> NewItems;
  NewItems.reserve(Items.size());
  for (Constraint &C : Items) {
    if (!C.isStride()) {
      NewItems.push_back(std::move(C));
      continue;
    }
    // c | e  ==>  ∃α: e - cα = 0.
    VarId Alpha = freshWildcardId();
    AffineExpr E = C.expr();
    E.setCoeff(Alpha, -C.modulus());
    NewItems.push_back(Constraint::eq(std::move(E)));
    Wildcards.insert(Alpha);
  }
  Items = std::move(NewItems);
}

std::string Conjunct::toString() const {
  std::ostringstream OS;
  if (!Wildcards.empty()) {
    OS << "exists ";
    bool First = true;
    for (const std::string &W : Wildcards) {
      if (!First)
        OS << ", ";
      OS << W;
      First = false;
    }
    OS << ": ";
  }
  OS << "{";
  for (size_t I = 0; I < Items.size(); ++I) {
    if (I)
      OS << "; ";
    OS << " " << Items[I];
  }
  OS << (Items.empty() ? "}" : " }");
  return OS.str();
}

std::ostream &omega::operator<<(std::ostream &OS, const Conjunct &C) {
  return OS << C.toString();
}

CanonicalConjunct omega::canonicalConjunct(const Conjunct &In) {
  CanonicalConjunct Out;
  std::vector<Constraint> Ks;
  Ks.reserve(In.constraints().size());
  for (const Constraint &K : In.constraints()) {
    Constraint N = K;
    if (!N.normalize() || N.isTriviallyFalse()) {
      Out.C = Conjunct();
      Out.C.add(Constraint::ge(AffineExpr(-1)));
      Out.Key = "UNSAT";
      return Out;
    }
    if (N.isTriviallyTrue())
      continue;
    Ks.push_back(std::move(N));
  }
  std::sort(Ks.begin(), Ks.end());
  Ks.erase(std::unique(Ks.begin(), Ks.end()), Ks.end());

  // The key sweeps the flat rows: kind, modulus, then (id, coefficient)
  // pairs in storage (id) order plus the constant.  The constraint *order*
  // above is the observable name-based sort; only the per-constraint
  // rendering uses ids.
  std::string Key;
  Key.reserve(16 + Ks.size() * 24);
  for (Constraint &K : Ks) {
    Key += static_cast<char>('0' + static_cast<int>(K.kind()));
    Key += '|';
    if (K.isStride()) {
      Key += K.modulus().toString();
      Key += '|';
    }
    const AffineExpr &E = K.expr();
    for (const auto &[V, C] : E.terms()) {
      Key += std::to_string(V.raw());
      Key += ':';
      Key += C.toString();
      Key += ' ';
    }
    Key += 'c';
    Key += E.constant().toString();
    Key += '&';
    Out.C.add(std::move(K));
  }
  // Only wildcards the canonical constraints still mention are part of the
  // clause's meaning (and of the key).
  VarSet Used = Out.C.mentionedVars();
  Key += "W:";
  for (VarId W : In.wildcards().ids())
    if (Used.contains(W)) {
      Out.C.addWildcard(W);
      Key += std::to_string(W.raw());
      Key += ',';
    }
  Out.Key = std::move(Key);
  return Out;
}
