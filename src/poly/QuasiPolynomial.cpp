//===- poly/QuasiPolynomial.cpp - Symbolic counting values ---------------===//

#include "poly/QuasiPolynomial.h"

#include "support/Error.h"

#include <ostream>
#include <sstream>

using namespace omega;

Atom Atom::mod(AffineExpr Arg, BigInt Modulus) {
  check(Modulus.isPositive(), "mod atom needs positive modulus");
  Atom A;
  A.K = Kind::Mod;
  // Canonicalize: (e mod c) depends only on e's residues mod c.
  AffineExpr Canon;
  Canon.setConstant(BigInt::floorMod(Arg.constant(), Modulus));
  for (const auto &[Name, C] : Arg.terms())
    Canon.setCoeff(Name, BigInt::floorMod(C, Modulus));
  A.Arg = std::move(Canon);
  A.Modulus = std::move(Modulus);
  return A;
}

void Atom::collectVars(VarSet &Out) const {
  if (isSymbol())
    Out.insert(Name);
  else
    Arg.collectVars(Out);
}

bool Atom::mentions(const std::string &V) const {
  return isSymbol() ? Name == V : Arg.mentions(V);
}

BigInt Atom::evaluate(const Assignment &Values) const {
  if (isSymbol()) {
    auto It = Values.find(Name);
    check(It != Values.end(), "unbound symbol in Atom::evaluate");
    return It->second;
  }
  return BigInt::floorMod(Arg.evaluate(Values), Modulus);
}

std::string Atom::toString() const {
  if (isSymbol())
    return Name;
  std::ostringstream OS;
  OS << "(" << Arg << " mod " << Modulus << ")";
  return OS.str();
}

QuasiPolynomial::QuasiPolynomial(Rational C) {
  if (!C.isZero())
    Terms.emplace(Monomial(), std::move(C));
}

QuasiPolynomial QuasiPolynomial::fromAtom(Atom A) {
  // A constant mod-atom folds to its value.
  if (A.isMod() && A.arg().isConstant())
    return QuasiPolynomial(
        Rational(BigInt::floorMod(A.arg().constant(), A.modulus())));
  QuasiPolynomial P;
  Monomial M;
  M.emplace(std::move(A), 1);
  P.Terms.emplace(std::move(M), Rational(1));
  return P;
}

QuasiPolynomial QuasiPolynomial::fromAffine(const AffineExpr &E) {
  QuasiPolynomial P(Rational(E.constant()));
  for (const auto &[V, C] : E.terms())
    P += variable(varName(V)) * Rational(C);
  return P;
}

void QuasiPolynomial::addTerm(Monomial M, Rational C) {
  if (C.isZero())
    return;
  auto It = Terms.find(M);
  if (It == Terms.end()) {
    Terms.emplace(std::move(M), std::move(C));
    return;
  }
  It->second += C;
  if (It->second.isZero())
    Terms.erase(It);
}

QuasiPolynomial QuasiPolynomial::operator-() const {
  QuasiPolynomial R;
  for (const auto &[M, C] : Terms)
    R.Terms.emplace(M, -C);
  return R;
}

QuasiPolynomial &QuasiPolynomial::operator+=(const QuasiPolynomial &RHS) {
  for (const auto &[M, C] : RHS.Terms)
    addTerm(M, C);
  return *this;
}

QuasiPolynomial &QuasiPolynomial::operator-=(const QuasiPolynomial &RHS) {
  for (const auto &[M, C] : RHS.Terms)
    addTerm(M, -C);
  return *this;
}

QuasiPolynomial &QuasiPolynomial::operator*=(const QuasiPolynomial &RHS) {
  QuasiPolynomial Out;
  for (const auto &[ML, CL] : Terms)
    for (const auto &[MR, CR] : RHS.Terms) {
      Monomial M = ML;
      for (const auto &[A, E] : MR)
        M[A] += E;
      Out.addTerm(std::move(M), CL * CR);
    }
  return *this = std::move(Out);
}

QuasiPolynomial &QuasiPolynomial::operator*=(const Rational &C) {
  if (C.isZero()) {
    Terms.clear();
    return *this;
  }
  for (auto &[M, Coef] : Terms)
    Coef *= C;
  return *this;
}

QuasiPolynomial QuasiPolynomial::pow(const QuasiPolynomial &Base,
                                     unsigned E) {
  QuasiPolynomial R(Rational(1));
  QuasiPolynomial B = Base;
  while (E) {
    if (E & 1)
      R *= B;
    E >>= 1;
    if (E)
      B *= B;
  }
  return R;
}

unsigned QuasiPolynomial::degreeIn(const std::string &Name) const {
  Atom A = Atom::symbol(Name);
  unsigned D = 0;
  for (const auto &[M, C] : Terms) {
    (void)C;
    auto It = M.find(A);
    if (It != M.end())
      D = std::max(D, It->second);
  }
  return D;
}

std::vector<QuasiPolynomial>
QuasiPolynomial::coefficientsOf(const std::string &Name) const {
  Atom A = Atom::symbol(Name);
  std::vector<QuasiPolynomial> Out(degreeIn(Name) + 1);
  for (const auto &[M, C] : Terms) {
    unsigned D = 0;
    Monomial Rest;
    for (const auto &[At, E] : M) {
      if (At == A) {
        D = E;
        continue;
      }
      check(!At.mentions(Name), "mod atom mentions the variable being summed");
      Rest.emplace(At, E);
    }
    Out[D].addTerm(std::move(Rest), C);
  }
  return Out;
}

void QuasiPolynomial::substitute(const std::string &Name,
                                 const QuasiPolynomial &Value) {
  std::vector<QuasiPolynomial> Coefs = coefficientsOf(Name);
  QuasiPolynomial Out = Coefs[0];
  QuasiPolynomial Pow(Rational(1));
  for (size_t D = 1; D < Coefs.size(); ++D) {
    Pow *= Value;
    Out += Coefs[D] * Pow;
  }
  *this = std::move(Out);
}

bool QuasiPolynomial::mentions(const std::string &Name) const {
  for (const auto &[M, C] : Terms) {
    (void)C;
    for (const auto &[A, E] : M) {
      (void)E;
      if (A.mentions(Name))
        return true;
    }
  }
  return false;
}

void QuasiPolynomial::collectVars(VarSet &Out) const {
  for (const auto &[M, C] : Terms) {
    (void)C;
    for (const auto &[A, E] : M) {
      (void)E;
      A.collectVars(Out);
    }
  }
}

Rational QuasiPolynomial::evaluate(const Assignment &Values) const {
  Rational R(0);
  for (const auto &[M, C] : Terms) {
    Rational T = C;
    for (const auto &[A, E] : M)
      T *= Rational::pow(Rational(A.evaluate(Values)), E);
    R += T;
  }
  return R;
}

std::string QuasiPolynomial::toString() const {
  if (Terms.empty())
    return "0";
  std::ostringstream OS;
  bool First = true;
  // Print higher-degree monomials first for a conventional look.
  std::vector<std::pair<const Monomial *, const Rational *>> Order;
  Order.reserve(Terms.size());
  for (const auto &[M, C] : Terms)
    Order.push_back({&M, &C});
  std::stable_sort(Order.begin(), Order.end(),
                   [](const auto &L, const auto &R) {
                     unsigned DL = 0, DR = 0;
                     for (const auto &[A, E] : *L.first)
                       DL += E;
                     for (const auto &[A, E] : *R.first)
                       DR += E;
                     return DL > DR;
                   });
  for (const auto &[M, C] : Order) {
    Rational Coef = *C;
    if (First) {
      if (Coef.sign() < 0) {
        OS << "-";
        Coef = -Coef;
      }
    } else if (Coef.sign() < 0) {
      OS << " - ";
      Coef = -Coef;
    } else {
      OS << " + ";
    }
    bool NeedStar = false;
    if (!(Coef == Rational(1)) || M->empty()) {
      OS << Coef.toString();
      NeedStar = true;
    }
    for (const auto &[A, E] : *M) {
      if (NeedStar)
        OS << "*";
      OS << A.toString();
      if (E > 1)
        OS << "^" << E;
      NeedStar = true;
    }
    First = false;
  }
  return OS.str();
}

std::ostream &omega::operator<<(std::ostream &OS, const QuasiPolynomial &P) {
  return OS << P.toString();
}
