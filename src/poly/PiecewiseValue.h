//===- poly/PiecewiseValue.h - Guarded symbolic answers ---------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shape of the paper's answers: a sum of guarded terms
/// `(Σ : guard : value)` where each guard is a conjunction of affine and
/// stride constraints over the symbolic constants, and each value is a
/// quasi-polynomial.  The value of the whole at a point is the SUM of the
/// values of all pieces whose guard holds (the paper's answers add several
/// guarded summations, e.g. the two terms of Example 6).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_POLY_PIECEWISEVALUE_H
#define OMEGA_POLY_PIECEWISEVALUE_H

#include "poly/QuasiPolynomial.h"
#include "presburger/Conjunct.h"

#include <iosfwd>
#include <vector>

namespace omega {

/// One guarded term.
struct Piece {
  Conjunct Guard;        ///< Wildcard-free; affine + stride constraints.
  QuasiPolynomial Value; ///< The term's value where the guard holds.
};

/// A sum of guarded terms, plus an "unbounded" marker for divergent sums.
class PiecewiseValue {
public:
  PiecewiseValue() = default;
  explicit PiecewiseValue(QuasiPolynomial Unguarded) {
    Pieces.push_back({Conjunct(), std::move(Unguarded)});
  }

  static PiecewiseValue unbounded() {
    PiecewiseValue V;
    V.Unbounded = true;
    return V;
  }

  const std::vector<Piece> &pieces() const { return Pieces; }
  std::vector<Piece> &pieces() { return Pieces; }
  bool isUnbounded() const { return Unbounded; }

  void add(Piece P) { Pieces.push_back(std::move(P)); }
  /// Concatenates the pieces of \p Other into this value (summing).
  PiecewiseValue &operator+=(const PiecewiseValue &Other);

  /// Scales every piece's value.
  PiecewiseValue &operator*=(const Rational &C);

  /// Evaluates at a full assignment of the symbolic constants.  Asserts
  /// the value is bounded.
  Rational evaluate(const Assignment &Values) const;
  /// Evaluates and asserts the result is an integer (true of any solution
  /// count).
  BigInt evaluateInt(const Assignment &Values) const;

  /// Syntactic cleanup: merges pieces with identical guards, drops
  /// zero-valued pieces.  (Feasibility-based pruning lives in counting, to
  /// keep this module independent of the Omega test.)
  void mergeSyntactic();

  std::string toString() const;

private:
  std::vector<Piece> Pieces;
  bool Unbounded = false;
};

std::ostream &operator<<(std::ostream &OS, const PiecewiseValue &V);

} // namespace omega

#endif // OMEGA_POLY_PIECEWISEVALUE_H
