//===- poly/QuasiPolynomial.h - Symbolic counting values --------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value domain of the paper's answers: polynomials with rational
/// coefficients over *atoms*, where an atom is either a plain variable or a
/// periodic term `(e mod c)` with `e` affine over symbolic constants
/// (§4.2.1's "substitute (U - U') / u for floor(U/u), where U' = U mod u").
/// Example 6's answer `(3n² + 2n - n mod 2) / 4` is the quasi-polynomial
///   3/4·n² + 1/2·n - 1/4·Mod(n, 2).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_POLY_QUASIPOLYNOMIAL_H
#define OMEGA_POLY_QUASIPOLYNOMIAL_H

#include "presburger/AffineExpr.h"
#include "support/Error.h"
#include "support/Rational.h"

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace omega {

/// A multiplicative atom: a variable, or a periodic term (Arg mod Modulus).
class Atom {
public:
  enum class Kind { Symbol, Mod };

  static Atom symbol(std::string Name) {
    Atom A;
    A.K = Kind::Symbol;
    A.Name = std::move(Name);
    return A;
  }
  /// (Arg mod Modulus); Arg is canonicalized coefficient-wise into
  /// [0, Modulus) since the value only depends on Arg mod Modulus.
  static Atom mod(AffineExpr Arg, BigInt Modulus);

  Kind kind() const { return K; }
  bool isSymbol() const { return K == Kind::Symbol; }
  bool isMod() const { return K == Kind::Mod; }
  const std::string &name() const {
    check(isSymbol(), "name of non-symbol atom");
    return Name;
  }
  const AffineExpr &arg() const {
    check(isMod(), "arg of non-mod atom");
    return Arg;
  }
  const BigInt &modulus() const {
    check(isMod(), "modulus of non-mod atom");
    return Modulus;
  }

  /// Variables this atom reads.
  void collectVars(VarSet &Out) const;
  bool mentions(const std::string &V) const;

  BigInt evaluate(const Assignment &Values) const;

  friend bool operator==(const Atom &L, const Atom &R) {
    return L.K == R.K && L.Name == R.Name && L.Modulus == R.Modulus &&
           L.Arg == R.Arg;
  }
  friend bool operator!=(const Atom &L, const Atom &R) { return !(L == R); }
  friend bool operator<(const Atom &L, const Atom &R) {
    if (L.K != R.K)
      return L.K < R.K;
    if (L.Name != R.Name)
      return L.Name < R.Name;
    if (L.Modulus != R.Modulus)
      return L.Modulus < R.Modulus;
    return L.Arg < R.Arg;
  }

  std::string toString() const;

private:
  Kind K = Kind::Symbol;
  std::string Name;   // Symbol.
  AffineExpr Arg;     // Mod.
  BigInt Modulus;     // Mod.
};

/// A monomial: atoms with positive integer exponents.
using Monomial = std::map<Atom, unsigned>;

/// Polynomial with Rational coefficients over Atoms.
class QuasiPolynomial {
public:
  QuasiPolynomial() = default;
  /// Implicit constant polynomial.
  QuasiPolynomial(Rational C);
  QuasiPolynomial(int C) : QuasiPolynomial(Rational(C)) {}

  static QuasiPolynomial variable(const std::string &Name) {
    return fromAtom(Atom::symbol(Name));
  }
  static QuasiPolynomial fromAtom(Atom A);
  /// Converts an affine expression (all variables become Symbol atoms).
  static QuasiPolynomial fromAffine(const AffineExpr &E);

  bool isZero() const { return Terms.empty(); }
  bool isConstant() const {
    return Terms.empty() || (Terms.size() == 1 && Terms.begin()->first.empty());
  }
  Rational constantValue() const {
    check(isConstant(), "not a constant polynomial");
    return Terms.empty() ? Rational(0) : Terms.begin()->second;
  }

  const std::map<Monomial, Rational> &terms() const { return Terms; }

  QuasiPolynomial operator-() const;
  QuasiPolynomial &operator+=(const QuasiPolynomial &RHS);
  QuasiPolynomial &operator-=(const QuasiPolynomial &RHS);
  QuasiPolynomial &operator*=(const QuasiPolynomial &RHS);
  QuasiPolynomial &operator*=(const Rational &C);

  friend QuasiPolynomial operator+(QuasiPolynomial L,
                                   const QuasiPolynomial &R) {
    return L += R;
  }
  friend QuasiPolynomial operator-(QuasiPolynomial L,
                                   const QuasiPolynomial &R) {
    return L -= R;
  }
  friend QuasiPolynomial operator*(QuasiPolynomial L,
                                   const QuasiPolynomial &R) {
    return L *= R;
  }
  friend QuasiPolynomial operator*(QuasiPolynomial L, const Rational &R) {
    return L *= R;
  }

  friend bool operator==(const QuasiPolynomial &L, const QuasiPolynomial &R) {
    return L.Terms == R.Terms;
  }
  friend bool operator!=(const QuasiPolynomial &L, const QuasiPolynomial &R) {
    return !(L == R);
  }

  static QuasiPolynomial pow(const QuasiPolynomial &Base, unsigned E);

  /// Degree in the Symbol atom \p Name (0 if absent).
  unsigned degreeIn(const std::string &Name) const;

  /// Writes the polynomial as Σ_d Out[d] * Name^d; Out.size() ==
  /// degreeIn(Name) + 1.  Asserts no Mod atom mentions \p Name.
  std::vector<QuasiPolynomial> coefficientsOf(const std::string &Name) const;

  /// Substitutes the Symbol atom \p Name by \p Value.  Asserts no Mod atom
  /// mentions \p Name.
  void substitute(const std::string &Name, const QuasiPolynomial &Value);

  /// True iff any atom (symbol or mod argument) mentions \p Name.
  bool mentions(const std::string &Name) const;
  void collectVars(VarSet &Out) const;

  Rational evaluate(const Assignment &Values) const;

  std::string toString() const;

private:
  void addTerm(Monomial M, Rational C);

  std::map<Monomial, Rational> Terms; // No zero coefficients stored.
};

std::ostream &operator<<(std::ostream &OS, const QuasiPolynomial &P);

} // namespace omega

#endif // OMEGA_POLY_QUASIPOLYNOMIAL_H
