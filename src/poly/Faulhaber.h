//===- poly/Faulhaber.h - Power-sum polynomials -----------------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §4.1 of the paper: closed forms for Σ_{i=1}^{n} i^p ("fairly standard
/// formulas for sums of powers of integers ... we expect it will be
/// sufficient to hard code the formulas for p up to 10").  We compute the
/// Faulhaber polynomial S_p for arbitrary p from Bernoulli numbers; the
/// first eleven are additionally pinned by unit tests against the CRC
/// tables.  The polynomial identity S_p(X) - S_p(X-1) = X^p makes the
/// telescoped form Σ_{v=L}^{U} v^p = S_p(U) - S_p(L-1) exact for *all*
/// integer L <= U (positive or negative), which subsumes the paper's
/// four-piece decomposition of §4.2 (see DESIGN.md, Substitutions).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_POLY_FAULHABER_H
#define OMEGA_POLY_FAULHABER_H

#include "poly/QuasiPolynomial.h"

namespace omega {

/// Bernoulli number B_p with the B1 = +1/2 convention (so that
/// S_p(n) = 1/(p+1) Σ_j C(p+1, j) B_j n^{p+1-j}).  Values are memoized.
Rational bernoulli(unsigned P);

/// Binomial coefficient C(n, k) as an exact BigInt.
BigInt binomial(unsigned N, unsigned K);

/// The Faulhaber polynomial S_p evaluated at polynomial argument \p X:
/// S_p(X) = Σ_{i=1}^{X} i^p as a degree-(p+1) quasi-polynomial in X.
QuasiPolynomial faulhaber(unsigned P, const QuasiPolynomial &X);

/// Σ_{v=L}^{U} v^p = S_p(U) - S_p(L-1); exact for all integers L <= U.
QuasiPolynomial powerSumRange(unsigned P, const QuasiPolynomial &L,
                              const QuasiPolynomial &U);

} // namespace omega

#endif // OMEGA_POLY_FAULHABER_H
