//===- poly/PiecewiseValue.cpp - Guarded symbolic answers ----------------===//

#include "poly/PiecewiseValue.h"

#include "support/Error.h"

#include <algorithm>
#include <ostream>
#include <sstream>

using namespace omega;

PiecewiseValue &PiecewiseValue::operator+=(const PiecewiseValue &Other) {
  Unbounded = Unbounded || Other.Unbounded;
  for (const Piece &P : Other.Pieces)
    Pieces.push_back(P);
  return *this;
}

PiecewiseValue &PiecewiseValue::operator*=(const Rational &C) {
  for (Piece &P : Pieces)
    P.Value *= C;
  return *this;
}

Rational PiecewiseValue::evaluate(const Assignment &Values) const {
  check(!Unbounded, "evaluating an unbounded sum");
  Rational R(0);
  for (const Piece &P : Pieces)
    if (P.Guard.contains(Values))
      R += P.Value.evaluate(Values);
  return R;
}

BigInt PiecewiseValue::evaluateInt(const Assignment &Values) const {
  Rational R = evaluate(Values);
  check(R.isInteger(), "piecewise value is not integral at this point");
  return R.asInteger();
}

void PiecewiseValue::mergeSyntactic() {
  std::vector<Piece> Out;
  for (Piece &P : Pieces) {
    if (P.Value.isZero())
      continue;
    bool Merged = false;
    for (Piece &Q : Out) {
      // Same guard (as ordered constraint lists after sorting).
      auto Key = [](const Conjunct &C) {
        std::vector<Constraint> Ks = C.constraints();
        std::sort(Ks.begin(), Ks.end());
        return Ks;
      };
      if (Key(Q.Guard) == Key(P.Guard)) {
        Q.Value += P.Value;
        Merged = true;
        break;
      }
    }
    if (!Merged)
      Out.push_back(std::move(P));
  }
  // Merging may have produced zero values.
  Out.erase(std::remove_if(Out.begin(), Out.end(),
                           [](const Piece &P) { return P.Value.isZero(); }),
            Out.end());
  Pieces = std::move(Out);
}

std::string PiecewiseValue::toString() const {
  if (Unbounded)
    return "<unbounded>";
  if (Pieces.empty())
    return "0";
  std::ostringstream OS;
  for (size_t I = 0; I < Pieces.size(); ++I) {
    if (I)
      OS << " + ";
    if (Pieces[I].Guard.constraints().empty()) {
      OS << "(" << Pieces[I].Value << ")";
      continue;
    }
    OS << "(if ";
    const auto &Ks = Pieces[I].Guard.constraints();
    for (size_t J = 0; J < Ks.size(); ++J) {
      if (J)
        OS << " && ";
      OS << Ks[J];
    }
    OS << " : " << Pieces[I].Value << ")";
  }
  return OS.str();
}

std::ostream &omega::operator<<(std::ostream &OS, const PiecewiseValue &V) {
  return OS << V.toString();
}
