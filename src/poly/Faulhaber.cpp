//===- poly/Faulhaber.cpp - Power-sum polynomials -------------------------===//

#include "poly/Faulhaber.h"

#include <vector>

using namespace omega;

BigInt omega::binomial(unsigned N, unsigned K) {
  if (K > N)
    return BigInt(0);
  K = std::min(K, N - K);
  BigInt R(1);
  for (unsigned I = 1; I <= K; ++I) {
    R *= BigInt(N - K + I);
    R = BigInt::divExact(R, BigInt(I)); // Product of I consecutive integers.
  }
  return R;
}

Rational omega::bernoulli(unsigned P) {
  // Memoized B- numbers (B1 = -1/2) via the defining recurrence
  // Σ_{j=0}^{m} C(m+1, j) B_j = 0; converted to B+ on return.  Per-thread:
  // pool workers and omegad sessions sum concurrently, and a shared
  // table's push_back would reallocate under a racing reader.  The table
  // is degree-bounded and tiny, so per-thread recompute is cheaper than
  // taking a lock on every coefficient.
  thread_local std::vector<Rational> Cache{Rational(1)};
  while (Cache.size() <= P) {
    unsigned M = static_cast<unsigned>(Cache.size());
    Rational Sum(0);
    for (unsigned J = 0; J < M; ++J)
      Sum += Rational(binomial(M + 1, J)) * Cache[J];
    Cache.push_back(-Sum / Rational(BigInt(M + 1)));
  }
  if (P == 1)
    return Rational(BigInt(1), BigInt(2));
  return Cache[P];
}

QuasiPolynomial omega::faulhaber(unsigned P, const QuasiPolynomial &X) {
  // S_p(X) = 1/(p+1) Σ_{j=0}^{p} C(p+1, j) B+_j X^{p+1-j}.
  QuasiPolynomial Out;
  QuasiPolynomial Pow(Rational(1)); // X^0, built up to X^{p+1}.
  std::vector<QuasiPolynomial> Powers{Pow};
  for (unsigned E = 1; E <= P + 1; ++E) {
    Pow *= X;
    Powers.push_back(Pow);
  }
  for (unsigned J = 0; J <= P; ++J) {
    Rational C = Rational(binomial(P + 1, J)) * bernoulli(J);
    Out += Powers[P + 1 - J] * C;
  }
  Out *= Rational(BigInt(1), BigInt(P + 1));
  return Out;
}

QuasiPolynomial omega::powerSumRange(unsigned P, const QuasiPolynomial &L,
                                     const QuasiPolynomial &U) {
  return faulhaber(P, U) - faulhaber(P, L - QuasiPolynomial(Rational(1)));
}
