//===- support/Stats.h - Pipeline observability counters -------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide observability for the counting pipeline: cache hit/miss
/// rates, clause and splinter volumes, parallel fan-out counts, and
/// cumulative wall time per pipeline phase.  Counters are atomics so the
/// worker pool can bump them without coordination; timers are cumulative
/// across nested and concurrent invocations (a phase entered from four
/// workers at once accrues roughly 4x wall time — read them as cost
/// attribution, not elapsed time).
///
/// `omegacount --stats` / `omegalint --stats` print the human-readable
/// form; bench_pipeline emits the JSON form for BENCH_*.json trajectories.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SUPPORT_STATS_H
#define OMEGA_SUPPORT_STATS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace omega {

/// The live (atomic) counter set.  Use snapshotPipelineStats() to read.
///
/// Every field is a std::atomic, so this struct carries no mutex and is
/// exempt from OMEGA_GUARDED_BY annotations (DESIGN.md §13): concurrent
/// increments from pool workers are safe by construction, and the snapshot
/// reader tolerates tearing *across* counters (it reports a monotonic
/// point-in-time view, not a consistent cut).
struct PipelineCounters {
  // Work volume.
  std::atomic<uint64_t> FeasibilityTests{0};
  std::atomic<uint64_t> ProjectionCalls{0};
  std::atomic<uint64_t> ClausesSimplified{0};
  std::atomic<uint64_t> SplintersGenerated{0};
  // Conjunct cache.
  std::atomic<uint64_t> CacheHits{0};
  std::atomic<uint64_t> CacheMisses{0};
  std::atomic<uint64_t> CacheEvictions{0};
  // Fan-out.
  std::atomic<uint64_t> ParallelBatches{0};
  std::atomic<uint64_t> ParallelTasks{0};
  // Clause coalescing (omega/Simplify.cpp).  Pairs counts full
  // (Omega-backed) pair evaluations; Prefiltered counts candidate pairs
  // the clause index rejected with no feasible()/implies() call at all;
  // Merges counts pair merges actually applied to a clause list.
  std::atomic<uint64_t> CoalescePairs{0};
  std::atomic<uint64_t> CoalescePrefiltered{0};
  std::atomic<uint64_t> CoalesceMerges{0};
  // Budgets (support/Budget.h): limits tripped, and whole queries that
  // fell back to certified bounds instead of an exact answer.
  std::atomic<uint64_t> BudgetTrips{0};
  std::atomic<uint64_t> DegradedQueries{0};
  // Backend dispatch (counting/Backend.h): work volume of the automaton
  // and enumerate backends, and Auto dispatches that fell back to pugh
  // after a refusal.
  std::atomic<uint64_t> AutomatonDfaStates{0};
  std::atomic<uint64_t> AutomatonProductStates{0};
  std::atomic<uint64_t> AutomatonTransitions{0};
  std::atomic<uint64_t> EnumeratedPoints{0};
  std::atomic<uint64_t> BackendFallbacks{0};
  // The BigInt small-value optimization (DESIGN.md §10) keeps its own
  // counters in omega::arithCounters() so the header fast paths need not
  // see this file; snapshots and reset() fold them in here.
  // Cumulative wall time per phase, in nanoseconds.
  std::atomic<uint64_t> SimplifyNanos{0};
  std::atomic<uint64_t> DisjointNanos{0};
  std::atomic<uint64_t> CoalesceNanos{0};
  std::atomic<uint64_t> SummationNanos{0};

  void reset();
};

/// IR-layer observability counters (the flat term storage of
/// presburger/AffineExpr.h; surfaced through snapshotPipelineStats()).
/// Spills — heap term arrays materialized for expressions wider than the
/// inline capacity — are always counted.  Per-operation inline tallies are
/// gated behind the same CountOps flag as the BigInt fast/slow counters.
/// Defined here rather than next to AffineExpr so QueryStatsBlock
/// (support/QueryContext.h) can hold one per query.
struct ExprCounters {
  std::atomic<uint64_t> Spills{0};    ///< Heap term arrays allocated.
  std::atomic<uint64_t> InlineOps{0}; ///< Term mutations completed inline.
};

struct ArithCounters; // support/BigInt.h

namespace detail {
inline ExprCounters ExprStats;
/// Per-thread redirect targets installed by QueryContextScope
/// (support/QueryContext.h): when non-null, counter traffic on this thread
/// lands in the active query's block instead of the process-wide globals.
inline thread_local PipelineCounters *ActivePipelineStats = nullptr;
inline thread_local ExprCounters *ActiveExprStats = nullptr;
} // namespace detail

/// The expression counters ops on this thread tally into: the active
/// query's block under a stats-collecting QueryContextScope, else the
/// process-wide instance.
inline ExprCounters &exprCounters() {
  return detail::ActiveExprStats ? *detail::ActiveExprStats
                                 : detail::ExprStats;
}

/// The counter instance work on this thread attributes to: the active
/// query's block under a stats-collecting QueryContextScope, else the
/// process-wide instance.
PipelineCounters &pipelineStats();

/// A plain copy of the counters at one instant.
struct PipelineStatsSnapshot {
  uint64_t FeasibilityTests, ProjectionCalls, ClausesSimplified,
      SplintersGenerated;
  uint64_t CacheHits, CacheMisses, CacheEvictions;
  uint64_t ParallelBatches, ParallelTasks;
  uint64_t CoalescePairs, CoalescePrefiltered, CoalesceMerges;
  uint64_t BudgetTrips, DegradedQueries;
  uint64_t AutomatonDfaStates, AutomatonProductStates, AutomatonTransitions,
      EnumeratedPoints, BackendFallbacks;
  // Arithmetic layer: limb (heap) representations produced, and the
  // fast/slow per-op tallies (nonzero only under
  // CountOptions::CountArithOps).
  uint64_t BigIntSpills, BigIntFastOps, BigIntSlowOps;
  // IR term storage (presburger/AffineExpr.h): mutations completed in the
  // inline term buffer (gated by CountOptions::CountArithOps, like the
  // per-op BigInt tallies) and heap term arrays materialized past
  // InlineCapacity.
  uint64_t ExprTermsInline, ExprTermsSpilled;
  uint64_t SimplifyNanos, DisjointNanos, CoalesceNanos, SummationNanos;

  /// One-line-per-counter human form (for --stats).
  std::string toPretty() const;
  /// Single JSON object (for bench_pipeline / BENCH_*.json).
  std::string toJson() const;
};

/// A snapshot of an explicit counter triple (a per-query block, or the
/// globals via snapshotPipelineStats()).
PipelineStatsSnapshot snapshotStats(const PipelineCounters &P,
                                    const ArithCounters &A,
                                    const ExprCounters &E);

/// Snapshot of the counters this thread currently resolves to.
PipelineStatsSnapshot snapshotPipelineStats();

/// RAII: adds the elapsed wall time to one of the phase counters.
class PhaseTimer {
public:
  explicit PhaseTimer(std::atomic<uint64_t> &Target)
      : Target(Target), Start(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    auto End = std::chrono::steady_clock::now();
    Target += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
            .count());
  }
  PhaseTimer(const PhaseTimer &) = delete;
  PhaseTimer &operator=(const PhaseTimer &) = delete;

private:
  std::atomic<uint64_t> &Target;
  std::chrono::steady_clock::time_point Start;
};

} // namespace omega

#endif // OMEGA_SUPPORT_STATS_H
