//===- support/Trace.cpp - Hierarchical pipeline tracing -----------------===//
//
// Storage layout: each thread owns a ring of completed TraceSpanRecords
// (single writer, no lock on the push path).  Open spans are a per-thread
// intrusive stack allocated per span on the heap — tracing-on cost is not
// gated, only tracing-off cost is.  A global registry (mutex + ring list)
// exists so start/stop can clear and snapshot every thread's ring; the
// mutex is taken once per thread lifetime (registration) and once per
// session boundary, never per span.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/QueryContext.h"
#include "support/ThreadAnnotations.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <map>
#include <sstream>

using namespace omega;

std::atomic<bool> omega::trace_detail::Enabled{false};

namespace {

/// Spans kept per thread before the ring wraps (oldest overwritten).
constexpr size_t RingCapacity = size_t(1) << 16;

struct ThreadRing {
  std::vector<TraceSpanRecord> Buf;
  size_t Head = 0;      ///< Next overwrite position once Buf is full.
  uint64_t Dropped = 0; ///< Records overwritten this session.
  uint32_t Tid = 0;     ///< Dense registration index.

  void push(TraceSpanRecord &&R) {
    if (Buf.size() < RingCapacity) {
      Buf.push_back(std::move(R));
      return;
    }
    Buf[Head] = std::move(R);
    Head = (Head + 1) % RingCapacity;
    ++Dropped;
  }

  void clear() {
    Buf.clear();
    Head = 0;
    Dropped = 0;
  }
};

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Registry {
  Mutex M;
  /// Every thread's completed-span ring.  The rings themselves are
  /// single-writer thread-local state and deliberately unannotated:
  /// stopTracing() reads them under the start/stop contract ("no traced
  /// query in flight"), which the capability model cannot express
  /// (DESIGN.md §13).  Only the registry vector is guarded.
  std::vector<std::shared_ptr<ThreadRing>> Rings OMEGA_GUARDED_BY(M);
  std::atomic<uint64_t> NextId{1};
  /// Session epoch in steady-clock nanoseconds.  Atomic, not guarded:
  /// startTracing() writes it while every instrumentation site reads it
  /// unlocked — a GUARDED_BY here would either race or serialize spans.
  std::atomic<uint64_t> SessionStartNs{nowNs()};
};

Registry &registry() {
  static Registry R;
  return R;
}

/// An open span: the record under construction plus the intrusive stack
/// link.  Rec is the first member so TraceSpan can hold &OS->Rec and the
/// destructor can cast back (standard layout).
struct OpenSpan {
  TraceSpanRecord Rec;
  OpenSpan *Prev = nullptr;
};
static_assert(offsetof(OpenSpan, Rec) == 0,
              "TraceSpan recovers the OpenSpan from its record address");

struct ThreadState {
  std::shared_ptr<ThreadRing> Ring;
  OpenSpan *Open = nullptr;     ///< Innermost open span on this thread.
  uint64_t TaskParent = 0;      ///< Parent installed by TraceTaskScope.

  ThreadRing &ring() {
    if (!Ring) {
      Ring = std::make_shared<ThreadRing>();
      Registry &R = registry();
      MutexLock Lock(R.M);
      Ring->Tid = static_cast<uint32_t>(R.Rings.size());
      R.Rings.push_back(Ring);
    }
    return *Ring;
  }
};

thread_local ThreadState TLS;

uint64_t sinceSessionStartNs() {
  return nowNs() - registry().SessionStartNs.load(std::memory_order_relaxed);
}

const char *counterName(unsigned I) {
  static const char *Names[NumTraceCounters] = {
      "constraints_in", "clauses_in",    "clauses_out",   "splinters",
      "cache_hits",     "cache_misses",  "bigint_spills", "budget_charges"};
  return Names[I];
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Hex[8];
        std::snprintf(Hex, sizeof(Hex), "\\u%04x", C);
        Out += Hex;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

void omega::startTracing() {
  Registry &R = registry();
  MutexLock Lock(R.M);
  for (const std::shared_ptr<ThreadRing> &Ring : R.Rings)
    Ring->clear();
  R.NextId.store(1, std::memory_order_relaxed);
  R.SessionStartNs.store(nowNs(), std::memory_order_relaxed);
  trace_detail::Enabled.store(true, std::memory_order_relaxed);
}

std::shared_ptr<const TraceData> omega::stopTracing() {
  trace_detail::Enabled.store(false, std::memory_order_relaxed);
  Registry &R = registry();
  MutexLock Lock(R.M);
  auto Data = std::make_shared<TraceData>();
  for (const std::shared_ptr<ThreadRing> &Ring : R.Rings) {
    Data->Dropped += Ring->Dropped;
    for (const TraceSpanRecord &Rec : Ring->Buf)
      Data->Spans.push_back(Rec);
  }
  std::sort(Data->Spans.begin(), Data->Spans.end(),
            [](const TraceSpanRecord &A, const TraceSpanRecord &B) {
              return A.StartNs != B.StartNs ? A.StartNs < B.StartNs
                                            : A.Id < B.Id;
            });
  return Data;
}

TraceSpan::TraceSpan(const char *Name) : Rec(nullptr) {
  if (!tracingEnabled())
    return;
  // Participation gate: while some query holds the (single, process-wide)
  // trace session, threads running a *different* query must not record
  // into it.  This constructor is the one place spans are born, so gating
  // here covers the whole subsystem; with no span open, traceCount /
  // traceAnnotate / currentTraceSpan already no-op through TLS.Open.
  if (const QueryContext *Ctx = activeQueryContext(); Ctx && !Ctx->TraceParticipant)
    return;
  // Tracing-on cost is not gated; the open-span stack is intrusive and
  // per-thread, released in ~TraceSpan.  omegatidy: allow(naked-new)
  OpenSpan *OS = new OpenSpan;
  OS->Rec.Id = registry().NextId.fetch_add(1, std::memory_order_relaxed);
  OS->Rec.Parent = TLS.Open ? TLS.Open->Rec.Id : TLS.TaskParent;
  OS->Rec.Name = Name;
  OS->Rec.Tid = TLS.ring().Tid;
  OS->Rec.StartNs = sinceSessionStartNs();
  OS->Prev = TLS.Open;
  TLS.Open = OS;
  Rec = &OS->Rec;
}

TraceSpan::~TraceSpan() {
  if (!Rec)
    return;
  OpenSpan *OS = reinterpret_cast<OpenSpan *>(Rec);
  Rec->DurNs = sinceSessionStartNs() - Rec->StartNs;
  TLS.Open = OS->Prev;
  TLS.ring().push(std::move(OS->Rec));
  delete OS;
}

void TraceSpan::count(TraceCounter C, uint64_t N) {
  if (Rec)
    Rec->Counters[static_cast<unsigned>(C)] += N;
}

void TraceSpan::annotate(const char *Key, std::string Value) {
  if (Rec)
    Rec->Annotations.emplace_back(Key, std::move(Value));
}

void omega::traceCount(TraceCounter C, uint64_t N) {
  if (!tracingEnabled())
    return;
  if (OpenSpan *OS = TLS.Open)
    OS->Rec.Counters[static_cast<unsigned>(C)] += N;
}

void omega::traceAnnotate(const char *Key, std::string Value) {
  if (!tracingEnabled())
    return;
  if (OpenSpan *OS = TLS.Open)
    OS->Rec.Annotations.emplace_back(Key, std::move(Value));
}

uint64_t omega::currentTraceSpan() {
  if (!tracingEnabled())
    return 0;
  return TLS.Open ? TLS.Open->Rec.Id : TLS.TaskParent;
}

TraceTaskScope::TraceTaskScope(uint64_t ParentId)
    : Prev(0), Installed(tracingEnabled()) {
  if (!Installed)
    return;
  Prev = TLS.TaskParent;
  TLS.TaskParent = ParentId;
}

TraceTaskScope::~TraceTaskScope() {
  if (Installed)
    TLS.TaskParent = Prev;
}

const TraceSpanRecord *TraceData::find(uint64_t Id) const {
  for (const TraceSpanRecord &R : Spans)
    if (R.Id == Id)
      return &R;
  return nullptr;
}

std::string TraceData::toChromeJson() const {
  std::ostringstream OS;
  OS << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":2,"
     << "\"dropped_spans\":" << Dropped << "},\"traceEvents\":[";
  bool First = true;
  for (const TraceSpanRecord &R : Spans) {
    if (!First)
      OS << ",";
    First = false;
    // Chrome complete events use microsecond doubles.
    OS << "{\"name\":\"" << jsonEscape(R.Name) << "\",\"cat\":\"omega\","
       << "\"ph\":\"X\",\"ts\":" << static_cast<double>(R.StartNs) / 1e3
       << ",\"dur\":" << static_cast<double>(R.DurNs) / 1e3
       << ",\"pid\":1,\"tid\":" << R.Tid << ",\"args\":{\"id\":" << R.Id
       << ",\"parent\":" << R.Parent;
    for (unsigned I = 0; I < NumTraceCounters; ++I)
      if (R.Counters[I])
        OS << ",\"" << counterName(I) << "\":" << R.Counters[I];
    for (const auto &[Key, Value] : R.Annotations)
      OS << ",\"" << jsonEscape(Key) << "\":\"" << jsonEscape(Value) << "\"";
    OS << "}}";
  }
  OS << "]}";
  return OS.str();
}

std::string TraceData::toSummary() const {
  // Self time: a span's duration minus the duration of its direct children
  // (children on other threads subtract from the enqueuing span, so a
  // fanned-out phase shows scheduling overhead, not its workers' work).
  std::map<uint64_t, uint64_t> ChildNs;
  for (const TraceSpanRecord &R : Spans)
    if (R.Parent)
      ChildNs[R.Parent] += R.DurNs;

  struct Agg {
    uint64_t Spans = 0, TotalNs = 0, SelfNs = 0;
    uint64_t Counters[NumTraceCounters] = {};
  };
  std::map<std::string, Agg> ByName;
  for (const TraceSpanRecord &R : Spans) {
    Agg &A = ByName[R.Name];
    A.Spans += 1;
    A.TotalNs += R.DurNs;
    uint64_t Sub = 0;
    if (auto It = ChildNs.find(R.Id); It != ChildNs.end())
      Sub = std::min(It->second, R.DurNs);
    A.SelfNs += R.DurNs - Sub;
    for (unsigned I = 0; I < NumTraceCounters; ++I)
      A.Counters[I] += R.Counters[I];
  }
  // Every instrumented phase appears even with zero spans, so consumers
  // (the ci.sh trace leg greps for all nine) can tell "phase never ran"
  // from "phase missing from the format".
  static const char *Phases[] = {"simplify",  "toDNF",      "crossConjoin",
                                 "projectVars", "splinter", "makeDisjoint",
                                 "coalesce",  "summation",  "snfReparam"};
  for (const char *P : Phases)
    ByName.emplace(P, Agg{});

  auto Ms = [](uint64_t Ns) { return static_cast<double>(Ns) / 1e6; };
  std::ostringstream OS;
  OS << "trace summary: " << Spans.size() << " span"
     << (Spans.size() == 1 ? "" : "s");
  if (Dropped)
    OS << " (+" << Dropped << " dropped)";
  OS << "\n  phase            spans    total ms     self ms  counters\n";
  // Order by self time (descending), name as tie-break, zero-span phases
  // last in name order.
  std::vector<std::pair<std::string, Agg>> Rows(ByName.begin(), ByName.end());
  std::stable_sort(Rows.begin(), Rows.end(),
                   [](const auto &A, const auto &B) {
                     return A.second.SelfNs > B.second.SelfNs;
                   });
  for (const auto &[Name, A] : Rows) {
    OS << "  " << Name;
    for (size_t Pad = Name.size(); Pad < 17; ++Pad)
      OS << ' ';
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%5llu %11.3f %11.3f",
                  static_cast<unsigned long long>(A.Spans), Ms(A.TotalNs),
                  Ms(A.SelfNs));
    OS << Buf;
    bool AnyCounter = false;
    for (unsigned I = 0; I < NumTraceCounters; ++I)
      if (A.Counters[I]) {
        OS << (AnyCounter ? " " : "  ") << counterName(I) << "="
           << A.Counters[I];
        AnyCounter = true;
      }
    OS << "\n";
  }
  return OS.str();
}
