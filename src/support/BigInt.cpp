//===- support/BigInt.cpp - Arbitrary-precision signed integers ----------===//
//
// Slow (limb) paths for the small-value-optimized BigInt.  The inline
// int64 fast paths live in the header; everything here runs only when an
// operand or result magnitude exceeds 2^62 - 1.
//
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"

#include "support/Error.h"
#include "support/Trace.h"

#include <algorithm>
#include <ostream>

using namespace omega;

static constexpr uint64_t LimbBase = uint64_t(1) << 32;

//===----------------------------------------------------------------------===//
// Representation management
//===----------------------------------------------------------------------===//

void BigInt::initLarge(long long V) {
  // Only reached for |V| > SmallMax, i.e. V in (±2^62, ±2^63]; the
  // magnitude always needs exactly two limbs.
  bool Neg = V < 0;
  // Avoid UB negating LLONG_MIN by widening through unsigned.
  uint64_t Mag = Neg ? ~static_cast<uint64_t>(V) + 1
                     : static_cast<uint64_t>(V);
  Small = 0;
  IsSmall = false;
  Negative = Neg;
  Limbs.assign({static_cast<uint32_t>(Mag),
                static_cast<uint32_t>(Mag >> 32)});
  detail::ArithStats.Spills.fetch_add(1, std::memory_order_relaxed);
  traceCount(TraceCounter::BigIntSpills);
}

void BigInt::initLarge(unsigned long long V) {
  Small = 0;
  IsSmall = false;
  Negative = false;
  Limbs.assign({static_cast<uint32_t>(V), static_cast<uint32_t>(V >> 32)});
  detail::ArithStats.Spills.fetch_add(1, std::memory_order_relaxed);
  traceCount(TraceCounter::BigIntSpills);
}

void BigInt::setLarge(bool Neg, std::vector<uint32_t> &&Mag) {
  while (!Mag.empty() && Mag.back() == 0)
    Mag.pop_back();
  if (Mag.size() <= 2) {
    uint64_t V = 0;
    if (Mag.size() > 1)
      V = uint64_t(Mag[1]) << 32;
    if (!Mag.empty())
      V |= Mag[0];
    if (V <= static_cast<uint64_t>(SmallMax)) {
      // Unspill: re-establish the canonical inline form and release the
      // limb storage (clear() would keep the heap buffer alive).
      Small = Neg ? -static_cast<int64_t>(V) : static_cast<int64_t>(V);
      IsSmall = true;
      Negative = false;
      std::vector<uint32_t>().swap(Limbs);
      return;
    }
  }
  Small = 0;
  IsSmall = false;
  Negative = Neg;
  Limbs = std::move(Mag);
  detail::ArithStats.Spills.fetch_add(1, std::memory_order_relaxed);
  traceCount(TraceCounter::BigIntSpills);
}

const std::vector<uint32_t> &
BigInt::magnitudeLimbs(std::vector<uint32_t> &Storage) const {
  if (!IsSmall)
    return Limbs;
  Storage.clear();
  uint64_t Mag = smallMagnitude();
  while (Mag != 0) {
    Storage.push_back(static_cast<uint32_t>(Mag));
    Mag >>= 32;
  }
  return Storage;
}

void BigInt::forceSpillForTesting() {
  if (!IsSmall || Small == 0)
    return;
  bool Neg = Small < 0;
  uint64_t Mag = smallMagnitude();
  Small = 0;
  IsSmall = false;
  Negative = Neg;
  Limbs.clear();
  // Trimmed limbs (top limb nonzero), like every large value: the
  // magnitude kernels rely on that shape.  The result still deliberately
  // violates the |v| > SmallMax canonicality rule — that is the point of
  // the hook — so it may hold only one limb, which fitsInt64/toInt64
  // tolerate explicitly.
  while (Mag != 0) {
    Limbs.push_back(static_cast<uint32_t>(Mag));
    Mag >>= 32;
  }
}

//===----------------------------------------------------------------------===//
// Parsing and conversions
//===----------------------------------------------------------------------===//

BigInt::BigInt(std::string_view Decimal) {
  if (!fromString(Decimal, *this))
    fatalError("BigInt: malformed decimal literal: " + std::string(Decimal));
}

bool BigInt::fromString(std::string_view Decimal, BigInt &Out) {
  Out = BigInt();
  bool Neg = false;
  size_t I = 0;
  if (I < Decimal.size() && (Decimal[I] == '-' || Decimal[I] == '+')) {
    Neg = Decimal[I] == '-';
    ++I;
  }
  if (I == Decimal.size())
    return false;
  // Accumulate in a machine word while the value stays in the small range
  // (the common case: every literal a formula can reasonably contain).
  uint64_t Acc = 0;
  for (; I < Decimal.size(); ++I) {
    char C = Decimal[I];
    if (C < '0' || C > '9')
      return false;
    uint64_t D = static_cast<uint64_t>(C - '0');
    if (Acc > (static_cast<uint64_t>(SmallMax) - D) / 10)
      break;
    Acc = Acc * 10 + D;
  }
  Out.Small = static_cast<int64_t>(Acc);
  // Spill continuation for oversized literals.
  for (; I < Decimal.size(); ++I) {
    char C = Decimal[I];
    if (C < '0' || C > '9')
      return false;
    Out *= BigInt(10);
    Out += BigInt(C - '0');
  }
  if (Neg)
    Out = -Out;
  return true;
}

bool BigInt::fitsInt64() const {
  if (IsSmall)
    return true;
  if (Limbs.size() > 2)
    return false;
  // A canonical large value always has two limbs, but a force-spilled
  // small value (testing hook) may hold just one.
  uint64_t Mag = Limbs.size() > 1 ? (uint64_t(Limbs[1]) << 32) | Limbs[0]
                                  : Limbs[0];
  return Negative ? Mag <= (uint64_t(1) << 63)
                  : Mag < (uint64_t(1) << 63);
}

int64_t BigInt::toInt64() const {
  if (IsSmall)
    return Small;
  check(fitsInt64(), "BigInt does not fit in int64_t");
  uint64_t Mag = Limbs.size() > 1 ? (uint64_t(Limbs[1]) << 32) | Limbs[0]
                                  : Limbs[0];
  // Negate in unsigned arithmetic: for Mag == 2^63 (INT64_MIN's magnitude)
  // `-static_cast<int64_t>(Mag)` would negate INT64_MIN, which overflows.
  return static_cast<int64_t>(Negative ? ~Mag + 1 : Mag);
}

double BigInt::toDouble() const {
  if (IsSmall)
    return static_cast<double>(Small);
  double R = 0;
  for (size_t I = Limbs.size(); I-- > 0;)
    R = R * 4294967296.0 + Limbs[I];
  return Negative ? -R : R;
}

std::string BigInt::toString() const {
  if (IsSmall)
    return std::to_string(Small);
  std::string Digits;
  std::vector<uint32_t> Mag = Limbs;
  const std::vector<uint32_t> Ten = {10};
  while (!Mag.empty()) {
    std::vector<uint32_t> Rem = Mag;
    Mag = divModMagnitude(Rem, Ten);
    Digits.push_back(static_cast<char>('0' + (Rem.empty() ? 0 : Rem[0])));
  }
  if (Negative)
    Digits.push_back('-');
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}

size_t BigInt::hashSlow() const {
  size_t H = Negative ? 0x9e3779b97f4a7c15ull : 0;
  for (uint32_t L : Limbs)
    H = H * 1000003ull + L;
  return H;
}

std::ostream &omega::operator<<(std::ostream &OS, const BigInt &V) {
  return OS << V.toString();
}

//===----------------------------------------------------------------------===//
// Magnitude arithmetic (little-endian base-2^32 limb vectors)
//===----------------------------------------------------------------------===//

int BigInt::compareMagnitude(const std::vector<uint32_t> &A,
                             const std::vector<uint32_t> &B) {
  if (A.size() != B.size())
    return A.size() < B.size() ? -1 : 1;
  for (size_t I = A.size(); I-- > 0;)
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  return 0;
}

void BigInt::addMagnitude(std::vector<uint32_t> &A,
                          const std::vector<uint32_t> &B) {
  if (A.size() < B.size())
    A.resize(B.size(), 0);
  uint64_t Carry = 0;
  for (size_t I = 0; I < A.size(); ++I) {
    uint64_t S = Carry + A[I] + (I < B.size() ? B[I] : 0);
    A[I] = static_cast<uint32_t>(S);
    Carry = S >> 32;
  }
  if (Carry)
    A.push_back(static_cast<uint32_t>(Carry));
}

void BigInt::subMagnitude(std::vector<uint32_t> &A,
                          const std::vector<uint32_t> &B) {
  check(compareMagnitude(A, B) >= 0, "subMagnitude requires |A| >= |B|");
  int64_t Borrow = 0;
  for (size_t I = 0; I < A.size(); ++I) {
    int64_t S = int64_t(A[I]) - Borrow - (I < B.size() ? int64_t(B[I]) : 0);
    Borrow = 0;
    if (S < 0) {
      S += LimbBase;
      Borrow = 1;
    }
    A[I] = static_cast<uint32_t>(S);
  }
  check(Borrow == 0, "magnitude subtraction underflow");
}

std::vector<uint32_t> BigInt::mulMagnitude(const std::vector<uint32_t> &A,
                                           const std::vector<uint32_t> &B) {
  if (A.empty() || B.empty())
    return {};
  std::vector<uint32_t> R(A.size() + B.size(), 0);
  for (size_t I = 0; I < A.size(); ++I) {
    uint64_t Carry = 0;
    for (size_t J = 0; J < B.size(); ++J) {
      uint64_t S = uint64_t(A[I]) * B[J] + R[I + J] + Carry;
      R[I + J] = static_cast<uint32_t>(S);
      Carry = S >> 32;
    }
    size_t K = I + B.size();
    while (Carry) {
      uint64_t S = R[K] + Carry;
      R[K] = static_cast<uint32_t>(S);
      Carry = S >> 32;
      ++K;
    }
  }
  while (!R.empty() && R.back() == 0)
    R.pop_back();
  return R;
}

/// Knuth algorithm D (schoolbook long division) on 32-bit limbs, with the
/// single-limb divisor fast path.
std::vector<uint32_t>
BigInt::divModMagnitude(std::vector<uint32_t> &A,
                        const std::vector<uint32_t> &B) {
  check(!B.empty(), "division by zero");
  if (compareMagnitude(A, B) < 0)
    return {};
  if (B.size() == 1) {
    uint64_t D = B[0];
    std::vector<uint32_t> Q(A.size(), 0);
    uint64_t Rem = 0;
    for (size_t I = A.size(); I-- > 0;) {
      uint64_t Cur = (Rem << 32) | A[I];
      Q[I] = static_cast<uint32_t>(Cur / D);
      Rem = Cur % D;
    }
    while (!Q.empty() && Q.back() == 0)
      Q.pop_back();
    A.clear();
    if (Rem) {
      A.push_back(static_cast<uint32_t>(Rem));
      if (Rem >> 32)
        A.push_back(static_cast<uint32_t>(Rem >> 32));
    }
    return Q;
  }

  // Normalize so the divisor's top limb has its high bit set.
  int Shift = 0;
  for (uint32_t Top = B.back(); !(Top & 0x80000000u); Top <<= 1)
    ++Shift;
  size_t N = B.size(), M = A.size() - N;
  std::vector<uint32_t> U(A.size() + 1, 0), V(N, 0);
  for (size_t I = A.size(); I-- > 0;) {
    U[I] |= Shift ? (A[I] << Shift) : A[I];
    if (Shift && I + 1 <= A.size())
      U[I + 1] |= static_cast<uint32_t>(uint64_t(A[I]) >> (32 - Shift));
  }
  for (size_t I = N; I-- > 0;) {
    V[I] = Shift ? (B[I] << Shift) : B[I];
    if (Shift && I > 0)
      V[I] |= static_cast<uint32_t>(uint64_t(B[I - 1]) >> (32 - Shift));
  }

  std::vector<uint32_t> Q(M + 1, 0);
  for (size_t J = M + 1; J-- > 0;) {
    uint64_t Num = (uint64_t(U[J + N]) << 32) | U[J + N - 1];
    uint64_t QHat = Num / V[N - 1];
    uint64_t RHat = Num % V[N - 1];
    while (QHat >= LimbBase ||
           QHat * V[N - 2] > ((RHat << 32) | U[J + N - 2])) {
      --QHat;
      RHat += V[N - 1];
      if (RHat >= LimbBase)
        break;
    }
    // Multiply-subtract QHat * V from U[J .. J+N].
    int64_t Borrow = 0;
    uint64_t Carry = 0;
    for (size_t I = 0; I < N; ++I) {
      uint64_t P = QHat * V[I] + Carry;
      Carry = P >> 32;
      int64_t Sub = int64_t(U[I + J]) - int64_t(uint32_t(P)) - Borrow;
      Borrow = 0;
      if (Sub < 0) {
        Sub += LimbBase;
        Borrow = 1;
      }
      U[I + J] = static_cast<uint32_t>(Sub);
    }
    int64_t Sub = int64_t(U[J + N]) - int64_t(Carry) - Borrow;
    bool NegResult = Sub < 0;
    U[J + N] = static_cast<uint32_t>(Sub);
    if (NegResult) {
      // QHat was one too large; add V back.
      --QHat;
      uint64_t C = 0;
      for (size_t I = 0; I < N; ++I) {
        uint64_t S = uint64_t(U[I + J]) + V[I] + C;
        U[I + J] = static_cast<uint32_t>(S);
        C = S >> 32;
      }
      U[J + N] = static_cast<uint32_t>(U[J + N] + C);
    }
    Q[J] = static_cast<uint32_t>(QHat);
  }

  // Denormalize the remainder.
  A.assign(N, 0);
  for (size_t I = 0; I < N; ++I) {
    A[I] = U[I] >> Shift;
    if (Shift && I + 1 < U.size())
      A[I] |= static_cast<uint32_t>(uint64_t(U[I + 1]) << (32 - Shift));
  }
  while (!A.empty() && A.back() == 0)
    A.pop_back();
  while (!Q.empty() && Q.back() == 0)
    Q.pop_back();
  return Q;
}

//===----------------------------------------------------------------------===//
// Signed slow paths
//===----------------------------------------------------------------------===//

BigInt &BigInt::addSlow(const BigInt &RHS) {
  noteSlowOp();
  bool LN = isNegative(), RN = RHS.isNegative();
  std::vector<uint32_t> LS, RS;
  std::vector<uint32_t> A = magnitudeLimbs(LS); // Mutable copy of |LHS|.
  const std::vector<uint32_t> &B = RHS.magnitudeLimbs(RS);
  if (LN == RN) {
    addMagnitude(A, B);
    setLarge(LN, std::move(A));
  } else if (compareMagnitude(A, B) >= 0) {
    subMagnitude(A, B);
    setLarge(LN, std::move(A));
  } else {
    std::vector<uint32_t> C = B;
    subMagnitude(C, A);
    setLarge(RN, std::move(C));
  }
  return *this;
}

BigInt &BigInt::subSlow(const BigInt &RHS) { return addSlow(-RHS); }

BigInt &BigInt::mulSlow(const BigInt &RHS) {
  noteSlowOp();
  bool Neg = isNegative() != RHS.isNegative();
  std::vector<uint32_t> LS, RS;
  std::vector<uint32_t> R =
      mulMagnitude(magnitudeLimbs(LS), RHS.magnitudeLimbs(RS));
  setLarge(Neg, std::move(R));
  return *this;
}

void BigInt::divMod(const BigInt &Num, const BigInt &Den, BigInt &Quot,
                    BigInt &Rem) {
  check(!Den.isZero(), "division by zero");
  if (Num.IsSmall && Den.IsSmall) {
    int64_t Q = Num.Small / Den.Small, R = Num.Small % Den.Small;
    noteFastOp();
    Quot = BigInt(static_cast<long long>(Q));
    Rem = BigInt(static_cast<long long>(R));
    return;
  }
  noteSlowOp();
  bool NN = Num.isNegative(), DN = Den.isNegative();
  std::vector<uint32_t> NS, DS;
  std::vector<uint32_t> A = Num.magnitudeLimbs(NS); // Becomes the remainder.
  std::vector<uint32_t> Q = divModMagnitude(A, Den.magnitudeLimbs(DS));
  // Build into locals first: Quot/Rem may alias Num/Den.
  BigInt QV, RV;
  QV.setLarge(NN != DN, std::move(Q));
  // Truncated semantics: remainder keeps the dividend's sign.
  RV.setLarge(NN, std::move(A));
  Quot = std::move(QV);
  Rem = std::move(RV);
}

BigInt &BigInt::divSlow(const BigInt &RHS) {
  BigInt Q, R;
  divMod(*this, RHS, Q, R);
  return *this = std::move(Q);
}

BigInt &BigInt::remSlow(const BigInt &RHS) {
  BigInt Q, R;
  divMod(*this, RHS, Q, R);
  return *this = std::move(R);
}

int BigInt::compareSlow(const BigInt &RHS) const {
  // Both operands hold the limb form here.
  if (Negative != RHS.Negative)
    return Negative ? -1 : 1;
  int C = compareMagnitude(Limbs, RHS.Limbs);
  return Negative ? -C : C;
}

BigInt BigInt::floorDivSlow(const BigInt &Num, const BigInt &Den) {
  BigInt Q, R;
  divMod(Num, Den, Q, R);
  if (!R.isZero() && (R.isNegative() != Den.isNegative()))
    --Q;
  return Q;
}

BigInt BigInt::ceilDivSlow(const BigInt &Num, const BigInt &Den) {
  BigInt Q, R;
  divMod(Num, Den, Q, R);
  if (!R.isZero() && (R.isNegative() == Den.isNegative()))
    ++Q;
  return Q;
}

BigInt BigInt::floorModSlow(const BigInt &Num, const BigInt &Den) {
  // Mathematical modulus: always in [0, |Den|).
  BigInt D = Den.abs();
  BigInt R = Num - floorDiv(Num, D) * D;
  check(R.sign() >= 0, "floorMod result must be non-negative");
  return R;
}

BigInt BigInt::divExactSlow(const BigInt &Num, const BigInt &Den) {
  BigInt Q, R;
  divMod(Num, Den, Q, R);
  check(R.isZero(), "divExact: inexact division");
  return Q;
}

BigInt BigInt::gcdSlow(const BigInt &A, const BigInt &B) {
  noteSlowOp();
  BigInt X = A.abs(), Y = B.abs();
  // Euclid on the full values; each remainder shrinks, so the loop drops
  // onto the inline fast path as soon as both fit 62 bits.
  while (!Y.isZero()) {
    BigInt R = X % Y;
    X = std::move(Y);
    Y = std::move(R);
  }
  return X;
}

BigInt BigInt::lcm(const BigInt &A, const BigInt &B) {
  if (A.isZero() || B.isZero())
    return BigInt(0);
  BigInt G = gcd(A, B);
  // Divide before multiplying: the only product ever formed is the lcm
  // itself, never the doubly-wide |A*B|.
  return divExact(A.abs(), G) * B.abs();
}

BigInt BigInt::extendedGcd(const BigInt &A, const BigInt &B, BigInt &X,
                           BigInt &Y) {
  // Iterative extended Euclid on the raw (signed) inputs.
  BigInt OldR = A, R = B;
  BigInt OldX = 1, CurX = 0;
  BigInt OldY = 0, CurY = 1;
  while (!R.isZero()) {
    BigInt Q = OldR / R;
    BigInt T = OldR - Q * R;
    OldR = std::move(R);
    R = std::move(T);
    T = OldX - Q * CurX;
    OldX = std::move(CurX);
    CurX = std::move(T);
    T = OldY - Q * CurY;
    OldY = std::move(CurY);
    CurY = std::move(T);
  }
  if (OldR.isNegative()) {
    OldR = -OldR;
    OldX = -OldX;
    OldY = -OldY;
  }
  X = std::move(OldX);
  Y = std::move(OldY);
  return OldR;
}

BigInt BigInt::pow(const BigInt &A, unsigned E) {
  BigInt R = 1, Base = A;
  while (E) {
    if (E & 1)
      R *= Base;
    E >>= 1;
    if (E)
      Base *= Base;
  }
  return R;
}

bool BigInt::dividesSlow(const BigInt &E) const {
  if (isZero())
    return E.isZero();
  return (E % *this).isZero();
}
