//===- support/Error.h - Loud failure for broken invariants ----*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// fatalError: the replacement for release-mode-unreachable
/// `assert(false && "...")` defaults.  An unknown enum kind or violated
/// internal invariant means the IR is corrupt and any count produced from
/// it is meaningless, so these paths must fail loudly in every build type —
/// NDEBUG included — rather than silently falling through.
///
/// fatalError is reserved for genuinely unreachable internal states; any
/// failure a caller's *input* can provoke reports a recoverable Error
/// through support/Status.h instead.  DESIGN.md §9 lists the surviving
/// fatalError sites and why each is unreachable from text input.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SUPPORT_ERROR_H
#define OMEGA_SUPPORT_ERROR_H

#include <string>

namespace omega {

/// Prints `omega: fatal error: <Message>` to stderr and aborts.  Active in
/// all build types.
[[noreturn]] void fatalError(const std::string &Message);

/// fatalError unless \p Condition holds.  Unlike assert, survives NDEBUG;
/// use for invariants whose violation would corrupt results.
inline void check(bool Condition, const char *Message) {
  if (!Condition)
    fatalError(Message);
}

} // namespace omega

#endif // OMEGA_SUPPORT_ERROR_H
