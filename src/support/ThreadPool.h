//===- support/ThreadPool.h - Shared worker pool ---------------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A shared worker pool used to fan out independent disjunct work items
/// (DNF clauses, splinter groups, per-clause summations).
///
/// The pool itself is policy-free: it runs `Fn(0) .. Fn(N-1)` with at most
/// `Width` pool threads working the batch concurrently and blocks the
/// caller until all indices complete.  Several
/// batches may be in flight at once — omegad serves concurrent queries,
/// each fanning out under its own per-query width — and the pool
/// interleaves them over one shared set of threads.  Determinism of the
/// *results* is the callers' responsibility — the omega pipeline achieves
/// it by giving every index its own deterministic wildcard scope (see
/// presburger/Parallel.h) and by writing each index's output to its own
/// slot.
///
/// When the OMEGA_PARALLEL CMake option is OFF this header still compiles,
/// but run() degrades to a serial loop, so no std::thread is ever created.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SUPPORT_THREADPOOL_H
#define OMEGA_SUPPORT_THREADPOOL_H

#include <cstddef>
#include <functional>

namespace omega {

/// The fan-out width that can actually run concurrently for the active
/// query: min(QueryContext::Workers, hardware concurrency), and 1 when no
/// context is installed or the pool is compiled out.  Phases that fan out
/// for *throughput* (rather than for deterministic scoping) should gate on
/// this being >= 2, so a 4-worker query on a single-core host does not pay
/// scheduling overhead for time-sliced pseudo-parallelism.
unsigned effectiveParallelWidth();

/// The shared worker pool (one per process, lazily started).
class ThreadPool {
public:
  /// The process-wide pool instance.
  static ThreadPool &instance();

  /// Runs Fn(0..N-1) and blocks until every index has completed.  At most
  /// \p Width pool threads work the batch concurrently (threads are
  /// started lazily up to the largest Width seen and shared by all
  /// batches).  Falls back to a serial loop when Width < 2 or the
  /// caller is itself a pool worker (nested batches run inline, keeping
  /// per-batch nesting deterministic).  The first exception thrown by any
  /// Fn(i) is rethrown in the caller after the batch drains.  Safe to call
  /// from any number of threads at once: each call is its own batch, and
  /// batches interleave over the shared threads in FIFO order.
  ///
  /// Fn runs on pool threads with none of the caller's thread-local state;
  /// callers needing the query context on workers re-install it inside Fn
  /// (presburger/Parallel.cpp does).
  void run(size_t N, unsigned Width, const std::function<void(size_t)> &Fn);

  /// True iff the calling thread is a pool worker executing a batch.
  static bool onWorkerThread();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

private:
  ThreadPool();
  ~ThreadPool();

  struct Impl;
  Impl *P;
};

} // namespace omega

#endif // OMEGA_SUPPORT_THREADPOOL_H
