//===- support/ThreadPool.h - Fixed-size worker pool -----------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool used to fan out independent disjunct
/// work items (DNF clauses, splinter groups, per-clause summations).
///
/// The pool itself is policy-free: it runs `Fn(0) .. Fn(N-1)` on worker
/// threads and blocks the caller until all indices complete.  Determinism
/// of the *results* is the callers' responsibility — the omega pipeline
/// achieves it by giving every index its own deterministic wildcard scope
/// (see presburger/Parallel.h) and by writing each index's output to its
/// own slot.
///
/// When the OMEGA_PARALLEL CMake option is OFF this header still compiles,
/// but run() degrades to a serial loop and setWorkerCount() is recorded
/// without effect, so no std::thread is ever created.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SUPPORT_THREADPOOL_H
#define OMEGA_SUPPORT_THREADPOOL_H

#include <cstddef>
#include <functional>

namespace omega {

/// Sets the number of worker threads used for disjunct fan-out.  0 and 1
/// both mean "serial": all work runs inline on the calling thread, and the
/// pipeline is required to produce bit-identical results for every worker
/// count (see DESIGN.md §8).  Thread-safe; takes effect on the next batch.
///
/// Deprecated shim: prefer CountOptions::Workers (omega/Omega.h), which
/// applies per query instead of mutating process state.
void setWorkerCount(unsigned N);

/// The current worker-count knob (not the number of live threads).
unsigned workerCount();

/// The fan-out width that can actually run concurrently:
/// min(workerCount(), hardware concurrency), and 1 when the pool is
/// compiled out.  Phases that fan out for *throughput* (rather than for
/// deterministic scoping) should gate on this being >= 2, so a 4-worker
/// pool on a single-core host does not pay scheduling overhead for
/// time-sliced pseudo-parallelism.
unsigned effectiveParallelWidth();

/// The fixed-size worker pool (one per process, lazily started).
class ThreadPool {
public:
  /// The process-wide pool instance.
  static ThreadPool &instance();

  /// Runs Fn(0..N-1) across the workers and blocks until every index has
  /// completed.  Worker threads are started lazily up to workerCount().
  /// Falls back to a serial loop when workerCount() < 2 or the pool was
  /// compiled out.  The first exception thrown by any Fn(i) is rethrown
  /// in the caller after the batch drains.  Not reentrant: must not be
  /// called from inside a worker (callers run nested batches inline).
  void run(size_t N, const std::function<void(size_t)> &Fn);

  /// True iff the calling thread is a pool worker executing a batch.
  static bool onWorkerThread();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

private:
  ThreadPool();
  ~ThreadPool();

  struct Impl;
  Impl *P;
};

} // namespace omega

#endif // OMEGA_SUPPORT_THREADPOOL_H
