//===- support/Trace.h - Hierarchical pipeline tracing ---------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured tracing for the counting pipeline: RAII spans form a tree
/// that mirrors where a query spends its effort — Pugh's §6 "how and why"
/// question asked of a single run.  Each span records wall time plus a
/// small fixed set of counters (constraints in, clauses out, splinters,
/// cache hits/misses, BigInt spills, budget charges) and optional string
/// annotations (budget exhaustion, degradation).
///
/// Thread model (DESIGN.md §12): the innermost open span is thread-local;
/// a span opened on a worker thread parents to the innermost span that was
/// open on the thread that *enqueued* the batch (the fan-out in
/// presburger/Parallel.cpp installs a TraceTaskScope around every task),
/// so the exported tree looks the same at every worker count — only the
/// thread ids differ.  Completed spans land in lock-free per-thread ring
/// buffers; exporters snapshot the rings after the query quiesces.
///
/// Cost model: with tracing disabled (the default) every instrumentation
/// site is one relaxed atomic load and a predictable branch — the ci.sh
/// trace leg gates this at <= 1% on bench_pipeline.  Tracing is
/// process-wide and not reentrant: start, run queries, stop, export.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SUPPORT_TRACE_H
#define OMEGA_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace omega {

/// Per-span counters.  The enum indexes a fixed array in every span, so
/// adding a counter is O(1) space per span and needs no per-site strings.
enum class TraceCounter : unsigned {
  ConstraintsIn,  ///< Constraints entering the phase.
  ClausesIn,      ///< Clauses (or clause pairs) entering the phase.
  ClausesOut,     ///< Clauses leaving the phase.
  Splinters,      ///< Splinters produced (§2.3.3).
  CacheHits,      ///< Conjunct-cache hits charged to this span.
  CacheMisses,    ///< Conjunct-cache misses charged to this span.
  BigIntSpills,   ///< Limb representations materialized under this span.
  BudgetCharges,  ///< Budget charge/checkpoint calls under this span.
};
constexpr unsigned NumTraceCounters = 8;

namespace trace_detail {
/// The process-wide enable flag.  Read (relaxed) by every instrumentation
/// site; everything else about the subsystem is behind this one branch.
extern std::atomic<bool> Enabled;
} // namespace trace_detail

/// True iff startTracing() is active.  The single cheap check every
/// tracing site is gated on.
inline bool tracingEnabled() {
  return trace_detail::Enabled.load(std::memory_order_relaxed);
}

/// One completed span, as exported.
struct TraceSpanRecord {
  uint64_t Id = 0;     ///< Unique per trace session, starts at 1.
  uint64_t Parent = 0; ///< Id of the parent span; 0 = root.
  const char *Name = nullptr; ///< Static phase name ("simplify", ...).
  uint32_t Tid = 0;    ///< Dense thread number (0 = first tracing thread).
  uint64_t StartNs = 0, DurNs = 0; ///< Relative to startTracing().
  uint64_t Counters[NumTraceCounters] = {};
  /// Rare string notes, e.g. {"budget_trip", "splinters=8 at projection"}.
  std::vector<std::pair<const char *, std::string>> Annotations;
};

/// Everything one tracing session collected; returned by stopTracing().
struct TraceData {
  std::vector<TraceSpanRecord> Spans; ///< Sorted by StartNs.
  uint64_t Dropped = 0; ///< Spans lost to ring-buffer overwrite.

  /// Chrome trace_event JSON (load in chrome://tracing or Perfetto):
  /// one complete ("ph":"X") event per span, counters and parent id under
  /// "args".  Always a single JSON object that json.load()s.
  std::string toChromeJson() const;

  /// Human-readable per-phase aggregation: span count, total and *self*
  /// wall time (total minus time in child spans), and counter sums.
  std::string toSummary() const;

  /// The record with the given id, or nullptr.
  const TraceSpanRecord *find(uint64_t Id) const;
};

/// Clears all ring buffers and enables span collection.  Not reentrant:
/// tracing is process-wide, one session at a time.
void startTracing();

/// Disables collection and returns the session's spans.  Call only when no
/// traced query is in flight (the rings are single-writer; exporters do
/// not synchronize with running spans).
std::shared_ptr<const TraceData> stopTracing();

/// RAII span.  Constructing with tracing disabled is the fast path: one
/// flag load, no id allocation, destructor does nothing.  Spans must be
/// strictly nested per thread (stack objects guarantee this).  Name must
/// point to storage that outlives the session (string literals).
class TraceSpan {
public:
  explicit TraceSpan(const char *Name);
  ~TraceSpan();

  /// True when this span is live (tracing was enabled at construction).
  bool active() const { return Rec != nullptr; }

  /// Adds to one of this span's counters.  No-op when inactive.
  void count(TraceCounter C, uint64_t N = 1);

  /// Attaches a key=value note.  Key must be a string literal.
  void annotate(const char *Key, std::string Value);

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  TraceSpanRecord *Rec; ///< Null when tracing is off; else the open record.
};

/// Adds to a counter of the innermost open span on this thread (no-op when
/// tracing is off or no span is open).  This is how leaf subsystems — the
/// conjunct cache, BigInt spills, budget charges — attribute events to
/// whichever phase is running without knowing about it.
void traceCount(TraceCounter C, uint64_t N = 1);

/// Annotates the innermost open span on this thread (same contract as
/// traceCount).  Used for budget exhaustion and degradation notes.
void traceAnnotate(const char *Key, std::string Value);

/// Id of the innermost open span on this thread (0 when none / tracing
/// off).  Fan-out code captures this on the enqueuing thread.
uint64_t currentTraceSpan();

/// RAII: makes \p ParentId the parent for spans opened on this thread
/// while no other span is open — installed by the thread-pool fan-out
/// around each task so worker-side spans parent to the enqueuing span.
class TraceTaskScope {
public:
  explicit TraceTaskScope(uint64_t ParentId);
  ~TraceTaskScope();
  TraceTaskScope(const TraceTaskScope &) = delete;
  TraceTaskScope &operator=(const TraceTaskScope &) = delete;

private:
  uint64_t Prev;
  bool Installed;
};

} // namespace omega

#endif // OMEGA_SUPPORT_TRACE_H
