//===- support/BigInt.h - Arbitrary-precision signed integers --*- C++ -*-===//
//
// Part of OmegaCount, a reproduction of W. Pugh, "Counting Solutions to
// Presburger Formulas: How and Why" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sign-magnitude arbitrary-precision integer arithmetic.
///
/// The Omega test grows constraint coefficients multiplicatively (Fourier
/// pair combination multiplies coefficients; the paper's implementation used
/// overflow-checked machine ints and simply gave up on overflow).  We
/// substitute exact bignums so no query ever aborts; see DESIGN.md §2.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SUPPORT_BIGINT_H
#define OMEGA_SUPPORT_BIGINT_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace omega {

/// Arbitrary-precision signed integer.
///
/// Represented as a sign flag plus little-endian base-2^32 magnitude limbs
/// with no trailing zero limbs; zero is the empty limb vector with positive
/// sign, so every value has a unique representation and bitwise equality of
/// the members is value equality.
class BigInt {
public:
  /// Constructs zero.
  BigInt() = default;

  /// Implicitly converts from a machine integer.
  BigInt(long long V);
  BigInt(int V) : BigInt(static_cast<long long>(V)) {}
  BigInt(long V) : BigInt(static_cast<long long>(V)) {}
  BigInt(unsigned long long V);
  BigInt(unsigned long V) : BigInt(static_cast<unsigned long long>(V)) {}
  BigInt(unsigned V) : BigInt(static_cast<unsigned long long>(V)) {}

  /// Parses a decimal string with optional leading '-'.  Asserts on
  /// malformed input; use fromString for fallible parsing.
  explicit BigInt(std::string_view Decimal);

  /// Parses a decimal string, returning false on malformed input.
  static bool fromString(std::string_view Decimal, BigInt &Out);

  bool isZero() const { return Limbs.empty(); }
  bool isNegative() const { return Negative; }
  bool isPositive() const { return !Negative && !Limbs.empty(); }
  bool isOne() const { return !Negative && Limbs.size() == 1 && Limbs[0] == 1; }
  bool isMinusOne() const {
    return Negative && Limbs.size() == 1 && Limbs[0] == 1;
  }

  /// Returns -1, 0, or +1 according to the sign.
  int sign() const { return isZero() ? 0 : (Negative ? -1 : 1); }

  /// Returns true iff the value fits in int64_t.
  bool fitsInt64() const;

  /// Converts to int64_t; asserts the value fits.
  int64_t toInt64() const;

  /// Converts to double (approximately, for diagnostics/heuristics only).
  double toDouble() const;

  /// Number of bits in the magnitude (0 for zero): |x| < 2^bitWidth().
  /// Drives the EffortBudget coefficient-width check.
  unsigned bitWidth() const;

  BigInt operator-() const;
  BigInt abs() const { return Negative ? -*this : *this; }

  BigInt &operator+=(const BigInt &RHS);
  BigInt &operator-=(const BigInt &RHS);
  BigInt &operator*=(const BigInt &RHS);
  /// Truncated division (C semantics: rounds toward zero).
  BigInt &operator/=(const BigInt &RHS);
  /// Truncated remainder (sign follows the dividend).
  BigInt &operator%=(const BigInt &RHS);

  friend BigInt operator+(BigInt L, const BigInt &R) { return L += R; }
  friend BigInt operator-(BigInt L, const BigInt &R) { return L -= R; }
  friend BigInt operator*(BigInt L, const BigInt &R) { return L *= R; }
  friend BigInt operator/(BigInt L, const BigInt &R) { return L /= R; }
  friend BigInt operator%(BigInt L, const BigInt &R) { return L %= R; }

  BigInt &operator++() { return *this += BigInt(1); }
  BigInt &operator--() { return *this -= BigInt(1); }

  friend bool operator==(const BigInt &L, const BigInt &R) {
    return L.Negative == R.Negative && L.Limbs == R.Limbs;
  }
  friend bool operator!=(const BigInt &L, const BigInt &R) {
    return !(L == R);
  }
  friend bool operator<(const BigInt &L, const BigInt &R) {
    return L.compare(R) < 0;
  }
  friend bool operator>(const BigInt &L, const BigInt &R) {
    return L.compare(R) > 0;
  }
  friend bool operator<=(const BigInt &L, const BigInt &R) {
    return L.compare(R) <= 0;
  }
  friend bool operator>=(const BigInt &L, const BigInt &R) {
    return L.compare(R) >= 0;
  }

  /// Three-way comparison: negative, zero, or positive.
  int compare(const BigInt &RHS) const;

  /// Simultaneous truncated quotient and remainder.
  static void divMod(const BigInt &Num, const BigInt &Den, BigInt &Quot,
                     BigInt &Rem);

  /// Floor division: rounds toward negative infinity.
  static BigInt floorDiv(const BigInt &Num, const BigInt &Den);
  /// Ceiling division: rounds toward positive infinity.
  static BigInt ceilDiv(const BigInt &Num, const BigInt &Den);
  /// Mathematical modulus: result in [0, |Den|).
  static BigInt floorMod(const BigInt &Num, const BigInt &Den);

  /// Greatest common divisor (always non-negative; gcd(0,0) == 0).
  static BigInt gcd(const BigInt &A, const BigInt &B);
  /// Least common multiple (always non-negative).
  static BigInt lcm(const BigInt &A, const BigInt &B);
  /// Extended gcd: returns g = gcd(A,B) and sets X, Y with A*X + B*Y == g.
  static BigInt extendedGcd(const BigInt &A, const BigInt &B, BigInt &X,
                            BigInt &Y);
  /// Returns A^E for E >= 0.
  static BigInt pow(const BigInt &A, unsigned E);

  /// Returns true iff this value evenly divides \p E (0 divides only 0).
  bool divides(const BigInt &E) const;

  std::string toString() const;

  /// Hash suitable for unordered containers.
  size_t hash() const;

  friend std::ostream &operator<<(std::ostream &OS, const BigInt &V);

private:
  /// Magnitude comparison ignoring sign: -1, 0, +1.
  static int compareMagnitude(const std::vector<uint32_t> &A,
                              const std::vector<uint32_t> &B);
  static void addMagnitude(std::vector<uint32_t> &A,
                           const std::vector<uint32_t> &B);
  /// Requires |A| >= |B|; computes A -= B on magnitudes.
  static void subMagnitude(std::vector<uint32_t> &A,
                           const std::vector<uint32_t> &B);
  static std::vector<uint32_t> mulMagnitude(const std::vector<uint32_t> &A,
                                            const std::vector<uint32_t> &B);
  /// Magnitude division; returns quotient, leaves remainder in A.
  static std::vector<uint32_t> divModMagnitude(std::vector<uint32_t> &A,
                                               const std::vector<uint32_t> &B);
  void trim();

  bool Negative = false;
  std::vector<uint32_t> Limbs;
};

std::ostream &operator<<(std::ostream &OS, const BigInt &V);

} // namespace omega

template <> struct std::hash<omega::BigInt> {
  size_t operator()(const omega::BigInt &V) const { return V.hash(); }
};

#endif // OMEGA_SUPPORT_BIGINT_H
