//===- support/BigInt.h - Arbitrary-precision signed integers --*- C++ -*-===//
//
// Part of OmegaCount, a reproduction of W. Pugh, "Counting Solutions to
// Presburger Formulas: How and Why" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small-value-optimized arbitrary-precision signed integer arithmetic.
///
/// The Omega test grows constraint coefficients multiplicatively (Fourier
/// pair combination multiplies coefficients; the paper's implementation used
/// overflow-checked machine ints and simply gave up on overflow).  We
/// substitute exact bignums so no query ever aborts — but, as the paper
/// observes, coefficients are almost always small, so the representation is
/// an inline int64_t whenever |v| < 2^62, spilling to sign-magnitude limbs
/// only on overflow.  See DESIGN.md §2 and §10.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SUPPORT_BIGINT_H
#define OMEGA_SUPPORT_BIGINT_H

#include "support/Error.h"

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace omega {

/// Arithmetic-layer observability counters (surfaced through
/// snapshotPipelineStats(); see support/Stats.h).  Spills — transitions of
/// a stored value to the heap-allocated limb representation — are always
/// counted because they are rare and are the signal the allocation-free
/// claim is checked against.  Per-operation fast/slow tallies cost an
/// atomic increment on every arithmetic operation, so they are gated
/// behind CountOps (enabled by `--stats` and the bench harnesses).
struct ArithCounters {
  std::atomic<uint64_t> Spills{0};  ///< Limb representations materialized.
  std::atomic<uint64_t> FastOps{0}; ///< Inline-int64 fast-path operations.
  std::atomic<uint64_t> SlowOps{0}; ///< Limb slow-path operations.
  std::atomic<bool> CountOps{false};
};

namespace detail {
inline ArithCounters ArithStats;
/// Per-thread redirect installed by QueryContextScope
/// (support/QueryContext.h): when non-null, arithmetic counter traffic on
/// this thread lands in the active query's block instead of the
/// process-wide counters.  Per-query op counting happens by giving the
/// block's CountOps flag the query's CountArithOps setting — no process
/// state is ever mutated.
inline thread_local ArithCounters *ActiveArithStats = nullptr;
} // namespace detail

/// The arithmetic counters ops on this thread tally into: the active
/// query's block under a stats-collecting QueryContextScope, else the
/// process-wide instance.
inline ArithCounters &arithCounters() {
  return detail::ActiveArithStats ? *detail::ActiveArithStats
                                  : detail::ArithStats;
}

/// Arbitrary-precision signed integer with a small-value optimization.
///
/// Representation invariant (unique per value, so bitwise member equality
/// is value equality):
///
///   * |v| <= SmallMax (= 2^62 - 1): IsSmall is true, the value lives in
///     the inline int64_t Small, and Limbs is empty — no heap allocation
///     anywhere on this path;
///   * |v| >  SmallMax: IsSmall is false and the value is a sign flag plus
///     little-endian base-2^32 magnitude limbs with no trailing zero limbs
///     (so at least two limbs are always present).
///
/// Every operation re-establishes the invariant: limb results that fit the
/// small range "unspill" back to the inline form.  The 62-bit bound (not
/// 63) guarantees the sum or difference of any two small values fits in
/// int64_t, so the add/sub fast paths need no overflow probe at all;
/// multiplication detects overflow with __builtin_mul_overflow and falls
/// back to the limb path.
class BigInt {
public:
  /// Constructs zero.
  BigInt() = default;

  /// Implicitly converts from a machine integer.
  BigInt(long long V) {
    if (fitsSmall(V))
      Small = V;
    else
      initLarge(V);
  }
  BigInt(int V) : BigInt(static_cast<long long>(V)) {}
  BigInt(long V) : BigInt(static_cast<long long>(V)) {}
  BigInt(unsigned long long V) {
    if (V <= static_cast<unsigned long long>(SmallMax))
      Small = static_cast<int64_t>(V);
    else
      initLarge(V);
  }
  BigInt(unsigned long V) : BigInt(static_cast<unsigned long long>(V)) {}
  BigInt(unsigned V) : BigInt(static_cast<unsigned long long>(V)) {}

  /// Parses a decimal string with optional leading '-'.  Malformed input is
  /// a fatal error in every build type; use fromString for fallible
  /// parsing (all tool-facing parses go through fromString).
  explicit BigInt(std::string_view Decimal);

  /// Parses a decimal string, returning false on malformed input.
  static bool fromString(std::string_view Decimal, BigInt &Out);

  bool isZero() const { return IsSmall && Small == 0; }
  bool isNegative() const { return IsSmall ? Small < 0 : Negative; }
  bool isPositive() const { return IsSmall ? Small > 0 : !Negative; }
  bool isOne() const { return IsSmall && Small == 1; }
  bool isMinusOne() const { return IsSmall && Small == -1; }

  /// Returns -1, 0, or +1 according to the sign.
  int sign() const {
    if (IsSmall)
      return (Small > 0) - (Small < 0);
    return Negative ? -1 : 1;
  }

  /// Returns true iff the value fits in int64_t.
  bool fitsInt64() const;

  /// Converts to int64_t; asserts the value fits.
  int64_t toInt64() const;

  /// Converts to double (approximately, for diagnostics/heuristics only).
  double toDouble() const;

  /// Number of bits in the magnitude (0 for zero): |x| < 2^bitWidth().
  /// Drives the EffortBudget coefficient-width check.
  unsigned bitWidth() const {
    if (IsSmall)
      return static_cast<unsigned>(std::bit_width(smallMagnitude()));
    return static_cast<unsigned>(32 * (Limbs.size() - 1)) +
           static_cast<unsigned>(std::bit_width(Limbs.back()));
  }

  BigInt operator-() const {
    BigInt R = *this;
    if (R.IsSmall)
      R.Small = -R.Small; // Symmetric small range: always representable.
    else
      R.Negative = !R.Negative;
    return R;
  }
  BigInt abs() const { return isNegative() ? -*this : *this; }

  BigInt &operator+=(const BigInt &RHS) {
    if (IsSmall && RHS.IsSmall) {
      // |a| + |b| <= 2^63 - 2, so int64 addition cannot overflow.
      int64_t R = Small + RHS.Small;
      if (fitsSmall(R)) {
        Small = R;
        noteFastOp();
        return *this;
      }
      initLarge(static_cast<long long>(R));
      return *this;
    }
    return addSlow(RHS);
  }
  BigInt &operator-=(const BigInt &RHS) {
    if (IsSmall && RHS.IsSmall) {
      int64_t R = Small - RHS.Small;
      if (fitsSmall(R)) {
        Small = R;
        noteFastOp();
        return *this;
      }
      initLarge(static_cast<long long>(R));
      return *this;
    }
    return subSlow(RHS);
  }
  BigInt &operator*=(const BigInt &RHS) {
    if (IsSmall && RHS.IsSmall) {
      int64_t R;
      if (!__builtin_mul_overflow(Small, RHS.Small, &R)) {
        if (fitsSmall(R)) {
          Small = R;
          noteFastOp();
          return *this;
        }
        initLarge(static_cast<long long>(R));
        return *this;
      }
    }
    return mulSlow(RHS);
  }
  /// Truncated division (C semantics: rounds toward zero).
  BigInt &operator/=(const BigInt &RHS) {
    if (IsSmall && RHS.IsSmall) {
      // |Small| < 2^62 rules out INT64_MIN / -1, the only UB case.
      check(RHS.Small != 0, "division by zero");
      Small /= RHS.Small;
      noteFastOp();
      return *this;
    }
    return divSlow(RHS);
  }
  /// Truncated remainder (sign follows the dividend).
  BigInt &operator%=(const BigInt &RHS) {
    if (IsSmall && RHS.IsSmall) {
      check(RHS.Small != 0, "division by zero");
      Small %= RHS.Small;
      noteFastOp();
      return *this;
    }
    return remSlow(RHS);
  }

  friend BigInt operator+(BigInt L, const BigInt &R) { return L += R; }
  friend BigInt operator-(BigInt L, const BigInt &R) { return L -= R; }
  friend BigInt operator*(BigInt L, const BigInt &R) { return L *= R; }
  friend BigInt operator/(BigInt L, const BigInt &R) { return L /= R; }
  friend BigInt operator%(BigInt L, const BigInt &R) { return L %= R; }

  BigInt &operator++() { return *this += BigInt(1); }
  BigInt &operator--() { return *this -= BigInt(1); }

  friend bool operator==(const BigInt &L, const BigInt &R) {
    if (L.IsSmall != R.IsSmall)
      return false; // Unique representation: forms never overlap.
    if (L.IsSmall)
      return L.Small == R.Small;
    return L.Negative == R.Negative && L.Limbs == R.Limbs;
  }
  friend bool operator!=(const BigInt &L, const BigInt &R) {
    return !(L == R);
  }
  friend bool operator<(const BigInt &L, const BigInt &R) {
    return L.compare(R) < 0;
  }
  friend bool operator>(const BigInt &L, const BigInt &R) {
    return L.compare(R) > 0;
  }
  friend bool operator<=(const BigInt &L, const BigInt &R) {
    return L.compare(R) <= 0;
  }
  friend bool operator>=(const BigInt &L, const BigInt &R) {
    return L.compare(R) >= 0;
  }

  /// Three-way comparison: negative, zero, or positive.
  int compare(const BigInt &RHS) const {
    if (IsSmall && RHS.IsSmall)
      return (Small > RHS.Small) - (Small < RHS.Small);
    // A limb value's magnitude always exceeds any small value's.
    if (IsSmall)
      return RHS.Negative ? 1 : -1;
    if (RHS.IsSmall)
      return Negative ? -1 : 1;
    return compareSlow(RHS);
  }

  /// Simultaneous truncated quotient and remainder.
  static void divMod(const BigInt &Num, const BigInt &Den, BigInt &Quot,
                     BigInt &Rem);

  /// Floor division: rounds toward negative infinity.
  static BigInt floorDiv(const BigInt &Num, const BigInt &Den) {
    if (Num.IsSmall && Den.IsSmall) {
      check(Den.Small != 0, "division by zero");
      int64_t Q = Num.Small / Den.Small, R = Num.Small % Den.Small;
      if (R != 0 && ((R < 0) != (Den.Small < 0)))
        --Q;
      return BigInt(static_cast<long long>(Q));
    }
    return floorDivSlow(Num, Den);
  }
  /// Ceiling division: rounds toward positive infinity.
  static BigInt ceilDiv(const BigInt &Num, const BigInt &Den) {
    if (Num.IsSmall && Den.IsSmall) {
      check(Den.Small != 0, "division by zero");
      int64_t Q = Num.Small / Den.Small, R = Num.Small % Den.Small;
      if (R != 0 && ((R < 0) == (Den.Small < 0)))
        ++Q;
      return BigInt(static_cast<long long>(Q));
    }
    return ceilDivSlow(Num, Den);
  }
  /// Mathematical modulus: result in [0, |Den|).
  static BigInt floorMod(const BigInt &Num, const BigInt &Den) {
    if (Num.IsSmall && Den.IsSmall) {
      check(Den.Small != 0, "division by zero");
      int64_t D = Den.Small < 0 ? -Den.Small : Den.Small;
      int64_t R = Num.Small % D;
      if (R < 0)
        R += D;
      return BigInt(static_cast<long long>(R));
    }
    return floorModSlow(Num, Den);
  }

  /// Exact division: requires Den to evenly divide Num (checked in debug
  /// builds).  Use where divisibility is already proven — after a gcd, a
  /// Bareiss pivot, or a divides() test — to skip the remainder work.
  static BigInt divExact(const BigInt &Num, const BigInt &Den) {
    if (Num.IsSmall && Den.IsSmall) {
      check(Den.Small != 0, "division by zero");
      check(Num.Small % Den.Small == 0, "divExact: inexact division");
      return BigInt(static_cast<long long>(Num.Small / Den.Small));
    }
    return divExactSlow(Num, Den);
  }

  /// Greatest common divisor (always non-negative; gcd(0,0) == 0).
  static BigInt gcd(const BigInt &A, const BigInt &B) {
    if (A.IsSmall && B.IsSmall)
      return BigInt(static_cast<long long>(gcdInt64(A.Small, B.Small)));
    return gcdSlow(A, B);
  }
  /// Least common multiple (always non-negative).
  static BigInt lcm(const BigInt &A, const BigInt &B);
  /// Extended gcd: returns g = gcd(A,B) and sets X, Y with A*X + B*Y == g.
  static BigInt extendedGcd(const BigInt &A, const BigInt &B, BigInt &X,
                            BigInt &Y);
  /// Returns A^E for E >= 0.
  static BigInt pow(const BigInt &A, unsigned E);

  /// Binary gcd on machine words; always non-negative, gcd(0,0) == 0.
  /// The workhorse behind Rational::normalize on the small path.
  static int64_t gcdInt64(int64_t A, int64_t B) {
    uint64_t U = A < 0 ? 0 - static_cast<uint64_t>(A)
                       : static_cast<uint64_t>(A);
    uint64_t V = B < 0 ? 0 - static_cast<uint64_t>(B)
                       : static_cast<uint64_t>(B);
    if (U == 0)
      return static_cast<int64_t>(V);
    if (V == 0)
      return static_cast<int64_t>(U);
    int Shift = std::countr_zero(U | V);
    U >>= std::countr_zero(U);
    do {
      V >>= std::countr_zero(V);
      if (U > V)
        std::swap(U, V);
      V -= U;
    } while (V != 0);
    return static_cast<int64_t>(U << Shift);
  }

  /// Returns true iff this value evenly divides \p E (0 divides only 0).
  bool divides(const BigInt &E) const {
    if (IsSmall && E.IsSmall) {
      if (Small == 0)
        return E.Small == 0;
      noteFastOp();
      return E.Small % Small == 0;
    }
    return dividesSlow(E);
  }

  std::string toString() const;

  /// Hash suitable for unordered containers.
  size_t hash() const {
    if (IsSmall) {
      // splitmix64 finalizer: decorrelates nearby small values.
      uint64_t X = static_cast<uint64_t>(Small) + 0x9e3779b97f4a7c15ull;
      X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
      X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
      return static_cast<size_t>(X ^ (X >> 31));
    }
    return hashSlow();
  }

  /// Testing hook: converts the representation to limbs *without*
  /// re-establishing the small-form invariant, so subsequent arithmetic
  /// exercises the slow paths.  Results of arithmetic on spilled values
  /// are canonical again.  Mixed-representation comparisons against a
  /// force-spilled value are out of contract (compare() exploits the
  /// invariant); arithmetic is fine.  No-op on zero.
  void forceSpillForTesting();

  /// True when the value is held inline (no heap allocation).
  bool isSmallRep() const { return IsSmall; }

  friend std::ostream &operator<<(std::ostream &OS, const BigInt &V);

private:
  /// Small-form bound: |v| <= SmallMax keeps add/sub of two small values
  /// inside int64_t.
  static constexpr int64_t SmallMax = (int64_t(1) << 62) - 1;
  static bool fitsSmall(int64_t V) { return V >= -SmallMax && V <= SmallMax; }

  uint64_t smallMagnitude() const {
    return Small < 0 ? 0 - static_cast<uint64_t>(Small)
                     : static_cast<uint64_t>(Small);
  }

  static void noteFastOp() {
    if (detail::ArithStats.CountOps.load(std::memory_order_relaxed))
      detail::ArithStats.FastOps.fetch_add(1, std::memory_order_relaxed);
  }
  static void noteSlowOp() {
    if (detail::ArithStats.CountOps.load(std::memory_order_relaxed))
      detail::ArithStats.SlowOps.fetch_add(1, std::memory_order_relaxed);
  }

  /// Spills an int64 magnitude into the limb form (counts a spill).
  void initLarge(long long V);
  void initLarge(unsigned long long V);
  /// Installs a trimmed limb magnitude, unspilling if it fits the small
  /// range; counts a spill when the limb form is kept.
  void setLarge(bool Neg, std::vector<uint32_t> &&Mag);

  BigInt &addSlow(const BigInt &RHS);
  BigInt &subSlow(const BigInt &RHS);
  BigInt &mulSlow(const BigInt &RHS);
  BigInt &divSlow(const BigInt &RHS);
  BigInt &remSlow(const BigInt &RHS);
  int compareSlow(const BigInt &RHS) const;
  bool dividesSlow(const BigInt &E) const;
  size_t hashSlow() const;
  static BigInt floorDivSlow(const BigInt &Num, const BigInt &Den);
  static BigInt ceilDivSlow(const BigInt &Num, const BigInt &Den);
  static BigInt floorModSlow(const BigInt &Num, const BigInt &Den);
  static BigInt divExactSlow(const BigInt &Num, const BigInt &Den);
  static BigInt gcdSlow(const BigInt &A, const BigInt &B);

  /// Returns this value's magnitude limbs: the live vector for limb form,
  /// or \p Storage filled from the inline value.
  const std::vector<uint32_t> &magnitudeLimbs(
      std::vector<uint32_t> &Storage) const;

  /// Magnitude comparison ignoring sign: -1, 0, +1.
  static int compareMagnitude(const std::vector<uint32_t> &A,
                              const std::vector<uint32_t> &B);
  static void addMagnitude(std::vector<uint32_t> &A,
                           const std::vector<uint32_t> &B);
  /// Requires |A| >= |B|; computes A -= B on magnitudes.
  static void subMagnitude(std::vector<uint32_t> &A,
                           const std::vector<uint32_t> &B);
  static std::vector<uint32_t> mulMagnitude(const std::vector<uint32_t> &A,
                                            const std::vector<uint32_t> &B);
  /// Magnitude division; returns quotient, leaves remainder in A.
  static std::vector<uint32_t> divModMagnitude(std::vector<uint32_t> &A,
                                               const std::vector<uint32_t> &B);

  int64_t Small = 0;   ///< The value when IsSmall.
  bool IsSmall = true; ///< Representation tag.
  bool Negative = false;        ///< Sign of the limb form (false when small).
  std::vector<uint32_t> Limbs;  ///< Magnitude limbs (empty when small).
};

std::ostream &operator<<(std::ostream &OS, const BigInt &V);

} // namespace omega

template <> struct std::hash<omega::BigInt> {
  size_t operator()(const omega::BigInt &V) const { return V.hash(); }
};

#endif // OMEGA_SUPPORT_BIGINT_H
