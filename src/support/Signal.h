//===- support/Signal.h - Graceful-shutdown signal plumbing ----*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Self-pipe signal delivery for long-running tools.  A signal handler may
/// only touch async-signal-safe primitives, so omegad's handler does the
/// one safe thing — write a byte to a pipe — and the main thread turns
/// that byte into an orderly Server::stop() by polling the pipe's read
/// end.  No handler ever touches the server, the allocator, or a mutex.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SUPPORT_SIGNAL_H
#define OMEGA_SUPPORT_SIGNAL_H

namespace omega {

/// Installs SIGINT/SIGTERM handlers that write one byte to an internal
/// pipe, and returns the pipe's read fd (poll it for POLLIN to observe
/// shutdown requests).  Also ignores SIGPIPE, so a client that vanishes
/// mid-response surfaces as a write error instead of killing the process.
/// Returns -1 on failure.  Call at most once per process.
int installShutdownSignalPipe();

/// True once a shutdown signal has been delivered (handler-set flag; safe
/// to read from any thread).
bool shutdownSignalled();

/// Programmatic trigger for the same pipe, for tests that want to exercise
/// the shutdown path without raising a real signal.
void requestShutdownSignal();

} // namespace omega

#endif // OMEGA_SUPPORT_SIGNAL_H
