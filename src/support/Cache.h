//===- support/Cache.h - Bounded thread-safe LRU cache ---------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mutex-protected, bounded, least-recently-used cache from string keys
/// to values, with hit/miss/eviction counters.  The omega layer builds its
/// conjunct memoization (feasibility and projection results keyed by
/// canonical clause form) on top of this; see omega/Omega.h and DESIGN.md
/// §8 for what is and is not safe to memoize.
///
/// Values must be safe to copy out under the lock (the cache hands back
/// copies, never references, so entries can be evicted at any time).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SUPPORT_CACHE_H
#define OMEGA_SUPPORT_CACHE_H

#include "support/ThreadAnnotations.h"

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace omega {

/// Counter snapshot for one cache.
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
};

/// Bounded LRU map<string, Value>.  A capacity of 0 disables the cache:
/// every lookup misses (uncounted) and inserts are dropped.
template <typename Value> class LruCache {
public:
  explicit LruCache(size_t Capacity) : Cap(Capacity) {}

  /// Returns a copy of the cached value and refreshes its recency, or
  /// nullopt on a miss.
  std::optional<Value> lookup(const std::string &Key) {
    MutexLock Lock(M);
    if (Cap == 0)
      return std::nullopt;
    auto It = Map.find(Key);
    if (It == Map.end()) {
      ++St.Misses;
      return std::nullopt;
    }
    Order.splice(Order.begin(), Order, It->second);
    ++St.Hits;
    return It->second->second;
  }

  /// Inserts (or refreshes) Key -> V, evicting least-recently-used entries
  /// beyond capacity.  Returns the number of entries evicted.
  size_t insert(const std::string &Key, Value V) {
    MutexLock Lock(M);
    if (Cap == 0)
      return 0;
    auto It = Map.find(Key);
    if (It != Map.end()) {
      // Racing computations of the same key produce equal values (keys
      // determine results); keep the existing entry, refresh recency.
      Order.splice(Order.begin(), Order, It->second);
      return 0;
    }
    Order.emplace_front(Key, std::move(V));
    Map.emplace(Key, Order.begin());
    size_t Evicted = 0;
    while (Map.size() > Cap) {
      Map.erase(Order.back().first);
      Order.pop_back();
      ++Evicted;
    }
    St.Evictions += Evicted;
    return Evicted;
  }

  void setCapacity(size_t Capacity) {
    MutexLock Lock(M);
    Cap = Capacity;
    while (Map.size() > Cap) {
      Map.erase(Order.back().first);
      Order.pop_back();
      ++St.Evictions;
    }
  }

  size_t capacity() const {
    MutexLock Lock(M);
    return Cap;
  }

  size_t size() const {
    MutexLock Lock(M);
    return Map.size();
  }

  /// Drops all entries (counters are kept; see resetStats).
  void clear() {
    MutexLock Lock(M);
    Map.clear();
    Order.clear();
  }

  CacheStats stats() const {
    MutexLock Lock(M);
    return St;
  }

  void resetStats() {
    MutexLock Lock(M);
    St = CacheStats();
  }

private:
  mutable Mutex M;
  size_t Cap OMEGA_GUARDED_BY(M);
  /// Front = most recent.
  std::list<std::pair<std::string, Value>> Order OMEGA_GUARDED_BY(M);
  std::unordered_map<std::string,
                     typename std::list<std::pair<std::string, Value>>::
                         iterator>
      Map OMEGA_GUARDED_BY(M);
  CacheStats St OMEGA_GUARDED_BY(M);
};

} // namespace omega

#endif // OMEGA_SUPPORT_CACHE_H
