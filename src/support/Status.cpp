//===- support/Status.cpp - Recoverable error channel --------------------===//

#include "support/Status.h"

using namespace omega;

const char *omega::errorKindName(ErrorKind K) {
  switch (K) {
  case ErrorKind::Parse:
    return "parse error";
  case ErrorKind::InvalidInput:
    return "invalid input";
  case ErrorKind::Unsupported:
    return "unsupported";
  case ErrorKind::Io:
    return "io error";
  case ErrorKind::BudgetExhausted:
    return "budget exhausted";
  case ErrorKind::Internal:
    return "internal error";
  }
  return "unknown error";
}

const char *omega::countStatusName(CountStatus S) {
  switch (S) {
  case CountStatus::Exact:
    return "exact";
  case CountStatus::Bounded:
    return "bounded";
  case CountStatus::Unbounded:
    return "unbounded";
  case CountStatus::Error:
    return "error";
  }
  return "unknown";
}

const char *omega::queryOutcomeName(QueryOutcome O) {
  switch (O) {
  case QueryOutcome::Exact:
    return "exact";
  case QueryOutcome::Bounded:
    return "bounded";
  case QueryOutcome::Unbounded:
    return "unbounded";
  case QueryOutcome::ParseError:
    return "parse-error";
  case QueryOutcome::InvalidInput:
    return "invalid-input";
  case QueryOutcome::Unsupported:
    return "unsupported";
  case QueryOutcome::IoError:
    return "io-error";
  case QueryOutcome::BudgetExhausted:
    return "budget-exhausted";
  case QueryOutcome::InternalError:
    return "internal-error";
  case QueryOutcome::Overloaded:
    return "overloaded";
  case QueryOutcome::MalformedFrame:
    return "malformed-frame";
  case QueryOutcome::ShuttingDown:
    return "shutting-down";
  }
  return "unknown";
}

int omega::queryOutcomeExitCode(QueryOutcome O) {
  // A malformed frame is a client bug, not a condition that clears up on
  // retry — it exits like a diagnostic despite living in the service band.
  if (O == QueryOutcome::MalformedFrame)
    return 1;
  unsigned V = static_cast<unsigned>(O);
  if (V < 10)
    return 0;
  if (V < 20)
    return 1;
  return 75; // EX_TEMPFAIL: transient, retry may succeed.
}

QueryOutcome omega::queryOutcomeForStatus(CountStatus S) {
  switch (S) {
  case CountStatus::Exact:
    return QueryOutcome::Exact;
  case CountStatus::Bounded:
    return QueryOutcome::Bounded;
  case CountStatus::Unbounded:
    return QueryOutcome::Unbounded;
  case CountStatus::Error:
    break; // Callers map the ErrorKind instead.
  }
  return QueryOutcome::InternalError;
}

QueryOutcome omega::queryOutcomeForError(ErrorKind K) {
  switch (K) {
  case ErrorKind::Parse:
    return QueryOutcome::ParseError;
  case ErrorKind::InvalidInput:
    return QueryOutcome::InvalidInput;
  case ErrorKind::Unsupported:
    return QueryOutcome::Unsupported;
  case ErrorKind::Io:
    return QueryOutcome::IoError;
  case ErrorKind::BudgetExhausted:
    return QueryOutcome::BudgetExhausted;
  case ErrorKind::Internal:
    return QueryOutcome::InternalError;
  }
  return QueryOutcome::InternalError;
}

std::string Error::toString() const {
  std::string Out = errorKindName(Kind);
  if (!Layer.empty()) {
    Out += " in ";
    Out += Layer;
  }
  if (!Location.empty()) {
    Out += " at ";
    Out += Location;
  }
  Out += ": ";
  Out += Message;
  return Out;
}
