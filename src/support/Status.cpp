//===- support/Status.cpp - Recoverable error channel --------------------===//

#include "support/Status.h"

using namespace omega;

const char *omega::errorKindName(ErrorKind K) {
  switch (K) {
  case ErrorKind::Parse:
    return "parse error";
  case ErrorKind::InvalidInput:
    return "invalid input";
  case ErrorKind::Unsupported:
    return "unsupported";
  case ErrorKind::Io:
    return "io error";
  case ErrorKind::BudgetExhausted:
    return "budget exhausted";
  case ErrorKind::Internal:
    return "internal error";
  }
  return "unknown error";
}

const char *omega::countStatusName(CountStatus S) {
  switch (S) {
  case CountStatus::Exact:
    return "exact";
  case CountStatus::Bounded:
    return "bounded";
  case CountStatus::Unbounded:
    return "unbounded";
  case CountStatus::Error:
    return "error";
  }
  return "unknown";
}

std::string Error::toString() const {
  std::string Out = errorKindName(Kind);
  if (!Layer.empty()) {
    Out += " in ";
    Out += Layer;
  }
  if (!Location.empty()) {
    Out += " at ";
    Out += Location;
  }
  Out += ": ";
  Out += Message;
  return Out;
}
