//===- support/ThreadAnnotations.h - Clang capability analysis -*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiler-checked lock discipline for the concurrency layer (DESIGN.md
/// §13).  Two things live here:
///
///   1. The Abseil/LLVM-style capability-annotation macros
///      (OMEGA_GUARDED_BY, OMEGA_REQUIRES, ...).  Under Clang with
///      -Wthread-safety these become `__attribute__((...))` and turn
///      unguarded accesses and lock-order mistakes into compile errors
///      (the ci.sh analyze leg builds with -Werror=thread-safety); under
///      every other compiler they expand to nothing, so annotations are
///      zero-cost and portable.
///
///   2. Annotated synchronization primitives: Mutex (a std::mutex carrying
///      the CAPABILITY attribute), MutexLock / UniqueLock (scoped
///      capabilities), and ConditionVariable (condition_variable_any, so
///      it can wait on a UniqueLock).  Clang's analysis knows nothing
///      about raw std::mutex, so all lock-protected state in this repo
///      uses these wrappers — omegatidy's mutex-wrapper rule enforces it.
///
/// Annotation model: every mutable field a mutex protects is declared
/// OMEGA_GUARDED_BY(that mutex); functions that expect the caller to hold
/// a lock say OMEGA_REQUIRES(m).  Deliberately *unannotated* state is one
/// of: std::atomic fields (safe unguarded by construction), per-thread
/// data reached only through thread_local (the trace ring buffers), or
/// condition variables (internally synchronized).  DESIGN.md §13 lists
/// every capability in the system and its lock ordering.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SUPPORT_THREADANNOTATIONS_H
#define OMEGA_SUPPORT_THREADANNOTATIONS_H

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define OMEGA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define OMEGA_THREAD_ANNOTATION(x) // no-op off Clang
#endif

/// A type that is a lockable capability ("mutex", "role", ...).
#define OMEGA_CAPABILITY(x) OMEGA_THREAD_ANNOTATION(capability(x))

/// An RAII type that acquires a capability in its constructor and releases
/// it in its destructor.
#define OMEGA_SCOPED_CAPABILITY OMEGA_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding the given capability.
#define OMEGA_GUARDED_BY(x) OMEGA_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given capability.
#define OMEGA_PT_GUARDED_BY(x) OMEGA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations: this capability must be acquired before /
/// after the listed ones.
#define OMEGA_ACQUIRED_BEFORE(...)                                            \
  OMEGA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define OMEGA_ACQUIRED_AFTER(...)                                             \
  OMEGA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function requires the caller to hold (exclusively / shared) the listed
/// capabilities on entry, and does not release them.
#define OMEGA_REQUIRES(...)                                                   \
  OMEGA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define OMEGA_REQUIRES_SHARED(...)                                            \
  OMEGA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the listed capabilities (no argument on a
/// scoped-capability member means "the capability this object manages").
#define OMEGA_ACQUIRE(...)                                                    \
  OMEGA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define OMEGA_ACQUIRE_SHARED(...)                                             \
  OMEGA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define OMEGA_RELEASE(...)                                                    \
  OMEGA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define OMEGA_RELEASE_SHARED(...)                                             \
  OMEGA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; the first argument is the return
/// value that means success.
#define OMEGA_TRY_ACQUIRE(...)                                                \
  OMEGA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must be called *without* the listed capabilities held
/// (deadlock prevention for self-locking methods).
#define OMEGA_EXCLUDES(...) OMEGA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define OMEGA_RETURN_CAPABILITY(x) OMEGA_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking is deliberately outside what the
/// analysis can model.  Every use needs a justifying comment.
#define OMEGA_NO_THREAD_SAFETY_ANALYSIS                                       \
  OMEGA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace omega {

/// std::mutex carrying the capability attribute so Clang's analysis can
/// track it.  Zero overhead: every method is an inline forward.
class OMEGA_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() OMEGA_ACQUIRE() { M.lock(); }
  void unlock() OMEGA_RELEASE() { M.unlock(); }
  bool tryLock() OMEGA_TRY_ACQUIRE(true) { return M.try_lock(); }

private:
  std::mutex M;
};

/// Scoped lock (std::lock_guard shape): acquires in the constructor,
/// releases in the destructor, no unlocking in between.
class OMEGA_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &M) OMEGA_ACQUIRE(M) : Mu(M) { Mu.lock(); }
  ~MutexLock() OMEGA_RELEASE() { Mu.unlock(); }

  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;

private:
  Mutex &Mu;
};

/// Scoped lock that supports explicit unlock/relock (std::unique_lock
/// shape) and satisfies BasicLockable, so ConditionVariable can wait on
/// it.  Destroying it unlocked is fine; destroying it locked unlocks.
class OMEGA_SCOPED_CAPABILITY UniqueLock {
public:
  explicit UniqueLock(Mutex &M) OMEGA_ACQUIRE(M) : Mu(M), Held(true) {
    Mu.lock();
  }
  ~UniqueLock() OMEGA_RELEASE() {
    if (Held)
      Mu.unlock();
  }

  void lock() OMEGA_ACQUIRE() {
    Mu.lock();
    Held = true;
  }
  void unlock() OMEGA_RELEASE() {
    Held = false;
    Mu.unlock();
  }

  UniqueLock(const UniqueLock &) = delete;
  UniqueLock &operator=(const UniqueLock &) = delete;

private:
  Mutex &Mu;
  bool Held;
};

/// Condition variable that waits on a UniqueLock.  ConditionVariable is
/// internally synchronized, so members of this type are exempt from
/// OMEGA_GUARDED_BY (DESIGN.md §13).  Waits release and reacquire the
/// lock internally; the capability state on return is the same as on
/// entry, which is exactly what the analysis assumes.
using ConditionVariable = std::condition_variable_any;

} // namespace omega

#endif // OMEGA_SUPPORT_THREADANNOTATIONS_H
