//===- support/Budget.cpp - Effort budgets and cancellation --------------===//

#include "support/Budget.h"

#include "support/Stats.h"
#include "support/Trace.h"

#include <chrono>

using namespace omega;

namespace {

thread_local std::shared_ptr<BudgetState> ActiveBudget;

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

EffortBudget EffortBudget::relaxed(uint64_t Factor) const {
  EffortBudget R = *this;
  if (R.MaxCoefficientBits)
    R.MaxCoefficientBits *= Factor;
  if (R.MaxSplintersPerElimination)
    R.MaxSplintersPerElimination *= Factor;
  if (R.MaxDnfClauses)
    R.MaxDnfClauses *= Factor;
  if (R.MaxRecursionDepth)
    R.MaxRecursionDepth *= Factor;
  if (R.DeadlineMs)
    R.DeadlineMs *= Factor;
  return R;
}

Result<EffortBudget> EffortBudget::parse(const std::string &Spec) {
  EffortBudget B;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Item = Spec.substr(Pos, End - Pos);
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos || Eq == 0 || Eq + 1 == Item.size())
      return Error{ErrorKind::InvalidInput, "budget",
                   "expected key=value, got '" + Item + "'",
                   "offset " + std::to_string(Pos)};
    std::string Key = Item.substr(0, Eq);
    std::string Val = Item.substr(Eq + 1);
    uint64_t Num = 0;
    for (char C : Val) {
      if (C < '0' || C > '9')
        return Error{ErrorKind::InvalidInput, "budget",
                     "value for '" + Key + "' is not a number: '" + Val + "'",
                     "offset " + std::to_string(Pos)};
      uint64_t Digit = static_cast<uint64_t>(C - '0');
      if (Num > (UINT64_MAX - Digit) / 10)
        return Error{ErrorKind::InvalidInput, "budget",
                     "value for '" + Key + "' overflows: '" + Val + "'",
                     "offset " + std::to_string(Pos)};
      Num = Num * 10 + Digit;
    }
    if (Key == "bits")
      B.MaxCoefficientBits = Num;
    else if (Key == "splinters")
      B.MaxSplintersPerElimination = Num;
    else if (Key == "clauses")
      B.MaxDnfClauses = Num;
    else if (Key == "depth")
      B.MaxRecursionDepth = Num;
    else if (Key == "ms")
      B.DeadlineMs = Num;
    else
      return Error{ErrorKind::InvalidInput, "budget",
                   "unknown budget knob '" + Key +
                       "' (expected bits, splinters, clauses, depth, ms)",
                   "offset " + std::to_string(Pos)};
    Pos = End + 1;
  }
  return B;
}

std::string EffortBudget::toString() const {
  if (unlimited())
    return "unlimited";
  std::string Out;
  auto Emit = [&Out](const char *Key, uint64_t Val) {
    if (!Val)
      return;
    if (!Out.empty())
      Out += ',';
    Out += Key;
    Out += '=';
    Out += std::to_string(Val);
  };
  Emit("bits", MaxCoefficientBits);
  Emit("splinters", MaxSplintersPerElimination);
  Emit("clauses", MaxDnfClauses);
  Emit("depth", MaxRecursionDepth);
  Emit("ms", DeadlineMs);
  return Out;
}

BudgetState::BudgetState(EffortBudget L)
    : Limits(L),
      DeadlineNanos(L.DeadlineMs ? nowNanos() + L.DeadlineMs * 1000000 : 0) {}

void BudgetState::trip(const std::string &Limit, const std::string &Where) {
  // Relaxed is enough: the flag is a monotone hint observed by polling
  // checkpoints; the throw below carries the authoritative signal.
  Cancelled.store(true, std::memory_order_relaxed);
  pipelineStats().BudgetTrips += 1;
  traceAnnotate("budget_trip", Limit + " at " + Where);
  throw BudgetExceeded(Limit, Where);
}

BudgetScope::BudgetScope(std::shared_ptr<BudgetState> State)
    : Prev(std::move(ActiveBudget)) {
  ActiveBudget = std::move(State);
}

BudgetScope::~BudgetScope() { ActiveBudget = std::move(Prev); }

const std::shared_ptr<BudgetState> &omega::activeBudget() {
  return ActiveBudget;
}

void omega::budgetCheckpoint(const char *Where) {
  BudgetState *B = ActiveBudget.get();
  if (!B)
    return;
  if (B->Cancelled.load(std::memory_order_relaxed))
    throw BudgetExceeded("cancelled", Where);
  if (B->DeadlineNanos && nowNanos() > B->DeadlineNanos)
    B->trip("ms=" + std::to_string(B->Limits.DeadlineMs), Where);
}

void omega::chargeSplinters(uint64_t Count, const char *Where) {
  budgetCheckpoint(Where);
  traceCount(TraceCounter::BudgetCharges);
  BudgetState *B = ActiveBudget.get();
  if (!B)
    return;
  uint64_t Max = B->Limits.MaxSplintersPerElimination;
  if (Max && Count > Max)
    B->trip("splinters=" + std::to_string(Max), Where);
}

void omega::chargeClauses(uint64_t Count, const char *Where) {
  budgetCheckpoint(Where);
  traceCount(TraceCounter::BudgetCharges);
  BudgetState *B = ActiveBudget.get();
  if (!B)
    return;
  uint64_t Max = B->Limits.MaxDnfClauses;
  if (Max && Count > Max)
    B->trip("clauses=" + std::to_string(Max), Where);
}

void omega::chargeDepth(uint64_t Depth, const char *Where) {
  budgetCheckpoint(Where);
  traceCount(TraceCounter::BudgetCharges);
  BudgetState *B = ActiveBudget.get();
  if (!B)
    return;
  uint64_t Max = B->Limits.MaxRecursionDepth;
  if (Max && Depth > Max)
    B->trip("depth=" + std::to_string(Max), Where);
}

void omega::chargeCoefficientBits(uint64_t Bits, const char *Where) {
  budgetCheckpoint(Where);
  traceCount(TraceCounter::BudgetCharges);
  BudgetState *B = ActiveBudget.get();
  if (!B)
    return;
  uint64_t Max = B->Limits.MaxCoefficientBits;
  if (Max && Bits > Max)
    B->trip("bits=" + std::to_string(Max), Where);
}
