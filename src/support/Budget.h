//===- support/Budget.h - Effort budgets and cancellation ------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource budgets for counting queries, in the spirit of isl's
/// --max-operations.  An EffortBudget caps the structural quantities that
/// drive worst-case blowup in the Omega test — coefficient bit-width,
/// splinters per elimination (§2.3.3), DNF clauses (§5.3), recursion
/// depth (§4) — plus a wall-clock deadline.  Checks happen at the same
/// pipeline boundaries OMEGA_VALIDATE hooks; tripping any limit throws
/// BudgetExceeded, sets a shared cancellation token, and the thread-pool
/// fan-out (presburger/Parallel.cpp) propagates both so workers bail at
/// their next checkpoint and the batch's partial results are discarded.
///
/// Determinism contract (DESIGN.md §9): the counter limits are charged
/// against per-instance or container-size quantities, so whether a query
/// trips — and the partial progress visible afterwards on the calling
/// thread — is identical across worker counts.  DeadlineMs is the one
/// inherently nondeterministic knob and is excluded from determinism
/// guarantees.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SUPPORT_BUDGET_H
#define OMEGA_SUPPORT_BUDGET_H

#include "support/Status.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace omega {

/// Limits on a single counting query.  0 means unlimited for every knob.
struct EffortBudget {
  /// Largest bit-width of any constraint coefficient or constant the
  /// projector may produce while normalizing / eliminating.
  uint64_t MaxCoefficientBits = 0;
  /// Largest number of splinters one variable elimination may generate
  /// (§2.3.3 dark-shadow splintering; per Projector instance).
  uint64_t MaxSplintersPerElimination = 0;
  /// Largest number of clauses any DNF may hold during simplification or
  /// disjoint decomposition (§5.3).
  uint64_t MaxDnfClauses = 0;
  /// Deepest nesting of eliminations / summations (per instance).
  uint64_t MaxRecursionDepth = 0;
  /// Wall-clock deadline for the whole query, in milliseconds.
  /// Nondeterministic by nature; see the determinism contract above.
  uint64_t DeadlineMs = 0;

  [[nodiscard]] bool unlimited() const {
    return MaxCoefficientBits == 0 && MaxSplintersPerElimination == 0 &&
           MaxDnfClauses == 0 && MaxRecursionDepth == 0 && DeadlineMs == 0;
  }

  /// A copy with every non-zero counter knob multiplied by \p Factor and
  /// the deadline extended likewise, for the degraded bounds passes.
  [[nodiscard]] EffortBudget relaxed(uint64_t Factor) const;

  /// Parses "splinters=8,clauses=64,depth=12,bits=128,ms=500" (any subset,
  /// any order).  Keys: bits, splinters, clauses, depth, ms.
  [[nodiscard]] static Result<EffortBudget> parse(const std::string &Spec);

  /// Inverse of parse(); "unlimited" when every knob is 0.
  [[nodiscard]] std::string toString() const;
};

/// Thrown when an EffortBudget limit trips.  Derives from std::exception
/// so ThreadPool::run's first-exception rethrow carries it back to the
/// query's calling thread.
class BudgetExceeded : public std::runtime_error {
public:
  BudgetExceeded(std::string Limit, std::string Where)
      : std::runtime_error("budget exhausted at " + Where + ": " + Limit),
        Limit(std::move(Limit)), Where(std::move(Where)) {}

  /// Which knob tripped, e.g. "splinters=8".
  const std::string Limit;
  /// Pipeline boundary that noticed, e.g. "projection".
  const std::string Where;

  Error toError() const {
    return Error{ErrorKind::BudgetExhausted, Where, Limit, ""};
  }
};

/// Shared state of one active budget: the limits plus the cancellation
/// token every worker observes.
struct BudgetState {
  explicit BudgetState(EffortBudget Limits);

  const EffortBudget Limits;
  /// Set by whichever checkpoint trips first; all other participants
  /// observe it at their next checkpoint and bail.  A lone atomic flag
  /// (plus const limits) is this struct's whole shared state, so it needs
  /// no mutex and no OMEGA_GUARDED_BY annotations (DESIGN.md §13).
  std::atomic<bool> Cancelled{false};
  /// Steady-clock expiry in nanoseconds since epoch; 0 when no deadline.
  const uint64_t DeadlineNanos;

  /// Records the trip and raises BudgetExceeded.
  [[noreturn]] void trip(const std::string &Limit, const std::string &Where);
};

/// Installs \p State as this thread's active budget for the scope's
/// lifetime (restores the previous one on exit).  The fan-out in
/// presburger/Parallel.cpp re-installs the caller's active budget inside
/// each worker task, so checkpoints fire on every thread of a query.
class BudgetScope {
public:
  explicit BudgetScope(std::shared_ptr<BudgetState> State);
  ~BudgetScope();

  BudgetScope(const BudgetScope &) = delete;
  BudgetScope &operator=(const BudgetScope &) = delete;

private:
  std::shared_ptr<BudgetState> Prev;
};

/// This thread's active budget, or null when none is installed.
const std::shared_ptr<BudgetState> &activeBudget();

/// Cheap cancellation + deadline check; call at pipeline boundaries.
/// Throws BudgetExceeded when the shared token is set or the deadline has
/// passed.  No-op without an active budget.
void budgetCheckpoint(const char *Where);

/// Charge helpers: each checks one knob against a current magnitude and
/// trips (throws) when the limit is exceeded.  All are no-ops without an
/// active budget, and all begin with a budgetCheckpoint so cancellation
/// propagates even when the local quantity is within limits.
void chargeSplinters(uint64_t Count, const char *Where);
void chargeClauses(uint64_t Count, const char *Where);
void chargeDepth(uint64_t Depth, const char *Where);
void chargeCoefficientBits(uint64_t Bits, const char *Where);

} // namespace omega

#endif // OMEGA_SUPPORT_BUDGET_H
