//===- support/Stats.cpp - Pipeline observability counters ---------------===//

#include "support/Stats.h"

#include "support/BigInt.h"

#include <sstream>

using namespace omega;

void PipelineCounters::reset() {
  FeasibilityTests = 0;
  ProjectionCalls = 0;
  ClausesSimplified = 0;
  SplintersGenerated = 0;
  CacheHits = 0;
  CacheMisses = 0;
  CacheEvictions = 0;
  ParallelBatches = 0;
  ParallelTasks = 0;
  CoalescePairs = 0;
  CoalescePrefiltered = 0;
  CoalesceMerges = 0;
  BudgetTrips = 0;
  DegradedQueries = 0;
  AutomatonDfaStates = 0;
  AutomatonProductStates = 0;
  AutomatonTransitions = 0;
  BackendFallbacks = 0;
  EnumeratedPoints = 0;
  ArithCounters &A = arithCounters();
  A.Spills = 0;
  A.FastOps = 0;
  A.SlowOps = 0;
  ExprCounters &E = exprCounters();
  E.Spills = 0;
  E.InlineOps = 0;
  SimplifyNanos = 0;
  DisjointNanos = 0;
  CoalesceNanos = 0;
  SummationNanos = 0;
}

PipelineCounters &omega::pipelineStats() {
  if (detail::ActivePipelineStats)
    return *detail::ActivePipelineStats;
  static PipelineCounters Counters;
  return Counters;
}

PipelineStatsSnapshot omega::snapshotStats(const PipelineCounters &C,
                                           const ArithCounters &A,
                                           const ExprCounters &E) {
  PipelineStatsSnapshot S;
  S.FeasibilityTests = C.FeasibilityTests.load();
  S.ProjectionCalls = C.ProjectionCalls.load();
  S.ClausesSimplified = C.ClausesSimplified.load();
  S.SplintersGenerated = C.SplintersGenerated.load();
  S.CacheHits = C.CacheHits.load();
  S.CacheMisses = C.CacheMisses.load();
  S.CacheEvictions = C.CacheEvictions.load();
  S.ParallelBatches = C.ParallelBatches.load();
  S.ParallelTasks = C.ParallelTasks.load();
  S.CoalescePairs = C.CoalescePairs.load();
  S.CoalescePrefiltered = C.CoalescePrefiltered.load();
  S.CoalesceMerges = C.CoalesceMerges.load();
  S.BudgetTrips = C.BudgetTrips.load();
  S.DegradedQueries = C.DegradedQueries.load();
  S.AutomatonDfaStates = C.AutomatonDfaStates.load();
  S.AutomatonProductStates = C.AutomatonProductStates.load();
  S.AutomatonTransitions = C.AutomatonTransitions.load();
  S.EnumeratedPoints = C.EnumeratedPoints.load();
  S.BackendFallbacks = C.BackendFallbacks.load();
  S.BigIntSpills = A.Spills.load();
  S.BigIntFastOps = A.FastOps.load();
  S.BigIntSlowOps = A.SlowOps.load();
  S.ExprTermsInline = E.InlineOps.load();
  S.ExprTermsSpilled = E.Spills.load();
  S.SimplifyNanos = C.SimplifyNanos.load();
  S.DisjointNanos = C.DisjointNanos.load();
  S.CoalesceNanos = C.CoalesceNanos.load();
  S.SummationNanos = C.SummationNanos.load();
  return S;
}

PipelineStatsSnapshot omega::snapshotPipelineStats() {
  return snapshotStats(pipelineStats(), arithCounters(), exprCounters());
}

namespace {
double ms(uint64_t Nanos) { return static_cast<double>(Nanos) / 1e6; }
} // namespace

std::string PipelineStatsSnapshot::toPretty() const {
  std::ostringstream OS;
  uint64_t Lookups = CacheHits + CacheMisses;
  OS << "pipeline stats:\n"
     << "  feasibility tests:   " << FeasibilityTests << "\n"
     << "  projection calls:    " << ProjectionCalls << "\n"
     << "  clauses simplified:  " << ClausesSimplified << "\n"
     << "  splinters generated: " << SplintersGenerated << "\n"
     << "  cache hits/misses:   " << CacheHits << "/" << CacheMisses;
  if (Lookups)
    OS << " (" << (100 * CacheHits / Lookups) << "% hit)";
  OS << "\n"
     << "  cache evictions:     " << CacheEvictions << "\n"
     << "  parallel batches:    " << ParallelBatches << " (" << ParallelTasks
     << " tasks)\n"
     << "  coalesce pairs:      " << CoalescePairs << " ("
     << CoalescePrefiltered << " prefiltered, " << CoalesceMerges
     << " merged)\n"
     << "  budget trips:        " << BudgetTrips << "\n"
     << "  degraded queries:    " << DegradedQueries << "\n"
     << "  automaton dfa/product states: " << AutomatonDfaStates << "/"
     << AutomatonProductStates << "\n"
     << "  automaton transitions: " << AutomatonTransitions << "\n"
     << "  enumerated points:   " << EnumeratedPoints << "\n"
     << "  backend fallbacks:   " << BackendFallbacks << "\n"
     << "  bigint spills:       " << BigIntSpills << "\n"
     << "  bigint fast/slow ops: " << BigIntFastOps << "/" << BigIntSlowOps
     << "\n"
     << "  expr inline ops:     " << ExprTermsInline << "\n"
     << "  expr term spills:    " << ExprTermsSpilled << "\n"
     << "  simplify time:       " << ms(SimplifyNanos) << " ms\n"
     << "  disjoint time:       " << ms(DisjointNanos) << " ms\n"
     << "  coalesce time:       " << ms(CoalesceNanos) << " ms\n"
     << "  summation time:      " << ms(SummationNanos) << " ms\n";
  return OS.str();
}

std::string PipelineStatsSnapshot::toJson() const {
  // Key order is part of the schema: "schema" first, then the counters in
  // declaration order.  Bump the schema number on any key change so CI and
  // dashboards can detect drift (tools/ci.sh asserts it).
  std::ostringstream OS;
  // Schema 5 (was 4): adds expr_terms_inline / expr_terms_spilled after
  // bigint_slow_ops — the flat-term AffineExpr's inline-buffer mutation
  // and heap-spill tallies.  (Schema 4 added the coalesce_* counters.)
  OS << "{"
     << "\"schema\": 5, "
     << "\"feasibility_tests\": " << FeasibilityTests << ", "
     << "\"projection_calls\": " << ProjectionCalls << ", "
     << "\"clauses_simplified\": " << ClausesSimplified << ", "
     << "\"splinters_generated\": " << SplintersGenerated << ", "
     << "\"cache_hits\": " << CacheHits << ", "
     << "\"cache_misses\": " << CacheMisses << ", "
     << "\"cache_evictions\": " << CacheEvictions << ", "
     << "\"parallel_batches\": " << ParallelBatches << ", "
     << "\"parallel_tasks\": " << ParallelTasks << ", "
     << "\"coalesce_pairs\": " << CoalescePairs << ", "
     << "\"coalesce_prefiltered\": " << CoalescePrefiltered << ", "
     << "\"coalesce_merges\": " << CoalesceMerges << ", "
     << "\"budget_trips\": " << BudgetTrips << ", "
     << "\"degraded_queries\": " << DegradedQueries << ", "
     << "\"automaton_dfa_states\": " << AutomatonDfaStates << ", "
     << "\"automaton_product_states\": " << AutomatonProductStates << ", "
     << "\"automaton_transitions\": " << AutomatonTransitions << ", "
     << "\"enumerated_points\": " << EnumeratedPoints << ", "
     << "\"backend_fallbacks\": " << BackendFallbacks << ", "
     << "\"bigint_spills\": " << BigIntSpills << ", "
     << "\"bigint_fast_ops\": " << BigIntFastOps << ", "
     << "\"bigint_slow_ops\": " << BigIntSlowOps << ", "
     << "\"expr_terms_inline\": " << ExprTermsInline << ", "
     << "\"expr_terms_spilled\": " << ExprTermsSpilled << ", "
     << "\"simplify_ms\": " << ms(SimplifyNanos) << ", "
     << "\"disjoint_ms\": " << ms(DisjointNanos) << ", "
     << "\"coalesce_ms\": " << ms(CoalesceNanos) << ", "
     << "\"summation_ms\": " << ms(SummationNanos) << "}";
  return OS.str();
}
