//===- support/Status.h - Recoverable error channel ------------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recoverable-error channel of the counting pipeline.  Pugh motivates
/// counting as a subroutine inside compilers and runtime systems (§6),
/// where a query that aborts the host process is unacceptable; like
/// isl_ctx's error state, every failure a *caller's input* can provoke is
/// reported as a structured Error value (kind, layer, location) through
/// Result<T> instead of a process abort.  fatalError (support/Error.h)
/// remains only for genuinely unreachable internal states — see
/// DESIGN.md §9 for the taxonomy and the list of surviving sites.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SUPPORT_STATUS_H
#define OMEGA_SUPPORT_STATUS_H

#include "support/Error.h"

#include <optional>
#include <string>
#include <utility>

namespace omega {

/// What went wrong, at the coarsest level callers dispatch on.
enum class ErrorKind {
  Parse,           ///< Malformed formula or file text.
  InvalidInput,    ///< Well-formed text with unusable content (bad flags,
                   ///< bad directives, inconsistent arities).
  Unsupported,     ///< Valid input outside an API's contract (e.g.
                   ///< Formula::tryEvaluate on a quantified formula).
  Io,              ///< File system failure.
  BudgetExhausted, ///< An EffortBudget limit tripped (support/Budget.h).
  Internal,        ///< Invariant violation surfaced as a value (rare).
};

const char *errorKindName(ErrorKind K);

/// One recoverable diagnostic: what, where in the pipeline, and where in
/// the input.
struct [[nodiscard]] Error {
  ErrorKind Kind = ErrorKind::Internal;
  std::string Layer;    ///< Pipeline layer, e.g. "parser", "summation".
  std::string Message;  ///< Human-readable description.
  std::string Location; ///< Input position, e.g. "offset 12", "line 3".

  /// Renders "parse error in parser at offset 12: unexpected character".
  std::string toString() const;
};

/// Outcome of a whole counting query, for callers that want to dispatch
/// without inspecting the value (the CountStatus channel of DESIGN.md §9).
enum class [[nodiscard]] CountStatus {
  Exact,     ///< The answer is the exact count / sum.
  Bounded,   ///< Budget exhausted: answer UNKNOWN, certified bounds given.
  Unbounded, ///< The solution set is provably infinite.
  Error,     ///< The query never produced a value; see the Error.
};

const char *countStatusName(CountStatus S);

/// A value or an Error — the pipeline's expected-like return channel.
template <typename T> class [[nodiscard]] Result {
public:
  Result(T Value) : Val(std::move(Value)) {}
  Result(Error E) : Err(std::move(E)) {}

  [[nodiscard]] explicit operator bool() const { return Val.has_value(); }
  [[nodiscard]] bool ok() const { return Val.has_value(); }

  [[nodiscard]] T &value() {
    check(Val.has_value(), "value() on an error Result");
    return *Val;
  }
  [[nodiscard]] const T &value() const {
    check(Val.has_value(), "value() on an error Result");
    return *Val;
  }
  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

  [[nodiscard]] const Error &error() const {
    check(!Val.has_value(), "error() on an ok Result");
    return Err;
  }

  /// The value, or \p Fallback when this holds an error.
  [[nodiscard]] T valueOr(T Fallback) const { return Val ? *Val : std::move(Fallback); }

private:
  std::optional<T> Val;
  Error Err;
};

} // namespace omega

#endif // OMEGA_SUPPORT_STATUS_H
