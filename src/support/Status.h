//===- support/Status.h - Recoverable error channel ------------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recoverable-error channel of the counting pipeline.  Pugh motivates
/// counting as a subroutine inside compilers and runtime systems (§6),
/// where a query that aborts the host process is unacceptable; like
/// isl_ctx's error state, every failure a *caller's input* can provoke is
/// reported as a structured Error value (kind, layer, location) through
/// Result<T> instead of a process abort.  fatalError (support/Error.h)
/// remains only for genuinely unreachable internal states — see
/// DESIGN.md §9 for the taxonomy and the list of surviving sites.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SUPPORT_STATUS_H
#define OMEGA_SUPPORT_STATUS_H

#include "support/Error.h"

#include <optional>
#include <string>
#include <utility>

namespace omega {

/// What went wrong, at the coarsest level callers dispatch on.
enum class ErrorKind {
  Parse,           ///< Malformed formula or file text.
  InvalidInput,    ///< Well-formed text with unusable content (bad flags,
                   ///< bad directives, inconsistent arities).
  Unsupported,     ///< Valid input outside an API's contract (e.g.
                   ///< Formula::tryEvaluate on a quantified formula).
  Io,              ///< File system failure.
  BudgetExhausted, ///< An EffortBudget limit tripped (support/Budget.h).
  Internal,        ///< Invariant violation surfaced as a value (rare).
};

const char *errorKindName(ErrorKind K);

/// One recoverable diagnostic: what, where in the pipeline, and where in
/// the input.
struct [[nodiscard]] Error {
  ErrorKind Kind = ErrorKind::Internal;
  std::string Layer;    ///< Pipeline layer, e.g. "parser", "summation".
  std::string Message;  ///< Human-readable description.
  std::string Location; ///< Input position, e.g. "offset 12", "line 3".

  /// Renders "parse error in parser at offset 12: unexpected character".
  std::string toString() const;
};

/// Outcome of a whole counting query, for callers that want to dispatch
/// without inspecting the value (the CountStatus channel of DESIGN.md §9).
enum class [[nodiscard]] CountStatus {
  Exact,     ///< The answer is the exact count / sum.
  Bounded,   ///< Budget exhausted: answer UNKNOWN, certified bounds given.
  Unbounded, ///< The solution set is provably infinite.
  Error,     ///< The query never produced a value; see the Error.
};

const char *countStatusName(CountStatus S);

/// The machine-readable outcome vocabulary shared by every query surface:
/// CountResult::outcome() produces one, the omegad wire protocol carries
/// it verbatim (one byte), and the tools derive their exit codes from it
/// (queryOutcomeExitCode) — so a scripted client and a socket client
/// dispatch on the same codes.  Values are wire format: never renumber,
/// only append.
///
/// Three bands: answers (0-9, query produced a usable result), input
/// diagnostics (10-19, this query can never succeed as posed), transient
/// service conditions (20-29, the same query may succeed later).
enum class QueryOutcome : unsigned char {
  // Answers.
  Exact = 0,           ///< Exact count / sum.
  Bounded = 1,         ///< Budget tripped; certified bounds returned.
  Unbounded = 2,       ///< Provably infinite solution set.
  // Input diagnostics (map 1:1 from ErrorKind).
  ParseError = 10,
  InvalidInput = 11,
  Unsupported = 12,
  IoError = 13,
  BudgetExhausted = 14, ///< Budget tripped with no usable bounds.
  InternalError = 15,
  // Transient service conditions (omegad admission control).
  Overloaded = 20,     ///< Queue full; resubmit later.
  MalformedFrame = 21, ///< Request frame undecodable; connection closed.
  ShuttingDown = 22,   ///< Server draining; resubmit elsewhere/later.
};

const char *queryOutcomeName(QueryOutcome O);

/// True for the 0-9 band: the query produced a usable result.
inline bool queryOutcomeIsAnswer(QueryOutcome O) {
  return static_cast<unsigned>(O) < 10;
}

/// The process exit code a tool reports for a query with this outcome:
/// answers exit 0, input diagnostics exit 1, transient conditions exit 75
/// (EX_TEMPFAIL — "try again later", the sendmail convention).
/// MalformedFrame exits 1, not 75: it reports a client bug.
int queryOutcomeExitCode(QueryOutcome O);

/// Maps a non-Error CountStatus into the answer band.
QueryOutcome queryOutcomeForStatus(CountStatus S);

/// Maps an ErrorKind into the diagnostic band.
QueryOutcome queryOutcomeForError(ErrorKind K);

/// A value or an Error — the pipeline's expected-like return channel.
template <typename T> class [[nodiscard]] Result {
public:
  Result(T Value) : Val(std::move(Value)) {}
  Result(Error E) : Err(std::move(E)) {}

  [[nodiscard]] explicit operator bool() const { return Val.has_value(); }
  [[nodiscard]] bool ok() const { return Val.has_value(); }

  [[nodiscard]] T &value() {
    check(Val.has_value(), "value() on an error Result");
    return *Val;
  }
  [[nodiscard]] const T &value() const {
    check(Val.has_value(), "value() on an error Result");
    return *Val;
  }
  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

  [[nodiscard]] const Error &error() const {
    check(!Val.has_value(), "error() on an ok Result");
    return Err;
  }

  /// The value, or \p Fallback when this holds an error.
  [[nodiscard]] T valueOr(T Fallback) const { return Val ? *Val : std::move(Fallback); }

private:
  std::optional<T> Val;
  Error Err;
};

} // namespace omega

#endif // OMEGA_SUPPORT_STATUS_H
