//===- support/QueryContext.cpp - Per-query execution context ------------===//
//
// All state here is thread-local: the active-context pointer plus the
// counter redirects declared next to their counter structs (Stats.h,
// BigInt.h).  No locks; cross-thread propagation happens by value through
// QueryEnvironment, installed inside each pool task by the fan-out layer.
//
//===----------------------------------------------------------------------===//

#include "support/QueryContext.h"

using namespace omega;

namespace {
thread_local const QueryContext *ActiveCtx = nullptr;
} // namespace

const QueryContext *omega::activeQueryContext() { return ActiveCtx; }

QueryContextScope::QueryContextScope(const QueryContext &Ctx)
    : PrevCtx(ActiveCtx), PrevPipeline(detail::ActivePipelineStats),
      PrevArith(detail::ActiveArithStats),
      PrevExpr(detail::ActiveExprStats) {
  ActiveCtx = &Ctx;
  if (Ctx.Stats) {
    detail::ActivePipelineStats = &Ctx.Stats->Pipeline;
    detail::ActiveArithStats = &Ctx.Stats->Arith;
    detail::ActiveExprStats = &Ctx.Stats->Expr;
  }
}

QueryContextScope::~QueryContextScope() {
  ActiveCtx = PrevCtx;
  detail::ActivePipelineStats = PrevPipeline;
  detail::ActiveArithStats = PrevArith;
  detail::ActiveExprStats = PrevExpr;
}

QueryEnvironment omega::captureQueryEnvironment() {
  QueryEnvironment Env;
  Env.Ctx = ActiveCtx;
  Env.Pipeline = detail::ActivePipelineStats;
  Env.Arith = detail::ActiveArithStats;
  Env.Expr = detail::ActiveExprStats;
  return Env;
}

QueryEnvironmentScope::QueryEnvironmentScope(const QueryEnvironment &Env) {
  Prev.Ctx = ActiveCtx;
  Prev.Pipeline = detail::ActivePipelineStats;
  Prev.Arith = detail::ActiveArithStats;
  Prev.Expr = detail::ActiveExprStats;
  ActiveCtx = Env.Ctx;
  detail::ActivePipelineStats = Env.Pipeline;
  detail::ActiveArithStats = Env.Arith;
  detail::ActiveExprStats = Env.Expr;
}

QueryEnvironmentScope::~QueryEnvironmentScope() {
  ActiveCtx = Prev.Ctx;
  detail::ActivePipelineStats = Prev.Pipeline;
  detail::ActiveArithStats = Prev.Arith;
  detail::ActiveExprStats = Prev.Expr;
}

void omega::foldQueryStats(const QueryStatsBlock &Block) {
  PipelineCounters &Dst = pipelineStats();
  const PipelineCounters &Src = Block.Pipeline;
  auto Fold = [](std::atomic<uint64_t> &D, const std::atomic<uint64_t> &S) {
    if (uint64_t V = S.load(std::memory_order_relaxed))
      D.fetch_add(V, std::memory_order_relaxed);
  };
  Fold(Dst.FeasibilityTests, Src.FeasibilityTests);
  Fold(Dst.ProjectionCalls, Src.ProjectionCalls);
  Fold(Dst.ClausesSimplified, Src.ClausesSimplified);
  Fold(Dst.SplintersGenerated, Src.SplintersGenerated);
  Fold(Dst.CacheHits, Src.CacheHits);
  Fold(Dst.CacheMisses, Src.CacheMisses);
  Fold(Dst.CacheEvictions, Src.CacheEvictions);
  Fold(Dst.ParallelBatches, Src.ParallelBatches);
  Fold(Dst.ParallelTasks, Src.ParallelTasks);
  Fold(Dst.CoalescePairs, Src.CoalescePairs);
  Fold(Dst.CoalescePrefiltered, Src.CoalescePrefiltered);
  Fold(Dst.CoalesceMerges, Src.CoalesceMerges);
  Fold(Dst.BudgetTrips, Src.BudgetTrips);
  Fold(Dst.DegradedQueries, Src.DegradedQueries);
  Fold(Dst.AutomatonDfaStates, Src.AutomatonDfaStates);
  Fold(Dst.AutomatonProductStates, Src.AutomatonProductStates);
  Fold(Dst.AutomatonTransitions, Src.AutomatonTransitions);
  Fold(Dst.EnumeratedPoints, Src.EnumeratedPoints);
  Fold(Dst.BackendFallbacks, Src.BackendFallbacks);
  Fold(Dst.SimplifyNanos, Src.SimplifyNanos);
  Fold(Dst.DisjointNanos, Src.DisjointNanos);
  Fold(Dst.CoalesceNanos, Src.CoalesceNanos);
  Fold(Dst.SummationNanos, Src.SummationNanos);
  ArithCounters &DA = arithCounters();
  Fold(DA.Spills, Block.Arith.Spills);
  Fold(DA.FastOps, Block.Arith.FastOps);
  Fold(DA.SlowOps, Block.Arith.SlowOps);
  ExprCounters &DE = exprCounters();
  Fold(DE.Spills, Block.Expr.Spills);
  Fold(DE.InlineOps, Block.Expr.InlineOps);
}
