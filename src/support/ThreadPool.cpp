//===- support/ThreadPool.cpp - Fixed-size worker pool -------------------===//

#include "support/ThreadPool.h"

#include <atomic>

#ifdef OMEGA_PARALLEL
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>
#endif

using namespace omega;

namespace {
std::atomic<unsigned> Workers{0};
thread_local bool IsWorkerThread = false;
} // namespace

void omega::setWorkerCount(unsigned N) { Workers.store(N); }

unsigned omega::workerCount() { return Workers.load(); }

bool ThreadPool::onWorkerThread() { return IsWorkerThread; }

#ifdef OMEGA_PARALLEL

struct ThreadPool::Impl {
  std::mutex M;
  std::condition_variable WorkCv;
  std::condition_variable DoneCv;
  std::vector<std::thread> Threads;

  // The current batch.  Fn is non-null while a batch is active; workers
  // claim indices from Next and count completions into Done.
  const std::function<void(size_t)> *Fn = nullptr;
  size_t N = 0;
  size_t Next = 0;
  size_t Done = 0;
  std::exception_ptr FirstError;
  bool Shutdown = false;

  void workerLoop() {
    IsWorkerThread = true;
    std::unique_lock<std::mutex> Lock(M);
    while (true) {
      WorkCv.wait(Lock, [&] { return Shutdown || (Fn && Next < N); });
      if (Shutdown)
        return;
      size_t I = Next++;
      const std::function<void(size_t)> *Job = Fn;
      Lock.unlock();
      std::exception_ptr Err;
      try {
        (*Job)(I);
      } catch (...) {
        Err = std::current_exception();
      }
      Lock.lock();
      if (Err && !FirstError)
        FirstError = Err;
      if (++Done == N)
        DoneCv.notify_all();
    }
  }

  void ensureThreads(unsigned Count) {
    while (Threads.size() < Count)
      Threads.emplace_back([this] { workerLoop(); });
  }
};

ThreadPool::ThreadPool() : P(new Impl) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(P->M);
    P->Shutdown = true;
  }
  P->WorkCv.notify_all();
  for (std::thread &T : P->Threads)
    T.join();
  delete P;
}

void ThreadPool::run(size_t N, const std::function<void(size_t)> &Fn) {
  unsigned W = workerCount();
  if (N == 0)
    return;
  if (W < 2 || IsWorkerThread) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }
  std::exception_ptr Err;
  {
    std::unique_lock<std::mutex> Lock(P->M);
    P->ensureThreads(W);
    P->Fn = &Fn;
    P->N = N;
    P->Next = 0;
    P->Done = 0;
    P->FirstError = nullptr;
    P->WorkCv.notify_all();
    P->DoneCv.wait(Lock, [&] { return P->Done == P->N; });
    P->Fn = nullptr;
    Err = P->FirstError;
  }
  if (Err)
    std::rethrow_exception(Err);
}

#else // !OMEGA_PARALLEL

struct ThreadPool::Impl {};

ThreadPool::ThreadPool() : P(nullptr) {}
ThreadPool::~ThreadPool() {}

void ThreadPool::run(size_t N, const std::function<void(size_t)> &Fn) {
  for (size_t I = 0; I < N; ++I)
    Fn(I);
}

#endif // OMEGA_PARALLEL

ThreadPool &ThreadPool::instance() {
  static ThreadPool Pool;
  return Pool;
}
