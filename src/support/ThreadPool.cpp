//===- support/ThreadPool.cpp - Shared worker pool -----------------------===//
//
// Locking discipline (checked by -Wthread-safety, DESIGN.md §13): one
// capability, Impl::M, guards the whole pool state — the batch queue, the
// thread vector, the shutdown flag, and (by documented convention, see
// Batch) every field of every queued batch.  Workers drop M around the
// user callback (the only unlocked region) and reacquire it to record
// completion.  Condition variables are internally synchronized and the
// predicate loops are written out long-hand because the analysis cannot
// look inside a wait-predicate lambda.
//
// Batches are stack frames of their enqueuing callers.  That is safe
// because a worker only ever touches a Batch while holding M *and* while
// the batch is still linked into Impl::Queue — and the enqueuing caller
// unlinks it (under M) before its frame unwinds, after Done == N.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/QueryContext.h"

#include <algorithm>
#include <thread>

#ifdef OMEGA_PARALLEL
#include "support/ThreadAnnotations.h"

#include <exception>
#include <utility>
#include <vector>
#endif

using namespace omega;

namespace {
thread_local bool IsWorkerThread = false;
} // namespace

unsigned omega::effectiveParallelWidth() {
#ifdef OMEGA_PARALLEL
  const QueryContext *Ctx = activeQueryContext();
  unsigned Want = Ctx ? Ctx->Workers : 0;
  // hardware_concurrency() may report 0 when unknown; treat that as 1 so
  // the conservative (serial) gate wins.
  unsigned Cores = std::max(1u, std::thread::hardware_concurrency());
  return std::min(Want, Cores);
#else
  return 1;
#endif
}

bool ThreadPool::onWorkerThread() { return IsWorkerThread; }

#ifdef OMEGA_PARALLEL

struct ThreadPool::Impl {
  Mutex M;
  ConditionVariable WorkCv;
  std::vector<std::thread> Threads OMEGA_GUARDED_BY(M);
  bool Shutdown OMEGA_GUARDED_BY(M) = false;

  // One in-flight run() call.  Lives on the enqueuing caller's stack; every
  // field is guarded by Impl::M for as long as the batch is linked into
  // Queue.  The fields carry no OMEGA_GUARDED_BY annotations because the
  // capability belongs to the enclosing Impl, which a free-standing struct
  // member cannot name — the discipline is enforced by the queue protocol
  // above instead.
  struct Batch {
    const std::function<void(size_t)> *Fn;
    size_t N;
    size_t Next = 0;           ///< Next unclaimed index.
    size_t Done = 0;           ///< Completed indices.
    unsigned Limit;            ///< Max concurrent threads (incl. caller).
    unsigned Active = 0;       ///< Threads currently inside runSome().
    std::exception_ptr FirstError;
    ConditionVariable DoneCv;  ///< Signalled when Done reaches N.
  };

  std::vector<Batch *> Queue OMEGA_GUARDED_BY(M);

  /// The first queued batch with unclaimed work and headroom under its
  /// width limit, or null.  FIFO: earlier run() calls drain first.
  Batch *claimable() OMEGA_REQUIRES(M) {
    for (Batch *B : Queue)
      if (B->Next < B->N && B->Active < B->Limit)
        return B;
    return nullptr;
  }

  /// Claims and runs indices of \p B until none remain (or another thread
  /// claims the rest).  Entered and exited holding M; unlocks the raw
  /// mutex around each callback (the caller's UniqueLock, if any, is
  /// bypassed deliberately — it forwards to the same M and its Held flag
  /// is consistent because M is re-held on return).
  void runSome(Batch &B) OMEGA_REQUIRES(M) {
    ++B.Active;
    while (B.Next < B.N) {
      size_t I = B.Next++;
      const std::function<void(size_t)> *Job = B.Fn;
      M.unlock();
      std::exception_ptr Err;
      try {
        (*Job)(I);
      } catch (...) {
        Err = std::current_exception();
      }
      M.lock();
      if (Err && !B.FirstError)
        B.FirstError = Err;
      if (++B.Done == B.N)
        B.DoneCv.notify_all();
    }
    --B.Active;
  }

  void workerLoop() {
    IsWorkerThread = true;
    UniqueLock Lock(M);
    while (true) {
      Batch *B = claimable();
      while (!Shutdown && !B) {
        WorkCv.wait(Lock);
        B = claimable();
      }
      if (Shutdown)
        return;
      // After draining B, loop: another queued batch may have headroom now
      // that this thread is free (workers migrate between batches).
      runSome(*B);
    }
  }

  void ensureThreads(unsigned Count) OMEGA_REQUIRES(M) {
    while (Threads.size() < Count)
      Threads.emplace_back([this] { workerLoop(); });
  }
};

// Pimpl: Impl is incomplete in the header, so the raw pointer is owned
// here and freed in the destructor.  omegatidy: allow(naked-new)
ThreadPool::ThreadPool() : P(new Impl) {}

ThreadPool::~ThreadPool() {
  std::vector<std::thread> ToJoin;
  {
    MutexLock Lock(P->M);
    P->Shutdown = true;
    // Joining must happen unlocked (workers need M to observe Shutdown),
    // so move the threads out while still holding the capability.
    ToJoin = std::move(P->Threads);
  }
  P->WorkCv.notify_all();
  for (std::thread &T : ToJoin)
    T.join();
  delete P;
}

void ThreadPool::run(size_t N, unsigned Width,
                     const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (Width < 2 || IsWorkerThread) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }
  std::exception_ptr Err;
  {
    UniqueLock Lock(P->M);
    // Every index runs on a pool thread — the caller only waits.  Keeping
    // the caller out preserves the pre-server contract that a parallel
    // batch demonstrably runs on workers (TraceTest pins it: worker spans
    // must exist at Width >= 2), at the cost of one blocked thread per
    // in-flight batch.  The pool only ever grows; threads are shared
    // across all concurrent batches.
    P->ensureThreads(Width);
    Impl::Batch B;
    B.Fn = &Fn;
    B.N = N;
    B.Limit = Width;
    P->Queue.push_back(&B);
    P->WorkCv.notify_all();
    while (B.Done != B.N)
      B.DoneCv.wait(Lock);
    // Unlink before unwinding: workers only touch a batch that is still
    // queued, so after this erase (still under M) B is exclusively ours.
    P->Queue.erase(std::find(P->Queue.begin(), P->Queue.end(), &B));
    Err = B.FirstError;
  }
  if (Err)
    std::rethrow_exception(Err);
}

#else // !OMEGA_PARALLEL

struct ThreadPool::Impl {};

ThreadPool::ThreadPool() : P(nullptr) {}
ThreadPool::~ThreadPool() {}

void ThreadPool::run(size_t N, unsigned,
                     const std::function<void(size_t)> &Fn) {
  for (size_t I = 0; I < N; ++I)
    Fn(I);
}

#endif // OMEGA_PARALLEL

ThreadPool &ThreadPool::instance() {
  static ThreadPool Pool;
  return Pool;
}
