//===- support/ThreadPool.cpp - Fixed-size worker pool -------------------===//
//
// Locking discipline (checked by -Wthread-safety, DESIGN.md §13): one
// capability, Impl::M, guards the whole batch state — the job pointer,
// index/done counters, first-error slot, shutdown flag, and the thread
// vector.  Workers drop M around the user callback (the only unlocked
// region) and reacquire it to record completion.  Condition variables are
// internally synchronized and the predicate loops are written out long-hand
// because the analysis cannot look inside a wait-predicate lambda.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <thread>

#ifdef OMEGA_PARALLEL
#include "support/ThreadAnnotations.h"

#include <exception>
#include <utility>
#include <vector>
#endif

using namespace omega;

namespace {
std::atomic<unsigned> Workers{0};
thread_local bool IsWorkerThread = false;
} // namespace

void omega::setWorkerCount(unsigned N) { Workers.store(N); }

unsigned omega::workerCount() { return Workers.load(); }

unsigned omega::effectiveParallelWidth() {
#ifdef OMEGA_PARALLEL
  // hardware_concurrency() may report 0 when unknown; treat that as 1 so
  // the conservative (serial) gate wins.
  unsigned Cores = std::max(1u, std::thread::hardware_concurrency());
  return std::min(workerCount(), Cores);
#else
  return 1;
#endif
}

bool ThreadPool::onWorkerThread() { return IsWorkerThread; }

#ifdef OMEGA_PARALLEL

struct ThreadPool::Impl {
  Mutex M;
  ConditionVariable WorkCv;
  ConditionVariable DoneCv;
  std::vector<std::thread> Threads OMEGA_GUARDED_BY(M);

  // The current batch.  Fn is non-null while a batch is active; workers
  // claim indices from Next and count completions into Done.
  const std::function<void(size_t)> *Fn OMEGA_GUARDED_BY(M) = nullptr;
  size_t N OMEGA_GUARDED_BY(M) = 0;
  size_t Next OMEGA_GUARDED_BY(M) = 0;
  size_t Done OMEGA_GUARDED_BY(M) = 0;
  std::exception_ptr FirstError OMEGA_GUARDED_BY(M);
  bool Shutdown OMEGA_GUARDED_BY(M) = false;

  void workerLoop() {
    IsWorkerThread = true;
    UniqueLock Lock(M);
    while (true) {
      while (!Shutdown && !(Fn && Next < N))
        WorkCv.wait(Lock);
      if (Shutdown)
        return;
      size_t I = Next++;
      const std::function<void(size_t)> *Job = Fn;
      Lock.unlock();
      std::exception_ptr Err;
      try {
        (*Job)(I);
      } catch (...) {
        Err = std::current_exception();
      }
      Lock.lock();
      if (Err && !FirstError)
        FirstError = Err;
      if (++Done == N)
        DoneCv.notify_all();
    }
  }

  void ensureThreads(unsigned Count) OMEGA_REQUIRES(M) {
    while (Threads.size() < Count)
      Threads.emplace_back([this] { workerLoop(); });
  }
};

// Pimpl: Impl is incomplete in the header, so the raw pointer is owned
// here and freed in the destructor.  omegatidy: allow(naked-new)
ThreadPool::ThreadPool() : P(new Impl) {}

ThreadPool::~ThreadPool() {
  std::vector<std::thread> ToJoin;
  {
    MutexLock Lock(P->M);
    P->Shutdown = true;
    // Joining must happen unlocked (workers need M to observe Shutdown),
    // so move the threads out while still holding the capability.
    ToJoin = std::move(P->Threads);
  }
  P->WorkCv.notify_all();
  for (std::thread &T : ToJoin)
    T.join();
  delete P;
}

void ThreadPool::run(size_t N, const std::function<void(size_t)> &Fn) {
  unsigned W = workerCount();
  if (N == 0)
    return;
  if (W < 2 || IsWorkerThread) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }
  std::exception_ptr Err;
  {
    UniqueLock Lock(P->M);
    P->ensureThreads(W);
    P->Fn = &Fn;
    P->N = N;
    P->Next = 0;
    P->Done = 0;
    P->FirstError = nullptr;
    P->WorkCv.notify_all();
    while (P->Done != P->N)
      P->DoneCv.wait(Lock);
    P->Fn = nullptr;
    Err = P->FirstError;
  }
  if (Err)
    std::rethrow_exception(Err);
}

#else // !OMEGA_PARALLEL

struct ThreadPool::Impl {};

ThreadPool::ThreadPool() : P(nullptr) {}
ThreadPool::~ThreadPool() {}

void ThreadPool::run(size_t N, const std::function<void(size_t)> &Fn) {
  for (size_t I = 0; I < N; ++I)
    Fn(I);
}

#endif // OMEGA_PARALLEL

ThreadPool &ThreadPool::instance() {
  static ThreadPool Pool;
  return Pool;
}
