//===- support/Error.cpp - Loud failure for broken invariants ------------===//

#include "support/Error.h"

#include <cstdlib>
#include <iostream>

using namespace omega;

void omega::fatalError(const std::string &Message) {
  std::cerr << "omega: fatal error: " << Message << std::endl;
  std::abort();
}
