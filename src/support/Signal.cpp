//===- support/Signal.cpp - Graceful-shutdown signal plumbing ------------===//

#include "support/Signal.h"

#include <atomic>
#include <csignal>
#include <fcntl.h>
#include <unistd.h>

using namespace omega;

namespace {

// Everything the handler touches: a pipe fd and an atomic flag, both
// async-signal-safe.  File-scope statics (not function-local) because a
// handler must not run a guarded first-use initialization.
int PipeWriteFd = -1;
int PipeReadFd = -1;
std::atomic<bool> Signalled{false};

void onShutdownSignal(int) {
  Signalled.store(true, std::memory_order_relaxed);
  if (PipeWriteFd >= 0) {
    const char Byte = 1;
    // The pipe is non-blocking; if it is already full a byte is already
    // waiting, so a failed write loses nothing.
    [[maybe_unused]] ssize_t N = ::write(PipeWriteFd, &Byte, 1);
  }
}

} // namespace

int omega::installShutdownSignalPipe() {
  int Fds[2];
  if (::pipe(Fds) != 0)
    return -1;
  PipeReadFd = Fds[0];
  PipeWriteFd = Fds[1];
  ::fcntl(PipeWriteFd, F_SETFL, O_NONBLOCK);

  struct sigaction SA {};
  SA.sa_handler = onShutdownSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // No SA_RESTART: blocked syscalls on the main thread
                   // return EINTR promptly.
  if (::sigaction(SIGINT, &SA, nullptr) != 0 ||
      ::sigaction(SIGTERM, &SA, nullptr) != 0) {
    ::close(Fds[0]);
    ::close(Fds[1]);
    PipeReadFd = PipeWriteFd = -1;
    return -1;
  }
  ::signal(SIGPIPE, SIG_IGN);
  return PipeReadFd;
}

bool omega::shutdownSignalled() {
  return Signalled.load(std::memory_order_relaxed);
}

void omega::requestShutdownSignal() { onShutdownSignal(0); }
