//===- support/Rational.cpp - Exact rational numbers ---------------------===//

#include "support/Rational.h"

#include "support/Error.h"

#include <ostream>

using namespace omega;

Rational::Rational(BigInt Numerator, BigInt Denominator)
    : Num(std::move(Numerator)), Den(std::move(Denominator)) {
  check(!Den.isZero(), "rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (Den.isNegative()) {
    Num = -Num;
    Den = -Den;
  }
  if (Num.isZero()) {
    Den = BigInt(1);
    return;
  }
  // Allocation-free on the small path: BigInt::gcd drops to the int64
  // binary gcd and divExact skips the remainder computation.
  BigInt G = BigInt::gcd(Num, Den);
  if (!G.isOne()) {
    Num = BigInt::divExact(Num, G);
    Den = BigInt::divExact(Den, G);
  }
}

Rational Rational::operator-() const {
  Rational R = *this;
  R.Num = -R.Num;
  return R;
}

Rational &Rational::operator+=(const Rational &RHS) {
  Num = Num * RHS.Den + RHS.Num * Den;
  Den *= RHS.Den;
  normalize();
  return *this;
}

Rational &Rational::operator-=(const Rational &RHS) {
  Num = Num * RHS.Den - RHS.Num * Den;
  Den *= RHS.Den;
  normalize();
  return *this;
}

Rational &Rational::operator*=(const Rational &RHS) {
  Num *= RHS.Num;
  Den *= RHS.Den;
  normalize();
  return *this;
}

Rational &Rational::operator/=(const Rational &RHS) {
  check(!RHS.isZero(), "rational division by zero");
  Num *= RHS.Den;
  Den *= RHS.Num;
  normalize();
  return *this;
}

int Rational::compare(const Rational &RHS) const {
  // Denominators are positive, so cross-multiplication preserves order.
  return (Num * RHS.Den).compare(RHS.Num * Den);
}

Rational Rational::pow(const Rational &A, unsigned E) {
  return Rational(BigInt::pow(A.Num, E), BigInt::pow(A.Den, E));
}

std::string Rational::toString() const {
  if (isInteger())
    return Num.toString();
  return Num.toString() + "/" + Den.toString();
}

std::ostream &omega::operator<<(std::ostream &OS, const Rational &V) {
  return OS << V.toString();
}
