//===- support/QueryContext.h - Per-query execution context ----*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-query execution context: the re-entrant replacement for the
/// retired process-global knobs (worker count, cache capacity, arithmetic
/// op counting).  A query installs a QueryContext for its duration via
/// QueryContextScope; every layer that used to read a process global —
/// the fan-out gate, the conjunct cache, the counter accessors, the trace
/// recorder — resolves through the active context instead.  Concurrent
/// queries on different threads (omegad sessions, countBatch callers on
/// their own threads) therefore run with independent knobs and
/// independent stats, sharing only the deliberately process-wide pieces:
/// the worker pool, the conjunct cache storage, and the global counters
/// that per-query blocks fold into on completion.
///
/// Contexts are borrowed, never owned: the installer guarantees the
/// context (and its stats block) outlives the scope, and the fan-out
/// layer (presburger/Parallel.cpp) re-installs the enqueuing thread's
/// environment inside every pool task, so worker-side work attributes to
/// the query that spawned it.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SUPPORT_QUERYCONTEXT_H
#define OMEGA_SUPPORT_QUERYCONTEXT_H

#include "support/BigInt.h"
#include "support/Stats.h"

namespace omega {

/// One query's private counter set.  When a context carries a block, the
/// thread-local accessors (pipelineStats(), arithCounters(),
/// exprCounters()) resolve to these members, so everything the query does
/// — including on pool workers — tallies here and nowhere else until the
/// query folds the block into its enclosing targets.
struct QueryStatsBlock {
  PipelineCounters Pipeline;
  ArithCounters Arith;
  ExprCounters Expr;
};

/// The knobs one query runs under.  Plain data; CountOptions
/// (omega/Omega.h) translates into one of these at query entry.
struct QueryContext {
  /// Worker threads for disjunct fan-out; 0 and 1 both mean serial.
  unsigned Workers = 0;
  /// Whether this query participates in conjunct memoization.  The cache
  /// storage itself is process-wide (configureConjunctCache); this gates
  /// only whether the query reads and populates it.
  bool CacheEnabled = true;
  /// Whether spans opened by this query's threads record into the active
  /// trace session.  Defaults to true so direct startTracing() users
  /// (tools, tests) keep recording; servers set false on non-traced
  /// queries so a concurrently traced query stays uncontaminated.
  bool TraceParticipant = true;
  /// Per-query counter redirection; null leaves counters flowing to the
  /// enclosing targets (an outer context's block, or the globals).
  QueryStatsBlock *Stats = nullptr;
};

/// The context installed on this thread, or null outside any query.
const QueryContext *activeQueryContext();

/// RAII: installs \p Ctx as this thread's active context.  If Ctx.Stats is
/// set, also redirects the counter accessors at the block; otherwise the
/// previous redirect (if any) stays in effect, so a stats-less nested
/// query still attributes to its enclosing collector.  Restores everything
/// on destruction.  \p Ctx is borrowed and must outlive the scope.
class QueryContextScope {
public:
  explicit QueryContextScope(const QueryContext &Ctx);
  ~QueryContextScope();

  QueryContextScope(const QueryContextScope &) = delete;
  QueryContextScope &operator=(const QueryContextScope &) = delete;

private:
  const QueryContext *PrevCtx;
  PipelineCounters *PrevPipeline;
  ArithCounters *PrevArith;
  ExprCounters *PrevExpr;
};

/// A verbatim snapshot of one thread's context state (the active context
/// plus the three counter redirects), for re-installation on a pool
/// worker.  Everything pointed at is borrowed from the capturing thread's
/// scopes and must outlive the tasks that re-install it — the fan-out
/// layer guarantees this by joining every batch before the enqueuing
/// frame unwinds.
struct QueryEnvironment {
  const QueryContext *Ctx = nullptr;
  PipelineCounters *Pipeline = nullptr;
  ArithCounters *Arith = nullptr;
  ExprCounters *Expr = nullptr;
};

QueryEnvironment captureQueryEnvironment();

/// RAII: installs a captured environment verbatim (no inheritance logic —
/// the capture already resolved it) and restores the previous state.
class QueryEnvironmentScope {
public:
  explicit QueryEnvironmentScope(const QueryEnvironment &Env);
  ~QueryEnvironmentScope();

  QueryEnvironmentScope(const QueryEnvironmentScope &) = delete;
  QueryEnvironmentScope &operator=(const QueryEnvironmentScope &) = delete;

private:
  QueryEnvironment Prev;
};

/// Adds every counter of \p Block into the targets this thread currently
/// resolves to.  Called after the query's scope pops, so a nested query
/// folds into its enclosing collector and a top-level query folds into the
/// process-wide counters — process-wide observability (--stats at tool
/// exit) keeps seeing all work.  The CountOps flag is configuration, not a
/// tally, and is not folded.
void foldQueryStats(const QueryStatsBlock &Block);

/// Snapshot of one block's counters (CountResult::Stats).
inline PipelineStatsSnapshot snapshotQueryStats(const QueryStatsBlock &B) {
  return snapshotStats(B.Pipeline, B.Arith, B.Expr);
}

} // namespace omega

#endif // OMEGA_SUPPORT_QUERYCONTEXT_H
