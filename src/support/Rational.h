//===- support/Rational.h - Exact rational numbers -------------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rationals on top of BigInt.  Quasi-polynomial coefficients (the
/// counting results of §4 of the paper, e.g. n(n+1)/2) are rational even
/// though every evaluation at integer points is integral.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SUPPORT_RATIONAL_H
#define OMEGA_SUPPORT_RATIONAL_H

#include "support/BigInt.h"
#include "support/Error.h"

#include <iosfwd>
#include <string>

namespace omega {

/// Exact rational number, always normalized: the denominator is positive and
/// gcd(numerator, denominator) == 1; zero is 0/1.
class Rational {
public:
  Rational() : Den(1) {}
  Rational(BigInt Value) : Num(std::move(Value)), Den(1) {}
  Rational(long long Value) : Num(Value), Den(1) {}
  Rational(int Value) : Num(Value), Den(1) {}
  Rational(BigInt Numerator, BigInt Denominator);

  const BigInt &numerator() const { return Num; }
  const BigInt &denominator() const { return Den; }

  bool isZero() const { return Num.isZero(); }
  bool isInteger() const { return Den.isOne(); }
  int sign() const { return Num.sign(); }

  /// Returns the value as a BigInt; asserts isInteger().
  const BigInt &asInteger() const {
    check(isInteger(), "rational is not an integer");
    return Num;
  }

  BigInt floor() const { return BigInt::floorDiv(Num, Den); }
  BigInt ceil() const { return BigInt::ceilDiv(Num, Den); }

  Rational operator-() const;
  Rational &operator+=(const Rational &RHS);
  Rational &operator-=(const Rational &RHS);
  Rational &operator*=(const Rational &RHS);
  /// Asserts RHS is nonzero.
  Rational &operator/=(const Rational &RHS);

  friend Rational operator+(Rational L, const Rational &R) { return L += R; }
  friend Rational operator-(Rational L, const Rational &R) { return L -= R; }
  friend Rational operator*(Rational L, const Rational &R) { return L *= R; }
  friend Rational operator/(Rational L, const Rational &R) { return L /= R; }

  friend bool operator==(const Rational &L, const Rational &R) {
    return L.Num == R.Num && L.Den == R.Den;
  }
  friend bool operator!=(const Rational &L, const Rational &R) {
    return !(L == R);
  }
  friend bool operator<(const Rational &L, const Rational &R) {
    return L.compare(R) < 0;
  }
  friend bool operator>(const Rational &L, const Rational &R) {
    return L.compare(R) > 0;
  }
  friend bool operator<=(const Rational &L, const Rational &R) {
    return L.compare(R) <= 0;
  }
  friend bool operator>=(const Rational &L, const Rational &R) {
    return L.compare(R) >= 0;
  }

  int compare(const Rational &RHS) const;

  static Rational pow(const Rational &A, unsigned E);

  double toDouble() const { return Num.toDouble() / Den.toDouble(); }

  /// Renders as "a" or "a/b".
  std::string toString() const;

  size_t hash() const { return Num.hash() * 33 + Den.hash(); }

  friend std::ostream &operator<<(std::ostream &OS, const Rational &V);

private:
  void normalize();

  BigInt Num;
  BigInt Den;
};

std::ostream &operator<<(std::ostream &OS, const Rational &V);

} // namespace omega

template <> struct std::hash<omega::Rational> {
  size_t operator()(const omega::Rational &V) const { return V.hash(); }
};

#endif // OMEGA_SUPPORT_RATIONAL_H
