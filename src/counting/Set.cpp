//===- counting/Set.cpp - Presburger-definable integer sets --------------===//

#include "counting/Set.h"

#include "omega/Verify.h"
#include "support/Error.h"

#include <sstream>

using namespace omega;

PresburgerSet::PresburgerSet(std::vector<std::string> TupleNames,
                             Formula BodyF)
    : Tuple(std::move(TupleNames)), Body(std::move(BodyF)) {
  VarSet Seen;
  for (const std::string &V : Tuple)
    check(Seen.insert(V).second, "duplicate tuple variable");
}

Formula PresburgerSet::aligned(const PresburgerSet &Other) const {
  check(Other.Tuple.size() == Tuple.size(), "set arity mismatch");
  std::map<std::string, std::string> Map;
  for (size_t I = 0; I < Tuple.size(); ++I)
    if (Other.Tuple[I] != Tuple[I])
      Map.emplace(Other.Tuple[I], Tuple[I]);
  return renameFreeVars(Other.Body, Map);
}

PresburgerSet PresburgerSet::unionWith(const PresburgerSet &Other) const {
  return PresburgerSet(Tuple, Body || aligned(Other));
}

PresburgerSet PresburgerSet::intersect(const PresburgerSet &Other) const {
  return PresburgerSet(Tuple, Body && aligned(Other));
}

PresburgerSet PresburgerSet::subtract(const PresburgerSet &Other) const {
  return PresburgerSet(Tuple, Body && !aligned(Other));
}

PresburgerSet PresburgerSet::project(const VarSet &Away) const {
  std::vector<std::string> Rest;
  for (const std::string &V : Tuple)
    if (!Away.count(V))
      Rest.push_back(V);
  check(Rest.size() + Away.size() == Tuple.size(),
        "projected dimensions must be tuple variables");
  return PresburgerSet(std::move(Rest), Formula::exists(Away, Body));
}

bool PresburgerSet::isEmpty() const { return isUnsatisfiable(Body); }

bool PresburgerSet::isSubsetOf(const PresburgerSet &Other) const {
  return verifyImplies(Body, aligned(Other));
}

bool PresburgerSet::isEqualTo(const PresburgerSet &Other) const {
  return verifyEquivalent(Body, aligned(Other));
}

bool PresburgerSet::contains(const Assignment &Point) const {
  for (const Conjunct &C : simplify(Body))
    if (containsPoint(C, Point))
      return true;
  return false;
}

PiecewiseValue PresburgerSet::count(SumOptions Opts) const {
  return countSolutions(Body, VarSet(Tuple.begin(), Tuple.end()), Opts);
}

PiecewiseValue PresburgerSet::sum(const QuasiPolynomial &X,
                                  SumOptions Opts) const {
  return sumOverFormula(Body, VarSet(Tuple.begin(), Tuple.end()), X, Opts);
}

std::optional<Assignment>
PresburgerSet::sample(const Assignment &Symbols) const {
  for (const Conjunct &C : simplify(Body)) {
    Conjunct Bound = C;
    for (const auto &[Name, Value] : Symbols)
      Bound.substitute(Name, AffineExpr(Value));
    if (std::optional<Assignment> P = samplePoint(Bound)) {
      // Report only the tuple dimensions.
      Assignment Out;
      for (const std::string &V : Tuple) {
        auto It = P->find(V);
        // A tuple variable the clause does not mention is unconstrained;
        // return 0 for it.
        Out[V] = It == P->end() ? BigInt(0) : It->second;
      }
      return Out;
    }
  }
  return std::nullopt;
}

std::string PresburgerSet::toString() const {
  std::ostringstream OS;
  OS << "{[";
  for (size_t I = 0; I < Tuple.size(); ++I)
    OS << (I ? "," : "") << Tuple[I];
  OS << "] : " << Body << "}";
  return OS.str();
}
