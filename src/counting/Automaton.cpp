//===- counting/Automaton.cpp - Constraint-automaton counting ------------===//
//
// Per-constraint DFAs over LSB-first binary encodings, product-intersected
// on the fly, accepting paths counted by dynamic programming.
//
// Encoding: each counted variable v with bounds [Lo, Hi] is shifted to
// v' = v - Lo, so all tracks carry non-negative integers, read one bit per
// variable per step for W = bitwidth(max range) steps.  A path through the
// product then *is* a point of the box, and the per-atom DFAs decide which
// atoms that point satisfies:
//
//   Eq  (e = 0):  state c = "remaining constant"; on bits b with
//                 s = Σ aᵢbᵢ, reject unless c - s is even, else
//                 c' = (c - s)/2.  Accept at end iff c == 0.
//   Ge  (e ≥ 0):  rewrite Σ aᵢxᵢ + K ≥ 0 as Σ(-aᵢ)xᵢ ≤ K; state c with
//                 c' = floor((c - s)/2) where s = Σ(-aᵢ)bᵢ.  Accept at end
//                 iff c ≥ 0.  (x = b + 2y ⇒ Σdᵢyᵢ ≤ floor((c - s)/2).)
//   Stride (m|e): state (r, p) = (e's bits so far mod m, 2^step mod m);
//                 (r, p) → ((r + p·s) mod m, 2p mod m).  Accept iff r == 0.
//
// A rejecting ("dead") state only means *that atom* is false on the path —
// the path stays alive and the formula's And/Or/Not structure is evaluated
// over the per-atom accept bits at the end, so overlapping disjuncts are
// never double-counted and negation needs no complementation.  Only the
// synthetic range atoms v' ≤ Hi - Lo prune paths, clipping the walk to the
// box.
//
//===----------------------------------------------------------------------===//

#include "counting/Automaton.h"

#include "support/Error.h"

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <utility>
#include <vector>

using namespace omega;

namespace {

Error unsupported(std::string Msg) {
  return Error{ErrorKind::Unsupported, "automaton", std::move(Msg), ""};
}

constexpr int64_t DeadRaw = INT64_MIN;

/// One atom lowered to the shifted integer tracks.
struct AtomSpec {
  ConstraintKind Kind;
  /// (track index, coefficient) for the atom's support, shifted space.
  std::vector<std::pair<unsigned, int64_t>> Terms;
  int64_t K = 0;   ///< Constant after the v = v' + Lo shift.
  int64_t Mod = 0; ///< Stride modulus (Stride only).
  bool Required = false; ///< Synthetic range atom: reject ⇒ prune path.
};

int64_t floorHalf(int64_t T) { return T >= 0 ? T >> 1 : -((-T + 1) >> 1); }

/// The raw successor state, or DeadRaw.  \p S is Σ coeffᵢ·bitᵢ for Eq and
/// the stride, Σ(-coeffᵢ)·bitᵢ folded by the caller for Ge.
int64_t stepRaw(const AtomSpec &A, int64_t Raw, int64_t S) {
  switch (A.Kind) {
  case ConstraintKind::Eq: {
    int64_t T = Raw - S;
    if (T & 1)
      return DeadRaw;
    return T / 2;
  }
  case ConstraintKind::Ge:
    return floorHalf(Raw - S);
  case ConstraintKind::Stride: {
    int64_t R = Raw / A.Mod, P = Raw % A.Mod;
    int64_t Sm = ((S % A.Mod) + A.Mod) % A.Mod;
    return ((R + P * Sm) % A.Mod) * A.Mod + (2 * P) % A.Mod;
  }
  }
  fatalError("stepRaw: unknown constraint kind");
}

bool acceptRaw(const AtomSpec &A, int64_t Raw) {
  if (Raw == DeadRaw)
    return false;
  switch (A.Kind) {
  case ConstraintKind::Eq:
    return Raw == 0;
  case ConstraintKind::Ge:
    return Raw >= 0;
  case ConstraintKind::Stride:
    return Raw / A.Mod == 0;
  }
  fatalError("acceptRaw: unknown constraint kind");
}

/// One atom's DFA with interned states.  State 0 is the absorbing dead
/// state; the local alphabet covers only the atom's support bits, and
/// LocalOf gathers a global letter (one bit per track) into a local one.
struct Dfa {
  std::vector<int64_t> Raw;                ///< Interned raw state values.
  std::vector<std::vector<uint32_t>> Next; ///< [state][local letter].
  std::vector<char> Accept;
  uint32_t Initial = 0;
  std::vector<uint32_t> LocalOf; ///< [global letter] -> local letter.
};

/// Builds the DFA by BFS closure over the (finite) reachable raw states.
Result<Dfa> buildDfa(const AtomSpec &A, unsigned NumTracks,
                     const AutomatonLimits &Limits) {
  Dfa D;
  unsigned SupportBits = static_cast<unsigned>(A.Terms.size());
  unsigned NumLocal = 1u << SupportBits;

  // Gather table: global letter -> packed support bits.
  D.LocalOf.assign(size_t(1) << NumTracks, 0);
  for (size_t G = 0; G < D.LocalOf.size(); ++G) {
    uint32_t L = 0;
    for (unsigned B = 0; B < SupportBits; ++B)
      if (G >> A.Terms[B].first & 1)
        L |= 1u << B;
    D.LocalOf[G] = L;
  }

  // Per local letter, the signed sum the transition functions consume
  // (already negated for Ge by the caller's choice of Terms signs).
  std::vector<int64_t> SumOf(NumLocal, 0);
  for (unsigned L = 0; L < NumLocal; ++L)
    for (unsigned B = 0; B < SupportBits; ++B)
      if (L >> B & 1)
        SumOf[L] += A.Terms[B].second;

  std::unordered_map<int64_t, uint32_t> Ids;
  auto Intern = [&](int64_t RawState) -> uint32_t {
    if (RawState == DeadRaw)
      return 0;
    auto [It, Inserted] = Ids.try_emplace(RawState, uint32_t(D.Raw.size()));
    if (Inserted) {
      D.Raw.push_back(RawState);
      D.Accept.push_back(acceptRaw(A, RawState));
      D.Next.emplace_back(); // filled when dequeued
    }
    return It->second;
  };

  // Dead state 0: absorbing, rejecting.
  D.Raw.push_back(DeadRaw);
  D.Accept.push_back(0);
  D.Next.emplace_back(std::vector<uint32_t>(NumLocal, 0));

  int64_t InitRaw;
  if (A.Kind == ConstraintKind::Stride)
    InitRaw = ((A.K % A.Mod + A.Mod) % A.Mod) * A.Mod + 1 % A.Mod;
  else
    InitRaw = A.Kind == ConstraintKind::Eq ? -A.K : A.K;
  D.Initial = Intern(InitRaw);

  for (uint32_t Id = 1; Id < D.Raw.size(); ++Id) {
    if (D.Raw.size() > Limits.MaxDfaStates)
      return unsupported("constraint DFA exceeds " +
                         std::to_string(Limits.MaxDfaStates) + " states");
    std::vector<uint32_t> Row(NumLocal);
    for (unsigned L = 0; L < NumLocal; ++L)
      Row[L] = Intern(stepRaw(A, D.Raw[Id], SumOf[L]));
    D.Next[Id] = std::move(Row);
  }
  return D;
}

/// Evaluates the formula's boolean structure over per-atom accept bits.
bool evalOverBits(const Formula &F,
                  const std::map<Constraint, size_t> &AtomIndex,
                  const std::vector<char> &Bits) {
  switch (F.kind()) {
  case FormulaKind::True:
    return true;
  case FormulaKind::False:
    return false;
  case FormulaKind::Atom:
    return Bits[AtomIndex.at(F.constraint())] != 0;
  case FormulaKind::And:
    for (const Formula &C : F.children())
      if (!evalOverBits(C, AtomIndex, Bits))
        return false;
    return true;
  case FormulaKind::Or:
    for (const Formula &C : F.children())
      if (evalOverBits(C, AtomIndex, Bits))
        return true;
    return false;
  case FormulaKind::Not:
    return !evalOverBits(F.children()[0], AtomIndex, Bits);
  case FormulaKind::Exists:
  case FormulaKind::Forall:
    break;
  }
  fatalError("evalOverBits: quantifier survived the applicability check");
}

/// Collects distinct atoms of a quantifier-free formula; returns false on
/// a quantifier (the caller eliminates them before calling in).
bool collectAtoms(const Formula &F, std::map<Constraint, size_t> &AtomIndex) {
  switch (F.kind()) {
  case FormulaKind::True:
  case FormulaKind::False:
    return true;
  case FormulaKind::Atom:
    AtomIndex.try_emplace(F.constraint(), AtomIndex.size());
    return true;
  case FormulaKind::And:
  case FormulaKind::Or:
  case FormulaKind::Not:
    for (const Formula &C : F.children())
      if (!collectAtoms(C, AtomIndex))
        return false;
    return true;
  case FormulaKind::Exists:
  case FormulaKind::Forall:
    return false;
  }
  fatalError("collectAtoms: unknown formula kind");
}

/// Checks an int64-destined magnitude against the safety cap.
bool tooWide(const BigInt &V, const AutomatonLimits &Limits) {
  return !V.fitsInt64() || V.bitWidth() > Limits.MaxMagnitudeBits;
}

} // namespace

Result<BigInt> omega::automatonCount(const Formula &F, const VarBox &Box,
                                     AutomatonRunStats *Stats,
                                     const AutomatonLimits &Limits) {
  AutomatonRunStats Local;
  AutomatonRunStats &RS = Stats ? *Stats : Local;

  unsigned NumTracks = static_cast<unsigned>(Box.size());
  if (NumTracks > Limits.MaxVars)
    return unsupported(std::to_string(NumTracks) + " variables exceed the " +
                       std::to_string(Limits.MaxVars) + "-track cap");

  std::map<std::string, unsigned> TrackOf;
  std::vector<int64_t> Range; // Hi - Lo per track
  unsigned W = 0;
  for (const auto &[Name, B] : Box) {
    check(B.Lo <= B.Hi, "automatonCount: inverted box bounds");
    BigInt R = BigInt(B.Hi) - BigInt(B.Lo);
    if (tooWide(R, Limits) || tooWide(BigInt(B.Lo), Limits))
      return unsupported("box side for " + Name + " too wide");
    TrackOf.emplace(Name, unsigned(TrackOf.size()));
    Range.push_back(R.toInt64());
    W = std::max(W, static_cast<unsigned>(
                        std::bit_width(uint64_t(Range.back()))));
  }

  std::map<Constraint, size_t> AtomIndex;
  if (!collectAtoms(F, AtomIndex))
    return unsupported("quantified formula (eliminate quantifiers first)");

  // Lower formula atoms onto the shifted tracks.
  std::vector<AtomSpec> Atoms(AtomIndex.size());
  for (const auto &[C, Idx] : AtomIndex) {
    AtomSpec A;
    A.Kind = C.kind();
    bool Negate = C.kind() == ConstraintKind::Ge; // Ge consumes Σ(-aᵢ)bᵢ.
    BigInt K = C.expr().constant();
    for (const auto &[V, Coeff] : C.expr().terms()) {
      const std::string &Name = varName(V);
      auto It = TrackOf.find(Name);
      if (It == TrackOf.end())
        return unsupported("variable " + Name + " missing from the box");
      if (tooWide(Coeff, Limits))
        return unsupported("coefficient of " + Name + " too wide");
      K += Coeff * BigInt(Box.at(Name).Lo);
      int64_t Ci = Coeff.toInt64();
      A.Terms.emplace_back(It->second, Negate ? -Ci : Ci);
    }
    if (tooWide(K, Limits))
      return unsupported("shifted constant too wide");
    A.K = K.toInt64();
    if (C.isStride()) {
      if (!C.modulus().fitsInt64() ||
          C.modulus().toInt64() > Limits.MaxStrideModulus)
        return unsupported("stride modulus too large");
      A.Mod = C.modulus().toInt64();
    }
    Atoms[Idx] = std::move(A);
  }

  // Synthetic range atoms v' ≤ Hi - Lo (the only path-pruning atoms; the
  // lower bound v' ≥ 0 is implicit in the non-negative encoding).
  size_t NumFormulaAtoms = Atoms.size();
  for (const auto &[Name, Track] : TrackOf) {
    AtomSpec A;
    A.Kind = ConstraintKind::Ge;
    A.Terms.emplace_back(Track, int64_t(1)); // Σ(-aᵢ) with a = -1
    A.K = Range[Track];
    A.Required = true;
    Atoms.push_back(std::move(A));
  }

  std::vector<Dfa> Dfas;
  Dfas.reserve(Atoms.size());
  for (const AtomSpec &A : Atoms) {
    Result<Dfa> D = buildDfa(A, NumTracks, Limits);
    if (!D)
      return D.error();
    RS.DfaStates += D->Raw.size();
    Dfas.push_back(std::move(*D));
  }

  // Product DP over W steps.  A state is the tuple of per-atom DFA states;
  // the ordered map keeps iteration deterministic.
  using ProductState = std::vector<uint32_t>;
  std::map<ProductState, BigInt> Cur;
  ProductState Init(Dfas.size());
  for (size_t I = 0; I < Dfas.size(); ++I)
    Init[I] = Dfas[I].Initial;
  Cur.emplace(std::move(Init), BigInt(1));

  size_t NumLetters = size_t(1) << NumTracks;
  for (unsigned Step = 0; Step < W; ++Step) {
    std::map<ProductState, BigInt> Nxt;
    for (const auto &[State, Count] : Cur) {
      for (size_t G = 0; G < NumLetters; ++G) {
        ProductState NS(Dfas.size());
        bool Pruned = false;
        for (size_t I = 0; I < Dfas.size(); ++I) {
          NS[I] = Dfas[I].Next[State[I]][Dfas[I].LocalOf[G]];
          if (Atoms[I].Required && NS[I] == 0) {
            Pruned = true; // outside the box: no point grows from here
            break;
          }
        }
        if (Pruned)
          continue;
        ++RS.Transitions;
        Nxt[std::move(NS)] += Count;
      }
    }
    if (Nxt.size() > Limits.MaxProductStates)
      return unsupported("product exceeds " +
                         std::to_string(Limits.MaxProductStates) +
                         " states at step " + std::to_string(Step));
    RS.ProductStates += Nxt.size();
    Cur = std::move(Nxt);
  }

  BigInt Total(0);
  std::vector<char> Bits(NumFormulaAtoms);
  for (const auto &[State, Count] : Cur) {
    bool InBox = true;
    for (size_t I = NumFormulaAtoms; I < Dfas.size(); ++I)
      if (!Dfas[I].Accept[State[I]]) {
        InBox = false;
        break;
      }
    if (!InBox)
      continue;
    for (size_t I = 0; I < NumFormulaAtoms; ++I)
      Bits[I] = Dfas[I].Accept[State[I]];
    if (evalOverBits(F, AtomIndex, Bits))
      Total += Count;
  }
  return Total;
}
