//===- counting/Backend.h - Pluggable counting backends --------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CountBackend seam (DESIGN.md §14): one interface, three registered
/// algorithms that share no counting code —
///
///   pugh       §4 splinter summation.  *Total*: symbolic answers, budget
///              degradation to certified bounds, never refuses.
///   automaton  Per-constraint binary DFAs intersected by product DP
///              (counting/Automaton.h).  *Exact-or-refuses*: concrete
///              bounded sets only; anything else is a typed Unsupported
///              error, never a wrong count.
///   enumerate  Brute-force sweep of a derived bounding box.  Same
///              exact-or-refuses contract, volume-capped.
///
/// The unified entry points (omega::sumPolynomial / countSolutions with
/// CountOptions) dispatch through here; BackendKind::Auto applies a cheap
/// heuristic and falls back to pugh whenever the preferred backend
/// refuses, so Auto inherits pugh's totality.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_COUNTING_BACKEND_H
#define OMEGA_COUNTING_BACKEND_H

#include "counting/Automaton.h"
#include "omega/Omega.h"
#include "poly/QuasiPolynomial.h"

#include <string>

namespace omega {

/// One counting algorithm behind the unified query API.
class CountBackend {
public:
  virtual ~CountBackend() = default;

  /// Which algorithm this is (never BackendKind::Auto — Auto is a
  /// dispatcher policy, not a backend).
  virtual BackendKind kind() const = 0;

  const char *name() const { return backendKindName(kind()); }

  /// Answers (Σ Vars : F : X) under \p Opts.  A total backend returns
  /// Exact/Bounded/Unbounded; an exact-or-refuse backend may additionally
  /// return Status::Error with ErrorKind::Unsupported — a refusal, never a
  /// wrong count.  Opts.Backend is ignored (the dispatcher consumed it);
  /// the effort budget only applies to backends that can degrade (pugh).
  virtual CountResult count(const Formula &F, const VarSet &Vars,
                            const QuasiPolynomial &X,
                            const CountOptions &Opts) const = 0;
};

/// The registered singleton for \p K.  K must name a concrete backend,
/// not Auto.
const CountBackend &countBackend(BackendKind K);

/// Parses a --backend value ("pugh", "automaton", "enumerate", "auto").
bool backendKindFromName(const std::string &Name, BackendKind &Out);

/// Outcome of bounding-box derivation for the concrete backends.
enum class BoxOutcome {
  Bounded,   ///< Box covers every solution; Box is valid.
  Empty,     ///< The formula is infeasible: the count is zero.
  Unbounded, ///< Some variable is unbounded over a feasible clause: the
             ///< solution set is provably infinite.
  Refused,   ///< Bounds exist but are unusable (e.g. beyond int64);
             ///< Reason says why.
};

struct DerivedBox {
  BoxOutcome Outcome = BoxOutcome::Refused;
  VarBox Box;         ///< Valid when Outcome == Bounded.
  std::string Reason; ///< Valid when Outcome == Refused.
};

/// Derives inclusive per-variable bounds covering every solution of \p F
/// over \p Vars, by exact projection (§2.3): each variable's range is read
/// off the one-variable clauses of projectVars over each simplified
/// clause.  \p F must be concrete (free variables ⊆ Vars).  The box is the
/// exact hull per clause union, so Bounded really certifies finiteness and
/// Unbounded really certifies an infinite set.
DerivedBox deriveCountingBox(const Formula &F, const VarSet &Vars);

/// The BackendKind::Auto policy, exposed for tests: returns the concrete
/// backend a query would dispatch to and (optionally) the one-line
/// rationale.  Never returns Auto.
BackendKind chooseBackend(const Formula &F, const VarSet &Vars,
                          const QuasiPolynomial &X, const CountOptions &Opts,
                          std::string *Reason = nullptr);

/// Dispatches (Σ Vars : F : X) to Opts.Backend, resolving Auto via
/// chooseBackend and falling back to pugh when an Auto-chosen backend
/// refuses.  Fills CountResult::Backend/BackendReason.  This is the core
/// the sumPolynomial envelope (counting/Query.cpp) wraps with knob
/// scoping, stats deltas, and trace sessions.
CountResult dispatchCount(const Formula &F, const VarSet &Vars,
                          const QuasiPolynomial &X, const CountOptions &Opts);

} // namespace omega

#endif // OMEGA_COUNTING_BACKEND_H
