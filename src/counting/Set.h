//===- counting/Set.h - Presburger-definable integer sets -------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Presburger-definable set of integer tuples { [v1..vk] : F } with the
/// full boolean algebra, projection, counting and sampling — the
/// set-level sibling of Relation and the natural front door for users who
/// just want "how many points does this set have, as a formula in n?".
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_COUNTING_SET_H
#define OMEGA_COUNTING_SET_H

#include "counting/Summation.h"

#include <optional>

namespace omega {

/// { [Tuple] : Body }; free variables of Body outside the tuple are
/// symbolic constants.
class PresburgerSet {
public:
  PresburgerSet(std::vector<std::string> Tuple, Formula Body);

  const std::vector<std::string> &tuple() const { return Tuple; }
  const Formula &body() const { return Body; }

  PresburgerSet unionWith(const PresburgerSet &Other) const;
  PresburgerSet intersect(const PresburgerSet &Other) const;
  PresburgerSet subtract(const PresburgerSet &Other) const;

  /// Projects away the named dimensions (they must be tuple variables).
  PresburgerSet project(const VarSet &Away) const;

  bool isEmpty() const;
  bool isSubsetOf(const PresburgerSet &Other) const;
  bool isEqualTo(const PresburgerSet &Other) const;

  /// True iff the point (tuple values plus symbol values) is in the set.
  bool contains(const Assignment &Point) const;

  /// |S| as a piecewise quasi-polynomial in the symbolic constants.
  PiecewiseValue count(SumOptions Opts = {}) const;

  /// Σ of a polynomial over the set.
  PiecewiseValue sum(const QuasiPolynomial &X, SumOptions Opts = {}) const;

  /// A concrete member at the given symbol values, or nullopt if empty.
  std::optional<Assignment> sample(const Assignment &Symbols) const;

  std::string toString() const;

private:
  /// Other's body with its tuple renamed to this set's tuple names.
  Formula aligned(const PresburgerSet &Other) const;

  std::vector<std::string> Tuple;
  Formula Body;
};

} // namespace omega

#endif // OMEGA_COUNTING_SET_H
