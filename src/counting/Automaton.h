//===- counting/Automaton.h - Constraint-automaton counting ----*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counting by finite automata over binary encodings: each affine
/// constraint becomes a DFA reading the variables' bits LSB-first (one bit
/// per variable per step), the constraint automata are intersected
/// on the fly, and the number of accepting paths of the product — one path
/// per solution in the bounding box — is computed by dynamic programming.
/// The technique is the classical Presburger-automata construction used by
/// barvinok's count_solutions and the Omega library's DFA backend; it
/// shares no code with the §4 splinter-summation pipeline, which makes it
/// the differential cross-check backend (DESIGN.md §14).
///
/// Scope: quantifier-free formulas over variables with known finite bounds.
/// Quantifier elimination and bound derivation happen in the caller
/// (counting/Backend.cpp); this module is pure automaton machinery.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_COUNTING_AUTOMATON_H
#define OMEGA_COUNTING_AUTOMATON_H

#include "presburger/Formula.h"
#include "support/Status.h"

#include <cstdint>
#include <map>
#include <string>

namespace omega {

/// Inclusive integer bounds of one variable.
struct VarBounds {
  int64_t Lo = 0;
  int64_t Hi = 0;
};

/// A bounding box: inclusive bounds per counted variable (deterministically
/// ordered by name, which fixes the automaton's track order).
using VarBox = std::map<std::string, VarBounds>;

/// What one automaton run did, for pipeline-stats attribution.
struct AutomatonRunStats {
  uint64_t DfaStates = 0;     ///< States across all per-constraint DFAs.
  uint64_t ProductStates = 0; ///< Distinct product states the DP explored.
  uint64_t Transitions = 0;   ///< Live product transitions taken.
};

/// Refusal thresholds.  The automaton backend is exact-or-refuses: rather
/// than degrade, a query outside these caps comes back as a typed
/// Unsupported error and the dispatcher falls back to the total backend.
struct AutomatonLimits {
  /// Cap on distinct product states alive at any DP step.
  uint64_t MaxProductStates = uint64_t(1) << 20;
  /// Cap on states of a single constraint DFA.
  uint64_t MaxDfaStates = uint64_t(1) << 16;
  /// Cap on variables (the alphabet is one bit per variable per step).
  unsigned MaxVars = 12;
  /// Cap on |coefficient| and |shifted constant| bit widths, so all
  /// per-step state arithmetic provably stays in int64.
  unsigned MaxMagnitudeBits = 44;
  /// Cap on stride moduli (stride DFA states are residue pairs mod m).
  int64_t MaxStrideModulus = int64_t(1) << 20;
};

/// Counts the integer solutions of \p F over exactly the variables of
/// \p Box, every solution lying inside the box (the caller certifies the
/// box covers all solutions; points of the box violating F are excluded by
/// the automata, so a loose box changes cost, never the count).
///
/// Requirements, checked and reported as Unsupported errors rather than
/// miscounts: F is quantifier-free, and mentions only variables of Box.
/// Formula structure is handled exactly — And/Or/Not combine per-atom
/// acceptance, so overlapping disjuncts are not double-counted and
/// negations need no DNF expansion.
Result<BigInt> automatonCount(const Formula &F, const VarBox &Box,
                              AutomatonRunStats *Stats = nullptr,
                              const AutomatonLimits &Limits = {});

} // namespace omega

#endif // OMEGA_COUNTING_AUTOMATON_H
