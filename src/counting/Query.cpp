//===- counting/Query.cpp - Unified options-taking query entry point -----===//
//
// Implements omega::sumPolynomial / omega::countSolutions(CountOptions):
// one entry point that applies a CountOptions (workers, cache, budget,
// stats, tracing) for the duration of a query and restores the previous
// process state on return.  The legacy process-global knobs keep working —
// CountOptions{} defaults reproduce them — but new code should come in
// through here.
//
//===----------------------------------------------------------------------===//

#include "counting/Backend.h"
#include "counting/Summation.h"

#include "support/BigInt.h"
#include "support/ThreadPool.h"

using namespace omega;

namespace {

/// RAII: installs the query's knob settings and restores the previous
/// values (the deprecated process globals double as the save slots, so a
/// query nested inside legacy-configured code is transparent to it).
class ScopedKnobs {
public:
  explicit ScopedKnobs(const CountOptions &Opts)
      : PrevWorkers(workerCount()), PrevCache(conjunctCacheCapacity()),
        PrevArith(arithCounters().CountOps.load(std::memory_order_relaxed)) {
    setWorkerCount(Opts.Workers);
    setConjunctCacheCapacity(Opts.CacheEnabled ? Opts.CacheCapacity : 0);
    setArithOpCounting(Opts.CountArithOps);
  }

  ~ScopedKnobs() {
    setWorkerCount(PrevWorkers);
    setConjunctCacheCapacity(PrevCache);
    setArithOpCounting(PrevArith);
  }

  ScopedKnobs(const ScopedKnobs &) = delete;
  ScopedKnobs &operator=(const ScopedKnobs &) = delete;

private:
  unsigned PrevWorkers;
  size_t PrevCache;
  bool PrevArith;
};

PipelineStatsSnapshot subtract(const PipelineStatsSnapshot &After,
                               const PipelineStatsSnapshot &Before) {
  PipelineStatsSnapshot D = After;
  D.FeasibilityTests -= Before.FeasibilityTests;
  D.ProjectionCalls -= Before.ProjectionCalls;
  D.ClausesSimplified -= Before.ClausesSimplified;
  D.SplintersGenerated -= Before.SplintersGenerated;
  D.CacheHits -= Before.CacheHits;
  D.CacheMisses -= Before.CacheMisses;
  D.CacheEvictions -= Before.CacheEvictions;
  D.ParallelBatches -= Before.ParallelBatches;
  D.ParallelTasks -= Before.ParallelTasks;
  D.CoalescePairs -= Before.CoalescePairs;
  D.CoalescePrefiltered -= Before.CoalescePrefiltered;
  D.CoalesceMerges -= Before.CoalesceMerges;
  D.BudgetTrips -= Before.BudgetTrips;
  D.DegradedQueries -= Before.DegradedQueries;
  D.AutomatonDfaStates -= Before.AutomatonDfaStates;
  D.AutomatonProductStates -= Before.AutomatonProductStates;
  D.AutomatonTransitions -= Before.AutomatonTransitions;
  D.EnumeratedPoints -= Before.EnumeratedPoints;
  D.BackendFallbacks -= Before.BackendFallbacks;
  D.BigIntSpills -= Before.BigIntSpills;
  D.BigIntFastOps -= Before.BigIntFastOps;
  D.BigIntSlowOps -= Before.BigIntSlowOps;
  D.SimplifyNanos -= Before.SimplifyNanos;
  D.DisjointNanos -= Before.DisjointNanos;
  D.CoalesceNanos -= Before.CoalesceNanos;
  D.SummationNanos -= Before.SummationNanos;
  return D;
}

} // namespace

CountResult omega::sumPolynomial(const Formula &F, const VarSet &Vars,
                                 const QuasiPolynomial &X,
                                 const CountOptions &Opts) {
  CountResult Out;
  ScopedKnobs Knobs(Opts);
  PipelineStatsSnapshot Before;
  if (Opts.CollectStats)
    Before = snapshotPipelineStats();
  if (Opts.CollectTrace)
    startTracing();

  try {
    // Backend selection and the per-backend algorithms live in
    // counting/Backend.cpp; the default (Pugh) reproduces the pre-PR-7
    // pipeline bit for bit.
    Out = dispatchCount(F, Vars, X, Opts);
  } catch (...) {
    // Stop the trace session before rethrowing so the process is not left
    // tracing forever (the knobs restore via ScopedKnobs).
    if (Opts.CollectTrace)
      (void)stopTracing();
    throw;
  }

  if (Opts.CollectTrace)
    Out.Trace = stopTracing();
  if (Opts.CollectStats)
    Out.Stats = subtract(snapshotPipelineStats(), Before);
  return Out;
}

CountResult omega::countSolutions(const Formula &F, const VarSet &Vars,
                                  const CountOptions &Opts) {
  return sumPolynomial(F, Vars, QuasiPolynomial(Rational(1)), Opts);
}
