//===- counting/Query.cpp - Unified options-taking query entry point -----===//
//
// Implements omega::sumPolynomial / omega::countSolutions / countBatch:
// re-entrant entry points that translate a CountOptions into a
// QueryContext installed for the query's duration (support/QueryContext.h)
// instead of mutating process globals.  Concurrent queries on different
// threads — omegad sessions, batch hosts — therefore run with independent
// knobs and independent stats.  The one process-wide piece a query may
// still claim is the trace session, which is single-occupancy by design:
// queries with CollectTrace serialize on a mutex, and every other query
// simply opts out of participating in a foreign session.
//
//===----------------------------------------------------------------------===//

#include "counting/Backend.h"
#include "counting/Summation.h"

#include "support/BigInt.h"
#include "support/QueryContext.h"
#include "support/ThreadAnnotations.h"

using namespace omega;

namespace {

/// The lock serializing traced queries (tracing is process-wide and
/// single-session, DESIGN.md §12).  Function-local so it constructs on
/// first traced query.
Mutex &traceSessionMutex() {
  static Mutex M;
  return M;
}

/// RAII around one query's trace session: acquires the session lock and
/// starts tracing when the query wants a trace, and guarantees the session
/// is stopped and the lock released on every exit path (including
/// exceptions out of the backend).
///
/// The conditional acquisition is outside what the capability analysis can
/// model (lock held iff Enabled), so the methods opt out wholesale; the
/// invariant is local to this 25-line class.
class ScopedTraceSession {
public:
  explicit ScopedTraceSession(bool Enabled)
      OMEGA_NO_THREAD_SAFETY_ANALYSIS : Enabled(Enabled) {
    if (!Enabled)
      return;
    traceSessionMutex().lock();
    startTracing();
  }

  /// Ends the session and returns its data (null when not tracing).
  std::shared_ptr<const TraceData> finish() {
    if (!Enabled || Stopped)
      return nullptr;
    Stopped = true;
    return stopTracing();
  }

  ~ScopedTraceSession() OMEGA_NO_THREAD_SAFETY_ANALYSIS {
    if (!Enabled)
      return;
    if (!Stopped)
      (void)stopTracing();
    traceSessionMutex().unlock();
  }

  ScopedTraceSession(const ScopedTraceSession &) = delete;
  ScopedTraceSession &operator=(const ScopedTraceSession &) = delete;

private:
  bool Enabled;
  bool Stopped = false;
};

} // namespace

CountResult omega::sumPolynomial(const Formula &F, const VarSet &Vars,
                                 const QuasiPolynomial &X,
                                 const CountOptions &Opts) {
  const QueryContext *Prev = activeQueryContext();

  // The cache storage is shared and grow-only from here: a query may ask
  // for more capacity than the host configured, never less, so one
  // small-cache query cannot evict a server's warm entries.  Opting out of
  // the cache entirely is per-query (QueryContext::CacheEnabled).
  if (Opts.CacheEnabled && Opts.CacheCapacity > conjunctCacheCapacity())
    configureConjunctCache(Opts.CacheCapacity);

  QueryStatsBlock Block;
  const bool WantStats = Opts.CollectStats || Opts.CountArithOps;
  Block.Arith.CountOps.store(Opts.CountArithOps, std::memory_order_relaxed);

  QueryContext Ctx;
  Ctx.Workers = Opts.Workers;
  Ctx.CacheEnabled = Opts.CacheEnabled;
  // A traced query participates in its own session; an untraced query
  // inherits participation (so a tool-level trace keeps seeing nested
  // queries) and defaults to participating when top-level, which keeps
  // bare startTracing() callers (tests) recording.
  Ctx.TraceParticipant =
      Opts.CollectTrace || (Prev ? Prev->TraceParticipant : true);
  Ctx.Stats = WantStats ? &Block : nullptr;

  CountResult Out;
  try {
    QueryContextScope Scope(Ctx);
    ScopedTraceSession Trace(Opts.CollectTrace);
    // Backend selection and the per-backend algorithms live in
    // counting/Backend.cpp; the default (Pugh) reproduces the pre-PR-7
    // pipeline bit for bit.
    Out = dispatchCount(F, Vars, X, Opts);
    Out.Trace = Trace.finish();
  } catch (...) {
    // The scope has unwound, so the fold lands in the enclosing targets —
    // work done before the throw stays visible to aggregate stats.
    if (WantStats)
      foldQueryStats(Block);
    throw;
  }
  if (WantStats) {
    Out.Stats = snapshotQueryStats(Block);
    // Fold the block into whatever this thread resolves to now that the
    // scope popped — an enclosing query's block, a tool-level collector,
    // or the process-wide counters — so aggregate observability (--stats
    // at tool exit, omegad's stats endpoint) still sees all work.
    foldQueryStats(Block);
  }
  return Out;
}

CountResult omega::countSolutions(const Formula &F, const VarSet &Vars,
                                  const CountOptions &Opts) {
  return sumPolynomial(F, Vars, QuasiPolynomial(Rational(1)), Opts);
}

std::vector<CountResult> omega::countBatch(std::span<const CountQuery> Queries) {
  std::vector<CountResult> Out;
  Out.reserve(Queries.size());
  // Sequential by design: each element gets its own context and stats
  // delta (isolation is the contract QueryApiTest pins), and any
  // parallelism belongs *inside* a query (CountOptions::Workers) or above
  // the batch (omegad scheduling whole queries onto the pool).
  for (const CountQuery &Q : Queries)
    Out.push_back(sumPolynomial(Q.F, Q.Vars, Q.X, Q.Opts));
  return Out;
}
