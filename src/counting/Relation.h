//===- counting/Relation.h - Integer tuple relations ---------------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer tuple relations { [i1..in] -> [o1..om] : F } — the abstraction
/// the Omega project built on top of the Omega test ("unified frameworks
/// for reordering transformations", §9 of the paper).  Combined with this
/// paper's counting machinery, relations answer quantitative questions:
/// how many targets per source (fan-out), how many pairs in total.
///
/// Operations keep value semantics; variables are renamed internally so
/// distinct relations never capture each other's names.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_COUNTING_RELATION_H
#define OMEGA_COUNTING_RELATION_H

#include "counting/Summation.h"
#include "omega/Omega.h"

namespace omega {

/// A finite-arity integer relation with named input and output tuples.
class Relation {
public:
  /// Builds { [Ins] -> [Outs] : Body }.  Free variables of Body outside
  /// the tuples are symbolic constants.
  Relation(std::vector<std::string> Ins, std::vector<std::string> Outs,
           Formula Body);

  const std::vector<std::string> &inputs() const { return Ins; }
  const std::vector<std::string> &outputs() const { return Outs; }
  const Formula &body() const { return Body; }

  /// { [o] -> [i] : R(i, o) }.
  Relation inverse() const;

  /// Composition (this ∘ Other): Other first, then this:
  /// { x -> z : ∃y. Other(x, y) ∧ this(y, z) }.  Arities must match.
  Relation compose(const Relation &Other) const;

  /// Pointwise union/intersection/difference; tuples must have the same
  /// arities (the result uses this relation's variable names).
  Relation unionWith(const Relation &Other) const;
  Relation intersect(const Relation &Other) const;
  Relation subtract(const Relation &Other) const;

  /// { x : ∃z. R(x, z) } as a formula over the input names.
  Formula domain() const;
  /// { z : ∃x. R(x, z) } as a formula over the output names.
  Formula range() const;

  /// True iff no (x, z) pair satisfies the relation (for any symbol
  /// values).
  bool isEmpty() const;

  /// True iff every pair of this relation belongs to \p Other.
  bool isSubsetOf(const Relation &Other) const;

  /// (Σ outs : R(ins, outs) : 1) — the fan-out of each input tuple,
  /// symbolic in the input names and the symbolic constants.
  PiecewiseValue countOutputsPerInput(SumOptions Opts = {}) const;

  /// (Σ ins, outs : R : 1) — total number of related pairs.
  PiecewiseValue countPairs(SumOptions Opts = {}) const;

  /// Image of a set: { z : ∃x. Set(x) ∧ R(x, z) }; \p Set ranges over the
  /// input names.
  Formula image(const Formula &Set) const;

  std::string toString() const;

private:
  /// Body with inputs/outputs renamed to the given fresh names.
  Formula renamedBody(const std::vector<std::string> &NewIns,
                      const std::vector<std::string> &NewOuts) const;

  std::vector<std::string> Ins;
  std::vector<std::string> Outs;
  Formula Body;
};

} // namespace omega

#endif // OMEGA_COUNTING_RELATION_H
