//===- counting/Summation.cpp - Symbolic sums over Presburger sets -------===//
//
// Implements §4 of the paper.  See Summation.h for the pipeline overview.
//
//===----------------------------------------------------------------------===//

#include "counting/Summation.h"

#include "analysis/Validator.h"
#include "matrix/Matrix.h"
#include "poly/Faulhaber.h"
#include "presburger/Parallel.h"
#include "support/Budget.h"
#include "support/Error.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <algorithm>
#include <optional>
#include <set>

using namespace omega;

namespace {

/// One bound: Coef * v {>=, <=} Expr with Coef > 0, plus the index of the
/// originating constraint.
struct VarBound {
  BigInt Coef;
  AffineExpr Expr;
  size_t Idx;
};

struct VarBounds {
  std::vector<VarBound> Lowers;
  std::vector<VarBound> Uppers;
};

VarBounds collectVarBounds(const Conjunct &C, const std::string &V) {
  VarBounds B;
  const std::vector<Constraint> &Ks = C.constraints();
  for (size_t I = 0; I < Ks.size(); ++I) {
    if (!Ks[I].isGe())
      continue;
    BigInt A = Ks[I].expr().coeff(V);
    if (A.isZero())
      continue;
    AffineExpr Rest = Ks[I].expr();
    Rest.setCoeff(V, BigInt(0));
    if (A.isPositive())
      B.Lowers.push_back({A, -Rest, I});
    else
      B.Uppers.push_back({-A, std::move(Rest), I});
  }
  return B;
}

/// Does any equality of C mention a variable of Vars, or does C carry
/// wildcards or strides touching Vars?  If so the clause needs the §4.5.2
/// re-parameterization before the convex recursion can run.
bool needsReparam(const Conjunct &C, const VarSet &Vars) {
  if (!C.wildcards().empty())
    return true;
  for (const Constraint &K : C.constraints()) {
    if (K.isGe())
      continue;
    for (const auto &[Name, Coef] : K.expr().terms()) {
      (void)Coef;
      if (Vars.count(Name))
        return true;
    }
  }
  return false;
}

/// The summation engine (one instance per query).
class Summer {
public:
  explicit Summer(SumOptions Opts) : Opts(Opts) {}

  PiecewiseValue Out;
  bool Unbounded = false;

  /// Sums X over the integer points of C in the Vars dimensions.
  /// \p Pinned, when nonempty, names a variable currently being split on
  /// multiple bounds; it is eliminated before any other variable.
  void sumClause(Conjunct C, VarSet Vars, QuasiPolynomial X,
                 std::string Pinned = "") {
    if (Unbounded)
      return;
    // Per-Summer depth: whether the budget trips depends only on this
    // clause's own recursion, never on worker schedule.
    ++Depth;
    struct DepthGuard {
      unsigned &D;
      ~DepthGuard() { --D; }
    } Guard{Depth};
    chargeDepth(Depth, "summation");
    if (!normalizeConjunct(C))
      return;
    if (!feasible(C))
      return;

    // Counted variables no constraint mentions have infinitely many
    // solutions each.
    VarSet Mentioned = C.mentionedVars();
    for (const std::string &V : Vars)
      if (!Mentioned.count(V)) {
        Unbounded = true;
        return;
      }

    if (Vars.empty()) {
      emitPiece(std::move(C), std::move(X));
      return;
    }

    // Wildcards outside equalities break the functional-determination
    // assumption of §4.5.2; restore the invariant by projecting them.
    if (hasNonFunctionalWildcards(C)) {
      Conjunct Body = C;
      VarSet Wilds = Body.takeWildcards();
      for (Conjunct &P : projectVars(Body, Wilds, ShadowMode::Disjoint))
        sumClause(std::move(P), Vars, X, Pinned);
      return;
    }

    if (needsReparam(C, Vars)) {
      reparameterize(std::move(C), std::move(Vars), std::move(X));
      return;
    }

    // Convex sum (§4.4): pure inequalities over Vars + symbols.
    if (Opts.EliminateRedundant)
      removeRedundant(C, /*Aggressive=*/true);

    std::string V = Pinned.empty() ? pickVar(C, Vars) : Pinned;
    VarBounds B = collectVarBounds(C, V);
    if (B.Lowers.empty() || B.Uppers.empty()) {
      Unbounded = true;
      return;
    }

    if (B.Uppers.size() > 1) {
      splitBounds(C, Vars, X, V, B.Uppers, /*IsUpper=*/true);
      return;
    }
    if (B.Lowers.size() > 1) {
      splitBounds(C, Vars, X, V, B.Lowers, /*IsUpper=*/false);
      return;
    }
    sumSingleVar(std::move(C), std::move(Vars), std::move(X), V, B.Lowers[0],
                 B.Uppers[0]);
  }

private:
  /// True iff some wildcard occurs outside equalities.
  static bool hasNonFunctionalWildcards(const Conjunct &C) {
    if (C.wildcards().empty())
      return false;
    for (const Constraint &K : C.constraints()) {
      if (K.isEq())
        continue;
      for (const auto &[Name, Coef] : K.expr().terms()) {
        (void)Coef;
        if (C.isWildcard(Name))
          return true;
      }
    }
    return false;
  }

  void emitPiece(Conjunct Guard, QuasiPolynomial X) {
    if (X.isZero())
      return;
    removeRedundant(Guard, /*Aggressive=*/true);
    Out.add({std::move(Guard), std::move(X)});
  }

  /// §4.4 heuristic: fewest (lowers x uppers), preferring variables whose
  /// bounds all have unit coefficients (no splintering needed).
  std::string pickVar(const Conjunct &C, const VarSet &Vars) {
    if (!Opts.FreeVariableOrder)
      return *Vars.rbegin(); // Ablation: fixed (reverse-alphabetical).
    std::string Best;
    bool BestUnit = false;
    size_t BestCost = 0;
    for (const std::string &V : Vars) {
      VarBounds B = collectVarBounds(C, V);
      bool Unit = true;
      for (const VarBound &L : B.Lowers)
        if (!L.Coef.isOne())
          Unit = false;
      for (const VarBound &U : B.Uppers)
        if (!U.Coef.isOne())
          Unit = false;
      size_t Cost = std::max<size_t>(1, B.Lowers.size()) *
                    std::max<size_t>(1, B.Uppers.size());
      if (Best.empty() || (Unit && !BestUnit) ||
          (Unit == BestUnit && Cost < BestCost)) {
        Best = V;
        BestUnit = Unit;
        BestCost = Cost;
      }
    }
    return Best;
  }

  /// §4.4 steps 3-4: splits a variable with multiple upper (lower) bounds
  /// into disjoint cases; in case i, bound i is the strict minimum
  /// (maximum) against earlier bounds and weak against later ones.
  void splitBounds(const Conjunct &C, const VarSet &Vars,
                   const QuasiPolynomial &X, const std::string &V,
                   const std::vector<VarBound> &Bounds, bool IsUpper) {
    for (size_t I = 0; I < Bounds.size(); ++I) {
      Conjunct Case;
      // Keep all constraints except the other bounds of this side.
      for (size_t K = 0; K < C.constraints().size(); ++K) {
        bool Skip = false;
        for (size_t J = 0; J < Bounds.size(); ++J)
          if (J != I && Bounds[J].Idx == K)
            Skip = true;
        if (!Skip)
          Case.add(C.constraints()[K]);
      }
      for (size_t J = 0; J < Bounds.size(); ++J) {
        if (J == I)
          continue;
        // Upper: U_i/a_i <= U_j/a_j  <=>  a_j*U_i <= a_i*U_j (strict for
        // J < I to make the cases disjoint).  Lower: mirrored.
        AffineExpr Cmp = IsUpper ? Bounds[J].Coef * Bounds[I].Expr -
                                       Bounds[I].Coef * Bounds[J].Expr
                                 : Bounds[I].Coef * Bounds[J].Expr -
                                       Bounds[J].Coef * Bounds[I].Expr;
        // Cmp <= 0, strict when J < I.
        AffineExpr E = -Cmp;
        if (J < I)
          E -= AffineExpr(1);
        Case.add(Constraint::ge(std::move(E)));
      }
      sumClause(std::move(Case), Vars, X, V);
    }
  }

  /// §4.1-4.3: sums X over L <= b*v and a*v <= U (single bound pair).
  void sumSingleVar(Conjunct C, VarSet Vars, QuasiPolynomial X,
                    const std::string &V, const VarBound &L,
                    const VarBound &U) {
    // Remove v's two bound constraints from the clause.
    Conjunct Rest;
    for (size_t K = 0; K < C.constraints().size(); ++K)
      if (K != L.Idx && K != U.Idx)
        Rest.add(C.constraints()[K]);
    Vars.erase(V);

    std::vector<QuasiPolynomial> Coefs = X.coefficientsOf(V);

    auto SumWith = [&](const QuasiPolynomial &Lo, const QuasiPolynomial &Hi) {
      QuasiPolynomial S;
      for (size_t D = 0; D < Coefs.size(); ++D) {
        if (Coefs[D].isZero())
          continue;
        S += Coefs[D] * powerSumRange(static_cast<unsigned>(D), Lo, Hi);
      }
      return S;
    };

    if (L.Coef.isOne() && U.Coef.isOne()) {
      // Exact integral bounds: Σ_{v=L}^{U} X, guard L <= U.
      QuasiPolynomial S =
          SumWith(QuasiPolynomial::fromAffine(L.Expr),
                  QuasiPolynomial::fromAffine(U.Expr));
      Rest.add(Constraint::ge(U.Expr - L.Expr));
      sumClause(std::move(Rest), std::move(Vars), std::move(S));
      return;
    }

    switch (Opts.Strategy) {
    case BoundStrategy::Splinter:
      splinterSum(Rest, Vars, SumWith, V, L, U);
      return;
    case BoundStrategy::SymbolicMod: {
      // Valid only when the bounds are pure symbolic expressions; fall
      // back to splintering otherwise.
      bool SymbolOnly = true;
      for (const std::string &W : Vars)
        if (L.Expr.mentions(W) || U.Expr.mentions(W))
          SymbolOnly = false;
      if (!SymbolOnly) {
        splinterSum(Rest, Vars, SumWith, V, L, U);
        return;
      }
      symbolicModSum(Rest, Vars, SumWith, L, U);
      return;
    }
    case BoundStrategy::UpperBound:
    case BoundStrategy::LowerBound:
    case BoundStrategy::Approximate:
      approximateSum(Rest, Vars, SumWith, L, U);
      return;
    }
  }

  /// §4.2.1 "splintering": residue cases of L mod b and U mod a.  Within a
  /// case the bounds are integral (as exact rational-coefficient affine
  /// forms) and the emptiness guard is a single affine constraint.
  template <typename SumFn>
  void splinterSum(const Conjunct &Rest, const VarSet &Vars, SumFn SumWith,
                   const std::string &V, const VarBound &L,
                   const VarBound &U) {
    (void)V;
    for (BigInt R(0); R < L.Coef; ++R)
      for (BigInt S(0); S < U.Coef; ++S) {
        Conjunct Case = Rest;
        if (!L.Coef.isOne())
          Case.add(Constraint::stride(L.Coef, L.Expr - AffineExpr(R)));
        if (!U.Coef.isOne())
          Case.add(Constraint::stride(U.Coef, U.Expr - AffineExpr(S)));
        // Lo = (L - r)/b + [r > 0], Hi = (U - s)/a; both integral here.
        Rational InvB(BigInt(1), L.Coef), InvA(BigInt(1), U.Coef);
        QuasiPolynomial Lo =
            (QuasiPolynomial::fromAffine(L.Expr) -
             QuasiPolynomial(Rational(R))) *
            InvB;
        if (R.isPositive())
          Lo += QuasiPolynomial(Rational(1));
        QuasiPolynomial Hi = (QuasiPolynomial::fromAffine(U.Expr) -
                              QuasiPolynomial(Rational(S))) *
                             InvA;
        // Guard Lo <= Hi, scaled to integers:
        // a*(L - r) + a*b*[r>0] <= b*(U - s).
        AffineExpr G = L.Coef * (U.Expr - AffineExpr(S)) -
                       U.Coef * (L.Expr - AffineExpr(R));
        if (R.isPositive())
          G -= AffineExpr(U.Coef * L.Coef);
        Case.add(Constraint::ge(std::move(G)));
        sumClause(std::move(Case), Vars, SumWith(Lo, Hi));
      }
  }

  /// §4.2.1 symbolic answers: one piece (or b pieces when both bounds are
  /// rational, §4.2.2) whose value uses (e mod c) atoms.
  template <typename SumFn>
  void symbolicModSum(const Conjunct &Rest, const VarSet &Vars, SumFn SumWith,
                      const VarBound &L, const VarBound &U) {
    // Hi = floor(U/a) = (U - (U mod a))/a; Lo = ceil(L/b) =
    // (L + ((-L) mod b))/b.
    QuasiPolynomial Hi = QuasiPolynomial::fromAffine(U.Expr);
    if (!U.Coef.isOne()) {
      Hi -= QuasiPolynomial::fromAtom(Atom::mod(U.Expr, U.Coef));
      Hi *= Rational(BigInt(1), U.Coef);
    }
    QuasiPolynomial Lo = QuasiPolynomial::fromAffine(L.Expr);
    if (!L.Coef.isOne()) {
      Lo += QuasiPolynomial::fromAtom(Atom::mod(-L.Expr, L.Coef));
      Lo *= Rational(BigInt(1), L.Coef);
    }
    QuasiPolynomial Value = SumWith(Lo, Hi);

    if (L.Coef.isOne()) {
      // Guard: L <= floor(U/a)  <=>  a*L <= U.
      Conjunct Case = Rest;
      Case.add(Constraint::ge(U.Expr - U.Coef * L.Expr));
      sumClause(std::move(Case), Vars, std::move(Value));
      return;
    }
    if (U.Coef.isOne()) {
      // Guard: ceil(L/b) <= U  <=>  L <= b*U.
      Conjunct Case = Rest;
      Case.add(Constraint::ge(L.Coef * U.Expr - L.Expr));
      sumClause(std::move(Case), Vars, std::move(Value));
      return;
    }
    // Both rational (§4.2.2): splinter only the guard, by the residue of L
    // mod b; the value stays in the compact mod-atom form.
    for (BigInt R(0); R < L.Coef; ++R) {
      Conjunct Case = Rest;
      Case.add(Constraint::stride(L.Coef, L.Expr - AffineExpr(R)));
      // Lo_r = (L - r)/b + [r>0] integral; guard Lo_r <= floor(U/a)
      // <=> a*(L - r) + a*b*[r>0] <= b*U.
      AffineExpr G = L.Coef * U.Expr - U.Coef * (L.Expr - AffineExpr(R));
      if (R.isPositive())
        G -= AffineExpr(U.Coef * L.Coef);
      Case.add(Constraint::ge(std::move(G)));
      sumClause(std::move(Case), Vars, Value);
    }
  }

  /// §4.2.1 approximate answers.  For counting these are rigorous upper /
  /// lower bounds; for general summands they assume the summand is
  /// non-negative over the range (the paper's setting).
  template <typename SumFn>
  void approximateSum(const Conjunct &Rest, const VarSet &Vars, SumFn SumWith,
                      const VarBound &L, const VarBound &U) {
    Rational InvB(BigInt(1), L.Coef), InvA(BigInt(1), U.Coef);
    // Widest possible range (upper bound on the sum).
    QuasiPolynomial LoW = QuasiPolynomial::fromAffine(L.Expr) * InvB;
    QuasiPolynomial HiW = QuasiPolynomial::fromAffine(U.Expr) * InvA;
    // Narrowest guaranteed range (lower bound on the sum).
    QuasiPolynomial LoN = (QuasiPolynomial::fromAffine(L.Expr) +
                           QuasiPolynomial(Rational(L.Coef - BigInt(1)))) *
                          InvB;
    QuasiPolynomial HiN = (QuasiPolynomial::fromAffine(U.Expr) -
                           QuasiPolynomial(Rational(U.Coef - BigInt(1)))) *
                          InvA;

    Conjunct Case = Rest;
    QuasiPolynomial Value;
    switch (Opts.Strategy) {
    case BoundStrategy::UpperBound:
      // Real-shadow guard over-approximates non-emptiness.
      Case.add(Constraint::ge(L.Coef * U.Expr - U.Coef * L.Expr));
      Value = SumWith(LoW, HiW);
      break;
    case BoundStrategy::LowerBound:
      // Dark-shadow guard under-approximates non-emptiness.
      Case.add(Constraint::ge(
          L.Coef * U.Expr - U.Coef * L.Expr -
          AffineExpr((U.Coef - BigInt(1)) * (L.Coef - BigInt(1)))));
      Value = SumWith(LoN, HiN);
      break;
    case BoundStrategy::Approximate:
      Case.add(Constraint::ge(L.Coef * U.Expr - U.Coef * L.Expr));
      Value = (SumWith(LoW, HiW) + SumWith(LoN, HiN)) *
              Rational(BigInt(1), BigInt(2));
      break;
    default:
      fatalError("approximateSum called with a non-approximate strategy");
    }
    sumClause(std::move(Case), Vars, std::move(Value));
  }

  /// §4.5.2 projected sums: rewrites the clause's equalities (and strides,
  /// via auxiliary wildcards) over counted variables as an affine image of
  /// fresh free variables using the Smith Normal Form, then recurses.
  void reparameterize(Conjunct C, VarSet Vars, QuasiPolynomial X) {
    TraceSpan Span("snfReparam");
    Span.count(TraceCounter::ConstraintsIn, C.constraints().size());
    // Strides touching counted variables become wildcard equalities.
    Conjunct WithEqs;
    for (VarId W : C.wildcards().ids())
      WithEqs.addWildcard(W);
    for (const Constraint &K : C.constraints()) {
      bool TouchesVars = false;
      for (const auto &[Name, Coef] : K.expr().terms()) {
        (void)Coef;
        if (Vars.count(Name) || C.isWildcard(Name))
          TouchesVars = true;
      }
      if (K.isStride() && TouchesVars) {
        VarId W = freshWildcardId();
        AffineExpr E = K.expr();
        E.setCoeff(W, -K.modulus());
        WithEqs.add(Constraint::eq(std::move(E)));
        WithEqs.addWildcard(W);
        continue;
      }
      WithEqs.add(K);
    }
    C = std::move(WithEqs);

    // Column variables: every counted variable or wildcard mentioned, in
    // name order (the column order reaches the Smith decomposition).
    std::vector<VarId> Cols;
    {
      VarSet Mentioned = C.mentionedVars();
      for (auto It = Mentioned.begin(); It != Mentioned.end(); ++It)
        if (Vars.count(It.id()) || C.isWildcard(It.id()))
          Cols.push_back(It.id());
    }
    auto ColIdx = [&](VarId N) {
      auto It = std::find(Cols.begin(), Cols.end(), N);
      return It == Cols.end() ? SIZE_MAX : size_t(It - Cols.begin());
    };

    // Rows: equalities mentioning a column; others pass through.
    std::vector<AffineExpr> RowRhs; // Over symbols.
    std::vector<std::vector<BigInt>> RowCoefs;
    Conjunct Others;
    for (const Constraint &K : C.constraints()) {
      bool OnCols = false;
      for (const auto &[Name, Coef] : K.expr().terms()) {
        (void)Coef;
        if (ColIdx(Name) != SIZE_MAX)
          OnCols = true;
      }
      if (!K.isEq() || !OnCols) {
        Others.add(K);
        continue;
      }
      std::vector<BigInt> Coefs(Cols.size());
      AffineExpr Rhs = -K.expr();
      for (size_t J = 0; J < Cols.size(); ++J) {
        Coefs[J] = K.expr().coeff(Cols[J]);
        Rhs.setCoeff(Cols[J], BigInt(0));
      }
      RowCoefs.push_back(std::move(Coefs));
      RowRhs.push_back(std::move(Rhs));
    }

    unsigned NumRows = static_cast<unsigned>(RowCoefs.size());
    unsigned NumCols = static_cast<unsigned>(Cols.size());
    Matrix M(NumRows, NumCols);
    for (unsigned I = 0; I < NumRows; ++I)
      for (unsigned J = 0; J < NumCols; ++J)
        M.at(I, J) = RowCoefs[I][J];

    SmithForm S = smithNormalForm(M);
    unsigned Rank = S.Rank;

    // U * rhs, as affine expressions over symbols.
    std::vector<AffineExpr> URhs(NumRows);
    for (unsigned I = 0; I < NumRows; ++I)
      for (unsigned J = 0; J < NumRows; ++J)
        URhs[I] += S.U.at(I, J) * RowRhs[J];

    Conjunct NewC;
    // Rows beyond the rank demand (U rhs)_i = 0: symbol-only guards.
    for (unsigned I = Rank; I < NumRows; ++I)
      NewC.add(Constraint::eq(URhs[I]));

    // Pinned components sigma'_i = (U rhs)_i / d_i need d_i | (U rhs)_i.
    BigInt Den(1);
    for (unsigned I = 0; I < Rank; ++I) {
      const BigInt &D = S.D.at(I, I);
      if (!D.isOne())
        NewC.add(Constraint::stride(D, URhs[I]));
      Den = BigInt::lcm(Den, D);
    }

    // Free components get fresh counted variables.
    std::vector<VarId> Sigma;
    for (unsigned J = Rank; J < NumCols; ++J)
      Sigma.push_back(freshWildcardId());

    // Each column variable: x_k = Σ_j V[k][j] sigma'_j, expressed as
    // (integer affine over sigma and symbols) / Den.
    std::vector<AffineExpr> ColNum(NumCols);
    for (unsigned K = 0; K < NumCols; ++K) {
      for (unsigned J = 0; J < Rank; ++J)
        if (!S.V.at(K, J).isZero())
          ColNum[K] += S.V.at(K, J) * (Den / S.D.at(J, J)) * URhs[J];
      for (unsigned J = Rank; J < NumCols; ++J)
        if (!S.V.at(K, J).isZero())
          ColNum[K] +=
              S.V.at(K, J) * Den * AffineExpr::variable(Sigma[J - Rank]);
    }

    // Transform the remaining constraints: substitute x_k = ColNum[k]/Den,
    // scaling inequalities/equalities by Den and strides by Den as well.
    for (const Constraint &K : Others.constraints()) {
      AffineExpr E;
      BigInt ConstPart = K.expr().constant();
      bool OnCols = false;
      AffineExpr SymbolPart;
      SymbolPart.setConstant(ConstPart);
      for (const auto &[Name, Coef] : K.expr().terms()) {
        size_t Idx = ColIdx(Name);
        if (Idx == SIZE_MAX) {
          SymbolPart.setCoeff(Name, Coef);
          continue;
        }
        OnCols = true;
        E += Coef * ColNum[Idx];
      }
      if (!OnCols) {
        NewC.add(K);
        continue;
      }
      E += Den * SymbolPart;
      switch (K.kind()) {
      case ConstraintKind::Ge:
        NewC.add(Constraint::ge(std::move(E)));
        break;
      case ConstraintKind::Eq:
        NewC.add(Constraint::eq(std::move(E)));
        break;
      case ConstraintKind::Stride:
        NewC.add(Constraint::stride(Den * K.modulus(), std::move(E)));
        break;
      }
    }

    // Substitute into the summand for the counted columns.
    Rational InvDen(BigInt(1), Den);
    for (unsigned K = 0; K < NumCols; ++K) {
      if (!Vars.count(Cols[K]))
        continue;
      const std::string &ColName = varName(Cols[K]);
      if (!X.mentions(ColName))
        continue;
      QuasiPolynomial Val = QuasiPolynomial::fromAffine(ColNum[K]) * InvDen;
      X.substitute(ColName, Val);
    }

    VarSet NewVars(Sigma.begin(), Sigma.end());
    sumClause(std::move(NewC), std::move(NewVars), std::move(X));
  }

  SumOptions Opts;
  unsigned Depth = 0;
};

} // namespace

PiecewiseValue omega::sumOverConjunct(const Conjunct &C, const VarSet &Vars,
                                      const QuasiPolynomial &X,
                                      SumOptions Opts) {
  PhaseTimer Timer(pipelineStats().SummationNanos);
  TraceSpan Span("summation");
  Span.count(TraceCounter::ConstraintsIn, C.constraints().size());
  Summer S(Opts);
  S.sumClause(C, Vars, X);
  if (S.Unbounded)
    return PiecewiseValue::unbounded();
  S.Out.mergeSyntactic();
#ifdef OMEGA_VALIDATE
  validateOrDie(validatePiecewise(S.Out), "omega::sumOverConjunct");
#endif
  return std::move(S.Out);
}

namespace {

/// Post-pass: merge pieces with equal values whose guards are identical
/// except for one stride constraint, when the residues present cover the
/// whole modulus — the union over r of (m | e - r) is True.  This is the
/// paper's "additional simplification" at the end of Example 6 (and what
/// collapses a block-cyclic ownership count from 8 residue pieces into
/// one).
void mergeResidueCompletePieces(PiecewiseValue &V) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<Piece> &Pieces = V.pieces();
    for (size_t I = 0; I < Pieces.size() && !Changed; ++I) {
      const std::vector<Constraint> &Ks = Pieces[I].Guard.constraints();
      for (size_t S = 0; S < Ks.size() && !Changed; ++S) {
        if (!Ks[S].isStride())
          continue;
        const BigInt &Mod = Ks[S].modulus();
        if (!Mod.fitsInt64() || Mod.toInt64() > 64)
          continue;
        // Guard key: all constraints except stride S, sorted.
        auto KeyOf = [&](const Conjunct &G, size_t Skip) {
          std::vector<Constraint> Key;
          for (size_t K = 0; K < G.constraints().size(); ++K)
            if (K != Skip)
              Key.push_back(G.constraints()[K]);
          std::sort(Key.begin(), Key.end());
          return Key;
        };
        std::vector<Constraint> Key = KeyOf(Pieces[I].Guard, S);
        // The stride's expression modulo a shift: two strides with the
        // same modulus belong together when their expressions differ by a
        // constant; collect the residues present.
        std::vector<size_t> Members{I};
        std::vector<size_t> MemberStrideIdx{S};
        for (size_t J = 0; J < Pieces.size(); ++J) {
          if (J == I || Pieces[J].Value != Pieces[I].Value)
            continue;
          const std::vector<Constraint> &Js = Pieces[J].Guard.constraints();
          for (size_t T = 0; T < Js.size(); ++T) {
            if (!Js[T].isStride() || Js[T].modulus() != Mod)
              continue;
            AffineExpr Diff = Js[T].expr() - Ks[S].expr();
            if (!Diff.isConstant())
              continue;
            if (KeyOf(Pieces[J].Guard, T) != Key)
              continue;
            Members.push_back(J);
            MemberStrideIdx.push_back(T);
            break;
          }
        }
        if (Members.size() != size_t(Mod.toInt64()))
          continue;
        // Check the residues are pairwise distinct (then they cover all
        // of Z_mod).
        std::set<BigInt> Residues;
        for (size_t K = 0; K < Members.size(); ++K) {
          const Constraint &St =
              Pieces[Members[K]].Guard.constraints()[MemberStrideIdx[K]];
          Residues.insert(BigInt::floorMod(St.expr().constant(), Mod));
        }
        if (Residues.size() != size_t(Mod.toInt64()))
          continue;
        // Merge: keep piece I without the stride, drop the others.
        Conjunct NewGuard;
        for (Constraint &K : Key)
          NewGuard.add(std::move(K));
        Piece Merged{std::move(NewGuard), Pieces[I].Value};
        std::vector<size_t> Sorted = Members;
        std::sort(Sorted.rbegin(), Sorted.rend());
        for (size_t Idx : Sorted)
          Pieces.erase(Pieces.begin() + Idx);
        Pieces.push_back(std::move(Merged));
        Changed = true;
      }
    }
  }
}

/// Post-pass: merge pieces with equal values whose guards are disjoint and
/// whose union is exactly one clause (e.g. two adjacent n-ranges).
void coalesceEqualValuePieces(PiecewiseValue &V) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<Piece> &Pieces = V.pieces();
    for (size_t I = 0; I < Pieces.size() && !Changed; ++I)
      for (size_t J = I + 1; J < Pieces.size() && !Changed; ++J) {
        if (Pieces[I].Value != Pieces[J].Value)
          continue;
        // Guards must be disjoint: overlapping guards mean the values add
        // on the overlap, which a single merged piece would change.
        if (feasible(Conjunct::merge(Pieces[I].Guard, Pieces[J].Guard)))
          continue;
        std::optional<Conjunct> M =
            coalescePair(Pieces[I].Guard, Pieces[J].Guard);
        if (!M)
          continue;
        Pieces[I].Guard = std::move(*M);
        Pieces.erase(Pieces.begin() + J);
        Changed = true;
      }
  }
}

} // namespace

PiecewiseValue omega::sumOverFormula(const Formula &F, const VarSet &Vars,
                                     const QuasiPolynomial &X,
                                     SumOptions Opts) {
  SimplifyOptions SOpts;
  SOpts.Disjoint = true;
  std::vector<Conjunct> Clauses = simplify(F, SOpts);

  // The clauses are pairwise disjoint, so each is summed by its own Summer
  // as an independent work item; concatenating the per-clause pieces in
  // clause order reproduces the serial single-Summer accumulation.  (The
  // serial code stopped at the first unbounded clause; computing the rest
  // only costs time, never changes the answer.)
  PhaseTimer Timer(pipelineStats().SummationNanos);
  TraceSpan Span("summation");
  Span.count(TraceCounter::ClausesIn, Clauses.size());
  std::vector<PiecewiseValue> Parts(Clauses.size());
  std::vector<char> Unbounded(Clauses.size(), 0);
  forEachDisjunct(Clauses.size(), [&](size_t I) {
    Summer S(Opts);
    S.sumClause(Clauses[I], Vars, X);
    if (S.Unbounded)
      Unbounded[I] = 1;
    else
      Parts[I] = std::move(S.Out);
  });
  for (char U : Unbounded)
    if (U)
      return PiecewiseValue::unbounded();

  PiecewiseValue V;
  for (PiecewiseValue &P : Parts)
    for (Piece &Pc : P.pieces())
      V.pieces().push_back(std::move(Pc));
  // Final cleanup: drop pieces whose guard is infeasible and merge equal
  // guards.
  auto &Pieces = V.pieces();
  Pieces.erase(std::remove_if(Pieces.begin(), Pieces.end(),
                              [](const Piece &P) {
                                return !feasible(P.Guard);
                              }),
               Pieces.end());
  V.mergeSyntactic();
  mergeResidueCompletePieces(V);
  coalesceEqualValuePieces(V);
  V.mergeSyntactic();
#ifdef OMEGA_VALIDATE
  validateOrDie(validatePiecewise(V), "omega::sumOverFormula");
#endif
  return V;
}

PiecewiseValue omega::countSolutions(const Formula &F, const VarSet &Vars,
                                     SumOptions Opts) {
  return sumOverFormula(F, Vars, QuasiPolynomial(Rational(1)), Opts);
}

namespace {

/// Sums every clause of an (approximating) DNF with the given strategy and
/// concatenates the pieces.  PiecewiseValue sums matching guards, so the
/// result represents Σ_clauses sum(clause) — an upper bound for an
/// over-approximating union (clauses may overlap) and, when the clauses
/// are disjoint, the exact sum of the union.  Returns nullopt when some
/// clause is unbounded.
std::optional<PiecewiseValue> sumClauseList(const std::vector<Conjunct> &Cs,
                                            const VarSet &Vars,
                                            const QuasiPolynomial &X,
                                            SumOptions Opts) {
  PiecewiseValue V;
  for (const Conjunct &C : Cs) {
    Summer S(Opts);
    S.sumClause(C, Vars, X);
    if (S.Unbounded)
      return std::nullopt;
    for (Piece &P : S.Out.pieces())
      V.pieces().push_back(std::move(P));
  }
  V.pieces().erase(std::remove_if(V.pieces().begin(), V.pieces().end(),
                                  [](const Piece &P) {
                                    return !feasible(P.Guard);
                                  }),
                   V.pieces().end());
  V.mergeSyntactic();
  return V;
}

} // namespace

BudgetedCount omega::sumOverFormulaBudgeted(const Formula &F,
                                            const VarSet &Vars,
                                            const QuasiPolynomial &X,
                                            const EffortBudget &Budget,
                                            SumOptions Opts) {
  BudgetedCount Out;
  TraceSpan Span("countBudgeted");
  // Exact attempt under the budget.  On a clean run this is the only pass.
  try {
    BudgetScope Scope(std::make_shared<BudgetState>(Budget));
    PiecewiseValue V = sumOverFormula(F, Vars, X, Opts);
    Out.Status = V.isUnbounded() ? CountStatus::Unbounded : CountStatus::Exact;
    Out.Value = std::move(V);
    return Out;
  } catch (const BudgetExceeded &E) {
    Out.TrippedLimit = E.Limit;
  }

  // Degrade per §4.6: certified bounds from the two shadows.  Both passes
  // run under a pinned wildcard scope, which (a) makes every minted name a
  // function of this pass alone — the aborted exact pass cannot leak
  // nondeterministic counter state into the bounds — and (b) forces the
  // fan-outs inline, so the output is bit-identical at every worker count.
  // The relaxed budget keeps even the fallback from running away; shadow
  // modes never splinter, so it rarely trips.
  pipelineStats().DegradedQueries += 1;
  Span.annotate("degraded", Out.TrippedLimit);
  Out.Status = CountStatus::Bounded;
  EffortBudget Relaxed = Budget.relaxed(8);

  // Upper bound: real shadow over-approximates the set; UpperBound
  // strategy over-approximates each clause's sum; overlapping clauses
  // only add, so the concatenated pieces still bound from above.
  try {
    BudgetScope Scope(std::make_shared<BudgetState>(Relaxed));
    WildcardScope Pin("degU");
    SimplifyOptions SO;
    SO.Mode = ShadowMode::Real;
    std::vector<Conjunct> Clauses = simplify(F, SO);
    SumOptions UO = Opts;
    UO.Strategy = BoundStrategy::UpperBound;
    std::optional<PiecewiseValue> U = sumClauseList(Clauses, Vars, X, UO);
    Out.Upper = U ? std::move(*U) : PiecewiseValue::unbounded();
  } catch (const BudgetExceeded &) {
    Out.Upper = PiecewiseValue::unbounded();
  }

  // Lower bound: the dark shadow is a subset of the true set, so its sum
  // (clauses made disjoint first — makeDisjoint preserves the union) with
  // the under-approximating LowerBound strategy bounds from below.  An
  // unbounded dark shadow proves the true answer itself is unbounded.
  try {
    BudgetScope Scope(std::make_shared<BudgetState>(Relaxed));
    WildcardScope Pin("degL");
    SimplifyOptions SO;
    SO.Mode = ShadowMode::Dark;
    std::vector<Conjunct> Clauses = simplify(F, SO);
    if (!pairwiseDisjoint(Clauses))
      Clauses = makeDisjoint(std::move(Clauses));
    SumOptions LO = Opts;
    LO.Strategy = BoundStrategy::LowerBound;
    std::optional<PiecewiseValue> L = sumClauseList(Clauses, Vars, X, LO);
    if (!L) {
      Out.Status = CountStatus::Unbounded;
      Out.Value = PiecewiseValue::unbounded();
      return Out;
    }
    Out.Lower = std::move(*L);
  } catch (const BudgetExceeded &) {
    Out.Lower = PiecewiseValue(); // Zero: trivially certified.
  }
  return Out;
}

BudgetedCount omega::countSolutionsBudgeted(const Formula &F,
                                            const VarSet &Vars,
                                            const EffortBudget &Budget,
                                            SumOptions Opts) {
  return sumOverFormulaBudgeted(F, Vars, QuasiPolynomial(Rational(1)), Budget,
                                Opts);
}
