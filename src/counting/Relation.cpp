//===- counting/Relation.cpp - Integer tuple relations -------------------===//

#include "counting/Relation.h"

#include "omega/Verify.h"
#include "support/Error.h"

#include <sstream>

using namespace omega;

Relation::Relation(std::vector<std::string> InNames,
                   std::vector<std::string> OutNames, Formula BodyF)
    : Ins(std::move(InNames)), Outs(std::move(OutNames)),
      Body(std::move(BodyF)) {
  VarSet Seen;
  for (const std::string &V : Ins)
    check(Seen.insert(V).second, "duplicate tuple variable");
  for (const std::string &V : Outs)
    check(Seen.insert(V).second, "duplicate tuple variable");
}

Formula Relation::renamedBody(const std::vector<std::string> &NewIns,
                              const std::vector<std::string> &NewOuts) const {
  check(NewIns.size() == Ins.size() && NewOuts.size() == Outs.size(),
        "NewIns.size() == Ins.size() && NewOuts.size() == Outs.size()");
  std::map<std::string, std::string> Map;
  for (size_t I = 0; I < Ins.size(); ++I)
    if (Ins[I] != NewIns[I])
      Map.emplace(Ins[I], NewIns[I]);
  for (size_t I = 0; I < Outs.size(); ++I)
    if (Outs[I] != NewOuts[I])
      Map.emplace(Outs[I], NewOuts[I]);
  return renameFreeVars(Body, Map);
}

Relation Relation::inverse() const { return Relation(Outs, Ins, Body); }

Relation Relation::compose(const Relation &Other) const {
  check(Other.Outs.size() == Ins.size(),
        "composition arity mismatch (Other's outputs feed this's inputs)");
  // Fresh middle tuple.
  std::vector<std::string> Mid;
  Mid.reserve(Ins.size());
  for (size_t I = 0; I < Ins.size(); ++I)
    Mid.push_back("mid" + freshWildcard().substr(1));
  Formula First = Other.renamedBody(Other.Ins, Mid);
  Formula Second = renamedBody(Mid, Outs);
  VarSet MidSet(Mid.begin(), Mid.end());
  return Relation(Other.Ins, Outs,
                  Formula::exists(std::move(MidSet), First && Second));
}

Relation Relation::unionWith(const Relation &Other) const {
  Formula Aligned = Other.renamedBody(Ins, Outs);
  return Relation(Ins, Outs, Body || Aligned);
}

Relation Relation::intersect(const Relation &Other) const {
  Formula Aligned = Other.renamedBody(Ins, Outs);
  return Relation(Ins, Outs, Body && Aligned);
}

Relation Relation::subtract(const Relation &Other) const {
  Formula Aligned = Other.renamedBody(Ins, Outs);
  return Relation(Ins, Outs, Body && !Aligned);
}

Formula Relation::domain() const {
  return Formula::exists(VarSet(Outs.begin(), Outs.end()), Body);
}

Formula Relation::range() const {
  return Formula::exists(VarSet(Ins.begin(), Ins.end()), Body);
}

bool Relation::isEmpty() const { return isUnsatisfiable(Body); }

bool Relation::isSubsetOf(const Relation &Other) const {
  check(Other.Ins.size() == Ins.size() && Other.Outs.size() == Outs.size(),
        "Other.Ins.size() == Ins.size() && Other.Outs.size() == Outs.size()");
  return verifyImplies(Body, Other.renamedBody(Ins, Outs));
}

PiecewiseValue Relation::countOutputsPerInput(SumOptions Opts) const {
  return countSolutions(Body, VarSet(Outs.begin(), Outs.end()), Opts);
}

PiecewiseValue Relation::countPairs(SumOptions Opts) const {
  VarSet All(Ins.begin(), Ins.end());
  All.insert(Outs.begin(), Outs.end());
  return countSolutions(Body, All, Opts);
}

Formula Relation::image(const Formula &Set) const {
  return Formula::exists(VarSet(Ins.begin(), Ins.end()), Set && Body);
}

std::string Relation::toString() const {
  std::ostringstream OS;
  OS << "{[";
  for (size_t I = 0; I < Ins.size(); ++I)
    OS << (I ? "," : "") << Ins[I];
  OS << "] -> [";
  for (size_t I = 0; I < Outs.size(); ++I)
    OS << (I ? "," : "") << Outs[I];
  OS << "] : " << Body << "}";
  return OS.str();
}
