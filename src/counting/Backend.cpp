//===- counting/Backend.cpp - Pluggable counting backends ----------------===//
//
// The CountBackend registry and dispatcher (DESIGN.md §14), plus the two
// concrete-set backends: the constraint-automaton path counter and the
// volume-capped brute-force enumerator.  The pugh backend is a thin
// adapter over the §4 summation pipeline.
//
//===----------------------------------------------------------------------===//

#include "counting/Backend.h"

#include "counting/Summation.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <optional>
#include <utility>
#include <vector>

using namespace omega;

const char *omega::backendKindName(BackendKind K) {
  switch (K) {
  case BackendKind::Pugh:
    return "pugh";
  case BackendKind::Automaton:
    return "automaton";
  case BackendKind::Enumerate:
    return "enumerate";
  case BackendKind::Auto:
    return "auto";
  }
  fatalError("backendKindName: unknown BackendKind");
}

bool omega::backendKindFromName(const std::string &Name, BackendKind &Out) {
  if (Name == "pugh")
    Out = BackendKind::Pugh;
  else if (Name == "automaton")
    Out = BackendKind::Automaton;
  else if (Name == "enumerate")
    Out = BackendKind::Enumerate;
  else if (Name == "auto")
    Out = BackendKind::Auto;
  else
    return false;
  return true;
}

namespace {

CountResult refuse(const char *Layer, std::string Msg) {
  CountResult Out;
  Out.Status = CountStatus::Error;
  Out.Err = Error{ErrorKind::Unsupported, Layer, std::move(Msg), ""};
  return Out;
}

CountResult exactConstant(Rational Value) {
  CountResult Out;
  Out.Status = CountStatus::Exact;
  Out.Value = PiecewiseValue(QuasiPolynomial(std::move(Value)));
  return Out;
}

CountResult unboundedResult() {
  CountResult Out;
  Out.Status = CountStatus::Unbounded;
  Out.Value = PiecewiseValue::unbounded();
  return Out;
}

/// True iff \p F contains no Exists/Forall node.
bool quantifierFree(const Formula &F) {
  switch (F.kind()) {
  case FormulaKind::True:
  case FormulaKind::False:
  case FormulaKind::Atom:
    return true;
  case FormulaKind::And:
  case FormulaKind::Or:
  case FormulaKind::Not:
    for (const Formula &C : F.children())
      if (!quantifierFree(C))
        return false;
    return true;
  case FormulaKind::Exists:
  case FormulaKind::Forall:
    return false;
  }
  fatalError("quantifierFree: unknown formula kind");
}

/// Symbolic constants of the query: free variables of F or X outside Vars.
bool hasSymbols(const Formula &F, const VarSet &Vars,
                const QuasiPolynomial &X) {
  VarSet Free = F.freeVars();
  X.collectVars(Free);
  for (const std::string &V : Free)
    if (!Vars.count(V))
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Bounding-box derivation
//===----------------------------------------------------------------------===//

/// Exact [lo, hi] hull of variable \p V over one wildcard-free clause, by
/// projecting away every other counted variable and reading the affine
/// bounds off the resulting one-variable clauses.
struct VarHull {
  bool Unbounded = false;
  bool Empty = true; ///< No projected clause contributed a range.
  BigInt Lo, Hi;
};

VarHull hullOfVar(const Conjunct &C, const std::string &V,
                  const VarSet &Vars) {
  VarSet Others = Vars;
  Others.erase(V);
  VarHull H;
  for (const Conjunct &P : projectVars(C, Others)) {
    std::optional<BigInt> Lo, Hi;
    bool Infeasible = false;
    for (const Constraint &K : P.constraints()) {
      if (K.isTriviallyFalse()) {
        Infeasible = true;
        break;
      }
      BigInt A = K.expr().coeff(V);
      if (K.isStride() || A.isZero())
        continue; // strides never bound; constants were handled above
      BigInt NegK = -K.expr().constant();
      if (K.isEq()) {
        // A*v + k = 0: v = -k/A when integral, else the clause is empty.
        BigInt L = BigInt::ceilDiv(NegK, A), U = BigInt::floorDiv(NegK, A);
        if (!Lo || L > *Lo)
          Lo = L;
        if (!Hi || U < *Hi)
          Hi = U;
      } else if (A.isPositive()) {
        BigInt L = BigInt::ceilDiv(NegK, A);
        if (!Lo || L > *Lo)
          Lo = L;
      } else {
        BigInt U = BigInt::floorDiv(NegK, A);
        if (!Hi || U < *Hi)
          Hi = U;
      }
    }
    if (Infeasible || (Lo && Hi && *Lo > *Hi))
      continue; // this projected clause is empty
    if (!Lo || !Hi) {
      // Missing bound on a nonempty clause: the direction is unbounded —
      // unless the clause is infeasible for a non-affine reason.
      if (!feasible(P))
        continue;
      H.Unbounded = true;
      return H;
    }
    if (H.Empty) {
      H.Lo = *Lo;
      H.Hi = *Hi;
      H.Empty = false;
    } else {
      if (*Lo < H.Lo)
        H.Lo = *Lo;
      if (*Hi > H.Hi)
        H.Hi = *Hi;
    }
  }
  return H;
}

DerivedBox deriveBoxFromClauses(const std::vector<Conjunct> &Clauses,
                                const VarSet &Vars) {
  DerivedBox Out;
  if (Clauses.empty()) {
    Out.Outcome = BoxOutcome::Empty;
    return Out;
  }
  for (const std::string &V : Vars) {
    bool Any = false;
    BigInt Lo, Hi;
    for (const Conjunct &C : Clauses) {
      VarHull H = hullOfVar(C, V, Vars);
      if (H.Unbounded) {
        Out.Outcome = BoxOutcome::Unbounded;
        return Out;
      }
      if (H.Empty)
        continue;
      if (!Any) {
        Lo = H.Lo;
        Hi = H.Hi;
        Any = true;
      } else {
        if (H.Lo < Lo)
          Lo = H.Lo;
        if (H.Hi > Hi)
          Hi = H.Hi;
      }
    }
    if (!Any) {
      // Every clause's projection onto V came back empty; simplify()
      // only emits feasible clauses, so treat defensively as a refusal
      // rather than claiming the set is empty.
      Out.Outcome = BoxOutcome::Refused;
      Out.Reason = "no finite range derivable for " + V;
      return Out;
    }
    if (!Lo.fitsInt64() || !Hi.fitsInt64()) {
      Out.Outcome = BoxOutcome::Refused;
      Out.Reason = "bounds of " + V + " exceed int64";
      return Out;
    }
    Out.Box[V] = VarBounds{Lo.toInt64(), Hi.toInt64()};
  }
  Out.Outcome = BoxOutcome::Bounded;
  return Out;
}

//===----------------------------------------------------------------------===//
// The pugh backend: adapter over the §4 splinter-summation pipeline.
//===----------------------------------------------------------------------===//

class PughBackend final : public CountBackend {
public:
  BackendKind kind() const override { return BackendKind::Pugh; }

  CountResult count(const Formula &F, const VarSet &Vars,
                    const QuasiPolynomial &X,
                    const CountOptions &Opts) const override {
    CountResult Out;
    if (Opts.Budget.unlimited()) {
      // No budget: the exact pipeline cannot trip, so run it directly.
      PiecewiseValue V = sumOverFormula(F, Vars, X);
      Out.Status =
          V.isUnbounded() ? CountStatus::Unbounded : CountStatus::Exact;
      Out.Value = std::move(V);
    } else {
      BudgetedCount B = sumOverFormulaBudgeted(F, Vars, X, Opts.Budget);
      Out.Status = B.Status;
      Out.Value = std::move(B.Value);
      Out.Lower = std::move(B.Lower);
      Out.Upper = std::move(B.Upper);
      Out.TrippedLimit = std::move(B.TrippedLimit);
      Out.Err = std::move(B.Err);
    }
    return Out;
  }
};

//===----------------------------------------------------------------------===//
// The automaton backend (counting/Automaton.h).
//===----------------------------------------------------------------------===//

class AutomatonBackend final : public CountBackend {
public:
  BackendKind kind() const override { return BackendKind::Automaton; }

  CountResult count(const Formula &F, const VarSet &Vars,
                    const QuasiPolynomial &X,
                    const CountOptions &Opts) const override {
    (void)Opts; // exact-or-refuse: budgets never degrade this backend
    if (!X.isConstant())
      return refuse("automaton", "non-constant summand (automaton backends "
                                 "count; they do not sum polynomials)");
    if (hasSymbols(F, Vars, X))
      return refuse("automaton",
                    "symbolic constants (only pugh answers symbolically)");

    TraceSpan Span("automaton");
    std::vector<Conjunct> Clauses = simplify(F);
    DerivedBox DB = deriveBoxFromClauses(Clauses, Vars);
    switch (DB.Outcome) {
    case BoxOutcome::Empty:
      return exactConstant(Rational(0));
    case BoxOutcome::Unbounded:
      return unboundedResult();
    case BoxOutcome::Refused:
      return refuse("automaton", DB.Reason);
    case BoxOutcome::Bounded:
      break;
    }

    // Run on the original structure when it is already quantifier-free
    // (And/Or/Not combine per-atom acceptance exactly); otherwise on the
    // disjunction of the simplified clauses, which is wildcard-free —
    // overlap between clauses is fine, the product DP never adds per
    // clause.
    Formula Target = F;
    if (!quantifierFree(F)) {
      std::vector<Formula> Parts;
      Parts.reserve(Clauses.size());
      for (const Conjunct &C : Clauses)
        Parts.push_back(Formula::fromConjunct(C));
      Target = Formula::disj(std::move(Parts));
    }

    AutomatonRunStats RS;
    Result<BigInt> N = automatonCount(Target, DB.Box, &RS);
    PipelineCounters &PS = pipelineStats();
    PS.AutomatonDfaStates += RS.DfaStates;
    PS.AutomatonProductStates += RS.ProductStates;
    PS.AutomatonTransitions += RS.Transitions;
    if (Span.active()) {
      Span.annotate("dfa_states", std::to_string(RS.DfaStates));
      Span.annotate("product_states", std::to_string(RS.ProductStates));
    }
    if (!N) {
      CountResult Out;
      Out.Status = CountStatus::Error;
      Out.Err = N.error();
      return Out;
    }
    return exactConstant(Rational(*N) * X.constantValue());
  }
};

//===----------------------------------------------------------------------===//
// The enumerate backend: brute-force sweep of the derived box.
//===----------------------------------------------------------------------===//

/// Volume cap: a sweep is O(volume × clauses), so this bounds wall time.
constexpr uint64_t MaxEnumeratePoints = uint64_t(1) << 21;

class EnumerateBackend final : public CountBackend {
public:
  BackendKind kind() const override { return BackendKind::Enumerate; }

  CountResult count(const Formula &F, const VarSet &Vars,
                    const QuasiPolynomial &X,
                    const CountOptions &Opts) const override {
    (void)Opts; // exact-or-refuse: budgets never degrade this backend
    if (hasSymbols(F, Vars, X))
      return refuse("enumerate",
                    "symbolic constants (only pugh answers symbolically)");

    TraceSpan Span("enumerate");
    std::vector<Conjunct> Clauses = simplify(F);
    DerivedBox DB = deriveBoxFromClauses(Clauses, Vars);
    switch (DB.Outcome) {
    case BoxOutcome::Empty:
      return exactConstant(Rational(0));
    case BoxOutcome::Unbounded:
      return unboundedResult();
    case BoxOutcome::Refused:
      return refuse("enumerate", DB.Reason);
    case BoxOutcome::Bounded:
      break;
    }

    BigInt Volume(1);
    for (const auto &[Name, B] : DB.Box)
      Volume *= BigInt(B.Hi) - BigInt(B.Lo) + BigInt(1);
    if (Volume > BigInt(MaxEnumeratePoints))
      return refuse("enumerate", "box volume " + Volume.toString() +
                                     " exceeds the sweep cap " +
                                     std::to_string(MaxEnumeratePoints));

    // Odometer sweep over the box.  A point counts once when *any* clause
    // contains it (clauses from simplify() may overlap).
    std::vector<std::string> Names;
    std::vector<int64_t> Lo, Hi, Cur;
    for (const auto &[Name, B] : DB.Box) {
      Names.push_back(Name);
      Lo.push_back(B.Lo);
      Hi.push_back(B.Hi);
      Cur.push_back(B.Lo);
    }
    Rational Sum(0);
    uint64_t Points = 0;
    bool Done = false;
    while (!Done) {
      ++Points;
      Assignment Values;
      for (size_t I = 0; I < Names.size(); ++I)
        Values[Names[I]] = BigInt(Cur[I]);
      for (const Conjunct &C : Clauses)
        if (C.contains(Values)) {
          Sum += X.evaluate(Values);
          break;
        }
      Done = true;
      for (size_t I = 0; I < Cur.size(); ++I) {
        if (Cur[I] < Hi[I]) {
          ++Cur[I];
          for (size_t J = 0; J < I; ++J)
            Cur[J] = Lo[J];
          Done = false;
          break;
        }
      }
    }
    pipelineStats().EnumeratedPoints += Points;
    if (Span.active())
      Span.annotate("points", std::to_string(Points));
    return exactConstant(std::move(Sum));
  }
};

} // namespace

const CountBackend &omega::countBackend(BackendKind K) {
  static const PughBackend Pugh;
  static const AutomatonBackend Automaton;
  static const EnumerateBackend Enumerate;
  switch (K) {
  case BackendKind::Pugh:
    return Pugh;
  case BackendKind::Automaton:
    return Automaton;
  case BackendKind::Enumerate:
    return Enumerate;
  case BackendKind::Auto:
    break;
  }
  fatalError("countBackend: Auto is a dispatch policy, not a backend");
}

DerivedBox omega::deriveCountingBox(const Formula &F, const VarSet &Vars) {
  TraceSpan Span("deriveBox");
  return deriveBoxFromClauses(simplify(F), Vars);
}

BackendKind omega::chooseBackend(const Formula &F, const VarSet &Vars,
                                 const QuasiPolynomial &X,
                                 const CountOptions &Opts,
                                 std::string *Reason) {
  auto Pick = [&](BackendKind K, std::string Why) {
    if (Reason)
      *Reason = std::move(Why);
    return K;
  };
  if (!Opts.Budget.unlimited())
    return Pick(BackendKind::Pugh,
                "budgeted query: only pugh degrades to certified bounds");
  if (hasSymbols(F, Vars, X))
    return Pick(BackendKind::Pugh,
                "symbolic constants: only pugh answers symbolically");
  if (!X.isConstant())
    return Pick(BackendKind::Pugh,
                "non-constant summand: only pugh sums polynomials");
  if (Vars.size() > AutomatonLimits{}.MaxVars)
    return Pick(BackendKind::Pugh,
                "more counted variables than automaton tracks");
  return Pick(BackendKind::Automaton,
              "concrete constant-summand query: constraint DFAs avoid "
              "splintering");
}

CountResult omega::dispatchCount(const Formula &F, const VarSet &Vars,
                                 const QuasiPolynomial &X,
                                 const CountOptions &Opts) {
  BackendKind K = Opts.Backend;
  std::string Reason;
  if (K == BackendKind::Auto)
    K = chooseBackend(F, Vars, X, Opts, &Reason);

  const CountBackend &B = countBackend(K);
  CountResult R = B.count(F, Vars, X, Opts);
  if (Opts.Backend == BackendKind::Auto && K != BackendKind::Pugh &&
      R.Status == CountStatus::Error &&
      R.Err.Kind == ErrorKind::Unsupported) {
    // The heuristic's pick refused; Auto promises totality, so rerun on
    // the total backend and record why.
    pipelineStats().BackendFallbacks += 1;
    std::string Why =
        std::string(B.name()) + " refused (" + R.Err.Message + ")";
    R = countBackend(BackendKind::Pugh).count(F, Vars, X, Opts);
    R.Backend = backendKindName(BackendKind::Pugh);
    R.BackendReason = std::move(Why);
    return R;
  }
  R.Backend = B.name();
  R.BackendReason = std::move(Reason);
  return R;
}
