//===- counting/Summation.h - Symbolic sums over Presburger sets -*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution (§4): computing
///
///   (Σ V : P : x)   — the sum of polynomial x over all integer
///                     assignments to the variables V satisfying the
///                     Presburger formula P,
///
/// symbolically in the remaining free variables of P (the symbolic
/// constants).  (Σ V : P : 1) counts the solutions.  The answer is a
/// guarded piecewise quasi-polynomial (PiecewiseValue).
///
/// Pipeline: simplify P to *disjoint* DNF (§5) — so per-clause sums add —
/// then per clause: Smith-Normal-Form re-parameterization of equalities and
/// strides (§4.5.2, "projected sums"), then the convex-sum recursion of
/// §4.4 with the basic-sum rules of §4.1–4.3 and the rational-bound
/// strategies of §4.2.1.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_COUNTING_SUMMATION_H
#define OMEGA_COUNTING_SUMMATION_H

#include "omega/Omega.h"
#include "poly/PiecewiseValue.h"
#include "support/Budget.h"
#include "support/Status.h"

namespace omega {

/// §4.2.1: how to handle a bound ceil(L/b) or floor(U/a) with a, b > 1.
enum class BoundStrategy {
  /// Splinter into residue cases (exact; default).
  Splinter,
  /// Keep a single piece whose value uses (e mod c) atoms; exact value,
  /// used when the bound depends only on symbolic constants (otherwise
  /// falls back to Splinter).  Guards may splinter on one residue when
  /// both bounds are rational (§4.2.2).
  SymbolicMod,
  /// Over-approximate the sum (upper bound; real-shadow guards).
  UpperBound,
  /// Under-approximate the sum (lower bound; dark-shadow guards).
  LowerBound,
  /// Midpoint of the two bound substitutions (the paper's "best guess").
  Approximate,
};

/// Options controlling a summation.
struct SumOptions {
  BoundStrategy Strategy = BoundStrategy::Splinter;
  /// §4.4 step 1 / conclusions: "Eliminating redundant constraints is
  /// useful".  Disable only for ablation studies — without it the
  /// convex-sum recursion splits on bounds that a feasibility test would
  /// have discharged, producing more terms.
  bool EliminateRedundant = true;
  /// Conclusions: "Summations over several variables should not presume an
  /// order in which to perform the summation".  When false, variables are
  /// summed in reverse-alphabetical order regardless of their bound
  /// structure (ablation of the §4.4 heuristic).
  bool FreeVariableOrder = true;
};

/// (Σ Vars : F : X).  Free variables of F and X outside Vars are the
/// symbolic constants of the answer.  Returns an unbounded marker if some
/// counted variable is not bounded both ways by F.
PiecewiseValue sumOverFormula(const Formula &F, const VarSet &Vars,
                              const QuasiPolynomial &X, SumOptions Opts = {});

/// (Σ Vars : F : 1): the number of solutions.
PiecewiseValue countSolutions(const Formula &F, const VarSet &Vars,
                              SumOptions Opts = {});

/// Sums X over one clause (already wildcard-free or with functional
/// wildcards, e.g. straight from simplify()).  Exposed for tests and for
/// callers that pre-simplify; clause unions must be disjoint for addition
/// of the results to be meaningful.
PiecewiseValue sumOverConjunct(const Conjunct &C, const VarSet &Vars,
                               const QuasiPolynomial &X, SumOptions Opts = {});

/// Outcome of a budgeted query (the degradation contract of DESIGN.md §9).
struct BudgetedCount {
  CountStatus Status = CountStatus::Error;
  /// The exact answer; valid when Status == Exact.
  PiecewiseValue Value;
  /// Certified bounds, valid when Status == Bounded:
  ///   Lower(s) <= true answer(s) <= Upper(s)  for every symbol binding s.
  /// Lower comes from the dark shadow (an under-approximating set summed
  /// with under-approximating bounds), Upper from the real shadow; Upper
  /// may be the unbounded marker when even the over-approximation
  /// diverges.
  PiecewiseValue Lower;
  PiecewiseValue Upper;
  /// Which budget knob tripped (e.g. "splinters=8"); set when Status is
  /// Bounded or Unbounded-after-trip, empty for a clean Exact run.
  std::string TrippedLimit;
  /// Valid when Status == Error.
  Error Err;
};

/// (Σ Vars : F : X) under \p Budget.  Runs the exact pipeline first; if a
/// budget limit trips, retries with §4.6-style approximations — real
/// shadow / BoundStrategy::UpperBound for the upper bound, dark shadow /
/// BoundStrategy::LowerBound for the lower — under a relaxed budget and a
/// pinned wildcard scope, so the degraded output is identical at every
/// worker count (the wall-clock deadline knob excepted).  For summands
/// other than 1 the bounds assume X is non-negative over the counted
/// region (the paper's setting).
BudgetedCount sumOverFormulaBudgeted(const Formula &F, const VarSet &Vars,
                                     const QuasiPolynomial &X,
                                     const EffortBudget &Budget,
                                     SumOptions Opts = {});

/// (Σ Vars : F : 1) under \p Budget: exact count, or certified bounds.
BudgetedCount countSolutionsBudgeted(const Formula &F, const VarSet &Vars,
                                     const EffortBudget &Budget,
                                     SumOptions Opts = {});

} // namespace omega

#endif // OMEGA_COUNTING_SUMMATION_H
