//===- matrix/Matrix.h - Dense BigInt matrices -----------------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense integer matrices with exact BigInt entries, plus the elementary
/// row/column operations that the Smith/Hermite normal form algorithms are
/// built from (§4.5.2 of the paper uses Smith Normal Form to re-parameterize
/// projected clauses).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_MATRIX_MATRIX_H
#define OMEGA_MATRIX_MATRIX_H

#include "support/BigInt.h"
#include "support/Error.h"

#include <iosfwd>
#include <vector>

namespace omega {

/// Dense row-major matrix of BigInt.
class Matrix {
public:
  Matrix() = default;
  Matrix(unsigned Rows, unsigned Cols)
      : NumRows(Rows), NumCols(Cols), Data(size_t(Rows) * Cols) {}

  /// Builds a matrix from a row-major initializer, e.g.
  /// Matrix::fromRows({{1,2},{3,4}}).
  static Matrix fromRows(std::vector<std::vector<BigInt>> Rows);

  static Matrix identity(unsigned N);

  unsigned rows() const { return NumRows; }
  unsigned cols() const { return NumCols; }

  BigInt &at(unsigned R, unsigned C) {
    check(R < NumRows && C < NumCols, "matrix index out of range");
    return Data[size_t(R) * NumCols + C];
  }
  const BigInt &at(unsigned R, unsigned C) const {
    check(R < NumRows && C < NumCols, "matrix index out of range");
    return Data[size_t(R) * NumCols + C];
  }

  friend bool operator==(const Matrix &L, const Matrix &R) {
    return L.NumRows == R.NumRows && L.NumCols == R.NumCols &&
           L.Data == R.Data;
  }
  friend bool operator!=(const Matrix &L, const Matrix &R) {
    return !(L == R);
  }

  Matrix operator*(const Matrix &RHS) const;
  Matrix transpose() const;

  void swapRows(unsigned A, unsigned B);
  void swapCols(unsigned A, unsigned B);
  /// Row[Dst] += Factor * Row[Src].
  void addRowMultiple(unsigned Dst, unsigned Src, const BigInt &Factor);
  /// Col[Dst] += Factor * Col[Src].
  void addColMultiple(unsigned Dst, unsigned Src, const BigInt &Factor);
  void negateRow(unsigned R);
  void negateCol(unsigned C);

  /// Exact determinant via Bareiss fraction-free elimination; asserts the
  /// matrix is square.
  BigInt determinant() const;

  /// Returns true iff the matrix is square with determinant +1 or -1.
  bool isUnimodular() const;

  std::string toString() const;
  friend std::ostream &operator<<(std::ostream &OS, const Matrix &M);

private:
  unsigned NumRows = 0;
  unsigned NumCols = 0;
  std::vector<BigInt> Data;
};

std::ostream &operator<<(std::ostream &OS, const Matrix &M);

/// Result of a Smith Normal Form decomposition: U * A * V == D with U, V
/// unimodular and D diagonal with D[i][i] dividing D[i+1][i+1]; all diagonal
/// entries are non-negative and the nonzero ones come first.
struct SmithForm {
  Matrix U;
  Matrix D;
  Matrix V;
  /// Number of nonzero diagonal entries (the rank of A).
  unsigned Rank = 0;
};

/// Computes the Smith Normal Form of \p A.
SmithForm smithNormalForm(const Matrix &A);

/// Result of a column-style Hermite Normal Form: A * U == H with U
/// unimodular, H lower-triangular with positive pivots and, within each
/// pivot row, entries left of the pivot reduced to [0, pivot).
struct HermiteForm {
  Matrix H;
  Matrix U;
  unsigned Rank = 0;
};

/// Computes the column Hermite Normal Form of \p A.
HermiteForm hermiteNormalForm(const Matrix &A);

} // namespace omega

#endif // OMEGA_MATRIX_MATRIX_H
