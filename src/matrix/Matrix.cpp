//===- matrix/Matrix.cpp - Dense BigInt matrices -------------------------===//

#include "matrix/Matrix.h"

#include "support/Error.h"

#include <ostream>
#include <sstream>
#include <utility>

using namespace omega;

Matrix Matrix::fromRows(std::vector<std::vector<BigInt>> Rows) {
  if (Rows.empty())
    return Matrix();
  Matrix M(static_cast<unsigned>(Rows.size()),
           static_cast<unsigned>(Rows[0].size()));
  for (unsigned R = 0; R < M.NumRows; ++R) {
    check(Rows[R].size() == M.NumCols, "ragged initializer");
    for (unsigned C = 0; C < M.NumCols; ++C)
      M.at(R, C) = std::move(Rows[R][C]);
  }
  return M;
}

Matrix Matrix::identity(unsigned N) {
  Matrix M(N, N);
  for (unsigned I = 0; I < N; ++I)
    M.at(I, I) = BigInt(1);
  return M;
}

Matrix Matrix::operator*(const Matrix &RHS) const {
  check(NumCols == RHS.NumRows, "dimension mismatch in matrix product");
  Matrix R(NumRows, RHS.NumCols);
  for (unsigned I = 0; I < NumRows; ++I)
    for (unsigned K = 0; K < NumCols; ++K) {
      const BigInt &AIK = at(I, K);
      if (AIK.isZero())
        continue;
      for (unsigned J = 0; J < RHS.NumCols; ++J)
        R.at(I, J) += AIK * RHS.at(K, J);
    }
  return R;
}

Matrix Matrix::transpose() const {
  Matrix R(NumCols, NumRows);
  for (unsigned I = 0; I < NumRows; ++I)
    for (unsigned J = 0; J < NumCols; ++J)
      R.at(J, I) = at(I, J);
  return R;
}

void Matrix::swapRows(unsigned A, unsigned B) {
  if (A == B)
    return;
  for (unsigned C = 0; C < NumCols; ++C)
    std::swap(at(A, C), at(B, C));
}

void Matrix::swapCols(unsigned A, unsigned B) {
  if (A == B)
    return;
  for (unsigned R = 0; R < NumRows; ++R)
    std::swap(at(R, A), at(R, B));
}

void Matrix::addRowMultiple(unsigned Dst, unsigned Src, const BigInt &Factor) {
  check(Dst != Src, "row must differ from source");
  if (Factor.isZero())
    return;
  for (unsigned C = 0; C < NumCols; ++C)
    at(Dst, C) += Factor * at(Src, C);
}

void Matrix::addColMultiple(unsigned Dst, unsigned Src, const BigInt &Factor) {
  check(Dst != Src, "column must differ from source");
  if (Factor.isZero())
    return;
  for (unsigned R = 0; R < NumRows; ++R)
    at(R, Dst) += Factor * at(R, Src);
}

void Matrix::negateRow(unsigned R) {
  for (unsigned C = 0; C < NumCols; ++C)
    at(R, C) = -at(R, C);
}

void Matrix::negateCol(unsigned C) {
  for (unsigned R = 0; R < NumRows; ++R)
    at(R, C) = -at(R, C);
}

BigInt Matrix::determinant() const {
  check(NumRows == NumCols, "determinant of non-square matrix");
  unsigned N = NumRows;
  if (N == 0)
    return BigInt(1);
  // Bareiss fraction-free elimination: all intermediate divisions are exact.
  Matrix W = *this;
  BigInt Prev(1);
  int Sign = 1;
  for (unsigned K = 0; K + 1 < N; ++K) {
    if (W.at(K, K).isZero()) {
      unsigned Pivot = K + 1;
      while (Pivot < N && W.at(Pivot, K).isZero())
        ++Pivot;
      if (Pivot == N)
        return BigInt(0);
      W.swapRows(K, Pivot);
      Sign = -Sign;
    }
    for (unsigned I = K + 1; I < N; ++I)
      for (unsigned J = K + 1; J < N; ++J)
        W.at(I, J) = BigInt::divExact(
            W.at(I, J) * W.at(K, K) - W.at(I, K) * W.at(K, J), Prev);
    Prev = W.at(K, K);
  }
  BigInt Det = W.at(N - 1, N - 1);
  return Sign < 0 ? -Det : Det;
}

bool Matrix::isUnimodular() const {
  if (NumRows != NumCols)
    return false;
  BigInt D = determinant();
  return D.isOne() || D.isMinusOne();
}

std::string Matrix::toString() const {
  std::ostringstream OS;
  OS << *this;
  return OS.str();
}

std::ostream &omega::operator<<(std::ostream &OS, const Matrix &M) {
  OS << "[";
  for (unsigned R = 0; R < M.rows(); ++R) {
    if (R)
      OS << "; ";
    for (unsigned C = 0; C < M.cols(); ++C) {
      if (C)
        OS << " ";
      OS << M.at(R, C);
    }
  }
  return OS << "]";
}

namespace {

/// Returns the position of a nonzero entry with minimal absolute value in
/// the trailing submatrix of \p A starting at (K, K), or false if that
/// submatrix is entirely zero.
bool findSmallestNonzero(const Matrix &A, unsigned K, unsigned &OutR,
                         unsigned &OutC) {
  bool Found = false;
  BigInt Best;
  for (unsigned R = K; R < A.rows(); ++R)
    for (unsigned C = K; C < A.cols(); ++C) {
      const BigInt &V = A.at(R, C);
      if (V.isZero())
        continue;
      BigInt Abs = V.abs();
      if (!Found || Abs < Best) {
        Found = true;
        Best = std::move(Abs);
        OutR = R;
        OutC = C;
      }
    }
  return Found;
}

} // namespace

SmithForm omega::smithNormalForm(const Matrix &A) {
  SmithForm S;
  S.D = A;
  S.U = Matrix::identity(A.rows());
  S.V = Matrix::identity(A.cols());
  Matrix &D = S.D, &U = S.U, &V = S.V;

  unsigned N = std::min(A.rows(), A.cols());
  for (unsigned K = 0; K < N; ++K) {
    unsigned PR, PC;
    if (!findSmallestNonzero(D, K, PR, PC))
      break;
    D.swapRows(K, PR);
    U.swapRows(K, PR);
    D.swapCols(K, PC);
    V.swapCols(K, PC);

    // Zero out the pivot row and column; the pivot may shrink while doing
    // so (remainders become new candidates), so iterate to fixpoint.
    bool Dirty = true;
    while (Dirty) {
      Dirty = false;
      for (unsigned R = K + 1; R < D.rows(); ++R) {
        if (D.at(R, K).isZero())
          continue;
        BigInt Q = BigInt::floorDiv(D.at(R, K), D.at(K, K));
        D.addRowMultiple(R, K, -Q);
        U.addRowMultiple(R, K, -Q);
        if (!D.at(R, K).isZero()) {
          // Remainder smaller than the pivot: swap it up and restart.
          D.swapRows(K, R);
          U.swapRows(K, R);
          Dirty = true;
        }
      }
      for (unsigned C = K + 1; C < D.cols(); ++C) {
        if (D.at(K, C).isZero())
          continue;
        BigInt Q = BigInt::floorDiv(D.at(K, C), D.at(K, K));
        D.addColMultiple(C, K, -Q);
        V.addColMultiple(C, K, -Q);
        if (!D.at(K, C).isZero()) {
          D.swapCols(K, C);
          V.swapCols(K, C);
          Dirty = true;
        }
      }
    }

    if (D.at(K, K).isNegative()) {
      D.negateRow(K);
      U.negateRow(K);
    }

    // Enforce the divisibility chain: if the pivot does not divide some
    // trailing entry, fold that entry's column in and redo this pivot.
    for (unsigned R = K + 1; R < D.rows(); ++R)
      for (unsigned C = K + 1; C < D.cols(); ++C)
        if (!D.at(K, K).divides(D.at(R, C))) {
          D.addColMultiple(K, C, BigInt(1));
          V.addColMultiple(K, C, BigInt(1));
          --K; // Redo this pivot with the new column contents.
          R = D.rows();
          break;
        }
  }

  for (unsigned I = 0; I < N; ++I)
    if (!S.D.at(I, I).isZero())
      ++S.Rank;
  return S;
}

HermiteForm omega::hermiteNormalForm(const Matrix &A) {
  HermiteForm H;
  H.H = A;
  H.U = Matrix::identity(A.cols());
  Matrix &M = H.H, &U = H.U;

  unsigned PivCol = 0;
  for (unsigned R = 0; R < M.rows() && PivCol < M.cols(); ++R) {
    // Reduce row R across columns >= PivCol to a single nonzero via the
    // Euclidean algorithm on column operations.
    while (true) {
      unsigned Best = M.cols();
      for (unsigned C = PivCol; C < M.cols(); ++C) {
        if (M.at(R, C).isZero())
          continue;
        if (Best == M.cols() || M.at(R, C).abs() < M.at(R, Best).abs())
          Best = C;
      }
      if (Best == M.cols())
        break; // Row all zero from PivCol on; no pivot in this row.
      M.swapCols(PivCol, Best);
      U.swapCols(PivCol, Best);
      bool Reduced = true;
      for (unsigned C = PivCol + 1; C < M.cols(); ++C) {
        if (M.at(R, C).isZero())
          continue;
        BigInt Q = BigInt::floorDiv(M.at(R, C), M.at(R, PivCol));
        M.addColMultiple(C, PivCol, -Q);
        U.addColMultiple(C, PivCol, -Q);
        if (!M.at(R, C).isZero())
          Reduced = false;
      }
      if (Reduced)
        break;
    }
    if (M.at(R, PivCol).isZero())
      continue;
    if (M.at(R, PivCol).isNegative()) {
      M.negateCol(PivCol);
      U.negateCol(PivCol);
    }
    // Reduce the entries left of the pivot into [0, pivot).
    for (unsigned C = 0; C < PivCol; ++C) {
      BigInt Q = BigInt::floorDiv(M.at(R, C), M.at(R, PivCol));
      M.addColMultiple(C, PivCol, -Q);
      U.addColMultiple(C, PivCol, -Q);
    }
    ++PivCol;
  }
  H.Rank = PivCol;
  return H;
}
