//===- baselines/FixedOrderSum.h - Tawbi-style summation --------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §6 related-work baselines.
///
/// FixedOrderSum models Tawbi's algorithm [TF92, Taw91, Taw94]: variables
/// are summed in a *predetermined* order (innermost first), multiple
/// upper/lower bounds are resolved by polyhedral splitting so no summation
/// is empty, and — crucially — *no redundant-constraint elimination* is
/// performed.  The paper's Example 1 needs 3 terms this way versus 2 with
/// the free-order engine of §4.4.
///
/// NaiveClosedFormSum models the symbolic-algebra-package behaviour the
/// paper's introduction criticizes (Mathematica/Maple): textbook summation
/// formulas applied with *no emptiness guards*, so the answer is wrong
/// whenever a summation range can be empty (e.g. 1 <= m < n in
/// Σ_{i=1}^n Σ_{j=i}^m 1).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_BASELINES_FIXEDORDERSUM_H
#define OMEGA_BASELINES_FIXEDORDERSUM_H

#include "poly/PiecewiseValue.h"

namespace omega {

/// Result of a baseline summation, with the cost metrics the paper
/// compares on.
struct BaselineSumResult {
  PiecewiseValue Value;
  /// Leaf summation terms produced (Tawbi's cost metric in Example 1).
  unsigned NumTerms = 0;
  /// Total elementary rewrite steps performed (the H-P comparison counts
  /// 9 and 15 steps for their examples).
  unsigned NumSteps = 0;
};

/// Tawbi-style summation of \p X over the clause \p C: \p VarOrder lists
/// the summation variables from first-summed (innermost) to last.  All
/// bounds must have unit coefficients on the summed variable (affine loop
/// nests); asserts otherwise.
BaselineSumResult fixedOrderSum(const Conjunct &C,
                                const std::vector<std::string> &VarOrder,
                                const QuasiPolynomial &X);

/// Mathematica-style unguarded summation: same fixed order, but takes the
/// first lower/upper bound and applies S_p(U) - S_p(L-1) with no emptiness
/// guard and no splitting.  Produces the closed form the paper quotes
/// (n(2m - n + 1)/2 for the intro example) — wrong when ranges can be
/// empty.
QuasiPolynomial naiveClosedFormSum(const Conjunct &C,
                                   const std::vector<std::string> &VarOrder,
                                   const QuasiPolynomial &X);

} // namespace omega

#endif // OMEGA_BASELINES_FIXEDORDERSUM_H
