//===- baselines/InclusionExclusion.h - FST-style union counting -*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §4.5.1: the Ferrante-Sarkar-Thrash way of counting a union of clauses
/// — inclusion-exclusion:
///
///   |P ∨ Q| = |P| + |Q| - |P ∧ Q|
///
/// which "quickly gets out of control if there are more than a few clauses
/// (7 summations are needed for 3 clauses)".  The bench compares the
/// 2^k - 1 summations here against the disjoint-DNF route of §5.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_BASELINES_INCLUSIONEXCLUSION_H
#define OMEGA_BASELINES_INCLUSIONEXCLUSION_H

#include "counting/Summation.h"

namespace omega {

/// Result of an inclusion-exclusion count.
struct InclusionExclusionResult {
  PiecewiseValue Value;
  /// Number of clause-intersection summations performed (2^k - 1 for k
  /// clauses, minus intersections proven empty early).
  unsigned NumSummations = 0;
};

/// Counts the union of \p Clauses over \p Vars by inclusion-exclusion.
InclusionExclusionResult
countUnionInclusionExclusion(const std::vector<Conjunct> &Clauses,
                             const VarSet &Vars, SumOptions Opts = {});

} // namespace omega

#endif // OMEGA_BASELINES_INCLUSIONEXCLUSION_H
