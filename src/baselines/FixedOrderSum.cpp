//===- baselines/FixedOrderSum.cpp - Tawbi-style summation ---------------===//

#include "baselines/FixedOrderSum.h"

#include "poly/Faulhaber.h"
#include "support/Error.h"

#include <algorithm>

using namespace omega;

namespace {

struct SimpleBound {
  AffineExpr Expr;
  size_t Idx;
};

/// Bounds with unit coefficients only (affine loop nests).
void collectUnitBounds(const Conjunct &C, const std::string &V,
                       std::vector<SimpleBound> &Lowers,
                       std::vector<SimpleBound> &Uppers) {
  const std::vector<Constraint> &Ks = C.constraints();
  for (size_t I = 0; I < Ks.size(); ++I) {
    if (!Ks[I].isGe())
      continue;
    BigInt A = Ks[I].expr().coeff(V);
    if (A.isZero())
      continue;
    check((A.isOne() || A.isMinusOne()),
          "fixed-order baseline requires unit loop-bound coefficients");
    AffineExpr Rest = Ks[I].expr();
    Rest.setCoeff(V, BigInt(0));
    if (A.isOne())
      Lowers.push_back({-Rest, I}); // v >= -rest.
    else
      Uppers.push_back({Rest, I}); // v <= rest.
  }
}

QuasiPolynomial sumUnitRange(const QuasiPolynomial &X, const std::string &V,
                             const AffineExpr &L, const AffineExpr &U,
                             unsigned &Steps) {
  std::vector<QuasiPolynomial> Coefs = X.coefficientsOf(V);
  QuasiPolynomial S;
  for (size_t D = 0; D < Coefs.size(); ++D) {
    if (Coefs[D].isZero())
      continue;
    S += Coefs[D] * powerSumRange(static_cast<unsigned>(D),
                                  QuasiPolynomial::fromAffine(L),
                                  QuasiPolynomial::fromAffine(U));
    ++Steps;
  }
  return S;
}

/// The Tawbi engine: fixed order, polyhedral splitting, no redundancy
/// elimination.
class FixedOrderEngine {
public:
  BaselineSumResult Result;

  void run(Conjunct C, const std::vector<std::string> &Order, size_t Level,
           QuasiPolynomial X) {
    ++Result.NumSteps;
    // Drop exact duplicates (introduced by guard insertion); this is NOT
    // the redundancy elimination Tawbi lacks — just syntactic hygiene.
    {
      std::vector<Constraint> Dedup;
      for (Constraint &K : C.constraints())
        if (std::find(Dedup.begin(), Dedup.end(), K) == Dedup.end())
          Dedup.push_back(std::move(K));
      C.constraints() = std::move(Dedup);
    }
    if (Level == Order.size()) {
      Result.Value.add({std::move(C), std::move(X)});
      ++Result.NumTerms;
      return;
    }
    const std::string &V = Order[Level];
    std::vector<SimpleBound> Lowers, Uppers;
    collectUnitBounds(C, V, Lowers, Uppers);
    check(!Lowers.empty() && !Uppers.empty(), "loop variable must be bounded");

    // Polyhedral splitting: pick which bound is tight, case by case
    // (Tawbi's initial splitting step, applied lazily per level).
    if (Uppers.size() > 1 || Lowers.size() > 1) {
      splitOneSide(C, Order, Level, X, Lowers, Uppers);
      return;
    }

    const AffineExpr &L = Lowers[0].Expr;
    const AffineExpr &U = Uppers[0].Expr;
    Conjunct Rest;
    for (size_t I = 0; I < C.constraints().size(); ++I)
      if (I != Lowers[0].Idx && I != Uppers[0].Idx)
        Rest.add(C.constraints()[I]);
    // The polyhedral split guarantees non-emptiness inside the region:
    // record the guard as a region constraint.
    Rest.add(Constraint::ge(U - L));
    QuasiPolynomial S = sumUnitRange(X, V, L, U, Result.NumSteps);
    run(std::move(Rest), Order, Level + 1, std::move(S));
  }

private:
  void splitOneSide(const Conjunct &C, const std::vector<std::string> &Order,
                    size_t Level, const QuasiPolynomial &X,
                    const std::vector<SimpleBound> &Lowers,
                    const std::vector<SimpleBound> &Uppers) {
    bool SplitUpper = Uppers.size() > 1;
    const std::vector<SimpleBound> &Side = SplitUpper ? Uppers : Lowers;
    for (size_t I = 0; I < Side.size(); ++I) {
      Conjunct Case;
      for (size_t K = 0; K < C.constraints().size(); ++K) {
        bool Skip = false;
        for (size_t J = 0; J < Side.size(); ++J)
          if (J != I && Side[J].Idx == K)
            Skip = true;
        if (!Skip)
          Case.add(C.constraints()[K]);
      }
      for (size_t J = 0; J < Side.size(); ++J) {
        if (J == I)
          continue;
        AffineExpr E = SplitUpper ? Side[J].Expr - Side[I].Expr
                                  : Side[I].Expr - Side[J].Expr;
        if (J < I)
          E -= AffineExpr(1);
        Case.add(Constraint::ge(std::move(E)));
      }
      ++Result.NumSteps;
      run(std::move(Case), Order, Level, X);
    }
  }
};

} // namespace

BaselineSumResult
omega::fixedOrderSum(const Conjunct &C, const std::vector<std::string> &Order,
                     const QuasiPolynomial &X) {
  FixedOrderEngine E;
  E.run(C, Order, 0, X);
  return std::move(E.Result);
}

QuasiPolynomial
omega::naiveClosedFormSum(const Conjunct &C,
                          const std::vector<std::string> &Order,
                          const QuasiPolynomial &X) {
  Conjunct Cur = C;
  QuasiPolynomial Val = X;
  for (const std::string &V : Order) {
    std::vector<SimpleBound> Lowers, Uppers;
    collectUnitBounds(Cur, V, Lowers, Uppers);
    check(!Lowers.empty() && !Uppers.empty(), "loop variable must be bounded");
    unsigned Dummy = 0;
    Val = sumUnitRange(Val, V, Lowers[0].Expr, Uppers[0].Expr, Dummy);
    Conjunct Rest;
    for (size_t I = 0; I < Cur.constraints().size(); ++I)
      if (I != Lowers[0].Idx && I != Uppers[0].Idx)
        Rest.add(Cur.constraints()[I]);
    Cur = std::move(Rest);
  }
  return Val;
}
