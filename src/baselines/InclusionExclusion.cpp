//===- baselines/InclusionExclusion.cpp - FST-style union counting -------===//

#include "baselines/InclusionExclusion.h"

#include "support/Error.h"

using namespace omega;

InclusionExclusionResult
omega::countUnionInclusionExclusion(const std::vector<Conjunct> &Clauses,
                                    const VarSet &Vars, SumOptions Opts) {
  InclusionExclusionResult R;
  size_t K = Clauses.size();
  check(K < 20, "inclusion-exclusion over too many clauses");
  for (size_t Mask = 1; Mask < (size_t(1) << K); ++Mask) {
    Conjunct Inter;
    int Bits = 0;
    for (size_t I = 0; I < K; ++I)
      if (Mask & (size_t(1) << I)) {
        Inter = Bits == 0 ? Clauses[I] : Conjunct::merge(Inter, Clauses[I]);
        ++Bits;
      }
    if (!feasible(Inter))
      continue; // An empty intersection contributes nothing.
    ++R.NumSummations;
    PiecewiseValue Term =
        sumOverConjunct(Inter, Vars, QuasiPolynomial(Rational(1)), Opts);
    if (Term.isUnbounded()) {
      R.Value = PiecewiseValue::unbounded();
      return R;
    }
    if (Bits % 2 == 0)
      Term *= Rational(-1);
    R.Value += Term;
  }
  R.Value.mergeSyntactic();
  return R;
}
