//===- baselines/Enumerator.h - Brute-force counting oracle ----*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ground-truth oracle: counts/sums by exhaustive enumeration over a box.
/// Used to validate the symbolic engine in tests and as the "measure it by
/// running it" baseline in the scaling benchmark (X15): symbolic counting
/// is O(size of formula), enumeration is O(volume).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_BASELINES_ENUMERATOR_H
#define OMEGA_BASELINES_ENUMERATOR_H

#include "poly/QuasiPolynomial.h"
#include "presburger/Formula.h"

namespace omega {

/// Evaluates \p F at \p Values, deciding quantifiers by searching
/// [WitnessLo, WitnessHi] per bound variable.  Only correct when every
/// witness needed lies in that interval.
bool evaluateInBox(const Formula &F, Assignment &Values, int64_t WitnessLo,
                   int64_t WitnessHi);

/// Σ over assignments of \p Vars in [Lo, Hi]^k satisfying F (with symbols
/// pre-bound in \p Symbols) of X.  Quantifiers in F are eliminated exactly
/// (simplify-then-evaluate) before the sweep, so the result does not
/// depend on the witness box unless a simplified clause retains wildcards.
Rational enumerateSum(const Formula &F, const std::vector<std::string> &Vars,
                      const Assignment &Symbols, const QuasiPolynomial &X,
                      int64_t Lo, int64_t Hi, int64_t WitnessLo,
                      int64_t WitnessHi);

/// enumerateSum with X = 1.
BigInt enumerateCount(const Formula &F, const std::vector<std::string> &Vars,
                      const Assignment &Symbols, int64_t Lo, int64_t Hi,
                      int64_t WitnessLo, int64_t WitnessHi);

} // namespace omega

#endif // OMEGA_BASELINES_ENUMERATOR_H
