//===- baselines/Oracle.cpp - Self-bounding brute-force oracle -----------===//

#include "baselines/Oracle.h"

#include "counting/Backend.h"

using namespace omega;

Result<BigInt> omega::oracleCount(const Formula &F, const VarSet &Vars) {
  CountOptions Opts;
  Opts.Backend = BackendKind::Enumerate;
  CountResult R = countSolutions(F, Vars, Opts);
  switch (R.Status) {
  case CountStatus::Exact:
    return R.Value.evaluateInt(Assignment{});
  case CountStatus::Unbounded:
    return Error{ErrorKind::Unsupported, "oracle",
                 "solution set is unbounded; refusing to truncate the "
                 "sweep to a finite window",
                 ""};
  case CountStatus::Error:
    return R.Err;
  case CountStatus::Bounded:
    break; // the enumerate backend never degrades
  }
  return Error{ErrorKind::Internal, "oracle",
               "enumerate backend returned an impossible status", ""};
}
