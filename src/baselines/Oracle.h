//===- baselines/Oracle.h - Self-bounding brute-force oracle ---*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential-testing ground truth, promoted from the test-only
/// enumerate-over-a-caller-box helpers (baselines/Enumerator.h) to a real
/// refusing API: oracleCount derives its own bounding box by exact
/// projection and *refuses* — a typed Unsupported error — whenever the
/// input is outside its contract, instead of silently truncating the sweep
/// at an arbitrary window and miscounting.  A wrong oracle is worse than
/// no oracle (DESIGN.md §14).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_BASELINES_ORACLE_H
#define OMEGA_BASELINES_ORACLE_H

#include "presburger/Formula.h"
#include "support/Status.h"

namespace omega {

/// Counts the integer solutions of \p F over \p Vars by brute-force
/// enumeration of a self-derived bounding box.  Exact or refuses:
///
///   * symbolic constants (free variables of F outside Vars) — refused;
///   * an unbounded solution set — refused with a message naming the
///     unboundedness (never a count truncated at a window edge);
///   * a derived box over the volume cap — refused.
///
/// Quantifiers are eliminated exactly before the sweep, so witnesses need
/// no search window.
Result<BigInt> oracleCount(const Formula &F, const VarSet &Vars);

} // namespace omega

#endif // OMEGA_BASELINES_ORACLE_H
