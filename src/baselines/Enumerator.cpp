//===- baselines/Enumerator.cpp - Brute-force counting oracle ------------===//

#include "baselines/Enumerator.h"

#include "omega/Omega.h"
#include "support/Error.h"

using namespace omega;

namespace {

bool hasQuantifier(const Formula &F) {
  if (F.kind() == FormulaKind::Exists || F.kind() == FormulaKind::Forall)
    return true;
  for (const Formula &C : F.children())
    if (hasQuantifier(C))
      return true;
  return false;
}

/// The oracle path is simplify-then-evaluate: quantifiers are eliminated
/// exactly by the Omega test up front, so the per-point check is
/// quantifier-free (stride constraints evaluate directly) and does not
/// depend on the witness box.  Wildcards a clause still carries come back
/// as an exists() and fall through to the box search, same as before.
Formula eliminateQuantifiers(const Formula &F) {
  if (!hasQuantifier(F))
    return F;
  std::vector<Formula> Clauses;
  for (const Conjunct &C : simplify(F))
    Clauses.push_back(Formula::fromConjunct(C));
  if (Clauses.empty())
    return Formula::falseFormula();
  return Formula::disj(std::move(Clauses));
}

} // namespace

bool omega::evaluateInBox(const Formula &F, Assignment &Values,
                          int64_t WitnessLo, int64_t WitnessHi) {
  switch (F.kind()) {
  case FormulaKind::True:
    return true;
  case FormulaKind::False:
    return false;
  case FormulaKind::Atom:
    return F.constraint().holds(Values);
  case FormulaKind::And:
    for (const Formula &C : F.children())
      if (!evaluateInBox(C, Values, WitnessLo, WitnessHi))
        return false;
    return true;
  case FormulaKind::Or:
    for (const Formula &C : F.children())
      if (evaluateInBox(C, Values, WitnessLo, WitnessHi))
        return true;
    return false;
  case FormulaKind::Not:
    return !evaluateInBox(F.children()[0], Values, WitnessLo, WitnessHi);
  case FormulaKind::Exists:
  case FormulaKind::Forall: {
    std::vector<std::string> Vars(F.quantified().begin(),
                                  F.quantified().end());
    bool IsExists = F.kind() == FormulaKind::Exists;
    std::vector<int64_t> Vals(Vars.size(), WitnessLo);
    bool Result = !IsExists;
    while (true) {
      for (size_t I = 0; I < Vars.size(); ++I)
        Values[Vars[I]] = BigInt(Vals[I]);
      bool B = evaluateInBox(F.body(), Values, WitnessLo, WitnessHi);
      if (IsExists && B) {
        Result = true;
        break;
      }
      if (!IsExists && !B) {
        Result = false;
        break;
      }
      size_t I = 0;
      while (I < Vals.size() && ++Vals[I] > WitnessHi)
        Vals[I++] = WitnessLo;
      if (I == Vals.size())
        break;
    }
    for (const std::string &V : Vars)
      Values.erase(V);
    return Result;
  }
  }
  fatalError("evaluateInBox: unknown formula kind");
}

Rational omega::enumerateSum(const Formula &F,
                             const std::vector<std::string> &Vars,
                             const Assignment &Symbols,
                             const QuasiPolynomial &X, int64_t Lo, int64_t Hi,
                             int64_t WitnessLo, int64_t WitnessHi) {
  Formula QF = eliminateQuantifiers(F);
  Rational Sum(0);
  std::vector<int64_t> Vals(Vars.size(), Lo);
  while (true) {
    Assignment A = Symbols;
    for (size_t I = 0; I < Vars.size(); ++I)
      A[Vars[I]] = BigInt(Vals[I]);
    if (evaluateInBox(QF, A, WitnessLo, WitnessHi))
      Sum += X.evaluate(A);
    size_t I = 0;
    while (I < Vals.size() && ++Vals[I] > Hi)
      Vals[I++] = Lo;
    if (I == Vals.size() || Vars.empty())
      break;
  }
  return Sum;
}

BigInt omega::enumerateCount(const Formula &F,
                             const std::vector<std::string> &Vars,
                             const Assignment &Symbols, int64_t Lo,
                             int64_t Hi, int64_t WitnessLo,
                             int64_t WitnessHi) {
  Rational R = enumerateSum(F, Vars, Symbols, QuasiPolynomial(Rational(1)),
                            Lo, Hi, WitnessLo, WitnessHi);
  return R.asInteger();
}
