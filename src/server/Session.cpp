//===- server/Session.cpp - One omegad client connection -----------------===//
//
// The request loop and the query execution path.  Robustness contract
// (DESIGN.md §17): nothing a client sends — malformed frames, hostile
// lengths, unparsable formulas, absurd option values — may abort the
// server or wedge another client's query.  Every failure is a typed
// response (QueryOutcome) or a closed connection.
//
//===----------------------------------------------------------------------===//

#include "server/Session.h"

#include "omega/Omega.h"
#include "presburger/Parser.h"

#include <algorithm>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

using namespace omega;
using namespace omega::server;

EffortBudget server::clampBudget(const EffortBudget &Client,
                                 const EffortBudget &Shed) {
  auto Tighter = [](uint64_t A, uint64_t B) {
    if (A == 0)
      return B;
    if (B == 0)
      return A;
    return A < B ? A : B;
  };
  EffortBudget Out;
  Out.MaxCoefficientBits =
      Tighter(Client.MaxCoefficientBits, Shed.MaxCoefficientBits);
  Out.MaxSplintersPerElimination = Tighter(Client.MaxSplintersPerElimination,
                                           Shed.MaxSplintersPerElimination);
  Out.MaxDnfClauses = Tighter(Client.MaxDnfClauses, Shed.MaxDnfClauses);
  Out.MaxRecursionDepth =
      Tighter(Client.MaxRecursionDepth, Shed.MaxRecursionDepth);
  Out.DeadlineMs = Tighter(Client.DeadlineMs, Shed.DeadlineMs);
  return Out;
}

Session::Session(int Fd, uint64_t Id, const SessionHost &Host)
    : Fd(Fd), Id(Id), Host(Host) {}

Session::~Session() {
  if (Fd >= 0)
    ::close(Fd);
}

void Session::shutdownRead() {
  // Read-side only: a query in flight can still write its response, and
  // the session loop exits on the EOF it sees afterwards.
  ::shutdown(Fd, SHUT_RD);
}

CountResponseMsg Session::handleCount(const CountRequestMsg &M) {
  CountResponseMsg R;

  if (M.Vars.empty()) {
    R.Outcome = QueryOutcome::InvalidInput;
    R.ErrorText = "no counted variables given";
    return R;
  }
  if (M.Backend > static_cast<uint8_t>(BackendKind::Auto)) {
    R.Outcome = QueryOutcome::InvalidInput;
    R.ErrorText = "unknown backend code " + std::to_string(M.Backend);
    return R;
  }

  CountOptions Opts;
  Opts.Backend = static_cast<BackendKind>(M.Backend);
  // Client fan-out is a request, not a right: the server caps it so one
  // connection cannot demand an unbounded number of pool threads.
  Opts.Workers = std::min(M.Workers, Host.MaxWorkersPerQuery);
  Opts.CacheEnabled = M.CacheEnabled;
  // Match the server's configured capacity so the grow-only rule in
  // sumPolynomial never lets a client resize the shared store.
  Opts.CacheCapacity = Host.CacheCapacity;
  Opts.CollectStats = M.CollectStats;

  if (!M.Budget.empty()) {
    Result<EffortBudget> B = EffortBudget::parse(M.Budget);
    if (!B) {
      R.Outcome = QueryOutcome::InvalidInput;
      R.ErrorText = B.error().toString();
      return R;
    }
    Opts.Budget = *B;
  }

  const Admission A = Host.Queue.admit();
  if (A == Admission::Reject) {
    Counters.Rejected.fetch_add(1, std::memory_order_relaxed);
    R.Outcome = QueryOutcome::Overloaded;
    R.ErrorText = "server at hard in-flight limit; retry later";
    return R;
  }
  if (A == Admission::Shed) {
    Counters.Shed.fetch_add(1, std::memory_order_relaxed);
    Opts.Budget = clampBudget(Opts.Budget, Host.ShedBudget);
  }

  // The slot must be returned on every path out of the query, including a
  // throwing one (the unified API never throws for input-level failures,
  // but admission accounting must not depend on that).
  CountResult CR;
  try {
    // Parse under the query's budget so a hostile literal is a parse
    // diagnostic, not unbounded bignum work.
    Formula F = Formula::trueFormula();
    {
      BudgetScope BS(Opts.Budget.unlimited()
                         ? std::shared_ptr<BudgetState>()
                         : std::make_shared<BudgetState>(Opts.Budget));
      ParseResult P = parseFormula(M.Formula);
      if (!P) {
        Host.Queue.release();
        Counters.Answered.fetch_add(1, std::memory_order_relaxed);
        R.Outcome = QueryOutcome::ParseError;
        R.ErrorText = "parse: " + P.Error;
        return R;
      }
      F = *P.Value;
    }
    VarSet VS(M.Vars.begin(), M.Vars.end());
    CR = countSolutions(F, VS, Opts);
  } catch (const std::exception &E) {
    Host.Queue.release();
    Counters.Answered.fetch_add(1, std::memory_order_relaxed);
    R.Outcome = QueryOutcome::InternalError;
    R.ErrorText = E.what();
    return R;
  }
  Host.Queue.release();
  Counters.Answered.fetch_add(1, std::memory_order_relaxed);

  R.Outcome = CR.outcome();
  R.Backend = CR.Backend;
  if (CR.Status == CountStatus::Error) {
    R.ErrorText = CR.Err.toString();
  } else if (CR.Status == CountStatus::Bounded) {
    R.Lower = CR.Lower.toString();
    R.Upper = CR.Upper.toString();
    R.ErrorText = CR.TrippedLimit;
  } else {
    R.Value = CR.Value.toString();
  }
  if (M.CollectStats)
    R.StatsJson = CR.Stats.toJson();
  return R;
}

void Session::run() {
  serve();
  // FIN now; the reaper's destructor closes the fd later.
  ::shutdown(Fd, SHUT_RDWR);
}

void Session::serve() {
  // Connection-level context: queries on this thread tally into the
  // server's shared stats block, and none of them may join a trace session
  // another client (or the host process) has open.
  QueryContext Ctx;
  Ctx.TraceParticipant = false;
  Ctx.Stats = &Host.Stats;
  QueryContextScope Scope(Ctx);

  std::vector<uint8_t> Payload;
  while (true) {
    const IoStatus S = readFrame(Fd, Payload, Host.IdleTimeoutMs);
    if (S == IoStatus::Eof || S == IoStatus::Timeout || S == IoStatus::Error)
      return;
    if (S == IoStatus::TooBig) {
      Counters.Malformed.fetch_add(1, std::memory_order_relaxed);
      CountResponseMsg R;
      R.Outcome = QueryOutcome::MalformedFrame;
      R.ErrorText = "frame exceeds size limit";
      writeFrame(Fd, encodeCountResponse(R));
      return; // The stream is unrecoverable past an oversized length.
    }

    MsgType T;
    if (!peekType(Payload, T)) {
      Counters.Malformed.fetch_add(1, std::memory_order_relaxed);
      CountResponseMsg R;
      R.Outcome = QueryOutcome::MalformedFrame;
      R.ErrorText = "unknown message type";
      writeFrame(Fd, encodeCountResponse(R));
      return;
    }

    switch (T) {
    case MsgType::Ping:
      if (writeFrame(Fd, encodeEmpty(MsgType::Pong)) != IoStatus::Ok)
        return;
      break;
    case MsgType::StatsRequest:
      if (writeFrame(Fd, encodeStatsResponse(Host.StatsJson())) !=
          IoStatus::Ok)
        return;
      break;
    case MsgType::CountRequest: {
      Counters.Requests.fetch_add(1, std::memory_order_relaxed);
      CountRequestMsg M;
      if (!decodeCountRequest(Payload, M)) {
        Counters.Malformed.fetch_add(1, std::memory_order_relaxed);
        CountResponseMsg R;
        R.Outcome = QueryOutcome::MalformedFrame;
        R.ErrorText = "undecodable count request";
        writeFrame(Fd, encodeCountResponse(R));
        return; // Framing may be desynchronized; drop the connection.
      }
      CountResponseMsg R;
      if (Host.Draining.load(std::memory_order_relaxed)) {
        Counters.Rejected.fetch_add(1, std::memory_order_relaxed);
        R.Outcome = QueryOutcome::ShuttingDown;
        R.ErrorText = "server draining";
      } else {
        R = handleCount(M);
      }
      if (writeFrame(Fd, encodeCountResponse(R)) != IoStatus::Ok)
        return;
      break;
    }
    default:
      // A server-to-client type arriving at the server is a confused or
      // hostile peer.
      Counters.Malformed.fetch_add(1, std::memory_order_relaxed);
      CountResponseMsg R;
      R.Outcome = QueryOutcome::MalformedFrame;
      R.ErrorText = "unexpected message type";
      writeFrame(Fd, encodeCountResponse(R));
      return;
    }
  }
}
