//===- server/Protocol.cpp - omegad wire protocol ------------------------===//
//
// Pure byte-level encode/decode plus poll-based framed socket I/O.  The
// decode side is written against hostile input: a cursor that refuses to
// read past the end, explicit length caps, and no exceptions — a bad
// frame yields `false`, never UB and never an abort (the abort-free
// discipline of DESIGN.md §9 extends to the wire).
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <poll.h>
#include <unistd.h>

using namespace omega;
using namespace omega::server;

//===----------------------------------------------------------------------===//
// Encoding
//===----------------------------------------------------------------------===//

namespace {

void putU8(std::vector<uint8_t> &Out, uint8_t V) { Out.push_back(V); }

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
  Out.push_back(static_cast<uint8_t>(V >> 16));
  Out.push_back(static_cast<uint8_t>(V >> 24));
}

void putStr(std::vector<uint8_t> &Out, const std::string &S) {
  putU32(Out, static_cast<uint32_t>(S.size()));
  Out.insert(Out.end(), S.begin(), S.end());
}

/// Bounds-checked read cursor.  Every get* returns false instead of
/// reading past End; a failed read poisons nothing (Out params are only
/// written on success).
struct Cursor {
  const uint8_t *P;
  const uint8_t *End;

  explicit Cursor(const std::vector<uint8_t> &Bytes)
      : P(Bytes.data()), End(Bytes.data() + Bytes.size()) {}

  bool getU8(uint8_t &V) {
    if (End - P < 1)
      return false;
    V = *P++;
    return true;
  }

  bool getU32(uint32_t &V) {
    if (End - P < 4)
      return false;
    V = static_cast<uint32_t>(P[0]) | (static_cast<uint32_t>(P[1]) << 8) |
        (static_cast<uint32_t>(P[2]) << 16) |
        (static_cast<uint32_t>(P[3]) << 24);
    P += 4;
    return true;
  }

  bool getStr(std::string &S) {
    uint32_t Len;
    if (!getU32(Len))
      return false;
    // A string cannot be longer than the bytes that remain; this also
    // rejects absurd lengths before any allocation happens.
    if (Len > static_cast<size_t>(End - P))
      return false;
    S.assign(reinterpret_cast<const char *>(P), Len);
    P += Len;
    return true;
  }

  bool atEnd() const { return P == End; }
};

bool checkType(Cursor &C, MsgType Want) {
  uint8_t T;
  return C.getU8(T) && T == static_cast<uint8_t>(Want);
}

} // namespace

std::vector<uint8_t> server::encodeCountRequest(const CountRequestMsg &M) {
  std::vector<uint8_t> Out;
  putU8(Out, static_cast<uint8_t>(MsgType::CountRequest));
  putStr(Out, M.Formula);
  putU32(Out, static_cast<uint32_t>(M.Vars.size()));
  for (const std::string &V : M.Vars)
    putStr(Out, V);
  putU32(Out, M.Workers);
  putU8(Out, M.Backend);
  putU8(Out, M.CacheEnabled ? 1 : 0);
  putU8(Out, M.CollectStats ? 1 : 0);
  putStr(Out, M.Budget);
  return Out;
}

std::vector<uint8_t> server::encodeCountResponse(const CountResponseMsg &M) {
  std::vector<uint8_t> Out;
  putU8(Out, static_cast<uint8_t>(MsgType::CountResponse));
  putU8(Out, static_cast<uint8_t>(M.Outcome));
  putStr(Out, M.Value);
  putStr(Out, M.Lower);
  putStr(Out, M.Upper);
  putStr(Out, M.ErrorText);
  putStr(Out, M.Backend);
  putStr(Out, M.StatsJson);
  return Out;
}

std::vector<uint8_t> server::encodeEmpty(MsgType T) {
  return {static_cast<uint8_t>(T)};
}

std::vector<uint8_t> server::encodeStatsResponse(const std::string &Json) {
  std::vector<uint8_t> Out;
  putU8(Out, static_cast<uint8_t>(MsgType::StatsResponse));
  putStr(Out, Json);
  return Out;
}

bool server::peekType(const std::vector<uint8_t> &Payload, MsgType &T) {
  if (Payload.empty())
    return false;
  uint8_t Raw = Payload[0];
  if (Raw < static_cast<uint8_t>(MsgType::CountRequest) ||
      Raw > static_cast<uint8_t>(MsgType::StatsResponse))
    return false;
  T = static_cast<MsgType>(Raw);
  return true;
}

bool server::decodeCountRequest(const std::vector<uint8_t> &Payload,
                                CountRequestMsg &Out) {
  Cursor C(Payload);
  CountRequestMsg M;
  if (!checkType(C, MsgType::CountRequest))
    return false;
  if (!C.getStr(M.Formula))
    return false;
  uint32_t NumVars;
  if (!C.getU32(NumVars))
    return false;
  // Each var costs at least 4 bytes of length prefix, so this bound makes
  // a hostile count fail fast instead of looping a billion times.
  if (NumVars > kMaxFrameBytes / 4)
    return false;
  M.Vars.reserve(NumVars);
  for (uint32_t I = 0; I < NumVars; ++I) {
    std::string V;
    if (!C.getStr(V))
      return false;
    M.Vars.push_back(std::move(V));
  }
  uint8_t Cache, Stats;
  if (!C.getU32(M.Workers) || !C.getU8(M.Backend) || !C.getU8(Cache) ||
      !C.getU8(Stats) || !C.getStr(M.Budget))
    return false;
  if (!C.atEnd())
    return false;
  M.CacheEnabled = Cache != 0;
  M.CollectStats = Stats != 0;
  Out = std::move(M);
  return true;
}

bool server::decodeCountResponse(const std::vector<uint8_t> &Payload,
                                 CountResponseMsg &Out) {
  Cursor C(Payload);
  CountResponseMsg M;
  uint8_t Outcome;
  if (!checkType(C, MsgType::CountResponse))
    return false;
  if (!C.getU8(Outcome) || !C.getStr(M.Value) || !C.getStr(M.Lower) ||
      !C.getStr(M.Upper) || !C.getStr(M.ErrorText) || !C.getStr(M.Backend) ||
      !C.getStr(M.StatsJson))
    return false;
  if (!C.atEnd())
    return false;
  M.Outcome = static_cast<QueryOutcome>(Outcome);
  Out = std::move(M);
  return true;
}

bool server::decodeStatsResponse(const std::vector<uint8_t> &Payload,
                                 std::string &Json) {
  Cursor C(Payload);
  std::string S;
  if (!checkType(C, MsgType::StatsResponse))
    return false;
  if (!C.getStr(S) || !C.atEnd())
    return false;
  Json = std::move(S);
  return true;
}

//===----------------------------------------------------------------------===//
// Framed socket I/O
//===----------------------------------------------------------------------===//

namespace {

/// Milliseconds left until \p Deadline (steady clock), clamped at 0;
/// -1 when there is no deadline.
int remainingMs(std::chrono::steady_clock::time_point Deadline, bool Have) {
  if (!Have)
    return -1;
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  Deadline - std::chrono::steady_clock::now())
                  .count();
  return Left > 0 ? static_cast<int>(Left) : 0;
}

/// Reads exactly \p Len bytes, polling for readability so a stalled peer
/// cannot pin the thread past the deadline.  \p Sofar distinguishes a
/// clean EOF (nothing read yet) from a truncated frame.
IoStatus readExact(int Fd, uint8_t *Buf, size_t Len,
                   std::chrono::steady_clock::time_point Deadline,
                   bool HaveDeadline, bool &CleanEofOk) {
  size_t Got = 0;
  while (Got < Len) {
    int Wait = remainingMs(Deadline, HaveDeadline);
    if (HaveDeadline && Wait == 0)
      return IoStatus::Timeout;
    struct pollfd Pfd = {Fd, POLLIN, 0};
    int PR = ::poll(&Pfd, 1, Wait);
    if (PR == 0)
      return IoStatus::Timeout;
    if (PR < 0) {
      if (errno == EINTR)
        continue;
      return IoStatus::Error;
    }
    ssize_t N = ::read(Fd, Buf + Got, Len - Got);
    if (N == 0) {
      // EOF at a frame boundary is a clean close; mid-frame it is a
      // truncated frame and reported as an error.
      return (Got == 0 && CleanEofOk) ? IoStatus::Eof : IoStatus::Error;
    }
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN)
        continue;
      return IoStatus::Error;
    }
    Got += static_cast<size_t>(N);
    CleanEofOk = false;
  }
  return IoStatus::Ok;
}

} // namespace

IoStatus server::readFrame(int Fd, std::vector<uint8_t> &Payload,
                           int TimeoutMs) {
  const bool HaveDeadline = TimeoutMs > 0;
  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(HaveDeadline ? TimeoutMs : 0);
  uint8_t LenBytes[4];
  bool CleanEofOk = true;
  IoStatus S = readExact(Fd, LenBytes, 4, Deadline, HaveDeadline, CleanEofOk);
  if (S != IoStatus::Ok)
    return S;
  uint32_t Len = static_cast<uint32_t>(LenBytes[0]) |
                 (static_cast<uint32_t>(LenBytes[1]) << 8) |
                 (static_cast<uint32_t>(LenBytes[2]) << 16) |
                 (static_cast<uint32_t>(LenBytes[3]) << 24);
  if (Len > kMaxFrameBytes)
    return IoStatus::TooBig;
  Payload.resize(Len);
  if (Len == 0)
    return IoStatus::Ok;
  CleanEofOk = false;
  return readExact(Fd, Payload.data(), Len, Deadline, HaveDeadline,
                   CleanEofOk);
}

IoStatus server::writeFrame(int Fd, const std::vector<uint8_t> &Payload) {
  if (Payload.size() > kMaxFrameBytes)
    return IoStatus::TooBig;
  std::vector<uint8_t> Buf;
  Buf.reserve(4 + Payload.size());
  putU32(Buf, static_cast<uint32_t>(Payload.size()));
  Buf.insert(Buf.end(), Payload.begin(), Payload.end());
  size_t Sent = 0;
  while (Sent < Buf.size()) {
    ssize_t N = ::write(Fd, Buf.data() + Sent, Buf.size() - Sent);
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN)
        continue;
      return IoStatus::Error;
    }
    Sent += static_cast<size_t>(N);
  }
  return IoStatus::Ok;
}
