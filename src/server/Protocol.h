//===- server/Protocol.h - omegad wire protocol ----------------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The omegad wire protocol: length-prefixed binary frames over a local
/// AF_UNIX stream socket (DESIGN.md §17).
///
/// Framing:  u32 little-endian payload length, then the payload.  The
/// first payload byte is the message type; the rest is the type-specific
/// body.  All integers are little-endian, all strings are u32 length +
/// raw bytes (no terminator).  Frames larger than kMaxFrameBytes are
/// rejected before allocation, so a hostile length prefix cannot balloon
/// the server.
///
/// Decoding is total: every decode function consumes a byte span and
/// returns false (never throws, never reads out of bounds) on anything
/// malformed — short bodies, trailing garbage, lengths past the end.  The
/// server maps a failed decode to QueryOutcome::MalformedFrame and drops
/// the connection without aborting.
///
/// The outcome byte of a CountResponse is the QueryOutcome enum
/// (support/Status.h) verbatim — the same vocabulary the tools' exit
/// codes derive from.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SERVER_PROTOCOL_H
#define OMEGA_SERVER_PROTOCOL_H

#include "support/Status.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace omega {
namespace server {

/// Hard ceiling on one frame's payload (1 MiB).  Far above any realistic
/// formula, far below anything that could hurt the host.
constexpr uint32_t kMaxFrameBytes = 1u << 20;

/// First payload byte of every frame.
enum class MsgType : uint8_t {
  CountRequest = 1,  ///< Client -> server: one counting query.
  CountResponse = 2, ///< Server -> client: the query's outcome.
  Ping = 3,          ///< Client -> server: liveness probe (empty body).
  Pong = 4,          ///< Server -> client: liveness echo (empty body).
  StatsRequest = 5,  ///< Client -> server: stats snapshot (empty body).
  StatsResponse = 6, ///< Server -> client: stats JSON (one string).
};

/// One counting query as it crosses the wire.  Mirrors the CountOptions
/// fields a remote caller may set; tracing stays host-side (a server never
/// lets a client claim the process-wide trace session).
struct CountRequestMsg {
  std::string Formula;           ///< Formula text (parser syntax).
  std::vector<std::string> Vars; ///< Counted variables.
  uint32_t Workers = 0;          ///< Fan-out width for this query.
  uint8_t Backend = 0;           ///< BackendKind, numeric.
  bool CacheEnabled = true;      ///< Participate in the shared cache.
  bool CollectStats = false;     ///< Return a per-query stats delta.
  std::string Budget;            ///< EffortBudget spec ("" = unlimited).
};

/// A query's reply.  Value/Lower/Upper are the printed piecewise answers
/// (the textual form the determinism contract is stated over).
struct CountResponseMsg {
  QueryOutcome Outcome = QueryOutcome::InternalError;
  std::string Value;     ///< Answer when the outcome is an answer.
  std::string Lower;     ///< Certified bounds when Outcome == Bounded.
  std::string Upper;
  std::string ErrorText; ///< Diagnostic when the outcome is an error.
  std::string Backend;   ///< Which backend answered.
  std::string StatsJson; ///< Schema-5 stats JSON when CollectStats.
};

//===----------------------------------------------------------------------===//
// Payload encode/decode (pure byte-vector transforms; no I/O).
//===----------------------------------------------------------------------===//

std::vector<uint8_t> encodeCountRequest(const CountRequestMsg &M);
std::vector<uint8_t> encodeCountResponse(const CountResponseMsg &M);
/// Ping/Pong/StatsRequest have empty bodies; StatsResponse carries JSON.
std::vector<uint8_t> encodeEmpty(MsgType T);
std::vector<uint8_t> encodeStatsResponse(const std::string &Json);

/// Reads the message type of a payload (false on an empty payload).
bool peekType(const std::vector<uint8_t> &Payload, MsgType &T);

/// Each decode requires the matching type byte, a complete body, and no
/// trailing bytes.
bool decodeCountRequest(const std::vector<uint8_t> &Payload,
                        CountRequestMsg &Out);
bool decodeCountResponse(const std::vector<uint8_t> &Payload,
                         CountResponseMsg &Out);
bool decodeStatsResponse(const std::vector<uint8_t> &Payload,
                         std::string &Json);

//===----------------------------------------------------------------------===//
// Framed socket I/O (poll-based, with per-call timeouts).
//===----------------------------------------------------------------------===//

enum class IoStatus {
  Ok,
  Eof,      ///< Peer closed cleanly at a frame boundary.
  Timeout,  ///< No complete frame within the deadline.
  TooBig,   ///< Length prefix exceeded kMaxFrameBytes.
  Error,    ///< Socket error (errno-level), or mid-frame EOF.
};

/// Reads one complete frame's payload.  \p TimeoutMs applies to the whole
/// frame, not per byte; <= 0 means wait forever.
IoStatus readFrame(int Fd, std::vector<uint8_t> &Payload, int TimeoutMs);

/// Writes the length prefix and payload.  Returns Ok or Error.
IoStatus writeFrame(int Fd, const std::vector<uint8_t> &Payload);

} // namespace server
} // namespace omega

#endif // OMEGA_SERVER_PROTOCOL_H
