//===- server/Server.cpp - The omegad counting service -------------------===//
//
// Listener, session lifecycle, and graceful shutdown.  Locking discipline
// (DESIGN.md §13): one mutex, Impl::M, guards the session list and the
// closed-session totals.  stop() never joins a session thread while
// holding M — sessions call statsJson() (which needs M) from their own
// threads, so joining under the lock would deadlock; the list is moved
// out under M and joined unlocked instead.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "omega/Omega.h"
#include "server/Session.h"
#include "support/QueryContext.h"
#include "support/Stats.h"
#include "support/ThreadAnnotations.h"

#include <cerrno>
#include <cstring>
#include <memory>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

using namespace omega;
using namespace omega::server;

EffortBudget server::defaultShedBudget() {
  // Tight enough that a pathological query degrades to bounds in
  // milliseconds, loose enough that the fuzz-corpus formulas still count
  // exactly when shed.
  EffortBudget B;
  B.MaxCoefficientBits = 512;
  B.MaxSplintersPerElimination = 8;
  B.MaxDnfClauses = 64;
  B.MaxRecursionDepth = 24;
  return B;
}

namespace {

/// One accepted connection: the session plus the thread that runs it.
struct SessionRec {
  std::unique_ptr<Session> S;
  std::thread T;
  std::atomic<bool> Done{false};
};

/// Totals carried forward from reaped (closed) sessions so the stats
/// document never loses history when a client disconnects.
struct ClosedTotals {
  uint64_t Sessions = 0;
  uint64_t Requests = 0;
  uint64_t Answered = 0;
  uint64_t Shed = 0;
  uint64_t Rejected = 0;
  uint64_t Malformed = 0;

  void absorb(const ClientCounters &C) {
    ++Sessions;
    Requests += C.Requests.load(std::memory_order_relaxed);
    Answered += C.Answered.load(std::memory_order_relaxed);
    Shed += C.Shed.load(std::memory_order_relaxed);
    Rejected += C.Rejected.load(std::memory_order_relaxed);
    Malformed += C.Malformed.load(std::memory_order_relaxed);
  }
};

} // namespace

struct Server::Impl {
  explicit Impl(ServerOptions O)
      : Opts(std::move(O)),
        Queue(Opts.SoftInFlight, Opts.HardInFlight) {}

  const ServerOptions Opts;
  // Internally synchronized (lock-free CAS). omegatidy: allow(guarded-by)
  RequestQueue Queue;
  // All-atomic counter block. omegatidy: allow(guarded-by)
  QueryStatsBlock Stats; ///< Shared sink; all sessions redirect here.

  // ListenFd/AcceptThread/Started/Stopped belong to the thread calling
  // start()/stop(): ListenFd is published before the accept thread spawns
  // and AcceptThread itself is only touched by its owner, so M (which
  // guards session bookkeeping) is not their capability.
  int ListenFd = -1;           // omegatidy: allow(guarded-by)
  std::thread AcceptThread;    // omegatidy: allow(guarded-by)
  std::atomic<bool> Stopping{false};
  std::atomic<bool> Draining{false};
  bool Started = false;        // omegatidy: allow(guarded-by)
  bool Stopped = false;        // omegatidy: allow(guarded-by)

  Mutex M;
  std::vector<std::unique_ptr<SessionRec>> Sessions OMEGA_GUARDED_BY(M);
  ClosedTotals Closed OMEGA_GUARDED_BY(M);
  uint64_t NextSessionId OMEGA_GUARDED_BY(M) = 1;

  void acceptLoop();
  void spawnSession(int Fd);
  void reapFinished() OMEGA_REQUIRES(M);
  std::string statsJson();
};

void Server::Impl::reapFinished() {
  for (auto It = Sessions.begin(); It != Sessions.end();) {
    if ((*It)->Done.load(std::memory_order_acquire)) {
      // Done is the session thread's last store, so this join is
      // near-instant and safe to do under M.
      (*It)->T.join();
      Closed.absorb((*It)->S->counters());
      It = Sessions.erase(It);
    } else {
      ++It;
    }
  }
}

void Server::Impl::spawnSession(int Fd) {
  MutexLock Lock(M);
  reapFinished();
  auto Rec = std::make_unique<SessionRec>();
  SessionHost Host{Queue,
                   Stats,
                   Opts.ShedBudget,
                   Draining,
                   Opts.MaxWorkersPerQuery,
                   Opts.CacheCapacity,
                   Opts.IdleTimeoutMs,
                   [this] { return statsJson(); }};
  Rec->S = std::make_unique<Session>(Fd, NextSessionId++, Host);
  SessionRec *Raw = Rec.get();
  Rec->T = std::thread([Raw] {
    Raw->S->run();
    Raw->Done.store(true, std::memory_order_release);
  });
  Sessions.push_back(std::move(Rec));
}

void Server::Impl::acceptLoop() {
  while (!Stopping.load(std::memory_order_relaxed)) {
    // Short poll slices so stop() is observed promptly without signals.
    struct pollfd Pfd = {ListenFd, POLLIN, 0};
    int PR = ::poll(&Pfd, 1, 200);
    if (PR <= 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    if (Stopping.load(std::memory_order_relaxed)) {
      ::close(Fd);
      return;
    }
    spawnSession(Fd);
  }
}

std::string Server::Impl::statsJson() {
  std::ostringstream OS;
  OS << "{\"pipeline\":" << snapshotQueryStats(Stats).toJson()
     << ",\"server\":{";
  OS << "\"soft_limit\":" << Queue.softLimit()
     << ",\"hard_limit\":" << Queue.hardLimit()
     << ",\"in_flight\":" << Queue.inFlight()
     << ",\"admitted\":" << Queue.admitted()
     << ",\"shed\":" << Queue.shedded()
     << ",\"rejected\":" << Queue.rejected();
  MutexLock Lock(M);
  OS << ",\"sessions_total\":" << (Closed.Sessions + Sessions.size())
     << ",\"closed\":{\"requests\":" << Closed.Requests
     << ",\"answered\":" << Closed.Answered << ",\"shed\":" << Closed.Shed
     << ",\"rejected\":" << Closed.Rejected
     << ",\"malformed\":" << Closed.Malformed << "}";
  OS << ",\"clients\":[";
  bool First = true;
  for (const auto &Rec : Sessions) {
    const ClientCounters &C = Rec->S->counters();
    if (!First)
      OS << ",";
    First = false;
    OS << "{\"id\":" << Rec->S->id() << ",\"requests\":"
       << C.Requests.load(std::memory_order_relaxed) << ",\"answered\":"
       << C.Answered.load(std::memory_order_relaxed)
       << ",\"shed\":" << C.Shed.load(std::memory_order_relaxed)
       << ",\"rejected\":" << C.Rejected.load(std::memory_order_relaxed)
       << ",\"malformed\":" << C.Malformed.load(std::memory_order_relaxed)
       << "}";
  }
  OS << "]}}";
  return OS.str();
}

// Pimpl: Impl is incomplete in the header, so the raw pointer is owned
// here and freed in the destructor.  omegatidy: allow(naked-new)
Server::Server(ServerOptions Opts) : P(new Impl(std::move(Opts))) {}

Server::~Server() {
  stop();
  delete P;
}

const ServerOptions &Server::options() const { return P->Opts; }

std::string Server::statsJson() { return P->statsJson(); }

bool Server::start(std::string &Err) {
  if (P->Started) {
    Err = "server already started";
    return false;
  }
  const std::string &Path = P->Opts.SocketPath;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Path;
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // A stale socket file from a crashed server must not brick the service.
  ::unlink(Path.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Err = std::string("bind ") + Path + ": " + std::strerror(errno);
    ::close(Fd);
    return false;
  }
  if (::listen(Fd, 64) < 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    ::close(Fd);
    ::unlink(Path.c_str());
    return false;
  }

  // The shared cache is sized once, here; per-query CacheCapacity is
  // pinned to this value in the session so clients cannot grow it.
  configureConjunctCache(P->Opts.CacheCapacity);

  P->ListenFd = Fd;
  P->AcceptThread = std::thread([this] { P->acceptLoop(); });
  P->Started = true;
  return true;
}

void Server::stop() {
  if (!P->Started || P->Stopped)
    return;
  P->Stopped = true;
  // Order matters: mark draining first so any request decoded after this
  // point answers ShuttingDown, then stop intake, then let every admitted
  // query run to completion and deliver its response.
  P->Draining.store(true, std::memory_order_relaxed);
  P->Stopping.store(true, std::memory_order_relaxed);
  P->AcceptThread.join();
  ::close(P->ListenFd);
  P->ListenFd = -1;

  std::vector<std::unique_ptr<SessionRec>> ToJoin;
  {
    MutexLock Lock(P->M);
    ToJoin = std::move(P->Sessions);
    P->Sessions.clear();
  }
  // Unblock readers; in-flight queries keep running and still write their
  // responses (shutdownRead leaves the write side open).
  for (auto &Rec : ToJoin)
    Rec->S->shutdownRead();
  for (auto &Rec : ToJoin)
    Rec->T.join();
  {
    MutexLock Lock(P->M);
    for (auto &Rec : ToJoin)
      P->Closed.absorb(Rec->S->counters());
  }
  ::unlink(P->Opts.SocketPath.c_str());
}
