//===- server/Session.h - One omegad client connection ---------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One accepted connection's request loop.  A Session owns its socket fd
/// and runs on its own thread: read a frame, decide admission, execute
/// the query under a connection-level QueryContext (stats redirected to
/// the server's shared block, trace participation off), write the reply.
/// Everything a session needs from its server comes in through the
/// SessionHost view, so Session compiles without seeing Server at all.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SERVER_SESSION_H
#define OMEGA_SERVER_SESSION_H

#include "server/Protocol.h"
#include "server/RequestQueue.h"
#include "support/Budget.h"
#include "support/QueryContext.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace omega {
namespace server {

/// Per-connection request counters.  Written by the session thread,
/// snapshotted by the stats endpoint from other threads, hence atomics
/// (relaxed: these are tallies, not synchronization).
struct ClientCounters {
  std::atomic<uint64_t> Requests{0};  ///< Count requests received.
  std::atomic<uint64_t> Answered{0};  ///< Ran to an answer or diagnostic.
  std::atomic<uint64_t> Shed{0};      ///< Ran under the clamped budget.
  std::atomic<uint64_t> Rejected{0};  ///< Turned away (Overloaded /
                                      ///< ShuttingDown).
  std::atomic<uint64_t> Malformed{0}; ///< Undecodable frames.
};

/// The server facilities one session borrows.  All references outlive the
/// session: the server joins every session thread before tearing down.
struct SessionHost {
  RequestQueue &Queue;
  QueryStatsBlock &Stats;          ///< Shared sink for query counters.
  const EffortBudget &ShedBudget;  ///< Clamp applied on Admission::Shed.
  std::atomic<bool> &Draining;     ///< Set once shutdown begins.
  unsigned MaxWorkersPerQuery;     ///< Cap on client-requested fan-out.
  size_t CacheCapacity;            ///< The shared cache's configured size.
  int IdleTimeoutMs;               ///< Per-connection read deadline.
  std::function<std::string()> StatsJson; ///< Composes the stats reply.
};

/// Handles one connection until EOF, timeout, malformed input, or drain.
class Session {
public:
  /// Takes ownership of \p Fd (closed in the destructor).
  Session(int Fd, uint64_t Id, const SessionHost &Host);
  ~Session();

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  /// The blocking request loop; returns when the connection is done.
  /// The socket's FIN is sent before returning (the fd itself lives until
  /// destruction), so the peer sees EOF as soon as the loop ends, not
  /// when the server gets around to reaping the session.
  void run();

  /// Asynchronously stops the read side: a session blocked in readFrame
  /// sees EOF and winds down after finishing (and answering) any query
  /// already in flight.  This is how graceful shutdown drains sessions.
  void shutdownRead();

  uint64_t id() const { return Id; }
  const ClientCounters &counters() const { return Counters; }

private:
  /// The request loop proper; run() wraps it with the closing FIN.
  void serve();

  /// Executes one decoded count request end to end and returns the reply.
  CountResponseMsg handleCount(const CountRequestMsg &M);

  int Fd;
  const uint64_t Id;
  SessionHost Host;
  ClientCounters Counters;
};

/// The shed clamp: each budget knob becomes the tighter of the client's
/// and the server's (0 = unlimited loses to any limit).  Exposed for
/// ServerTest.
EffortBudget clampBudget(const EffortBudget &Client,
                         const EffortBudget &Shed);

} // namespace server
} // namespace omega

#endif // OMEGA_SERVER_SESSION_H
