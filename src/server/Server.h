//===- server/Server.h - The omegad counting service -----------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running counting service behind the omegad tool (DESIGN.md
/// §17).  A Server listens on a local AF_UNIX stream socket, accepts
/// connections onto per-connection Session threads, bounds concurrent
/// query execution with a RequestQueue, and shares one persistent
/// conjunct cache (and one stats sink) across every query it ever runs —
/// the warm-cache advantage a process-per-query pipeline cannot have.
///
/// Embeddable by design: ServerTest and bench_server run a Server
/// in-process on a temp socket; tools/omegad.cpp adds only flag parsing
/// and signal handling around this class.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SERVER_SERVER_H
#define OMEGA_SERVER_SERVER_H

#include "support/Budget.h"

#include <cstdint>
#include <string>

namespace omega {
namespace server {

/// Startup configuration for one Server.
struct ServerOptions {
  /// Filesystem path of the AF_UNIX listening socket.  An existing file
  /// at the path is unlinked at startup (a stale socket from a crashed
  /// server must not brick the service).
  std::string SocketPath;
  /// Admission thresholds (RequestQueue.h): below Soft queries run with
  /// the client's budget, below Hard they run shed, at Hard they are
  /// rejected Overloaded.
  uint32_t SoftInFlight = 4;
  uint32_t HardInFlight = 16;
  /// The budget clamp applied to shed queries — finite limits so a shed
  /// query degrades to certified dark/real-shadow bounds quickly instead
  /// of occupying a slot indefinitely.
  EffortBudget ShedBudget;
  /// Cap on the per-query worker fan-out a client may request.
  unsigned MaxWorkersPerQuery = 8;
  /// Shared conjunct cache capacity, configured once at startup.
  size_t CacheCapacity = size_t(1) << 14;
  /// Per-connection read deadline; an idle client is disconnected after
  /// this long with no complete frame.  <= 0 waits forever.
  int IdleTimeoutMs = 30000;
};

/// Sensible finite defaults for ServerOptions::ShedBudget.
EffortBudget defaultShedBudget();

/// The service: listen/accept/dispatch plus graceful shutdown.
class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server(); ///< Calls stop() if still running.

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket and starts the accept thread.  False (with \p Err
  /// set) on any socket-level failure.
  bool start(std::string &Err);

  /// Graceful shutdown: stop accepting, mark draining (new requests get
  /// ShuttingDown), shut down every session's read side, then join all
  /// session threads — every query already admitted runs to completion
  /// and its response is delivered before this returns.  Idempotent.
  void stop();

  /// The stats document served to StatsRequest frames and omegad's
  /// SIGUSR-style dumps: {"pipeline": <schema-5 snapshot>, "server":
  /// {admission counters, per-client counters}}.
  std::string statsJson();

  const ServerOptions &options() const;

private:
  struct Impl;
  Impl *P;
};

} // namespace server
} // namespace omega

#endif // OMEGA_SERVER_SERVER_H
