//===- server/RequestQueue.h - Admission control ---------------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// omegad's admission control (DESIGN.md §17).  Effort budgets double as
/// the load-shedding mechanism: instead of queueing unbounded work, the
/// server keeps a count of in-flight queries and applies a two-threshold
/// policy —
///
///   in-flight <  Soft  ->  Run: execute with the client's own budget.
///   in-flight <  Hard  ->  Shed: execute, but clamp the budget to the
///                          server's shed budget, so the query degrades
///                          to certified dark/real-shadow bounds fast
///                          instead of holding a worker for seconds.
///   otherwise          ->  Reject: answer QueryOutcome::Overloaded
///                          without running anything.
///
/// There is no waiting queue on purpose: a local client blocked on its
/// socket *is* the queue, and bounding concurrent execution (rather than
/// buffering requests) keeps the server's memory footprint proportional
/// to Hard, not to the burst size.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SERVER_REQUESTQUEUE_H
#define OMEGA_SERVER_REQUESTQUEUE_H

#include <atomic>
#include <cstdint>

namespace omega {
namespace server {

/// What admission control decided for one request.
enum class Admission {
  Run,    ///< Under the soft limit: run with the client's budget.
  Shed,   ///< Between soft and hard: run with the clamped shed budget.
  Reject, ///< At the hard limit: answer Overloaded, run nothing.
};

/// Counts in-flight queries and applies the Run/Shed/Reject policy.
/// Lock-free: one atomic carries the whole state, and the compare-exchange
/// loop in admit() makes the decision and the increment one step, so two
/// racing requests can never both sneak under a limit.
class RequestQueue {
public:
  /// \p Soft and \p Hard are in-flight query caps, Soft <= Hard; a Hard of
  /// 0 rejects everything (useful in tests).
  RequestQueue(uint32_t Soft, uint32_t Hard)
      : Soft(Soft), Hard(Hard < Soft ? Soft : Hard) {}

  /// Decides one request's fate and, unless rejected, claims a slot the
  /// caller must release() after the query finishes (success or not).
  Admission admit() {
    uint32_t Cur = InFlight.load(std::memory_order_relaxed);
    while (true) {
      if (Cur >= Hard) {
        Rejected.fetch_add(1, std::memory_order_relaxed);
        return Admission::Reject;
      }
      if (InFlight.compare_exchange_weak(Cur, Cur + 1,
                                         std::memory_order_relaxed)) {
        if (Cur >= Soft) {
          Shedded.fetch_add(1, std::memory_order_relaxed);
          return Admission::Shed;
        }
        Admitted.fetch_add(1, std::memory_order_relaxed);
        return Admission::Run;
      }
      // Cur was reloaded by the failed CAS; re-evaluate the thresholds.
    }
  }

  /// Returns the slot claimed by an admit() that returned Run or Shed.
  void release() { InFlight.fetch_sub(1, std::memory_order_relaxed); }

  uint32_t inFlight() const {
    return InFlight.load(std::memory_order_relaxed);
  }
  uint64_t admitted() const {
    return Admitted.load(std::memory_order_relaxed);
  }
  uint64_t shedded() const { return Shedded.load(std::memory_order_relaxed); }
  uint64_t rejected() const {
    return Rejected.load(std::memory_order_relaxed);
  }

  uint32_t softLimit() const { return Soft; }
  uint32_t hardLimit() const { return Hard; }

private:
  const uint32_t Soft;
  const uint32_t Hard;
  std::atomic<uint32_t> InFlight{0};
  std::atomic<uint64_t> Admitted{0};
  std::atomic<uint64_t> Shedded{0};
  std::atomic<uint64_t> Rejected{0};
};

} // namespace server
} // namespace omega

#endif // OMEGA_SERVER_REQUESTQUEUE_H
