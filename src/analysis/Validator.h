//===- analysis/Validator.h - IR structural invariant checking -*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static-analysis pass over the counting IR.  Pugh's algorithms are only
/// correct when every layer preserves strong structural invariants —
/// GCD-normalized constraints, positive stride moduli, properly scoped
/// wildcards, pairwise-disjoint DNF after splintering (Fig. 1, §5.3), and
/// well-formed guarded quasi-polynomials.  The Validator walks a value of
/// any IR layer and reports violations as structured Diagnostics instead of
/// aborting, so it can run in every build type:
///
///   * always-on, explicitly, from tools (omegalint) and tests;
///   * at the simplify() / projectVars() / makeDisjoint() / summation
///     boundaries when the build is configured with -DOMEGA_VALIDATE=ON
///     (validateOrDie turns Error diagnostics into a loud abort).
///
/// The analysis layer depends only on presburger + poly.  Checks that need
/// the Omega test (clause feasibility, pairwise disjointness) take an
/// injected OverlapOracle, so callers in omega/counting can pass
/// `feasible(Conjunct::merge(A, B))` without creating a layering cycle.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_ANALYSIS_VALIDATOR_H
#define OMEGA_ANALYSIS_VALIDATOR_H

#include "poly/PiecewiseValue.h"
#include "presburger/Formula.h"

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace omega {

/// How bad a rule violation is.  Errors mean any count derived from the
/// value is untrustworthy; Warnings flag suspicious-but-legal structure
/// (e.g. an unused wildcard declaration).
enum class Severity { Warning, Error };

/// Which IR layer a diagnostic is about.
enum class IRLayer {
  Affine,     ///< AffineExpr
  Constraint, ///< Constraint
  Conjunct,   ///< Conjunct (one DNF clause)
  Formula,    ///< Formula AST
  Dnf,        ///< A union of clauses (simplify / projectVars result)
  Poly,       ///< QuasiPolynomial / Atom
  Piecewise   ///< PiecewiseValue (guarded answer)
};

const char *severityName(Severity S);
const char *layerName(IRLayer L);

/// One rule violation.
struct Diagnostic {
  Severity Sev;
  IRLayer Layer;
  std::string Rule;     ///< Stable kebab-case rule id, e.g. "eq-not-gcd-normalized".
  std::string Message;  ///< Human-readable description with the offending text.
  std::string Location; ///< Where in the walked value, e.g. "clause 2, constraint 1".

  /// Renders "error: [dnf/clauses-overlap] clauses 0 and 2 share ... (at ...)".
  std::string toString() const;
};

std::ostream &operator<<(std::ostream &OS, const Diagnostic &D);

/// Decides whether two clauses share an integer point (free variables
/// universally ranged).  Pass `feasible(Conjunct::merge(A, B))`.  The
/// Validator also uses Oracle(C, C) as a feasibility test for single
/// clauses.
using OverlapOracle =
    std::function<bool(const Conjunct &, const Conjunct &)>;

/// Tunes which invariants a context guarantees.
struct ValidatorOptions {
  /// Clauses must carry no wildcards (true at every omega boundary:
  /// simplify / projectVars / makeDisjoint return projected clauses).
  bool RequireWildcardFree = false;
  /// Constraints must be fixpoints of Constraint::normalize() and clauses
  /// must be duplicate- and trivial-constraint-free.
  bool RequireNormalized = false;
  /// Permit `$`-named variables that are mentioned but not declared by the
  /// clause.  True only mid-pipeline: toDNF alpha-renames outer quantifier
  /// variables to fresh wildcard names that stay *free* in inner clauses
  /// until the outer projection consumes them, so the projectVars boundary
  /// legitimately sees pending names.  At a top-level boundary (simplify)
  /// a free `$` name is a scoping leak.
  bool AllowFreeWildcardNames = false;
  /// DNF clauses / piecewise guards must be pairwise disjoint (needs
  /// Overlaps).  Only meaningful where the pipeline promised disjointness.
  bool RequireDisjoint = false;
  /// Optional Omega-test callback for feasibility/disjointness rules.
  OverlapOracle Overlaps;
};

/// Collects diagnostics over any number of checked values.
class Validator {
public:
  explicit Validator(ValidatorOptions Opts = {}) : Opts(std::move(Opts)) {}

  /// Affine layer: no stored zero-coefficient terms.
  void checkAffine(const AffineExpr &E, const std::string &Loc);

  /// Constraint layer: positive stride modulus, and (RequireNormalized)
  /// GCD-normalized Eq/Ge, reduced strides, no trivial or unsatisfiable
  /// constraints.
  void checkConstraint(const Constraint &K, const std::string &Loc);

  /// Conjunct layer: wildcard scoping (every `$`-variable mentioned is
  /// declared here, every declaration is used), no duplicate constraints
  /// (RequireNormalized), no wildcards at all (RequireWildcardFree);
  /// plus per-constraint checks.
  void checkConjunct(const Conjunct &C, const std::string &Loc);

  /// Formula layer: valid kind tags, connective arities, sound quantifier
  /// scoping (non-empty, used, non-shadowing binders); plus atom checks.
  void checkFormula(const Formula &F, const std::string &Loc);

  /// DNF layer: per-clause conjunct checks, clause feasibility (with
  /// Overlaps), pairwise disjointness (RequireDisjoint + Overlaps).
  void checkDnf(const std::vector<Conjunct> &Clauses, const std::string &Loc);

  /// Poly layer: no zero coefficients/exponents, positive mod-atom moduli,
  /// mod arguments reduced coefficient-wise into [0, modulus).
  void checkQuasiPolynomial(const QuasiPolynomial &P, const std::string &Loc);

  /// Piecewise layer: wildcard-free guards, per-guard conjunct checks,
  /// per-value poly checks, pairwise-disjoint guards (RequireDisjoint).
  void checkPiecewise(const PiecewiseValue &V, const std::string &Loc);

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  bool hasErrors() const;
  bool empty() const { return Diags.empty(); }

private:
  void report(Severity Sev, IRLayer Layer, std::string Rule,
              std::string Message, std::string Loc);
  void checkFormulaRec(const Formula &F, VarSet &Bound,
                       const std::string &Loc);

  ValidatorOptions Opts;
  std::vector<Diagnostic> Diags;
};

/// One-shot conveniences.
std::vector<Diagnostic> validateFormula(const Formula &F,
                                        ValidatorOptions Opts = {});
std::vector<Diagnostic> validateDnf(const std::vector<Conjunct> &Clauses,
                                    ValidatorOptions Opts = {});
std::vector<Diagnostic> validatePiecewise(const PiecewiseValue &V,
                                          ValidatorOptions Opts = {});

/// Prints every diagnostic to stderr prefixed with \p Boundary; aborts via
/// fatalError if any has Severity::Error.  The OMEGA_VALIDATE pipeline
/// hooks route through this.
void validateOrDie(const std::vector<Diagnostic> &Diags,
                   const char *Boundary);

} // namespace omega

#endif // OMEGA_ANALYSIS_VALIDATOR_H
