//===- analysis/Validator.cpp - IR structural invariant checking ---------===//
//
// Rule implementations.  Each rule has a stable kebab-case id so tests and
// omegalint can assert on exactly which invariant broke.
//
//===----------------------------------------------------------------------===//

#include "analysis/Validator.h"

#include "support/Error.h"

#include <iostream>
#include <sstream>

using namespace omega;

const char *omega::severityName(Severity S) {
  return S == Severity::Error ? "error" : "warning";
}

const char *omega::layerName(IRLayer L) {
  switch (L) {
  case IRLayer::Affine:
    return "affine";
  case IRLayer::Constraint:
    return "constraint";
  case IRLayer::Conjunct:
    return "conjunct";
  case IRLayer::Formula:
    return "formula";
  case IRLayer::Dnf:
    return "dnf";
  case IRLayer::Poly:
    return "poly";
  case IRLayer::Piecewise:
    return "piecewise";
  }
  fatalError("layerName: unknown IR layer");
}

std::string Diagnostic::toString() const {
  std::ostringstream OS;
  OS << severityName(Sev) << ": [" << layerName(Layer) << "/" << Rule << "] "
     << Message;
  if (!Location.empty())
    OS << " (at " << Location << ")";
  return OS.str();
}

std::ostream &omega::operator<<(std::ostream &OS, const Diagnostic &D) {
  return OS << D.toString();
}

void Validator::report(Severity Sev, IRLayer Layer, std::string Rule,
                       std::string Message, std::string Loc) {
  Diags.push_back({Sev, Layer, std::move(Rule), std::move(Message),
                   std::move(Loc)});
}

bool Validator::hasErrors() const {
  for (const Diagnostic &D : Diags)
    if (D.Sev == Severity::Error)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Affine layer
//===----------------------------------------------------------------------===//

void Validator::checkAffine(const AffineExpr &E, const std::string &Loc) {
  for (const auto &[V, Coef] : E.terms())
    if (Coef.isZero())
      report(Severity::Error, IRLayer::Affine, "zero-coefficient-term",
             "variable '" + varName(V) + "' stored with zero coefficient in '" +
                 E.toString() + "'",
             Loc);
}

//===----------------------------------------------------------------------===//
// Constraint layer
//===----------------------------------------------------------------------===//

void Validator::checkConstraint(const Constraint &K, const std::string &Loc) {
  checkAffine(K.expr(), Loc);

  if (K.isStride() && !K.modulus().isPositive()) {
    report(Severity::Error, IRLayer::Constraint, "stride-nonpositive-modulus",
           "stride modulus " + K.modulus().toString() +
               " is not positive in '" + K.toString() + "'",
           Loc);
    return; // normalize() below would divide by the broken modulus.
  }

  if (!Opts.RequireNormalized)
    return;

  if (K.expr().isConstant() && !K.isTriviallyFalse()) {
    report(Severity::Error, IRLayer::Constraint, "trivial-constraint",
           "variable-free constraint '" + K.toString() +
               "' should have been folded away",
           Loc);
    return;
  }

  Constraint Canon = K;
  if (!Canon.normalize()) {
    report(Severity::Error, IRLayer::Constraint, "constraint-unsatisfiable",
           "provably unsatisfiable constraint '" + K.toString() +
               "' survived normalization",
           Loc);
    return;
  }
  if (Canon != K) {
    const char *Rule = K.isEq()   ? "eq-not-gcd-normalized"
                       : K.isGe() ? "ge-not-tightened"
                                  : "stride-not-reduced";
    report(Severity::Error, IRLayer::Constraint, Rule,
           "'" + K.toString() + "' is not normalized (canonical form: '" +
               Canon.toString() + "')",
           Loc);
  }
}

//===----------------------------------------------------------------------===//
// Conjunct layer
//===----------------------------------------------------------------------===//

void Validator::checkConjunct(const Conjunct &C, const std::string &Loc) {
  if (Opts.RequireWildcardFree && !C.wildcards().empty())
    report(Severity::Error, IRLayer::Conjunct, "wildcard-forbidden",
           "clause carries " + std::to_string(C.wildcards().size()) +
               " wildcard(s) at a boundary that guarantees projected "
               "(wildcard-free) clauses",
           Loc);

  // Scoping: every mentioned `$`-variable must be declared by this clause
  // (wildcard names are globally fresh, so a free `$` name means another
  // clause's existential structure leaked in), and every declaration must
  // be used.
  VarSet Mentioned = C.mentionedVars();
  if (!Opts.AllowFreeWildcardNames)
    for (const std::string &V : Mentioned)
      if (isWildcardName(V) && !C.isWildcard(V))
        report(Severity::Error, IRLayer::Conjunct, "wildcard-undeclared",
               "wildcard '" + V +
                   "' is mentioned but not declared by its clause",
               Loc);
  for (const std::string &W : C.wildcards())
    if (!Mentioned.count(W))
      report(Severity::Warning, IRLayer::Conjunct, "wildcard-unused",
             "wildcard '" + W + "' is declared but never referenced",
             Loc);

  const std::vector<Constraint> &Ks = C.constraints();
  if (Opts.RequireNormalized)
    for (size_t I = 0; I < Ks.size(); ++I)
      for (size_t J = I + 1; J < Ks.size(); ++J)
        if (Ks[I] == Ks[J])
          report(Severity::Error, IRLayer::Conjunct, "duplicate-constraint",
                 "constraints " + std::to_string(I) + " and " +
                     std::to_string(J) + " are identical: '" +
                     Ks[I].toString() + "'",
                 Loc);

  for (size_t I = 0; I < Ks.size(); ++I)
    checkConstraint(Ks[I], Loc + ", constraint " + std::to_string(I));
}

//===----------------------------------------------------------------------===//
// Formula layer
//===----------------------------------------------------------------------===//

void Validator::checkFormulaRec(const Formula &F, VarSet &Bound,
                                const std::string &Loc) {
  switch (F.kind()) {
  case FormulaKind::True:
  case FormulaKind::False:
    return;
  case FormulaKind::Atom:
    checkConstraint(F.constraint(), Loc + ", atom");
    return;
  case FormulaKind::And:
  case FormulaKind::Or: {
    if (F.children().size() < 2)
      report(Severity::Warning, IRLayer::Formula, "connective-arity",
             std::string(F.kind() == FormulaKind::And ? "And" : "Or") +
                 " node with " + std::to_string(F.children().size()) +
                 " child(ren) should have been folded by the constructor",
             Loc);
    for (size_t I = 0; I < F.children().size(); ++I)
      checkFormulaRec(F.children()[I], Bound,
                      Loc + ", child " + std::to_string(I));
    return;
  }
  case FormulaKind::Not: {
    if (F.children().size() != 1) {
      report(Severity::Error, IRLayer::Formula, "not-arity",
             "Not node with " + std::to_string(F.children().size()) +
                 " children",
             Loc);
      return;
    }
    checkFormulaRec(F.children()[0], Bound, Loc + ", negand");
    return;
  }
  case FormulaKind::Exists:
  case FormulaKind::Forall: {
    if (F.quantified().empty())
      report(Severity::Error, IRLayer::Formula, "quantifier-empty",
             "quantifier binds no variables (constructor should have "
             "returned the body)",
             Loc);
    VarSet BodyFree = F.body().freeVars();
    VarSet Added;
    for (const std::string &V : F.quantified()) {
      if (Bound.count(V))
        report(Severity::Warning, IRLayer::Formula, "quantifier-shadowing",
               "quantifier rebinds '" + V +
                   "', already bound by an enclosing quantifier",
               Loc);
      else
        Added.insert(V);
      if (!BodyFree.count(V))
        report(Severity::Warning, IRLayer::Formula, "quantifier-unused",
               "quantified variable '" + V + "' does not occur in the body",
               Loc);
    }
    Bound.insert(Added.begin(), Added.end());
    checkFormulaRec(F.body(), Bound, Loc + ", body");
    for (const std::string &V : Added)
      Bound.erase(V);
    return;
  }
  }
  report(Severity::Error, IRLayer::Formula, "unknown-kind",
         "formula node with invalid kind tag " +
             std::to_string(static_cast<int>(F.kind())),
         Loc);
}

void Validator::checkFormula(const Formula &F, const std::string &Loc) {
  VarSet Bound;
  checkFormulaRec(F, Bound, Loc);
}

//===----------------------------------------------------------------------===//
// DNF layer
//===----------------------------------------------------------------------===//

void Validator::checkDnf(const std::vector<Conjunct> &Clauses,
                         const std::string &Loc) {
  for (size_t I = 0; I < Clauses.size(); ++I)
    checkConjunct(Clauses[I], Loc + ", clause " + std::to_string(I));

  if (!Opts.Overlaps)
    return;

  // Oracle(C, C) is a plain feasibility test: C shares a point with a
  // wildcard-refreshed copy of itself iff C has a point at all.
  for (size_t I = 0; I < Clauses.size(); ++I)
    if (!Opts.Overlaps(Clauses[I], Clauses[I]))
      report(Severity::Error, IRLayer::Dnf, "clause-infeasible",
             "infeasible clause " + std::to_string(I) +
                 " survived pruning: " + Clauses[I].toString(),
             Loc);

  if (!Opts.RequireDisjoint)
    return;
  for (size_t I = 0; I < Clauses.size(); ++I)
    for (size_t J = I + 1; J < Clauses.size(); ++J)
      if (Opts.Overlaps(Clauses[I], Clauses[J]))
        report(Severity::Error, IRLayer::Dnf, "clauses-overlap",
               "clauses " + std::to_string(I) + " and " + std::to_string(J) +
                   " share an integer point but disjoint DNF was requested",
               Loc);
}

//===----------------------------------------------------------------------===//
// Poly layer
//===----------------------------------------------------------------------===//

void Validator::checkQuasiPolynomial(const QuasiPolynomial &P,
                                     const std::string &Loc) {
  size_t TermIdx = 0;
  for (const auto &[M, Coef] : P.terms()) {
    std::string TermLoc = Loc + ", term " + std::to_string(TermIdx++);
    if (Coef.isZero())
      report(Severity::Error, IRLayer::Poly, "zero-coefficient",
             "monomial stored with zero coefficient", TermLoc);
    for (const auto &[A, Exp] : M) {
      if (Exp == 0)
        report(Severity::Error, IRLayer::Poly, "zero-exponent",
               "atom '" + A.toString() + "' stored with exponent 0", TermLoc);
      if (!A.isMod())
        continue;
      if (!A.modulus().isPositive()) {
        report(Severity::Error, IRLayer::Poly, "mod-nonpositive-modulus",
               "periodic atom '" + A.toString() +
                   "' has non-positive modulus",
               TermLoc);
        continue;
      }
      if (A.arg().isConstant())
        report(Severity::Warning, IRLayer::Poly, "mod-constant-arg",
               "periodic atom '" + A.toString() +
                   "' has a constant argument and should have folded",
               TermLoc);
      // Period consistency: Atom::mod canonicalizes the argument
      // coefficient-wise into [0, modulus); anything outside means two
      // equal periodic terms can compare unequal and fail to combine.
      bool Reduced = !A.arg().constant().isNegative() &&
                     A.arg().constant() < A.modulus();
      for (const auto &[Name, C] : A.arg().terms()) {
        (void)Name;
        if (C.isNegative() || C >= A.modulus())
          Reduced = false;
      }
      if (!Reduced)
        report(Severity::Error, IRLayer::Poly, "mod-arg-not-reduced",
               "periodic atom '" + A.toString() +
                   "' argument is not reduced into [0, modulus)",
               TermLoc);
      checkAffine(A.arg(), TermLoc);
    }
  }
}

//===----------------------------------------------------------------------===//
// Piecewise layer
//===----------------------------------------------------------------------===//

void Validator::checkPiecewise(const PiecewiseValue &V,
                               const std::string &Loc) {
  if (V.isUnbounded() && !V.pieces().empty())
    report(Severity::Warning, IRLayer::Piecewise, "unbounded-with-pieces",
           "unbounded marker set but " + std::to_string(V.pieces().size()) +
               " piece(s) present",
           Loc);

  const std::vector<Piece> &Pieces = V.pieces();
  for (size_t I = 0; I < Pieces.size(); ++I) {
    std::string PieceLoc = Loc + ", piece " + std::to_string(I);
    if (!Pieces[I].Guard.wildcards().empty())
      report(Severity::Error, IRLayer::Piecewise, "guard-wildcard",
             "guard carries wildcards; guards must be projected "
             "(wildcard-free) conjuncts over the symbolic constants",
             PieceLoc);
    checkConjunct(Pieces[I].Guard, PieceLoc + " guard");
    if (Pieces[I].Value.isZero())
      report(Severity::Warning, IRLayer::Piecewise, "piece-zero-value",
             "zero-valued piece should have been dropped", PieceLoc);
    checkQuasiPolynomial(Pieces[I].Value, PieceLoc + " value");
  }

  if (!Opts.RequireDisjoint || !Opts.Overlaps)
    return;
  for (size_t I = 0; I < Pieces.size(); ++I)
    for (size_t J = I + 1; J < Pieces.size(); ++J)
      if (Opts.Overlaps(Pieces[I].Guard, Pieces[J].Guard))
        report(Severity::Error, IRLayer::Piecewise, "guards-overlap",
               "guards of pieces " + std::to_string(I) + " and " +
                   std::to_string(J) +
                   " share a point but disjoint guards were requested",
               Loc);
}

//===----------------------------------------------------------------------===//
// Conveniences
//===----------------------------------------------------------------------===//

std::vector<Diagnostic> omega::validateFormula(const Formula &F,
                                               ValidatorOptions Opts) {
  Validator V(std::move(Opts));
  V.checkFormula(F, "formula");
  return V.diagnostics();
}

std::vector<Diagnostic>
omega::validateDnf(const std::vector<Conjunct> &Clauses,
                   ValidatorOptions Opts) {
  Validator V(std::move(Opts));
  V.checkDnf(Clauses, "dnf");
  return V.diagnostics();
}

std::vector<Diagnostic> omega::validatePiecewise(const PiecewiseValue &Val,
                                                 ValidatorOptions Opts) {
  Validator V(std::move(Opts));
  V.checkPiecewise(Val, "value");
  return V.diagnostics();
}

void omega::validateOrDie(const std::vector<Diagnostic> &Diags,
                          const char *Boundary) {
  if (Diags.empty())
    return;
  bool AnyError = false;
  for (const Diagnostic &D : Diags) {
    std::cerr << "omega: validate(" << Boundary << "): " << D << "\n";
    AnyError |= D.Sev == Severity::Error;
  }
  if (AnyError)
    fatalError(std::string(Boundary) + ": IR invariant violation (see " +
               std::to_string(Diags.size()) + " diagnostic(s) above)");
}
