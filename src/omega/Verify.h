//===- omega/Verify.h - Formula-level verification --------------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §2.4 of the paper: "we can verify formulas of the form P => Q ... We
/// can combine this capability with our ability to eliminate existentially
/// quantified variables to verify more complicated formulas such as
/// (∃y s.t. P) => (∃z s.t. Q)."  Free variables are implicitly
/// universally quantified.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_OMEGA_VERIFY_H
#define OMEGA_OMEGA_VERIFY_H

#include "omega/Omega.h"

namespace omega {

/// True iff \p F holds for every assignment of its free variables.
bool isTautology(const Formula &F);

/// True iff \p F holds for no assignment.
bool isUnsatisfiable(const Formula &F);

/// True iff \p F has at least one solution.
bool isSatisfiable(const Formula &F);

/// True iff P => Q for all assignments of the shared free variables.
bool verifyImplies(const Formula &P, const Formula &Q);

/// True iff P and Q have exactly the same solutions.
bool verifyEquivalent(const Formula &P, const Formula &Q);

} // namespace omega

#endif // OMEGA_OMEGA_VERIFY_H
