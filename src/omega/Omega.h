//===- omega/Omega.h - The Omega test ---------------------------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Omega test (§2 of the paper; algorithms from Pugh, CACM 1992):
/// exact integer projection (variable elimination) with dark shadows and
/// splinters, integer feasibility, redundant-constraint removal, the gist
/// operator, and simplification of arbitrary Presburger formulas into
/// (optionally disjoint) disjunctive normal form.
///
/// Invariant maintained by every function here: input Conjuncts may carry
/// wildcards, but *returned* Conjuncts never do — existential structure is
/// projected into stride constraints.  This is the paper's "stride format";
/// Conjunct::stridesToWildcards recovers the "projected format" (§2.1).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_OMEGA_OMEGA_H
#define OMEGA_OMEGA_OMEGA_H

#include "poly/PiecewiseValue.h"
#include "presburger/Conjunct.h"
#include "presburger/Formula.h"
#include "support/Budget.h"
#include "support/Stats.h"
#include "support/Status.h"
#include "support/Trace.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

namespace omega {

/// How to treat an elimination step that cannot be done exactly with a
/// single clause (§2.1, §4.6, Figure 1).
enum class ShadowMode {
  /// Dark shadow plus overlapping splinters: exact, clauses may overlap.
  Exact,
  /// Dark shadow plus disjoint splinters (Figure 1): exact, clauses are
  /// pairwise disjoint.
  Disjoint,
  /// Real shadow only: an over-approximation (superset of solutions).
  Real,
  /// Dark shadow only: an under-approximation (subset of solutions).
  Dark,
};

/// Existentially eliminates \p Vars (plus any wildcards of \p C) from \p C.
/// The result is a union of wildcard-free clauses over the remaining
/// variables; with ShadowMode::Exact or Disjoint the union is exactly
/// ∃ Vars . C, with Real/Dark it is an over-/under-approximation.
std::vector<Conjunct> projectVars(const Conjunct &C, const VarSet &Vars,
                                  ShadowMode Mode = ShadowMode::Exact);

/// True iff \p C has an integer solution (all variables treated as
/// existentially quantified).
bool feasible(const Conjunct &C);

/// Normalizes every constraint of \p C (GCD reduction, inequality
/// tightening, stride canonicalization), dropping trivially true
/// constraints and duplicates.  Returns false iff the clause is proven
/// infeasible in the process.
bool normalizeConjunct(Conjunct &C);

/// True iff \p Values (binding all free variables of \p C) satisfies C;
/// wildcards are resolved by the Omega test.
bool containsPoint(const Conjunct &C, const Assignment &Values);

/// Finds an integer solution of \p C (binding its free variables), or
/// nullopt if none exists.  Unbounded directions are resolved near the
/// clause's bounds (or zero); wildcards are not reported.
std::optional<Assignment> samplePoint(const Conjunct &C);

/// Removes redundant constraints from \p C in place.  The cheap pass drops
/// constraints made redundant by a single other constraint; with
/// \p Aggressive the complete (feasibility-based) test is used (§2.3).
void removeRedundant(Conjunct &C, bool Aggressive = false);

/// True iff every integer point of \p P satisfies \p Q (§2.4).  Both
/// clauses may share variables by name; wildcard-free inputs required.
bool implies(const Conjunct &P, const Conjunct &Q);

/// Single-constraint implication: true iff every integer point of \p P
/// satisfies \p K — exactly implies(P, {K}) without building the
/// one-constraint clause.  The inner loop of clause coalescing.
bool impliesConstraint(const Conjunct &P, const Constraint &K);

/// The gist operator (§2.3): a minimal subset G of P's constraints with
/// G ∧ Q ≡ P ∧ Q.
Conjunct gist(const Conjunct &P, const Conjunct &Q);

/// Negates a wildcard-free clause into a union of *pairwise disjoint*
/// wildcard-free clauses (used by simplification and §5.3).
std::vector<Conjunct> negateConjunct(const Conjunct &C);

/// Options for simplify().
struct SimplifyOptions {
  /// Produce disjoint disjunctive normal form (§5).
  bool Disjoint = false;
  /// Exact, over-approximate (Real) or under-approximate (Dark)
  /// simplification (§4.6).  Disjoint requires Exact.
  ShadowMode Mode = ShadowMode::Exact;
};

/// Simplifies an arbitrary Presburger formula into DNF over wildcard-free
/// clauses (§2.6).  Infeasible clauses are dropped, redundant constraints
/// removed, and subsumed clauses deleted.
std::vector<Conjunct> simplify(const Formula &F, SimplifyOptions Opts = {});

/// Alpha-renames free occurrences of the map's keys (quantifier-aware).
Formula renameFreeVars(const Formula &F,
                       const std::map<std::string, std::string> &Map);

/// Converts a (possibly overlapping) union of clauses into an equivalent
/// union of pairwise disjoint clauses (§5.3).
std::vector<Conjunct> makeDisjoint(std::vector<Conjunct> Clauses);

/// True iff no two clauses overlap (share an integer point); all free
/// variables are implicitly universally ranged.  Exposed for tests.
bool pairwiseDisjoint(const std::vector<Conjunct> &Clauses);

/// If a single clause equal to A ∨ B exists among the constraints the two
/// clauses share (each implied by the other side), returns it.  Used to
/// tidy unions, e.g. [1,4] ∨ [5,9] -> [1,9].
std::optional<Conjunct> coalescePair(const Conjunct &A, const Conjunct &B);

/// Repeatedly applies coalescePair across the union; preserves the union
/// exactly (and disjointness, since a merged clause equals the union of
/// the clauses it replaces).
void coalesceClauses(std::vector<Conjunct> &Clauses);

//===----------------------------------------------------------------------===//
// Conjunct memoization (omega/Cache.cpp)
//
// feasible() and projectVars() memoize results in a process-wide LRU cache
// keyed by the clause's canonical form (canonicalConjunct) — plus the
// target-variable set and shadow mode for projection, since those change
// the answer.  Cached values are computed from the canonical form under a
// pinned wildcard scope, so they are pure functions of the key and safe to
// share across threads and shadow modes (DESIGN.md §8).
//===----------------------------------------------------------------------===//

/// Aggregate statistics over the feasibility and projection caches.
struct ConjunctCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  size_t Entries = 0; ///< Current number of cached results.
};

/// Configures the process-wide cache *storage*: per-cache entry capacity.
/// 0 disables memoization entirely (every query recomputes); shrinking
/// evicts LRU entries immediately.  This sizes the shared store that all
/// queries use — whether an individual query participates is per-query
/// (CountOptions::CacheEnabled).  Long-running hosts (omegad) call this
/// once at startup; queries then share the warm cache across requests.
void configureConjunctCache(size_t Capacity);
size_t conjunctCacheCapacity();

/// Drops all cached results and resets hit/miss/eviction counters.  Callers
/// comparing runs (determinism tests, benchmarks) should clear between runs
/// so each run does the same work.
void clearConjunctCache();

ConjunctCacheStats conjunctCacheStats();

namespace detail {
/// Uncached implementations (omega/Project.cpp).  The public feasible() /
/// projectVars() wrap these with the conjunct cache; everything else should
/// go through the public entry points.
bool feasibleImpl(const Conjunct &C);
std::vector<Conjunct> projectVarsImpl(const Conjunct &C, const VarSet &Vars,
                                      ShadowMode Mode);
} // namespace detail

//===----------------------------------------------------------------------===//
// Unified query API (counting/Query.cpp)
//
// One options-taking entry point for every counting/summation query.  The
// legacy global-knob setters (setWorkerCount, setConjunctCacheCapacity,
// setArithOpCounting) are gone: a query's CountOptions translate into a
// QueryContext (support/QueryContext.h) installed for the query's
// duration, so the entry points are re-entrant — concurrent queries on
// different threads (omegad sessions, countBatch hosts) run with
// independent knobs and independent stats, mutating no process state.
// The only process-wide pieces left are deliberate: the worker pool, the
// conjunct cache storage (configureConjunctCache above), and the global
// counters that per-query stats fold into.
//===----------------------------------------------------------------------===//

/// Which counting algorithm answers a query (counting/Backend.h).  The
/// three concrete backends share no counting code: Pugh is the paper's
/// splinter-summation pipeline (symbolic, total), Automaton counts
/// accepting paths of a product of per-constraint binary DFAs (concrete
/// bounded sets), Enumerate sweeps a derived bounding box (concrete small
/// sets).  Auto picks per query with a cheap heuristic and falls back to
/// Pugh whenever the preferred backend refuses.
enum class BackendKind {
  Pugh,      ///< §4 splinter summation: symbolic, budgeted, total.
  Automaton, ///< Constraint-DFA path counting: exact or refuses.
  Enumerate, ///< Bounded brute-force sweep: exact or refuses.
  Auto,      ///< Heuristic dispatch with Pugh fallback.
};

const char *backendKindName(BackendKind K);

/// Per-query configuration.  Field defaults reproduce the process defaults,
/// so CountOptions{} behaves exactly like the legacy zero-configuration
/// call.
struct CountOptions {
  /// Counting backend (counting/Backend.h).  Pugh reproduces the pre-PR-7
  /// behavior bit for bit; Automaton/Enumerate answer exactly or refuse
  /// with a typed Error; Auto dispatches heuristically and never refuses.
  BackendKind Backend = BackendKind::Pugh;
  /// Worker threads for disjunct fan-out; 0 and 1 both mean serial.
  /// Results are bit-identical at every worker count (DESIGN.md §8).
  unsigned Workers = 0;
  /// Conjunct memoization (DESIGN.md §8).  Disabling forces every
  /// feasibility/projection query to recompute.
  bool CacheEnabled = true;
  /// Per-cache entry capacity when the cache is enabled.
  size_t CacheCapacity = size_t(1) << 14;
  /// Effort budget (DESIGN.md §9).  Unlimited runs the exact pipeline
  /// only; any limit arms the degradation path to certified bounds.
  EffortBudget Budget;
  /// Snapshot the pipeline counters across the query into
  /// CountResult::Stats (a delta, so concurrent history does not leak in).
  bool CollectStats = false;
  /// Count BigInt fast/slow operations (small per-op cost; implies the
  /// BigIntFastOps/BigIntSlowOps fields of the stats delta are meaningful).
  bool CountArithOps = false;
  /// Collect a hierarchical trace of the query into CountResult::Trace.
  /// Tracing is process-wide and not reentrant: at most one traced query
  /// at a time.
  bool CollectTrace = false;
};

/// Outcome of a unified query.
struct [[nodiscard]] CountResult {
  /// Exact, Bounded (degraded), Unbounded, or Error.
  CountStatus Status = CountStatus::Error;
  /// The answer; valid when Status == Exact (or Unbounded marker).
  PiecewiseValue Value;
  /// Degradation certificate, valid when Status == Bounded:
  /// Lower(s) <= true answer(s) <= Upper(s) for every symbol binding.
  PiecewiseValue Lower;
  PiecewiseValue Upper;
  /// The budget knob that tripped (empty on a clean exact run).
  std::string TrippedLimit;
  /// Valid when Status == Error.
  Error Err;
  /// Name of the backend that produced the answer ("pugh", "automaton",
  /// "enumerate"); set on every return from the unified entry points.
  std::string Backend;
  /// Why the dispatcher picked Backend — the Auto heuristic's one-line
  /// rationale, or the refusal that forced a fallback.  Empty when the
  /// caller requested the backend explicitly.
  std::string BackendReason;
  /// Pipeline counter delta over this query (CollectStats).
  PipelineStatsSnapshot Stats{};
  /// The query's trace (CollectTrace); export with toChromeJson() /
  /// toSummary().
  std::shared_ptr<const TraceData> Trace;

  [[nodiscard]] bool exact() const { return Status == CountStatus::Exact; }

  /// The machine-readable outcome code (support/Status.h): the single
  /// vocabulary the wire protocol and the tools' exit codes both map from.
  [[nodiscard]] QueryOutcome outcome() const {
    return Status == CountStatus::Error ? queryOutcomeForError(Err.Kind)
                                        : queryOutcomeForStatus(Status);
  }
};

/// (Σ Vars : F : X) under \p Opts — THE entry point; every other overload
/// delegates here.  Free variables of F and X outside Vars are the
/// symbolic constants of the answer.
[[nodiscard]] CountResult sumPolynomial(const Formula &F, const VarSet &Vars,
                          const QuasiPolynomial &X,
                          const CountOptions &Opts = {});

/// (Σ Vars : F : 1) under \p Opts: the number of solutions.
[[nodiscard]] CountResult countSolutions(const Formula &F,
                                         const VarSet &Vars,
                                         const CountOptions &Opts);

/// One query of a batch: (Σ Vars : F : X) under Opts.
struct CountQuery {
  Formula F;
  VarSet Vars;
  QuasiPolynomial X = QuasiPolynomial(Rational(1));
  CountOptions Opts;
};

/// Runs each query in order and returns one CountResult per query,
/// index-aligned.  Semantically identical to calling sumPolynomial per
/// element — each query gets its own context and its own stats delta
/// (nothing leaks between batch elements) — but shares the warm conjunct
/// cache across the batch.  The shared entry point behind omegad's request
/// loop and `omegaclient --batch`.
[[nodiscard]] std::vector<CountResult>
countBatch(std::span<const CountQuery> Queries);

} // namespace omega

#endif // OMEGA_OMEGA_OMEGA_H
