//===- omega/Redundancy.cpp - Redundant constraints, implies, gist -------===//
//
// §2.3 and §2.4 of the paper: fast single-constraint redundancy tests, the
// complete feasibility-based test, implication checking, and the gist
// operator (gist P given Q is "what is interesting about P given Q").
//
//===----------------------------------------------------------------------===//

#include "omega/Omega.h"

#include "support/Error.h"

#include <algorithm>

using namespace omega;

namespace {

/// Returns the disjoint branches of the negation of a single constraint.
/// Ge e>=0 -> { -e-1>=0 }; Eq e=0 -> { e-1>=0, -e-1>=0 };
/// Stride m|e -> { m | e-r : r in 1..m-1 }  (§3.2).
std::vector<Constraint> negateConstraint(const Constraint &K) {
  switch (K.kind()) {
  case ConstraintKind::Ge:
    return {Constraint::ge(-K.expr() - AffineExpr(1))};
  case ConstraintKind::Eq:
    return {Constraint::ge(K.expr() - AffineExpr(1)),
            Constraint::ge(-K.expr() - AffineExpr(1))};
  case ConstraintKind::Stride: {
    std::vector<Constraint> Out;
    for (BigInt R(1); R < K.modulus(); ++R)
      Out.push_back(Constraint::stride(K.modulus(), K.expr() - AffineExpr(R)));
    return Out;
  }
  }
  fatalError("negateConstraint: unknown constraint kind");
}

/// Cheap sound infeasibility proof for Ctx ∧ B, used to skip full
/// feasibility tests: the conjunction is infeasible whenever a Ge/Eq
/// constraint of Ctx pairs with Ge B so their left-hand sides cancel to a
/// negative constant (e + c1 >= 0 and -e + c2 >= 0 force c1 + c2 >= 0).
/// The argument is pointwise, so wildcards in Ctx do not matter.  This is
/// the dominant shape in redundancy and coalescing work — the negation of
/// an implied bound almost always contradicts the parallel bound that
/// implies it — and each hit saves one Omega call.
bool contradictsSyntactically(const Conjunct &Ctx, const Constraint &B) {
  if (!B.isGe())
    return false;
  for (const Constraint &K : Ctx.constraints()) {
    if (K.kind() == ConstraintKind::Stride)
      continue;
    AffineExpr Sum = K.expr() + B.expr();
    if (Sum.isConstant() && Sum.constant().sign() < 0)
      return true;
    if (K.kind() == ConstraintKind::Eq) {
      // e = 0 also supplies -e >= 0; B - e constant-negative is the same
      // cancellation against that direction.
      AffineExpr Diff = B.expr() - K.expr();
      if (Diff.isConstant() && Diff.constant().sign() < 0)
        return true;
    }
  }
  return false;
}

/// True iff Ctx ∧ ¬K is infeasible, i.e. Ctx implies K.
bool contextImplies(const Conjunct &Ctx, const Constraint &K) {
  for (const Constraint &Branch : negateConstraint(K)) {
    if (contradictsSyntactically(Ctx, Branch))
      continue; // Provably infeasible with zero Omega calls.
    Conjunct Test = Ctx;
    Test.add(Branch);
    if (feasible(Test))
      return false;
  }
  return true;
}

/// Cheap test: is \p A made redundant by \p B alone?  Only inequalities
/// with identical coefficient vectors are compared: e + c1 >= 0 is
/// redundant given e + c2 >= 0 when c2 <= c1.
bool singleConstraintRedundant(const Constraint &A, const Constraint &B) {
  if (!A.isGe() || !B.isGe())
    return false;
  AffineExpr Diff = A.expr() - B.expr();
  return Diff.isConstant() && Diff.constant().sign() >= 0;
}

} // namespace

void omega::removeRedundant(Conjunct &C, bool Aggressive) {
  std::vector<Constraint> &Ks = C.constraints();
  // Fast pass: drop any inequality made redundant by a single other
  // constraint (and exact duplicates of any kind).
  for (size_t I = 0; I < Ks.size();) {
    bool Drop = false;
    for (size_t J = 0; J < Ks.size() && !Drop; ++J) {
      if (I == J)
        continue;
      if (Ks[I] == Ks[J]) {
        Drop = J < I; // Keep the first copy.
        continue;
      }
      if (singleConstraintRedundant(Ks[I], Ks[J]))
        Drop = true;
    }
    if (Drop)
      Ks.erase(Ks.begin() + I);
    else
      ++I;
  }
  if (!Aggressive)
    return;
  // Complete pass: a constraint is redundant iff the rest plus its
  // negation is infeasible.  Greedy in order; each removal is final.
  for (size_t I = 0; I < Ks.size();) {
    if (!Ks[I].isGe()) {
      ++I; // Keep equalities and strides: they carry the clause's shape.
      continue;
    }
    Conjunct Rest;
    for (const std::string &W : C.wildcards())
      Rest.addWildcard(W);
    for (size_t J = 0; J < Ks.size(); ++J)
      if (J != I)
        Rest.add(Ks[J]);
    if (contextImplies(Rest, Ks[I]))
      Ks.erase(Ks.begin() + I);
    else
      ++I;
  }
}

bool omega::implies(const Conjunct &P, const Conjunct &Q) {
  check(P.wildcards().empty() && Q.wildcards().empty(),
        "implies requires wildcard-free clauses");
  for (const Constraint &K : Q.constraints())
    if (!contextImplies(P, K))
      return false;
  return true;
}

bool omega::impliesConstraint(const Conjunct &P, const Constraint &K) {
  check(P.wildcards().empty(), "implies requires wildcard-free clauses");
  return contextImplies(P, K);
}

Conjunct omega::gist(const Conjunct &P, const Conjunct &Q) {
  check(P.wildcards().empty() && Q.wildcards().empty(),
        "gist requires wildcard-free clauses");
  std::vector<Constraint> Kept = P.constraints();
  // A constraint stays only if Q plus the other kept constraints does not
  // already imply it; guarantees (gist P given Q) ∧ Q ≡ P ∧ Q.
  for (size_t I = 0; I < Kept.size();) {
    Conjunct Ctx = Q;
    for (size_t J = 0; J < Kept.size(); ++J)
      if (J != I)
        Ctx.add(Kept[J]);
    if (contextImplies(Ctx, Kept[I]))
      Kept.erase(Kept.begin() + I);
    else
      ++I;
  }
  Conjunct Out;
  for (Constraint &K : Kept)
    Out.add(std::move(K));
  return Out;
}
