//===- omega/Cache.cpp - Memoized feasibility and projection -------------===//
//
// The public omega::feasible / omega::projectVars wrap the Projector-based
// implementations (Project.cpp) with a process-wide LRU cache keyed by the
// clause's canonical form.  Cache misses are computed on the *canonical*
// clause under a pinned wildcard scope, which makes the stored value a pure
// function of the key:
//
//   * canonicalConjunct sorts and normalizes constraints, so every clause
//     with the same key presents the Projector with an identical problem;
//   * the pinned scope ("k<depth>") means any wildcards minted during the
//     computation have names that depend only on the nesting depth of
//     memoized computations on this thread — not on global counter state or
//     on which thread (or in which order) racing misses run.  Returned
//     clauses are wildcard-free (the Omega.h invariant), so pinned names
//     never escape into results; they only steer internal elimination
//     order, identically for every computation of the same key.
//
// Together these make it safe for racing threads to populate the same key:
// whichever insert lands first, the value is the same.  See DESIGN.md §8.
//
//===----------------------------------------------------------------------===//

#include "omega/Omega.h"

#include "support/Cache.h"
#include "support/QueryContext.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <atomic>
#include <string>

using namespace omega;

namespace {

/// Default capacity per cache (feasibility and projection are separate
/// caches so cheap feasibility entries cannot evict expensive projections).
constexpr size_t DefaultCapacity = 1 << 14;

/// Lock-free mirror of the caches' capacity, read on every feasible() /
/// projectVars() call.  Going through LruCache::capacity() would take the
/// cache mutex even when memoization is disabled, serializing the workers.
std::atomic<size_t> CapacityKnob{DefaultCapacity};

LruCache<bool> &feasCache() {
  static LruCache<bool> C(DefaultCapacity);
  return C;
}

LruCache<std::vector<Conjunct>> &projCache() {
  static LruCache<std::vector<Conjunct>> C(DefaultCapacity);
  return C;
}

/// Nesting depth of in-flight memoized computations on this thread.  A
/// miss at depth d computes under scope "k<d>"; nested misses (e.g. the
/// feasibility probes a Disjoint projection makes) get "k<d+1>".  The
/// depth a computation sees depends only on the key's own recursion
/// structure, so pinned names are reproducible per key.
thread_local unsigned PinDepth = 0;

class PinnedScope {
public:
  PinnedScope() : Scope("k" + std::to_string(PinDepth++)) {}
  ~PinnedScope() { --PinDepth; }

private:
  WildcardScope Scope;
};

/// Whether the *current query* participates in memoization: the storage
/// must have capacity, and the active QueryContext (if any) must not have
/// opted out.  Queries outside any context (direct API probes in tests)
/// default to participating.
bool cacheEnabled() {
  if (CapacityKnob.load(std::memory_order_relaxed) == 0)
    return false;
  const QueryContext *Ctx = activeQueryContext();
  return !Ctx || Ctx->CacheEnabled;
}

std::string projectionKey(const CanonicalConjunct &Canon, const VarSet &Vars,
                          ShadowMode Mode) {
  std::string Key = Canon.Key;
  Key += "|P:";
  for (const std::string &V : Vars) {
    Key += V;
    Key += ',';
  }
  Key += "|M:";
  Key += std::to_string(static_cast<int>(Mode));
  return Key;
}

} // namespace

bool omega::feasible(const Conjunct &C) {
  pipelineStats().FeasibilityTests += 1;
  // The unconstrained clause is Z^n: feasible with no Projector run and no
  // cache traffic.  Negation-driven callers (coalescing, gist) produce a
  // steady trickle of these, and canonicalizing an empty clause just to
  // hit the cache costs more than answering it.
  if (C.constraints().empty())
    return true;
  if (!cacheEnabled())
    return detail::feasibleImpl(C);

  CanonicalConjunct Canon = canonicalConjunct(C);
  if (Canon.Key == "UNSAT")
    return false;
  if (std::optional<bool> Hit = feasCache().lookup(Canon.Key)) {
    pipelineStats().CacheHits += 1;
    traceCount(TraceCounter::CacheHits);
    return *Hit;
  }
  pipelineStats().CacheMisses += 1;
  traceCount(TraceCounter::CacheMisses);
  bool Result;
  {
    PinnedScope Pin;
    Result = detail::feasibleImpl(Canon.C);
  }
  pipelineStats().CacheEvictions += feasCache().insert(Canon.Key, Result);
  return Result;
}

std::vector<Conjunct> omega::projectVars(const Conjunct &C, const VarSet &Vars,
                                         ShadowMode Mode) {
  pipelineStats().ProjectionCalls += 1;
  TraceSpan Span("projectVars");
  Span.count(TraceCounter::ConstraintsIn, C.constraints().size());
  // Projection always runs on the canonical clause under a pinned scope —
  // even with the cache disabled — so its result (including constraint
  // order within returned clauses) is a function of the clause alone, not
  // of the cache knob.  feasible() below skips this on the uncached path
  // because a bool cannot carry ordering.
  CanonicalConjunct Canon = canonicalConjunct(C);
  if (!cacheEnabled()) {
    PinnedScope Pin;
    std::vector<Conjunct> Result = detail::projectVarsImpl(Canon.C, Vars, Mode);
    Span.count(TraceCounter::ClausesOut, Result.size());
    return Result;
  }

  std::string Key = projectionKey(Canon, Vars, Mode);
  if (std::optional<std::vector<Conjunct>> Hit = projCache().lookup(Key)) {
    pipelineStats().CacheHits += 1;
    Span.count(TraceCounter::CacheHits);
    Span.count(TraceCounter::ClausesOut, Hit->size());
    return std::move(*Hit);
  }
  pipelineStats().CacheMisses += 1;
  Span.count(TraceCounter::CacheMisses);
  std::vector<Conjunct> Result;
  {
    PinnedScope Pin;
    Result = detail::projectVarsImpl(Canon.C, Vars, Mode);
  }
  pipelineStats().CacheEvictions += projCache().insert(Key, Result);
  Span.count(TraceCounter::ClausesOut, Result.size());
  return Result;
}

void omega::configureConjunctCache(size_t Capacity) {
  CapacityKnob.store(Capacity, std::memory_order_relaxed);
  feasCache().setCapacity(Capacity);
  projCache().setCapacity(Capacity);
}

size_t omega::conjunctCacheCapacity() {
  return CapacityKnob.load(std::memory_order_relaxed);
}

void omega::clearConjunctCache() {
  feasCache().clear();
  projCache().clear();
  feasCache().resetStats();
  projCache().resetStats();
}

ConjunctCacheStats omega::conjunctCacheStats() {
  CacheStats F = feasCache().stats();
  CacheStats P = projCache().stats();
  ConjunctCacheStats Out;
  Out.Hits = F.Hits + P.Hits;
  Out.Misses = F.Misses + P.Misses;
  Out.Evictions = F.Evictions + P.Evictions;
  Out.Entries = feasCache().size() + projCache().size();
  return Out;
}
