//===- omega/Simplify.cpp - Formula simplification and disjoint DNF ------===//
//
// §2.5/§2.6 of the paper: lowering arbitrary Presburger formulas (∧ ∨ ¬ ∃ ∀)
// into disjunctive normal form over wildcard-free clauses, and §5.3's
// conversion of DNF into *disjoint* DNF (connected components, articulation
// point extraction, gist-reduced disjoint negation).
//
//===----------------------------------------------------------------------===//

#include "omega/Omega.h"

#include "analysis/Validator.h"
#include "presburger/Parallel.h"
#include "support/Budget.h"
#include "support/Error.h"
#include "support/QueryContext.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

using namespace omega;

namespace {

/// Alpha-renames free occurrences of the keys of \p Map in \p F.
Formula renameFree(const Formula &F,
                   const std::map<std::string, std::string> &Map) {
  if (Map.empty())
    return F;
  switch (F.kind()) {
  case FormulaKind::True:
  case FormulaKind::False:
    return F;
  case FormulaKind::Atom: {
    Constraint K = F.constraint();
    for (const auto &[From, To] : Map)
      K.renameVar(From, To);
    return Formula::atom(std::move(K));
  }
  case FormulaKind::And:
  case FormulaKind::Or:
  case FormulaKind::Not: {
    std::vector<Formula> Kids;
    Kids.reserve(F.children().size());
    for (const Formula &C : F.children())
      Kids.push_back(renameFree(C, Map));
    if (F.kind() == FormulaKind::And)
      return Formula::conj(std::move(Kids));
    if (F.kind() == FormulaKind::Or)
      return Formula::disj(std::move(Kids));
    return Formula::negation(std::move(Kids[0]));
  }
  case FormulaKind::Exists:
  case FormulaKind::Forall: {
    // Inner bindings shadow the renaming.
    std::map<std::string, std::string> Inner = Map;
    for (const std::string &V : F.quantified())
      Inner.erase(V);
    Formula Body = renameFree(F.body(), Inner);
    if (F.kind() == FormulaKind::Exists)
      return Formula::exists(F.quantified(), std::move(Body));
    return Formula::forall(F.quantified(), std::move(Body));
  }
  }
  fatalError("renameFree: unknown formula kind");
}

/// Drops clauses that are infeasible; normalizes the rest.  Normalization
/// here keeps the DNF invariant that every surviving constraint is a
/// fixpoint of Constraint::normalize() with no trivial or duplicate
/// constraints and no unused wildcard declarations.
void pruneInfeasible(std::vector<Conjunct> &Clauses) {
  // Per-clause feasibility tests are independent; survivors are compacted
  // in index order, matching the serial loop.
  std::vector<char> Keep(Clauses.size(), 0);
  forEachDisjunct(Clauses.size(), [&](size_t I) {
    if (!normalizeConjunct(Clauses[I]))
      return;
    Clauses[I].pruneUnusedWildcards();
    if (feasible(Clauses[I]))
      Keep[I] = 1;
  });
  std::vector<Conjunct> Kept;
  Kept.reserve(Clauses.size());
  for (size_t I = 0; I < Clauses.size(); ++I)
    if (Keep[I])
      Kept.push_back(std::move(Clauses[I]));
  Clauses = std::move(Kept);
}

/// Cross-product conjunction of two clause unions, pruning infeasible
/// combinations as they are built.
std::vector<Conjunct> crossConjoin(const std::vector<Conjunct> &A,
                                   const std::vector<Conjunct> &B) {
  if (A.empty() || B.empty())
    return {};
  TraceSpan Span("crossConjoin");
  Span.count(TraceCounter::ClausesIn, A.size() * B.size());
  // The pair space is the quantity that blows up in DNF conversion, so it
  // is what the clause budget meters (a container-size check, identical
  // across worker schedules).
  chargeClauses(A.size() * B.size(), "simplify");
  // Row-major pair index space; each feasible merge lands in its own slot,
  // so compacting the slots reproduces the serial double-loop order.
  std::vector<std::optional<Conjunct>> Merged(A.size() * B.size());
  forEachDisjunct(Merged.size(), [&](size_t I) {
    Conjunct M = Conjunct::merge(A[I / B.size()], B[I % B.size()]);
    if (feasible(M))
      Merged[I] = std::move(M);
  });
  std::vector<Conjunct> Out;
  for (std::optional<Conjunct> &M : Merged)
    if (M)
      Out.push_back(std::move(*M));
  Span.count(TraceCounter::ClausesOut, Out.size());
  return Out;
}

std::vector<Conjunct> toDNF(const Formula &F, ShadowMode Mode);

std::vector<Conjunct> negateDNF(const std::vector<Conjunct> &D) {
  std::vector<Conjunct> Out{Conjunct::trueConjunct()};
  for (const Conjunct &C : D) {
    Out = crossConjoin(Out, negateConjunct(C));
    if (Out.empty())
      break;
  }
  return Out;
}

std::vector<Conjunct> toDNF(const Formula &F, ShadowMode Mode) {
  switch (F.kind()) {
  case FormulaKind::True:
    return {Conjunct::trueConjunct()};
  case FormulaKind::False:
    return {};
  case FormulaKind::Atom: {
    Conjunct C;
    C.add(F.constraint());
    if (!feasible(C))
      return {};
    return {std::move(C)};
  }
  case FormulaKind::And: {
    std::vector<Conjunct> Acc{Conjunct::trueConjunct()};
    for (const Formula &Child : F.children()) {
      Acc = crossConjoin(Acc, toDNF(Child, Mode));
      if (Acc.empty())
        break;
    }
    return Acc;
  }
  case FormulaKind::Or: {
    // Disjunction children lower independently; concatenating the
    // per-child slots in index order matches the serial accumulation.
    const std::vector<Formula> &Kids = F.children();
    std::vector<std::vector<Conjunct>> Parts(Kids.size());
    forEachDisjunct(Kids.size(),
                    [&](size_t I) { Parts[I] = toDNF(Kids[I], Mode); });
    std::vector<Conjunct> Acc;
    for (std::vector<Conjunct> &D : Parts)
      Acc.insert(Acc.end(), std::make_move_iterator(D.begin()),
                 std::make_move_iterator(D.end()));
    chargeClauses(Acc.size(), "simplify");
    return Acc;
  }
  case FormulaKind::Not: {
    // Negation must be exact regardless of the requested approximation
    // direction (approximating inside a negation flips the direction;
    // handled conservatively by being exact).
    return negateDNF(toDNF(F.children()[0], ShadowMode::Exact));
  }
  case FormulaKind::Exists: {
    // Alpha-rename the bound variables to fresh wildcards, then project
    // them away to restore the wildcard-free invariant.
    std::map<std::string, std::string> Map;
    VarSet Fresh;
    for (const std::string &V : F.quantified()) {
      std::string W = freshWildcard();
      Map.emplace(V, W);
      Fresh.insert(W);
    }
    std::vector<Conjunct> Body = toDNF(renameFree(F.body(), Map), Mode);
    // Each body clause projects independently.
    std::vector<std::vector<Conjunct>> Parts(Body.size());
    forEachDisjunct(Body.size(), [&](size_t I) {
      Parts[I] = projectVars(Body[I], Fresh, Mode);
    });
    std::vector<Conjunct> Out;
    for (std::vector<Conjunct> &P : Parts)
      Out.insert(Out.end(), std::make_move_iterator(P.begin()),
                 std::make_move_iterator(P.end()));
    return Out;
  }
  case FormulaKind::Forall:
    // ∀x.F == ¬∃x.¬F.
    return toDNF(Formula::negation(Formula::exists(
                     F.quantified(), Formula::negation(F.body()))),
                 Mode);
  }
  fatalError("toDNF: unknown formula kind");
}

/// Effective support of a clause: variables whose value can change the
/// truth of some constraint.  For Ge/Eq any nonzero coefficient counts;
/// for a stride m | e a coefficient divisible by m is inert (changing that
/// variable moves e by a multiple of m).  Computed from the raw constraint
/// list, so it is sound for unnormalized input too.
VarSet effectiveSupport(const Conjunct &C) {
  VarSet Out;
  for (const Constraint &K : C.constraints())
    for (const auto &[V, Coeff] : K.expr().terms()) {
      if (K.isStride() && BigInt::floorMod(Coeff, K.modulus()).isZero())
        continue;
      Out.insert(V);
    }
  return Out;
}

/// A ⊆ B over sorted variable sets.
bool supportSubset(const VarSet &A, const VarSet &B) {
  return std::includes(B.begin(), B.end(), A.begin(), A.end());
}

/// Removes clauses subsumed by another clause (step 1 of §5.3).  Callers
/// run this after pruneInfeasible, so every clause is feasible — which
/// licenses the support prefilter: a feasible clause I is invariant along
/// any variable outside its effective support, so I ⊆ J is impossible
/// unless effsupp(J) ⊆ effsupp(I) (J would have to exclude some shift of
/// a point of I along a variable I cannot see).
void removeSubsumed(std::vector<Conjunct> &Clauses) {
  std::vector<VarSet> Supp;
  Supp.reserve(Clauses.size());
  for (const Conjunct &C : Clauses)
    Supp.push_back(effectiveSupport(C));
  for (size_t I = 0; I < Clauses.size();) {
    bool Subsumed = false;
    for (size_t J = 0; J < Clauses.size() && !Subsumed; ++J) {
      if (I == J || !supportSubset(Supp[J], Supp[I]))
        continue;
      if (implies(Clauses[I], Clauses[J])) {
        // Tie-break identical clauses: drop the later one.  The reverse
        // implication needs no probes unless the supports allow it.
        if (!(supportSubset(Supp[I], Supp[J]) &&
              implies(Clauses[J], Clauses[I]) && J > I))
          Subsumed = true;
      }
    }
    if (Subsumed) {
      Clauses.erase(Clauses.begin() + I);
      Supp.erase(Supp.begin() + I);
    } else
      ++I;
  }
}

/// Brute-force articulation check: does removing node \p Skip disconnect
/// the component \p Nodes of the overlap graph \p Adj?
bool isArticulation(const std::vector<size_t> &Nodes,
                    const std::vector<std::vector<bool>> &Adj, size_t Skip) {
  std::vector<size_t> Rest;
  for (size_t N : Nodes)
    if (N != Skip)
      Rest.push_back(N);
  if (Rest.size() <= 1)
    return false;
  // BFS over Rest.
  std::vector<bool> Seen(Adj.size(), false);
  std::vector<size_t> Work{Rest[0]};
  Seen[Rest[0]] = true;
  size_t Count = 1;
  while (!Work.empty()) {
    size_t N = Work.back();
    Work.pop_back();
    for (size_t M : Rest)
      if (!Seen[M] && Adj[N][M]) {
        Seen[M] = true;
        ++Count;
        Work.push_back(M);
      }
  }
  return Count != Rest.size();
}

std::vector<Conjunct> makeDisjointComponent(std::vector<Conjunct> Clauses);
std::vector<Conjunct> makeDisjointImpl(std::vector<Conjunct> Clauses);

/// Per-variable bounds harvested syntactically from single-variable
/// inequalities and equalities.  The box over-approximates the clause
/// (couplings and strides are ignored), so two clauses whose boxes are
/// disjoint in any shared dimension provably share no integer point — an
/// overlap edge answered with no feasible() call.
using SyntacticBox =
    std::map<VarId, std::pair<std::optional<BigInt>, std::optional<BigInt>>>;

SyntacticBox syntacticBox(const Conjunct &C) {
  SyntacticBox Box;
  for (const Constraint &K : C.constraints()) {
    if (K.isStride() || K.expr().numVars() != 1)
      continue;
    const auto &[V, A] = *K.expr().terms().begin();
    const BigInt &Cst = K.expr().constant();
    auto &[Lo, Hi] = Box[V];
    // a*v + c >= 0 bounds v below when a > 0 (v >= ceil(-c/a)) and above
    // when a < 0 (v <= floor(c/-a)); an equality contributes both sides.
    auto ApplyGe = [&](const BigInt &Coeff, const BigInt &Konst) {
      if (Coeff.isPositive()) {
        BigInt Bound = BigInt::ceilDiv(-Konst, Coeff);
        if (!Lo || Bound > *Lo)
          Lo = std::move(Bound);
      } else {
        BigInt Bound = BigInt::floorDiv(Konst, -Coeff);
        if (!Hi || Bound < *Hi)
          Hi = std::move(Bound);
      }
    };
    ApplyGe(A, Cst);
    if (K.isEq())
      ApplyGe(-A, -Cst);
  }
  return Box;
}

/// True iff the boxes cannot intersect: some variable bounded in both has
/// non-overlapping ranges.  A sound "no shared point" proof, never a
/// proof of overlap.
bool boxesDisjoint(const SyntacticBox &A, const SyntacticBox &B) {
  for (const auto &[V, RA] : A) {
    auto It = B.find(V);
    if (It == B.end())
      continue;
    const auto &RB = It->second;
    if ((RA.second && RB.first && *RA.second < *RB.first) ||
        (RB.second && RA.first && *RB.second < *RA.first))
      return true;
  }
  return false;
}

/// Builds the symmetric clause-overlap graph (edge iff two clauses share an
/// integer point).  Pairs whose syntactic boxes are disjoint are rejected
/// up front; the rest run the feasibility test.  Each row's pair tests run
/// as one fan-out task; task I writes only row I, and the lower triangle
/// is mirrored afterwards.
std::vector<std::vector<bool>>
overlapGraph(const std::vector<Conjunct> &Clauses) {
  size_t N = Clauses.size();
  std::vector<std::vector<bool>> Adj(N, std::vector<bool>(N, false));
  std::vector<SyntacticBox> Boxes;
  Boxes.reserve(N);
  for (const Conjunct &C : Clauses)
    Boxes.push_back(syntacticBox(C));
  forEachDisjunct(N, [&](size_t I) {
    for (size_t J = I + 1; J < N; ++J) {
      if (boxesDisjoint(Boxes[I], Boxes[J]))
        continue;
      if (feasible(Conjunct::merge(Clauses[I], Clauses[J])))
        Adj[I][J] = true;
    }
  });
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I + 1; J < N; ++J)
      if (Adj[I][J])
        Adj[J][I] = true;
  return Adj;
}

#ifdef OMEGA_VALIDATE
/// Shared boundary check: clauses out of simplify / makeDisjoint must be
/// wildcard-free, normalized, feasible, and (when promised) disjoint.
void validateBoundary(const std::vector<Conjunct> &Clauses, bool Disjoint,
                      const char *Boundary) {
  ValidatorOptions VO;
  VO.RequireWildcardFree = true;
  VO.RequireNormalized = true;
  VO.RequireDisjoint = Disjoint;
  VO.Overlaps = [](const Conjunct &A, const Conjunct &B) {
    return feasible(Conjunct::merge(A, B));
  };
  validateOrDie(validateDnf(Clauses, std::move(VO)), Boundary);
}
#endif

} // namespace

std::vector<Conjunct> omega::negateConjunct(const Conjunct &C) {
  check(C.wildcards().empty(),
        "negateConjunct requires a wildcard-free clause (simplify first)");
  // Disjoint negation (§5.3 step 4):
  //   ¬(c1 ∧ c2 ∧ ...) = ¬c1 + (c1 ∧ ¬c2) + (c1 ∧ c2 ∧ ¬c3) + ...
  // and each ¬ci expands into branches that are themselves disjoint.
  std::vector<Conjunct> Out;
  Conjunct Prefix;
  for (const Constraint &K : C.constraints()) {
    std::vector<Constraint> Branches;
    switch (K.kind()) {
    case ConstraintKind::Ge:
      Branches.push_back(Constraint::ge(-K.expr() - AffineExpr(1)));
      break;
    case ConstraintKind::Eq:
      Branches.push_back(Constraint::ge(K.expr() - AffineExpr(1)));
      Branches.push_back(Constraint::ge(-K.expr() - AffineExpr(1)));
      break;
    case ConstraintKind::Stride:
      for (BigInt R(1); R < K.modulus(); ++R)
        Branches.push_back(
            Constraint::stride(K.modulus(), K.expr() - AffineExpr(R)));
      break;
    }
    for (Constraint &B : Branches) {
      Conjunct Piece = Prefix;
      Piece.add(std::move(B));
      if (feasible(Piece))
        Out.push_back(std::move(Piece));
    }
    Prefix.add(K);
  }
  return Out;
}

std::vector<Conjunct> omega::simplify(const Formula &F, SimplifyOptions Opts) {
  check((!Opts.Disjoint || Opts.Mode == ShadowMode::Exact),
        "disjoint DNF requires exact simplification");
  TraceSpan Span("simplify");
  std::vector<Conjunct> D;
  {
    PhaseTimer Timer(pipelineStats().SimplifyNanos);
    {
      TraceSpan DnfSpan("toDNF");
      D = toDNF(F, Opts.Mode);
      DnfSpan.count(TraceCounter::ClausesOut, D.size());
    }
    pruneInfeasible(D);
    pipelineStats().ClausesSimplified += D.size();
    forEachDisjunct(D.size(), [&](size_t I) {
      removeRedundant(D[I], /*Aggressive=*/true);
    });
    removeSubsumed(D);
  }
  if (Opts.Disjoint) {
    PhaseTimer Timer(pipelineStats().DisjointNanos);
    TraceSpan DisjointSpan("makeDisjoint");
    DisjointSpan.count(TraceCounter::ClausesIn, D.size());
    D = makeDisjointImpl(std::move(D));
    DisjointSpan.count(TraceCounter::ClausesOut, D.size());
  }
  coalesceClauses(D);
#ifdef OMEGA_VALIDATE
  validateBoundary(D, Opts.Disjoint, "omega::simplify");
#endif
  Span.count(TraceCounter::ClausesOut, D.size());
  return D;
}

namespace {

/// True iff every variable of \p K is bound by \p Values and K fails
/// there.  Unbound variables make the answer "unknown", reported as
/// false (not a proven violation).
bool violatesAt(const Constraint &K, const Assignment &Values) {
  for (const auto &[V, Coeff] : K.expr().terms()) {
    (void)Coeff;
    if (!Values.count(V))
      return false;
  }
  return !K.holds(Values);
}

/// Shared pair-merge core: candidate construction plus the union-equality
/// check, with the per-clause disjoint negations hoisted to the caller
/// and (optionally) a known sample point of each clause.  A sample of B
/// refutes "B implies K" arithmetically whenever K fails at it, skipping
/// the Omega probe; the answer is unchanged because the probe would have
/// returned false (the sample is a point of B violating K).
std::optional<Conjunct>
coalescePairImpl(const Conjunct &A, const Conjunct &B,
                 const std::vector<Conjunct> &NegA,
                 const std::vector<Conjunct> &NegB, const Assignment *SA,
                 const Assignment *SB) {
  pipelineStats().CoalescePairs += 1;
  // Candidate: constraints of one side the other side also satisfies.  It
  // contains A ∨ B by construction; it equals the union iff it has no
  // point outside both.  Cross-side duplicates are dropped via an ordered
  // constraint set (operator< is consistent with operator==) instead of a
  // linear scan of the candidate per constraint.
  Conjunct Candidate;
  std::set<Constraint> Present;
  for (const Constraint &K : A.constraints()) {
    if (SB && violatesAt(K, *SB))
      continue;
    if (impliesConstraint(B, K)) {
      Present.insert(K);
      Candidate.add(K);
    }
  }
  for (const Constraint &K : B.constraints()) {
    if (Present.count(K))
      continue;
    if (SA && violatesAt(K, *SA))
      continue;
    if (impliesConstraint(A, K)) {
      Present.insert(K);
      Candidate.add(K);
    }
  }
  // Candidate \ (A ∨ B) must be empty: for every branch pair of the two
  // negations, Candidate ∧ ¬A-branch ∧ ¬B-branch must be infeasible.
  for (const Conjunct &NA : NegA)
    for (const Conjunct &NB : NegB) {
      Conjunct Test = Candidate;
      Test.addAll(NA);
      Test.addAll(NB);
      if (feasible(Test))
        return std::nullopt;
    }
  removeRedundant(Candidate, /*Aggressive=*/true);
  return Candidate;
}

/// Tries to prove, by pure arithmetic, that coalescing \p A and \p B must
/// fail.  U over-approximates every possible candidate's constraint list:
/// a constraint enters the candidate only if the other clause implies it,
/// which that clause's sample point refutes whenever the constraint fails
/// there — so U (the constraints *not* refuted) is a superset, and
/// region(U) ⊆ region(candidate).  Any point satisfying U but neither A
/// nor B therefore witnesses candidate \ (A ∨ B) ≠ ∅, which is exactly
/// the condition under which the full evaluation rejects the pair.  Trial
/// points are a small battery built from the two samples:
/// single-coordinate exchanges and the floored midpoint with ±1 nudges —
/// the places a "gap" between two clauses shows up.
bool witnessSeparates(const Conjunct &A, const Conjunct &B,
                      const Assignment &SA, const Assignment &SB) {
  std::vector<const Constraint *> U;
  for (const Constraint &K : A.constraints())
    if (!violatesAt(K, SB))
      U.push_back(&K);
  for (const Constraint &K : B.constraints())
    if (!violatesAt(K, SA))
      U.push_back(&K);

  // Each sample binds its own clause's variables; extending each with the
  // other's bindings makes every trial point evaluable against A, B and U.
  Assignment BaseA = SA, BaseB = SB;
  for (const auto &[V, Val] : SB)
    BaseA.emplace(V, Val); // keeps SA's value where both bind
  for (const auto &[V, Val] : SA)
    BaseB.emplace(V, Val);

  auto Separates = [&](const Assignment &P) {
    for (const Constraint *K : U)
      if (!K->holds(P))
        return false;
    return !A.contains(P) && !B.contains(P);
  };

  std::vector<Assignment> Trials;
  // Single-coordinate exchanges, both directions.
  for (const auto &[V, ValB] : SB) {
    auto It = SA.find(V);
    if (It == SA.end() || It->second == ValB)
      continue;
    Assignment P = BaseA;
    P[V] = ValB;
    Trials.push_back(std::move(P));
    Assignment Q = BaseB;
    Q[V] = It->second;
    Trials.push_back(std::move(Q));
  }
  // The floored midpoint, plus single-coordinate ±1 nudges of it.
  Assignment Mid = BaseA;
  bool AnyDiff = false;
  for (auto &[V, Val] : Mid) {
    auto ItA = SA.find(V);
    auto ItB = SB.find(V);
    if (ItA != SA.end() && ItB != SB.end() && ItA->second != ItB->second) {
      Val = BigInt::floorDiv(ItA->second + ItB->second, BigInt(2));
      AnyDiff = true;
    }
  }
  if (AnyDiff) {
    for (const auto &[V, Val] : Mid) {
      Assignment P = Mid;
      P[V] = Val + BigInt(1);
      Trials.push_back(std::move(P));
      Assignment Q = Mid;
      Q[V] = Val - BigInt(1);
      Trials.push_back(std::move(Q));
    }
    Trials.push_back(std::move(Mid));
  }

  for (const Assignment &P : Trials)
    if (Separates(P))
      return true;
  return false;
}

/// Per-clause state for the coalesce worklist: cheap syntactic facts
/// eagerly, Omega-derived facts (sample point, disjoint negation) lazily
/// and at most once per clause — the seed algorithm recomputed both
/// negations inside every pair test.
struct CoalesceClauseInfo {
  bool HasWildcards = false;
  VarSet Support;
  bool SampleReady = false;
  std::optional<Assignment> Sample;
  bool NegReady = false;
  std::vector<Conjunct> Negation;
};

/// The coalesce engine (DESIGN.md §15): an indexed incremental worklist
/// that reproduces the seed algorithm's merge sequence exactly.  Every
/// clause carries a stable id; evaluated pair outcomes are memoized by
/// id-pair, so the restart-scan after a merge costs hash lookups instead
/// of re-running pair tests, and only pairs involving the merged clause
/// are ever evaluated afresh.  Pair evaluations are pure functions of the
/// two clauses, so prefiltering, memoization and parallel batch order
/// cannot change which merge the position-ordered scan applies first.
class CoalesceWorklist {
public:
  explicit CoalesceWorklist(std::vector<Conjunct> &Clauses)
      : Clauses(Clauses) {
    Ids.reserve(Clauses.size());
    for (const Conjunct &C : Clauses)
      Ids.push_back(newInfo(C));
    // Results are kept, so fanning out pays iff independent pair tests can
    // genuinely run concurrently — not on a single-core host, where the
    // PR 7 prepass ran the same work twice.
    UseParallel = effectiveParallelWidth() >= 2 && !wildcardScopeActive() &&
                  !ThreadPool::onWorkerThread();
  }

  void run() {
    while (applyFirstMerge())
      ;
  }

private:
  std::vector<Conjunct> &Clauses;
  std::vector<size_t> Ids; ///< Position -> stable clause id.
  std::vector<CoalesceClauseInfo> Infos;        ///< Indexed by id.
  std::unordered_map<uint64_t, std::optional<Conjunct>> Memo;
  bool UseParallel = false;

  size_t newInfo(const Conjunct &C) {
    CoalesceClauseInfo Info;
    Info.HasWildcards = !C.wildcards().empty();
    if (!Info.HasWildcards)
      Info.Support = effectiveSupport(C);
    Infos.push_back(std::move(Info));
    return Infos.size() - 1;
  }

  CoalesceClauseInfo &info(size_t Pos) { return Infos[Ids[Pos]]; }

  uint64_t pairKey(size_t I, size_t J) const {
    uint64_t A = Ids[I], B = Ids[J];
    if (A > B)
      std::swap(A, B);
    return (A << 32) | B;
  }

  void ensureSample(size_t Pos) {
    CoalesceClauseInfo &I = info(Pos);
    if (!I.SampleReady) {
      I.Sample = samplePoint(Clauses[Pos]);
      I.SampleReady = true;
    }
  }

  void ensureNegation(size_t Pos) {
    CoalesceClauseInfo &I = info(Pos);
    if (!I.NegReady) {
      I.Negation = negateConjunct(Clauses[Pos]);
      I.NegReady = true;
    }
  }

  /// Clause-index prefilter: proves "no merge" with no per-pair Omega
  /// call, or returns false when a full evaluation is needed.  Sound
  /// shortcuts only — the full test would reach the same verdict.
  bool prefilterRejects(size_t I, size_t J) {
    const CoalesceClauseInfo &IA = info(I), &IB = info(J);
    // coalescePair is defined on wildcard-free clauses only.
    if (IA.HasWildcards || IB.HasWildcards)
      return true;
    ensureSample(I);
    ensureSample(J);
    const std::optional<Assignment> &SA = info(I).Sample;
    const std::optional<Assignment> &SB = info(J).Sample;
    // The shortcuts below assume both clauses are nonempty; without a
    // sample (infeasible clause) fall through to the full test.
    if (!SA || !SB)
      return false;
    // Incomparable effective supports: a successful merge would force
    // each side to contain the other (each is invariant along a variable
    // the other constrains), i.e. A = B — contradicting incomparability.
    if (!supportSubset(IA.Support, IB.Support) &&
        !supportSubset(IB.Support, IA.Support))
      return true;
    return witnessSeparates(Clauses[I], Clauses[J], *SA, *SB);
  }

  std::optional<Conjunct> evaluate(size_t I, size_t J) {
    ensureNegation(I);
    ensureNegation(J);
    const CoalesceClauseInfo &IA = info(I), &IB = info(J);
    return coalescePairImpl(Clauses[I], Clauses[J], IA.Negation, IB.Negation,
                            IA.Sample ? &*IA.Sample : nullptr,
                            IB.Sample ? &*IB.Sample : nullptr);
  }

  /// Computes and memoizes the outcome for the pair at positions (I, J).
  void decide(size_t I, size_t J) {
    if (prefilterRejects(I, J)) {
      pipelineStats().CoalescePrefiltered += 1;
      Memo.emplace(pairKey(I, J), std::nullopt);
      return;
    }
    Memo.emplace(pairKey(I, J), evaluate(I, J));
  }

  /// Parallel mode: walk unknown pairs in scan order starting at
  /// (I0, J0), decide prefilterable ones inline, and evaluate the next
  /// chunk of surviving pairs as one pool batch whose results are all
  /// kept.  Per-clause samples and negations are materialized serially
  /// before the batch, so workers only read shared clause state and write
  /// their own slot; each task runs under a private wildcard scope named
  /// by the id pair (outside the deterministic namespace — nothing a pair
  /// test mints escapes into its result) with trace spans re-parented to
  /// the coalesce span.  Chunking bounds the waste when an early pair
  /// merges: at most one chunk of evaluations beyond what the serial scan
  /// would have run.
  void decideChunkFrom(size_t I0, size_t J0) {
    const size_t ChunkSize =
        std::max<size_t>(4 * effectiveParallelWidth(), 8);
    std::vector<std::pair<size_t, size_t>> Batch;
    for (size_t I = I0; I < Clauses.size() && Batch.size() < ChunkSize; ++I)
      for (size_t J = I == I0 ? J0 : I + 1;
           J < Clauses.size() && Batch.size() < ChunkSize; ++J) {
        if (Memo.count(pairKey(I, J)))
          continue;
        if (prefilterRejects(I, J)) {
          pipelineStats().CoalescePrefiltered += 1;
          Memo.emplace(pairKey(I, J), std::nullopt);
          continue;
        }
        ensureNegation(I);
        ensureNegation(J);
        Batch.emplace_back(I, J);
      }
    if (Batch.empty())
      return;
    if (Batch.size() == 1) {
      Memo.emplace(pairKey(Batch[0].first, Batch[0].second),
                   evaluate(Batch[0].first, Batch[0].second));
      return;
    }
    std::vector<std::optional<Conjunct>> Slots(Batch.size());
    pipelineStats().ParallelBatches += 1;
    pipelineStats().ParallelTasks += Batch.size();
    const uint64_t TraceParent = currentTraceSpan();
    // Direct pool use (not via forEachDisjunct), so the enqueuing thread's
    // query environment is re-installed by hand: pair evaluations read the
    // cache knob and tally counters, which must attribute to this query.
    const QueryEnvironment Env = captureQueryEnvironment();
    const unsigned Width = effectiveParallelWidth();
    ThreadPool::instance().run(Batch.size(), Width, [&](size_t T) {
      QueryEnvironmentScope EnvScope(Env);
      TraceTaskScope TraceScope(TraceParent);
      auto [I, J] = Batch[T];
      WildcardScope Scope("c" + std::to_string(Ids[I]) + "x" +
                          std::to_string(Ids[J]));
      const CoalesceClauseInfo &IA = Infos[Ids[I]], &IB = Infos[Ids[J]];
      Slots[T] = coalescePairImpl(Clauses[I], Clauses[J], IA.Negation,
                                  IB.Negation,
                                  IA.Sample ? &*IA.Sample : nullptr,
                                  IB.Sample ? &*IB.Sample : nullptr);
    });
    for (size_t T = 0; T < Batch.size(); ++T)
      Memo.emplace(pairKey(Batch[T].first, Batch[T].second),
                   std::move(Slots[T]));
  }

  /// One step of the seed algorithm: find the first mergeable pair in
  /// position order and apply it.  Returns false when no pair merges.
  bool applyFirstMerge() {
    for (size_t I = 0; I < Clauses.size(); ++I)
      for (size_t J = I + 1; J < Clauses.size(); ++J) {
        auto It = Memo.find(pairKey(I, J));
        if (It == Memo.end()) {
          if (UseParallel)
            decideChunkFrom(I, J);
          else
            decide(I, J);
          It = Memo.find(pairKey(I, J));
        }
        if (!It->second)
          continue;
        // First mergeable pair in scan order — identical to the seed
        // algorithm's restart-scan choice, because pair outcomes are pure
        // and skipped pairs are skipped only on a memoized "no merge".
        Clauses[I] = std::move(*It->second);
        Clauses.erase(Clauses.begin() + J);
        Ids[I] = newInfo(Clauses[I]);
        Ids.erase(Ids.begin() + J);
        pipelineStats().CoalesceMerges += 1;
        return true;
      }
    return false;
  }
};

} // namespace

std::optional<Conjunct> omega::coalescePair(const Conjunct &A,
                                            const Conjunct &B) {
  if (!A.wildcards().empty() || !B.wildcards().empty())
    return std::nullopt;
  return coalescePairImpl(A, B, negateConjunct(A), negateConjunct(B),
                          /*SA=*/nullptr, /*SB=*/nullptr);
}

void omega::coalesceClauses(std::vector<Conjunct> &Clauses) {
  PhaseTimer Timer(pipelineStats().CoalesceNanos);
  TraceSpan Span("coalesce");
  Span.count(TraceCounter::ClausesIn, Clauses.size());
  if (Clauses.size() >= 2)
    CoalesceWorklist(Clauses).run();
  Span.count(TraceCounter::ClausesOut, Clauses.size());
}

bool omega::pairwiseDisjoint(const std::vector<Conjunct> &Clauses) {
  for (size_t I = 0; I < Clauses.size(); ++I)
    for (size_t J = I + 1; J < Clauses.size(); ++J)
      if (feasible(Conjunct::merge(Clauses[I], Clauses[J])))
        return false;
  return true;
}

namespace {

std::vector<Conjunct> makeDisjointComponent(std::vector<Conjunct> Clauses) {
  if (Clauses.size() <= 1)
    return Clauses;

  // Rebuild the overlap graph for this component.
  size_t N = Clauses.size();
  std::vector<std::vector<bool>> Adj = overlapGraph(Clauses);

  std::vector<size_t> Nodes(N);
  for (size_t I = 0; I < N; ++I)
    Nodes[I] = I;

  // Step 3: prefer an articulation point; tie-break on fewest constraints.
  size_t Pick = N;
  bool PickArt = false;
  for (size_t I = 0; I < N; ++I) {
    bool Art = isArticulation(Nodes, Adj, I);
    size_t Size = Clauses[I].constraints().size();
    if (Pick == N || (Art && !PickArt) ||
        (Art == PickArt && Size < Clauses[Pick].constraints().size())) {
      Pick = I;
      PickArt = Art;
    }
  }

  Conjunct C1 = std::move(Clauses[Pick]);
  Clauses.erase(Clauses.begin() + Pick);

  // Step 4: reduce C1 against the rest via gist, then distribute its
  // disjoint negation.
  Conjunct Reduced;
  {
    // gist C1 given (C2 ∨ ... ∨ Cq) = ∧ gist(C1 given Cj), deduped via an
    // ordered set (operator< is consistent with operator==) while keeping
    // first-seen order.
    std::vector<Constraint> Acc;
    std::set<Constraint> Seen;
    for (const Conjunct &Cj : Clauses) {
      Conjunct G = gist(C1, Cj);
      for (const Constraint &K : G.constraints())
        if (Seen.insert(K).second)
          Acc.push_back(K);
    }
    for (Constraint &K : Acc)
      Reduced.add(std::move(K));
  }

  // Groups from distinct negation pieces are disjoint, so each piece's
  // intersection-and-recursion is an independent work item; groups are
  // appended in piece order, matching the serial loop.
  std::vector<Conjunct> Pieces = negateConjunct(Reduced);
  std::vector<std::vector<Conjunct>> Groups(Pieces.size());
  forEachDisjunct(Pieces.size(), [&](size_t PI) {
    std::vector<Conjunct> Group;
    for (const Conjunct &Cj : Clauses) {
      Conjunct M = Conjunct::merge(Cj, Pieces[PI]);
      if (feasible(M)) {
        removeRedundant(M, /*Aggressive=*/true);
        Group.push_back(std::move(M));
      }
    }
    // Within a group, recurse.
    Groups[PI] = makeDisjointImpl(std::move(Group));
  });

  std::vector<Conjunct> Result{std::move(C1)};
  for (std::vector<Conjunct> &Group : Groups)
    Result.insert(Result.end(), std::make_move_iterator(Group.begin()),
                  std::make_move_iterator(Group.end()));
  return Result;
}

std::vector<Conjunct> makeDisjointImpl(std::vector<Conjunct> Clauses) {
  chargeClauses(Clauses.size(), "disjoint");
  pruneInfeasible(Clauses);
  removeSubsumed(Clauses);
  if (Clauses.size() <= 1)
    return Clauses;

  // Step 2: connected components of the overlap graph.
  size_t N = Clauses.size();
  std::vector<std::vector<bool>> Adj = overlapGraph(Clauses);

  std::vector<int> Comp(N, -1);
  int NumComps = 0;
  for (size_t I = 0; I < N; ++I) {
    if (Comp[I] >= 0)
      continue;
    std::vector<size_t> Work{I};
    Comp[I] = NumComps;
    while (!Work.empty()) {
      size_t K = Work.back();
      Work.pop_back();
      for (size_t J = 0; J < N; ++J)
        if (Adj[K][J] && Comp[J] < 0) {
          Comp[J] = NumComps;
          Work.push_back(J);
        }
    }
    ++NumComps;
  }

  std::vector<Conjunct> Result;
  for (int G = 0; G < NumComps; ++G) {
    std::vector<Conjunct> Group;
    for (size_t I = 0; I < N; ++I)
      if (Comp[I] == G)
        Group.push_back(Clauses[I]);
    for (Conjunct &C : makeDisjointComponent(std::move(Group)))
      Result.push_back(std::move(C));
  }
  return Result;
}

} // namespace

std::vector<Conjunct> omega::makeDisjoint(std::vector<Conjunct> Clauses) {
  PhaseTimer Timer(pipelineStats().DisjointNanos);
  TraceSpan Span("makeDisjoint");
  Span.count(TraceCounter::ClausesIn, Clauses.size());
  std::vector<Conjunct> Result = makeDisjointImpl(std::move(Clauses));
  Span.count(TraceCounter::ClausesOut, Result.size());
#ifdef OMEGA_VALIDATE
  // Validate only at the public entry: the recursion above would otherwise
  // re-check every suffix of the clause list, turning the O(n²) overlap
  // test into O(depth · n²).
  validateBoundary(Result, /*Disjoint=*/true, "omega::makeDisjoint");
#endif
  return Result;
}

Formula omega::renameFreeVars(const Formula &F,
                              const std::map<std::string, std::string> &Map) {
  return renameFree(F, Map);
}
