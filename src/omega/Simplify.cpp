//===- omega/Simplify.cpp - Formula simplification and disjoint DNF ------===//
//
// §2.5/§2.6 of the paper: lowering arbitrary Presburger formulas (∧ ∨ ¬ ∃ ∀)
// into disjunctive normal form over wildcard-free clauses, and §5.3's
// conversion of DNF into *disjoint* DNF (connected components, articulation
// point extraction, gist-reduced disjoint negation).
//
//===----------------------------------------------------------------------===//

#include "omega/Omega.h"

#include "analysis/Validator.h"
#include "presburger/Parallel.h"
#include "support/Budget.h"
#include "support/Error.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <map>
#include <optional>
#include <thread>

using namespace omega;

namespace {

/// Alpha-renames free occurrences of the keys of \p Map in \p F.
Formula renameFree(const Formula &F,
                   const std::map<std::string, std::string> &Map) {
  if (Map.empty())
    return F;
  switch (F.kind()) {
  case FormulaKind::True:
  case FormulaKind::False:
    return F;
  case FormulaKind::Atom: {
    Constraint K = F.constraint();
    for (const auto &[From, To] : Map)
      K.renameVar(From, To);
    return Formula::atom(std::move(K));
  }
  case FormulaKind::And:
  case FormulaKind::Or:
  case FormulaKind::Not: {
    std::vector<Formula> Kids;
    Kids.reserve(F.children().size());
    for (const Formula &C : F.children())
      Kids.push_back(renameFree(C, Map));
    if (F.kind() == FormulaKind::And)
      return Formula::conj(std::move(Kids));
    if (F.kind() == FormulaKind::Or)
      return Formula::disj(std::move(Kids));
    return Formula::negation(std::move(Kids[0]));
  }
  case FormulaKind::Exists:
  case FormulaKind::Forall: {
    // Inner bindings shadow the renaming.
    std::map<std::string, std::string> Inner = Map;
    for (const std::string &V : F.quantified())
      Inner.erase(V);
    Formula Body = renameFree(F.body(), Inner);
    if (F.kind() == FormulaKind::Exists)
      return Formula::exists(F.quantified(), std::move(Body));
    return Formula::forall(F.quantified(), std::move(Body));
  }
  }
  fatalError("renameFree: unknown formula kind");
}

/// Drops clauses that are infeasible; normalizes the rest.  Normalization
/// here keeps the DNF invariant that every surviving constraint is a
/// fixpoint of Constraint::normalize() with no trivial or duplicate
/// constraints and no unused wildcard declarations.
void pruneInfeasible(std::vector<Conjunct> &Clauses) {
  // Per-clause feasibility tests are independent; survivors are compacted
  // in index order, matching the serial loop.
  std::vector<char> Keep(Clauses.size(), 0);
  forEachDisjunct(Clauses.size(), [&](size_t I) {
    if (!normalizeConjunct(Clauses[I]))
      return;
    Clauses[I].pruneUnusedWildcards();
    if (feasible(Clauses[I]))
      Keep[I] = 1;
  });
  std::vector<Conjunct> Kept;
  Kept.reserve(Clauses.size());
  for (size_t I = 0; I < Clauses.size(); ++I)
    if (Keep[I])
      Kept.push_back(std::move(Clauses[I]));
  Clauses = std::move(Kept);
}

/// Cross-product conjunction of two clause unions, pruning infeasible
/// combinations as they are built.
std::vector<Conjunct> crossConjoin(const std::vector<Conjunct> &A,
                                   const std::vector<Conjunct> &B) {
  if (A.empty() || B.empty())
    return {};
  TraceSpan Span("crossConjoin");
  Span.count(TraceCounter::ClausesIn, A.size() * B.size());
  // The pair space is the quantity that blows up in DNF conversion, so it
  // is what the clause budget meters (a container-size check, identical
  // across worker schedules).
  chargeClauses(A.size() * B.size(), "simplify");
  // Row-major pair index space; each feasible merge lands in its own slot,
  // so compacting the slots reproduces the serial double-loop order.
  std::vector<std::optional<Conjunct>> Merged(A.size() * B.size());
  forEachDisjunct(Merged.size(), [&](size_t I) {
    Conjunct M = Conjunct::merge(A[I / B.size()], B[I % B.size()]);
    if (feasible(M))
      Merged[I] = std::move(M);
  });
  std::vector<Conjunct> Out;
  for (std::optional<Conjunct> &M : Merged)
    if (M)
      Out.push_back(std::move(*M));
  Span.count(TraceCounter::ClausesOut, Out.size());
  return Out;
}

std::vector<Conjunct> toDNF(const Formula &F, ShadowMode Mode);

std::vector<Conjunct> negateDNF(const std::vector<Conjunct> &D) {
  std::vector<Conjunct> Out{Conjunct::trueConjunct()};
  for (const Conjunct &C : D) {
    Out = crossConjoin(Out, negateConjunct(C));
    if (Out.empty())
      break;
  }
  return Out;
}

std::vector<Conjunct> toDNF(const Formula &F, ShadowMode Mode) {
  switch (F.kind()) {
  case FormulaKind::True:
    return {Conjunct::trueConjunct()};
  case FormulaKind::False:
    return {};
  case FormulaKind::Atom: {
    Conjunct C;
    C.add(F.constraint());
    if (!feasible(C))
      return {};
    return {std::move(C)};
  }
  case FormulaKind::And: {
    std::vector<Conjunct> Acc{Conjunct::trueConjunct()};
    for (const Formula &Child : F.children()) {
      Acc = crossConjoin(Acc, toDNF(Child, Mode));
      if (Acc.empty())
        break;
    }
    return Acc;
  }
  case FormulaKind::Or: {
    // Disjunction children lower independently; concatenating the
    // per-child slots in index order matches the serial accumulation.
    const std::vector<Formula> &Kids = F.children();
    std::vector<std::vector<Conjunct>> Parts(Kids.size());
    forEachDisjunct(Kids.size(),
                    [&](size_t I) { Parts[I] = toDNF(Kids[I], Mode); });
    std::vector<Conjunct> Acc;
    for (std::vector<Conjunct> &D : Parts)
      Acc.insert(Acc.end(), std::make_move_iterator(D.begin()),
                 std::make_move_iterator(D.end()));
    chargeClauses(Acc.size(), "simplify");
    return Acc;
  }
  case FormulaKind::Not: {
    // Negation must be exact regardless of the requested approximation
    // direction (approximating inside a negation flips the direction;
    // handled conservatively by being exact).
    return negateDNF(toDNF(F.children()[0], ShadowMode::Exact));
  }
  case FormulaKind::Exists: {
    // Alpha-rename the bound variables to fresh wildcards, then project
    // them away to restore the wildcard-free invariant.
    std::map<std::string, std::string> Map;
    VarSet Fresh;
    for (const std::string &V : F.quantified()) {
      std::string W = freshWildcard();
      Map.emplace(V, W);
      Fresh.insert(W);
    }
    std::vector<Conjunct> Body = toDNF(renameFree(F.body(), Map), Mode);
    // Each body clause projects independently.
    std::vector<std::vector<Conjunct>> Parts(Body.size());
    forEachDisjunct(Body.size(), [&](size_t I) {
      Parts[I] = projectVars(Body[I], Fresh, Mode);
    });
    std::vector<Conjunct> Out;
    for (std::vector<Conjunct> &P : Parts)
      Out.insert(Out.end(), std::make_move_iterator(P.begin()),
                 std::make_move_iterator(P.end()));
    return Out;
  }
  case FormulaKind::Forall:
    // ∀x.F == ¬∃x.¬F.
    return toDNF(Formula::negation(Formula::exists(
                     F.quantified(), Formula::negation(F.body()))),
                 Mode);
  }
  fatalError("toDNF: unknown formula kind");
}

/// Removes clauses subsumed by another clause (step 1 of §5.3).
void removeSubsumed(std::vector<Conjunct> &Clauses) {
  for (size_t I = 0; I < Clauses.size();) {
    bool Subsumed = false;
    for (size_t J = 0; J < Clauses.size() && !Subsumed; ++J) {
      if (I == J)
        continue;
      if (implies(Clauses[I], Clauses[J])) {
        // Tie-break identical clauses: drop the later one.
        if (!(implies(Clauses[J], Clauses[I]) && J > I))
          Subsumed = true;
      }
    }
    if (Subsumed)
      Clauses.erase(Clauses.begin() + I);
    else
      ++I;
  }
}

/// Brute-force articulation check: does removing node \p Skip disconnect
/// the component \p Nodes of the overlap graph \p Adj?
bool isArticulation(const std::vector<size_t> &Nodes,
                    const std::vector<std::vector<bool>> &Adj, size_t Skip) {
  std::vector<size_t> Rest;
  for (size_t N : Nodes)
    if (N != Skip)
      Rest.push_back(N);
  if (Rest.size() <= 1)
    return false;
  // BFS over Rest.
  std::vector<bool> Seen(Adj.size(), false);
  std::vector<size_t> Work{Rest[0]};
  Seen[Rest[0]] = true;
  size_t Count = 1;
  while (!Work.empty()) {
    size_t N = Work.back();
    Work.pop_back();
    for (size_t M : Rest)
      if (!Seen[M] && Adj[N][M]) {
        Seen[M] = true;
        ++Count;
        Work.push_back(M);
      }
  }
  return Count != Rest.size();
}

std::vector<Conjunct> makeDisjointComponent(std::vector<Conjunct> Clauses);
std::vector<Conjunct> makeDisjointImpl(std::vector<Conjunct> Clauses);

/// Builds the symmetric clause-overlap graph (edge iff two clauses share an
/// integer point).  Each row's pair tests run as one fan-out task; task I
/// writes only row I, and the lower triangle is mirrored afterwards.
std::vector<std::vector<bool>>
overlapGraph(const std::vector<Conjunct> &Clauses) {
  size_t N = Clauses.size();
  std::vector<std::vector<bool>> Adj(N, std::vector<bool>(N, false));
  forEachDisjunct(N, [&](size_t I) {
    for (size_t J = I + 1; J < N; ++J)
      if (feasible(Conjunct::merge(Clauses[I], Clauses[J])))
        Adj[I][J] = true;
  });
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I + 1; J < N; ++J)
      if (Adj[I][J])
        Adj[J][I] = true;
  return Adj;
}

#ifdef OMEGA_VALIDATE
/// Shared boundary check: clauses out of simplify / makeDisjoint must be
/// wildcard-free, normalized, feasible, and (when promised) disjoint.
void validateBoundary(const std::vector<Conjunct> &Clauses, bool Disjoint,
                      const char *Boundary) {
  ValidatorOptions VO;
  VO.RequireWildcardFree = true;
  VO.RequireNormalized = true;
  VO.RequireDisjoint = Disjoint;
  VO.Overlaps = [](const Conjunct &A, const Conjunct &B) {
    return feasible(Conjunct::merge(A, B));
  };
  validateOrDie(validateDnf(Clauses, std::move(VO)), Boundary);
}
#endif

} // namespace

std::vector<Conjunct> omega::negateConjunct(const Conjunct &C) {
  check(C.wildcards().empty(),
        "negateConjunct requires a wildcard-free clause (simplify first)");
  // Disjoint negation (§5.3 step 4):
  //   ¬(c1 ∧ c2 ∧ ...) = ¬c1 + (c1 ∧ ¬c2) + (c1 ∧ c2 ∧ ¬c3) + ...
  // and each ¬ci expands into branches that are themselves disjoint.
  std::vector<Conjunct> Out;
  Conjunct Prefix;
  for (const Constraint &K : C.constraints()) {
    std::vector<Constraint> Branches;
    switch (K.kind()) {
    case ConstraintKind::Ge:
      Branches.push_back(Constraint::ge(-K.expr() - AffineExpr(1)));
      break;
    case ConstraintKind::Eq:
      Branches.push_back(Constraint::ge(K.expr() - AffineExpr(1)));
      Branches.push_back(Constraint::ge(-K.expr() - AffineExpr(1)));
      break;
    case ConstraintKind::Stride:
      for (BigInt R(1); R < K.modulus(); ++R)
        Branches.push_back(
            Constraint::stride(K.modulus(), K.expr() - AffineExpr(R)));
      break;
    }
    for (Constraint &B : Branches) {
      Conjunct Piece = Prefix;
      Piece.add(std::move(B));
      if (feasible(Piece))
        Out.push_back(std::move(Piece));
    }
    Prefix.add(K);
  }
  return Out;
}

std::vector<Conjunct> omega::simplify(const Formula &F, SimplifyOptions Opts) {
  check((!Opts.Disjoint || Opts.Mode == ShadowMode::Exact),
        "disjoint DNF requires exact simplification");
  TraceSpan Span("simplify");
  std::vector<Conjunct> D;
  {
    PhaseTimer Timer(pipelineStats().SimplifyNanos);
    {
      TraceSpan DnfSpan("toDNF");
      D = toDNF(F, Opts.Mode);
      DnfSpan.count(TraceCounter::ClausesOut, D.size());
    }
    pruneInfeasible(D);
    pipelineStats().ClausesSimplified += D.size();
    forEachDisjunct(D.size(), [&](size_t I) {
      removeRedundant(D[I], /*Aggressive=*/true);
    });
    removeSubsumed(D);
  }
  if (Opts.Disjoint) {
    PhaseTimer Timer(pipelineStats().DisjointNanos);
    TraceSpan DisjointSpan("makeDisjoint");
    DisjointSpan.count(TraceCounter::ClausesIn, D.size());
    D = makeDisjointImpl(std::move(D));
    DisjointSpan.count(TraceCounter::ClausesOut, D.size());
  }
  coalesceClauses(D);
#ifdef OMEGA_VALIDATE
  validateBoundary(D, Opts.Disjoint, "omega::simplify");
#endif
  Span.count(TraceCounter::ClausesOut, D.size());
  return D;
}

std::optional<Conjunct> omega::coalescePair(const Conjunct &A,
                                            const Conjunct &B) {
  if (!A.wildcards().empty() || !B.wildcards().empty())
    return std::nullopt;
  // Candidate: constraints of one side the other side also satisfies.  It
  // contains A ∨ B by construction; it equals the union iff it has no
  // point outside both.
  Conjunct Candidate;
  for (const Constraint &K : A.constraints()) {
    Conjunct Single;
    Single.add(K);
    if (implies(B, Single))
      Candidate.add(K);
  }
  for (const Constraint &K : B.constraints()) {
    Conjunct Single;
    Single.add(K);
    if (implies(A, Single) &&
        std::find(Candidate.constraints().begin(),
                  Candidate.constraints().end(),
                  K) == Candidate.constraints().end())
      Candidate.add(K);
  }
  // Candidate \ (A ∨ B) must be empty: for every branch pair of the two
  // negations, Candidate ∧ ¬A-branch ∧ ¬B-branch must be infeasible.
  for (const Conjunct &NA : negateConjunct(A))
    for (const Conjunct &NB : negateConjunct(B)) {
      Conjunct Test = Candidate;
      Test.addAll(NA);
      Test.addAll(NB);
      if (feasible(Test))
        return std::nullopt;
    }
  removeRedundant(Candidate, /*Aggressive=*/true);
  return Candidate;
}

void omega::coalesceClauses(std::vector<Conjunct> &Clauses) {
  PhaseTimer Timer(pipelineStats().CoalesceNanos);
  // With workers and the cache available, evaluate every initial pair in
  // parallel first and discard the results: coalescePair routes all of its
  // reasoning through the memoized feasible()/implies(), so the serial
  // scan below replays against a warm cache.  The prepass only populates
  // the cache (whose values are pure functions of their keys), so the
  // result is identical with and without it — a scheduling optimization
  // only.  It deliberately does NOT go through forEachDisjunct: that would
  // consume a deterministic batch prefix only when workers are enabled,
  // shifting every later wildcard name.  Instead each row runs under a
  // private "warm" scope, outside the deterministic namespace, which is
  // safe because nothing here escapes into results.  On a single hardware
  // core the prepass is the same work run twice, so it is skipped — again
  // without affecting results.
  if (workerCount() >= 2 && std::thread::hardware_concurrency() >= 2 &&
      conjunctCacheCapacity() > 0 && Clauses.size() > 2 &&
      !wildcardScopeActive() && !ThreadPool::onWorkerThread()) {
    size_t N = Clauses.size();
    pipelineStats().ParallelBatches += 1;
    pipelineStats().ParallelTasks += N;
    const uint64_t TraceParent = currentTraceSpan();
    ThreadPool::instance().run(N, [&](size_t I) {
      TraceTaskScope TraceScope(TraceParent);
      WildcardScope Scope("warm" + std::to_string(I));
      for (size_t J = I + 1; J < N; ++J)
        (void)coalescePair(Clauses[I], Clauses[J]);
    });
  }
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < Clauses.size() && !Changed; ++I)
      for (size_t J = I + 1; J < Clauses.size() && !Changed; ++J) {
        std::optional<Conjunct> M = coalescePair(Clauses[I], Clauses[J]);
        if (!M)
          continue;
        Clauses[I] = std::move(*M);
        Clauses.erase(Clauses.begin() + J);
        Changed = true;
      }
  }
}

bool omega::pairwiseDisjoint(const std::vector<Conjunct> &Clauses) {
  for (size_t I = 0; I < Clauses.size(); ++I)
    for (size_t J = I + 1; J < Clauses.size(); ++J)
      if (feasible(Conjunct::merge(Clauses[I], Clauses[J])))
        return false;
  return true;
}

namespace {

std::vector<Conjunct> makeDisjointComponent(std::vector<Conjunct> Clauses) {
  if (Clauses.size() <= 1)
    return Clauses;

  // Rebuild the overlap graph for this component.
  size_t N = Clauses.size();
  std::vector<std::vector<bool>> Adj = overlapGraph(Clauses);

  std::vector<size_t> Nodes(N);
  for (size_t I = 0; I < N; ++I)
    Nodes[I] = I;

  // Step 3: prefer an articulation point; tie-break on fewest constraints.
  size_t Pick = N;
  bool PickArt = false;
  for (size_t I = 0; I < N; ++I) {
    bool Art = isArticulation(Nodes, Adj, I);
    size_t Size = Clauses[I].constraints().size();
    if (Pick == N || (Art && !PickArt) ||
        (Art == PickArt && Size < Clauses[Pick].constraints().size())) {
      Pick = I;
      PickArt = Art;
    }
  }

  Conjunct C1 = std::move(Clauses[Pick]);
  Clauses.erase(Clauses.begin() + Pick);

  // Step 4: reduce C1 against the rest via gist, then distribute its
  // disjoint negation.
  Conjunct Reduced;
  {
    // gist C1 given (C2 ∨ ... ∨ Cq) = ∧ gist(C1 given Cj), deduped.
    std::vector<Constraint> Acc;
    for (const Conjunct &Cj : Clauses) {
      Conjunct G = gist(C1, Cj);
      for (const Constraint &K : G.constraints())
        if (std::find(Acc.begin(), Acc.end(), K) == Acc.end())
          Acc.push_back(K);
    }
    for (Constraint &K : Acc)
      Reduced.add(std::move(K));
  }

  // Groups from distinct negation pieces are disjoint, so each piece's
  // intersection-and-recursion is an independent work item; groups are
  // appended in piece order, matching the serial loop.
  std::vector<Conjunct> Pieces = negateConjunct(Reduced);
  std::vector<std::vector<Conjunct>> Groups(Pieces.size());
  forEachDisjunct(Pieces.size(), [&](size_t PI) {
    std::vector<Conjunct> Group;
    for (const Conjunct &Cj : Clauses) {
      Conjunct M = Conjunct::merge(Cj, Pieces[PI]);
      if (feasible(M)) {
        removeRedundant(M, /*Aggressive=*/true);
        Group.push_back(std::move(M));
      }
    }
    // Within a group, recurse.
    Groups[PI] = makeDisjointImpl(std::move(Group));
  });

  std::vector<Conjunct> Result{std::move(C1)};
  for (std::vector<Conjunct> &Group : Groups)
    Result.insert(Result.end(), std::make_move_iterator(Group.begin()),
                  std::make_move_iterator(Group.end()));
  return Result;
}

std::vector<Conjunct> makeDisjointImpl(std::vector<Conjunct> Clauses) {
  chargeClauses(Clauses.size(), "disjoint");
  pruneInfeasible(Clauses);
  removeSubsumed(Clauses);
  if (Clauses.size() <= 1)
    return Clauses;

  // Step 2: connected components of the overlap graph.
  size_t N = Clauses.size();
  std::vector<std::vector<bool>> Adj = overlapGraph(Clauses);

  std::vector<int> Comp(N, -1);
  int NumComps = 0;
  for (size_t I = 0; I < N; ++I) {
    if (Comp[I] >= 0)
      continue;
    std::vector<size_t> Work{I};
    Comp[I] = NumComps;
    while (!Work.empty()) {
      size_t K = Work.back();
      Work.pop_back();
      for (size_t J = 0; J < N; ++J)
        if (Adj[K][J] && Comp[J] < 0) {
          Comp[J] = NumComps;
          Work.push_back(J);
        }
    }
    ++NumComps;
  }

  std::vector<Conjunct> Result;
  for (int G = 0; G < NumComps; ++G) {
    std::vector<Conjunct> Group;
    for (size_t I = 0; I < N; ++I)
      if (Comp[I] == G)
        Group.push_back(Clauses[I]);
    for (Conjunct &C : makeDisjointComponent(std::move(Group)))
      Result.push_back(std::move(C));
  }
  return Result;
}

} // namespace

std::vector<Conjunct> omega::makeDisjoint(std::vector<Conjunct> Clauses) {
  PhaseTimer Timer(pipelineStats().DisjointNanos);
  TraceSpan Span("makeDisjoint");
  Span.count(TraceCounter::ClausesIn, Clauses.size());
  std::vector<Conjunct> Result = makeDisjointImpl(std::move(Clauses));
  Span.count(TraceCounter::ClausesOut, Result.size());
#ifdef OMEGA_VALIDATE
  // Validate only at the public entry: the recursion above would otherwise
  // re-check every suffix of the clause list, turning the O(n²) overlap
  // test into O(depth · n²).
  validateBoundary(Result, /*Disjoint=*/true, "omega::makeDisjoint");
#endif
  return Result;
}

Formula omega::renameFreeVars(const Formula &F,
                              const std::map<std::string, std::string> &Map) {
  return renameFree(F, Map);
}
