//===- omega/Verify.cpp - Formula-level verification ---------------------===//

#include "omega/Verify.h"

using namespace omega;

bool omega::isSatisfiable(const Formula &F) {
  // Satisfiable iff some DNF clause survives simplification (simplify
  // already prunes infeasible clauses).
  return !simplify(F).empty();
}

bool omega::isUnsatisfiable(const Formula &F) { return !isSatisfiable(F); }

bool omega::isTautology(const Formula &F) {
  return isUnsatisfiable(Formula::negation(F));
}

bool omega::verifyImplies(const Formula &P, const Formula &Q) {
  // P => Q  iff  P ∧ ¬Q is unsatisfiable.
  return isUnsatisfiable(P && !Q);
}

bool omega::verifyEquivalent(const Formula &P, const Formula &Q) {
  return verifyImplies(P, Q) && verifyImplies(Q, P);
}
