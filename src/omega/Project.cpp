//===- omega/Project.cpp - Integer variable elimination ------------------===//
//
// The core of the Omega test: exact existential elimination of integer
// variables.  Equalities are eliminated by substitution (unit coefficient)
// or by the scale-and-stride technique; inequalities by Fourier-Motzkin
// with dark shadow and splinters (Pugh, CACM 1992), including the paper's
// Figure 1 disjoint splintering.
//
//===----------------------------------------------------------------------===//

#include "omega/Omega.h"

#include "analysis/Validator.h"
#include "support/Budget.h"
#include "support/Error.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <algorithm>

using namespace omega;

namespace {

/// Budget check on coefficient growth: trips when any coefficient or
/// constant of \p C exceeds the active budget's bit-width cap.  Charged
/// after every normalize step, where Fourier pair combination has just
/// multiplied coefficients.
void chargeClauseCoefficients(const Conjunct &C) {
  const std::shared_ptr<BudgetState> &B = activeBudget();
  if (!B || B->Limits.MaxCoefficientBits == 0)
    return;
  unsigned MaxBits = 0;
  for (const Constraint &K : C.constraints()) {
    MaxBits = std::max(MaxBits, K.expr().constant().bitWidth());
    for (const auto &[Name, Coef] : K.expr().terms()) {
      (void)Name;
      MaxBits = std::max(MaxBits, Coef.bitWidth());
    }
    if (K.isStride())
      MaxBits = std::max(MaxBits, K.modulus().bitWidth());
  }
  chargeCoefficientBits(MaxBits, "projection");
}

/// One bound on a variable v extracted from a Ge constraint:
/// Lower: Coef * v >= Expr;  Upper: Coef * v <= Expr.  Coef > 0.
struct Bound {
  BigInt Coef;
  AffineExpr Expr;
};

struct BoundSet {
  std::vector<Bound> Lowers;
  std::vector<Bound> Uppers;
};

/// Collects the bounds that the Ge constraints of \p C place on \p V.
BoundSet collectBounds(const Conjunct &C, VarId V) {
  BoundSet B;
  for (const Constraint &K : C.constraints()) {
    if (!K.isGe())
      continue;
    const BigInt &A = K.expr().coeff(V);
    if (A.isZero())
      continue;
    AffineExpr Rest = K.expr();
    Rest.setCoeff(V, BigInt(0));
    if (A.isPositive()) {
      // a*v + rest >= 0  =>  a*v >= -rest.
      B.Lowers.push_back({A, -Rest});
    } else {
      // -a*v + rest >= 0  =>  a*v <= rest.
      B.Uppers.push_back({-A, std::move(Rest)});
    }
  }
  return B;
}

/// Normalizes every constraint, drops trivially true ones and duplicates.
/// Returns false iff the clause is syntactically infeasible.
bool normalizeClause(Conjunct &C) { return normalizeConjunct(C); }

/// The projection engine.  Eliminates a target set of variables from a
/// clause, emitting result clauses (wildcard-free, strides allowed) into
/// Results.  StopAfterFirst turns it into a feasibility engine.
class Projector {
public:
  Projector(ShadowMode Mode, bool StopAfterFirst)
      : Mode(Mode), StopAfterFirst(StopAfterFirst) {}

  std::vector<Conjunct> Results;

  void run(Conjunct C, VarSet Targets) {
    if (StopAfterFirst && !Results.empty())
      return;
    // Depth and splinter counts are per-Projector-instance, so whether a
    // budget trips is a function of this elimination alone — independent
    // of worker schedule and of what other queries are in flight.
    ++Depth;
    struct DepthGuard {
      unsigned &D;
      ~DepthGuard() { --D; }
    } Guard{Depth};
    chargeDepth(Depth, "projection");
    // Wildcards are existential by definition; fold them into the targets.
    const VarSet Wilds = C.takeWildcards();
    for (VarId W : Wilds.ids())
      Targets.insert(W);

    while (true) {
      if (!normalizeClause(C))
        return;
      chargeClauseCoefficients(C);

      // Drop targets no constraint mentions (they are unconstrained).
      VarSet Mentioned = C.mentionedVars();
      for (auto It = Targets.begin(); It != Targets.end();)
        It = Mentioned.count(*It) ? std::next(It) : Targets.erase(It);

      if (Targets.empty()) {
        Results.push_back(std::move(C));
        return;
      }

      if (eliminateOneEquality(C, Targets))
        continue;
      if (convertOneStride(C, Targets))
        continue;

      // All remaining target occurrences are in Ge constraints.
      VarId V = pickFourierVar(C, Targets);
      if (!fourierEliminate(std::move(C), V, std::move(Targets)))
        return; // Recursion emitted the results.
      fatalError("Projector: fourierEliminate must take over");
    }
  }

private:
  /// If some equality involves a target variable, eliminates that variable
  /// and returns true.
  bool eliminateOneEquality(Conjunct &C, VarSet &Targets) {
    size_t BestIdx = 0;
    VarId BestVar;
    BigInt BestAbs;
    bool Found = false;
    const std::vector<Constraint> &Ks = C.constraints();
    for (size_t I = 0; I < Ks.size(); ++I) {
      if (!Ks[I].isEq())
        continue;
      // Name order, not storage order: the first-seen tie-break among
      // equal |coefficients| is observable through the elimination choice.
      Ks[I].expr().forEachTermByName([&](VarId V, const BigInt &Coef) {
        if (!Targets.count(V))
          return;
        BigInt A = Coef.abs();
        if (!Found || A < BestAbs) {
          Found = true;
          BestAbs = std::move(A);
          BestIdx = I;
          BestVar = V;
        }
      });
    }
    if (!Found)
      return false;

    Constraint Eq = Ks[BestIdx];
    Conjunct Rest;
    for (size_t I = 0; I < Ks.size(); ++I)
      if (I != BestIdx)
        Rest.add(Ks[I]);

    AffineExpr E = Eq.expr();
    BigInt A = E.coeff(BestVar);
    if (A.isNegative()) {
      E = -E;
      A = -A;
    }
    AffineExpr RestExpr = E; // a*v + e = 0; RestExpr = e.
    RestExpr.setCoeff(BestVar, BigInt(0));

    if (A.isOne()) {
      // v = -e: plain substitution.
      Rest.substitute(BestVar, -RestExpr);
      C = std::move(Rest);
      Targets.erase(BestVar);
      return true;
    }

    // Scale-and-stride: a*v = -e requires a | e; every other constraint
    // f + b*v {>=,=} 0 becomes a*f - b*e {>=,=} 0 (a > 0 preserves >=),
    // and a stride m | f + b*v becomes a*m | a*f - b*e.
    Conjunct NewC;
    for (const Constraint &K : Rest.constraints()) {
      BigInt B = K.expr().coeff(BestVar);
      if (B.isZero()) {
        NewC.add(K);
        continue;
      }
      AffineExpr F = K.expr();
      F.setCoeff(BestVar, BigInt(0));
      AffineExpr NewExpr = A * F - B * RestExpr;
      switch (K.kind()) {
      case ConstraintKind::Ge:
        NewC.add(Constraint::ge(std::move(NewExpr)));
        break;
      case ConstraintKind::Eq:
        NewC.add(Constraint::eq(std::move(NewExpr)));
        break;
      case ConstraintKind::Stride:
        NewC.add(Constraint::stride(A * K.modulus(), std::move(NewExpr)));
        break;
      }
    }
    NewC.add(Constraint::stride(A, RestExpr));
    C = std::move(NewC);
    Targets.erase(BestVar);
    return true;
  }

  /// If some stride involves a target variable, rewrites it as an equality
  /// with a fresh (target) auxiliary and returns true.  Termination: the
  /// stride's coefficients are normalized into [0, m), so the subsequent
  /// equality elimination works on a coefficient < m and any stride it
  /// creates has a strictly smaller modulus.
  bool convertOneStride(Conjunct &C, VarSet &Targets) {
    for (size_t I = 0; I < C.constraints().size(); ++I) {
      const Constraint &K = C.constraints()[I];
      if (!K.isStride())
        continue;
      bool HasTarget = false;
      for (const auto &[Name, Coef] : K.expr().terms()) {
        (void)Coef;
        if (Targets.count(Name)) {
          HasTarget = true;
          break;
        }
      }
      if (!HasTarget)
        continue;
      VarId W = freshWildcardId();
      AffineExpr E = K.expr();
      E.setCoeff(W, -K.modulus());
      C.constraints()[I] = Constraint::eq(std::move(E));
      Targets.insert(W);
      return true;
    }
    return false;
  }

  /// Chooses the next variable for Fourier elimination: prefer one whose
  /// every (lower, upper) pair is exact (unit coefficient on either side),
  /// then fewest pair products (the paper's §4.4 heuristic).
  VarId pickFourierVar(const Conjunct &C, const VarSet &Targets) {
    VarId Best;
    bool Found = false;
    bool BestExact = false;
    size_t BestCost = 0;
    // Candidates scan in name order: ties on (Exact, Cost) keep the
    // name-least variable, as with the former string set.
    for (auto It = Targets.begin(); It != Targets.end(); ++It) {
      VarId V = It.id();
      BoundSet B = collectBounds(C, V);
      bool Exact = true;
      for (const Bound &L : B.Lowers)
        for (const Bound &U : B.Uppers)
          if (!L.Coef.isOne() && !U.Coef.isOne())
            Exact = false;
      size_t Cost = std::max<size_t>(1, B.Lowers.size()) *
                    std::max<size_t>(1, B.Uppers.size());
      if (!Found || (Exact && !BestExact) ||
          (Exact == BestExact && Cost < BestCost)) {
        Found = true;
        Best = V;
        BestExact = Exact;
        BestCost = Cost;
      }
    }
    check(Found, "no Fourier candidate among targets");
    return Best;
  }

  /// Eliminates \p V from \p C by Fourier-Motzkin (recursing for
  /// splinters).  Always takes over emission; returns false.
  bool fourierEliminate(Conjunct C, VarId V, VarSet Targets) {
    BoundSet B = collectBounds(C, V);

    // One-sided: for any values of the other variables we can push v far
    // enough, so constraints on v are vacuous under ∃v.
    if (B.Lowers.empty() || B.Uppers.empty()) {
      Conjunct Rest;
      for (const Constraint &K : C.constraints())
        if (!K.mentions(V))
          Rest.add(K);
      Targets.erase(V);
      run(std::move(Rest), std::move(Targets));
      return false;
    }

    bool AllExact = true;
    for (const Bound &L : B.Lowers)
      for (const Bound &U : B.Uppers)
        if (!L.Coef.isOne() && !U.Coef.isOne())
          AllExact = false;

    if (AllExact || Mode == ShadowMode::Real || Mode == ShadowMode::Dark) {
      Conjunct Rest;
      for (const Constraint &K : C.constraints())
        if (!K.mentions(V))
          Rest.add(K);
      for (const Bound &L : B.Lowers)
        for (const Bound &U : B.Uppers) {
          // b*U >= a*L, exact/real; dark subtracts (a-1)(b-1).
          AffineExpr E = L.Coef * U.Expr - U.Coef * L.Expr;
          if (!AllExact && Mode == ShadowMode::Dark)
            E -= AffineExpr((U.Coef - BigInt(1)) * (L.Coef - BigInt(1)));
          Rest.add(Constraint::ge(std::move(E)));
        }
      Targets.erase(V);
      run(std::move(Rest), std::move(Targets));
      return false;
    }

    if (Mode == ShadowMode::Exact)
      overlappingSplinters(std::move(C), V, B, std::move(Targets));
    else
      disjointSplinters(std::move(C), V, B, std::move(Targets));
    return false;
  }

  /// Pugh's CACM-1992 exact elimination: dark shadow plus (possibly
  /// overlapping) splinters from each lower bound.
  void overlappingSplinters(Conjunct C, VarId V, const BoundSet &B,
                            VarSet Targets) {
    Conjunct Dark;
    for (const Constraint &K : C.constraints())
      if (!K.mentions(V))
        Dark.add(K);
    for (const Bound &L : B.Lowers)
      for (const Bound &U : B.Uppers) {
        AffineExpr E = L.Coef * U.Expr - U.Coef * L.Expr -
                       AffineExpr((U.Coef - BigInt(1)) * (L.Coef - BigInt(1)));
        Dark.add(Constraint::ge(std::move(E)));
      }
    {
      VarSet T = Targets;
      T.erase(V);
      run(std::move(Dark), std::move(T));
    }

    BigInt MaxA(1);
    for (const Bound &U : B.Uppers)
      MaxA = std::max(MaxA, U.Coef);
    TraceSpan Span("splinter");
    for (const Bound &L : B.Lowers) {
      if (L.Coef.isOne())
        continue;
      // i ranges over 0 .. ((amax-1)(b-1) - 1) / amax.
      BigInt KMax = BigInt::floorDiv(
          (MaxA - BigInt(1)) * (L.Coef - BigInt(1)) - BigInt(1), MaxA);
      for (BigInt I(0); I <= KMax; ++I) {
        Conjunct Spl = C;
        // b*v = L + i.
        AffineExpr E = L.Coef * AffineExpr::variable(V) - L.Expr -
                       AffineExpr(I);
        Spl.add(Constraint::eq(std::move(E)));
        chargeOneSplinter();
        Span.count(TraceCounter::Splinters);
        run(std::move(Spl), Targets);
      }
    }
  }

  /// Figure 1 of the paper: disjoint splintering.  The dark shadow and all
  /// splinters are pairwise disjoint.
  void disjointSplinters(Conjunct C, VarId V, const BoundSet &B,
                         VarSet Targets) {
    // Parallel splintering: if some (lower, upper) pair pins c*v into a
    // window of syntactically constant width k with k < c*c' - 1, just
    // enumerate the window (each piece fixes a distinct value of the
    // scaled variable, hence disjoint).
    for (const Bound &L : B.Lowers)
      for (const Bound &U : B.Uppers) {
        AffineExpr D = L.Coef * U.Expr - U.Coef * L.Expr;
        if (!D.isConstant())
          continue;
        const BigInt &K = D.constant();
        if (K.isNegative())
          return; // a*L > b*U: window empty, clause infeasible.
        BigInt C2 = L.Coef * U.Coef;
        if (K >= C2 - BigInt(1))
          continue; // Window wide enough to always contain a point.
        // ab*v ∈ [a*L, a*L + k]: at most one multiple of ab per point.
        TraceSpan Span("splinter");
        for (BigInt I(0); I <= K; ++I) {
          Conjunct Spl = C;
          AffineExpr E = C2 * AffineExpr::variable(V) - U.Coef * L.Expr -
                         AffineExpr(I);
          Spl.add(Constraint::eq(std::move(E)));
          chargeOneSplinter();
          Span.count(TraceCounter::Splinters);
          run(std::move(Spl), Targets);
        }
        return;
      }

    // General case: accumulate dark-shadow pair constraints; when a pair's
    // miss region is reachable, emit one disjoint splinter per offset i and
    // per pinned value j of the scaled variable.
    Conjunct W;
    for (const Constraint &K : C.constraints())
      if (!K.mentions(V))
        W.add(K);

    for (const Bound &L : B.Lowers)
      for (const Bound &U : B.Uppers) {
        AffineExpr D = L.Coef * U.Expr - U.Coef * L.Expr; // b*U - a*L.
        if (L.Coef.isOne() || U.Coef.isOne()) {
          W.add(Constraint::ge(D)); // Exact for this pair.
          continue;
        }
        BigInt Gap = (U.Coef - BigInt(1)) * (L.Coef - BigInt(1));
        Conjunct Miss = W;
        // Miss region: b*U - a*L <= gap - 1.
        Miss.add(Constraint::ge(AffineExpr(Gap - BigInt(1)) - D));
        if (feasible(Miss)) {
          TraceSpan Span("splinter");
          for (BigInt I(0); I < Gap; ++I)
            for (BigInt J(0); J <= I; ++J) {
              Conjunct Spl = C;
              Spl.addAll(W);
              // b*U - a*L = i.
              Spl.add(Constraint::eq(D - AffineExpr(I)));
              // ab*v = a*L + j pins the single candidate integer.
              AffineExpr E = L.Coef * U.Coef * AffineExpr::variable(V) -
                             U.Coef * L.Expr - AffineExpr(J);
              Spl.add(Constraint::eq(std::move(E)));
              chargeOneSplinter();
              Span.count(TraceCounter::Splinters);
              run(std::move(Spl), Targets);
            }
        }
        W.add(Constraint::ge(D - AffineExpr(Gap)));
      }
    Targets.erase(V);
    run(std::move(W), std::move(Targets));
  }

  /// Bumps the per-instance splinter count against the budget; call once
  /// per splinter, next to the SplintersGenerated stat.
  void chargeOneSplinter() {
    pipelineStats().SplintersGenerated += 1;
    chargeSplinters(++SplinterCount, "projection");
  }

  ShadowMode Mode;
  bool StopAfterFirst;
  unsigned Depth = 0;
  uint64_t SplinterCount = 0;
};

} // namespace

std::vector<Conjunct> omega::detail::projectVarsImpl(const Conjunct &C,
                                                     const VarSet &Vars,
                                                     ShadowMode Mode) {
  Projector P(Mode, /*StopAfterFirst=*/false);
  P.run(C, Vars);
  if (Mode != ShadowMode::Disjoint) {
#ifdef OMEGA_VALIDATE
    // Structural check only (the Disjoint path is validated by the
    // makeDisjoint boundary below): projection must consume every wildcard
    // and leave well-scoped clauses.  No oracle here — feasibility is this
    // function's own machinery, and approximate modes may legitimately
    // return clauses a later exact pass would prune.
    ValidatorOptions VO;
    VO.RequireWildcardFree = true;
    // Outer quantifiers' alpha-renamed variables are still free here; only
    // the top-level simplify boundary may reject free `$` names.
    VO.AllowFreeWildcardNames = true;
    validateOrDie(validateDnf(P.Results, std::move(VO)),
                  "omega::projectVars");
#endif
    return std::move(P.Results);
  }
  // §5.2: disjoint splintering guarantees disjointness only when the last
  // elimination is the only one that splinters — disjointness in (x, z) is
  // destroyed by projecting z away.  Per the paper, convert the result to
  // disjoint DNF (§5.3) to restore the property in the remaining space.
  return makeDisjoint(std::move(P.Results));
}

bool omega::detail::feasibleImpl(const Conjunct &C) {
  Projector P(ShadowMode::Exact, /*StopAfterFirst=*/true);
  P.run(C, C.mentionedVars());
  return !P.Results.empty();
}

bool omega::containsPoint(const Conjunct &C, const Assignment &Values) {
  Conjunct Sub = C;
  for (const auto &[Name, Value] : Values)
    if (!Sub.isWildcard(Name))
      Sub.substitute(Name, AffineExpr(Value));
  return feasible(Sub);
}

bool omega::normalizeConjunct(Conjunct &C) {
  std::vector<Constraint> Out;
  for (Constraint &K : C.constraints()) {
    if (!K.normalize())
      return false;
    if (K.isTriviallyTrue())
      continue;
    if (K.isTriviallyFalse())
      return false;
    if (std::find(Out.begin(), Out.end(), K) == Out.end())
      Out.push_back(std::move(K));
  }
  C.constraints() = std::move(Out);
  return true;
}

std::optional<Assignment> omega::samplePoint(const Conjunct &C) {
  if (!feasible(C))
    return std::nullopt;
  Assignment Point;
  Conjunct Cur = C;
  while (true) {
    VarSet Free = Cur.freeVars();
    if (Free.empty())
      return Point;
    const VarId V = Free.begin().id(); // Name-least free variable.
    // Range of v with everything else projected away (real shadow gives a
    // sound superset interval; strides may force skipping within it).
    VarSet Others = Free;
    Others.erase(V);
    for (VarId W : Cur.wildcards().ids())
      Others.insert(W);
    std::vector<Conjunct> Shadow = projectVars(Cur, Others, ShadowMode::Real);
    check(Shadow.size() <= 1, "real shadow is a single clause");
    bool HaveLo = false, HaveHi = false;
    BigInt Lo, Hi;
    if (!Shadow.empty())
      for (const Constraint &K : Shadow[0].constraints()) {
        if (K.isStride())
          continue;
        const BigInt &A = K.expr().coeff(V);
        if (A.isZero())
          continue;
        AffineExpr Rest = K.expr();
        Rest.setCoeff(V, BigInt(0));
        if (K.isEq() || A.isPositive()) {
          BigInt Div = A.isPositive() ? A : -A;
          BigInt Num = A.isPositive() ? -Rest.constant() : Rest.constant();
          BigInt B = BigInt::ceilDiv(Num, Div);
          if (!HaveLo || B > Lo)
            Lo = B;
          HaveLo = true;
        }
        if (K.isEq() || A.isNegative()) {
          BigInt Div = A.isNegative() ? -A : A;
          BigInt Num = A.isNegative() ? Rest.constant() : -Rest.constant();
          BigInt B = BigInt::floorDiv(Num, Div);
          if (!HaveHi || B < Hi)
            Hi = B;
          HaveHi = true;
        }
      }
    // Anchor unbounded directions near the other end (or zero).
    if (!HaveLo && !HaveHi) {
      Lo = BigInt(0);
      HaveLo = true;
    }
    if (!HaveLo)
      Lo = Hi; // Scan downward from the upper end.
    BigInt Val = Lo;
    int Direction = HaveLo ? 1 : -1;
    while (true) {
      if (HaveLo && HaveHi && (Val < Lo || Val > Hi))
        return std::nullopt; // Cannot happen: feasibility was checked.
      Conjunct Test = Cur;
      Test.substitute(V, AffineExpr(Val));
      if (feasible(Test)) {
        Point[V] = Val;
        Cur = std::move(Test);
        break;
      }
      Val += BigInt(Direction);
    }
  }
}
