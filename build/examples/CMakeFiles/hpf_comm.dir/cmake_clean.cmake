file(REMOVE_RECURSE
  "CMakeFiles/hpf_comm.dir/hpf_comm.cpp.o"
  "CMakeFiles/hpf_comm.dir/hpf_comm.cpp.o.d"
  "hpf_comm"
  "hpf_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpf_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
