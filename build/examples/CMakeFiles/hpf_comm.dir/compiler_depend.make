# Empty compiler generated dependencies file for hpf_comm.
# This may be replaced when dependencies are built.
