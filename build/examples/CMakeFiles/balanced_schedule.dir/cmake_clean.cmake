file(REMOVE_RECURSE
  "CMakeFiles/balanced_schedule.dir/balanced_schedule.cpp.o"
  "CMakeFiles/balanced_schedule.dir/balanced_schedule.cpp.o.d"
  "balanced_schedule"
  "balanced_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balanced_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
