# Empty dependencies file for balanced_schedule.
# This may be replaced when dependencies are built.
