file(REMOVE_RECURSE
  "CMakeFiles/loop_analysis.dir/loop_analysis.cpp.o"
  "CMakeFiles/loop_analysis.dir/loop_analysis.cpp.o.d"
  "loop_analysis"
  "loop_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
