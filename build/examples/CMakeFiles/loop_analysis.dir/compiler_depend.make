# Empty compiler generated dependencies file for loop_analysis.
# This may be replaced when dependencies are built.
