file(REMOVE_RECURSE
  "CMakeFiles/cache_model.dir/cache_model.cpp.o"
  "CMakeFiles/cache_model.dir/cache_model.cpp.o.d"
  "cache_model"
  "cache_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
