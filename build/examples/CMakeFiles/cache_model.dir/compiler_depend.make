# Empty compiler generated dependencies file for cache_model.
# This may be replaced when dependencies are built.
