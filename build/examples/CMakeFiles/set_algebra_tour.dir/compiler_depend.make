# Empty compiler generated dependencies file for set_algebra_tour.
# This may be replaced when dependencies are built.
