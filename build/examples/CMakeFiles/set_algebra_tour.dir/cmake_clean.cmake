file(REMOVE_RECURSE
  "CMakeFiles/set_algebra_tour.dir/set_algebra_tour.cpp.o"
  "CMakeFiles/set_algebra_tour.dir/set_algebra_tour.cpp.o.d"
  "set_algebra_tour"
  "set_algebra_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_algebra_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
