file(REMOVE_RECURSE
  "CMakeFiles/dependence_analysis.dir/dependence_analysis.cpp.o"
  "CMakeFiles/dependence_analysis.dir/dependence_analysis.cpp.o.d"
  "dependence_analysis"
  "dependence_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependence_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
