# Empty dependencies file for dependence_analysis.
# This may be replaced when dependencies are built.
