
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/omega/Project.cpp" "src/omega/CMakeFiles/omega_omega.dir/Project.cpp.o" "gcc" "src/omega/CMakeFiles/omega_omega.dir/Project.cpp.o.d"
  "/root/repo/src/omega/Redundancy.cpp" "src/omega/CMakeFiles/omega_omega.dir/Redundancy.cpp.o" "gcc" "src/omega/CMakeFiles/omega_omega.dir/Redundancy.cpp.o.d"
  "/root/repo/src/omega/Simplify.cpp" "src/omega/CMakeFiles/omega_omega.dir/Simplify.cpp.o" "gcc" "src/omega/CMakeFiles/omega_omega.dir/Simplify.cpp.o.d"
  "/root/repo/src/omega/Verify.cpp" "src/omega/CMakeFiles/omega_omega.dir/Verify.cpp.o" "gcc" "src/omega/CMakeFiles/omega_omega.dir/Verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/presburger/CMakeFiles/omega_presburger.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/omega_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
