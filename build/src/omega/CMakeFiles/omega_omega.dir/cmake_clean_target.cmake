file(REMOVE_RECURSE
  "libomega_omega.a"
)
