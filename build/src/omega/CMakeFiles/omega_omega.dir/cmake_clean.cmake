file(REMOVE_RECURSE
  "CMakeFiles/omega_omega.dir/Project.cpp.o"
  "CMakeFiles/omega_omega.dir/Project.cpp.o.d"
  "CMakeFiles/omega_omega.dir/Redundancy.cpp.o"
  "CMakeFiles/omega_omega.dir/Redundancy.cpp.o.d"
  "CMakeFiles/omega_omega.dir/Simplify.cpp.o"
  "CMakeFiles/omega_omega.dir/Simplify.cpp.o.d"
  "CMakeFiles/omega_omega.dir/Verify.cpp.o"
  "CMakeFiles/omega_omega.dir/Verify.cpp.o.d"
  "libomega_omega.a"
  "libomega_omega.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_omega.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
