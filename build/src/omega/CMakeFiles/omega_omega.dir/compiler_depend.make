# Empty compiler generated dependencies file for omega_omega.
# This may be replaced when dependencies are built.
