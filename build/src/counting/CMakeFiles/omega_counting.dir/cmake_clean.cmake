file(REMOVE_RECURSE
  "CMakeFiles/omega_counting.dir/Relation.cpp.o"
  "CMakeFiles/omega_counting.dir/Relation.cpp.o.d"
  "CMakeFiles/omega_counting.dir/Set.cpp.o"
  "CMakeFiles/omega_counting.dir/Set.cpp.o.d"
  "CMakeFiles/omega_counting.dir/Summation.cpp.o"
  "CMakeFiles/omega_counting.dir/Summation.cpp.o.d"
  "libomega_counting.a"
  "libomega_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
