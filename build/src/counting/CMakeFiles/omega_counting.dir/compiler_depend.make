# Empty compiler generated dependencies file for omega_counting.
# This may be replaced when dependencies are built.
