file(REMOVE_RECURSE
  "libomega_counting.a"
)
