file(REMOVE_RECURSE
  "CMakeFiles/omega_baselines.dir/Enumerator.cpp.o"
  "CMakeFiles/omega_baselines.dir/Enumerator.cpp.o.d"
  "CMakeFiles/omega_baselines.dir/FixedOrderSum.cpp.o"
  "CMakeFiles/omega_baselines.dir/FixedOrderSum.cpp.o.d"
  "CMakeFiles/omega_baselines.dir/InclusionExclusion.cpp.o"
  "CMakeFiles/omega_baselines.dir/InclusionExclusion.cpp.o.d"
  "libomega_baselines.a"
  "libomega_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
