
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/Enumerator.cpp" "src/baselines/CMakeFiles/omega_baselines.dir/Enumerator.cpp.o" "gcc" "src/baselines/CMakeFiles/omega_baselines.dir/Enumerator.cpp.o.d"
  "/root/repo/src/baselines/FixedOrderSum.cpp" "src/baselines/CMakeFiles/omega_baselines.dir/FixedOrderSum.cpp.o" "gcc" "src/baselines/CMakeFiles/omega_baselines.dir/FixedOrderSum.cpp.o.d"
  "/root/repo/src/baselines/InclusionExclusion.cpp" "src/baselines/CMakeFiles/omega_baselines.dir/InclusionExclusion.cpp.o" "gcc" "src/baselines/CMakeFiles/omega_baselines.dir/InclusionExclusion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/counting/CMakeFiles/omega_counting.dir/DependInfo.cmake"
  "/root/repo/build/src/omega/CMakeFiles/omega_omega.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/omega_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/presburger/CMakeFiles/omega_presburger.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/omega_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/omega_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
