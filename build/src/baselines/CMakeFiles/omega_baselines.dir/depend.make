# Empty dependencies file for omega_baselines.
# This may be replaced when dependencies are built.
