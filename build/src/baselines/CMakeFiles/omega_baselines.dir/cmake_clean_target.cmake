file(REMOVE_RECURSE
  "libomega_baselines.a"
)
