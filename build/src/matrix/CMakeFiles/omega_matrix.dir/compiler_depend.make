# Empty compiler generated dependencies file for omega_matrix.
# This may be replaced when dependencies are built.
