file(REMOVE_RECURSE
  "CMakeFiles/omega_matrix.dir/Matrix.cpp.o"
  "CMakeFiles/omega_matrix.dir/Matrix.cpp.o.d"
  "libomega_matrix.a"
  "libomega_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
