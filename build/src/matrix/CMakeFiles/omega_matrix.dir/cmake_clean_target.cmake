file(REMOVE_RECURSE
  "libomega_matrix.a"
)
