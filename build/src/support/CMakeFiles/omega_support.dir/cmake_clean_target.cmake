file(REMOVE_RECURSE
  "libomega_support.a"
)
