# Empty compiler generated dependencies file for omega_support.
# This may be replaced when dependencies are built.
