file(REMOVE_RECURSE
  "CMakeFiles/omega_support.dir/BigInt.cpp.o"
  "CMakeFiles/omega_support.dir/BigInt.cpp.o.d"
  "CMakeFiles/omega_support.dir/Rational.cpp.o"
  "CMakeFiles/omega_support.dir/Rational.cpp.o.d"
  "libomega_support.a"
  "libomega_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
