
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/presburger/AffineExpr.cpp" "src/presburger/CMakeFiles/omega_presburger.dir/AffineExpr.cpp.o" "gcc" "src/presburger/CMakeFiles/omega_presburger.dir/AffineExpr.cpp.o.d"
  "/root/repo/src/presburger/Conjunct.cpp" "src/presburger/CMakeFiles/omega_presburger.dir/Conjunct.cpp.o" "gcc" "src/presburger/CMakeFiles/omega_presburger.dir/Conjunct.cpp.o.d"
  "/root/repo/src/presburger/Constraint.cpp" "src/presburger/CMakeFiles/omega_presburger.dir/Constraint.cpp.o" "gcc" "src/presburger/CMakeFiles/omega_presburger.dir/Constraint.cpp.o.d"
  "/root/repo/src/presburger/Formula.cpp" "src/presburger/CMakeFiles/omega_presburger.dir/Formula.cpp.o" "gcc" "src/presburger/CMakeFiles/omega_presburger.dir/Formula.cpp.o.d"
  "/root/repo/src/presburger/NonLinear.cpp" "src/presburger/CMakeFiles/omega_presburger.dir/NonLinear.cpp.o" "gcc" "src/presburger/CMakeFiles/omega_presburger.dir/NonLinear.cpp.o.d"
  "/root/repo/src/presburger/Parser.cpp" "src/presburger/CMakeFiles/omega_presburger.dir/Parser.cpp.o" "gcc" "src/presburger/CMakeFiles/omega_presburger.dir/Parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/omega_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
