file(REMOVE_RECURSE
  "CMakeFiles/omega_presburger.dir/AffineExpr.cpp.o"
  "CMakeFiles/omega_presburger.dir/AffineExpr.cpp.o.d"
  "CMakeFiles/omega_presburger.dir/Conjunct.cpp.o"
  "CMakeFiles/omega_presburger.dir/Conjunct.cpp.o.d"
  "CMakeFiles/omega_presburger.dir/Constraint.cpp.o"
  "CMakeFiles/omega_presburger.dir/Constraint.cpp.o.d"
  "CMakeFiles/omega_presburger.dir/Formula.cpp.o"
  "CMakeFiles/omega_presburger.dir/Formula.cpp.o.d"
  "CMakeFiles/omega_presburger.dir/NonLinear.cpp.o"
  "CMakeFiles/omega_presburger.dir/NonLinear.cpp.o.d"
  "CMakeFiles/omega_presburger.dir/Parser.cpp.o"
  "CMakeFiles/omega_presburger.dir/Parser.cpp.o.d"
  "libomega_presburger.a"
  "libomega_presburger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_presburger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
