file(REMOVE_RECURSE
  "libomega_presburger.a"
)
