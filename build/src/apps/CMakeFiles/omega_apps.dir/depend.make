# Empty dependencies file for omega_apps.
# This may be replaced when dependencies are built.
