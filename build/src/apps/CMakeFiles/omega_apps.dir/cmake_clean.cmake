file(REMOVE_RECURSE
  "CMakeFiles/omega_apps.dir/CodeGen.cpp.o"
  "CMakeFiles/omega_apps.dir/CodeGen.cpp.o.d"
  "CMakeFiles/omega_apps.dir/Dependence.cpp.o"
  "CMakeFiles/omega_apps.dir/Dependence.cpp.o.d"
  "CMakeFiles/omega_apps.dir/HpfDistribution.cpp.o"
  "CMakeFiles/omega_apps.dir/HpfDistribution.cpp.o.d"
  "CMakeFiles/omega_apps.dir/LoopNest.cpp.o"
  "CMakeFiles/omega_apps.dir/LoopNest.cpp.o.d"
  "CMakeFiles/omega_apps.dir/MemoryModel.cpp.o"
  "CMakeFiles/omega_apps.dir/MemoryModel.cpp.o.d"
  "CMakeFiles/omega_apps.dir/Scheduling.cpp.o"
  "CMakeFiles/omega_apps.dir/Scheduling.cpp.o.d"
  "CMakeFiles/omega_apps.dir/UniformlyGenerated.cpp.o"
  "CMakeFiles/omega_apps.dir/UniformlyGenerated.cpp.o.d"
  "libomega_apps.a"
  "libomega_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
