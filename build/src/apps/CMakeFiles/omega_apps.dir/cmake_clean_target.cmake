file(REMOVE_RECURSE
  "libomega_apps.a"
)
