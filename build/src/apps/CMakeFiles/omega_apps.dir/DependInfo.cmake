
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/CodeGen.cpp" "src/apps/CMakeFiles/omega_apps.dir/CodeGen.cpp.o" "gcc" "src/apps/CMakeFiles/omega_apps.dir/CodeGen.cpp.o.d"
  "/root/repo/src/apps/Dependence.cpp" "src/apps/CMakeFiles/omega_apps.dir/Dependence.cpp.o" "gcc" "src/apps/CMakeFiles/omega_apps.dir/Dependence.cpp.o.d"
  "/root/repo/src/apps/HpfDistribution.cpp" "src/apps/CMakeFiles/omega_apps.dir/HpfDistribution.cpp.o" "gcc" "src/apps/CMakeFiles/omega_apps.dir/HpfDistribution.cpp.o.d"
  "/root/repo/src/apps/LoopNest.cpp" "src/apps/CMakeFiles/omega_apps.dir/LoopNest.cpp.o" "gcc" "src/apps/CMakeFiles/omega_apps.dir/LoopNest.cpp.o.d"
  "/root/repo/src/apps/MemoryModel.cpp" "src/apps/CMakeFiles/omega_apps.dir/MemoryModel.cpp.o" "gcc" "src/apps/CMakeFiles/omega_apps.dir/MemoryModel.cpp.o.d"
  "/root/repo/src/apps/Scheduling.cpp" "src/apps/CMakeFiles/omega_apps.dir/Scheduling.cpp.o" "gcc" "src/apps/CMakeFiles/omega_apps.dir/Scheduling.cpp.o.d"
  "/root/repo/src/apps/UniformlyGenerated.cpp" "src/apps/CMakeFiles/omega_apps.dir/UniformlyGenerated.cpp.o" "gcc" "src/apps/CMakeFiles/omega_apps.dir/UniformlyGenerated.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/counting/CMakeFiles/omega_counting.dir/DependInfo.cmake"
  "/root/repo/build/src/omega/CMakeFiles/omega_omega.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/omega_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/presburger/CMakeFiles/omega_presburger.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/omega_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/omega_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
