file(REMOVE_RECURSE
  "CMakeFiles/omega_poly.dir/Faulhaber.cpp.o"
  "CMakeFiles/omega_poly.dir/Faulhaber.cpp.o.d"
  "CMakeFiles/omega_poly.dir/PiecewiseValue.cpp.o"
  "CMakeFiles/omega_poly.dir/PiecewiseValue.cpp.o.d"
  "CMakeFiles/omega_poly.dir/QuasiPolynomial.cpp.o"
  "CMakeFiles/omega_poly.dir/QuasiPolynomial.cpp.o.d"
  "libomega_poly.a"
  "libomega_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
