file(REMOVE_RECURSE
  "libomega_poly.a"
)
