# Empty dependencies file for omega_poly.
# This may be replaced when dependencies are built.
