# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bigint_test[1]_include.cmake")
include("/root/repo/build/tests/rational_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/affine_test[1]_include.cmake")
include("/root/repo/build/tests/formula_parser_test[1]_include.cmake")
include("/root/repo/build/tests/omega_test[1]_include.cmake")
include("/root/repo/build/tests/poly_test[1]_include.cmake")
include("/root/repo/build/tests/counting_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/verify_dependence_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/relation_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/set_sample_test[1]_include.cmake")
include("/root/repo/build/tests/omega_edge_test[1]_include.cmake")
include("/root/repo/build/tests/summation_edge_test[1]_include.cmake")
include("/root/repo/build/tests/printing_roundtrip_test[1]_include.cmake")
add_test(cli_count "/root/repo/build/tools/omegacount" "--vars" "i" "--at" "n=10" "1 <= i <= n")
set_tests_properties(cli_count PROPERTIES  PASS_REGULAR_EXPRESSION "at n=10: 10" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;58;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_sum "/root/repo/build/tools/omegacount" "--vars" "i" "--sum" "i" "--at" "n=10" "1 <= i <= n")
set_tests_properties(cli_sum PROPERTIES  PASS_REGULAR_EXPRESSION "at n=10: 55" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;60;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_parse_error "/root/repo/build/tools/omegacount" "--vars" "i" "1 <=")
set_tests_properties(cli_parse_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;62;add_test;/root/repo/tests/CMakeLists.txt;0;")
