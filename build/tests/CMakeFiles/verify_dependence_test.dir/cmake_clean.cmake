file(REMOVE_RECURSE
  "CMakeFiles/verify_dependence_test.dir/VerifyDependenceTest.cpp.o"
  "CMakeFiles/verify_dependence_test.dir/VerifyDependenceTest.cpp.o.d"
  "verify_dependence_test"
  "verify_dependence_test.pdb"
  "verify_dependence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_dependence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
