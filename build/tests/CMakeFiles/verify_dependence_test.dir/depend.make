# Empty dependencies file for verify_dependence_test.
# This may be replaced when dependencies are built.
