# Empty compiler generated dependencies file for set_sample_test.
# This may be replaced when dependencies are built.
