file(REMOVE_RECURSE
  "CMakeFiles/set_sample_test.dir/SetSampleTest.cpp.o"
  "CMakeFiles/set_sample_test.dir/SetSampleTest.cpp.o.d"
  "set_sample_test"
  "set_sample_test.pdb"
  "set_sample_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_sample_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
