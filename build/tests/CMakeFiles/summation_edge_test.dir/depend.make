# Empty dependencies file for summation_edge_test.
# This may be replaced when dependencies are built.
