file(REMOVE_RECURSE
  "CMakeFiles/summation_edge_test.dir/SummationEdgeTest.cpp.o"
  "CMakeFiles/summation_edge_test.dir/SummationEdgeTest.cpp.o.d"
  "summation_edge_test"
  "summation_edge_test.pdb"
  "summation_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summation_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
