# Empty compiler generated dependencies file for omega_edge_test.
# This may be replaced when dependencies are built.
