file(REMOVE_RECURSE
  "CMakeFiles/omega_edge_test.dir/OmegaEdgeTest.cpp.o"
  "CMakeFiles/omega_edge_test.dir/OmegaEdgeTest.cpp.o.d"
  "omega_edge_test"
  "omega_edge_test.pdb"
  "omega_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
