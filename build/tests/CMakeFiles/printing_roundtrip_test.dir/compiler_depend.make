# Empty compiler generated dependencies file for printing_roundtrip_test.
# This may be replaced when dependencies are built.
