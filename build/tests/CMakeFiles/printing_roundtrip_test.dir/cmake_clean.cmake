file(REMOVE_RECURSE
  "CMakeFiles/printing_roundtrip_test.dir/PrintingRoundTripTest.cpp.o"
  "CMakeFiles/printing_roundtrip_test.dir/PrintingRoundTripTest.cpp.o.d"
  "printing_roundtrip_test"
  "printing_roundtrip_test.pdb"
  "printing_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printing_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
