file(REMOVE_RECURSE
  "CMakeFiles/formula_parser_test.dir/FormulaParserTest.cpp.o"
  "CMakeFiles/formula_parser_test.dir/FormulaParserTest.cpp.o.d"
  "formula_parser_test"
  "formula_parser_test.pdb"
  "formula_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formula_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
