# Empty dependencies file for formula_parser_test.
# This may be replaced when dependencies are built.
