# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for formula_parser_test.
