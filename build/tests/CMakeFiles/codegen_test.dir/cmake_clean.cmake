file(REMOVE_RECURSE
  "CMakeFiles/codegen_test.dir/CodeGenTest.cpp.o"
  "CMakeFiles/codegen_test.dir/CodeGenTest.cpp.o.d"
  "codegen_test"
  "codegen_test.pdb"
  "codegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
