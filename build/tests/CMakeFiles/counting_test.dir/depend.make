# Empty dependencies file for counting_test.
# This may be replaced when dependencies are built.
