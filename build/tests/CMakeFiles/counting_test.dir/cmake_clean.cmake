file(REMOVE_RECURSE
  "CMakeFiles/counting_test.dir/CountingTest.cpp.o"
  "CMakeFiles/counting_test.dir/CountingTest.cpp.o.d"
  "counting_test"
  "counting_test.pdb"
  "counting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
