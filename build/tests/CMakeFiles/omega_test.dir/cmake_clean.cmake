file(REMOVE_RECURSE
  "CMakeFiles/omega_test.dir/OmegaTest.cpp.o"
  "CMakeFiles/omega_test.dir/OmegaTest.cpp.o.d"
  "omega_test"
  "omega_test.pdb"
  "omega_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
