file(REMOVE_RECURSE
  "CMakeFiles/omegacount.dir/omegacount.cpp.o"
  "CMakeFiles/omegacount.dir/omegacount.cpp.o.d"
  "omegacount"
  "omegacount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omegacount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
