# Empty compiler generated dependencies file for omegacount.
# This may be replaced when dependencies are built.
