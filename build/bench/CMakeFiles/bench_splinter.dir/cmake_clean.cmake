file(REMOVE_RECURSE
  "CMakeFiles/bench_splinter.dir/bench_splinter.cpp.o"
  "CMakeFiles/bench_splinter.dir/bench_splinter.cpp.o.d"
  "bench_splinter"
  "bench_splinter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_splinter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
