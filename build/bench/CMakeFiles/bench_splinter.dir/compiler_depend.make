# Empty compiler generated dependencies file for bench_splinter.
# This may be replaced when dependencies are built.
