
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_splinter.cpp" "bench/CMakeFiles/bench_splinter.dir/bench_splinter.cpp.o" "gcc" "bench/CMakeFiles/bench_splinter.dir/bench_splinter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/omega_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/omega_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/counting/CMakeFiles/omega_counting.dir/DependInfo.cmake"
  "/root/repo/build/src/omega/CMakeFiles/omega_omega.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/omega_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/presburger/CMakeFiles/omega_presburger.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/omega_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/omega_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
