file(REMOVE_RECURSE
  "CMakeFiles/bench_dependence.dir/bench_dependence.cpp.o"
  "CMakeFiles/bench_dependence.dir/bench_dependence.cpp.o.d"
  "bench_dependence"
  "bench_dependence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
