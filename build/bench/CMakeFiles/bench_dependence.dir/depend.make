# Empty dependencies file for bench_dependence.
# This may be replaced when dependencies are built.
