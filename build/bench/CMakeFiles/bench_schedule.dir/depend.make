# Empty dependencies file for bench_schedule.
# This may be replaced when dependencies are built.
