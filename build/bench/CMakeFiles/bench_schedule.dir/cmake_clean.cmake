file(REMOVE_RECURSE
  "CMakeFiles/bench_schedule.dir/bench_schedule.cpp.o"
  "CMakeFiles/bench_schedule.dir/bench_schedule.cpp.o.d"
  "bench_schedule"
  "bench_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
