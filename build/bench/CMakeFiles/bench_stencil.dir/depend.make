# Empty dependencies file for bench_stencil.
# This may be replaced when dependencies are built.
