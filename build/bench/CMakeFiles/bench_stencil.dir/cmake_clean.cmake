file(REMOVE_RECURSE
  "CMakeFiles/bench_stencil.dir/bench_stencil.cpp.o"
  "CMakeFiles/bench_stencil.dir/bench_stencil.cpp.o.d"
  "bench_stencil"
  "bench_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
