file(REMOVE_RECURSE
  "CMakeFiles/bench_simplify.dir/bench_simplify.cpp.o"
  "CMakeFiles/bench_simplify.dir/bench_simplify.cpp.o.d"
  "bench_simplify"
  "bench_simplify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simplify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
