# Empty dependencies file for bench_simplify.
# This may be replaced when dependencies are built.
