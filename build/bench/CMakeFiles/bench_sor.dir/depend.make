# Empty dependencies file for bench_sor.
# This may be replaced when dependencies are built.
