file(REMOVE_RECURSE
  "CMakeFiles/bench_sor.dir/bench_sor.cpp.o"
  "CMakeFiles/bench_sor.dir/bench_sor.cpp.o.d"
  "bench_sor"
  "bench_sor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
