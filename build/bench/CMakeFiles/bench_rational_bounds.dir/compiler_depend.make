# Empty compiler generated dependencies file for bench_rational_bounds.
# This may be replaced when dependencies are built.
