file(REMOVE_RECURSE
  "CMakeFiles/bench_rational_bounds.dir/bench_rational_bounds.cpp.o"
  "CMakeFiles/bench_rational_bounds.dir/bench_rational_bounds.cpp.o.d"
  "bench_rational_bounds"
  "bench_rational_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rational_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
