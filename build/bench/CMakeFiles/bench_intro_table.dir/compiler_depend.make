# Empty compiler generated dependencies file for bench_intro_table.
# This may be replaced when dependencies are built.
