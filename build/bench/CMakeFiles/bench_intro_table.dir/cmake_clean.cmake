file(REMOVE_RECURSE
  "CMakeFiles/bench_intro_table.dir/bench_intro_table.cpp.o"
  "CMakeFiles/bench_intro_table.dir/bench_intro_table.cpp.o.d"
  "bench_intro_table"
  "bench_intro_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
