# Empty compiler generated dependencies file for bench_hpf.
# This may be replaced when dependencies are built.
