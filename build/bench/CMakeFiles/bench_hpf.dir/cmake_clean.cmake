file(REMOVE_RECURSE
  "CMakeFiles/bench_hpf.dir/bench_hpf.cpp.o"
  "CMakeFiles/bench_hpf.dir/bench_hpf.cpp.o.d"
  "bench_hpf"
  "bench_hpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
