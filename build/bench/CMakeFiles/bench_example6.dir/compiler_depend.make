# Empty compiler generated dependencies file for bench_example6.
# This may be replaced when dependencies are built.
