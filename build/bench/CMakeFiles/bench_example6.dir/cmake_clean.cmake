file(REMOVE_RECURSE
  "CMakeFiles/bench_example6.dir/bench_example6.cpp.o"
  "CMakeFiles/bench_example6.dir/bench_example6.cpp.o.d"
  "bench_example6"
  "bench_example6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
