//===- tools/omegalint.cpp - IR invariant linter -------------------------===//
//
// Runs every stage of the counting pipeline with the analysis Validator
// enabled, and cross-checks the symbolic count against the brute-force
// enumeration oracle at sampled symbolic-constant values:
//
//   omegalint examples/formulas            # every *.presburger underneath
//   omegalint formula.presburger ...
//
// File format (one formula per file):
//
//   # comment
//   vars: i, j            counted variables (required)
//   box: -8 24            enumeration box for the cross-check (optional)
//   1 <= i <= n           remaining lines are joined into the formula
//   && i <= j <= n
//
// Exit status is nonzero iff any file fails to parse, any stage reports an
// Error diagnostic, or a symbolic count disagrees with enumeration.
//
// Options:
//   --no-enumerate     skip the enumeration cross-check (structure only)
//   --verbose          print each symbol sample as it is checked
//   plus the shared pipeline flags of tools/Options.h:
//   --workers/--cache/--no-cache/--budget/--stats/--trace/--trace-summary
//
//===----------------------------------------------------------------------===//

#include "analysis/Validator.h"
#include "baselines/Enumerator.h"
#include "counting/Summation.h"
#include "omega/Omega.h"
#include "presburger/Parser.h"
#include "support/Stats.h"

#include "FormulaFile.h"
#include "Options.h"

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace omega;

namespace {

struct LintStats {
  int Files = 0;
  int Problems = 0;
  int Samples = 0;
};

bool Verbose = false;
bool Enumerate = true;
ToolOptions TO;

void problem(LintStats &Stats, const std::string &Path,
             const std::string &Msg) {
  std::cerr << "omegalint: " << Path << ": " << Msg << "\n";
  ++Stats.Problems;
}

/// Reports diagnostics; returns the number of Errors (Warnings are printed
/// but do not fail the lint).
int reportDiags(LintStats &Stats, const std::string &Path,
                const char *Stage, const std::vector<Diagnostic> &Diags) {
  int Errors = 0;
  for (const Diagnostic &D : Diags) {
    std::cerr << "omegalint: " << Path << ": " << Stage << ": "
              << D.toString() << "\n";
    if (D.Sev == Severity::Error)
      ++Errors;
  }
  Stats.Problems += Errors;
  return Errors;
}

/// Sampled values for one symbolic constant.  Small nonnegative values keep
/// the solution sets inside the enumeration box; 0/1 exercise empty and
/// degenerate ranges.
const int64_t SymbolSamples[] = {0, 1, 2, 3, 5, 8};

/// Enumerates assignments of SymbolSamples to \p Symbols, capped to keep
/// the cross-check cost bounded for formulas with many symbols.
std::vector<Assignment> sampleAssignments(const VarSet &Symbols) {
  std::vector<Assignment> Out{Assignment{}};
  for (const std::string &S : Symbols) {
    std::vector<Assignment> Next;
    for (const Assignment &A : Out)
      for (int64_t V : SymbolSamples) {
        Assignment B = A;
        B[S] = BigInt(V);
        Next.push_back(std::move(B));
      }
    Out = std::move(Next);
    if (Out.size() > 36) { // Cap the cross product; keep a spread.
      std::vector<Assignment> Kept;
      for (size_t I = 0; I < Out.size(); I += Out.size() / 36 + 1)
        Kept.push_back(Out[I]);
      Out = std::move(Kept);
    }
  }
  return Out;
}

void lintFile(const std::string &Path, LintStats &Stats) {
  ++Stats.Files;
  FormulaFile In;
  std::string Err;
  if (!readFormulaFile(Path, In, Err)) {
    problem(Stats, Path, Err);
    return;
  }

  // Stage 1: parse.
  ParseResult R = parseFormula(In.FormulaText);
  if (!R) {
    problem(Stats, Path, "parse: " + R.Error);
    return;
  }
  Formula F = *R.Value;

  // Stage 2: source formula structure (no normalization requirement:
  // user-written atoms like "2i <= 4" are legal input).
  reportDiags(Stats, Path, "formula", validateFormula(F));

  // Stage 3: disjoint DNF with the full invariant set.
  SimplifyOptions SOpts;
  SOpts.Disjoint = true;
  std::vector<Conjunct> D = simplify(F, SOpts);
  ValidatorOptions DnfOpts;
  DnfOpts.RequireWildcardFree = true;
  DnfOpts.RequireNormalized = true;
  DnfOpts.RequireDisjoint = true;
  DnfOpts.Overlaps = [](const Conjunct &A, const Conjunct &B) {
    return feasible(Conjunct::merge(A, B));
  };
  int DnfErrors = reportDiags(Stats, Path, "disjoint-dnf",
                              validateDnf(D, std::move(DnfOpts)));

  // Stage 4: symbolic count.
  VarSet Vars(In.Vars.begin(), In.Vars.end());
  PiecewiseValue V = countSolutions(F, Vars);
  reportDiags(Stats, Path, "count", validatePiecewise(V));

  std::cout << Path << ": " << D.size() << " clause"
            << (D.size() == 1 ? "" : "s") << ", count = " << V << "\n";

  if (V.isUnbounded()) {
    problem(Stats, Path, "count is unbounded; nothing to cross-check");
    return;
  }
  if (!Enumerate || DnfErrors > 0)
    return;

  // Stage 5: cross-check against enumeration at sampled symbol values.
  VarSet Symbols;
  for (const std::string &S : F.freeVars())
    if (!Vars.count(S))
      Symbols.insert(S);
  int Agreed = 0, Checked = 0;
  for (const Assignment &At : sampleAssignments(Symbols)) {
    BigInt Exact = enumerateCount(F, In.Vars, At, In.BoxLo, In.BoxHi,
                                  In.BoxLo - 4, In.BoxHi + 4);
    Rational Symbolic = V.evaluate(At);
    ++Checked;
    ++Stats.Samples;
    std::ostringstream Where;
    {
      // Name order (Assignment iterates in id order).
      std::vector<std::pair<std::string, const BigInt *>> Rows;
      Rows.reserve(At.size());
      for (const auto &[V, Value] : At)
        Rows.emplace_back(varName(V), &Value);
      std::sort(Rows.begin(), Rows.end(),
                [](const auto &L, const auto &R) { return L.first < R.first; });
      for (const auto &[Name, Value] : Rows)
        Where << " " << Name << "=" << *Value;
    }
    if (!Symbolic.isInteger() || Symbolic.asInteger() != Exact) {
      problem(Stats, Path,
              "count mismatch at" + Where.str() + ": symbolic " +
                  Symbolic.toString() + " != enumerated " + Exact.toString());
      continue;
    }
    ++Agreed;
    if (Verbose)
      std::cout << "  at" << Where.str() << ": symbolic "
                << Symbolic.toString() << " == enumerated "
                << Exact.toString() << "\n";
  }
  std::cout << "  cross-check: " << Agreed << "/" << Checked
            << " symbol samples agree\n";
}

/// One file must never take down the whole lint run: any escape from the
/// pipeline — including a per-file budget trip under --budget — becomes a
/// problem report and the sweep continues.
void lintOne(const std::string &Path, LintStats &Stats) {
  try {
    BudgetScope Scope(TO.HaveBudget
                          ? std::make_shared<BudgetState>(TO.Count.Budget)
                          : std::shared_ptr<BudgetState>());
    lintFile(Path, Stats);
  } catch (const std::exception &E) {
    problem(Stats, Path, E.what());
  }
}

} // namespace

int runTool(int Argc, char **Argv) {
  std::vector<std::string> Paths;
  auto Fail = [](const std::string &Msg) {
    std::cerr << "omegalint: error: " << Msg << "\n";
    std::exit(1);
  };
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (parseSharedOption(Argc, Argv, I, TO, Fail))
      continue;
    if (Arg == "--verbose")
      Verbose = true;
    else if (Arg == "--no-enumerate")
      Enumerate = false;
    else if (Arg == "--help" || Arg == "-h") {
      std::cout << "usage: omegalint [--verbose] [--no-enumerate] "
                   "[shared options] <file-or-dir>...\n"
                << sharedOptionsHelp();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "omegalint: unknown option: " << Arg << "\n";
      return 1;
    } else
      Paths.push_back(Arg);
  }
  if (Paths.empty()) {
    std::cerr << "omegalint: no inputs (try --help)\n";
    return 1;
  }
  // Install the tool-level query environment (workers, cache, stats
  // collection) for the whole sweep.
  ToolQueryScope QueryScope(TO);
  startToolTrace(TO);

  LintStats Stats;
  for (const std::string &P : Paths) {
    std::error_code EC;
    if (std::filesystem::is_directory(P, EC)) {
      std::vector<std::string> Found;
      for (const auto &Entry :
           std::filesystem::recursive_directory_iterator(P, EC))
        if (Entry.is_regular_file() &&
            Entry.path().extension() == ".presburger")
          Found.push_back(Entry.path().string());
      std::sort(Found.begin(), Found.end());
      if (Found.empty())
        problem(Stats, P, "no .presburger files found");
      for (const std::string &F : Found)
        lintOne(F, Stats);
    } else {
      lintOne(P, Stats);
    }
  }

  std::cout << "omegalint: " << Stats.Files << " file"
            << (Stats.Files == 1 ? "" : "s") << ", " << Stats.Samples
            << " enumeration sample" << (Stats.Samples == 1 ? "" : "s")
            << ", " << Stats.Problems << " problem"
            << (Stats.Problems == 1 ? "" : "s") << "\n";
  if (!finishToolTrace(TO, "omegalint"))
    ++Stats.Problems;
  if (TO.Stats)
    std::cerr << snapshotPipelineStats().toPretty();
  // Exit codes come from the shared QueryOutcome vocabulary: a problem in
  // any file is an input diagnostic for the sweep as a whole.
  return queryOutcomeExitCode(Stats.Problems == 0 ? QueryOutcome::Exact
                                                  : QueryOutcome::InvalidInput);
}

int main(int Argc, char **Argv) {
  try {
    return runTool(Argc, Argv);
  } catch (const std::exception &E) {
    std::cerr << "omegalint: error: " << E.what() << "\n";
  }
  return 1;
}
