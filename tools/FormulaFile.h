//===- tools/FormulaFile.h - .presburger input files -----------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reader for the .presburger file format shared by omegalint, omegacount
/// --file, the determinism tests, and bench_pipeline:
///
///   # comment
///   vars: i, j            counted variables (required)
///   box: -8 24            enumeration box for cross-checks (optional)
///   1 <= i <= n           remaining lines are joined into the formula
///   && i <= j <= n
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_TOOLS_FORMULAFILE_H
#define OMEGA_TOOLS_FORMULAFILE_H

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace omega {

struct FormulaFile {
  std::string Path;
  std::vector<std::string> Vars;
  int64_t BoxLo = -8;
  int64_t BoxHi = 24;
  std::string FormulaText;
};

namespace formula_file_detail {

inline std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r");
  return S.substr(B, E - B + 1);
}

inline std::vector<std::string> splitCommas(const std::string &S) {
  std::vector<std::string> Out;
  std::istringstream IS(S);
  std::string Item;
  while (std::getline(IS, Item, ','))
    if (std::string T = trim(Item); !T.empty())
      Out.push_back(T);
  return Out;
}

} // namespace formula_file_detail

/// Reads \p Path into \p Out.  Returns false (with \p Err set, carrying a
/// 1-based source line number where one applies) on I/O failure or a
/// malformed/missing directive; the formula itself is not parsed here.
inline bool readFormulaFile(const std::string &Path, FormulaFile &Out,
                            std::string &Err) {
  std::ifstream File(Path);
  if (!File) {
    Err = "cannot open file";
    return false;
  }
  Out.Path = Path;
  std::string Line;
  std::string Formula;
  unsigned LineNo = 0;
  while (std::getline(File, Line)) {
    ++LineNo;
    std::string T = formula_file_detail::trim(Line);
    if (T.empty() || T[0] == '#')
      continue;
    if (T.rfind("vars:", 0) == 0) {
      Out.Vars = formula_file_detail::splitCommas(T.substr(5));
      if (Out.Vars.empty()) {
        Err = "line " + std::to_string(LineNo) +
              ": empty \"vars:\" directive";
        return false;
      }
      continue;
    }
    if (T.rfind("box:", 0) == 0) {
      std::istringstream IS(T.substr(4));
      int64_t Lo, Hi;
      std::string Rest;
      if (!(IS >> Lo >> Hi) || (IS >> Rest) || Lo > Hi) {
        Err = "line " + std::to_string(LineNo) +
              ": bad box: directive (want \"box: LO HI\")";
        return false;
      }
      Out.BoxLo = Lo;
      Out.BoxHi = Hi;
      continue;
    }
    Formula += (Formula.empty() ? "" : " ") + T;
  }
  if (Out.Vars.empty()) {
    Err = "missing \"vars:\" directive";
    return false;
  }
  if (Formula.empty()) {
    Err = "no formula found";
    return false;
  }
  Out.FormulaText = Formula;
  return true;
}

} // namespace omega

#endif // OMEGA_TOOLS_FORMULAFILE_H
