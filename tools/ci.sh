#!/usr/bin/env sh
# CI driver: the plain tier-1 build plus a hardened build with IR invariant
# validation and sanitizers, running the full test suite under each.
#
#   tools/ci.sh [build-dir-prefix]
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
prefix=${1:-"$root/build-ci"}

# Sanitized legs: make every UBSan finding fatal-with-stack and honor the
# committed suppression file (tools/sanitize.supp — empty by policy, see
# its header).  Harmless on unsanitized legs.
UBSAN_OPTIONS="suppressions=$root/tools/sanitize.supp:print_stacktrace=1"
export UBSAN_OPTIONS

run_matrix() {
  dir=$1
  shift
  echo "=== configure: $dir ($*)"
  cmake -B "$dir" -S "$root" "$@"
  echo "=== build: $dir"
  cmake --build "$dir" -j
  echo "=== test: $dir"
  ctest --test-dir "$dir" --output-on-failure -j
  abort_free_leg "$dir"
  differential_leg "$dir"
  server_leg "$dir"
  bench_leg "$dir"
  trace_leg "$dir"
}

# Server leg: omegad end to end in every configuration (so the wire
# protocol, admission control, and drain paths face the sanitizers).
# Frame-level malformed-input coverage lives in ServerTest, which the
# ctest pass above already ran under this leg's instrumentation; here the
# real daemon is driven through the real client:
#   1. the example corpus over 4 concurrent connections with --check
#      (every response recomputed in-process via countBatch and compared)
#      and cross-connection answers required bit-identical;
#   2. a soft-limit-0 daemon sheds every query to the budgeted bounds
#      path, which must still answer (exit 0) and count the sheds;
#   3. both daemons must drain and exit 0 on SIGTERM.
server_leg() {
  dir=$1
  echo "=== server: $dir"
  sock="$dir/omegad-ci.sock"
  list="$dir/omegad-ci.batch"
  ls "$root"/examples/formulas/*.presburger > "$list"

  "$dir/tools/omegad" --socket "$sock" --max-inflight 8 &
  pid=$!
  i=0
  while [ ! -S "$sock" ] && [ $i -lt 100 ]; do sleep 0.1; i=$((i + 1)); done
  "$dir/tools/omegaclient" --socket "$sock" --ping >/dev/null
  "$dir/tools/omegaclient" --socket "$sock" --batch "$list" --check \
    --connections 4 >/dev/null
  "$dir/tools/omegaclient" --socket "$sock" --stats \
    | grep -q '"schema": 5' || {
      echo "server: stats reply missing pipeline schema" >&2; exit 1; }
  kill -TERM "$pid"
  code=0; wait "$pid" || code=$?
  if [ "$code" -ne 0 ]; then
    echo "server: omegad exited $code on SIGTERM (want 0)" >&2
    exit 1
  fi

  "$dir/tools/omegad" --socket "$sock" --max-inflight 0 --hard-limit 8 &
  pid=$!
  i=0
  while [ ! -S "$sock" ] && [ $i -lt 100 ]; do sleep 0.1; i=$((i + 1)); done
  "$dir/tools/omegaclient" --socket "$sock" --batch "$list" >/dev/null
  "$dir/tools/omegaclient" --socket "$sock" --stats \
    | grep -q '"shed":[1-9]' || {
      echo "server: soft-limit-0 daemon shed nothing" >&2; exit 1; }
  kill -TERM "$pid"
  code=0; wait "$pid" || code=$?
  if [ "$code" -ne 0 ]; then
    echo "server: shed-mode omegad exited $code on SIGTERM (want 0)" >&2
    exit 1
  fi
  echo "=== server: $dir clean"
}

# Differential leg: the cross-backend fuzz harness (DESIGN.md §14) run
# explicitly in every configuration — so the automaton and enumerate
# backends face the sanitizers too — with its skip accounting printed.
# 600 generated formulas; any count disagreement, silent skip, or
# non-refusal error fails the binary.
differential_leg() {
  dir=$1
  echo "=== differential: $dir"
  log="$dir/cross-backend.log"
  if ! "$dir/tests/fuzz_differential_test" --gtest_filter='*CrossBackend*' \
      >"$log" 2>&1; then
    cat "$log" >&2
    echo "differential: cross-backend harness failed" >&2
    exit 1
  fi
  grep "cross-backend" "$log"
  echo "=== differential: $dir clean"
}

# Bench leg: quick runs of the benchmark gates.  Each binary enforces its
# own correctness claims (identical answers across configurations for
# bench_pipeline; differential + golden checksums, zero allocations, and
# zero spills for bench_arith and bench_ir) and exits nonzero on violation.  When python3
# is available the emitted JSON is additionally parsed and its headline
# fields checked; on the unsanitized default leg the small-value fast path
# must beat the spilled limb path by >= 5x geomean (sanitizer
# instrumentation distorts relative timings, so other legs skip the bar).
bench_leg() {
  dir=$1
  echo "=== bench: $dir"
  "$dir/bench/bench_arith" --quick --out "$dir/BENCH_arith.json" \
    | grep -q "bench_arith: ok"
  "$dir/bench/bench_pipeline" --quick --out "$dir/BENCH_pipeline.json" \
    | grep -q "bench_pipeline: ok"
  "$dir/bench/bench_backend" --quick --out "$dir/BENCH_backend.json" \
    2>&1 | grep -q "bench_backend: ok"
  "$dir/bench/bench_ir" --quick --out "$dir/BENCH_ir.json" \
    | grep -q "bench_ir: ok"
  "$dir/bench/bench_server" --quick --out "$dir/BENCH_server.json" \
    | grep -q "bench_server: ok"
  if command -v python3 >/dev/null 2>&1; then
    strict=0
    case $dir in *-default) strict=1 ;; esac
    python3 - "$dir/BENCH_arith.json" "$dir/BENCH_pipeline.json" \
        "$strict" "$dir/BENCH_backend.json" "$root/BENCH_pipeline.json" \
        "$dir/BENCH_ir.json" "$root/BENCH_ir.json" \
        "$dir/BENCH_server.json" "$root/BENCH_server.json" \
        <<'PYEOF'
import json, sys
arith = json.load(open(sys.argv[1]))
pipe = json.load(open(sys.argv[2]))
strict = sys.argv[3] == "1"
backend = json.load(open(sys.argv[4]))
assert arith["checks_passed"], "bench_arith self-checks failed"
assert arith["small_allocations_total"] == 0, "small path allocated"
assert arith["small_spills_total"] == 0, "small path spilled"
assert all(s["checksum_ok"] for s in arith["sections"])
assert pipe["schema"] == 5, "bench_pipeline JSON schema drifted"
assert pipe["answers_identical"], "bench_pipeline answers diverged"
assert len(pipe["configs"]) == 5
assert all(c["stats"]["schema"] == 5 for c in pipe["configs"])
# Coalesce gates (quick run, deterministic counters): the indexed worklist
# must beat the committed pre-index baseline by the ISSUE's bars on the
# full-scale bench; on the quick bench the counters are deterministic, so
# assert the pair-pruning outcome directly: most candidate pairs must die
# in the prefilter, never reaching an Omega feasibility call.
serial = next(c["stats"] for c in pipe["configs"]
              if c["name"] == "serial-nocache")
pairs = serial["coalesce_pairs"] + serial["coalesce_prefiltered"]
assert pairs > 0, "coalesce saw no candidate pairs"
assert serial["coalesce_prefiltered"] >= serial["coalesce_pairs"], \
    f"prefilter rejected {serial['coalesce_prefiltered']}/{pairs} pairs " \
    "(want a majority; the clause index is not pruning)"
# speedup_workers is either a real >=4-core measurement or an explicit
# null + reason; a number from a narrower host is the bug PR 8 fixed.
if pipe["hardware_concurrency"] >= 4:
    assert isinstance(pipe["speedup_workers"], (int, float)), \
        "speedup_workers missing on a >=4-core host"
else:
    assert pipe["speedup_workers"] is None, \
        "speedup_workers reported from a <4-core host"
    assert "< 4" in pipe["speedup_workers_skip_reason"]
# The committed full-scale BENCH_pipeline.json must clear the ISSUE's
# bars against the pre-index baseline recorded inside it: >= 3x less
# coalesce wall time, >= 5x fewer feasibility tests, identical answers.
full = json.load(open(sys.argv[5]))
assert full["schema"] == 5 and full["answers_identical"]
base = full["baseline"]
fserial = next(c["stats"] for c in full["configs"]
               if c["name"] == "serial-nocache")
feas_ratio = base["feasibility_tests"] / fserial["feasibility_tests"]
assert feas_ratio >= 5.0, \
    f"committed bench: only {feas_ratio:.1f}x fewer feasibility tests " \
    "than the pre-index baseline (want >= 5x)"
ms_ratio = base["coalesce_ms"] / fserial["coalesce_ms"]
assert ms_ratio >= 3.0, \
    f"committed bench: coalesce {fserial['coalesce_ms']:.1f}ms vs baseline " \
    f"{base['coalesce_ms']:.1f}ms, only {ms_ratio:.1f}x (want >= 3x)"
assert backend["schema"] == 3, "bench_backend JSON schema drifted"
assert backend["answers_identical"], "bench_backend counts diverged"
assert len(backend["cases"]) >= 5, "dense-finite corpus shrank"
# IR gates: the flat-term correctness and allocation claims hold on every
# leg (the differential checksums are timing-independent and the inline
# path allocates nothing regardless of instrumentation); the 3x speedup
# bar, like arith's, only means something uninstrumented.
ir = json.load(open(sys.argv[6]))
assert ir["checks_passed"], "bench_ir self-checks failed"
assert ir["flat_allocations_total"] == 0, "flat inline path allocated"
assert ir["flat_term_spills"] == 0, "flat inline path spilled terms"
assert all(s["checksum_ok"] for s in ir["sections"])
# The committed full-scale BENCH_ir.json must clear the ISSUE bar: >= 3x
# aggregate over the string-keyed map model, allocation- and spill-free.
full_ir = json.load(open(sys.argv[7]))
assert full_ir["checks_passed"], "committed BENCH_ir.json self-checks failed"
assert full_ir["flat_allocations_total"] == 0
assert full_ir["flat_term_spills"] == 0
assert full_ir["aggregate_speedup"] >= 3.0, \
    f"committed bench: flat terms only {full_ir['aggregate_speedup']:.2f}x " \
    "vs the map model (want >= 3x)"
# Server gates: the quick run must stay answer-identical across its
# cold/warm passes and connection layouts on every leg; the committed
# full-scale BENCH_server.json must show the persistent cross-query cache
# earning its keep — warm-cache throughput >= 1.5x cold at every measured
# connection count (the ISSUE's bar for running a daemon at all).
srv = json.load(open(sys.argv[8]))
assert srv["schema"] == 1, "bench_server JSON schema drifted"
assert srv["answers_identical"], "bench_server answers diverged"
full_srv = json.load(open(sys.argv[9]))
assert full_srv["schema"] == 1 and full_srv["answers_identical"]
assert full_srv["warm_speedup_min"] >= 1.5, \
    f"committed bench: warm cache only {full_srv['warm_speedup_min']:.2f}x " \
    "vs cold (want >= 1.5x at every connection count)"
if strict:
    assert arith["speedup_geomean"] >= 5.0, \
        f"fast path only {arith['speedup_geomean']:.2f}x vs spilled (want >= 5x)"
    assert backend["speedup"] >= 2.0, \
        f"automaton only {backend['speedup']:.2f}x vs pugh (want >= 2x)"
    assert ir["aggregate_speedup"] >= 3.0, \
        f"flat terms only {ir['aggregate_speedup']:.2f}x vs map (want >= 3x)"
print("bench json: ok (arith x%.1f, automaton x%.1f, ir x%.1f, "
      "server warm x%.1f)"
      % (arith["speedup_geomean"], backend["speedup"],
         ir["aggregate_speedup"], full_srv["warm_speedup_min"]))
PYEOF
  else
    echo "bench json: python3 unavailable, JSON checks skipped"
  fi
  echo "=== bench: $dir clean"
}

# Abort-free leg: every malformed input must exit 1 with a diagnostic and
# every budget-starved query must exit 0 with certified bounds — an abort
# (signal exit, code >= 128) fails the leg.  Runs inside each sanitizer
# configuration so the degraded paths are exercised hardened too.
abort_free_leg() {
  dir=$1
  echo "=== abort-free: $dir"
  count="$dir/tools/omegacount"
  lint="$dir/tools/omegalint"
  for bad in "$root"/tests/corpus/bad/*.presburger; do
    code=0
    "$count" --budget=bits=64 --file "$bad" >/dev/null 2>&1 || code=$?
    if [ "$code" -ne 1 ]; then
      echo "abort-free: $bad: omegacount exited $code (want 1)" >&2
      exit 1
    fi
    # overflow_literal is only malformed under a budget's bits= knob;
    # omegalint takes no budget, so it legitimately accepts that one.
    case $bad in *overflow_literal*) continue ;; esac
    code=0
    "$lint" --no-enumerate "$bad" >/dev/null 2>&1 || code=$?
    if [ "$code" -ne 1 ]; then
      echo "abort-free: $bad: omegalint exited $code (want 1)" >&2
      exit 1
    fi
  done
  # Tiny budget forced to exhaust over the example formulas: degraded
  # answers are still answers, so the exit code must be 0.
  for ex in "$root"/examples/formulas/*.presburger; do
    for workers in 0 4; do
      code=0
      "$count" --file "$ex" --budget=clauses=1,depth=1 \
        --workers "$workers" >/dev/null 2>&1 || code=$?
      if [ "$code" -ne 0 ]; then
        echo "abort-free: $ex: budget-starved omegacount exited $code" \
             "(want 0, workers=$workers)" >&2
        exit 1
      fi
    done
  done
  echo "=== abort-free: $dir clean"
}

# Trace leg (default configuration only): every example formula run with
# --trace must emit Chrome JSON that python3 json.load()s with resolvable
# parent links, the text summary must list all nine pipeline phases, and
# the *disabled*-tracing pipeline must stay within 1% of the committed
# BENCH_pipeline.json baseline — the instrumentation's one-branch cost
# model (DESIGN.md §12).  Wall clock is noisy even best-of-reps, so the
# overhead gate retries a few times and passes on the first clean run.
trace_leg() {
  dir=$1
  case $dir in *-default) ;; *) return 0 ;; esac
  echo "=== trace: $dir"
  if ! command -v python3 >/dev/null 2>&1; then
    echo "trace: python3 unavailable, leg skipped"
    return 0
  fi
  count="$dir/tools/omegacount"
  out="$dir/trace-ci"
  mkdir -p "$out"
  for ex in "$root"/examples/formulas/*.presburger; do
    name=$(basename "$ex" .presburger)
    for workers in 0 1 4; do
      "$count" --file "$ex" --workers "$workers" --trace-summary \
        --trace "$out/$name-w$workers.trace.json" \
        >/dev/null 2>"$out/$name-w$workers.summary.txt"
    done
  done
  for phase in simplify toDNF crossConjoin projectVars splinter \
               makeDisjoint coalesce summation snfReparam; do
    if ! grep -q "$phase" "$out/figure1-w0.summary.txt"; then
      echo "trace: phase $phase missing from summary" >&2
      exit 1
    fi
  done
  python3 - "$out"/*.trace.json <<'PYEOF'
import json, sys
for path in sys.argv[1:]:
    trace = json.load(open(path))
    events = trace["traceEvents"]
    assert events, f"{path}: empty trace"
    ids = {e["args"]["id"] for e in events}
    for e in events:
        assert e["ph"] == "X" and e["cat"] == "omega", f"{path}: bad event"
        for key in ("name", "ts", "dur", "pid", "tid"):
            assert key in e, f"{path}: event missing {key}"
        parent = e["args"]["parent"]
        assert parent == 0 or parent in ids, \
            f"{path}: dangling parent {parent}"
print(f"trace json: ok ({len(sys.argv) - 1} files)")
PYEOF
  attempts=4
  while :; do
    "$dir/bench/bench_pipeline" --out "$out/pipe.json" >/dev/null 2>&1
    code=0
    python3 - "$root/BENCH_pipeline.json" "$out/pipe.json" <<'PYEOF' || code=$?
import json, sys
base = json.load(open(sys.argv[1]))
cur = json.load(open(sys.argv[2]))
pick = lambda d: next(c["wall_ms"] for c in d["configs"]
                      if c["name"] == "serial-nocache")
b, c = pick(base), pick(cur)
ratio = c / b
print(f"trace overhead: serial-nocache {c:.1f}ms vs baseline {b:.1f}ms "
      f"(x{ratio:.3f})")
sys.exit(0 if ratio <= 1.01 else 1)
PYEOF
    [ "$code" -eq 0 ] && break
    attempts=$((attempts - 1))
    if [ "$attempts" -le 0 ]; then
      echo "trace: disabled-tracing overhead exceeds 1% of baseline" >&2
      exit 1
    fi
    echo "trace: overhead gate noisy, retrying ($attempts left)"
  done
  echo "=== trace: $dir clean"
}

# Analyze leg: the static-analysis gate (README "Static analysis").
#   1. omegatidy over src/ tools/ bench/ — zero findings required.
#   2. Clang capability analysis: full build at -DOMEGA_THREAD_SAFETY=ON
#      (-Wthread-safety -Werror=thread-safety), plus the fixture pair —
#      thread_safety_fail.cpp must be REJECTED, thread_safety_ok.cpp must
#      compile clean.  Probed: skipped with a notice when clang++ is not
#      installed (gcc compiles the annotations to no-ops).
#   3. clang-tidy (expanded .clang-tidy: bugprone/performance/concurrency)
#      over src/ via the compilation database, bounded to library sources
#      so the leg stays minutes, not hours.
# Needs the default leg's build dir for the omegatidy binary and
# compile_commands.json, so run_matrix "$prefix-default" must come first.
analyze_leg() {
  dir="$prefix-default"
  echo "=== analyze: omegatidy"
  "$dir/tools/omegatidy" "$root/src" "$root/tools" "$root/bench"

  if command -v clang++ >/dev/null 2>&1; then
    echo "=== analyze: clang -Wthread-safety build"
    cmake -B "$prefix-analyze" -S "$root" -DCMAKE_CXX_COMPILER=clang++ \
      -DOMEGA_THREAD_SAFETY=ON
    cmake --build "$prefix-analyze" -j
    echo "=== analyze: capability-analysis fixtures"
    ts="clang++ -std=c++20 -I$root/src -Wthread-safety
        -Werror=thread-safety -fsyntax-only"
    if $ts "$root/tests/lint/thread_safety_fail.cpp" 2>/dev/null; then
      echo "analyze: thread_safety_fail.cpp compiled; -Wthread-safety" \
           "failed to reject an unguarded access" >&2
      exit 1
    fi
    $ts "$root/tests/lint/thread_safety_ok.cpp"
  else
    echo "=== analyze: clang++ unavailable, thread-safety build skipped"
  fi

  if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== analyze: clang-tidy"
    find "$root/src" -name '*.cpp' \
      | xargs clang-tidy -quiet -p "$dir"
  else
    echo "=== analyze: clang-tidy unavailable, skipped"
  fi
  echo "=== analyze: clean"
}

# Tier 1: the default configuration every change must keep green.
run_matrix "$prefix-default"
analyze_leg

# Hardened: boundary validation on, AddressSanitizer + UBSan.
run_matrix "$prefix-hardened" \
  -DOMEGA_VALIDATE=ON "-DOMEGA_SANITIZE=address;undefined"

# Parallel: worker pool + validation, under ThreadSanitizer when the
# toolchain supports it (probe with a trivial compile; TSan is absent from
# some gcc builds), plain otherwise.  Either way the determinism and fuzz
# suites run with the parallel code paths compiled in.
tsan_flags=""
if printf 'int main(){return 0;}\n' | \
   ${CXX:-c++} -fsanitize=thread -x c++ - -o /dev/null 2>/dev/null; then
  tsan_flags="-DOMEGA_SANITIZE=thread"
else
  echo "=== ci: ThreadSanitizer unavailable, running parallel leg unsanitized"
fi
run_matrix "$prefix-parallel" \
  -DOMEGA_PARALLEL=ON -DOMEGA_VALIDATE=ON $tsan_flags

echo "=== ci: all configurations green"
