#!/usr/bin/env sh
# CI driver: the plain tier-1 build plus a hardened build with IR invariant
# validation and sanitizers, running the full test suite under each.
#
#   tools/ci.sh [build-dir-prefix]
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
prefix=${1:-"$root/build-ci"}

run_matrix() {
  dir=$1
  shift
  echo "=== configure: $dir ($*)"
  cmake -B "$dir" -S "$root" "$@"
  echo "=== build: $dir"
  cmake --build "$dir" -j
  echo "=== test: $dir"
  ctest --test-dir "$dir" --output-on-failure -j
}

# Tier 1: the default configuration every change must keep green.
run_matrix "$prefix-default"

# Hardened: boundary validation on, AddressSanitizer + UBSan.
run_matrix "$prefix-hardened" \
  -DOMEGA_VALIDATE=ON "-DOMEGA_SANITIZE=address;undefined"

echo "=== ci: all configurations green"
