#!/usr/bin/env sh
# CI driver: the plain tier-1 build plus a hardened build with IR invariant
# validation and sanitizers, running the full test suite under each.
#
#   tools/ci.sh [build-dir-prefix]
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
prefix=${1:-"$root/build-ci"}

run_matrix() {
  dir=$1
  shift
  echo "=== configure: $dir ($*)"
  cmake -B "$dir" -S "$root" "$@"
  echo "=== build: $dir"
  cmake --build "$dir" -j
  echo "=== test: $dir"
  ctest --test-dir "$dir" --output-on-failure -j
}

# Tier 1: the default configuration every change must keep green.
run_matrix "$prefix-default"

# Hardened: boundary validation on, AddressSanitizer + UBSan.
run_matrix "$prefix-hardened" \
  -DOMEGA_VALIDATE=ON "-DOMEGA_SANITIZE=address;undefined"

# Parallel: worker pool + validation, under ThreadSanitizer when the
# toolchain supports it (probe with a trivial compile; TSan is absent from
# some gcc builds), plain otherwise.  Either way the determinism and fuzz
# suites run with the parallel code paths compiled in.
tsan_flags=""
if printf 'int main(){return 0;}\n' | \
   ${CXX:-c++} -fsanitize=thread -x c++ - -o /dev/null 2>/dev/null; then
  tsan_flags="-DOMEGA_SANITIZE=thread"
else
  echo "=== ci: ThreadSanitizer unavailable, running parallel leg unsanitized"
fi
run_matrix "$prefix-parallel" \
  -DOMEGA_PARALLEL=ON -DOMEGA_VALIDATE=ON $tsan_flags

echo "=== ci: all configurations green"
