//===- tools/TidyLint.cpp - omegatidy lint engine ------------------------===//
//
// Token-level enforcement of the repo invariants listed in TidyLint.h.
// The tokenizer is deliberately small: it understands comments, string and
// character literals, preprocessor lines, and qualified identifiers, which
// is exactly enough for rules that trigger on spellings (`assert(`,
// `std::mutex`, `new`) and on the shape of class bodies (guarded-by).
//
//===----------------------------------------------------------------------===//

#include "TidyLint.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>

using namespace omega;
using namespace omega::tidy;

std::string Finding::toString() const {
  std::ostringstream OS;
  OS << Path << ":" << Line << ":" << Col << ": " << Rule << ": " << Message;
  return OS.str();
}

namespace {

enum class Tk { Ident, Number, String, Punct };

struct Token {
  Tk Kind;
  std::string Text;
  size_t Line;
  size_t Col;
};

/// Per-line rule suppressions harvested from `omegatidy: allow(...)`
/// comments.  A comment on line N silences lines N and N+1.
using Suppressions = std::map<size_t, std::set<std::string>>;

void recordAllows(const std::string &Comment, size_t Line, Suppressions &S) {
  const std::string Key = "omegatidy: allow(";
  size_t At = Comment.find(Key);
  if (At == std::string::npos)
    return;
  size_t Begin = At + Key.size();
  size_t End = Comment.find(')', Begin);
  if (End == std::string::npos)
    return;
  std::string Rule;
  for (size_t I = Begin; I <= End; ++I) {
    char C = I < End ? Comment[I] : ',';
    if (C == ',' || C == ' ') {
      if (!Rule.empty()) {
        S[Line].insert(Rule);
        S[Line + 1].insert(Rule);
      }
      Rule.clear();
    } else {
      Rule += C;
    }
  }
}

/// Tokenizes C++ source.  Comments and preprocessor directives are
/// consumed (not emitted); suppression comments land in \p Sup, directive
/// lines (with continuations folded) in \p Directives as (line, text).
/// Qualified identifiers (`std::mutex`, `omega::Mutex`) merge into one
/// token; `>>` splits into two `>` so template depth tracking is trivial.
std::vector<Token> tokenize(const std::string &Text, Suppressions &Sup,
                            std::vector<std::pair<size_t, std::string>>
                                &Directives) {
  std::vector<Token> Out;
  size_t Line = 1, Col = 1;
  size_t I = 0, N = Text.size();
  bool AtLineStart = true;

  auto advance = [&](char C) {
    if (C == '\n') {
      ++Line;
      Col = 1;
      AtLineStart = true;
    } else {
      ++Col;
      if (!std::isspace(static_cast<unsigned char>(C)))
        AtLineStart = false;
    }
  };

  while (I < N) {
    char C = Text[I];
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance(C);
      ++I;
      continue;
    }
    // Line comment.
    if (C == '/' && I + 1 < N && Text[I + 1] == '/') {
      size_t End = Text.find('\n', I);
      if (End == std::string::npos)
        End = N;
      recordAllows(Text.substr(I, End - I), Line, Sup);
      while (I < End)
        advance(Text[I++]);
      continue;
    }
    // Block comment.
    if (C == '/' && I + 1 < N && Text[I + 1] == '*') {
      size_t End = Text.find("*/", I + 2);
      if (End == std::string::npos)
        End = N;
      else
        End += 2;
      recordAllows(Text.substr(I, End - I), Line, Sup);
      while (I < End)
        advance(Text[I++]);
      continue;
    }
    // Preprocessor directive: swallow to end of line, folding
    // backslash-continuations, and save the text for the line rules.
    if (C == '#' && AtLineStart) {
      size_t StartLine = Line;
      std::string Dir;
      while (I < N) {
        char D = Text[I];
        if (D == '\n') {
          if (!Dir.empty() && Dir.back() == '\\') {
            Dir.pop_back();
            advance(D);
            ++I;
            continue;
          }
          break;
        }
        // A comment ends the directive text but not the line scan.
        if (D == '/' && I + 1 < N &&
            (Text[I + 1] == '/' || Text[I + 1] == '*'))
          break;
        Dir += D;
        advance(D);
        ++I;
      }
      Directives.emplace_back(StartLine, Dir);
      continue;
    }
    // String / char literal (handles escapes; raw strings are not used in
    // this repo, and a raw string would only make the linter conservative).
    if (C == '"' || C == '\'') {
      size_t StartLine = Line, StartCol = Col;
      char Quote = C;
      advance(C);
      ++I;
      std::string Body;
      while (I < N && Text[I] != Quote) {
        if (Text[I] == '\\' && I + 1 < N) {
          Body += Text[I];
          advance(Text[I++]);
        }
        Body += Text[I];
        advance(Text[I++]);
      }
      if (I < N) {
        advance(Text[I]);
        ++I;
      }
      Out.push_back({Tk::String, Body, StartLine, StartCol});
      continue;
    }
    // Identifier, possibly qualified.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t StartLine = Line, StartCol = Col;
      std::string Id;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Text[I])) ||
                       Text[I] == '_')) {
        Id += Text[I];
        advance(Text[I++]);
      }
      while (I + 1 < N && Text[I] == ':' && Text[I + 1] == ':') {
        size_t J = I + 2;
        if (J >= N || (!std::isalpha(static_cast<unsigned char>(Text[J])) &&
                       Text[J] != '_'))
          break;
        Id += "::";
        advance(Text[I++]);
        advance(Text[I++]);
        while (I < N && (std::isalnum(static_cast<unsigned char>(Text[I])) ||
                         Text[I] == '_')) {
          Id += Text[I];
          advance(Text[I++]);
        }
      }
      Out.push_back({Tk::Ident, Id, StartLine, StartCol});
      continue;
    }
    // Number (loose: accepts hex/float tails, which is fine — no rule
    // looks inside numbers).
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t StartLine = Line, StartCol = Col;
      std::string Num;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Text[I])) ||
                       Text[I] == '.' || Text[I] == '\'')) {
        Num += Text[I];
        advance(Text[I++]);
      }
      Out.push_back({Tk::Number, Num, StartLine, StartCol});
      continue;
    }
    // Punctuation, one char at a time (`>>` becomes `>` `>`).
    Out.push_back({Tk::Punct, std::string(1, C), Line, Col});
    advance(C);
    ++I;
  }
  return Out;
}

bool startsWith(const std::string &S, const char *Prefix) {
  return S.rfind(Prefix, 0) == 0;
}

bool endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

/// The engine: tokenizes once, then runs every rule.
class Linter {
public:
  Linter(const std::string &Path, const std::string &RelPath,
         const std::string &Text)
      : Path(Path), RelPath(RelPath),
        IsHeader(endsWith(RelPath, ".h")),
        Toks(tokenize(Text, Sup, Directives)) {}

  std::vector<Finding> run() {
    tokenRules();
    directiveRules();
    if (IsHeader)
      headerGuardRule();
    std::sort(Out.begin(), Out.end(), [](const Finding &A, const Finding &B) {
      return std::tie(A.Line, A.Col, A.Rule) < std::tie(B.Line, B.Col, B.Rule);
    });
    return std::move(Out);
  }

private:
  const std::string Path;
  const std::string RelPath;
  const bool IsHeader;
  Suppressions Sup;
  std::vector<std::pair<size_t, std::string>> Directives;
  std::vector<Token> Toks;
  std::vector<Finding> Out;

  void report(const Token &At, const char *Rule, const std::string &Msg) {
    auto It = Sup.find(At.Line);
    if (It != Sup.end() && It->second.count(Rule))
      return;
    Out.push_back({Path, At.Line, At.Col, Rule, Msg});
  }

  const Token *next(size_t I) const {
    return I + 1 < Toks.size() ? &Toks[I + 1] : nullptr;
  }

  // --- Rules over the token stream --------------------------------------

  void tokenRules() {
    const bool InSrc = startsWith(RelPath, "src/");
    const bool IsBigInt = RelPath == "src/support/BigInt.cpp";
    const bool IsAnnotations = RelPath == "src/support/ThreadAnnotations.h";
    const bool IsTrace = RelPath == "src/support/Trace.h" ||
                         RelPath == "src/support/Trace.cpp";

    static const char *RawSync[] = {
        "std::mutex",          "std::timed_mutex",
        "std::recursive_mutex", "std::recursive_timed_mutex",
        "std::shared_mutex",    "std::shared_timed_mutex",
        "std::lock_guard",      "std::unique_lock",
        "std::scoped_lock",     "std::shared_lock",
        "std::condition_variable", "std::condition_variable_any"};

    for (size_t I = 0; I < Toks.size(); ++I) {
      const Token &T = Toks[I];
      if (T.Kind != Tk::Ident)
        continue;
      const Token *Nx = next(I);
      const Token *Pv = I > 0 ? &Toks[I - 1] : nullptr;

      if (InSrc && T.Text == "assert" && Nx && Nx->Text == "(")
        report(T, "assert",
               "assert() in src/ compiles out under NDEBUG; use check() / "
               "fatalError() or return a Result (DESIGN.md §9)");

      if (!IsBigInt) {
        bool AfterOperator = Pv && Pv->Kind == Tk::Ident &&
                             (Pv->Text == "operator" ||
                              endsWith(Pv->Text, "::operator"));
        // Placement new ("new (addr) T{...}") constructs into storage the
        // caller already owns; only allocating new is a lifetime hazard.
        bool Placement = Nx && Nx->Text == "(";
        if (T.Text == "new" && !AfterOperator && !Placement)
          report(T, "naked-new",
                 "naked new; own memory with containers or smart pointers "
                 "(only support/BigInt.cpp spill paths are exempt)");
        if ((T.Text == "malloc" || T.Text == "calloc" ||
             T.Text == "realloc" || T.Text == "free" ||
             endsWith(T.Text, "::malloc") || endsWith(T.Text, "::calloc") ||
             endsWith(T.Text, "::realloc") || endsWith(T.Text, "::free")) &&
            Nx && Nx->Text == "(")
          report(T, "naked-new",
                 "raw " + T.Text + "(); own memory with containers or smart "
                 "pointers (only support/BigInt.cpp spill paths are exempt)");
      }

      if (!IsAnnotations)
        for (const char *Raw : RawSync)
          if (T.Text == Raw)
            report(T, "mutex-wrapper",
                   T.Text + " is invisible to -Wthread-safety; use "
                   "omega::Mutex / MutexLock / UniqueLock / "
                   "ConditionVariable from support/ThreadAnnotations.h");

      // String-keyed variable containers reintroduce per-term string
      // compares/hashes on IR paths; only the parser and the Var boundary
      // may map names, everything else keys on interned VarIds.
      if (InSrc && !startsWith(RelPath, "src/presburger/Parser") &&
          !startsWith(RelPath, "src/presburger/Var") &&
          (T.Text == "std::map" || T.Text == "std::unordered_map") &&
          I + 4 < Toks.size() && Toks[I + 1].Text == "<" &&
          Toks[I + 2].Text == "std::string" && Toks[I + 3].Text == ",") {
        const std::string &Val = Toks[I + 4].Text;
        if (Val == "BigInt" || Val == "omega::BigInt" || Val == "VarId" ||
            Val == "omega::VarId")
          report(T, "string-keyed-vars",
                 T.Text + "<std::string, " + Val + "> on an IR path; "
                 "intern names into VarId (presburger/VarTable.h) and key "
                 "on ids (DESIGN.md §16)");
      }

      if (!IsTrace &&
          (T.Text == "TraceSpan" || endsWith(T.Text, "::TraceSpan")) && Nx &&
          (Nx->Text == "(" || Nx->Text == "{"))
        report(T, "trace-span-temp",
               "unnamed temporary TraceSpan is destroyed immediately and "
               "times nothing; name the span object");

      if (IsHeader && T.Text == "using" && Nx && Nx->Kind == Tk::Ident &&
          Nx->Text == "namespace")
        report(T, "include-hygiene",
               "`using namespace` in a header leaks into every includer");

      // The process-global knob setters were retired with the omegad
      // redesign; any surviving reference (call, declaration, or shim) is
      // a regression toward cross-query mutable state.
      static const char *LegacyKnobs[] = {
          "setWorkerCount", "setConjunctCacheCapacity", "setArithOpCounting"};
      for (const char *Knob : LegacyKnobs)
        if (T.Text == Knob || endsWith(T.Text, std::string("::") + Knob))
          report(T, "legacy-knob",
                 T.Text + " was removed with the global-knob API; pass "
                 "CountOptions per query (omega/Omega.h) or configure the "
                 "server via ServerOptions (DESIGN.md §17)");
    }

    guardedByRule();
  }

  // --- guarded-by: classes holding a Mutex ------------------------------

  struct Member {
    std::vector<Token> Tokens;
  };

  /// True when \p M declares a by-value member of capability type Mutex.
  static bool declaresMutex(const Member &M) {
    for (size_t I = 0; I + 1 < M.Tokens.size(); ++I) {
      const Token &T = M.Tokens[I];
      if (T.Kind == Tk::Ident &&
          (T.Text == "Mutex" || T.Text == "omega::Mutex") &&
          M.Tokens[I + 1].Kind == Tk::Ident)
        return true;
    }
    return false;
  }

  /// True when the statement can only be a function or type declaration,
  /// not mutable lock-protected data.
  static bool exemptMember(const Member &M) {
    if (M.Tokens.empty())
      return true;
    static const char *Skip[] = {"using",  "typedef",   "friend",
                                 "static", "constexpr", "operator",
                                 "explicit", "template", "class",
                                 "struct", "enum",      "virtual"};
    size_t Angle = 0;
    for (size_t I = 0; I < M.Tokens.size(); ++I) {
      const Token &T = M.Tokens[I];
      if (T.Kind == Tk::Ident) {
        for (const char *S : Skip)
          if (T.Text == S)
            return true;
        if (T.Text == "OMEGA_GUARDED_BY" || T.Text == "OMEGA_PT_GUARDED_BY")
          return true; // Annotated: satisfied.
        if (T.Text == "const" && I == 0)
          return true; // Immutable after construction.
        if (T.Text.find("atomic") != std::string::npos)
          return true; // std::atomic<...>: safe unguarded.
        if (T.Text == "ConditionVariable" ||
            endsWith(T.Text, "::ConditionVariable"))
          return true; // Internally synchronized.
        if (T.Text == "Mutex" || T.Text == "omega::Mutex")
          return true; // The capability itself.
      } else if (T.Kind == Tk::Punct) {
        if (T.Text == "<" && I > 0 && M.Tokens[I - 1].Kind == Tk::Ident)
          ++Angle;
        else if (T.Text == ">" && Angle > 0)
          --Angle;
        else if (T.Text == "(" && Angle == 0)
          return true; // Function declaration.
        else if (T.Text == "=" && Angle == 0)
          break; // Initializer: judge only the declaration part.
      }
    }
    return false;
  }

  static std::string memberName(const Member &M) {
    std::string Name = "<member>";
    size_t Angle = 0;
    for (size_t I = 0; I < M.Tokens.size(); ++I) {
      const Token &T = M.Tokens[I];
      if (T.Kind == Tk::Punct) {
        if (T.Text == "<" && I > 0 && M.Tokens[I - 1].Kind == Tk::Ident)
          ++Angle;
        else if (T.Text == ">" && Angle > 0)
          --Angle;
        else if ((T.Text == "=" || T.Text == "[") && Angle == 0)
          break;
      } else if (T.Kind == Tk::Ident && Angle == 0) {
        Name = T.Text;
      }
    }
    return Name;
  }

  /// Skips Toks[I] (an opening brace/paren/bracket) to its match; returns
  /// the index after the closer.
  size_t skipBalanced(size_t I, const char *Open, const char *Close) const {
    int Depth = 0;
    for (; I < Toks.size(); ++I) {
      if (Toks[I].Kind != Tk::Punct)
        continue;
      if (Toks[I].Text == Open)
        ++Depth;
      else if (Toks[I].Text == Close && --Depth == 0)
        return I + 1;
    }
    return I;
  }

  void guardedByRule() {
    if (RelPath == "src/support/ThreadAnnotations.h")
      return; // MutexLock/UniqueLock hold the Mutex by design.
    for (size_t I = 0; I < Toks.size(); ++I) {
      const Token &T = Toks[I];
      if (T.Kind != Tk::Ident || (T.Text != "class" && T.Text != "struct"))
        continue;
      if (I > 0 && Toks[I - 1].Kind == Tk::Ident &&
          Toks[I - 1].Text == "enum")
        continue;
      // Find the body '{' (or give up at ';' — forward declaration, or
      // '(' — elaborated type in a parameter).
      size_t J = I + 1;
      while (J < Toks.size() && Toks[J].Text != "{" && Toks[J].Text != ";" &&
             Toks[J].Text != "(" && Toks[J].Text != ")" &&
             Toks[J].Text != "=")
        ++J;
      if (J >= Toks.size() || Toks[J].Text != "{")
        continue;
      lintClassBody(J);
    }
  }

  /// Collects the direct data-member statements of the class body opening
  /// at Toks[Open] and applies the guarded-by judgement.
  void lintClassBody(size_t Open) {
    std::vector<Member> Members;
    Member Cur;
    size_t I = Open + 1;
    while (I < Toks.size() && Toks[I].Text != "}") {
      const Token &T = Toks[I];
      if (T.Kind == Tk::Punct && (T.Text == "{" || T.Text == "(")) {
        const char *Close = T.Text == "{" ? "}" : ")";
        size_t After = skipBalanced(I, T.Text.c_str(), Close);
        if (T.Text == "{" &&
            !(After < Toks.size() && Toks[After].Text == ";")) {
          // Function body (not a brace-init followed by ';'): statement
          // over, nothing declared.
          Cur = Member{};
          I = After;
          continue;
        }
        // Brace-init or parameter list: keep judging the declaration; a
        // '(' records as a token so exemptMember sees function shapes.
        if (T.Text == "(")
          Cur.Tokens.push_back(T);
        I = After;
        continue;
      }
      if (T.Kind == Tk::Punct && T.Text == ";") {
        if (!Cur.Tokens.empty())
          Members.push_back(std::move(Cur));
        Cur = Member{};
        ++I;
        continue;
      }
      if (T.Kind == Tk::Ident &&
          (T.Text == "public" || T.Text == "private" ||
           T.Text == "protected") &&
          next(I) && next(I)->Text == ":") {
        Cur = Member{};
        I += 2;
        continue;
      }
      Cur.Tokens.push_back(T);
      ++I;
    }

    if (!std::any_of(Members.begin(), Members.end(), declaresMutex))
      return;
    for (const Member &M : Members) {
      if (exemptMember(M))
        continue;
      const Token &At = M.Tokens.front();
      report(At, "guarded-by",
             "field '" + memberName(M) + "' shares a class with a Mutex "
             "but has no OMEGA_GUARDED_BY annotation (DESIGN.md §13)");
    }
  }

  // --- Rules over preprocessor directives -------------------------------

  void directiveRules() {
    const bool InSrc = startsWith(RelPath, "src/");
    const bool IsAnnotations = RelPath == "src/support/ThreadAnnotations.h";
    for (const auto &[Line, Text] : Directives) {
      std::string Dir = Text;
      Dir.erase(std::remove_if(Dir.begin(), Dir.end(),
                               [](char C) { return C == ' ' || C == '\t'; }),
                Dir.end());
      if (!startsWith(Dir, "#include"))
        continue;
      Token At{Tk::Punct, "#", Line, 1};
      std::string Target = Dir.substr(8);
      if (InSrc && (Target == "<cassert>" || Target == "<assert.h>"))
        report(At, "assert",
               "including " + Target + " in src/; invariants use check() / "
               "fatalError() from support/Error.h");
      if (!IsAnnotations &&
          (Target == "<mutex>" || Target == "<condition_variable>"))
        report(At, "mutex-wrapper",
               "include support/ThreadAnnotations.h instead of " + Target +
               "; raw standard-library locks are invisible to "
               "-Wthread-safety");
      if (Target.size() > 1 && Target[0] == '"' &&
          Target.find("..") != std::string::npos)
        report(At, "include-hygiene",
               "quoted include escapes with \"..\"; include paths are "
               "rooted at src/");
    }
  }

  // --- Header guard ------------------------------------------------------

  void headerGuardRule() {
    std::string Expected = expectedHeaderGuard(RelPath);
    std::string IfndefName, DefineName;
    size_t IfndefLine = 1;
    for (const auto &[Line, Text] : Directives) {
      std::istringstream IS(Text);
      std::string Hash, Name;
      IS >> Hash >> Name;
      if (Hash == "#ifndef" && IfndefName.empty()) {
        IfndefName = Name;
        IfndefLine = Line;
      } else if (Hash == "#define" && !IfndefName.empty() &&
                 DefineName.empty()) {
        DefineName = Name;
      }
    }
    Token At{Tk::Punct, "#", IfndefLine, 1};
    if (IfndefName.empty() || DefineName != IfndefName) {
      report(At, "header-guard",
             "header lacks a complete #ifndef/#define guard (expected " +
                 Expected + ")");
      return;
    }
    if (IfndefName != Expected)
      report(At, "header-guard",
             "guard " + IfndefName + " does not spell the path; expected " +
                 Expected);
  }
};

} // namespace

std::string tidy::expectedHeaderGuard(const std::string &RelPath) {
  std::vector<std::string> Parts;
  std::string Cur;
  for (char C : RelPath) {
    if (C == '/') {
      if (!Cur.empty())
        Parts.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Parts.push_back(Cur);
  if (!Parts.empty() && Parts.front() == "src")
    Parts.erase(Parts.begin());
  if (!Parts.empty() && endsWith(Parts.back(), ".h"))
    Parts.back().resize(Parts.back().size() - 2);
  std::string Guard = "OMEGA";
  for (const std::string &P : Parts) {
    Guard += '_';
    for (char C : P)
      if (std::isalnum(static_cast<unsigned char>(C)))
        Guard += static_cast<char>(
            std::toupper(static_cast<unsigned char>(C)));
  }
  return Guard + "_H";
}

std::vector<Finding> tidy::lintSource(const std::string &Path,
                                      const std::string &RelPath,
                                      const std::string &Text) {
  return Linter(Path, RelPath, Text).run();
}
