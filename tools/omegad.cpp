//===- tools/omegad.cpp - Long-running counting service ------------------===//
//
// The counting daemon:
//
//   omegad --socket /tmp/omega.sock [--max-inflight 4] [--hard-limit 16]
//
// Listens on a local AF_UNIX socket for length-prefixed binary count
// requests (src/server/Protocol.h), executes them concurrently on
// per-connection sessions with the shared worker pool and one persistent
// conjunct cache, and applies budgeted admission control: past the soft
// in-flight limit queries run under the shed budget (degrading to
// certified bounds fast), past the hard limit they are answered
// Overloaded without running.  See DESIGN.md §17 and README "Running
// omegad"; drive it with tools/omegaclient.cpp.
//
// Options:
//   --socket PATH        listening socket path (required)
//   --max-inflight N     soft in-flight limit (default 4)
//   --hard-limit N       hard in-flight limit (default 4x soft)
//   --shed-budget SPEC   budget clamp for shed queries (EffortBudget
//                        spec, e.g. "splinters=8,clauses=64"; default
//                        a finite built-in clamp)
//   --max-workers N      cap on client-requested per-query fan-out
//   --cache N            shared conjunct cache capacity per kind
//   --idle-timeout-ms N  disconnect clients idle this long (0 = never)
//   --stats-on-exit      print the stats JSON document on shutdown
//
// Exits 0 after a graceful SIGINT/SIGTERM shutdown (all in-flight
// queries answered, socket unlinked); exits 1 on startup failure.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"
#include "support/Signal.h"

#include <iostream>
#include <poll.h>
#include <string>

using namespace omega;
using namespace omega::server;

namespace {

void fail(const std::string &Msg) {
  std::cerr << "omegad: error: " << Msg << "\n";
  std::exit(1);
}

} // namespace

int main(int Argc, char **Argv) {
  ServerOptions Opts;
  Opts.ShedBudget = defaultShedBudget();
  bool HardSet = false;
  bool StatsOnExit = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> std::string {
      if (++I >= Argc)
        fail("missing value after " + Arg);
      return Argv[I];
    };
    auto NextUnsigned = [&]() -> unsigned long {
      std::string V = Next();
      try {
        return std::stoul(V);
      } catch (const std::exception &) {
        fail("bad number for " + Arg + ": " + V);
      }
      return 0;
    };
    if (Arg == "--socket")
      Opts.SocketPath = Next();
    else if (Arg == "--max-inflight")
      Opts.SoftInFlight = static_cast<uint32_t>(NextUnsigned());
    else if (Arg == "--hard-limit") {
      Opts.HardInFlight = static_cast<uint32_t>(NextUnsigned());
      HardSet = true;
    } else if (Arg == "--shed-budget") {
      Result<EffortBudget> B = EffortBudget::parse(Next());
      if (!B)
        fail(B.error().toString());
      Opts.ShedBudget = *B;
    } else if (Arg == "--max-workers")
      Opts.MaxWorkersPerQuery = static_cast<unsigned>(NextUnsigned());
    else if (Arg == "--cache")
      Opts.CacheCapacity = NextUnsigned();
    else if (Arg == "--idle-timeout-ms")
      Opts.IdleTimeoutMs = static_cast<int>(NextUnsigned());
    else if (Arg == "--stats-on-exit")
      StatsOnExit = true;
    else if (Arg == "--help" || Arg == "-h") {
      std::cout
          << "usage: omegad --socket PATH [options]\n"
             "  --max-inflight N     soft in-flight limit (default 4)\n"
             "  --hard-limit N       hard in-flight limit (default 4x "
             "soft)\n"
             "  --shed-budget SPEC   budget clamp for shed queries\n"
             "  --max-workers N      cap on per-query fan-out (default 8)\n"
             "  --cache N            conjunct cache capacity (default "
             "16384)\n"
             "  --idle-timeout-ms N  idle client disconnect (default "
             "30000)\n"
             "  --stats-on-exit      print stats JSON on shutdown\n";
      return 0;
    } else
      fail("unknown option: " + Arg);
  }

  if (Opts.SocketPath.empty())
    fail("--socket is required (try --help)");
  if (!HardSet)
    Opts.HardInFlight = Opts.SoftInFlight * 4;

  int SignalFd = installShutdownSignalPipe();
  if (SignalFd < 0)
    fail("cannot install signal handlers");

  Server Daemon(Opts);
  std::string Err;
  if (!Daemon.start(Err))
    fail(Err);
  std::cerr << "omegad: listening on " << Opts.SocketPath << " (soft "
            << Opts.SoftInFlight << ", hard " << Opts.HardInFlight
            << ")\n";

  // Wait for SIGINT/SIGTERM via the self-pipe; everything interesting
  // happens on the server's own threads.
  struct pollfd Pfd = {SignalFd, POLLIN, 0};
  while (!shutdownSignalled())
    ::poll(&Pfd, 1, 500);

  std::cerr << "omegad: shutting down (draining in-flight queries)\n";
  Daemon.stop();
  if (StatsOnExit)
    std::cout << Daemon.statsJson() << "\n";
  std::cerr << "omegad: shutdown complete\n";
  return 0;
}
