//===- tools/Options.h - Shared tool flag parsing --------------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flags every pipeline tool shares — --workers, --cache/--no-cache,
/// --budget, --stats, --trace, --trace-summary — parsed once, into a
/// CountOptions.  omegacount, omegalint, and bench_pipeline each call
/// parseSharedOption() from their argv loop so the flags behave (and are
/// documented) identically everywhere; tool-specific flags stay in the
/// tools.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_TOOLS_OPTIONS_H
#define OMEGA_TOOLS_OPTIONS_H

#include "counting/Backend.h"
#include "omega/Omega.h"
#include "support/BigInt.h"
#include "support/QueryContext.h"

#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <string>

namespace omega {

/// Shared tool configuration: the query options plus the tool-side
/// reporting toggles they imply.
struct ToolOptions {
  CountOptions Count;
  /// --budget was given (Count.Budget may still be all-unlimited).
  bool HaveBudget = false;
  /// --backend was given: route the query through the unified CountResult
  /// API and report which backend answered.
  bool HaveBackend = false;
  /// --stats: print the pipeline counter summary to stderr on exit.
  bool Stats = false;
  /// --trace FILE: write Chrome trace_event JSON here.
  std::string TraceFile;
  /// --trace-summary: print the per-phase self-time table to stderr.
  bool TraceSummary = false;

  bool wantTrace() const { return !TraceFile.empty() || TraceSummary; }
};

/// The shared block for --help texts (one string so the tools cannot
/// drift apart).
inline const char *sharedOptionsHelp() {
  return "  --workers N      worker threads for disjunct fan-out "
         "(0 = serial)\n"
         "  --cache N        conjunct cache capacity (entries); "
         "--no-cache disables\n"
         "  --budget SPEC    effort budget, e.g. "
         "\"bits=64,splinters=32,clauses=256,depth=24,ms=5000\";\n"
         "                   on exhaustion degrades to certified bounds\n"
         "  --backend B      counting backend: pugh | automaton | "
         "enumerate | auto\n"
         "                   (automaton/enumerate answer exactly or refuse; "
         "auto falls back to pugh)\n"
         "  --stats          print pipeline statistics to stderr\n"
         "  --trace FILE     write a Chrome trace_event JSON of the run "
         "(chrome://tracing)\n"
         "  --trace-summary  print per-phase span/self-time summary to "
         "stderr\n";
}

/// Consumes Argv[I] if it is one of the shared flags, advancing \p I past
/// any flag value.  Returns true iff the argument was consumed.  \p Fail
/// is called with a message (and must not return) on a malformed value.
inline bool
parseSharedOption(int Argc, char **Argv, int &I, ToolOptions &Opts,
                  const std::function<void(const std::string &)> &Fail) {
  std::string Arg = Argv[I];
  auto Next = [&]() -> std::string {
    if (++I >= Argc)
      Fail("missing value after " + Arg);
    return Argv[I];
  };
  auto NextCount = [&]() -> unsigned long long {
    std::string V = Next();
    unsigned long long N = 0;
    if (V.empty())
      Fail("expected a nonnegative integer after " + Arg);
    for (char C : V) {
      if (C < '0' || C > '9')
        Fail("expected a nonnegative integer after " + Arg + ": " + V);
      N = N * 10 + static_cast<unsigned long long>(C - '0');
    }
    return N;
  };
  auto SetBudget = [&](const std::string &Spec) {
    Result<EffortBudget> B = EffortBudget::parse(Spec);
    if (!B)
      Fail(B.error().toString());
    Opts.Count.Budget = *B;
    Opts.HaveBudget = true;
  };
  auto SetBackend = [&](const std::string &Name) {
    if (!backendKindFromName(Name, Opts.Count.Backend))
      Fail("unknown backend: " + Name +
           " (expected pugh, automaton, enumerate, or auto)");
    Opts.HaveBackend = true;
  };
  if (Arg == "--workers") {
    Opts.Count.Workers = static_cast<unsigned>(NextCount());
  } else if (Arg == "--backend") {
    SetBackend(Next());
  } else if (Arg.rfind("--backend=", 0) == 0) {
    SetBackend(Arg.substr(10));
  } else if (Arg == "--cache") {
    Opts.Count.CacheCapacity = static_cast<size_t>(NextCount());
    Opts.Count.CacheEnabled = Opts.Count.CacheCapacity > 0;
  } else if (Arg == "--no-cache") {
    Opts.Count.CacheEnabled = false;
  } else if (Arg == "--budget") {
    SetBudget(Next());
  } else if (Arg.rfind("--budget=", 0) == 0) {
    SetBudget(Arg.substr(9));
  } else if (Arg == "--stats") {
    Opts.Stats = true;
    Opts.Count.CollectStats = true;
    // Fast/slow op tallies are off by default; --stats implies them.
    Opts.Count.CountArithOps = true;
  } else if (Arg == "--trace") {
    Opts.TraceFile = Next();
  } else if (Arg == "--trace-summary") {
    Opts.TraceSummary = true;
  } else {
    return false;
  }
  return true;
}

/// The tool-level query environment: a QueryContext carrying the parsed
/// knobs plus a stats collector for the whole invocation, installed on the
/// main thread for the tool's lifetime (the re-entrant replacement for the
/// retired process-global setters).  Tool code paths that do not route
/// through the CountOptions entry point (simplify-only printing, the lint
/// sweep) read the knobs through the active context; queries that do route
/// through it nest beneath this scope and fold their stats back into
/// Block, so --stats at exit reports the whole run.
class ToolQueryScope {
public:
  explicit ToolQueryScope(const ToolOptions &Opts) {
    Block.Arith.CountOps.store(Opts.Count.CountArithOps,
                               std::memory_order_relaxed);
    Ctx.Workers = Opts.Count.Workers;
    Ctx.CacheEnabled = Opts.Count.CacheEnabled;
    Ctx.Stats = &Block;
    if (Opts.Count.CacheEnabled &&
        Opts.Count.CacheCapacity > conjunctCacheCapacity())
      configureConjunctCache(Opts.Count.CacheCapacity);
    Scope.emplace(Ctx);
  }

  /// This invocation's accumulated counters (for the --stats report).
  PipelineStatsSnapshot stats() const { return snapshotQueryStats(Block); }

private:
  QueryStatsBlock Block;
  QueryContext Ctx;
  std::optional<QueryContextScope> Scope;
};

/// Starts the process-wide trace session when --trace/--trace-summary was
/// given.  Call once, before the traced work.
inline void startToolTrace(const ToolOptions &Opts) {
  if (Opts.wantTrace())
    startTracing();
}

/// Ends the trace session and writes the requested exporter outputs.
/// Returns false (after printing a diagnostic) if the trace file cannot
/// be written.  Safe to call when tracing was not requested.
inline bool finishToolTrace(const ToolOptions &Opts, const char *Tool) {
  if (!Opts.wantTrace())
    return true;
  std::shared_ptr<const TraceData> Data = stopTracing();
  if (!Opts.TraceFile.empty()) {
    std::ofstream Out(Opts.TraceFile);
    if (!Out) {
      std::cerr << Tool << ": error: cannot write " << Opts.TraceFile << "\n";
      return false;
    }
    Out << Data->toChromeJson() << "\n";
  }
  if (Opts.TraceSummary)
    std::cerr << Data->toSummary();
  return true;
}

} // namespace omega

#endif // OMEGA_TOOLS_OPTIONS_H
