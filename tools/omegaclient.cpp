//===- tools/omegaclient.cpp - omegad client and load generator ----------===//
//
// Client for the omegad counting service:
//
//   omegaclient --socket /tmp/omega.sock --vars i,j "1 <= i,j <= 10"
//   omegaclient --socket S --file q.presburger --check
//   omegaclient --socket S --batch list.txt --connections 4
//
// Submits count requests over the binary wire protocol
// (src/server/Protocol.h) and prints one line per response.  --batch
// reads a file of .presburger paths and submits them all over one
// connection; --connections N replays the whole query set over N
// concurrent connections and verifies every connection got bit-identical
// answers (the server-side determinism check).  --check additionally
// recomputes every query in-process through countBatch and compares.
//
// Options:
//   --socket PATH       server socket (required)
//   --vars a,b,c        counted variables for a formula argument
//   --file F            one .presburger query (repeatable)
//   --batch LIST        file with one .presburger path per line
//   --connections N     concurrent connections replaying the set
//   --repeat N          send the query set N times per connection
//   --check             recompute in-process and compare answers
//   --workers N         per-query fan-out request
//   --no-cache          opt this query out of the shared cache
//   --budget SPEC       effort budget (e.g. "splinters=8,clauses=64")
//   --backend NAME      pugh | automaton | enumerate | auto
//   --query-stats       request the per-query stats delta
//   --stats             fetch and print the server stats JSON
//   --ping              liveness probe only
//   --timeout-ms N      per-frame response deadline (default 120000)
//
// Exit codes: the worst response outcome mapped through
// queryOutcomeExitCode (0 answered, 1 diagnostic, 75 overloaded /
// draining), or 4 on any comparison mismatch (--check or
// cross-connection), or 3 on connection-level failures.
//
//===----------------------------------------------------------------------===//

#include "counting/Backend.h"
#include "omega/Omega.h"
#include "presburger/Parser.h"
#include "server/Protocol.h"
#include "support/Status.h"

#include "FormulaFile.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace omega;
using namespace omega::server;

namespace {

void fail(const std::string &Msg) {
  std::cerr << "omegaclient: error: " << Msg << "\n";
  std::exit(3);
}

std::vector<std::string> splitList(const std::string &S) {
  std::vector<std::string> Out;
  std::istringstream IS(S);
  std::string Item;
  while (std::getline(IS, Item, ','))
    if (!Item.empty())
      Out.push_back(Item);
  return Out;
}

int connectTo(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    ::close(Fd);
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// One line summarizing a response, stable across runs so scripts (and
/// the cross-connection comparison) can diff it.
std::string summarize(const CountResponseMsg &R) {
  std::string Out = queryOutcomeName(R.Outcome);
  if (R.Outcome == QueryOutcome::Bounded)
    Out += " lower=[" + R.Lower + "] upper=[" + R.Upper + "]";
  else if (queryOutcomeIsAnswer(R.Outcome))
    Out += " " + R.Value;
  else if (!R.ErrorText.empty())
    Out += " " + R.ErrorText;
  if (!R.Backend.empty())
    Out += " (" + R.Backend + ")";
  return Out;
}

struct RunResult {
  std::vector<CountResponseMsg> Responses;
  bool TransportOk = true;
};

/// Sends every request over one fresh connection, in order.
RunResult runConnection(const std::string &Path,
                        const std::vector<CountRequestMsg> &Requests,
                        unsigned Repeat, int TimeoutMs) {
  RunResult Out;
  int Fd = connectTo(Path);
  if (Fd < 0) {
    Out.TransportOk = false;
    return Out;
  }
  std::vector<uint8_t> Payload;
  for (unsigned R = 0; R < Repeat && Out.TransportOk; ++R) {
    for (const CountRequestMsg &M : Requests) {
      if (writeFrame(Fd, encodeCountRequest(M)) != IoStatus::Ok ||
          readFrame(Fd, Payload, TimeoutMs) != IoStatus::Ok) {
        Out.TransportOk = false;
        break;
      }
      CountResponseMsg Resp;
      if (!decodeCountResponse(Payload, Resp)) {
        Out.TransportOk = false;
        break;
      }
      Out.Responses.push_back(std::move(Resp));
    }
  }
  ::close(Fd);
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SocketPath;
  std::vector<std::string> Vars;
  std::string FormulaText;
  std::vector<std::string> Files;
  unsigned Connections = 1;
  unsigned Repeat = 1;
  int TimeoutMs = 120000;
  bool Check = false, WantStats = false, Ping = false;
  CountRequestMsg Proto; // Per-query options shared by every request.

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> std::string {
      if (++I >= Argc)
        fail("missing value after " + Arg);
      return Argv[I];
    };
    if (Arg == "--socket")
      SocketPath = Next();
    else if (Arg == "--vars")
      Vars = splitList(Next());
    else if (Arg == "--file")
      Files.push_back(Next());
    else if (Arg == "--batch") {
      std::string List = Next();
      std::ifstream In(List);
      if (!In)
        fail("cannot open batch list: " + List);
      std::string Line;
      while (std::getline(In, Line))
        if (!Line.empty() && Line[0] != '#')
          Files.push_back(Line);
    } else if (Arg == "--connections")
      Connections = std::max(1, std::atoi(Next().c_str()));
    else if (Arg == "--repeat")
      Repeat = std::max(1, std::atoi(Next().c_str()));
    else if (Arg == "--check")
      Check = true;
    else if (Arg == "--workers")
      Proto.Workers = std::max(0, std::atoi(Next().c_str()));
    else if (Arg == "--no-cache")
      Proto.CacheEnabled = false;
    else if (Arg == "--budget")
      Proto.Budget = Next();
    else if (Arg == "--backend") {
      std::string Name = Next();
      BackendKind K;
      if (!backendKindFromName(Name, K))
        fail("unknown backend: " + Name);
      Proto.Backend = static_cast<uint8_t>(K);
    } else if (Arg == "--query-stats")
      Proto.CollectStats = true;
    else if (Arg == "--stats")
      WantStats = true;
    else if (Arg == "--ping")
      Ping = true;
    else if (Arg == "--timeout-ms")
      TimeoutMs = std::atoi(Next().c_str());
    else if (Arg == "--help" || Arg == "-h") {
      std::cout << "usage: omegaclient --socket PATH [options] "
                   "[\"formula\" --vars i,j]\n"
                   "see the header of tools/omegaclient.cpp for the full "
                   "option list\n";
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-')
      fail("unknown option: " + Arg);
    else if (FormulaText.empty())
      FormulaText = Arg;
    else
      fail("multiple formulas given");
  }

  if (SocketPath.empty())
    fail("--socket is required (try --help)");

  // Assemble the request set.
  std::vector<CountRequestMsg> Requests;
  if (!FormulaText.empty()) {
    if (Vars.empty())
      fail("--vars required with a formula argument");
    CountRequestMsg M = Proto;
    M.Formula = FormulaText;
    M.Vars = Vars;
    Requests.push_back(std::move(M));
  }
  for (const std::string &Path : Files) {
    FormulaFile FF;
    std::string Err;
    if (!readFormulaFile(Path, FF, Err))
      fail(Path + ": " + Err);
    CountRequestMsg M = Proto;
    M.Formula = FF.FormulaText;
    M.Vars = Vars.empty() ? FF.Vars : Vars;
    Requests.push_back(std::move(M));
  }

  if (Ping) {
    int Fd = connectTo(SocketPath);
    if (Fd < 0)
      fail("cannot connect to " + SocketPath);
    std::vector<uint8_t> Payload;
    MsgType T;
    if (writeFrame(Fd, encodeEmpty(MsgType::Ping)) != IoStatus::Ok ||
        readFrame(Fd, Payload, TimeoutMs) != IoStatus::Ok ||
        !peekType(Payload, T) || T != MsgType::Pong)
      fail("no pong from " + SocketPath);
    ::close(Fd);
    std::cout << "pong\n";
    if (Requests.empty() && !WantStats)
      return 0;
  }

  if (Requests.empty() && !WantStats)
    fail("nothing to do: give a formula, --file/--batch, --ping, or "
         "--stats");

  int Exit = 0;
  if (!Requests.empty()) {
    // Fan the query set out over the requested number of connections.
    std::vector<RunResult> Results(Connections);
    if (Connections == 1) {
      Results[0] = runConnection(SocketPath, Requests, Repeat, TimeoutMs);
    } else {
      std::vector<std::thread> Threads;
      Threads.reserve(Connections);
      for (unsigned C = 0; C < Connections; ++C)
        Threads.emplace_back([&, C] {
          Results[C] = runConnection(SocketPath, Requests, Repeat,
                                     TimeoutMs);
        });
      for (std::thread &T : Threads)
        T.join();
    }

    for (const RunResult &R : Results)
      if (!R.TransportOk)
        fail("connection to " + SocketPath + " failed mid-run");

    // Print connection 0's responses and fold its outcomes into the exit
    // code.
    const std::vector<CountResponseMsg> &First = Results[0].Responses;
    for (size_t I = 0; I < First.size(); ++I) {
      std::cout << "q" << I << ": " << summarize(First[I]) << "\n";
      if (Proto.CollectStats && !First[I].StatsJson.empty())
        std::cout << "q" << I << " stats: " << First[I].StatsJson << "\n";
      Exit = std::max(Exit, queryOutcomeExitCode(First[I].Outcome));
    }

    // Cross-connection determinism: every connection must have received
    // bit-identical summaries for the same query sequence.
    for (unsigned C = 1; C < Connections; ++C)
      for (size_t I = 0; I < First.size(); ++I)
        if (summarize(Results[C].Responses[I]) != summarize(First[I])) {
          std::cerr << "omegaclient: MISMATCH across connections on q" << I
                    << ":\n  c0: " << summarize(First[I])
                    << "\n  c" << C << ": "
                    << summarize(Results[C].Responses[I]) << "\n";
          return 4;
        }

    if (Check) {
      // Recompute in-process through the same batch entry point the
      // server's queries funnel into, and demand identical answers.
      std::vector<CountQuery> Local;
      Local.reserve(Requests.size());
      for (const CountRequestMsg &M : Requests) {
        ParseResult PR = parseFormula(M.Formula);
        if (!PR)
          fail("--check parse: " + PR.Error);
        CountQuery Q;
        Q.F = *PR.Value;
        Q.Vars = VarSet(M.Vars.begin(), M.Vars.end());
        Q.Opts.Backend = static_cast<BackendKind>(M.Backend);
        Q.Opts.Workers = M.Workers;
        Q.Opts.CacheEnabled = M.CacheEnabled;
        if (!M.Budget.empty()) {
          Result<EffortBudget> B = EffortBudget::parse(M.Budget);
          if (!B)
            fail("--check budget: " + B.error().toString());
          Q.Opts.Budget = *B;
        }
        Local.push_back(std::move(Q));
      }
      std::vector<CountResult> LocalResults = countBatch(Local);
      for (size_t I = 0; I < Requests.size(); ++I) {
        const CountResponseMsg &Remote = First[I];
        const CountResult &Mine = LocalResults[I];
        bool Same = Remote.Outcome == Mine.outcome();
        if (Same && queryOutcomeIsAnswer(Remote.Outcome))
          Same = Mine.Status == CountStatus::Bounded
                     ? (Remote.Lower == Mine.Lower.toString() &&
                        Remote.Upper == Mine.Upper.toString())
                     : Remote.Value == Mine.Value.toString();
        if (!Same) {
          std::cerr << "omegaclient: MISMATCH server vs in-process on q"
                    << I << ":\n  server: " << summarize(Remote)
                    << "\n  local:  " << queryOutcomeName(Mine.outcome())
                    << " "
                    << (Mine.Status == CountStatus::Error
                            ? Mine.Err.toString()
                            : Mine.Value.toString())
                    << "\n";
          return 4;
        }
      }
      std::cout << "check: " << Requests.size() << " quer"
                << (Requests.size() == 1 ? "y" : "ies")
                << " match in-process results\n";
    }
  }

  if (WantStats) {
    int Fd = connectTo(SocketPath);
    if (Fd < 0)
      fail("cannot connect to " + SocketPath);
    std::vector<uint8_t> Payload;
    std::string Json;
    if (writeFrame(Fd, encodeEmpty(MsgType::StatsRequest)) !=
            IoStatus::Ok ||
        readFrame(Fd, Payload, TimeoutMs) != IoStatus::Ok ||
        !decodeStatsResponse(Payload, Json))
      fail("stats request failed");
    ::close(Fd);
    std::cout << Json << "\n";
  }

  return Exit;
}
