//===- tools/omegacount.cpp - Command-line counter -----------------------===//
//
// Command-line front end for the library:
//
//   omegacount --vars i,j [options] "1 <= i,j <= n && 2*i <= 3*j"
//
// Prints the simplified disjoint DNF, the symbolic count (or polynomial
// sum), and optional evaluations.
//
// Options:
//   --vars a,b,c       counted variables (required for counting)
//   --file F           read a .presburger file instead of a formula
//                      argument (provides vars: unless --vars is given)
//   --sum "i"          sum this polynomial (product of vars and integers)
//                      instead of counting
//   --strategy S       splinter | mod | upper | lower | approx
//   --at n=5,m=3       evaluate the result at symbol values (repeatable)
//   --simplify-only    print the disjoint DNF and stop
//   --sample           print one concrete solution per --at
//   plus the shared pipeline flags of tools/Options.h:
//   --workers/--cache/--no-cache/--budget/--stats/--trace/--trace-summary
//
// Exit codes derive from the shared QueryOutcome vocabulary
// (support/Status.h, queryOutcomeExitCode): 0 = answered (exact,
// unbounded, or certified bounds); 1 = diagnostic (bad flags, malformed
// input, I/O failure, or budget exhausted with no bounds to give).  Never
// aborts on any text input.
//
//===----------------------------------------------------------------------===//

#include "counting/Set.h"
#include "counting/Summation.h"
#include "presburger/Parser.h"
#include "support/Budget.h"
#include "support/Stats.h"

#include "FormulaFile.h"
#include "Options.h"

#include <algorithm>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

using namespace omega;

namespace {

void fail(const std::string &Msg) {
  std::cerr << "omegacount: error: " << Msg << "\n";
  std::exit(1);
}

std::vector<std::string> splitList(const std::string &S) {
  std::vector<std::string> Out;
  std::istringstream IS(S);
  std::string Item;
  while (std::getline(IS, Item, ','))
    if (!Item.empty())
      Out.push_back(Item);
  return Out;
}

/// Prints an assignment's bindings as " name=value" in name order (the
/// Assignment itself iterates in id order).
void printBindings(const Assignment &At) {
  std::vector<std::pair<std::string, const BigInt *>> Rows;
  Rows.reserve(At.size());
  for (const auto &[V, Value] : At)
    Rows.emplace_back(varName(V), &Value);
  std::sort(Rows.begin(), Rows.end(),
            [](const auto &L, const auto &R) { return L.first < R.first; });
  for (const auto &[Name, Value] : Rows)
    std::cout << " " << Name << "=" << *Value;
}

Assignment parseBindings(const std::string &S) {
  Assignment Out;
  for (const std::string &Pair : splitList(S)) {
    size_t Eq = Pair.find('=');
    if (Eq == std::string::npos)
      fail("expected name=value in --at: " + Pair);
    BigInt V;
    if (!BigInt::fromString(Pair.substr(Eq + 1), V))
      fail("bad integer in --at: " + Pair);
    Out[Pair.substr(0, Eq)] = V;
  }
  return Out;
}

/// Parses a summand: '*'-separated factors, each a variable or integer,
/// '+'-separated terms.  E.g. "i*j + 2*i".
QuasiPolynomial parseSummand(const std::string &S) {
  QuasiPolynomial Sum;
  std::istringstream Terms(S);
  std::string Term;
  while (std::getline(Terms, Term, '+')) {
    QuasiPolynomial P(Rational(1));
    std::istringstream Factors(Term);
    std::string Factor;
    bool Any = false;
    while (std::getline(Factors, Factor, '*')) {
      // Trim whitespace.
      size_t B = Factor.find_first_not_of(" \t");
      size_t E = Factor.find_last_not_of(" \t");
      if (B == std::string::npos)
        continue;
      Factor = Factor.substr(B, E - B + 1);
      Any = true;
      BigInt C;
      if (BigInt::fromString(Factor, C))
        P *= Rational(C);
      else
        P *= QuasiPolynomial::variable(Factor);
    }
    if (Any)
      Sum += P;
  }
  if (Sum.isZero())
    fail("empty --sum polynomial");
  return Sum;
}

} // namespace

int runTool(int Argc, char **Argv) {
  std::vector<std::string> Vars;
  std::string SumText;
  std::vector<Assignment> Ats;
  SumOptions Opts;
  ToolOptions TO;
  bool SimplifyOnly = false, Sample = false;
  std::string FormulaText, FilePath;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (parseSharedOption(Argc, Argv, I, TO,
                          [](const std::string &M) { fail(M); }))
      continue;
    auto Next = [&]() -> std::string {
      if (++I >= Argc)
        fail("missing value after " + Arg);
      return Argv[I];
    };
    if (Arg == "--vars")
      Vars = splitList(Next());
    else if (Arg == "--file")
      FilePath = Next();
    else if (Arg == "--sum")
      SumText = Next();
    else if (Arg == "--at")
      Ats.push_back(parseBindings(Next()));
    else if (Arg == "--strategy") {
      std::string S = Next();
      if (S == "splinter")
        Opts.Strategy = BoundStrategy::Splinter;
      else if (S == "mod")
        Opts.Strategy = BoundStrategy::SymbolicMod;
      else if (S == "upper")
        Opts.Strategy = BoundStrategy::UpperBound;
      else if (S == "lower")
        Opts.Strategy = BoundStrategy::LowerBound;
      else if (S == "approx")
        Opts.Strategy = BoundStrategy::Approximate;
      else
        fail("unknown strategy: " + S);
    } else if (Arg == "--simplify-only")
      SimplifyOnly = true;
    else if (Arg == "--sample")
      Sample = true;
    else if (Arg == "--help" || Arg == "-h") {
      std::cout
          << "usage: omegacount --vars i,j [options] \"<formula>\"\n"
             "  --file F         read a .presburger file (vars: from the "
             "file unless --vars)\n"
             "  --sum POLY       sum POLY (e.g. \"i*j + 2*i\") over the "
             "solutions\n"
             "  --strategy S     splinter|mod|upper|lower|approx\n"
             "  --at n=5,m=3     evaluate the symbolic answer (repeatable)\n"
             "  --simplify-only  print disjoint DNF only\n"
             "  --sample         print one solution per --at binding\n"
          << sharedOptionsHelp();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-')
      fail("unknown option: " + Arg);
    else if (FormulaText.empty())
      FormulaText = Arg;
    else
      fail("multiple formulas given");
  }

  if (!FilePath.empty()) {
    if (!FormulaText.empty())
      fail("both --file and a formula argument given");
    FormulaFile In;
    std::string Err;
    if (!readFormulaFile(FilePath, In, Err))
      fail(FilePath + ": " + Err);
    FormulaText = In.FormulaText;
    if (Vars.empty())
      Vars = In.Vars;
  }
  if (FormulaText.empty())
    fail("no formula given (try --help)");
  // Install the tool-level query environment (workers, cache, stats
  // collection) for the rest of the run; queries nest beneath it.
  ToolQueryScope QueryScope(TO);
  const EffortBudget &Budget = TO.Count.Budget;
  Formula F = Formula::trueFormula();
  {
    // Parse under the budget so oversized literals are rejected before any
    // arithmetic touches them (a parse diagnostic, not a throw).
    BudgetScope Scope(TO.HaveBudget
                          ? std::make_shared<BudgetState>(Budget)
                          : std::shared_ptr<BudgetState>());
    ParseResult R = parseFormula(FormulaText);
    if (!R)
      fail("parse: " + R.Error);
    F = *R.Value;
  }
  startToolTrace(TO);

  // Every successful exit path funnels through here so the trace file and
  // stats land no matter which mode ran.
  auto Finish = [&]() -> int {
    int RC = finishToolTrace(TO, "omegacount") ? 0 : 1;
    if (TO.Stats)
      std::cerr << snapshotPipelineStats().toPretty();
    return RC;
  };

  if (TO.HaveBackend && !SimplifyOnly) {
    // Explicit --backend: route through the unified CountResult API and
    // report which backend answered (and why, under --backend=auto).
    if (Vars.empty())
      fail("--vars required for counting");
    VarSet VS(Vars.begin(), Vars.end());
    const char *What = SumText.empty() ? "count" : "sum";
    CountResult R = SumText.empty()
                        ? countSolutions(F, VS, TO.Count)
                        : sumPolynomial(F, VS, parseSummand(SumText),
                                        TO.Count);
    if (R.Status == CountStatus::Error) {
      std::cerr << "omegacount: error: " << R.Err.toString() << "\n";
      return queryOutcomeExitCode(R.outcome());
    }
    std::cout << "backend: " << R.Backend;
    if (!R.BackendReason.empty())
      std::cout << " (" << R.BackendReason << ")";
    std::cout << "\n";
    if (R.Status == CountStatus::Bounded) {
      std::cout << What << ": UNKNOWN (budget exhausted: " << R.TrippedLimit
                << ")\n";
      std::cout << "lower bound:\n  " << R.Lower << "\n";
      std::cout << "upper bound:\n  " << R.Upper << "\n";
    } else {
      std::cout << What << ":\n  " << R.Value << "\n";
      if (!R.Value.isUnbounded())
        for (const Assignment &At : Ats) {
          std::cout << "at";
          printBindings(At);
          std::cout << ": " << R.Value.evaluate(At).toString() << "\n";
        }
    }
    return Finish();
  }

  if (TO.HaveBudget && !Budget.unlimited()) {
    // Budgeted path: no separate DNF print (the exact simplification is
    // itself subject to the budget inside the budgeted summation).
    if (SimplifyOnly) {
      BudgetScope Scope(std::make_shared<BudgetState>(Budget));
      SimplifyOptions SOpts;
      SOpts.Disjoint = true;
      std::vector<Conjunct> D = simplify(F, SOpts);
      std::cout << "disjoint DNF (" << D.size() << " clause"
                << (D.size() == 1 ? "" : "s") << "):\n";
      for (const Conjunct &C : D)
        std::cout << "  " << C << "\n";
      return Finish();
    }
    if (Vars.empty())
      fail("--vars required for counting");
    const char *What = SumText.empty() ? "count" : "sum";
    BudgetedCount BC =
        SumText.empty()
            ? countSolutionsBudgeted(F, VarSet(Vars.begin(), Vars.end()),
                                     Budget, Opts)
            : sumOverFormulaBudgeted(F, VarSet(Vars.begin(), Vars.end()),
                                     parseSummand(SumText), Budget, Opts);
    if (BC.Status == CountStatus::Error)
      fail(BC.Err.toString());
    if (BC.Status != CountStatus::Bounded) {
      std::cout << What << ":\n  " << BC.Value << "\n";
      if (!BC.Value.isUnbounded())
        for (const Assignment &At : Ats) {
          std::cout << "at";
          printBindings(At);
          std::cout << ": " << BC.Value.evaluate(At).toString() << "\n";
        }
      return Finish();
    }
    std::cout << What << ": UNKNOWN (budget exhausted: " << BC.TrippedLimit
              << ")\n";
    std::cout << "lower bound:\n  " << BC.Lower << "\n";
    std::cout << "upper bound:\n  " << BC.Upper << "\n";
    for (const Assignment &At : Ats) {
      std::cout << "at";
      printBindings(At);
      std::cout << ": in [" << BC.Lower.evaluate(At).toString() << ", "
                << (BC.Upper.isUnbounded()
                        ? std::string("unbounded")
                        : BC.Upper.evaluate(At).toString())
                << "]\n";
    }
    return Finish();
  }

  SimplifyOptions SOpts;
  SOpts.Disjoint = true;
  std::vector<Conjunct> D = simplify(F, SOpts);
  std::cout << "disjoint DNF (" << D.size() << " clause"
            << (D.size() == 1 ? "" : "s") << "):\n";
  for (const Conjunct &C : D)
    std::cout << "  " << C << "\n";
  if (SimplifyOnly) {
    return Finish();
  }

  if (Vars.empty())
    fail("--vars required for counting");
  PresburgerSet Set(Vars, F);

  PiecewiseValue V = SumText.empty()
                         ? Set.count(Opts)
                         : Set.sum(parseSummand(SumText), Opts);
  std::cout << (SumText.empty() ? "count" : "sum") << ":\n  " << V << "\n";
  if (V.isUnbounded()) {
    return Finish();
  }

  for (const Assignment &At : Ats) {
    std::cout << "at";
    printBindings(At);
    std::cout << ": " << V.evaluate(At).toString() << "\n";
    if (Sample) {
      if (std::optional<Assignment> P = Set.sample(At)) {
        std::cout << "  sample:";
        for (const std::string &Name : Vars)
          std::cout << " " << Name << "=" << P->at(Name);
        std::cout << "\n";
      } else {
        std::cout << "  sample: <empty>\n";
      }
    }
  }
  return Finish();
}

int main(int Argc, char **Argv) {
  // Nothing the user can type may abort the process: any escape —
  // including a budget trip during --simplify-only, where there is no
  // bounds fallback — becomes a one-line diagnostic and exit 1.
  try {
    return runTool(Argc, Argv);
  } catch (const BudgetExceeded &E) {
    std::cerr << "omegacount: error: " << E.toError().toString() << "\n";
  } catch (const std::exception &E) {
    std::cerr << "omegacount: error: " << E.what() << "\n";
  }
  return 1;
}
