//===- tools/omegacount.cpp - Command-line counter -----------------------===//
//
// Command-line front end for the library:
//
//   omegacount --vars i,j [options] "1 <= i,j <= n && 2*i <= 3*j"
//
// Prints the simplified disjoint DNF, the symbolic count (or polynomial
// sum), and optional evaluations.
//
// Options:
//   --vars a,b,c       counted variables (required for counting)
//   --sum "i"          sum this polynomial (product of vars and integers)
//                      instead of counting
//   --strategy S       splinter | mod | upper | lower | approx
//   --at n=5,m=3       evaluate the result at symbol values (repeatable)
//   --simplify-only    print the disjoint DNF and stop
//   --sample           print one concrete solution per --at
//
//===----------------------------------------------------------------------===//

#include "counting/Set.h"
#include "presburger/Parser.h"

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace omega;

namespace {

void fail(const std::string &Msg) {
  std::cerr << "omegacount: error: " << Msg << "\n";
  std::exit(1);
}

std::vector<std::string> splitList(const std::string &S) {
  std::vector<std::string> Out;
  std::istringstream IS(S);
  std::string Item;
  while (std::getline(IS, Item, ','))
    if (!Item.empty())
      Out.push_back(Item);
  return Out;
}

Assignment parseBindings(const std::string &S) {
  Assignment Out;
  for (const std::string &Pair : splitList(S)) {
    size_t Eq = Pair.find('=');
    if (Eq == std::string::npos)
      fail("expected name=value in --at: " + Pair);
    BigInt V;
    if (!BigInt::fromString(Pair.substr(Eq + 1), V))
      fail("bad integer in --at: " + Pair);
    Out[Pair.substr(0, Eq)] = V;
  }
  return Out;
}

/// Parses a summand: '*'-separated factors, each a variable or integer,
/// '+'-separated terms.  E.g. "i*j + 2*i".
QuasiPolynomial parseSummand(const std::string &S) {
  QuasiPolynomial Sum;
  std::istringstream Terms(S);
  std::string Term;
  while (std::getline(Terms, Term, '+')) {
    QuasiPolynomial P(Rational(1));
    std::istringstream Factors(Term);
    std::string Factor;
    bool Any = false;
    while (std::getline(Factors, Factor, '*')) {
      // Trim whitespace.
      size_t B = Factor.find_first_not_of(" \t");
      size_t E = Factor.find_last_not_of(" \t");
      if (B == std::string::npos)
        continue;
      Factor = Factor.substr(B, E - B + 1);
      Any = true;
      BigInt C;
      if (BigInt::fromString(Factor, C))
        P *= Rational(C);
      else
        P *= QuasiPolynomial::variable(Factor);
    }
    if (Any)
      Sum += P;
  }
  if (Sum.isZero())
    fail("empty --sum polynomial");
  return Sum;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Vars;
  std::string SumText;
  std::vector<Assignment> Ats;
  SumOptions Opts;
  bool SimplifyOnly = false, Sample = false;
  std::string FormulaText;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> std::string {
      if (++I >= Argc)
        fail("missing value after " + Arg);
      return Argv[I];
    };
    if (Arg == "--vars")
      Vars = splitList(Next());
    else if (Arg == "--sum")
      SumText = Next();
    else if (Arg == "--at")
      Ats.push_back(parseBindings(Next()));
    else if (Arg == "--strategy") {
      std::string S = Next();
      if (S == "splinter")
        Opts.Strategy = BoundStrategy::Splinter;
      else if (S == "mod")
        Opts.Strategy = BoundStrategy::SymbolicMod;
      else if (S == "upper")
        Opts.Strategy = BoundStrategy::UpperBound;
      else if (S == "lower")
        Opts.Strategy = BoundStrategy::LowerBound;
      else if (S == "approx")
        Opts.Strategy = BoundStrategy::Approximate;
      else
        fail("unknown strategy: " + S);
    } else if (Arg == "--simplify-only")
      SimplifyOnly = true;
    else if (Arg == "--sample")
      Sample = true;
    else if (Arg == "--help" || Arg == "-h") {
      std::cout
          << "usage: omegacount --vars i,j [options] \"<formula>\"\n"
             "  --sum POLY       sum POLY (e.g. \"i*j + 2*i\") over the "
             "solutions\n"
             "  --strategy S     splinter|mod|upper|lower|approx\n"
             "  --at n=5,m=3     evaluate the symbolic answer (repeatable)\n"
             "  --simplify-only  print disjoint DNF only\n"
             "  --sample         print one solution per --at binding\n";
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-')
      fail("unknown option: " + Arg);
    else if (FormulaText.empty())
      FormulaText = Arg;
    else
      fail("multiple formulas given");
  }

  if (FormulaText.empty())
    fail("no formula given (try --help)");
  ParseResult R = parseFormula(FormulaText);
  if (!R)
    fail("parse: " + R.Error);
  Formula F = *R.Value;

  SimplifyOptions SOpts;
  SOpts.Disjoint = true;
  std::vector<Conjunct> D = simplify(F, SOpts);
  std::cout << "disjoint DNF (" << D.size() << " clause"
            << (D.size() == 1 ? "" : "s") << "):\n";
  for (const Conjunct &C : D)
    std::cout << "  " << C << "\n";
  if (SimplifyOnly)
    return 0;

  if (Vars.empty())
    fail("--vars required for counting");
  PresburgerSet Set(Vars, F);

  PiecewiseValue V = SumText.empty()
                         ? Set.count(Opts)
                         : Set.sum(parseSummand(SumText), Opts);
  std::cout << (SumText.empty() ? "count" : "sum") << ":\n  " << V << "\n";
  if (V.isUnbounded())
    return 0;

  for (const Assignment &At : Ats) {
    std::cout << "at";
    for (const auto &[Name, Value] : At)
      std::cout << " " << Name << "=" << Value;
    std::cout << ": " << V.evaluate(At).toString() << "\n";
    if (Sample) {
      if (std::optional<Assignment> P = Set.sample(At)) {
        std::cout << "  sample:";
        for (const std::string &Name : Vars)
          std::cout << " " << Name << "=" << P->at(Name);
        std::cout << "\n";
      } else {
        std::cout << "  sample: <empty>\n";
      }
    }
  }
  return 0;
}
