//===- tools/omegacount.cpp - Command-line counter -----------------------===//
//
// Command-line front end for the library:
//
//   omegacount --vars i,j [options] "1 <= i,j <= n && 2*i <= 3*j"
//
// Prints the simplified disjoint DNF, the symbolic count (or polynomial
// sum), and optional evaluations.
//
// Options:
//   --vars a,b,c       counted variables (required for counting)
//   --file F           read a .presburger file instead of a formula
//                      argument (provides vars: unless --vars is given)
//   --sum "i"          sum this polynomial (product of vars and integers)
//                      instead of counting
//   --strategy S       splinter | mod | upper | lower | approx
//   --at n=5,m=3       evaluate the result at symbol values (repeatable)
//   --simplify-only    print the disjoint DNF and stop
//   --sample           print one concrete solution per --at
//   --workers N        worker threads for disjunct fan-out (0 = serial)
//   --cache N          conjunct cache capacity; --no-cache disables it
//   --budget SPEC      effort budget "bits=B,splinters=S,clauses=C,
//                      depth=D,ms=M" (any subset); on exhaustion the count
//                      degrades to UNKNOWN with certified bounds
//   --stats            print pipeline statistics to stderr on exit
//
// Exit codes: 0 = answered (exact, unbounded, or certified bounds);
//             1 = diagnostic (bad flags, malformed input, I/O failure, or
//                 budget exhausted with no bounds to give).  Never aborts
//                 on any text input.
//
//===----------------------------------------------------------------------===//

#include "counting/Set.h"
#include "counting/Summation.h"
#include "presburger/Parser.h"
#include "support/Budget.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include "FormulaFile.h"

#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

using namespace omega;

namespace {

void fail(const std::string &Msg) {
  std::cerr << "omegacount: error: " << Msg << "\n";
  std::exit(1);
}

std::vector<std::string> splitList(const std::string &S) {
  std::vector<std::string> Out;
  std::istringstream IS(S);
  std::string Item;
  while (std::getline(IS, Item, ','))
    if (!Item.empty())
      Out.push_back(Item);
  return Out;
}

Assignment parseBindings(const std::string &S) {
  Assignment Out;
  for (const std::string &Pair : splitList(S)) {
    size_t Eq = Pair.find('=');
    if (Eq == std::string::npos)
      fail("expected name=value in --at: " + Pair);
    BigInt V;
    if (!BigInt::fromString(Pair.substr(Eq + 1), V))
      fail("bad integer in --at: " + Pair);
    Out[Pair.substr(0, Eq)] = V;
  }
  return Out;
}

/// Parses a summand: '*'-separated factors, each a variable or integer,
/// '+'-separated terms.  E.g. "i*j + 2*i".
QuasiPolynomial parseSummand(const std::string &S) {
  QuasiPolynomial Sum;
  std::istringstream Terms(S);
  std::string Term;
  while (std::getline(Terms, Term, '+')) {
    QuasiPolynomial P(Rational(1));
    std::istringstream Factors(Term);
    std::string Factor;
    bool Any = false;
    while (std::getline(Factors, Factor, '*')) {
      // Trim whitespace.
      size_t B = Factor.find_first_not_of(" \t");
      size_t E = Factor.find_last_not_of(" \t");
      if (B == std::string::npos)
        continue;
      Factor = Factor.substr(B, E - B + 1);
      Any = true;
      BigInt C;
      if (BigInt::fromString(Factor, C))
        P *= Rational(C);
      else
        P *= QuasiPolynomial::variable(Factor);
    }
    if (Any)
      Sum += P;
  }
  if (Sum.isZero())
    fail("empty --sum polynomial");
  return Sum;
}

} // namespace

int runTool(int Argc, char **Argv) {
  std::vector<std::string> Vars;
  std::string SumText;
  std::vector<Assignment> Ats;
  SumOptions Opts;
  EffortBudget Budget;
  bool HaveBudget = false;
  bool SimplifyOnly = false, Sample = false, Stats = false;
  std::string FormulaText, FilePath;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> std::string {
      if (++I >= Argc)
        fail("missing value after " + Arg);
      return Argv[I];
    };
    auto NextCount = [&]() -> long {
      std::string V = Next();
      try {
        size_t Pos = 0;
        long N = std::stol(V, &Pos);
        if (Pos != V.size() || N < 0)
          throw std::invalid_argument(V);
        return N;
      } catch (const std::exception &) {
        fail("expected a nonnegative integer after " + Arg + ": " + V);
      }
      return 0;
    };
    auto SetBudget = [&](const std::string &Spec) {
      Result<EffortBudget> B = EffortBudget::parse(Spec);
      if (!B)
        fail(B.error().toString());
      Budget = *B;
      HaveBudget = true;
    };
    if (Arg == "--vars")
      Vars = splitList(Next());
    else if (Arg == "--budget")
      SetBudget(Next());
    else if (Arg.rfind("--budget=", 0) == 0)
      SetBudget(Arg.substr(9));
    else if (Arg == "--file")
      FilePath = Next();
    else if (Arg == "--workers")
      setWorkerCount(static_cast<unsigned>(NextCount()));
    else if (Arg == "--cache")
      setConjunctCacheCapacity(static_cast<size_t>(NextCount()));
    else if (Arg == "--no-cache")
      setConjunctCacheCapacity(0);
    else if (Arg == "--stats") {
      Stats = true;
      setArithOpCounting(true); // Fast/slow op tallies are off by default.
    }
    else if (Arg == "--sum")
      SumText = Next();
    else if (Arg == "--at")
      Ats.push_back(parseBindings(Next()));
    else if (Arg == "--strategy") {
      std::string S = Next();
      if (S == "splinter")
        Opts.Strategy = BoundStrategy::Splinter;
      else if (S == "mod")
        Opts.Strategy = BoundStrategy::SymbolicMod;
      else if (S == "upper")
        Opts.Strategy = BoundStrategy::UpperBound;
      else if (S == "lower")
        Opts.Strategy = BoundStrategy::LowerBound;
      else if (S == "approx")
        Opts.Strategy = BoundStrategy::Approximate;
      else
        fail("unknown strategy: " + S);
    } else if (Arg == "--simplify-only")
      SimplifyOnly = true;
    else if (Arg == "--sample")
      Sample = true;
    else if (Arg == "--help" || Arg == "-h") {
      std::cout
          << "usage: omegacount --vars i,j [options] \"<formula>\"\n"
             "  --file F         read a .presburger file (vars: from the "
             "file unless --vars)\n"
             "  --sum POLY       sum POLY (e.g. \"i*j + 2*i\") over the "
             "solutions\n"
             "  --strategy S     splinter|mod|upper|lower|approx\n"
             "  --at n=5,m=3     evaluate the symbolic answer (repeatable)\n"
             "  --simplify-only  print disjoint DNF only\n"
             "  --sample         print one solution per --at binding\n"
             "  --workers N      worker threads for disjunct fan-out "
             "(0 = serial)\n"
             "  --cache N        conjunct cache capacity (entries); "
             "--no-cache disables\n"
             "  --budget SPEC    effort budget, e.g. "
             "\"bits=64,splinters=32,clauses=256,depth=24,ms=5000\";\n"
             "                   on exhaustion prints UNKNOWN with certified "
             "lower/upper bounds\n"
             "  --stats          print pipeline statistics to stderr\n";
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-')
      fail("unknown option: " + Arg);
    else if (FormulaText.empty())
      FormulaText = Arg;
    else
      fail("multiple formulas given");
  }

  if (!FilePath.empty()) {
    if (!FormulaText.empty())
      fail("both --file and a formula argument given");
    FormulaFile In;
    std::string Err;
    if (!readFormulaFile(FilePath, In, Err))
      fail(FilePath + ": " + Err);
    FormulaText = In.FormulaText;
    if (Vars.empty())
      Vars = In.Vars;
  }
  if (FormulaText.empty())
    fail("no formula given (try --help)");
  Formula F = Formula::trueFormula();
  {
    // Parse under the budget so oversized literals are rejected before any
    // arithmetic touches them (a parse diagnostic, not a throw).
    BudgetScope Scope(HaveBudget
                          ? std::make_shared<BudgetState>(Budget)
                          : std::shared_ptr<BudgetState>());
    ParseResult R = parseFormula(FormulaText);
    if (!R)
      fail("parse: " + R.Error);
    F = *R.Value;
  }

  auto EmitStats = [&] {
    if (Stats)
      std::cerr << snapshotPipelineStats().toPretty();
  };

  if (HaveBudget && !Budget.unlimited()) {
    // Budgeted path: no separate DNF print (the exact simplification is
    // itself subject to the budget inside the budgeted summation).
    if (SimplifyOnly) {
      BudgetScope Scope(std::make_shared<BudgetState>(Budget));
      SimplifyOptions SOpts;
      SOpts.Disjoint = true;
      std::vector<Conjunct> D = simplify(F, SOpts);
      std::cout << "disjoint DNF (" << D.size() << " clause"
                << (D.size() == 1 ? "" : "s") << "):\n";
      for (const Conjunct &C : D)
        std::cout << "  " << C << "\n";
      EmitStats();
      return 0;
    }
    if (Vars.empty())
      fail("--vars required for counting");
    const char *What = SumText.empty() ? "count" : "sum";
    BudgetedCount BC =
        SumText.empty()
            ? countSolutionsBudgeted(F, VarSet(Vars.begin(), Vars.end()),
                                     Budget, Opts)
            : sumOverFormulaBudgeted(F, VarSet(Vars.begin(), Vars.end()),
                                     parseSummand(SumText), Budget, Opts);
    if (BC.Status == CountStatus::Error)
      fail(BC.Err.toString());
    if (BC.Status != CountStatus::Bounded) {
      std::cout << What << ":\n  " << BC.Value << "\n";
      if (!BC.Value.isUnbounded())
        for (const Assignment &At : Ats) {
          std::cout << "at";
          for (const auto &[Name, Value] : At)
            std::cout << " " << Name << "=" << Value;
          std::cout << ": " << BC.Value.evaluate(At).toString() << "\n";
        }
      EmitStats();
      return 0;
    }
    std::cout << What << ": UNKNOWN (budget exhausted: " << BC.TrippedLimit
              << ")\n";
    std::cout << "lower bound:\n  " << BC.Lower << "\n";
    std::cout << "upper bound:\n  " << BC.Upper << "\n";
    for (const Assignment &At : Ats) {
      std::cout << "at";
      for (const auto &[Name, Value] : At)
        std::cout << " " << Name << "=" << Value;
      std::cout << ": in [" << BC.Lower.evaluate(At).toString() << ", "
                << (BC.Upper.isUnbounded()
                        ? std::string("unbounded")
                        : BC.Upper.evaluate(At).toString())
                << "]\n";
    }
    EmitStats();
    return 0;
  }

  SimplifyOptions SOpts;
  SOpts.Disjoint = true;
  std::vector<Conjunct> D = simplify(F, SOpts);
  std::cout << "disjoint DNF (" << D.size() << " clause"
            << (D.size() == 1 ? "" : "s") << "):\n";
  for (const Conjunct &C : D)
    std::cout << "  " << C << "\n";
  if (SimplifyOnly) {
    EmitStats();
    return 0;
  }

  if (Vars.empty())
    fail("--vars required for counting");
  PresburgerSet Set(Vars, F);

  PiecewiseValue V = SumText.empty()
                         ? Set.count(Opts)
                         : Set.sum(parseSummand(SumText), Opts);
  std::cout << (SumText.empty() ? "count" : "sum") << ":\n  " << V << "\n";
  if (V.isUnbounded()) {
    EmitStats();
    return 0;
  }

  for (const Assignment &At : Ats) {
    std::cout << "at";
    for (const auto &[Name, Value] : At)
      std::cout << " " << Name << "=" << Value;
    std::cout << ": " << V.evaluate(At).toString() << "\n";
    if (Sample) {
      if (std::optional<Assignment> P = Set.sample(At)) {
        std::cout << "  sample:";
        for (const std::string &Name : Vars)
          std::cout << " " << Name << "=" << P->at(Name);
        std::cout << "\n";
      } else {
        std::cout << "  sample: <empty>\n";
      }
    }
  }
  EmitStats();
  return 0;
}

int main(int Argc, char **Argv) {
  // Nothing the user can type may abort the process: any escape —
  // including a budget trip during --simplify-only, where there is no
  // bounds fallback — becomes a one-line diagnostic and exit 1.
  try {
    return runTool(Argc, Argv);
  } catch (const BudgetExceeded &E) {
    std::cerr << "omegacount: error: " << E.toError().toString() << "\n";
  } catch (const std::exception &E) {
    std::cerr << "omegacount: error: " << E.what() << "\n";
  }
  return 1;
}
