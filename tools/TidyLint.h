//===- tools/TidyLint.h - omegatidy lint engine ----------------*- C++ -*-===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The token-level lint engine behind tools/omegatidy.cpp: a comment- and
/// string-aware C++ tokenizer plus the repo's machine-enforced invariants
/// (README "Static analysis", DESIGN.md §13).  Rules, each addressable in
/// suppression comments by its kebab-case name:
///
///   assert           no assert()/<cassert> in src/ — runtime invariants
///                    use check()/fatalError() (always on, NDEBUG-proof)
///                    and caller-provokable failures use Result<T>.
///   naked-new        no naked new/malloc family; ownership goes through
///                    containers and smart pointers.  support/BigInt.cpp
///                    (the limb spill paths) is exempt wholesale.
///   mutex-wrapper    no raw std::mutex/lock_guard/unique_lock/... outside
///                    support/ThreadAnnotations.h; lock-protected state
///                    must use the capability-annotated wrappers so Clang
///                    -Wthread-safety can see it.
///   guarded-by       a class holding a Mutex member must annotate every
///                    sibling mutable data member with OMEGA_GUARDED_BY
///                    (atomics, ConditionVariable, const and static
///                    members are exempt by construction).
///   string-keyed-vars  no std::map/std::unordered_map from std::string to
///                    BigInt/VarId in src/ outside the parser and the Var
///                    boundary (presburger/Parser.*, presburger/Var*) —
///                    variable valuations intern names into VarId
///                    (presburger/VarTable.h) and key on ids.
///   trace-span-temp  no unnamed-temporary TraceSpan: `TraceSpan("x");`
///                    dies immediately and times nothing.
///   header-guard     .h guards must spell the path: src/support/Cache.h
///                    guards with OMEGA_SUPPORT_CACHE_H.
///   include-hygiene  no ".." in quoted includes (include paths are rooted
///                    at src/), and no `using namespace` in headers.
///
/// A finding on line N is silenced by `// omegatidy: allow(rule)` on line
/// N or N-1 (so the comment can sit on its own line above the construct).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_TOOLS_TIDYLINT_H
#define OMEGA_TOOLS_TIDYLINT_H

#include <string>
#include <vector>

namespace omega {
namespace tidy {

/// One rule violation at a source position (1-based line and column).
struct Finding {
  std::string Path;
  size_t Line = 0;
  size_t Col = 0;
  std::string Rule;
  std::string Message;

  /// Renders "path:line:col: rule: message".
  std::string toString() const;
};

/// Lints one file's text.  \p RelPath is the path relative to the repo
/// root ("src/support/Cache.h") — rules are scoped by it; \p Path is the
/// spelling to use in findings (usually what the user passed).
std::vector<Finding> lintSource(const std::string &Path,
                                const std::string &RelPath,
                                const std::string &Text);

/// The expected header-guard macro for a repo-relative header path:
/// "src/support/Cache.h" -> "OMEGA_SUPPORT_CACHE_H" (a leading src/ is
/// dropped; tools/, bench/, tests/ are kept).
std::string expectedHeaderGuard(const std::string &RelPath);

} // namespace tidy
} // namespace omega

#endif // OMEGA_TOOLS_TIDYLINT_H
