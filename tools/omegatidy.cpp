//===- tools/omegatidy.cpp - Project invariant linter --------------------===//
//
// Token-level enforcement of the repo's coding invariants (the rule list
// lives in TidyLint.h; README "Static analysis" documents the why):
//
//   omegatidy src tools bench        # walk directories for .h/.cpp
//   omegatidy src/support/Cache.h    # or lint single files
//
// Findings print as `path:line:col: rule: message` — the same positioned
// shape as the parser's diagnostics — and the exit status is nonzero iff
// anything was found, so the ci.sh analyze leg can gate on it.  A finding
// is silenced by `// omegatidy: allow(rule)` on its line or the line
// above; suppressions are deliberate and reviewable in the diff.
//
//===----------------------------------------------------------------------===//

#include "TidyLint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace omega;

namespace {

/// Repo-relative spelling of \p Path: the suffix starting at the last
/// path component named src/tools/bench/tests, or the bare filename when
/// none is present (rules then apply their least path-restricted form).
std::string relativize(const std::string &Path) {
  std::filesystem::path P =
      std::filesystem::path(Path).lexically_normal();
  std::vector<std::string> Parts;
  for (const auto &Component : P)
    Parts.push_back(Component.string());
  for (size_t I = Parts.size(); I-- > 0;) {
    const std::string &C = Parts[I];
    if (C == "src" || C == "tools" || C == "bench" || C == "tests") {
      std::string Rel;
      for (size_t J = I; J < Parts.size(); ++J) {
        if (!Rel.empty())
          Rel += '/';
        Rel += Parts[J];
      }
      return Rel;
    }
  }
  return P.filename().string();
}

bool lintable(const std::filesystem::path &P) {
  std::string Ext = P.extension().string();
  return Ext == ".h" || Ext == ".cpp" || Ext == ".cc";
}

int lintFile(const std::string &Path, size_t &Findings) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::cerr << "omegatidy: error: cannot read " << Path << "\n";
    return 1;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  for (const tidy::Finding &F :
       tidy::lintSource(Path, relativize(Path), SS.str())) {
    std::cout << F.toString() << "\n";
    ++Findings;
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Paths;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      std::cout << "usage: omegatidy <file-or-dir>...\n"
                   "Lints .h/.cpp files against the repo invariants: "
                   "assert, naked-new,\nmutex-wrapper, guarded-by, "
                   "trace-span-temp, header-guard, include-hygiene.\n"
                   "Suppress one finding with `// omegatidy: allow(rule)` "
                   "on or above its line.\nExits nonzero iff findings "
                   "remain.\n";
      return 0;
    }
    if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "omegatidy: unknown option: " << Arg << "\n";
      return 1;
    }
    Paths.push_back(Arg);
  }
  if (Paths.empty()) {
    std::cerr << "omegatidy: no inputs (try --help)\n";
    return 1;
  }

  size_t Files = 0, Findings = 0;
  int Errors = 0;
  for (const std::string &P : Paths) {
    std::error_code EC;
    if (std::filesystem::is_directory(P, EC)) {
      std::vector<std::string> Found;
      for (const auto &Entry :
           std::filesystem::recursive_directory_iterator(P, EC))
        if (Entry.is_regular_file() && lintable(Entry.path()))
          Found.push_back(Entry.path().string());
      std::sort(Found.begin(), Found.end());
      for (const std::string &F : Found) {
        ++Files;
        Errors += lintFile(F, Findings);
      }
    } else {
      ++Files;
      Errors += lintFile(P, Findings);
    }
  }

  std::cout << "omegatidy: " << Files << " file" << (Files == 1 ? "" : "s")
            << ", " << Findings << " finding" << (Findings == 1 ? "" : "s")
            << "\n";
  return (Findings == 0 && Errors == 0) ? 0 : 1;
}
