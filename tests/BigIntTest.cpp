//===- tests/BigIntTest.cpp - BigInt unit & property tests ---------------===//

#include "support/BigInt.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

using omega::BigInt;

namespace {

TEST(BigIntTest, ZeroBasics) {
  BigInt Z;
  EXPECT_TRUE(Z.isZero());
  EXPECT_FALSE(Z.isNegative());
  EXPECT_EQ(Z.sign(), 0);
  EXPECT_EQ(Z.toString(), "0");
  EXPECT_EQ(Z, BigInt(0));
  EXPECT_EQ(-Z, Z);
}

TEST(BigIntTest, ConstructFromMachineInts) {
  EXPECT_EQ(BigInt(42).toInt64(), 42);
  EXPECT_EQ(BigInt(-42).toInt64(), -42);
  EXPECT_EQ(BigInt(INT64_MAX).toInt64(), INT64_MAX);
  EXPECT_EQ(BigInt(INT64_MIN).toInt64(), INT64_MIN);
  EXPECT_EQ(BigInt(0u).toString(), "0");
  EXPECT_EQ(BigInt(UINT64_MAX).toString(), "18446744073709551615");
}

TEST(BigIntTest, FitsInt64Boundaries) {
  EXPECT_TRUE(BigInt(INT64_MAX).fitsInt64());
  EXPECT_TRUE(BigInt(INT64_MIN).fitsInt64());
  EXPECT_FALSE((BigInt(INT64_MAX) + BigInt(1)).fitsInt64());
  EXPECT_FALSE((BigInt(INT64_MIN) - BigInt(1)).fitsInt64());
  // INT64_MIN magnitude is exactly 2^63, which fits only when negative.
  BigInt TwoTo63 = BigInt::pow(BigInt(2), 63);
  EXPECT_FALSE(TwoTo63.fitsInt64());
  EXPECT_TRUE((-TwoTo63).fitsInt64());
  EXPECT_EQ((-TwoTo63).toInt64(), INT64_MIN);
}

TEST(BigIntTest, StringRoundTrip) {
  const char *Cases[] = {"0",
                         "1",
                         "-1",
                         "123456789",
                         "-987654321",
                         "340282366920938463463374607431768211455",
                         "-170141183460469231731687303715884105728"};
  for (const char *S : Cases) {
    BigInt V(S);
    EXPECT_EQ(V.toString(), S);
  }
}

TEST(BigIntTest, FromStringRejectsMalformed) {
  BigInt V;
  EXPECT_FALSE(BigInt::fromString("", V));
  EXPECT_FALSE(BigInt::fromString("-", V));
  EXPECT_FALSE(BigInt::fromString("12a", V));
  EXPECT_FALSE(BigInt::fromString(" 12", V));
  EXPECT_TRUE(BigInt::fromString("+17", V));
  EXPECT_EQ(V.toInt64(), 17);
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt A("4294967295"); // 2^32 - 1
  EXPECT_EQ((A + BigInt(1)).toString(), "4294967296");
  BigInt B("18446744073709551615"); // 2^64 - 1
  EXPECT_EQ((B + BigInt(1)).toString(), "18446744073709551616");
  EXPECT_EQ((B + B).toString(), "36893488147419103230");
}

TEST(BigIntTest, SubtractionSignHandling) {
  EXPECT_EQ((BigInt(5) - BigInt(7)).toInt64(), -2);
  EXPECT_EQ((BigInt(-5) - BigInt(-7)).toInt64(), 2);
  EXPECT_EQ((BigInt(-5) - BigInt(7)).toInt64(), -12);
  BigInt B("18446744073709551616");
  EXPECT_EQ((B - BigInt(1)).toString(), "18446744073709551615");
}

TEST(BigIntTest, MultiplicationLarge) {
  BigInt A("123456789012345678901234567890");
  BigInt B("987654321098765432109876543210");
  EXPECT_EQ((A * B).toString(),
            "121932631137021795226185032733622923332237463801111263526900");
  EXPECT_EQ((A * BigInt(0)).toString(), "0");
  EXPECT_EQ((A * BigInt(-1)), -A);
}

TEST(BigIntTest, TruncatedDivisionSemantics) {
  // C-style: quotient rounds toward zero, remainder follows dividend.
  EXPECT_EQ((BigInt(7) / BigInt(2)).toInt64(), 3);
  EXPECT_EQ((BigInt(-7) / BigInt(2)).toInt64(), -3);
  EXPECT_EQ((BigInt(7) / BigInt(-2)).toInt64(), -3);
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).toInt64(), 3);
  EXPECT_EQ((BigInt(7) % BigInt(2)).toInt64(), 1);
  EXPECT_EQ((BigInt(-7) % BigInt(2)).toInt64(), -1);
  EXPECT_EQ((BigInt(7) % BigInt(-2)).toInt64(), 1);
  EXPECT_EQ((BigInt(-7) % BigInt(-2)).toInt64(), -1);
}

TEST(BigIntTest, FloorAndCeilDivision) {
  EXPECT_EQ(BigInt::floorDiv(7, 2).toInt64(), 3);
  EXPECT_EQ(BigInt::floorDiv(-7, 2).toInt64(), -4);
  EXPECT_EQ(BigInt::floorDiv(7, -2).toInt64(), -4);
  EXPECT_EQ(BigInt::floorDiv(-7, -2).toInt64(), 3);
  EXPECT_EQ(BigInt::ceilDiv(7, 2).toInt64(), 4);
  EXPECT_EQ(BigInt::ceilDiv(-7, 2).toInt64(), -3);
  EXPECT_EQ(BigInt::ceilDiv(7, -2).toInt64(), -3);
  EXPECT_EQ(BigInt::ceilDiv(-7, -2).toInt64(), 4);
  EXPECT_EQ(BigInt::floorMod(-7, 3).toInt64(), 2);
  EXPECT_EQ(BigInt::floorMod(7, 3).toInt64(), 1);
  EXPECT_EQ(BigInt::floorMod(-7, -3).toInt64(), 2);
}

TEST(BigIntTest, MultiLimbDivision) {
  BigInt A("121932631137021795226185032733622923332237463801111263526900");
  BigInt B("987654321098765432109876543210");
  EXPECT_EQ((A / B).toString(), "123456789012345678901234567890");
  EXPECT_EQ((A % B).toString(), "0");
  BigInt C = A + BigInt(12345);
  EXPECT_EQ((C / B).toString(), "123456789012345678901234567890");
  EXPECT_EQ((C % B).toString(), "12345");
}

TEST(BigIntTest, GcdLcm) {
  EXPECT_EQ(BigInt::gcd(12, 18).toInt64(), 6);
  EXPECT_EQ(BigInt::gcd(-12, 18).toInt64(), 6);
  EXPECT_EQ(BigInt::gcd(0, 5).toInt64(), 5);
  EXPECT_EQ(BigInt::gcd(0, 0).toInt64(), 0);
  EXPECT_EQ(BigInt::lcm(4, 6).toInt64(), 12);
  EXPECT_EQ(BigInt::lcm(-4, 6).toInt64(), 12);
  EXPECT_EQ(BigInt::lcm(0, 6).toInt64(), 0);
}

TEST(BigIntTest, ExtendedGcdBezout) {
  std::mt19937_64 Rng(7);
  for (int Trial = 0; Trial < 200; ++Trial) {
    BigInt A(int64_t(Rng() % 2000) - 1000);
    BigInt B(int64_t(Rng() % 2000) - 1000);
    BigInt X, Y;
    BigInt G = BigInt::extendedGcd(A, B, X, Y);
    EXPECT_EQ(G, BigInt::gcd(A, B));
    EXPECT_EQ(A * X + B * Y, G);
  }
}

TEST(BigIntTest, Pow) {
  EXPECT_EQ(BigInt::pow(2, 0).toInt64(), 1);
  EXPECT_EQ(BigInt::pow(2, 10).toInt64(), 1024);
  EXPECT_EQ(BigInt::pow(-3, 3).toInt64(), -27);
  EXPECT_EQ(BigInt::pow(10, 30).toString(), "1000000000000000000000000000000");
}

TEST(BigIntTest, Divides) {
  EXPECT_TRUE(BigInt(3).divides(9));
  EXPECT_TRUE(BigInt(3).divides(-9));
  EXPECT_TRUE(BigInt(-3).divides(9));
  EXPECT_FALSE(BigInt(3).divides(10));
  EXPECT_TRUE(BigInt(0).divides(0));
  EXPECT_FALSE(BigInt(0).divides(1));
  EXPECT_TRUE(BigInt(1).divides(0));
}

TEST(BigIntTest, Ordering) {
  EXPECT_LT(BigInt(-2), BigInt(1));
  EXPECT_LT(BigInt(-5), BigInt(-2));
  EXPECT_GT(BigInt("100000000000000000000"), BigInt("99999999999999999999"));
  EXPECT_LE(BigInt(3), BigInt(3));
  EXPECT_GE(BigInt(3), BigInt(3));
}

/// Randomized agreement with int64 arithmetic within safe ranges.
TEST(BigIntTest, RandomAgreementWithInt64) {
  std::mt19937_64 Rng(42);
  for (int Trial = 0; Trial < 2000; ++Trial) {
    int64_t A = int64_t(Rng() % 2000001) - 1000000;
    int64_t B = int64_t(Rng() % 2000001) - 1000000;
    BigInt BA(A), BB(B);
    EXPECT_EQ((BA + BB).toInt64(), A + B);
    EXPECT_EQ((BA - BB).toInt64(), A - B);
    EXPECT_EQ((BA * BB).toInt64(), A * B);
    if (B != 0) {
      EXPECT_EQ((BA / BB).toInt64(), A / B);
      EXPECT_EQ((BA % BB).toInt64(), A % B);
    }
    EXPECT_EQ(BA.compare(BB), A < B ? -1 : (A == B ? 0 : 1));
  }
}

/// Division round-trip property on large random operands:
/// A == (A / B) * B + (A % B) and |A % B| < |B|.
TEST(BigIntTest, RandomDivisionRoundTrip) {
  std::mt19937_64 Rng(99);
  auto RandomBig = [&](int Limbs) {
    BigInt V(0);
    for (int I = 0; I < Limbs; ++I)
      V = V * BigInt("4294967296") + BigInt(uint64_t(Rng() & 0xffffffffu));
    if (Rng() & 1)
      V = -V;
    return V;
  };
  for (int Trial = 0; Trial < 500; ++Trial) {
    BigInt A = RandomBig(1 + int(Rng() % 5));
    BigInt B = RandomBig(1 + int(Rng() % 3));
    if (B.isZero())
      continue;
    BigInt Q, R;
    BigInt::divMod(A, B, Q, R);
    EXPECT_EQ(Q * B + R, A);
    EXPECT_LT(R.abs(), B.abs());
    if (!R.isZero()) {
      EXPECT_EQ(R.sign(), A.sign());
    }
    // Floor/ceil/mod coherence.
    BigInt FD = BigInt::floorDiv(A, B), CD = BigInt::ceilDiv(A, B);
    EXPECT_LE(FD, CD);
    EXPECT_LE(CD - FD, BigInt(1));
    BigInt FM = BigInt::floorMod(A, B);
    EXPECT_GE(FM, BigInt(0));
    EXPECT_LT(FM, B.abs());
    EXPECT_TRUE(B.divides(A - FM));
  }
}

TEST(BigIntTest, HashConsistency) {
  EXPECT_EQ(BigInt(7).hash(), BigInt(7).hash());
  EXPECT_EQ(BigInt("123456789123456789").hash(),
            BigInt("123456789123456789").hash());
  EXPECT_NE(BigInt(7).hash(), BigInt(-7).hash());
}

TEST(BigIntTest, FloorCeilDivModCornerTable) {
  // Negative-denominator and exact-division corners, table-driven:
  // floorDiv rounds toward -inf, ceilDiv toward +inf, and
  // floorMod(n, d) = n - floorDiv(n, |d|) * |d| lies in [0, |d|).
  struct Case {
    int64_t Num, Den, Floor, Ceil, Mod;
  };
  const Case Cases[] = {
      {0, 5, 0, 0, 0},        {0, -5, 0, 0, 0},
      {10, 5, 2, 2, 0},       {10, -5, -2, -2, 0},
      {-10, 5, -2, -2, 0},    {-10, -5, 2, 2, 0},
      {1, -2, -1, 0, 1},      {-1, -2, 0, 1, 1},
      {5, -3, -2, -1, 2},     {-5, -3, 1, 2, 1},
      {INT64_MAX, 1, INT64_MAX, INT64_MAX, 0},
      {INT64_MAX, -1, -INT64_MAX, -INT64_MAX, 0},
      {INT64_MIN, 1, INT64_MIN, INT64_MIN, 0},
      {INT64_MIN, 2, INT64_MIN / 2, INT64_MIN / 2, 0},
  };
  for (const Case &C : Cases) {
    BigInt N(C.Num), D(C.Den);
    EXPECT_EQ(BigInt::floorDiv(N, D).toInt64(), C.Floor)
        << C.Num << " fdiv " << C.Den;
    EXPECT_EQ(BigInt::ceilDiv(N, D).toInt64(), C.Ceil)
        << C.Num << " cdiv " << C.Den;
    EXPECT_EQ(BigInt::floorMod(N, D).toInt64(), C.Mod)
        << C.Num << " mod " << C.Den;
  }
  // INT64_MIN / -1 has magnitude 2^63 and only fits as a string.
  EXPECT_EQ(BigInt::floorDiv(BigInt(INT64_MIN), BigInt(-1)).toString(),
            "9223372036854775808");
  EXPECT_EQ(BigInt::ceilDiv(BigInt(INT64_MIN), BigInt(-1)).toString(),
            "9223372036854775808");
  EXPECT_EQ(BigInt::floorMod(BigInt(INT64_MIN), BigInt(-1)).toInt64(), 0);
  // floorDiv/ceilDiv differ only on inexact division, by exactly one.
  for (int64_t Num : {-9, -4, -1, 1, 4, 9})
    for (int64_t Den : {-7, -2, 2, 7}) {
      BigInt F = BigInt::floorDiv(BigInt(Num), BigInt(Den));
      BigInt Cl = BigInt::ceilDiv(BigInt(Num), BigInt(Den));
      if (Num % Den == 0)
        EXPECT_EQ(F, Cl) << Num << "/" << Den;
      else
        EXPECT_EQ(F + BigInt(1), Cl) << Num << "/" << Den;
    }
}

TEST(BigIntTest, BitWidth) {
  EXPECT_EQ(BigInt(0).bitWidth(), 0u);
  EXPECT_EQ(BigInt(1).bitWidth(), 1u);
  EXPECT_EQ(BigInt(-1).bitWidth(), 1u);
  EXPECT_EQ(BigInt(255).bitWidth(), 8u);
  EXPECT_EQ(BigInt(256).bitWidth(), 9u);
  EXPECT_EQ(BigInt(INT64_MAX).bitWidth(), 63u);
  EXPECT_EQ(BigInt(INT64_MIN).bitWidth(), 64u);
  EXPECT_EQ(BigInt::pow(BigInt(2), 100).bitWidth(), 101u);
  EXPECT_EQ((BigInt::pow(BigInt(2), 100) - BigInt(1)).bitWidth(), 100u);
}

TEST(BigIntTest, LcmCorners) {
  // Zeros: lcm(0, x) == 0 by convention, including lcm(0, 0).
  EXPECT_EQ(BigInt::lcm(0, 0).toInt64(), 0);
  EXPECT_EQ(BigInt::lcm(0, 7).toInt64(), 0);
  EXPECT_EQ(BigInt::lcm(7, 0).toInt64(), 0);
  // Signs never leak into the result.
  EXPECT_EQ(BigInt::lcm(-4, -6).toInt64(), 12);
  EXPECT_EQ(BigInt::lcm(4, -6).toInt64(), 12);
  EXPECT_EQ(BigInt::lcm(-1, -1).toInt64(), 1);

  // lcm near the int64/small-rep boundary: the (A/gcd)*B shape must not
  // form the doubly-wide |A*B| when the lcm itself fits a machine word.
  // lcm(2^62, 2) == 2^62 — the old A*B/g shape would have built 2^63.
  BigInt TwoTo62 = BigInt::pow(BigInt(2), 62);
  EXPECT_EQ(BigInt::lcm(TwoTo62, BigInt(2)), TwoTo62);
  EXPECT_EQ(BigInt::lcm(-TwoTo62, BigInt(2)), TwoTo62);
  // Coprime near-max operands do produce a genuinely large lcm.
  BigInt P(INT64_MAX);           // 2^63 - 1 = 7^2 * 73 * 127 * 337 * ...
  BigInt Q(INT64_MAX - 1);       // Even; coprime with 2^63 - 1.
  BigInt L = BigInt::lcm(P, Q);
  EXPECT_EQ(L, P * Q);
  EXPECT_TRUE(L.divides(BigInt(0))); // Nonzero divides zero.
  EXPECT_TRUE(P.divides(L));
  EXPECT_TRUE(Q.divides(L));
  // And the lcm respects the defining identity |A*B| == gcd*lcm.
  EXPECT_EQ(BigInt::gcd(P, Q) * L, (P * Q).abs());
}

TEST(BigIntTest, DivExactMatchesDivision) {
  const int64_t SmallMax = (int64_t(1) << 62) - 1;
  const int64_t Cases[][2] = {{84, 7},       {-84, 7},   {84, -7},
                              {-84, -7},     {0, 5},     {SmallMax - 3, 1},
                              {SmallMax - 3, -1}};
  for (auto [N, D] : Cases)
    EXPECT_EQ(BigInt::divExact(BigInt(N), BigInt(D)), BigInt(N) / BigInt(D));
  // Multi-limb: (2^200 * 3) / 2^100.
  BigInt Big = BigInt::pow(BigInt(2), 200) * BigInt(3);
  BigInt Den = BigInt::pow(BigInt(2), 100);
  EXPECT_EQ(BigInt::divExact(Big, Den), Big / Den);
}

TEST(BigIntTest, SpillAndUnspillAtTheSmallBoundary) {
  // SmallMax = 2^62 - 1 is the largest inline value; crossing it spills,
  // coming back unspills, and == only ever sees canonical forms.
  const int64_t SmallMaxI = (int64_t(1) << 62) - 1;
  BigInt Edge(SmallMaxI);
  EXPECT_TRUE(Edge.isSmallRep());
  EXPECT_TRUE(BigInt(-SmallMaxI).isSmallRep());

  BigInt Over = Edge + BigInt(1); // 2^62: first large value.
  EXPECT_FALSE(Over.isSmallRep());
  EXPECT_EQ(Over.toString(), "4611686018427387904");
  EXPECT_FALSE((-Over).isSmallRep());

  BigInt Back = Over - BigInt(1); // Back under the edge: unspills.
  EXPECT_TRUE(Back.isSmallRep());
  EXPECT_EQ(Back, Edge);
  EXPECT_EQ(Back.hash(), Edge.hash());

  // The same round trip through multiplication and division.
  BigInt Doubled = Edge * BigInt(2);
  EXPECT_FALSE(Doubled.isSmallRep());
  EXPECT_TRUE((Doubled / BigInt(2)).isSmallRep());
  EXPECT_EQ(Doubled / BigInt(2), Edge);

  // Accumulator oscillating across the edge stays exact.
  BigInt Acc = Edge;
  for (int I = 0; I < 8; ++I) {
    Acc += Edge;
    Acc -= Edge;
  }
  EXPECT_TRUE(Acc.isSmallRep());
  EXPECT_EQ(Acc, Edge);
}

TEST(BigIntTest, FromStringAtTheSmallBoundary) {
  // 2^62 - 1 parses to the inline form, 2^62 to the limb form, and both
  // round-trip through toString.
  BigInt AtMax("4611686018427387903");
  EXPECT_TRUE(AtMax.isSmallRep());
  EXPECT_EQ(AtMax.toString(), "4611686018427387903");
  BigInt OverMax("4611686018427387904");
  EXPECT_FALSE(OverMax.isSmallRep());
  EXPECT_EQ(OverMax.toString(), "4611686018427387904");
  EXPECT_EQ(OverMax - BigInt(1), AtMax);
  BigInt NegOver("-4611686018427387904");
  EXPECT_FALSE(NegOver.isSmallRep());
  EXPECT_EQ(NegOver, -OverMax);
}

TEST(BigIntTest, HashAgreesAcrossConstructionRoutes) {
  // The same value reached via literal, arithmetic, and parsing must hash
  // identically (unordered_map keys during conjunct memoization).
  BigInt A(123456789);
  BigInt B = BigInt(123456000) + BigInt(789);
  BigInt C("123456789");
  EXPECT_EQ(A.hash(), B.hash());
  EXPECT_EQ(A.hash(), C.hash());
  // Large values too, via different arithmetic routes.
  BigInt X = BigInt::pow(BigInt(10), 30);
  BigInt Y = BigInt::pow(BigInt(10), 15) * BigInt::pow(BigInt(10), 15);
  EXPECT_EQ(X, Y);
  EXPECT_EQ(X.hash(), Y.hash());
  // Distinct signs hash differently (not required, but a regression in
  // sign handling would surface here).
  EXPECT_NE(A.hash(), (-A).hash());
}

} // namespace
