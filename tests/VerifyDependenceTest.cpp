//===- tests/VerifyDependenceTest.cpp - Verification & dependence tests --===//

#include "apps/Dependence.h"
#include "omega/Verify.h"
#include "presburger/Parser.h"

#include <gtest/gtest.h>

using namespace omega;

namespace {

AffineExpr var(const char *N) { return AffineExpr::variable(N); }
Rational rat(long long N) { return Rational(BigInt(N)); }

TEST(VerifyTest, Satisfiability) {
  EXPECT_TRUE(isSatisfiable(parseFormulaOrDie("1 <= x <= 5")));
  EXPECT_FALSE(isSatisfiable(parseFormulaOrDie("x >= 1 && x <= 0")));
  EXPECT_FALSE(isSatisfiable(parseFormulaOrDie("2 | x && 2 | x + 1")));
  EXPECT_TRUE(isUnsatisfiable(parseFormulaOrDie("3*x = 2")));
}

TEST(VerifyTest, Tautology) {
  EXPECT_TRUE(isTautology(parseFormulaOrDie("x <= 5 || x >= 2")));
  EXPECT_FALSE(isTautology(parseFormulaOrDie("x <= 5")));
  // Every integer is even or odd.
  EXPECT_TRUE(isTautology(parseFormulaOrDie("2 | x || 2 | x + 1")));
  // Integer rounding: 2*floor(x/2) <= x always.
  EXPECT_TRUE(
      isTautology(parseFormulaOrDie("exists(q: x - 1 <= 2*q <= x && "
                                    "2*q <= x)")));
}

TEST(VerifyTest, Implications) {
  EXPECT_TRUE(verifyImplies(parseFormulaOrDie("x >= 3"),
                            parseFormulaOrDie("x >= 1")));
  EXPECT_FALSE(verifyImplies(parseFormulaOrDie("x >= 1"),
                             parseFormulaOrDie("x >= 3")));
  EXPECT_TRUE(verifyImplies(parseFormulaOrDie("4 | x"),
                            parseFormulaOrDie("2 | x")));
  // The paper's quantified form: (∃y: P) => (∃z: Q).
  EXPECT_TRUE(verifyImplies(
      parseFormulaOrDie("exists(y: x = 4*y && 1 <= y <= 10)"),
      parseFormulaOrDie("exists(z: x = 2*z && 1 <= z <= 25)")));
  EXPECT_FALSE(verifyImplies(
      parseFormulaOrDie("exists(z: x = 2*z && 1 <= z <= 25)"),
      parseFormulaOrDie("exists(y: x = 4*y && 1 <= y <= 10)")));
}

TEST(VerifyTest, Equivalence) {
  // x even, two phrasings.
  EXPECT_TRUE(verifyEquivalent(parseFormulaOrDie("2 | x"),
                               parseFormulaOrDie("exists(k: x = 2*k)")));
  // De Morgan.
  EXPECT_TRUE(verifyEquivalent(
      parseFormulaOrDie("!(x >= 1 && y >= 1)"),
      parseFormulaOrDie("x <= 0 || y <= 0")));
  EXPECT_FALSE(verifyEquivalent(parseFormulaOrDie("x >= 0"),
                                parseFormulaOrDie("x >= 1")));
  // Tightening: 2x >= 5 over integers is x >= 3.
  EXPECT_TRUE(verifyEquivalent(parseFormulaOrDie("2*x >= 5"),
                               parseFormulaOrDie("x >= 3")));
}

LoopNest oneLoop(const char *V = "i") {
  LoopNest Nest;
  Nest.add(V, AffineExpr(1), var("n"));
  return Nest;
}

TEST(DependenceTest, LoopCarriedFlow) {
  // a(i) written, a(i-1) read: flow dependence from iteration i to i+1.
  LoopNest Nest = oneLoop();
  ArrayRef Wr{"a", {var("i")}};
  ArrayRef Rd{"a", {var("i") - AffineExpr(1)}};
  EXPECT_TRUE(hasDependence(Nest, Wr, Rd));
  PiecewiseValue Count = countDependencePairs(Nest, Wr, Rd);
  // Pairs (i, i') with i' = i + 1 and both in range: n - 1 of them.
  for (int64_t N = 0; N <= 10; ++N)
    EXPECT_EQ(Count.evaluate({{"n", BigInt(N)}}),
              rat(std::max<int64_t>(0, N - 1)))
        << N;
}

TEST(DependenceTest, StrideDisjointAccesses) {
  // a(2i) written, a(2i+1) read: never the same cell.
  LoopNest Nest = oneLoop();
  ArrayRef Wr{"a", {BigInt(2) * var("i")}};
  ArrayRef Rd{"a", {BigInt(2) * var("i") + AffineExpr(1)}};
  EXPECT_FALSE(hasDependence(Nest, Wr, Rd));
  PiecewiseValue Count = countDependencePairs(Nest, Wr, Rd);
  for (int64_t N = 0; N <= 8; ++N)
    EXPECT_EQ(Count.evaluate({{"n", BigInt(N)}}), rat(0)) << N;
}

TEST(DependenceTest, AllPairsOnScalarLikeCell) {
  // a(1) written and read by every iteration: every ordered pair.
  LoopNest Nest = oneLoop();
  ArrayRef Wr{"a", {AffineExpr(1)}};
  ArrayRef Rd{"a", {AffineExpr(1)}};
  PiecewiseValue Count = countDependencePairs(Nest, Wr, Rd);
  for (int64_t N = 0; N <= 8; ++N)
    EXPECT_EQ(Count.evaluate({{"n", BigInt(N)}}),
              rat(std::max<int64_t>(0, N * (N - 1) / 2)))
        << N;
}

TEST(DependenceTest, TwoDimensionalLexOrder) {
  // a(i, j) written, a(i-1, j+1) read over an n x n nest: dependence
  // pairs ((i,j) -> (i+1, j-1)); count (n-1)^2-ish — verify by brute
  // force.
  LoopNest Nest;
  Nest.add("i", AffineExpr(1), var("n"));
  Nest.add("j", AffineExpr(1), var("n"));
  ArrayRef Wr{"a", {var("i"), var("j")}};
  ArrayRef Rd{"a", {var("i") - AffineExpr(1), var("j") + AffineExpr(1)}};
  PiecewiseValue Count = countDependencePairs(Nest, Wr, Rd);
  for (int64_t N = 0; N <= 6; ++N) {
    int64_t Expected = 0;
    for (int64_t I = 1; I <= N; ++I)
      for (int64_t J = 1; J <= N; ++J)
        for (int64_t IP = 1; IP <= N; ++IP)
          for (int64_t JP = 1; JP <= N; ++JP) {
            bool Lex = I < IP || (I == IP && J < JP);
            if (Lex && I == IP - 1 && J == JP + 1)
              ++Expected;
          }
    EXPECT_EQ(Count.evaluate({{"n", BigInt(N)}}), rat(Expected)) << N;
  }
}

TEST(DependenceTest, SplitCommunicationVolume) {
  // a(i) = ... a(i-2): splitting the loop after iteration s, the second
  // half reads cells s-1 and s written by the first half: 2 cells (when
  // the ranges permit).
  LoopNest Nest = oneLoop();
  ArrayRef Wr{"a", {var("i")}};
  ArrayRef Rd{"a", {var("i") - AffineExpr(2)}};
  PiecewiseValue Comm =
      splitCommunicationCells(Nest, Wr, Rd, "i", "s");
  for (int64_t N = 8, S = 0; S <= N; ++S) {
    // Cells written in [1, s] and read in [s+1, n] (read cell = i-2).
    int64_t Lo = std::max<int64_t>(1, S - 1);
    int64_t Hi = std::min<int64_t>(S, N - 2);
    int64_t Expected = std::max<int64_t>(0, Hi - Lo + 1);
    EXPECT_EQ(Comm.evaluate({{"n", BigInt(N)}, {"s", BigInt(S)}}),
              rat(Expected))
        << "s=" << S;
  }
}

TEST(DependenceTest, GuardedNest) {
  // Triangular guard flows through primed copies: a(i+j) over i+j <= n.
  LoopNest Nest;
  Nest.add("i", AffineExpr(1), var("n"));
  Nest.add("j", AffineExpr(1), var("n"));
  Nest.guard(Constraint::le(var("i") + var("j"), var("n")));
  ArrayRef Wr{"a", {var("i") + var("j")}};
  ArrayRef Rd{"a", {var("i") + var("j")}};
  PiecewiseValue Count = countDependencePairs(Nest, Wr, Rd);
  for (int64_t N = 0; N <= 6; ++N) {
    int64_t Expected = 0;
    for (int64_t I = 1; I <= N; ++I)
      for (int64_t J = 1; I + J <= N; ++J)
        for (int64_t IP = 1; IP <= N; ++IP)
          for (int64_t JP = 1; IP + JP <= N; ++JP) {
            bool Lex = I < IP || (I == IP && J < JP);
            if (Lex && I + J == IP + JP)
              ++Expected;
          }
    EXPECT_EQ(Count.evaluate({{"n", BigInt(N)}}), rat(Expected)) << N;
  }
}

} // namespace
