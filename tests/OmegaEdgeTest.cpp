//===- tests/OmegaEdgeTest.cpp - Omega-test corner cases -----------------===//

#include "omega/Omega.h"

#include "presburger/Parser.h"

#include <gtest/gtest.h>

using namespace omega;

namespace {

AffineExpr var(const char *N) { return AffineExpr::variable(N); }

TEST(OmegaEdgeTest, EmptyClauseEverywhere) {
  Conjunct T;
  EXPECT_TRUE(feasible(T));
  EXPECT_TRUE(containsPoint(T, {}));
  std::vector<Conjunct> R = projectVars(T, {"x"});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_TRUE(R[0].constraints().empty());
  EXPECT_TRUE(implies(T, T));
  EXPECT_TRUE(gist(T, T).constraints().empty());
  EXPECT_TRUE(negateConjunct(T).empty()); // ¬True = False.
}

TEST(OmegaEdgeTest, ProjectingAbsentVariableIsNoOp) {
  Conjunct C;
  C.add(Constraint::ge(var("x") - AffineExpr(1)));
  std::vector<Conjunct> R = projectVars(C, {"zz"});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].constraints().size(), 1u);
}

TEST(OmegaEdgeTest, HugeCoefficientsStayExact) {
  // 10^20 * x = 2 * 10^20  =>  x = 2; machine ints would overflow.
  BigInt Big = BigInt::pow(BigInt(10), 20);
  Conjunct C;
  C.add(Constraint::eq(Big * var("x") - AffineExpr(BigInt(2) * Big)));
  EXPECT_TRUE(feasible(C));
  EXPECT_TRUE(containsPoint(C, {{"x", BigInt(2)}}));
  EXPECT_FALSE(containsPoint(C, {{"x", BigInt(3)}}));
  // And an infeasible twin: 10^20 * x = 2*10^20 + 1.
  Conjunct D;
  D.add(Constraint::eq(Big * var("x") -
                       AffineExpr(BigInt(2) * Big + BigInt(1))));
  EXPECT_FALSE(feasible(D));
}

TEST(OmegaEdgeTest, LargeStrideFeasibility) {
  // x ≡ 1 (mod 10^12) inside [0, 10^13]: feasible with big witnesses.
  BigInt Mod = BigInt::pow(BigInt(10), 12);
  Conjunct C;
  C.add(Constraint::stride(Mod, var("x") - AffineExpr(1)));
  C.add(Constraint::ge(var("x")));
  C.add(Constraint::ge(AffineExpr(Mod * BigInt(10)) - var("x")));
  EXPECT_TRUE(feasible(C));
  std::optional<Assignment> P = samplePoint(C);
  ASSERT_TRUE(P.has_value());
  EXPECT_TRUE(Mod.divides(P->at("x") - BigInt(1)));
}

TEST(OmegaEdgeTest, GistAgainstInfeasibleContext) {
  // gist P given an infeasible Q: everything is implied (Q ∧ anything is
  // infeasible), so the gist may drop all constraints.
  Conjunct P;
  P.add(Constraint::ge(var("x") - AffineExpr(1)));
  Conjunct Q;
  Q.add(Constraint::ge(AffineExpr(-1)));
  Conjunct G = gist(P, Q);
  EXPECT_TRUE(G.constraints().empty());
}

TEST(OmegaEdgeTest, GistKeepsStrides) {
  // gist (2|x ∧ 1<=x<=9) given (1<=x<=9) keeps only the stride.
  Conjunct P;
  P.add(Constraint::stride(BigInt(2), var("x")));
  P.add(Constraint::ge(var("x") - AffineExpr(1)));
  P.add(Constraint::ge(AffineExpr(9) - var("x")));
  Conjunct Q;
  Q.add(Constraint::ge(var("x") - AffineExpr(1)));
  Q.add(Constraint::ge(AffineExpr(9) - var("x")));
  Conjunct G = gist(P, Q);
  ASSERT_EQ(G.constraints().size(), 1u);
  EXPECT_TRUE(G.constraints()[0].isStride());
}

TEST(OmegaEdgeTest, ImpliesWithEqualityAndStride) {
  Conjunct P;
  P.add(Constraint::eq(var("x") - BigInt(6) * var("k")));
  Conjunct Q;
  Q.add(Constraint::stride(BigInt(3), var("x")));
  // x = 6k implies 3 | x — but note implies() treats shared names
  // universally: for all x, k: x = 6k => 3 | x.  True.
  EXPECT_TRUE(implies(P, Q));
  Conjunct R;
  R.add(Constraint::stride(BigInt(4), var("x")));
  EXPECT_FALSE(implies(P, R)); // x = 6 is not divisible by 4.
}

TEST(OmegaEdgeTest, CoalescePairAdjacentIntervals) {
  Conjunct A, B;
  A.add(Constraint::ge(var("x") - AffineExpr(1)));
  A.add(Constraint::ge(AffineExpr(4) - var("x")));
  B.add(Constraint::ge(var("x") - AffineExpr(5)));
  B.add(Constraint::ge(AffineExpr(9) - var("x")));
  std::optional<Conjunct> M = coalescePair(A, B);
  ASSERT_TRUE(M.has_value());
  for (int64_t X = -2; X <= 12; ++X)
    EXPECT_EQ(M->contains({{"x", BigInt(X)}}), X >= 1 && X <= 9) << X;
  // A gap blocks coalescing.
  Conjunct C;
  C.add(Constraint::ge(var("x") - AffineExpr(6)));
  C.add(Constraint::ge(AffineExpr(9) - var("x")));
  EXPECT_FALSE(coalescePair(A, C).has_value());
}

TEST(OmegaEdgeTest, CoalescePairResidueClasses) {
  // Even ∪ odd over the same range = the range.
  Conjunct A, B;
  for (Conjunct *C : {&A, &B}) {
    C->add(Constraint::ge(var("x") - AffineExpr(1)));
    C->add(Constraint::ge(AffineExpr(8) - var("x")));
  }
  A.add(Constraint::stride(BigInt(2), var("x")));
  B.add(Constraint::stride(BigInt(2), var("x") - AffineExpr(1)));
  std::optional<Conjunct> M = coalescePair(A, B);
  ASSERT_TRUE(M.has_value());
  for (int64_t X = 0; X <= 9; ++X)
    EXPECT_EQ(M->contains({{"x", BigInt(X)}}), X >= 1 && X <= 8) << X;
}

TEST(OmegaEdgeTest, MakeDisjointDegenerateInputs) {
  EXPECT_TRUE(makeDisjoint({}).empty());
  Conjunct C;
  C.add(Constraint::ge(var("x")));
  std::vector<Conjunct> One = makeDisjoint({C});
  EXPECT_EQ(One.size(), 1u);
  // Identical clauses collapse to one.
  std::vector<Conjunct> Two = makeDisjoint({C, C});
  EXPECT_EQ(Two.size(), 1u);
}

TEST(OmegaEdgeTest, RenameFreeVarsRespectsShadowing) {
  // In exists(x: x = y), renaming x must not touch the bound x.
  Formula F = parseFormulaOrDie("exists(x: x = y && x >= 0)");
  Formula R = renameFreeVars(F, {{"x", "z"}, {"y", "w"}});
  VarSet Free = R.freeVars();
  EXPECT_EQ(Free, VarSet{"w"});
}

TEST(OmegaEdgeTest, NormalizeConjunctDetectsConflicts) {
  Conjunct C;
  C.add(Constraint::eq(BigInt(2) * var("x") - AffineExpr(1)));
  EXPECT_FALSE(normalizeConjunct(C));
  Conjunct D;
  D.add(Constraint::ge(AffineExpr(-3)));
  EXPECT_FALSE(normalizeConjunct(D));
  Conjunct E;
  E.add(Constraint::ge(var("x") - var("x"))); // 0 >= 0, trivially true.
  EXPECT_TRUE(normalizeConjunct(E));
  EXPECT_TRUE(E.constraints().empty());
}

TEST(OmegaEdgeTest, DeeplyNestedQuantifiers) {
  // ∃a: (∃b: a = 2b) ∧ (∃c: a = 3c) ∧ x = a ∧ 0 <= a <= 30:
  // x must be a multiple of 6 in [0, 30].
  Formula F = parseFormulaOrDie(
      "exists(a: exists(b: a = 2*b) && exists(c: a = 3*c) && x = a && "
      "0 <= a <= 30)");
  std::vector<Conjunct> D = simplify(F);
  for (int64_t X = -3; X <= 33; ++X) {
    bool Expected = X >= 0 && X <= 30 && X % 6 == 0;
    bool Got = false;
    for (const Conjunct &C : D)
      Got = Got || containsPoint(C, {{"x", BigInt(X)}});
    EXPECT_EQ(Got, Expected) << X;
  }
}

TEST(OmegaEdgeTest, SimplifyDoubleNegationIsIdentity) {
  Formula F = parseFormulaOrDie("1 <= x <= 7 && 2 | x");
  Formula NN = !!F;
  std::vector<Conjunct> A = simplify(F);
  std::vector<Conjunct> B = simplify(NN);
  for (int64_t X = -2; X <= 9; ++X) {
    Assignment P{{"x", BigInt(X)}};
    bool InA = false, InB = false;
    for (const Conjunct &C : A)
      InA = InA || containsPoint(C, P);
    for (const Conjunct &C : B)
      InB = InB || containsPoint(C, P);
    EXPECT_EQ(InA, InB) << X;
  }
}

} // namespace
