//===- tests/BaselinesTest.cpp - Enumerator, Tawbi, FST, naive forms -----===//

#include "baselines/Enumerator.h"
#include "baselines/FixedOrderSum.h"
#include "baselines/InclusionExclusion.h"

#include "presburger/Parser.h"

#include <gtest/gtest.h>

using namespace omega;

namespace {

AffineExpr var(const char *N) { return AffineExpr::variable(N); }
Rational rat(long long N, long long D = 1) {
  return Rational(BigInt(N), BigInt(D));
}

TEST(EnumeratorTest, CountsAndSums) {
  Formula F = parseFormulaOrDie("1 <= i <= n && 2 | i");
  EXPECT_EQ(enumerateCount(F, {"i"}, {{"n", BigInt(10)}}, -2, 15, 0, 0)
                .toInt64(),
            5);
  Rational S = enumerateSum(F, {"i"}, {{"n", BigInt(10)}},
                            QuasiPolynomial::variable("i"), -2, 15, 0, 0);
  EXPECT_EQ(S, rat(30)); // 2+4+6+8+10.
}

TEST(EnumeratorTest, QuantifiersInBox) {
  Formula F = parseFormulaOrDie("exists(k: x = 2*k && 0 <= k <= 10)");
  Assignment A{{"x", BigInt(6)}};
  EXPECT_TRUE(evaluateInBox(F, A, -2, 12));
  A["x"] = BigInt(7);
  EXPECT_FALSE(evaluateInBox(F, A, -2, 12));
  Formula G = parseFormulaOrDie("forall(k: !(1 <= k <= 3) || x >= k)");
  A["x"] = BigInt(3);
  EXPECT_TRUE(evaluateInBox(G, A, -4, 4));
  A["x"] = BigInt(2);
  EXPECT_FALSE(evaluateInBox(G, A, -4, 4));
}

TEST(EnumeratorTest, SimplifyThenEvaluateEscapesWitnessBox) {
  // The witness for i = 5k at i = 20 is k = 4, outside the [-2, 2] witness
  // box.  A raw box search would miss it; the oracle now eliminates the
  // quantifier exactly (simplify-then-evaluate) before sweeping, so the
  // count is right regardless of the witness box.
  Formula F = parseFormulaOrDie("exists(k: i = 5*k) && 0 <= i <= 20");
  EXPECT_EQ(enumerateCount(F, {"i"}, {}, 0, 20, -2, 2).toInt64(), 5);
}

/// Builds the clause of §6 Example 1: 1<=i<=n, 1<=j<=i, j<=k<=m.
Conjunct example1Clause() {
  Conjunct C;
  C.add(Constraint::ge(var("i") - AffineExpr(1)));
  C.add(Constraint::ge(var("n") - var("i")));
  C.add(Constraint::ge(var("j") - AffineExpr(1)));
  C.add(Constraint::ge(var("i") - var("j")));
  C.add(Constraint::ge(var("k") - var("j")));
  C.add(Constraint::ge(var("m") - var("k")));
  return C;
}

TEST(FixedOrderSumTest, Example1ValuesMatchEnumeration) {
  BaselineSumResult R = fixedOrderSum(example1Clause(), {"k", "j", "i"},
                                      QuasiPolynomial(rat(1)));
  for (int64_t N = 0; N <= 6; ++N)
    for (int64_t M = 0; M <= 6; ++M) {
      int64_t Expected = 0;
      for (int64_t I = 1; I <= N; ++I)
        for (int64_t J = 1; J <= I; ++J)
          Expected += std::max<int64_t>(0, M - J + 1);
      EXPECT_EQ(R.Value.evaluate({{"n", BigInt(N)}, {"m", BigInt(M)}}),
                rat(Expected))
          << N << "," << M;
    }
}

TEST(FixedOrderSumTest, Example1ProducesMoreTermsThanOurs) {
  // §6 Example 1: the free-order engine needs 2 terms; the fixed-order
  // baseline needs at least 3 (Tawbi's count in the paper).
  BaselineSumResult R = fixedOrderSum(example1Clause(), {"k", "j", "i"},
                                      QuasiPolynomial(rat(1)));
  EXPECT_GE(R.NumTerms, 3u);
}

TEST(NaiveClosedFormTest, MathematicaExample) {
  // §1: Σ_{i=1}^n Σ_{j=i}^m 1 -> n(2m - n + 1)/2 with no guards; right
  // only when 1 <= n <= m.
  Conjunct C;
  C.add(Constraint::ge(var("i") - AffineExpr(1)));
  C.add(Constraint::ge(var("n") - var("i")));
  C.add(Constraint::ge(var("j") - var("i")));
  C.add(Constraint::ge(var("m") - var("j")));
  QuasiPolynomial Naive =
      naiveClosedFormSum(C, {"j", "i"}, QuasiPolynomial(rat(1)));
  // Matches the formula the paper quotes from Mathematica.
  for (int64_t N = 0; N <= 8; ++N)
    for (int64_t M = 0; M <= 8; ++M) {
      Rational Formula = rat(N * (2 * M - N + 1), 2);
      EXPECT_EQ(Naive.evaluate({{"n", BigInt(N)}, {"m", BigInt(M)}}),
                Formula);
    }
  // Correct on 1 <= n <= m; WRONG when 1 <= m < n (paper: truth is
  // m(m+1)/2 there).
  EXPECT_EQ(Naive.evaluate({{"n", BigInt(3)}, {"m", BigInt(5)}}), rat(12));
  EXPECT_NE(Naive.evaluate({{"n", BigInt(5)}, {"m", BigInt(3)}}), rat(6));
}

TEST(InclusionExclusionTest, MatchesDisjointCount) {
  // Union of three overlapping intervals; FST needs 2^3 - 1 = 7
  // summations (§4.5.1), the disjoint route sums each clause once.
  std::vector<Conjunct> Clauses;
  auto Interval = [&](int64_t Lo, int64_t Hi) {
    Conjunct C;
    C.add(Constraint::ge(var("x") - AffineExpr(Lo)));
    C.add(Constraint::ge(AffineExpr(Hi) - var("x")));
    return C;
  };
  Clauses.push_back(Interval(1, 10));
  Clauses.push_back(Interval(5, 14));
  Clauses.push_back(Interval(8, 20));
  InclusionExclusionResult R =
      countUnionInclusionExclusion(Clauses, {"x"});
  EXPECT_EQ(R.NumSummations, 7u);
  EXPECT_EQ(R.Value.evaluate({}), rat(20)); // 1..20.
  // Cross-check with the §5 disjoint DNF route.
  std::vector<Formula> Parts;
  for (const Conjunct &C : Clauses)
    Parts.push_back(Formula::fromConjunct(C));
  PiecewiseValue Ours = countSolutions(Formula::disj(Parts), {"x"});
  EXPECT_EQ(Ours.evaluate({}), rat(20));
}

TEST(InclusionExclusionTest, SymbolicAgreement) {
  // Two overlapping symbolic ranges.
  std::vector<Conjunct> Clauses;
  Conjunct A;
  A.add(Constraint::ge(var("x") - AffineExpr(1)));
  A.add(Constraint::ge(var("n") - var("x")));
  Conjunct B;
  B.add(Constraint::ge(var("x") - AffineExpr(5)));
  B.add(Constraint::ge(var("n") + AffineExpr(3) - var("x")));
  Clauses.push_back(A);
  Clauses.push_back(B);
  InclusionExclusionResult R =
      countUnionInclusionExclusion(Clauses, {"x"});
  std::vector<Formula> Parts{Formula::fromConjunct(A),
                             Formula::fromConjunct(B)};
  PiecewiseValue Ours = countSolutions(Formula::disj(Parts), {"x"});
  for (int64_t N = 0; N <= 12; ++N)
    EXPECT_EQ(R.Value.evaluate({{"n", BigInt(N)}}),
              Ours.evaluate({{"n", BigInt(N)}}))
        << N;
}

} // namespace
