//===- tests/RationalTest.cpp - Rational unit & property tests -----------===//

#include "support/Rational.h"

#include <gtest/gtest.h>

#include <random>

using omega::BigInt;
using omega::Rational;

namespace {

TEST(RationalTest, NormalizationInvariants) {
  Rational R(BigInt(4), BigInt(-6));
  EXPECT_EQ(R.numerator().toInt64(), -2);
  EXPECT_EQ(R.denominator().toInt64(), 3);
  Rational Z(BigInt(0), BigInt(-5));
  EXPECT_TRUE(Z.isZero());
  EXPECT_EQ(Z.denominator().toInt64(), 1);
  EXPECT_EQ(Rational(BigInt(10), BigInt(5)), Rational(2));
}

TEST(RationalTest, Arithmetic) {
  Rational Half(BigInt(1), BigInt(2));
  Rational Third(BigInt(1), BigInt(3));
  EXPECT_EQ(Half + Third, Rational(BigInt(5), BigInt(6)));
  EXPECT_EQ(Half - Third, Rational(BigInt(1), BigInt(6)));
  EXPECT_EQ(Half * Third, Rational(BigInt(1), BigInt(6)));
  EXPECT_EQ(Half / Third, Rational(BigInt(3), BigInt(2)));
  EXPECT_EQ(-Half, Rational(BigInt(-1), BigInt(2)));
  EXPECT_EQ(Half + (-Half), Rational(0));
}

TEST(RationalTest, Ordering) {
  Rational A(BigInt(1), BigInt(3)), B(BigInt(1), BigInt(2));
  EXPECT_LT(A, B);
  EXPECT_GT(B, A);
  EXPECT_LE(A, A);
  EXPECT_LT(Rational(BigInt(-1), BigInt(2)), A);
  EXPECT_EQ(Rational(BigInt(2), BigInt(4)).compare(B), 0);
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational(BigInt(7), BigInt(2)).floor().toInt64(), 3);
  EXPECT_EQ(Rational(BigInt(7), BigInt(2)).ceil().toInt64(), 4);
  EXPECT_EQ(Rational(BigInt(-7), BigInt(2)).floor().toInt64(), -4);
  EXPECT_EQ(Rational(BigInt(-7), BigInt(2)).ceil().toInt64(), -3);
  EXPECT_EQ(Rational(3).floor().toInt64(), 3);
  EXPECT_EQ(Rational(3).ceil().toInt64(), 3);
}

TEST(RationalTest, IntegerPredicates) {
  EXPECT_TRUE(Rational(BigInt(4), BigInt(2)).isInteger());
  EXPECT_FALSE(Rational(BigInt(1), BigInt(2)).isInteger());
  EXPECT_EQ(Rational(BigInt(4), BigInt(2)).asInteger().toInt64(), 2);
}

TEST(RationalTest, PowAndToString) {
  Rational TwoThirds(BigInt(2), BigInt(3));
  EXPECT_EQ(Rational::pow(TwoThirds, 3), Rational(BigInt(8), BigInt(27)));
  EXPECT_EQ(Rational::pow(TwoThirds, 0), Rational(1));
  EXPECT_EQ(TwoThirds.toString(), "2/3");
  EXPECT_EQ(Rational(-5).toString(), "-5");
  EXPECT_EQ(Rational(BigInt(-1), BigInt(2)).toString(), "-1/2");
}

TEST(RationalTest, FieldAxiomsRandomized) {
  std::mt19937_64 Rng(5);
  auto Rand = [&] {
    BigInt N(int64_t(Rng() % 41) - 20);
    BigInt D(int64_t(Rng() % 20) + 1);
    return Rational(N, D);
  };
  for (int Trial = 0; Trial < 500; ++Trial) {
    Rational A = Rand(), B = Rand(), C = Rand();
    EXPECT_EQ(A + B, B + A);
    EXPECT_EQ(A * B, B * A);
    EXPECT_EQ((A + B) + C, A + (B + C));
    EXPECT_EQ((A * B) * C, A * (B * C));
    EXPECT_EQ(A * (B + C), A * B + A * C);
    if (!B.isZero()) {
      EXPECT_EQ((A / B) * B, A);
    }
    EXPECT_EQ(A - A, Rational(0));
  }
}

} // namespace
