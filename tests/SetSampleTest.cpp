//===- tests/SetSampleTest.cpp - PresburgerSet and samplePoint tests -----===//

#include "counting/Set.h"

#include "presburger/Parser.h"

#include <gtest/gtest.h>

#include <random>

using namespace omega;

namespace {

AffineExpr var(const char *N) { return AffineExpr::variable(N); }
Rational rat(long long N) { return Rational(BigInt(N)); }

PresburgerSet interval(const char *V, int64_t Lo, int64_t Hi) {
  std::string Text = std::to_string(Lo) + " <= " + V +
                     " && " + V + " <= " + std::to_string(Hi);
  return PresburgerSet({V}, parseFormulaOrDie(Text));
}

TEST(SetTest, BooleanAlgebra) {
  PresburgerSet A = interval("x", 1, 10);
  PresburgerSet B = interval("x", 5, 14);
  EXPECT_EQ(A.unionWith(B).count().evaluate({}), rat(14));
  EXPECT_EQ(A.intersect(B).count().evaluate({}), rat(6));
  EXPECT_EQ(A.subtract(B).count().evaluate({}), rat(4));
  EXPECT_TRUE(A.intersect(B).isSubsetOf(A));
  EXPECT_TRUE(A.subtract(A).isEmpty());
  EXPECT_TRUE(A.unionWith(B).isEqualTo(B.unionWith(A)));
  EXPECT_FALSE(A.isEqualTo(B));
}

TEST(SetTest, AlignmentRenamesTuples) {
  // Same set, different tuple names: operations align them.
  PresburgerSet A = interval("x", 1, 5);
  PresburgerSet B = interval("y", 1, 5);
  EXPECT_TRUE(A.isEqualTo(B));
  EXPECT_TRUE(A.subtract(B).isEmpty());
}

TEST(SetTest, ProjectionAndContains) {
  PresburgerSet S(
      {"i", "j"},
      parseFormulaOrDie("1 <= i <= 3 && 1 <= j <= 3 && i + j <= 4"));
  PresburgerSet P = S.project({"j"});
  EXPECT_EQ(P.tuple(), std::vector<std::string>{"i"});
  EXPECT_EQ(P.count().evaluate({}), rat(3)); // i in {1,2,3}.
  EXPECT_TRUE(S.contains({{"i", BigInt(1)}, {"j", BigInt(3)}}));
  EXPECT_FALSE(S.contains({{"i", BigInt(2)}, {"j", BigInt(3)}}));
}

TEST(SetTest, SymbolicCountAndSum) {
  PresburgerSet S({"i"}, parseFormulaOrDie("1 <= i <= n"));
  EXPECT_EQ(S.count().evaluate({{"n", BigInt(7)}}), rat(7));
  EXPECT_EQ(S.sum(QuasiPolynomial::variable("i"))
                .evaluate({{"n", BigInt(7)}}),
            rat(28));
}

TEST(SetTest, SampleMembers) {
  PresburgerSet S(
      {"i", "j"},
      parseFormulaOrDie("1 <= i <= n && i <= j <= n && 2 | i + j"));
  for (int64_t N : {1, 2, 5, 9}) {
    Assignment Sym{{"n", BigInt(N)}};
    std::optional<Assignment> P = S.sample(Sym);
    ASSERT_TRUE(P.has_value()) << N;
    Assignment Full = Sym;
    Full.insert(P->begin(), P->end());
    EXPECT_TRUE(S.contains(Full)) << N;
  }
  // Empty at n = 0.
  EXPECT_FALSE(S.sample({{"n", BigInt(0)}}).has_value());
}

TEST(SamplePointTest, SimpleAndStridden) {
  Conjunct C;
  C.add(Constraint::ge(var("x") - AffineExpr(3)));
  C.add(Constraint::ge(AffineExpr(9) - var("x")));
  C.add(Constraint::stride(BigInt(4), var("x") - AffineExpr(1)));
  std::optional<Assignment> P = samplePoint(C);
  ASSERT_TRUE(P.has_value());
  EXPECT_TRUE(C.contains(*P)); // x in {5, 9}.
  Conjunct Bad = C;
  Bad.add(Constraint::ge(AffineExpr(4) - var("x")));
  EXPECT_FALSE(samplePoint(Bad).has_value()); // 3<=x<=4 with x≡1 (mod 4).
}

TEST(SamplePointTest, NegativeAndUnboundedDirections) {
  // Only an upper bound: sampling scans downward from it.
  Conjunct C;
  C.add(Constraint::ge(-var("x") - AffineExpr(5))); // x <= -5.
  std::optional<Assignment> P = samplePoint(C);
  ASSERT_TRUE(P.has_value());
  EXPECT_LE(P->at("x").toInt64(), -5);
  // No bounds at all: any integer works.
  Conjunct Free;
  Free.add(Constraint::stride(BigInt(3), var("y") - AffineExpr(2)));
  std::optional<Assignment> Q = samplePoint(Free);
  ASSERT_TRUE(Q.has_value());
  EXPECT_EQ(BigInt::floorMod(Q->at("y") - BigInt(2), BigInt(3)).toInt64(),
            0);
}

TEST(SamplePointTest, CoupledSystem) {
  // x = 2y, 3 <= x + y <= 9: solutions (2,1), (4,2), (6,3).
  Conjunct C;
  C.add(Constraint::eq(var("x") - BigInt(2) * var("y")));
  C.add(Constraint::ge(var("x") + var("y") - AffineExpr(3)));
  C.add(Constraint::ge(AffineExpr(9) - var("x") - var("y")));
  std::optional<Assignment> P = samplePoint(C);
  ASSERT_TRUE(P.has_value());
  EXPECT_TRUE(C.contains(*P));
}

TEST(SamplePointTest, RandomFeasibleClauses) {
  std::mt19937_64 Rng(909);
  int Sampled = 0;
  for (int Trial = 0; Trial < 60 && Sampled < 25; ++Trial) {
    Conjunct C;
    auto RC = [&] { return BigInt(int64_t(Rng() % 9) - 4); };
    for (unsigned I = 0; I < 3; ++I)
      C.add(Constraint::ge(RC() * var("x") + RC() * var("y") +
                           AffineExpr(RC() * 2)));
    for (const char *V : {"x", "y"}) {
      C.add(Constraint::ge(var(V) + AffineExpr(6)));
      C.add(Constraint::ge(AffineExpr(6) - var(V)));
    }
    if (Rng() % 2)
      C.add(Constraint::stride(BigInt(2 + Rng() % 3),
                               var("x") - var("y")));
    std::optional<Assignment> P = samplePoint(C);
    EXPECT_EQ(P.has_value(), feasible(C)) << "trial " << Trial;
    if (P) {
      ++Sampled;
      EXPECT_TRUE(C.contains(*P)) << "trial " << Trial;
    }
  }
  EXPECT_GE(Sampled, 10);
}

} // namespace
