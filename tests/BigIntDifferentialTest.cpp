//===- tests/BigIntDifferentialTest.cpp - Fast path vs limb path ---------===//
//
// Cross-checks the inline-int64 fast path against the limb slow path
// (DESIGN.md §10).  Every operation is evaluated three ways on the same
// values: canonical small operands (fast path), force-spilled operands
// (slow path — the shape every op took before the small-value
// optimization), and, for + - *, an __int128 reference model.
//
// Contract notes exercised here:
//  * results of arithmetic re-canonicalize, so small-path and
//    spilled-path results compare equal with == and hash identically;
//  * a force-spilled operand itself is out of contract for direct ==
//    / compare / hash against a small value — only *results* are compared;
//  * a representative small-coefficient countSolutions query runs without
//    a single spill (the allocation-free claim, observed via counters).
//
//===----------------------------------------------------------------------===//

#include "counting/Summation.h"
#include "presburger/Parser.h"
#include "support/BigInt.h"
#include "support/Rational.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

using omega::BigInt;
using omega::Rational;

namespace {

std::string int128ToString(__int128 V) {
  if (V == 0)
    return "0";
  bool Neg = V < 0;
  unsigned __int128 Mag =
      Neg ? ~static_cast<unsigned __int128>(V) + 1
          : static_cast<unsigned __int128>(V);
  std::string S;
  while (Mag != 0) {
    S.insert(S.begin(), static_cast<char>('0' + int(Mag % 10)));
    Mag /= 10;
  }
  return Neg ? "-" + S : S;
}

/// Operand pool straddling every representation boundary: zero, machine
/// words, the 2^31/2^32 limb edges, and both sides of the 2^62 small/large
/// edge, each in both signs, plus fixed-seed random values of every width.
std::vector<int64_t> boundaryValues() {
  const int64_t SmallMax = (int64_t(1) << 62) - 1;
  std::vector<int64_t> Mags = {0,
                               1,
                               2,
                               3,
                               5,
                               7,
                               1000003,
                               (int64_t(1) << 31) - 1,
                               int64_t(1) << 31,
                               (int64_t(1) << 32) - 1,
                               int64_t(1) << 32,
                               (int64_t(1) << 32) + 1,
                               SmallMax - 1,
                               SmallMax,
                               SmallMax + 1, // First canonical-large value.
                               SmallMax + 2,
                               INT64_MAX - 1,
                               INT64_MAX};
  std::mt19937_64 Rng(0xace1u);
  for (int Width = 4; Width <= 62; Width += 7)
    Mags.push_back(static_cast<int64_t>(Rng() >> (64 - Width)));
  std::vector<int64_t> Out;
  for (int64_t M : Mags) {
    Out.push_back(M);
    if (M != 0)
      Out.push_back(-M);
  }
  return Out;
}

/// A copy of V with the inline representation forced out to limbs when
/// possible (canonical-large values are unaffected).
BigInt spilled(const BigInt &V) {
  BigInt S = V;
  S.forceSpillForTesting();
  return S;
}

TEST(BigIntDifferentialTest, AddSubMulAgainstInt128) {
  for (int64_t A : boundaryValues())
    for (int64_t B : boundaryValues()) {
      BigInt FA(A), FB(B);
      BigInt SA = spilled(FA), SB = spilled(FB);

      BigInt Sum = FA + FB, SpSum = SA + SB;
      BigInt Dif = FA - FB, SpDif = SA - SB;
      BigInt Prd = FA * FB, SpPrd = SA * SB;

      // Results re-canonicalize: == and hash must agree across paths.
      EXPECT_EQ(Sum, SpSum);
      EXPECT_EQ(Dif, SpDif);
      EXPECT_EQ(Prd, SpPrd);
      EXPECT_EQ(Sum.hash(), SpSum.hash());
      EXPECT_EQ(Prd.hash(), SpPrd.hash());

      // Reference model.
      EXPECT_EQ(Sum.toString(), int128ToString(__int128(A) + B));
      EXPECT_EQ(Dif.toString(), int128ToString(__int128(A) - B));
      EXPECT_EQ(Prd.toString(), int128ToString(__int128(A) * B));
    }
}

TEST(BigIntDifferentialTest, DivisionFamilyAcrossPaths) {
  for (int64_t A : boundaryValues())
    for (int64_t B : boundaryValues()) {
      if (B == 0)
        continue;
      BigInt FA(A), FB(B);
      BigInt SA = spilled(FA), SB = spilled(FB);

      EXPECT_EQ(FA / FB, SA / SB);
      EXPECT_EQ(FA % FB, SA % SB);
      EXPECT_EQ(BigInt::floorDiv(FA, FB), BigInt::floorDiv(SA, SB));
      EXPECT_EQ(BigInt::ceilDiv(FA, FB), BigInt::ceilDiv(SA, SB));
      EXPECT_EQ(BigInt::floorMod(FA, FB), BigInt::floorMod(SA, SB));

      // Truncated division identity ties quotient and remainder together.
      EXPECT_EQ((FA / FB) * FB + FA % FB, FA);
    }
}

TEST(BigIntDifferentialTest, GcdDividesDivExactAcrossPaths) {
  for (int64_t A : boundaryValues())
    for (int64_t B : boundaryValues()) {
      BigInt FA(A), FB(B);
      BigInt SA = spilled(FA), SB = spilled(FB);

      BigInt G = BigInt::gcd(FA, FB);
      // gcd may return a copy of a (spilled) operand, so compare by value,
      // not representation.
      EXPECT_EQ(G.toString(), BigInt::gcd(SA, SB).toString());
      EXPECT_EQ(FB.divides(FA), SB.divides(SA));
      if (!G.isZero()) {
        EXPECT_EQ(BigInt::divExact(FA, G).toString(),
                  BigInt::divExact(SA, BigInt::gcd(SA, SB)).toString());
        // divExact after gcd is the Constraint::normalize shape; the
        // round-trip must reconstruct the operand.
        EXPECT_EQ(BigInt::divExact(FA, G) * G, FA);
      }
    }
}

TEST(BigIntDifferentialTest, ResultsRecanonicalize) {
  // Arithmetic on spilled operands lands back in the inline form whenever
  // the value fits — the unspill path.
  BigInt A = spilled(BigInt(1000));
  BigInt B = spilled(BigInt(-7));
  EXPECT_FALSE(A.isSmallRep());
  EXPECT_TRUE((A + B).isSmallRep());
  EXPECT_TRUE((A - B).isSmallRep());
  EXPECT_TRUE((A * B).isSmallRep());
  EXPECT_TRUE((A / B).isSmallRep());
  EXPECT_TRUE((A % B).isSmallRep());

  // And a genuinely large result stays large.
  BigInt Huge = BigInt::pow(BigInt(2), 100);
  EXPECT_FALSE(Huge.isSmallRep());
  EXPECT_FALSE((Huge + A).isSmallRep());
  // Shrinking back under the 2^62 edge unspills.
  EXPECT_TRUE((Huge - Huge + A).isSmallRep());
}

TEST(BigIntDifferentialTest, RationalNormalizeAcrossPaths) {
  for (int64_t A : boundaryValues())
    for (int64_t B : boundaryValues()) {
      if (B == 0)
        continue;
      Rational Fast{BigInt(A), BigInt(B)};
      Rational Slow{spilled(BigInt(A)), spilled(BigInt(B))};
      EXPECT_EQ(Fast.numerator().toString(), Slow.numerator().toString())
          << A << "/" << B;
      EXPECT_EQ(Fast.denominator().toString(), Slow.denominator().toString())
          << A << "/" << B;
    }
}

TEST(BigIntDifferentialTest, CountSolutionsSmallCoefficientsNeverSpills) {
  using namespace omega;
  // Representative of the paper's workloads: small coefficients, strides,
  // a coupling constraint, and a symbolic bound.  The whole pipeline must
  // stay on the inline fast path.
  ParseResult R = parseFormula(
      "(1 <= i <= n && 1 <= j <= n && i + 2*j <= 3*n && 2 | i + j)");
  ASSERT_TRUE(static_cast<bool>(R)) << R.Error;

  arithCounters().Spills.store(0);
  PiecewiseValue V = countSolutions(*R.Value, VarSet{"i", "j"});
  EXPECT_EQ(arithCounters().Spills.load(), 0u)
      << "small-coefficient counting query spilled to the limb path";
  // Sanity: the query actually did arithmetic.
  EXPECT_FALSE(V.toString().empty());
}

} // namespace
