//===- tests/VerifyEdgeTest.cpp - omega/Verify.h edge cases --------------===//
//
// Edge coverage for the §2.4 verification entry points: wildcards via
// explicit existentials, stride constraints, empty/trivial formulas, and
// implication/equivalence across syntactically different shapes.
//
//===----------------------------------------------------------------------===//

#include "omega/Verify.h"

#include "presburger/Parser.h"

#include <gtest/gtest.h>

using namespace omega;

namespace {

Formula parse(const char *Text) { return parseFormulaOrDie(Text); }

//===----------------------------------------------------------------------===//
// isTautology / isUnsatisfiable / isSatisfiable on trivial shapes
//===----------------------------------------------------------------------===//

TEST(VerifyEdge, TrueAndFalseLiterals) {
  EXPECT_TRUE(isTautology(Formula::trueFormula()));
  EXPECT_FALSE(isSatisfiable(Formula::falseFormula()));
  EXPECT_TRUE(isUnsatisfiable(Formula::falseFormula()));
  EXPECT_FALSE(isTautology(Formula::falseFormula()));
}

TEST(VerifyEdge, VariableFreeAtomsFold) {
  EXPECT_TRUE(isTautology(parse("3 <= 5")));
  EXPECT_TRUE(isUnsatisfiable(parse("5 <= 3")));
}

TEST(VerifyEdge, TrivialConjunctIsTautology) {
  // x = x folds to 0 = 0 at construction.
  EXPECT_TRUE(isTautology(parse("x = x")));
  EXPECT_TRUE(isTautology(parse("x <= x && x >= x")));
}

//===----------------------------------------------------------------------===//
// Quantifiers and wildcards
//===----------------------------------------------------------------------===//

TEST(VerifyEdge, ExistentialWitnessTautology) {
  // Every integer has a successor.
  EXPECT_TRUE(isTautology(parse("exists(y: y = x + 1)")));
  // ... but not every integer is even.
  EXPECT_FALSE(isTautology(parse("exists(y: x = 2*y)")));
  EXPECT_TRUE(isSatisfiable(parse("exists(y: x = 2*y)")));
}

TEST(VerifyEdge, ForallReducesToNegatedExists) {
  EXPECT_TRUE(isTautology(parse("forall(x: exists(y: y >= x))")));
  EXPECT_TRUE(isUnsatisfiable(parse("forall(x: x >= c)")));
}

TEST(VerifyEdge, ImpliesBetweenExistentials) {
  // The paper's §2.4 shape: (exists y: P) => (exists z: Q).
  // x is a multiple of 4 => x is even.
  EXPECT_TRUE(verifyImplies(parse("exists(y: x = 4*y)"),
                            parse("exists(z: x = 2*z)")));
  EXPECT_FALSE(verifyImplies(parse("exists(z: x = 2*z)"),
                             parse("exists(y: x = 4*y)")));
}

TEST(VerifyEdge, NestedQuantifierEquivalence) {
  // exists(y: 2y <= x <= 2y + 1) is true for every x.
  EXPECT_TRUE(isTautology(parse("exists(y: 2*y <= x && x <= 2*y + 1)")));
}

//===----------------------------------------------------------------------===//
// Strides
//===----------------------------------------------------------------------===//

TEST(VerifyEdge, StrideEquivalentToExistential) {
  EXPECT_TRUE(verifyEquivalent(parse("2 | x"), parse("exists(y: x = 2*y)")));
  EXPECT_FALSE(verifyEquivalent(parse("2 | x"), parse("4 | x")));
  EXPECT_TRUE(verifyImplies(parse("4 | x"), parse("2 | x")));
}

TEST(VerifyEdge, StrideResiduesCoverEverything) {
  EXPECT_TRUE(isTautology(
      parse("3 | x || 3 | x - 1 || 3 | x - 2")));
  EXPECT_FALSE(isTautology(parse("3 | x || 3 | x - 1")));
}

TEST(VerifyEdge, StrideConflictUnsatisfiable) {
  // x even and x odd.
  EXPECT_TRUE(isUnsatisfiable(parse("2 | x && 2 | x - 1")));
  // Chinese remainder: 2 | x, 3 | x - 1 is satisfiable (x = 4 mod 6).
  EXPECT_TRUE(isSatisfiable(parse("2 | x && 3 | x - 1")));
}

//===----------------------------------------------------------------------===//
// Implication / equivalence over inequality ranges
//===----------------------------------------------------------------------===//

TEST(VerifyEdge, RangeImplication) {
  EXPECT_TRUE(verifyImplies(parse("1 <= i && i <= n - 1"),
                            parse("1 <= i && i <= n")));
  EXPECT_FALSE(verifyImplies(parse("1 <= i && i <= n"),
                             parse("1 <= i && i <= n - 1")));
}

TEST(VerifyEdge, EquivalenceModuloTightening) {
  // 2i >= 1 over integers is i >= 1.
  EXPECT_TRUE(verifyEquivalent(parse("2*i >= 1"), parse("i >= 1")));
  // Splitting a range at an interior point.
  EXPECT_TRUE(verifyEquivalent(
      parse("0 <= i <= 9"), parse("0 <= i <= 4 || 5 <= i <= 9")));
}

TEST(VerifyEdge, ImplicationWithSymbolicContext) {
  // n >= 5 makes the range 1..n contain 1..5.
  EXPECT_TRUE(verifyImplies(parse("n >= 5 && 1 <= i <= 5"),
                            parse("1 <= i <= n")));
  EXPECT_FALSE(verifyImplies(parse("n >= 3 && 1 <= i <= 5"),
                             parse("1 <= i <= n")));
}

} // namespace
